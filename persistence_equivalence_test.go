package loom_test

// Golden equivalence for durable serving (the serve-state extension of
// the PR 3 pattern in equivalence_test.go): a durable server that
// checkpoints mid-stream, crashes, recovers from snapshot + WAL tail and
// finishes the stream must produce placements bit-identical to an
// uninterrupted control with the same logical history — and both must
// keep reproducing the committed fixture across PRs for fixed seeds.
//
// Regenerate (only when an intentional behaviour change occurs) with:
//
//	go test -run TestServePersistenceGolden -update-golden .

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"loom"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/query"
	"loom/internal/stream"
)

// serveGoldenRecord pins the outcome of one durable-serving scenario.
type serveGoldenRecord struct {
	Scenario      string `json:"scenario"`
	Vertices      int    `json:"vertices"`
	Edges         int    `json:"edges"`
	K             int    `json:"k"`
	CutEdges      int    `json:"cut_edges"`
	Sizes         []int  `json:"sizes"`
	PlacementHash uint64 `json:"placement_hash"`
}

// runDurableScenario streams g into a durable server with a checkpoint
// after the first third and a drain barrier at the end. When crash is
// set, the server is hard-stopped right after the second third and
// recovered from its data directory before the stream finishes.
func runDurableScenario(t *testing.T, g *graph.Graph, w *query.Workload, alphabet []graph.Label, k int, crash bool) *loom.Server {
	t.Helper()
	cfg := loom.ServerConfig{
		Core: loom.Config{
			Partition:  loom.PartitionConfig{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	}
	opts := loom.ServerPersistOptions{Dir: t.TempDir(), Fsync: loom.WALSyncAlways}
	s, err := loom.OpenServer(cfg, opts)
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	feed := func(part []loom.StreamElement) {
		for i := 0; i < len(part); i += 97 {
			end := i + 97
			if end > len(part) {
				end = len(part)
			}
			if err := s.IngestSync(part[i:end]); err != nil {
				t.Fatalf("ingest: %v", err)
			}
		}
	}
	third := len(elems) / 3
	feed(elems[:third])
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	feed(elems[third : 2*third])
	if crash {
		s.Abort()
		s, err = loom.OpenServer(cfg, opts)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		ri := s.Stats().Persist.Recover
		if !ri.SnapshotLoaded || ri.ReplayedRecords == 0 {
			t.Fatalf("recovery should load the checkpoint and replay a tail: %+v", ri)
		}
	}
	feed(elems[2*third:])
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return s
}

func TestServePersistenceGolden(t *testing.T) {
	alphabet := gen.DefaultAlphabet(4)
	mkWorkload := func(seed int64, nq int) *query.Workload {
		w, err := query.GenerateWorkload(query.DefaultMix(nq), alphabet, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	scenarios := []struct {
		name string
		n, k int
		seed int64
	}{
		{"community-600", 600, 4, 31},
		{"ba-500", 500, 5, 41},
	}

	var got []serveGoldenRecord
	for _, sc := range scenarios {
		rng := rand.New(rand.NewSource(sc.seed))
		lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
		var g *graph.Graph
		var err error
		if sc.name[:2] == "ba" {
			g, err = gen.BarabasiAlbert(sc.n, 2, lab, rng)
		} else {
			g, err = gen.PlantedPartitionDegrees(sc.n, sc.k, 10, 2, lab, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		w := mkWorkload(sc.seed, 8)

		crashed := runDurableScenario(t, g, w, alphabet, sc.k, true)
		control := runDurableScenario(t, g, w, alphabet, sc.k, false)
		ca, err := crashed.Export()
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := control.Export()
		if err != nil {
			t.Fatal(err)
		}
		crashed.Stop()
		control.Stop()

		ch, oh := placementHash(g, ca), placementHash(g, ctl)
		if ch != oh {
			t.Fatalf("%s: crash-recovered placements (hash %#x) diverge from uninterrupted control (%#x)", sc.name, ch, oh)
		}
		got = append(got, serveGoldenRecord{
			Scenario:      sc.name,
			Vertices:      g.NumVertices(),
			Edges:         g.NumEdges(),
			K:             sc.k,
			CutEdges:      ca.CutEdges(g),
			Sizes:         ca.Sizes(),
			PlacementHash: ch,
		})
	}

	path := filepath.Join("testdata", "serve_persistence_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d serve golden records to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update-golden to create): %v", err)
	}
	var want []serveGoldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, golden has %d", len(got), len(want))
	}
	for i := range want {
		wr, gr := want[i], got[i]
		if gr.Scenario != wr.Scenario {
			t.Fatalf("record %d is %s, golden has %s", i, gr.Scenario, wr.Scenario)
		}
		if gr.CutEdges != wr.CutEdges {
			t.Errorf("%s: cut edges %d, golden %d", wr.Scenario, gr.CutEdges, wr.CutEdges)
		}
		if fmt.Sprint(gr.Sizes) != fmt.Sprint(wr.Sizes) {
			t.Errorf("%s: sizes %v, golden %v", wr.Scenario, gr.Sizes, wr.Sizes)
		}
		if gr.PlacementHash != wr.PlacementHash {
			t.Errorf("%s: placement hash %#x, golden %#x (serve state drifted)", wr.Scenario, gr.PlacementHash, wr.PlacementHash)
		}
	}
}
