module loom

go 1.22
