// Package loom is a workload-aware streaming graph partitioner, a Go
// reproduction of Firth & Missier, "Workload-aware streaming graph
// partitioning" (GraphQ @ EDBT/ICDT 2016).
//
// LOOM partitions a stream of graph vertices and edges into k balanced
// parts while keeping intact the sub-graphs that a known workload of
// pattern matching queries traverses frequently. It does so by:
//
//  1. Summarising the query workload in a TPSTry++ — a DAG of query motifs
//     (frequent connected labelled sub-graphs) with traversal
//     probabilities.
//  2. Detecting motif occurrences inside a sliding window over the graph
//     stream, using incremental number-theoretic signatures.
//  3. Assigning whole motif matches to a single partition with the
//     sub-graph extension of the Linear Deterministic Greedy heuristic.
//
// # Quick start
//
//	alphabet := loom.DefaultAlphabet(4)
//	workload := loom.Fig1Workload()
//	trie, _ := loom.CaptureWorkload(workload, loom.CaptureOptions{})
//	p, _ := loom.New(loom.Config{
//		Partition: loom.PartitionConfig{K: 2, ExpectedVertices: 8},
//		Threshold: 0.3,
//	}, trie)
//	elems, _ := loom.StreamFromGraph(g, loom.TemporalOrder, nil)
//	assignment, _ := p.Run(loom.NewSliceSource(elems))
//
// The sub-packages under internal/ hold the substrates: the labelled graph
// model, generators, stream orderings and windows, signatures, exact
// isomorphism, the TPSTry++, the streaming-partitioner family (hash,
// balanced, chunking, greedy, LDG, Fennel, and an offline multilevel
// reference), the simulated distributed cluster, and metrics. This package
// re-exports the surface a downstream user needs.
package loom

import (
	"fmt"
	"io"
	"math/rand"

	"loom/internal/checkpoint"
	"loom/internal/cluster"
	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/qserve"
	"loom/internal/query"
	"loom/internal/serve"
	"loom/internal/signature"
	"loom/internal/store"
	"loom/internal/stream"
)

// Graph model.
type (
	// Graph is a simple undirected vertex-labelled graph.
	Graph = graph.Graph
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Label is a vertex label.
	Label = graph.Label
	// Edge is an unordered vertex pair.
	Edge = graph.Edge
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// PathQuery returns a path query graph over the given labels.
func PathQuery(labels ...Label) *Graph { return graph.Path(labels...) }

// CycleQuery returns a cycle query graph over the given labels (>= 3).
func CycleQuery(labels ...Label) *Graph { return graph.Cycle(labels...) }

// StarQuery returns a star query graph.
func StarQuery(center Label, leaves ...Label) *Graph { return graph.Star(center, leaves...) }

// Fig1Graph returns the example data graph of the paper's Figure 1.
func Fig1Graph() *Graph { return graph.Fig1Graph() }

// DefaultAlphabet returns the first k single-letter labels.
func DefaultAlphabet(k int) []Label { return gen.DefaultAlphabet(k) }

// Workload model.
type (
	// Workload is a weighted set of pattern matching queries.
	Workload = query.Workload
	// Query is one pattern query with its relative frequency.
	Query = query.Query
	// Trie is the TPSTry++ motif summary of a workload.
	Trie = motif.Trie
	// Motif is one TPSTry++ node.
	Motif = motif.Node
)

// NewWorkload validates and collects queries into a workload.
func NewWorkload(queries ...Query) (*Workload, error) { return query.NewWorkload(queries...) }

// Fig1Workload returns the workload Q of the paper's Figure 1.
func Fig1Workload() *Workload { return query.Fig1Workload() }

// CaptureOptions configures workload capture into a TPSTry++.
type CaptureOptions struct {
	// MaxMotifVertices caps enumerated motif size (default 5).
	MaxMotifVertices int
	// Alphabet pre-assigns signature factors for deterministic signatures
	// independent of observation order. Optional.
	Alphabet []Label
}

// CaptureWorkload builds the TPSTry++ for a workload (Algorithm 1 applied
// to every query).
func CaptureWorkload(w *Workload, opts CaptureOptions) (*Trie, error) {
	var f *signature.Factory
	if len(opts.Alphabet) > 0 {
		f = signature.NewFactoryForAlphabet(opts.Alphabet)
	} else {
		f = signature.NewFactory()
	}
	t := motif.New(f, motif.Options{MaxMotifVertices: opts.MaxMotifVertices})
	if err := w.BuildTrie(t); err != nil {
		return nil, err
	}
	return t, nil
}

// EmptyTrie returns a TPSTry++ with no workload, for running LOOM as plain
// windowed LDG.
func EmptyTrie() *Trie {
	return motif.New(signature.NewFactory(), motif.Options{})
}

// Partitioning.
type (
	// Config parameterises a LOOM partitioner.
	Config = core.Config
	// PartitionConfig carries the base heuristic's parameters.
	PartitionConfig = partition.Config
	// Partitioner is a LOOM instance.
	Partitioner = core.Partitioner
	// Assignment maps vertices to partitions.
	Assignment = partition.Assignment
	// PartitionID identifies a partition.
	PartitionID = partition.ID
	// Stats counts LOOM activity.
	Stats = core.Stats
)

// New returns a LOOM partitioner over the workload summarised by trie.
func New(cfg Config, trie *Trie) (*Partitioner, error) { return core.New(cfg, trie) }

// Streaming.
type (
	// StreamElement is one item of a graph-stream.
	StreamElement = stream.Element
	// StreamOrder names a vertex ordering strategy.
	StreamOrder = stream.Order
	// Source yields stream elements.
	Source = stream.Source
	// ReaderSource decodes the graph text codec incrementally (FromReader).
	ReaderSource = stream.ReaderSource
)

// Stream orderings.
const (
	RandomOrder      = stream.RandomOrder
	BFSOrder         = stream.BFSOrdering
	DFSOrder         = stream.DFSOrdering
	AdversarialOrder = stream.AdversarialOrder
	TemporalOrder    = stream.TemporalOrder
)

// Stream element kinds.
const (
	VertexElement = stream.VertexElement
	EdgeElement   = stream.EdgeElement
)

// StreamFromGraph converts a static graph into a graph-stream under the
// given ordering. r may be nil for deterministic orderings.
func StreamFromGraph(g *Graph, o StreamOrder, r *rand.Rand) ([]StreamElement, error) {
	return stream.FromGraph(g, o, r)
}

// NewSliceSource adapts a materialised element slice to a Source.
func NewSliceSource(elems []StreamElement) Source { return stream.NewSliceSource(elems) }

// NewLiveSource returns an unbounded-ingestion stream generated directly
// by a preferential-attachment process (the paper's "stochastic process,
// such as user input"): total vertices, mPer attachments each, labels
// drawn uniformly from alphabet. Deterministic per seed.
func NewLiveSource(total, mPer int, alphabet []Label, seed int64) (Source, error) {
	r := rand.New(rand.NewSource(seed + 1))
	labeler := func(VertexID) Label { return alphabet[r.Intn(len(alphabet))] }
	return stream.NewLiveSource(total, mPer, labeler, seed)
}

// Rebalance repairs balance drift in an assignment by moving up to
// maxMoves boundary vertices (0 = |V|/20) toward the loadFactor target
// (0 = 1.1), preferring cut-friendly moves. It returns the moves performed
// and the cut before/after.
func Rebalance(g *Graph, a *Assignment, loadFactor float64, maxMoves int) partition.RebalanceResult {
	rb := &partition.Rebalancer{MaxLoadFactor: loadFactor, MaxMoves: maxMoves}
	return rb.Rebalance(g, a)
}

// Restreaming (multi-pass refinement, Nishimura & Ugander 2013 /
// Awadelkarim & Ugander 2020).
type (
	// RestreamPriority names the between-pass stream reordering.
	RestreamPriority = partition.Priority
	// RestreamResult bundles the final assignment and per-pass statistics.
	RestreamResult = partition.RestreamResult
	// RestreamPassStats measures one restreaming pass (cut, imbalance,
	// migration).
	RestreamPassStats = partition.PassStats
)

// Restream priorities.
const (
	RestreamNone        = partition.PriorityNone
	RestreamDegree      = partition.PriorityDegree
	RestreamAmbivalence = partition.PriorityAmbivalence
	RestreamCutDegree   = partition.PriorityCutDegree
)

// ParseRestreamPriority parses "none", "degree", "ambivalence" or
// "cutdegree".
func ParseRestreamPriority(s string) (RestreamPriority, error) { return partition.ParsePriority(s) }

// RestreamOptions configures Restream.
type RestreamOptions struct {
	// Heuristic picks the prior-aware base heuristic: "ldg" (ReLDG, the
	// default) or "fennel" (ReFennel).
	Heuristic string
	// Priority reorders the stream before every pass that has a previous
	// assignment to read.
	Priority RestreamPriority
	// SelfWeight is the bonus a vertex's own prior partition earns during
	// scoring; zero defaults to 1.
	SelfWeight float64
	// Order is the cold-start stream order (RandomOrder when zero-valued;
	// stochastic orders draw from Partition.Seed).
	Order StreamOrder
	// Partition carries k, expected vertices, slack and seed. Zero K
	// defaults to a.K() when a prior assignment is given.
	Partition PartitionConfig
}

// Restream re-runs a streaming heuristic over g for passes passes, seeded
// with prior assignment a (nil to cold-start), and returns the final
// assignment plus per-pass cut/imbalance/migration statistics. Placements
// stabilise while the cut drops toward the offline reference.
func Restream(g *Graph, a *Assignment, passes int, cfg RestreamOptions) (*RestreamResult, error) {
	pcfg := cfg.Partition
	if pcfg.K == 0 && a != nil {
		pcfg.K = a.K()
	}
	if pcfg.ExpectedVertices == 0 {
		pcfg.ExpectedVertices = g.NumVertices()
	}
	newPass := func(pass int) (partition.Streaming, error) {
		switch cfg.Heuristic {
		case "", "ldg":
			return partition.NewLDG(pcfg)
		case "fennel":
			return partition.NewFennel(partition.FennelConfig{Config: pcfg, ExpectedEdges: g.NumEdges()})
		}
		return nil, fmt.Errorf("loom: unknown restream heuristic %q", cfg.Heuristic)
	}
	base, err := stream.VertexOrder(g, cfg.Order, rand.New(rand.NewSource(pcfg.Seed)))
	if err != nil {
		return nil, err
	}
	rs := &partition.Restreamer{
		Config:  partition.RestreamConfig{Passes: passes, Priority: cfg.Priority, SelfWeight: cfg.SelfWeight},
		NewPass: newPass,
	}
	return rs.Run(g, base, a)
}

// RestreamLOOM is the workload-aware restream: every pass re-runs the full
// LOOM partitioner (window and motif tracker included) seeded with the
// previous assignment, so frequently traversed sub-graphs stay co-located
// while placements stabilise. a may be nil to cold-start.
func RestreamLOOM(g *Graph, a *Assignment, passes int, cfg Config, trie *Trie, priority RestreamPriority) (*RestreamResult, error) {
	base, err := stream.VertexOrder(g, TemporalOrder, nil)
	if err != nil {
		return nil, err
	}
	rcfg := partition.RestreamConfig{Passes: passes, Priority: priority}
	return core.Restream(g, trie, cfg, rcfg, base, a)
}

// MigrationFraction returns the fraction of cur's vertices placed
// differently than in prev — the cost of adopting a restreamed assignment.
func MigrationFraction(prev, cur *Assignment) float64 { return metrics.MigrationFraction(prev, cur) }

// PartitionGraph runs LOOM over a whole static graph presented in the
// given order and returns the final assignment: the one-call entry point.
func PartitionGraph(g *Graph, o StreamOrder, r *rand.Rand, cfg Config, trie *Trie) (*Assignment, error) {
	elems, err := stream.FromGraph(g, o, r)
	if err != nil {
		return nil, err
	}
	p, err := core.New(cfg, trie)
	if err != nil {
		return nil, err
	}
	return p.Run(stream.NewSliceSource(elems))
}

// Evaluation.
type (
	// Quality bundles structural partitioning measures.
	Quality = metrics.Quality
	// Cluster simulates a distributed deployment of an assignment.
	Cluster = cluster.Cluster
	// ExecResult accounts one simulated query execution.
	ExecResult = cluster.Result
	// WorkloadResult aggregates workload execution.
	WorkloadResult = cluster.WorkloadResult
	// CostModel prices simulated hops.
	CostModel = cluster.CostModel
)

// EvaluateQuality computes structural measures for an assignment.
func EvaluateQuality(name string, g *Graph, a *Assignment) Quality {
	return metrics.Evaluate(name, g, a)
}

// CutFraction returns the fraction of g's edges cut by a.
func CutFraction(g *Graph, a *Assignment) float64 { return metrics.CutFraction(g, a) }

// VertexImbalance returns max partition size over ideal (1.0 = perfect).
func VertexImbalance(a *Assignment) float64 { return metrics.VertexImbalance(a) }

// Synthetic data. These wrappers cover the generators examples need; the
// full family (Erdős–Rényi, Watts–Strogatz, R-MAT, grids, Zipf labels)
// lives in internal/gen.

// BarabasiAlbertGraph returns a preferential-attachment (power-law) graph
// with n vertices, mPer edges per arrival and uniform labels.
func BarabasiAlbertGraph(n, mPer int, alphabet []Label, seed int64) (*Graph, error) {
	r := rand.New(rand.NewSource(seed))
	return gen.BarabasiAlbert(n, mPer, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
}

// CommunityGraph returns a planted-partition graph with k ground-truth
// communities and uniform labels: each vertex gets ~12 intra-community and
// ~3 inter-community edges regardless of n and k.
func CommunityGraph(n, k int, alphabet []Label, seed int64) (*Graph, error) {
	r := rand.New(rand.NewSource(seed))
	return gen.PlantedPartitionDegrees(n, k, 12, 3, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
}

// DefaultWorkload synthesises count queries of the standard
// path/star/cycle/tree mix over the alphabet, optionally Zipf-skewed.
func DefaultWorkload(count int, alphabet []Label, zipfSkew float64, seed int64) (*Workload, error) {
	mix := query.DefaultMix(count)
	mix.ZipfSkew = zipfSkew
	return query.GenerateWorkload(mix, alphabet, rand.New(rand.NewSource(seed)))
}

// Baseline partitioners, for comparisons in examples and downstream code.

// PartitionWithLDG streams g through plain Linear Deterministic Greedy.
func PartitionWithLDG(g *Graph, o StreamOrder, r *rand.Rand, cfg PartitionConfig) (*Assignment, error) {
	s, err := partition.NewLDG(cfg)
	if err != nil {
		return nil, err
	}
	return runStreaming(g, o, r, s)
}

// PartitionWithFennel streams g through the Fennel heuristic.
func PartitionWithFennel(g *Graph, o StreamOrder, r *rand.Rand, cfg PartitionConfig) (*Assignment, error) {
	s, err := partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
	if err != nil {
		return nil, err
	}
	return runStreaming(g, o, r, s)
}

// PartitionWithHash places vertices by hashing their IDs.
func PartitionWithHash(g *Graph, cfg PartitionConfig) (*Assignment, error) {
	s, err := partition.NewHash(cfg)
	if err != nil {
		return nil, err
	}
	return runStreaming(g, TemporalOrder, nil, s)
}

// PartitionWithMultilevel runs the offline multilevel partitioner (the
// METIS stand-in): highest cut quality, but requires the whole graph up
// front and full repartitioning on change.
func PartitionWithMultilevel(g *Graph, k int, seed int64) (*Assignment, error) {
	ml := &partition.Multilevel{K: k, Seed: seed}
	return ml.Partition(g)
}

// Sharded deployment (internal/store): the substrate that executes
// traversals shard by shard and counts cross-shard messages, with the
// hotspot-replication layer of Yang et al.
type (
	// Store is a graph deployed across one shard per partition.
	Store = store.Store
	// StoreEngine executes traversals against a Store, counting messages.
	StoreEngine = store.Engine
	// ReplicationAdvisor picks boundary hotspots to replicate.
	ReplicationAdvisor = store.Advisor
)

// DeployStore materialises the sharded deployment of g under a.
func DeployStore(g *Graph, a *Assignment) (*Store, error) { return store.Build(g, a) }

// NewStoreEngine returns a traversal engine over st.
func NewStoreEngine(st *Store) *StoreEngine { return store.NewEngine(st) }

// NewReplicationAdvisor returns a hotspot advisor over st.
func NewReplicationAdvisor(st *Store) *ReplicationAdvisor { return store.NewAdvisor(st) }

func runStreaming(g *Graph, o StreamOrder, r *rand.Rand, s partition.Streaming) (*Assignment, error) {
	vs, err := stream.VertexOrder(g, o, r)
	if err != nil {
		return nil, err
	}
	return partition.PartitionStream(g, vs, s), nil
}

// Online serving (internal/serve): the long-running runtime that ingests
// a graph stream through a bounded mailbox, answers placement lookups
// lock-free from published snapshots, and restreams in the background when
// the partitioning drifts.
type (
	// Server is an online partition server.
	Server = serve.Server
	// ServerConfig parameterises NewServer.
	ServerConfig = serve.Config
	// ServerDriftConfig configures drift-triggered restreaming.
	ServerDriftConfig = serve.DriftConfig
	// ServerStats is the reader-visible server state.
	ServerStats = serve.Stats
	// ServerRestreamReport describes one background restream and its
	// migration plan.
	ServerRestreamReport = serve.RestreamReport
	// ServerMove is one entry of a migration plan.
	ServerMove = serve.Move
	// RouteDecision is the outcome of Server.Route.
	RouteDecision = serve.RouteDecision
	// ServerAdmissionConfig configures token-bucket admission control in
	// front of Server.Ingest.
	ServerAdmissionConfig = serve.AdmissionConfig
	// ServerOverloadError carries the Retry-After hint of an admission
	// refusal; errors.Is(err, ErrServerOverloaded) matches it.
	ServerOverloadError = serve.OverloadError
	// ServerReanchorPolicy configures self-healing of a wedged server:
	// retry the re-anchoring snapshot with capped exponential backoff.
	ServerReanchorPolicy = serve.ReanchorPolicy
	// ServerHealth is the liveness/readiness view behind Server.Health.
	ServerHealth = serve.Health
)

// ErrServerStopped is returned by operations on a stopped Server.
var ErrServerStopped = serve.ErrStopped

// ErrServerNoPersistence is returned by Server.Checkpoint on a server
// started without a data directory (NewServer instead of OpenServer).
var ErrServerNoPersistence = serve.ErrNoPersistence

// ErrServerWedged is returned by writes while persistence is wedged: a
// WAL append failed after its batch was applied, so ingest is refused
// until a snapshot (Server.Checkpoint or the self-healing re-anchor)
// restores durability. Reads keep working throughout.
var ErrServerWedged = serve.ErrWedged

// ErrServerOverloaded is returned by Server.Ingest/IngestSync when
// admission control refuses a batch; errors.As to *ServerOverloadError
// for the Retry-After hint.
var ErrServerOverloaded = serve.ErrOverloaded

// NewServer starts an online partition server and its ingest loop. Feed it
// with Server.Ingest/IngestSync, query it with Server.Where/Route/Stats,
// and shut it down with Server.Stop.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// Online queries (internal/qserve): pattern traversals served lock-free
// over the Server's copy-on-write views, feeding the observed workload,
// drift, and hotspot-replication loops back into the partitioner.
type (
	// QueryEngine serves pattern queries over a Server's exported views.
	QueryEngine = qserve.Engine
	// QueryEngineOptions parameterises NewQueryEngine.
	QueryEngineOptions = qserve.Options
	// QueryRequest is one query: a pattern spec plus optional id/limit.
	QueryRequest = qserve.Request
	// QueryResponse reports matches and the real cross-shard cost.
	QueryResponse = qserve.Response
	// QueryEngineStats is the reader-visible engine state.
	QueryEngineStats = qserve.EngineStats
	// ObservedWorkload is the windowed, decayed frequency table of served
	// patterns that replaces the static workload at restream time.
	ObservedWorkload = qserve.Observed
	// ObservedWorkloadOptions parameterises the tracker.
	ObservedWorkloadOptions = qserve.ObservedOptions
)

// ErrBadQuery is the typed refusal for a malformed query request.
var ErrBadQuery = qserve.ErrBadQuery

// NewQueryEngine builds a query engine over srv and (unless
// opts.StaticWorkload is set) installs its observed-workload tracker as
// the server's live workload source.
func NewQueryEngine(srv *Server, opts QueryEngineOptions) *QueryEngine {
	return qserve.New(srv, opts)
}

// ParseQueryRequest decodes a query request body (text pattern spec or
// JSON, switched on contentType) — the codec behind POST /query.
func ParseQueryRequest(contentType string, body []byte) (QueryRequest, error) {
	return qserve.ParseRequest(contentType, body)
}

// ParsePatternSpec parses the textual pattern form ("path a b c",
// "cycle a b c", "star hub leaf...", "graph v0:a v1:b e0-1 ...") into a
// query pattern graph.
func ParsePatternSpec(spec string) (*Graph, error) { return query.ParsePatternSpec(spec) }

// FormatPatternSpec renders p canonically in the textual pattern form.
func FormatPatternSpec(p *Graph) string { return query.FormatPatternSpec(p) }

// Durable serving (internal/checkpoint): snapshots of graph + assignment
// + serve metadata, plus a write-ahead log of accepted batches, so a
// restarted server comes up warm and answers exactly as before the stop.
type (
	// ServerPersistOptions selects the checkpoint directory and WAL fsync
	// policy for OpenServer.
	ServerPersistOptions = serve.PersistOptions
	// ServerPersistStats is the durability section of ServerStats.
	ServerPersistStats = serve.PersistStats
	// ServerRecoverInfo describes what OpenServer reconstructed.
	ServerRecoverInfo = serve.RecoverInfo
	// WALSyncPolicy says when the write-ahead log is fsynced.
	WALSyncPolicy = checkpoint.SyncPolicy
)

// WAL fsync policies for ServerPersistOptions.
const (
	// WALSyncAlways fsyncs after every appended batch (the default): an
	// acknowledged batch survives power loss.
	WALSyncAlways = checkpoint.SyncAlways
	// WALSyncNone leaves flushing to the OS page cache.
	WALSyncNone = checkpoint.SyncNone
)

// ParseWALSyncPolicy maps "always"/"none" to a WALSyncPolicy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return checkpoint.ParseSyncPolicy(s) }

// OpenServer starts a durable partition server over a checkpoint
// directory: it recovers the newest snapshot plus the WAL tail (if the
// directory holds state from a previous run), then serves like NewServer
// with every accepted batch logged, snapshots at restream swaps, on
// Server.Checkpoint, and at graceful Server.Stop. See Server.Abort for
// the crash-shaped shutdown the recovery path is tested against.
func OpenServer(cfg ServerConfig, opts ServerPersistOptions) (*Server, error) {
	return serve.Open(cfg, opts)
}

// FromReader decodes the graph text codec incrementally from r, yielding
// stream elements without materialising the graph (the ingestion path of
// loom-serve and `loom partition -order file`).
func FromReader(r io.Reader) *stream.ReaderSource { return stream.FromReader(r) }

// Binary wire protocol (internal/stream): length-prefixed CRC-framed
// element batches with varint ids and a per-frame label dictionary — the
// fast ingest front door (`POST /ingest` with Content-Type
// BinaryContentType), decoded off the writer goroutine and appended to
// the WAL verbatim.
type (
	// FrameIngest summarises one Server.IngestFrames call: frames and
	// elements accepted, intra-frame duplicates dropped, and the typed
	// per-frame error, if any (FrameIngest.Err).
	FrameIngest = serve.FrameIngest
	// BadFrameError is the typed refusal for a frame that fails CRC,
	// framing or validation; nothing from a bad frame reaches the writer.
	BadFrameError = serve.BadFrameError
	// FrameWriter renders element batches as binary frames onto a writer —
	// the client half of the codec.
	FrameWriter = stream.FrameWriter
)

// BinaryContentType is the HTTP Content-Type of the binary wire protocol.
const BinaryContentType = stream.BinaryContentType

// NewFrameWriter returns a FrameWriter encoding batches onto w.
func NewFrameWriter(w io.Writer) *FrameWriter { return stream.NewFrameWriter(w) }

// WriteGraph serialises g in the text codec, all vertices before all edges.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// WriteGraphStreamed serialises g in stream layout: each vertex followed
// by its edges to earlier vertices, the input model streaming partitioners
// expect when the file is replayed element by element.
func WriteGraphStreamed(w io.Writer, g *Graph) error { return graph.WriteStreamed(w, g) }

// ReadGraph parses the text codec (either layout).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// NewCluster returns a simulated cluster over g partitioned by a.
func NewCluster(g *Graph, a *Assignment, costs CostModel) (*Cluster, error) {
	return cluster.New(g, a, costs)
}

// DefaultCostModel prices intra-partition hops at 1µs and cross-partition
// hops at 100µs.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }
