package loom_test

// Build-and-run coverage for the example mains, which "go test ./..."
// otherwise never compiles or executes.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// exampleDirs lists every program under examples/.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found")
	}
	return dirs
}

// TestExamplesBuildAndRun builds and executes every example main. Examples
// are deterministic demos over small synthetic graphs, so a non-zero exit
// or a hang is a regression.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not in PATH: %v", err)
	}
	bin := t.TempDir()
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			exe := filepath.Join(bin, dir)
			build := exec.Command(goTool, "build", "-o", exe, "./examples/"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(exe)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var runErr error
				out, runErr = cmd.CombinedOutput()
				done <- runErr
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run: %v\n%s", err, out)
				}
				if len(out) == 0 {
					t.Fatal("example produced no output")
				}
			case <-time.After(2 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", dir)
			}
		})
	}
}
