package motif

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/iso"
	"loom/internal/signature"
)

func newTrie(maxV int) *Trie {
	f := signature.NewFactoryForAlphabet([]graph.Label{"a", "b", "c", "d"})
	return New(f, Options{MaxMotifVertices: maxV})
}

func TestAddQueryValidation(t *testing.T) {
	tr := newTrie(4)
	if err := tr.AddQuery("q", graph.Path("a", "b"), 0); err == nil {
		t.Error("zero weight should be rejected")
	}
	if err := tr.AddQuery("q", graph.New(), 1); err == nil {
		t.Error("empty query should be rejected")
	}
	disc := graph.New()
	disc.AddVertex(1, "a")
	disc.AddVertex(2, "b")
	if err := tr.AddQuery("q", disc, 1); err == nil {
		t.Error("disconnected query should be rejected")
	}
}

func TestSingleEdgeQuery(t *testing.T) {
	tr := newTrie(4)
	if err := tr.AddQuery("q", graph.Path("a", "b"), 1); err != nil {
		t.Fatal(err)
	}
	// Motifs: a, b, ab => 3 nodes.
	if tr.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", tr.NumNodes())
	}
	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	for _, r := range roots {
		if len(r.Children()) != 1 {
			t.Fatalf("root %v children = %d, want 1 (the ab edge)", r, len(r.Children()))
		}
	}
	// Both roots share the same child node.
	if roots[0].Children()[0] != roots[1].Children()[0] {
		t.Fatal("a and b roots must share the ab child (DAG, not tree)")
	}
}

func TestFig2TPSTry(t *testing.T) {
	// The workload of Figure 1: q1 = abab square, q2 = abc path,
	// q3 = abcd path. Verify the TPSTry++ of Figure 2 algebraically: its
	// nodes are exactly the signature-distinct connected sub-graphs of the
	// three queries.
	tr := newTrie(4)
	q1 := graph.Cycle("a", "b", "a", "b")
	q2 := graph.Path("a", "b", "c")
	q3 := graph.Path("a", "b", "c", "d")
	for _, q := range []struct {
		id string
		g  *graph.Graph
	}{{"q1", q1}, {"q2", q2}, {"q3", q3}} {
		if err := tr.AddQuery(q.id, q.g, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Expected motifs (by construction):
	// singles: a, b, c, d                                   -> 4
	// 1 edge:  ab, bc, cd                                   -> 3
	// 2 edges: aba, bab, abc, bcd                           -> 4
	// 3 edges: abab path (from q1), abcd path (from q3)     -> 2
	// 4 edges: abab square (from q1)                        -> 1
	// total 14
	if tr.NumNodes() != 14 {
		for _, n := range tr.Nodes() {
			t.Logf("node %v rep=%s", n, n.Rep)
		}
		t.Fatalf("TPSTry++ nodes = %d, want 14", tr.NumNodes())
	}
	if len(tr.Roots()) != 4 {
		t.Fatalf("roots = %d, want 4 (one per label)", len(tr.Roots()))
	}

	// The square motif: 4 vertices, 4 edges, contained only in q1, and it
	// must be reachable as a child of the abab path.
	var square, ababPath *Node
	for _, n := range tr.Nodes() {
		if n.NumVertices() == 4 && n.NumEdges() == 4 {
			square = n
		}
		if n.NumVertices() == 4 && n.NumEdges() == 3 {
			if iso.Isomorphic(n.Rep, graph.Path("a", "b", "a", "b")) {
				ababPath = n
			}
		}
	}
	if square == nil {
		t.Fatal("square motif missing")
	}
	if ababPath == nil {
		t.Fatal("abab path motif missing")
	}
	if _, ok := tr.ChildFor(ababPath, square.Sig.Key()); !ok {
		t.Fatal("square must be a child of the abab path")
	}
	if _, inQ1 := square.Queries["q1"]; !inQ1 || len(square.Queries) != 1 {
		t.Fatalf("square queries = %v, want {q1}", square.Queries)
	}

	// p-values: ab occurs in all three queries -> 1.0; bc in q2,q3 -> 2/3;
	// cd only q3 -> 1/3; square only q1 -> 1/3.
	ab := findMotif(t, tr, graph.Path("a", "b"))
	if p := tr.P(ab); math.Abs(p-1.0) > 1e-9 {
		t.Errorf("P(ab) = %v, want 1.0", p)
	}
	bc := findMotif(t, tr, graph.Path("b", "c"))
	if p := tr.P(bc); math.Abs(p-2.0/3) > 1e-9 {
		t.Errorf("P(bc) = %v, want 2/3", p)
	}
	cd := findMotif(t, tr, graph.Path("c", "d"))
	if p := tr.P(cd); math.Abs(p-1.0/3) > 1e-9 {
		t.Errorf("P(cd) = %v, want 1/3", p)
	}
	if p := tr.P(square); math.Abs(p-1.0/3) > 1e-9 {
		t.Errorf("P(square) = %v, want 1/3", p)
	}
}

func findMotif(t *testing.T, tr *Trie, g *graph.Graph) *Node {
	t.Helper()
	n, ok := tr.NodeFor(tr.Factory().SignatureOf(g))
	if !ok {
		t.Fatalf("motif %s missing from trie", g)
	}
	return n
}

func TestFrequentMotifsThreshold(t *testing.T) {
	tr := newTrie(4)
	for _, q := range []struct {
		id string
		g  *graph.Graph
		w  float64
	}{
		{"q1", graph.Cycle("a", "b", "a", "b"), 1},
		{"q2", graph.Path("a", "b", "c"), 1},
		{"q3", graph.Path("a", "b", "c", "d"), 1},
	} {
		if err := tr.AddQuery(q.id, q.g, q.w); err != nil {
			t.Fatal(err)
		}
	}
	// Threshold 1.0: only ab (in all queries).
	top := tr.FrequentMotifs(1.0)
	if len(top) != 1 {
		t.Fatalf("frequent@1.0 = %d, want 1", len(top))
	}
	if !iso.Isomorphic(top[0].Rep, graph.Path("a", "b")) {
		t.Fatalf("frequent@1.0 = %v, want ab", top[0].Rep)
	}
	// Threshold 0: every motif with >= 1 edge (14 nodes - 4 singles = 10).
	all := tr.FrequentMotifs(0)
	if len(all) != 10 {
		t.Fatalf("frequent@0 = %d, want 10", len(all))
	}
	// Sorted by descending p.
	for i := 1; i < len(all); i++ {
		if tr.P(all[i]) > tr.P(all[i-1]) {
			t.Fatal("FrequentMotifs must be sorted by descending p")
		}
	}
	if got := tr.MaxFrequentMotifVertices(0); got != 4 {
		t.Fatalf("MaxFrequentMotifVertices = %d, want 4", got)
	}
}

func TestWeightsAndFrequencies(t *testing.T) {
	tr := newTrie(3)
	if err := tr.AddQuery("hot", graph.Path("a", "b"), 9); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddQuery("cold", graph.Path("c", "d"), 1); err != nil {
		t.Fatal(err)
	}
	ab := findMotif(t, tr, graph.Path("a", "b"))
	cd := findMotif(t, tr, graph.Path("c", "d"))
	if p := tr.P(ab); math.Abs(p-0.9) > 1e-9 {
		t.Errorf("P(ab) = %v, want 0.9", p)
	}
	if p := tr.P(cd); math.Abs(p-0.1) > 1e-9 {
		t.Errorf("P(cd) = %v, want 0.1", p)
	}
	if tr.TotalWeight() != 10 {
		t.Errorf("TotalWeight = %v, want 10", tr.TotalWeight())
	}
}

func TestMaxMotifVerticesCap(t *testing.T) {
	tr := newTrie(3)
	if err := tr.AddQuery("q", graph.Path("a", "b", "c", "d"), 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		if n.NumVertices() > 3 {
			t.Fatalf("motif %v exceeds cap 3", n)
		}
	}
	// abcd itself must not be a node; abc and bcd must be.
	if _, ok := tr.NodeFor(tr.Factory().SignatureOf(graph.Path("a", "b", "c", "d"))); ok {
		t.Fatal("4-vertex motif should have been capped")
	}
	findMotif(t, tr, graph.Path("a", "b", "c"))
	findMotif(t, tr, graph.Path("b", "c", "d"))
}

func TestRepeatedMotifEmbeddings(t *testing.T) {
	// Query a-b-a: motif ab has two embeddings but support counted once.
	tr := newTrie(3)
	if err := tr.AddQuery("q", graph.Path("a", "b", "a"), 1); err != nil {
		t.Fatal(err)
	}
	ab := findMotif(t, tr, graph.Path("a", "b"))
	if ab.Embeddings != 2 {
		t.Fatalf("ab embeddings = %d, want 2", ab.Embeddings)
	}
	if ab.Support != 1 {
		t.Fatalf("ab support = %v, want 1 (once per query)", ab.Support)
	}
}

func TestDAGParentChildClosure(t *testing.T) {
	tr := newTrie(4)
	if err := tr.AddQuery("q", graph.Cycle("a", "b", "a", "b"), 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		for _, c := range n.Children() {
			// A child has exactly one more edge.
			if c.NumEdges() != n.NumEdges()+1 {
				t.Fatalf("child %v of %v adds %d edges", c, n, c.NumEdges()-n.NumEdges())
			}
			// And at most one more vertex.
			dv := c.NumVertices() - n.NumVertices()
			if dv < 0 || dv > 1 {
				t.Fatalf("child %v of %v adds %d vertices", c, n, dv)
			}
			// Parent back-pointer exists.
			found := false
			for _, p := range c.Parents() {
				if p == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("child %v missing parent pointer to %v", c, n)
			}
		}
	}
}

func TestRootsPerDistinctLabel(t *testing.T) {
	tr := newTrie(3)
	if err := tr.AddQuery("q", graph.Path("a", "b", "a"), 1); err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (a and b)", len(roots))
	}
	if _, ok := tr.RootFor("a"); !ok {
		t.Fatal("root a missing")
	}
	if _, ok := tr.RootFor("z"); ok {
		t.Fatal("root z should not exist")
	}
}

func TestChildForNilParent(t *testing.T) {
	tr := newTrie(3)
	if err := tr.AddQuery("q", graph.Path("a", "b"), 1); err != nil {
		t.Fatal(err)
	}
	sig := tr.Factory().SignatureOf(graph.Path("a", "b"))
	if _, ok := tr.ChildFor(nil, sig.Key()); !ok {
		t.Fatal("ChildFor(nil, ...) should fall back to global lookup")
	}
}

func TestWriteDOT(t *testing.T) {
	tr := newTrie(4)
	if err := tr.AddQuery("q", graph.Path("a", "b", "c"), 1); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDOT(&sb, tr, 0.5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph tpstry {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	// 6 motifs: a, b, c, ab, bc, abc.
	if got := strings.Count(out, "label="); got != 6 {
		t.Fatalf("DOT nodes = %d, want 6", got)
	}
	// DAG edges: a->ab, b->ab, b->bc, c->bc, ab->abc, bc->abc.
	if got := strings.Count(out, "->"); got != 6 {
		t.Fatalf("DOT edges = %d, want 6", got)
	}
	// Frequent motifs are filled; single-vertex roots are ellipses.
	if !strings.Contains(out, "fillcolor=lightblue") {
		t.Fatal("frequent motifs should be highlighted")
	}
	if !strings.Contains(out, "shape=ellipse") {
		t.Fatal("roots should be ellipses")
	}
	// Deterministic.
	var sb2 strings.Builder
	if err := WriteDOT(&sb2, tr, 0.5); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("DOT output must be deterministic")
	}
}

func TestPEdge(t *testing.T) {
	tr := newTrie(4)
	for _, q := range []struct {
		id string
		g  *graph.Graph
	}{
		{"q1", graph.Cycle("a", "b", "a", "b")},
		{"q2", graph.Path("a", "b", "c")},
		{"q3", graph.Path("a", "b", "c", "d")},
	} {
		if err := tr.AddQuery(q.id, q.g, 1); err != nil {
			t.Fatal(err)
		}
	}
	// ab occurs in all three queries.
	if p := tr.PEdge("a", "b"); math.Abs(p-1.0) > 1e-9 {
		t.Errorf("PEdge(a,b) = %v, want 1", p)
	}
	// Order-insensitive.
	if tr.PEdge("b", "a") != tr.PEdge("a", "b") {
		t.Error("PEdge must be symmetric")
	}
	// cd only in q3.
	if p := tr.PEdge("c", "d"); math.Abs(p-1.0/3) > 1e-9 {
		t.Errorf("PEdge(c,d) = %v, want 1/3", p)
	}
	// Never-seen pair.
	if p := tr.PEdge("d", "d"); p != 0 {
		t.Errorf("PEdge(d,d) = %v, want 0", p)
	}
	// Unknown label.
	if p := tr.PEdge("z", "a"); p != 0 {
		t.Errorf("PEdge(z,a) = %v, want 0", p)
	}
}

func TestPropertyNodeSignatureMatchesRep(t *testing.T) {
	// Every node's stored signature equals the signature of its
	// representative graph, over random tree-shaped queries.
	alphabet := []graph.Label{"a", "b", "c"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := signature.NewFactoryForAlphabet(alphabet)
		tr := New(f, Options{MaxMotifVertices: 4})
		// Random tree query of 2-6 vertices.
		n := 2 + r.Intn(5)
		q := graph.New()
		q.AddVertex(0, alphabet[r.Intn(len(alphabet))])
		for i := 1; i < n; i++ {
			q.AddVertex(graph.VertexID(i), alphabet[r.Intn(len(alphabet))])
			if err := q.AddEdge(graph.VertexID(r.Intn(i)), graph.VertexID(i)); err != nil {
				return false
			}
		}
		if err := tr.AddQuery("q", q, 1); err != nil {
			return false
		}
		for _, node := range tr.Nodes() {
			if !node.Sig.Equal(f.SignatureOf(node.Rep)) {
				return false
			}
			if !node.Rep.IsConnected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySupportMonotone(t *testing.T) {
	// Anti-monotonicity: a parent's support is >= each child's support
	// (any query containing the child contains the parent).
	alphabet := []graph.Label{"a", "b"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := signature.NewFactoryForAlphabet(alphabet)
		tr := New(f, Options{MaxMotifVertices: 4})
		for qi := 0; qi < 3; qi++ {
			n := 2 + r.Intn(4)
			labels := make([]graph.Label, n)
			for i := range labels {
				labels[i] = alphabet[r.Intn(len(alphabet))]
			}
			if err := tr.AddQuery(string(rune('a'+qi)), graph.Path(labels...), 1+r.Float64()); err != nil {
				return false
			}
		}
		for _, n := range tr.Nodes() {
			for _, c := range n.Children() {
				if c.Support > n.Support+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
