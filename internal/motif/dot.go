package motif

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the TPSTry++ as a Graphviz digraph (the visual form of
// the paper's Figure 2). Nodes show the motif's label sequence, edge list
// and p-value; motifs at or above threshold are filled. Deterministic
// output: nodes by ID, edges by (parent, child) ID.
func WriteDOT(w io.Writer, t *Trie, threshold float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph tpstry {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [shape=box, fontname=\"monospace\"];")
	for _, n := range t.Nodes() {
		label := motifLabel(n)
		attrs := fmt.Sprintf("label=\"%s\\np=%.3f\"", label, t.P(n))
		if n.NumEdges() > 0 && t.P(n) >= threshold {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		if n.NumEdges() == 0 {
			attrs += ", shape=ellipse"
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range t.Nodes() {
		for _, c := range n.Children() {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", n.ID, c.ID)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// motifLabel renders a motif node compactly: label sequence plus edges.
func motifLabel(n *Node) string {
	var sb strings.Builder
	for _, v := range n.Rep.Vertices() {
		l, _ := n.Rep.Label(v)
		sb.WriteString(string(l))
	}
	if n.NumEdges() > 0 {
		sb.WriteString(" [")
		for i, e := range n.Rep.Edges() {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d-%d", e.U, e.V)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}
