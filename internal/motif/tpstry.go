// Package motif implements TPSTry++, the Traversal Pattern Summary Trie of
// the paper (§4.2): a DAG that compactly encodes the motifs — connected
// labelled sub-graphs — occurring in a workload of pattern matching
// queries, together with the probability that a random query traverses
// each motif.
//
// Unlike the original TPSTry (path queries only), TPSTry++ handles
// branches and cycles: nodes are arbitrary small connected labelled
// graphs, identified by their number-theoretic signature (package
// signature), and a DAG edge n -> n' means n' extends n by exactly one
// edge. Because distinctly-labelled single vertices all start chains, the
// structure has one root per label rather than a single root, which is why
// it is a DAG and not a trie.
//
// Construction follows Algorithm 1: for every query graph, the co-recursive
// weave enumerates its connected sub-graphs, inserting a node per distinct
// signature and recording parent/child extension edges.
package motif

import (
	"fmt"
	"sort"
	"strconv"

	"loom/internal/graph"
	"loom/internal/ident"
	"loom/internal/signature"
)

// Node is one motif in the TPSTry++.
type Node struct {
	// ID is a dense index assigned in insertion order.
	ID int
	// Rep is a representative graph for the motif (vertex IDs renumbered
	// 0..n-1). All sub-graphs folding into this node share its signature.
	Rep *graph.Graph
	// Sig is the motif's signature; nodes are keyed by Sig.Key().
	Sig *signature.Signature
	// Support is the accumulated weight of queries containing this motif:
	// each call to AddQuery adds its weight at most once per node.
	Support float64
	// Embeddings counts distinct embeddings of the motif across all added
	// queries (a query containing a motif twice contributes 2).
	Embeddings int
	// Queries records which query IDs contain the motif.
	Queries map[string]struct{}

	children map[string]*Node // sig key -> child
	parents  map[string]*Node // sig key -> parent
}

// NumVertices returns the motif's vertex count.
func (n *Node) NumVertices() int { return n.Rep.NumVertices() }

// NumEdges returns the motif's edge count.
func (n *Node) NumEdges() int { return n.Rep.NumEdges() }

// Children returns the node's children sorted by ID.
func (n *Node) Children() []*Node { return sortNodes(n.children) }

// Parents returns the node's parents sorted by ID.
func (n *Node) Parents() []*Node { return sortNodes(n.parents) }

func sortNodes(m map[string]*Node) []*Node {
	out := make([]*Node, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("motif#%d{|V|=%d |E|=%d support=%.3f}", n.ID, n.NumVertices(), n.NumEdges(), n.Support)
}

// Options configures TPSTry++ construction.
type Options struct {
	// MaxMotifVertices caps the size of enumerated motifs. Enumeration is
	// exponential in this bound; the paper's motifs are small query
	// fragments, and 5 is the default.
	MaxMotifVertices int
}

// DefaultMaxMotifVertices is the enumeration cap applied when Options
// leaves MaxMotifVertices at zero.
const DefaultMaxMotifVertices = 5

// Trie is the TPSTry++. It is built by AddQuery and then read-only during
// partitioning; concurrent AddQuery calls are not supported.
type Trie struct {
	factory *signature.Factory
	opts    Options

	nodes       map[string]*Node // sig key -> node
	byID        []*Node
	roots       map[graph.Label]*Node
	totalWeight float64

	// pedge caches PEdgeByID results: pedge[a*pedgeStride+b] is the
	// traversal probability of the single-edge motif with endpoint
	// LabelIDs a, b; pedgeOK marks computed cells. Invalidated by AddQuery
	// and rebuilt (larger) when a new LabelID appears.
	pedge       []float64
	pedgeOK     []bool
	pedgeStride int
}

// New returns an empty TPSTry++ using the given signature factory.
func New(f *signature.Factory, opts Options) *Trie {
	if opts.MaxMotifVertices <= 0 {
		opts.MaxMotifVertices = DefaultMaxMotifVertices
	}
	return &Trie{
		factory: f,
		opts:    opts,
		nodes:   make(map[string]*Node),
		roots:   make(map[graph.Label]*Node),
	}
}

// Factory returns the signature factory shared with the matcher.
func (t *Trie) Factory() *signature.Factory { return t.factory }

// NumNodes returns the number of distinct motifs.
func (t *Trie) NumNodes() int { return len(t.byID) }

// TotalWeight returns the accumulated workload weight.
func (t *Trie) TotalWeight() float64 { return t.totalWeight }

// Nodes returns all motif nodes ordered by ID.
func (t *Trie) Nodes() []*Node { return append([]*Node(nil), t.byID...) }

// Roots returns the single-vertex motifs, one per label, sorted by label.
func (t *Trie) Roots() []*Node {
	labels := make([]graph.Label, 0, len(t.roots))
	for l := range t.roots {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	out := make([]*Node, 0, len(labels))
	for _, l := range labels {
		out = append(out, t.roots[l])
	}
	return out
}

// RootFor returns the single-vertex motif for label l, if present.
func (t *Trie) RootFor(l graph.Label) (*Node, bool) {
	n, ok := t.roots[l]
	return n, ok
}

// NodeForKey returns the motif node whose signature key is k.
func (t *Trie) NodeForKey(k string) (*Node, bool) {
	n, ok := t.nodes[k]
	return n, ok
}

// NodeFor returns the motif node with the given signature.
func (t *Trie) NodeFor(s *signature.Signature) (*Node, bool) {
	return t.NodeForKey(s.Key())
}

// ChildFor returns the child of n whose signature key is k: the motif
// reached from n by adding one edge. When n is nil it falls back to root
// lookup by key (used when a match starts from a fresh vertex).
func (t *Trie) ChildFor(n *Node, k string) (*Node, bool) {
	if n == nil {
		node, ok := t.nodes[k]
		return node, ok
	}
	c, ok := n.children[k]
	return c, ok
}

// P returns the probability that a random query from the captured workload
// contains motif n: Support / TotalWeight. It is 0 before any query is
// added.
func (t *Trie) P(n *Node) float64 {
	if t.totalWeight == 0 {
		return 0
	}
	return n.Support / t.totalWeight
}

// FrequentMotifs returns the motifs with at least one edge whose p-value
// meets threshold, sorted by descending p then ascending ID. These are the
// motifs LOOM tries to keep within partition boundaries.
func (t *Trie) FrequentMotifs(threshold float64) []*Node {
	var out []*Node
	for _, n := range t.byID {
		if n.NumEdges() == 0 {
			continue
		}
		if t.P(n) >= threshold {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := t.P(out[i]), t.P(out[j])
		if pi != pj {
			return pi > pj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// MaxFrequentMotifVertices returns the vertex count of the largest motif at
// or above threshold (0 when none).
func (t *Trie) MaxFrequentMotifVertices(threshold float64) int {
	max := 0
	for _, n := range t.FrequentMotifs(threshold) {
		if n.NumVertices() > max {
			max = n.NumVertices()
		}
	}
	return max
}

// PEdge returns the probability that a random workload query contains the
// single-edge motif with endpoint labels la, lb — the per-edge traversal
// probability the paper's future work proposes feeding back into LDG. It
// is 0 when the edge motif never occurs in the workload.
func (t *Trie) PEdge(la, lb graph.Label) float64 {
	return t.PEdgeByID(t.factory.LabelID(la), t.factory.LabelID(lb))
}

// pedgeCompute is the uncached PEdge: build the single-edge signature and
// look its node up.
func (t *Trie) pedgeCompute(a, b ident.LabelID) float64 {
	sig := signature.New()
	sig.MulPrime(t.factory.VertexFactorByID(a))
	sig.MulPrime(t.factory.VertexFactorByID(b))
	sig.MulPrime(t.factory.EdgeFactorByID(a, b))
	n, ok := t.NodeFor(sig)
	if !ok {
		return 0
	}
	return t.P(n)
}

// PEdgeByID is PEdge for already-interned labels, memoised in a dense
// LabelID-indexed table so the traversal-weighted LDG hot path costs two
// slice reads after the first probe of a pair.
func (t *Trie) PEdgeByID(a, b ident.LabelID) float64 {
	n := t.factory.Labels().Len()
	if int(a) >= n || int(b) >= n {
		// Labels the factory has never seen cannot appear in any motif.
		return 0
	}
	if t.pedgeStride < n {
		t.pedge = make([]float64, n*n)
		t.pedgeOK = make([]bool, n*n)
		t.pedgeStride = n
	}
	idx := int(a)*t.pedgeStride + int(b)
	if !t.pedgeOK[idx] {
		p := t.pedgeCompute(a, b)
		t.pedge[idx] = p
		t.pedgeOK[idx] = true
		// The pair is unordered; fill the mirror cell too.
		j := int(b)*t.pedgeStride + int(a)
		t.pedge[j] = p
		t.pedgeOK[j] = true
	}
	return t.pedge[idx]
}

// AddQuery folds query graph q with the given workload weight into the
// trie, implementing Algorithm 1. The query ID is used for provenance
// (Node.Queries). Weight must be positive; disconnected query graphs are
// rejected because a pattern query's traversals cannot leave a component.
func (t *Trie) AddQuery(id string, q *graph.Graph, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("motif: query %q has non-positive weight %v", id, weight)
	}
	if q.NumVertices() == 0 {
		return fmt.Errorf("motif: query %q is empty", id)
	}
	if !q.IsConnected() {
		return fmt.Errorf("motif: query %q is disconnected", id)
	}
	t.totalWeight += weight
	// Support and total weight change, so cached edge probabilities are
	// stale.
	t.pedge, t.pedgeOK, t.pedgeStride = nil, nil, 0

	// Enumerate connected sub-graphs of q (the co-recursive weave). Each
	// enumerated state is a vertex set + edge set; states are deduplicated
	// by embedding so the DAG edges are discovered once per embedding, and
	// support is credited once per node per query.
	credited := make(map[*Node]struct{})
	seenEmb := make(map[string]struct{})

	var corecurse func(sub *embedding, parent *Node)
	corecurse = func(sub *embedding, parent *Node) {
		key := sub.key()
		first := false
		if _, ok := seenEmb[key]; !ok {
			seenEmb[key] = struct{}{}
			first = true
		}
		node := t.ensureNode(sub.graph(q))
		if parent != nil {
			link(parent, node)
		} else if sub.size() == 1 {
			l := q.MustLabel(sub.vertexList[0])
			t.roots[l] = node
		}
		if first {
			node.Embeddings++
		}
		if _, ok := credited[node]; !ok {
			credited[node] = struct{}{}
			node.Support += weight
			node.Queries[id] = struct{}{}
		}
		if !first {
			// This embedding was already expanded via another path; the
			// DAG link above is still recorded, but do not re-expand.
			return
		}
		if sub.size() >= t.opts.MaxMotifVertices && sub.fullEdges(q) {
			return
		}
		// Expand by every edge incident to the sub-graph but not in it.
		for _, e := range sub.frontier(q, t.opts.MaxMotifVertices) {
			corecurse(sub.extend(e), node)
		}
	}

	for _, v := range q.Vertices() {
		corecurse(newEmbedding(v), nil)
	}
	return nil
}

// ensureNode returns the node for g's signature, creating it if absent.
func (t *Trie) ensureNode(g *graph.Graph) *Node {
	sig := t.factory.SignatureOf(g)
	key := sig.Key()
	if n, ok := t.nodes[key]; ok {
		return n
	}
	n := &Node{
		ID:       len(t.byID),
		Rep:      renumber(g),
		Sig:      sig,
		Queries:  make(map[string]struct{}),
		children: make(map[string]*Node),
		parents:  make(map[string]*Node),
	}
	t.nodes[key] = n
	t.byID = append(t.byID, n)
	return n
}

func link(parent, child *Node) {
	if parent == child {
		return
	}
	parent.children[child.Sig.Key()] = child
	child.parents[parent.Sig.Key()] = parent
}

// renumber copies g with vertices renamed to 0..n-1 in ascending original
// order, so representative motifs have stable small IDs.
func renumber(g *graph.Graph) *graph.Graph {
	vs := g.Vertices()
	idx := make(map[graph.VertexID]graph.VertexID, len(vs))
	out := graph.NewWithCapacity(len(vs))
	for i, v := range vs {
		idx[v] = graph.VertexID(i)
		out.AddVertex(graph.VertexID(i), g.MustLabel(v))
	}
	for _, e := range g.Edges() {
		if err := out.AddEdge(idx[e.U], idx[e.V]); err != nil {
			panic(err)
		}
	}
	return out
}

// embedding is a connected sub-graph of a query graph under enumeration:
// a vertex set plus an explicit edge set (the edge set matters because a
// motif may include only some edges among its vertices).
type embedding struct {
	vertexSet  map[graph.VertexID]struct{}
	vertexList []graph.VertexID
	edges      map[graph.Edge]struct{}
}

func newEmbedding(v graph.VertexID) *embedding {
	return &embedding{
		vertexSet:  map[graph.VertexID]struct{}{v: {}},
		vertexList: []graph.VertexID{v},
		edges:      make(map[graph.Edge]struct{}),
	}
}

func (s *embedding) size() int { return len(s.vertexList) }

// key canonically identifies the embedding (sorted vertices and edges).
func (s *embedding) key() string {
	vs := append([]graph.VertexID(nil), s.vertexList...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	es := make([]graph.Edge, 0, len(s.edges))
	for e := range s.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	out := make([]byte, 0, 8*(len(vs)+2*len(es)))
	for _, v := range vs {
		out = strconv.AppendInt(out, int64(v), 10)
		out = append(out, ',')
	}
	out = append(out, '|')
	for _, e := range es {
		out = strconv.AppendInt(out, int64(e.U), 10)
		out = append(out, '-')
		out = strconv.AppendInt(out, int64(e.V), 10)
		out = append(out, ',')
	}
	return string(out)
}

// graph materialises the embedding as a labelled graph over q's labels.
func (s *embedding) graph(q *graph.Graph) *graph.Graph {
	g := graph.NewWithCapacity(len(s.vertexList))
	for _, v := range s.vertexList {
		g.AddVertex(v, q.MustLabel(v))
	}
	// Insert edges in sorted order so the graph's internal adjacency
	// layout (which insertion order determines) is run-independent.
	es := make([]graph.Edge, 0, len(s.edges))
	for e := range s.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	for _, e := range es {
		if err := g.AddEdge(e.U, e.V); err != nil {
			panic(err)
		}
	}
	return g
}

// fullEdges reports whether every q-edge internal to the vertex set is
// already included (no cycle-closing extensions remain).
func (s *embedding) fullEdges(q *graph.Graph) bool {
	//loom:orderinvariant pure membership predicate; returns false on any missing internal edge, whichever is seen first
	for v := range s.vertexSet {
		for _, u := range q.Neighbors(v) {
			if _, in := s.vertexSet[u]; in && v < u {
				if _, has := s.edges[graph.Edge{U: v, V: u}.Normalize()]; !has {
					return false
				}
			}
		}
	}
	return true
}

// frontier returns the q-edges that extend the embedding by one edge:
// either closing a cycle between two included vertices, or attaching one
// new vertex (only if the vertex budget allows).
func (s *embedding) frontier(q *graph.Graph, maxVertices int) []graph.Edge {
	var out []graph.Edge
	seen := make(map[graph.Edge]struct{})
	//loom:orderinvariant deduplicates candidate edges into a set and sorts the result before returning
	for v := range s.vertexSet {
		for _, u := range q.Neighbors(v) {
			e := graph.Edge{U: v, V: u}.Normalize()
			if _, in := s.edges[e]; in {
				continue
			}
			if _, dup := seen[e]; dup {
				continue
			}
			_, uIn := s.vertexSet[u]
			if !uIn && len(s.vertexList) >= maxVertices {
				continue
			}
			seen[e] = struct{}{}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// extend returns a new embedding with edge e added (and its new endpoint,
// if any).
func (s *embedding) extend(e graph.Edge) *embedding {
	n := &embedding{
		vertexSet:  make(map[graph.VertexID]struct{}, len(s.vertexSet)+1),
		vertexList: append([]graph.VertexID(nil), s.vertexList...),
		edges:      make(map[graph.Edge]struct{}, len(s.edges)+1),
	}
	for v := range s.vertexSet {
		n.vertexSet[v] = struct{}{}
	}
	for ed := range s.edges {
		n.edges[ed] = struct{}{}
	}
	for _, v := range []graph.VertexID{e.U, e.V} {
		if _, ok := n.vertexSet[v]; !ok {
			n.vertexSet[v] = struct{}{}
			n.vertexList = append(n.vertexList, v)
		}
	}
	n.edges[e.Normalize()] = struct{}{}
	return n
}
