package motif

import (
	"fmt"
	"strings"
	"testing"

	"loom/internal/graph"
)

func buildWorkloadTrie(t *testing.T) *Trie {
	t.Helper()
	tr := newTrie(5)
	queries := []struct {
		id string
		g  *graph.Graph
		w  float64
	}{
		{"path3", graph.Path("a", "b", "c"), 4},
		{"square", graph.Cycle("a", "b", "a", "b"), 2},
		{"tri", graph.Cycle("a", "b", "c"), 3},
		{"path4", graph.Path("b", "c", "d", "a"), 1},
	}
	for _, q := range queries {
		if err := tr.AddQuery(q.id, q.g, q.w); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// repFingerprint walks every motif node's representative graph in
// insertion order and records each vertex's adjacency sequence — exactly
// the layout the embedding-graph fix made reproducible (edges used to be
// inserted in map iteration order).
func repFingerprint(tr *Trie) string {
	var sb strings.Builder
	for _, n := range tr.Nodes() {
		fmt.Fprintf(&sb, "n%d:", n.ID)
		for _, v := range n.Rep.Vertices() {
			l, _ := n.Rep.Label(v)
			fmt.Fprintf(&sb, " %d(%s)->%v", v, l, n.Rep.Neighbors(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Regression for the embedding-graph map-order fix: motif representative
// graphs collected their edges from a map range, so the adjacency layout —
// and everything downstream that walks it — varied run to run. Rebuilding
// the same workload must now yield byte-identical adjacency and DOT output.
func TestTrieReplayBuildsIdenticalLayout(t *testing.T) {
	firstFP := repFingerprint(buildWorkloadTrie(t))
	var firstDOT strings.Builder
	if err := WriteDOT(&firstDOT, buildWorkloadTrie(t), 0.2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		tr := buildWorkloadTrie(t)
		if fp := repFingerprint(tr); fp != firstFP {
			t.Fatalf("build %d adjacency layout differs:\n%s\nfirst:\n%s", i, fp, firstFP)
		}
		var dot strings.Builder
		if err := WriteDOT(&dot, tr, 0.2); err != nil {
			t.Fatal(err)
		}
		if dot.String() != firstDOT.String() {
			t.Fatalf("build %d DOT differs:\n%s\nfirst:\n%s", i, dot.String(), firstDOT.String())
		}
	}
}
