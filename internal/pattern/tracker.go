// Package pattern implements graph-stream pattern matching (paper §4.3):
// detecting, online, the sub-graphs inside LOOM's stream window that match
// frequent query motifs from a TPSTry++.
//
// As each edge arrives the tracker grows existing motif matches by one edge
// — multiplying the match's number-theoretic signature by the edge's factor
// and checking the result against the children of the match's TPSTry++
// node. When an arriving edge extends no existing match (the situation of
// Figure 3, where naive incremental matching would silently discard a
// motif occurrence), the tracker re-expands: starting from the new edge it
// greedily traverses the window sub-graph, keeping each edge whose
// addition stays inside the TPSTry++, until it has found the largest
// motif-matching sub-graph containing the edge.
//
// Signature matching is non-authoritative; the optional Verify mode
// confirms each candidate match with exact isomorphism (experiment E10
// quantifies the difference).
package pattern

import (
	"fmt"
	"slices"
	"sort"
	"strconv"

	"loom/internal/graph"
	"loom/internal/iso"
	"loom/internal/motif"
	"loom/internal/signature"
)

// Match is an active motif match inside the stream window.
type Match struct {
	// ID is unique per tracker, in creation order.
	ID int64
	// Node is the TPSTry++ motif this sub-graph matches.
	Node *motif.Node
	// Sig is the running signature of the matched sub-graph.
	Sig *signature.Signature

	vertices map[graph.VertexID]struct{}
	edges    map[graph.Edge]struct{}
}

// Vertices returns the matched vertices in ascending order.
func (m *Match) Vertices() []graph.VertexID {
	out := make([]graph.VertexID, 0, len(m.vertices))
	for v := range m.vertices {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns the matched edges, normalized and sorted.
func (m *Match) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(m.edges))
	for e := range m.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Contains reports whether v participates in the match.
func (m *Match) Contains(v graph.VertexID) bool {
	_, ok := m.vertices[v]
	return ok
}

// Size returns the number of matched vertices.
func (m *Match) Size() int { return len(m.vertices) }

// key canonically identifies the match's sub-graph for deduplication.
func (m *Match) key() string {
	sb := make([]byte, 0, 8*(len(m.vertices)+2*len(m.edges)))
	for _, v := range m.Vertices() {
		sb = strconv.AppendInt(sb, int64(v), 10)
		sb = append(sb, ',')
	}
	sb = append(sb, '|')
	for _, e := range m.Edges() {
		sb = strconv.AppendInt(sb, int64(e.U), 10)
		sb = append(sb, '-')
		sb = strconv.AppendInt(sb, int64(e.V), 10)
		sb = append(sb, ',')
	}
	return string(sb)
}

// String implements fmt.Stringer.
func (m *Match) String() string {
	return fmt.Sprintf("match#%d{%v ~ %v}", m.ID, m.Vertices(), m.Node)
}

// Options configures a Tracker.
type Options struct {
	// Threshold is the minimum motif p-value for a TPSTry++ node to be
	// considered frequent and therefore tracked (paper §4.2's T).
	Threshold float64
	// MaxMatchesPerVertex bounds tracker memory: when a vertex
	// participates in more than this many matches, the lowest-value ones
	// are dropped. Zero defaults to 8.
	MaxMatchesPerVertex int
	// Verify re-checks every signature-detected match with exact sub-graph
	// isomorphism against the motif's representative graph, discarding
	// collisions (the authoritative mode of Song et al.; LOOM's default is
	// signature-only).
	Verify bool
}

// DefaultMaxMatchesPerVertex bounds per-vertex match fan-out when Options
// leaves it zero.
const DefaultMaxMatchesPerVertex = 8

// Stats counts tracker activity for experiments.
type Stats struct {
	MatchesCreated   int
	MatchesExtended  int
	MatchesDropped   int
	Reexpansions     int
	VerifyRejections int
}

// Tracker maintains the motif matches inside the current stream window.
// It is not safe for concurrent use.
type Tracker struct {
	trie    *motif.Trie
	factory *signature.Factory
	opts    Options

	nextID   int64
	matches  map[int64]*Match
	byVertex map[graph.VertexID]map[int64]struct{}
	byKey    map[string]int64
	stats    Stats
	// capVerts is enforceCaps's reusable sorted-visit scratch; together
	// with slices.Sort it keeps the per-match determinism sort off the
	// allocator on the ingest path.
	capVerts []graph.VertexID
	// single backs GroupFor's matchless fast path, so the common
	// one-vertex group costs no allocation.
	single [1]graph.VertexID
}

// NewTracker returns a Tracker over the given TPSTry++.
func NewTracker(trie *motif.Trie, opts Options) *Tracker {
	if opts.MaxMatchesPerVertex <= 0 {
		opts.MaxMatchesPerVertex = DefaultMaxMatchesPerVertex
	}
	return &Tracker{
		trie:     trie,
		factory:  trie.Factory(),
		opts:     opts,
		matches:  make(map[int64]*Match),
		byVertex: make(map[graph.VertexID]map[int64]struct{}),
		byKey:    make(map[string]int64),
	}
}

// Stats returns a copy of the tracker's activity counters.
func (t *Tracker) Stats() Stats { return t.stats }

// factorsFor returns the signature factors of an edge's endpoints: the two
// vertex factors and the edge factor. When the window graph shares the
// factory's label interner (LOOM's configuration) the probes are LabelID
// slice reads; otherwise they fall back to hashing the label strings.
func (t *Tracker) factorsFor(w *graph.Graph, u, v graph.VertexID) (fu, fv, fe uint64) {
	if w.LabelInterner() == t.factory.Labels() {
		lu, uok := w.LabelIDOf(u)
		lv, vok := w.LabelIDOf(v)
		// A non-resident endpoint has no LabelID; feeding NoLabel to the
		// ByID tables would grow them toward 2^32 entries, so fall through
		// to the string path, which degrades to the empty label like the
		// pre-interned code did. (ObserveEdge checks residency, so this is
		// defensive.)
		if uok && vok {
			return t.factory.VertexFactorByID(lu), t.factory.VertexFactorByID(lv), t.factory.EdgeFactorByID(lu, lv)
		}
	}
	la, _ := w.Label(u)
	lb, _ := w.Label(v)
	return t.factory.VertexFactor(la), t.factory.VertexFactor(lb), t.factory.EdgeFactor(la, lb)
}

// ActiveMatches returns the number of live matches.
func (t *Tracker) ActiveMatches() int { return len(t.matches) }

// frequent reports whether node n clears the tracking threshold.
func (t *Tracker) frequent(n *motif.Node) bool {
	return n != nil && t.trie.P(n) >= t.opts.Threshold
}

// ObserveEdge processes the stream edge {u,v}, where w is the window's
// resident sub-graph (both endpoints must be resident in w). It grows
// existing matches, and re-expands from the edge when nothing grew.
func (t *Tracker) ObserveEdge(u, v graph.VertexID, w *graph.Graph) error {
	if !w.HasVertex(u) || !w.HasVertex(v) {
		return fmt.Errorf("pattern: edge {%d,%d} endpoint not resident in window", u, v)
	}
	if !w.HasEdge(u, v) {
		return fmt.Errorf("pattern: edge {%d,%d} not present in window graph", u, v)
	}
	e := graph.Edge{U: u, V: v}.Normalize()

	grew := false
	// Collect candidate matches touching either endpoint; iterate over a
	// snapshot because extension registers new matches.
	for _, id := range t.matchIDsTouching(u, v) {
		m, ok := t.matches[id]
		if !ok {
			continue
		}
		if t.tryExtend(m, e, w) {
			grew = true
		}
	}
	if !grew {
		// Fig. 3 case: the edge joined no tracked match, but a motif match
		// containing it may exist. Rebuild from the edge outward.
		t.stats.Reexpansions++
		t.reexpand(e, w)
	}
	return nil
}

// matchIDsTouching returns a sorted snapshot of match IDs containing u or v.
func (t *Tracker) matchIDsTouching(u, v graph.VertexID) []int64 {
	set := make(map[int64]struct{})
	for id := range t.byVertex[u] {
		set[id] = struct{}{}
	}
	for id := range t.byVertex[v] {
		set[id] = struct{}{}
	}
	out := make([]int64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tryExtend attempts to grow match m by edge e, registering the grown match
// when the TPSTry++ has a matching child. The original match is retained:
// it is still a valid (smaller) motif occurrence, and may grow differently
// later.
func (t *Tracker) tryExtend(m *Match, e graph.Edge, w *graph.Graph) bool {
	uIn, vIn := m.Contains(e.U), m.Contains(e.V)
	if !uIn && !vIn {
		return false
	}
	if uIn && vIn {
		if _, has := m.edges[e]; has {
			return false
		}
	}
	sig := m.Sig.Clone()
	fu, fv, fe := t.factorsFor(w, e.U, e.V)
	if !uIn {
		sig.MulPrime(fu)
	}
	if !vIn {
		sig.MulPrime(fv)
	}
	sig.MulPrime(fe)
	child, ok := t.trie.ChildFor(m.Node, sig.Key())
	if !ok || !t.frequent(child) {
		return false
	}
	grown := &Match{
		Node:     child,
		Sig:      sig,
		vertices: make(map[graph.VertexID]struct{}, len(m.vertices)+1),
		edges:    make(map[graph.Edge]struct{}, len(m.edges)+1),
	}
	for vv := range m.vertices {
		grown.vertices[vv] = struct{}{}
	}
	for ee := range m.edges {
		grown.edges[ee] = struct{}{}
	}
	grown.vertices[e.U] = struct{}{}
	grown.vertices[e.V] = struct{}{}
	grown.edges[e] = struct{}{}
	return t.register(grown, w)
}

// reexpand implements the recovery procedure of §4.3: starting from edge e,
// greedily traverse the window sub-graph outward, keeping each edge whose
// addition still corresponds to a TPSTry++ node; edges that leave the trie
// are discarded and not traversed through. The resulting largest
// motif-matching sub-graph containing e (if any) is registered.
func (t *Tracker) reexpand(e graph.Edge, w *graph.Graph) {
	la, _ := w.Label(e.U)
	lb, _ := w.Label(e.V)

	// Seed with the edge itself: root(label(U)) extended by e. Try both
	// orientations; labels may differ in which root exists.
	seed := t.seedFromEdge(e, la, lb)
	if seed == nil {
		return
	}

	// Greedy growth: scan frontier edges repeatedly until no edge can be
	// added. Rejected edges are remembered and never re-tried for this
	// expansion (they "are discarded, and we do not traverse to their
	// neighbours").
	rejected := make(map[graph.Edge]struct{})
	for {
		extended := false
		for _, fe := range t.frontierEdges(seed, w, rejected) {
			sig := seed.Sig.Clone()
			fa, fb, fab := t.factorsFor(w, fe.U, fe.V)
			if !seed.Contains(fe.U) {
				sig.MulPrime(fa)
			}
			if !seed.Contains(fe.V) {
				sig.MulPrime(fb)
			}
			sig.MulPrime(fab)
			child, ok := t.trie.ChildFor(seed.Node, sig.Key())
			if !ok || !t.frequent(child) {
				rejected[fe] = struct{}{}
				continue
			}
			seed.Sig = sig
			seed.Node = child
			seed.vertices[fe.U] = struct{}{}
			seed.vertices[fe.V] = struct{}{}
			seed.edges[fe] = struct{}{}
			extended = true
		}
		if !extended {
			break
		}
	}
	t.register(seed, w)
}

// seedFromEdge builds the two-vertex match for edge e, or nil when the trie
// has no corresponding motif above threshold.
func (t *Tracker) seedFromEdge(e graph.Edge, la, lb graph.Label) *Match {
	for _, first := range []graph.Label{la, lb} {
		root, ok := t.trie.RootFor(first)
		if !ok || !t.frequent(root) {
			continue
		}
		sig := root.Sig.Clone()
		second := lb
		if first == lb {
			second = la
		}
		sig.MulPrime(t.factory.VertexFactor(second))
		sig.MulPrime(t.factory.EdgeFactor(la, lb))
		child, ok := t.trie.ChildFor(root, sig.Key())
		if !ok || !t.frequent(child) {
			continue
		}
		return &Match{
			Node:     child,
			Sig:      sig,
			vertices: map[graph.VertexID]struct{}{e.U: {}, e.V: {}},
			edges:    map[graph.Edge]struct{}{e: {}},
		}
	}
	return nil
}

// frontierEdges returns window edges incident to the match but not inside
// it and not previously rejected, in deterministic order.
func (t *Tracker) frontierEdges(m *Match, w *graph.Graph, rejected map[graph.Edge]struct{}) []graph.Edge {
	var out []graph.Edge
	seen := make(map[graph.Edge]struct{})
	//loom:orderinvariant deduplicates frontier edges into a set and sorts the result before returning
	for v := range m.vertices {
		for _, u := range w.Neighbors(v) {
			e := graph.Edge{U: v, V: u}.Normalize()
			if _, in := m.edges[e]; in {
				continue
			}
			if _, rej := rejected[e]; rej {
				continue
			}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// register adds m to the tracker if it is new and (in Verify mode) survives
// exact isomorphism checking. It reports whether the match was stored.
func (t *Tracker) register(m *Match, w *graph.Graph) bool {
	if m == nil {
		return false
	}
	k := m.key()
	if _, dup := t.byKey[k]; dup {
		return false
	}
	if t.opts.Verify && !t.verify(m, w) {
		t.stats.VerifyRejections++
		return false
	}
	m.ID = t.nextID
	t.nextID++
	t.matches[m.ID] = m
	t.byKey[k] = m.ID
	//loom:orderinvariant inserts m.ID into one set per distinct vertex; the final index is order-free
	for v := range m.vertices {
		set, ok := t.byVertex[v]
		if !ok {
			set = make(map[int64]struct{})
			t.byVertex[v] = set
		}
		set[m.ID] = struct{}{}
	}
	t.stats.MatchesCreated++
	t.enforceCaps(m)
	return true
}

// verify checks the match sub-graph against the motif's representative with
// exact isomorphism.
func (t *Tracker) verify(m *Match, w *graph.Graph) bool {
	sub := graph.New()
	//loom:orderinvariant builds a scratch graph only consulted through order-free isomorphism checking
	for v := range m.vertices {
		l, ok := w.Label(v)
		if !ok {
			return false
		}
		sub.AddVertex(v, l)
	}
	//loom:orderinvariant edge-set insertion into the same scratch graph; Isomorphic reads sorted views
	for e := range m.edges {
		if err := sub.AddEdge(e.U, e.V); err != nil {
			return false
		}
	}
	return iso.Isomorphic(sub, m.Node.Rep)
}

// enforceCaps drops the least valuable matches of any vertex of m whose
// fan-out exceeds the per-vertex cap. Value order: larger motifs first,
// then higher p-value, then newer. Vertices are visited in sorted order:
// dropping a match shrinks other vertices' sets too, so the visit order
// is observable — map order here made whole partitioning runs
// irreproducible (caught by the serve crash-recovery equivalence tests).
func (t *Tracker) enforceCaps(m *Match) {
	t.capVerts = t.capVerts[:0]
	for v := range m.vertices {
		t.capVerts = append(t.capVerts, v)
	}
	slices.Sort(t.capVerts)
	for _, v := range t.capVerts {
		set := t.byVertex[v]
		if len(set) <= t.opts.MaxMatchesPerVertex {
			continue
		}
		ids := make([]int64, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			mi, mj := t.matches[ids[i]], t.matches[ids[j]]
			if mi.Size() != mj.Size() {
				return mi.Size() > mj.Size()
			}
			pi, pj := t.trie.P(mi.Node), t.trie.P(mj.Node)
			if pi != pj {
				return pi > pj
			}
			return ids[i] > ids[j]
		})
		for _, id := range ids[t.opts.MaxMatchesPerVertex:] {
			t.drop(id)
			t.stats.MatchesDropped++
		}
	}
}

// drop removes match id from all indexes.
func (t *Tracker) drop(id int64) {
	m, ok := t.matches[id]
	if !ok {
		return
	}
	delete(t.matches, id)
	delete(t.byKey, m.key())
	for v := range m.vertices {
		delete(t.byVertex[v], id)
		if len(t.byVertex[v]) == 0 {
			delete(t.byVertex, v)
		}
	}
}

// RemoveVertex discards every match containing v (called after v's group is
// assigned to a partition and leaves the window).
func (t *Tracker) RemoveVertex(v graph.VertexID) {
	ids := make([]int64, 0, len(t.byVertex[v]))
	//loom:orderinvariant snapshots the id set; drop() deletions commute, leaving identical final indexes
	for id := range t.byVertex[v] {
		ids = append(ids, id)
	}
	for _, id := range ids {
		t.drop(id)
	}
	delete(t.byVertex, v)
}

// RemoveEdge discards every match whose edge set contains {u,v} (a stream
// deletion invalidated the edge, so any motif occurrence built on it no
// longer exists in the window). Matches merely touching both endpoints
// without using the edge survive.
func (t *Tracker) RemoveEdge(u, v graph.VertexID) {
	e := graph.Edge{U: u, V: v}.Normalize()
	ids := make([]int64, 0, len(t.byVertex[e.U]))
	//loom:orderinvariant snapshots the id set; drop() deletions commute, leaving identical final indexes
	for id := range t.byVertex[e.U] {
		if _, has := t.matches[id].edges[e]; has {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		t.drop(id)
	}
}

// MatchesContaining returns the live matches containing v, largest first.
func (t *Tracker) MatchesContaining(v graph.VertexID) []*Match {
	out := make([]*Match, 0, len(t.byVertex[v]))
	for id := range t.byVertex[v] {
		out = append(out, t.matches[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() > out[j].Size()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// GroupFor returns the transitive closure of vertices sharing a match with
// v (including v itself when it participates in any match, or just {v}
// otherwise): the set LOOM assigns to a single partition at once, so that
// overlapping motif occurrences are never split (paper §4.4). The returned
// slice is only valid until the next GroupFor call; callers that retain it
// must copy.
func (t *Tracker) GroupFor(v graph.VertexID) []graph.VertexID {
	// Fast path: a vertex in no live match is its own group. This is the
	// overwhelmingly common case on streams whose workload matches rarely
	// (or never, with an empty trie), and it must not pay for the closure
	// walk below.
	if len(t.byVertex[v]) == 0 {
		t.single[0] = v
		return t.single[:1]
	}
	group := map[graph.VertexID]struct{}{v: {}}
	queue := []graph.VertexID{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		//loom:orderinvariant grows a connected set to its closure; membership, not visit order, is what escapes (sorted below)
		for id := range t.byVertex[x] {
			//loom:orderinvariant same closure computation one level down
			for u := range t.matches[id].vertices {
				if _, in := group[u]; !in {
					group[u] = struct{}{}
					queue = append(queue, u)
				}
			}
		}
	}
	out := make([]graph.VertexID, 0, len(group))
	for u := range group {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}
