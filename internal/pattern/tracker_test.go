package pattern

import (
	"testing"

	"loom/internal/graph"
	"loom/internal/motif"
	"loom/internal/signature"
)

// fig1Trie builds the TPSTry++ for the paper's Figure 1 workload.
func fig1Trie(t *testing.T) *motif.Trie {
	t.Helper()
	f := signature.NewFactoryForAlphabet([]graph.Label{"a", "b", "c", "d"})
	tr := motif.New(f, motif.Options{MaxMotifVertices: 4})
	for _, q := range []struct {
		id string
		g  *graph.Graph
	}{
		{"q1", graph.Cycle("a", "b", "a", "b")},
		{"q2", graph.Path("a", "b", "c")},
		{"q3", graph.Path("a", "b", "c", "d")},
	} {
		if err := tr.AddQuery(q.id, q.g, 1); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// windowWith builds a window-resident graph and returns it.
func windowWith(t *testing.T, labels map[graph.VertexID]graph.Label, edges []graph.Edge) *graph.Graph {
	t.Helper()
	w := graph.New()
	for v, l := range labels {
		w.AddVertex(v, l)
	}
	for _, e := range edges {
		if err := w.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestObserveEdgeCreatesMatch(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := windowWith(t, map[graph.VertexID]graph.Label{1: "a", 2: "b"}, []graph.Edge{{U: 1, V: 2}})
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	ms := tk.MatchesContaining(1)
	if len(ms) != 1 {
		t.Fatalf("matches containing 1 = %d, want 1", len(ms))
	}
	if ms[0].Size() != 2 {
		t.Fatalf("match size = %d, want 2", ms[0].Size())
	}
	if got := tk.ActiveMatches(); got != 1 {
		t.Fatalf("active matches = %d, want 1", got)
	}
}

func TestObserveEdgeValidation(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0})
	w := windowWith(t, map[graph.VertexID]graph.Label{1: "a"}, nil)
	if err := tk.ObserveEdge(1, 2, w); err == nil {
		t.Fatal("missing endpoint should error")
	}
	w.AddVertex(2, "b")
	if err := tk.ObserveEdge(1, 2, w); err == nil {
		t.Fatal("edge not in window graph should error")
	}
}

func TestMatchGrowsAlongPath(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := graph.New()
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	w.AddVertex(3, "c")
	mustAddEdge(t, w, 1, 2)
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	mustAddEdge(t, w, 2, 3)
	if err := tk.ObserveEdge(2, 3, w); err != nil {
		t.Fatal(err)
	}
	// Expect matches: the original ab (1,2) retained, plus its growth abc
	// (1,2,3). A separate bc sub-match is not created — the edge extended
	// an existing match, so no re-expansion is needed and bc is subsumed.
	var sizes []int
	for _, m := range tk.MatchesContaining(2) {
		sizes = append(sizes, m.Size())
	}
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("match sizes at 2 = %v, want [3 2]", sizes)
	}
}

func mustAddEdge(t *testing.T, g *graph.Graph, u, v graph.VertexID) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestSquareMotifDetected(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{1: "a", 2: "b", 5: "b", 6: "a"} {
		w.AddVertex(v, l)
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 6}, {U: 5, V: 6}, {U: 1, V: 5}} {
		mustAddEdge(t, w, e.U, e.V)
		if err := tk.ObserveEdge(e.U, e.V, w); err != nil {
			t.Fatal(err)
		}
	}
	// The full square must be among the matches.
	found := false
	for _, m := range tk.MatchesContaining(1) {
		if m.Size() == 4 && len(m.Edges()) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("square motif not detected")
	}
	// Group closure spans all four vertices.
	g := tk.GroupFor(1)
	if len(g) != 4 {
		t.Fatalf("group = %v, want 4 vertices", g)
	}
}

func TestFig3Reexpansion(t *testing.T) {
	// The scenario of Figure 3: window holds a-b-c (matched as abc motif),
	// then a second c' attaches to b, forming S' = abc + c'. S' is not a
	// motif, so naive incremental matching would discard c'; re-expansion
	// must recover the second distinct abc instance {a,b,c'}.
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := graph.New()
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	w.AddVertex(3, "c")
	mustAddEdge(t, w, 1, 2)
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	mustAddEdge(t, w, 2, 3)
	if err := tk.ObserveEdge(2, 3, w); err != nil {
		t.Fatal(err)
	}
	before := tk.Stats()

	// Second c arrives, attached to b.
	w.AddVertex(4, "c")
	mustAddEdge(t, w, 2, 4)
	if err := tk.ObserveEdge(2, 4, w); err != nil {
		t.Fatal(err)
	}

	// The bc' and (via re-expansion or growth) an abc' match must exist.
	var got3 int
	for _, m := range tk.MatchesContaining(4) {
		if m.Size() == 3 {
			got3++
			vs := m.Vertices()
			if vs[0] != 1 || vs[1] != 2 || vs[2] != 4 {
				t.Fatalf("3-match vertices = %v, want [1 2 4]", vs)
			}
		}
	}
	if got3 != 1 {
		t.Fatalf("abc' matches containing c' = %d, want 1", got3)
	}
	// The group containing c' must include the original abc too (shared
	// substructure via vertex 2).
	grp := tk.GroupFor(4)
	if len(grp) != 4 {
		t.Fatalf("group = %v, want {1,2,3,4}", grp)
	}
	_ = before
}

func TestReexpansionFromColdEdge(t *testing.T) {
	// No prior matches at all (tracker created after edges existed): a new
	// edge must seed a match via re-expansion over the window graph.
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := graph.New()
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	w.AddVertex(3, "c")
	mustAddEdge(t, w, 1, 2)
	mustAddEdge(t, w, 2, 3)
	// Tracker never saw (1,2); observe only (2,3).
	if err := tk.ObserveEdge(2, 3, w); err != nil {
		t.Fatal(err)
	}
	// Re-expansion should have grown through (1,2) to the full abc.
	found := false
	for _, m := range tk.MatchesContaining(3) {
		if m.Size() == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("re-expansion should recover abc from a cold edge")
	}
	if tk.Stats().Reexpansions == 0 {
		t.Fatal("re-expansion counter should have incremented")
	}
}

func TestNonMotifEdgeIgnored(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	// d-d edges never occur in the workload.
	w := windowWith(t, map[graph.VertexID]graph.Label{1: "d", 2: "d"}, []graph.Edge{{U: 1, V: 2}})
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	if tk.ActiveMatches() != 0 {
		t.Fatalf("dd edge should produce no matches, got %d", tk.ActiveMatches())
	}
}

func TestThresholdFiltersMotifs(t *testing.T) {
	tr := fig1Trie(t)
	// cd has p = 1/3; with threshold 0.5 it must not be tracked.
	tk := NewTracker(tr, Options{Threshold: 0.5})
	w := windowWith(t, map[graph.VertexID]graph.Label{1: "c", 2: "d"}, []graph.Edge{{U: 1, V: 2}})
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	if tk.ActiveMatches() != 0 {
		t.Fatal("cd is below threshold and must not be tracked")
	}
	// ab has p = 1.0 and must be tracked.
	w2 := windowWith(t, map[graph.VertexID]graph.Label{1: "a", 2: "b"}, []graph.Edge{{U: 1, V: 2}})
	if err := tk.ObserveEdge(1, 2, w2); err != nil {
		t.Fatal(err)
	}
	if tk.ActiveMatches() != 1 {
		t.Fatal("ab is above threshold and must be tracked")
	}
}

func TestRemoveVertexClearsMatches(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := windowWith(t, map[graph.VertexID]graph.Label{1: "a", 2: "b"}, []graph.Edge{{U: 1, V: 2}})
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	tk.RemoveVertex(1)
	if tk.ActiveMatches() != 0 {
		t.Fatal("removing a vertex must drop its matches")
	}
	if len(tk.MatchesContaining(2)) != 0 {
		t.Fatal("shared match must be gone for the other endpoint too")
	}
	if got := tk.GroupFor(2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("GroupFor(2) = %v, want [2]", got)
	}
}

func TestDuplicateMatchNotRegistered(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	w := windowWith(t, map[graph.VertexID]graph.Label{1: "a", 2: "b"}, []graph.Edge{{U: 1, V: 2}})
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	// Observing the same edge again must not duplicate the match.
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	if tk.ActiveMatches() != 1 {
		t.Fatalf("active = %d, want 1 (dedup)", tk.ActiveMatches())
	}
}

func TestMatchCapEnforced(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3, MaxMatchesPerVertex: 2})
	// Star of b with many a's: each edge is an ab match through b.
	w := graph.New()
	w.AddVertex(0, "b")
	for i := 1; i <= 5; i++ {
		w.AddVertex(graph.VertexID(i), "a")
		mustAddEdge(t, w, 0, graph.VertexID(i))
		if err := tk.ObserveEdge(0, graph.VertexID(i), w); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tk.MatchesContaining(0)); got > 2 {
		t.Fatalf("matches at hub = %d, want <= 2 (cap)", got)
	}
	if tk.Stats().MatchesDropped == 0 {
		t.Fatal("cap enforcement should have dropped matches")
	}
}

func TestVerifyModeAcceptsTrueMatches(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3, Verify: true})
	w := graph.New()
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	w.AddVertex(3, "c")
	mustAddEdge(t, w, 1, 2)
	if err := tk.ObserveEdge(1, 2, w); err != nil {
		t.Fatal(err)
	}
	mustAddEdge(t, w, 2, 3)
	if err := tk.ObserveEdge(2, 3, w); err != nil {
		t.Fatal(err)
	}
	// True matches must survive verification.
	found := false
	for _, m := range tk.MatchesContaining(2) {
		if m.Size() == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("verification must not reject genuine matches")
	}
	if tk.Stats().VerifyRejections != 0 {
		t.Fatalf("unexpected rejections: %d", tk.Stats().VerifyRejections)
	}
}

func TestGroupForTransitiveClosure(t *testing.T) {
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3})
	// Chain a-b-c-d: abc and bcd overlap on {b,c}; abcd (4 vertices) also
	// matches (q3). Group of a must reach d.
	w := graph.New()
	labels := []graph.Label{"a", "b", "c", "d"}
	for i, l := range labels {
		w.AddVertex(graph.VertexID(i+1), l)
	}
	for i := 1; i < 4; i++ {
		mustAddEdge(t, w, graph.VertexID(i), graph.VertexID(i+1))
		if err := tk.ObserveEdge(graph.VertexID(i), graph.VertexID(i+1), w); err != nil {
			t.Fatal(err)
		}
	}
	grp := tk.GroupFor(1)
	if len(grp) != 4 {
		t.Fatalf("group = %v, want the whole chain", grp)
	}
}
