package pattern

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"loom/internal/graph"
)

// churnFingerprint renders the tracker's full observable state as a string:
// for every live window vertex in ascending order, the matches containing it
// (ID, motif size, vertex set, edge set), plus the live-match count and the
// activity counters. Two runs that diverge anywhere — match identity, drop
// order, ID assignment — produce different strings.
func churnFingerprint(tk *Tracker, w *graph.Graph) string {
	var sb strings.Builder
	verts := w.Vertices()
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	for _, v := range verts {
		fmt.Fprintf(&sb, "%d:", v)
		for _, m := range tk.MatchesContaining(v) {
			fmt.Fprintf(&sb, " #%d%v%v", m.ID, m.Vertices(), m.Edges())
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "active=%d stats=%+v\n", tk.ActiveMatches(), tk.Stats())
	return sb.String()
}

// runChurnSchedule replays one fixed seeded schedule of interleaved window
// mutations — edge arrivals observed by the tracker, edge deletions, vertex
// deletions and re-additions — and returns a fingerprint accumulated at
// checkpoints along the way, so a mid-run divergence is caught even if the
// final states happen to re-converge. MaxMatchesPerVertex is deliberately
// tiny to force the enforceCaps drop path (the historical source of
// map-order nondeterminism) on nearly every arrival.
func runChurnSchedule(t *testing.T, seed int64) string {
	t.Helper()
	tr := fig1Trie(t)
	tk := NewTracker(tr, Options{Threshold: 0.3, MaxMatchesPerVertex: 2})
	w := graph.New()
	rng := rand.New(rand.NewSource(seed))

	alphabet := []graph.Label{"a", "b", "c", "d"}
	labelFor := func(v graph.VertexID) graph.Label { return alphabet[int(v)%len(alphabet)] }
	randV := func() graph.VertexID { return graph.VertexID(1 + rng.Intn(12)) }

	liveEdges := func() []graph.Edge {
		var out []graph.Edge
		for _, v := range w.Vertices() {
			for _, u := range w.Neighbors(v) {
				if v < u {
					out = append(out, graph.Edge{U: v, V: u})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].U != out[j].U {
				return out[i].U < out[j].U
			}
			return out[i].V < out[j].V
		})
		return out
	}

	var sb strings.Builder
	for step := 0; step < 600; step++ {
		switch x := rng.Float64(); {
		case x < 0.45: // edge arrival, observed by the tracker
			u, v := randV(), randV()
			if u == v {
				continue
			}
			if !w.HasVertex(u) {
				w.AddVertex(u, labelFor(u))
			}
			if !w.HasVertex(v) {
				w.AddVertex(v, labelFor(v))
			}
			if w.HasEdge(u, v) {
				continue
			}
			mustAddEdge(t, w, u, v)
			if err := tk.ObserveEdge(u, v, w); err != nil {
				t.Fatalf("seed %d step %d: ObserveEdge(%d,%d): %v", seed, step, u, v, err)
			}
		case x < 0.60: // edge deletion
			es := liveEdges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			w.RemoveEdge(e.U, e.V)
			tk.RemoveEdge(e.U, e.V)
			for _, m := range tk.MatchesContaining(e.U) {
				if m.Contains(e.V) {
					for _, me := range m.Edges() {
						if me == e {
							t.Fatalf("seed %d step %d: match #%d still holds removed edge %v", seed, step, m.ID, e)
						}
					}
				}
			}
		case x < 0.75: // vertex deletion (group assigned / stream removal)
			v := randV()
			if !w.HasVertex(v) {
				continue
			}
			w.RemoveVertex(v)
			tk.RemoveVertex(v)
			if ms := tk.MatchesContaining(v); len(ms) != 0 {
				t.Fatalf("seed %d step %d: %d matches survive RemoveVertex(%d)", seed, step, len(ms), v)
			}
		default: // re-add a vertex that may have been deleted earlier
			v := randV()
			if !w.HasVertex(v) {
				w.AddVertex(v, labelFor(v))
			}
		}
		if step%97 == 0 {
			fmt.Fprintf(&sb, "-- step %d\n%s", step, churnFingerprint(tk, w))
		}
	}
	fmt.Fprintf(&sb, "-- final\n%s", churnFingerprint(tk, w))
	return sb.String()
}

// TestTrackerChurnReplayDeterminism replays interleaved add/remove schedules
// and requires bit-identical tracker state across replays (the PR 6
// regression style, extended to deletions): serve-layer crash recovery
// replays the WAL through this code, so any map-order dependence in the
// remove paths would make a recovered server diverge from its never-stopped
// control.
func TestTrackerChurnReplayDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		want := runChurnSchedule(t, seed)
		if !strings.Contains(want, "#") {
			t.Fatalf("seed %d: schedule produced no matches; fingerprint is vacuous", seed)
		}
		for rep := 1; rep < 5; rep++ {
			if got := runChurnSchedule(t, seed); got != want {
				t.Fatalf("seed %d replay %d diverged:\n--- first run ---\n%s\n--- replay ---\n%s", seed, rep, want, got)
			}
		}
	}
}
