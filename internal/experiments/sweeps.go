package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/stream"
)

// E1 sweeps the stream-window size: larger windows see more motif context
// but delay assignment (and cost memory). Reports traversal probability,
// motif groups formed, and throughput.
func (r *Runner) E1() (*Table, error) {
	n := r.scale(1200, 8000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(10, 20), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Window-size sweep (LOOM)",
		Columns: []string{"window", "traversal prob", "cut%", "motif groups", "grouped vertices", "vertices/sec"},
	}
	windows := []int{16, 64, 256, 1024}
	if r.Quick {
		windows = []int{16, 64, 256}
	}
	for _, w := range windows {
		start := time.Now()
		a, p, err := r.runLoom(inst, r.loomConfig(n, k, w, 0.05), stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		prob, _, err := traversalProbability(inst.g, a, inst.w)
		if err != nil {
			return nil, err
		}
		st := p.Stats()
		t.AddRow(fmt.Sprintf("%d", w), fmtF(prob), fmtP(metrics.CutFraction(inst.g, a)),
			fmt.Sprintf("%d", st.MotifGroups), fmt.Sprintf("%d", st.GroupedVertices),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()))
	}
	t.AddNote("grouped vertices grow with window size; partitioning throughput falls")
	return t, nil
}

// E2 sweeps the motif frequency threshold T (§4.2): low thresholds track
// many motifs (large groups, more grouping work); high thresholds approach
// plain LDG.
func (r *Runner) E2() (*Table, error) {
	n := r.scale(1200, 8000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(10, 20), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "Motif-threshold sweep (LOOM)",
		Columns: []string{"T", "frequent motifs", "traversal prob", "cut%", "motif groups", "largest group"},
	}
	for _, th := range []float64{0.01, 0.05, 0.15, 0.40, 0.90} {
		a, p, err := r.runLoom(inst, r.loomConfig(n, k, 256, th), stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		prob, _, err := traversalProbability(inst.g, a, inst.w)
		if err != nil {
			return nil, err
		}
		st := p.Stats()
		t.AddRow(fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%d", len(inst.trie.FrequentMotifs(th))),
			fmtF(prob), fmtP(metrics.CutFraction(inst.g, a)),
			fmt.Sprintf("%d", st.MotifGroups), fmt.Sprintf("%d", st.LargestGroup))
	}
	t.AddNote("T -> 1 disables grouping (few motifs clear the bar); T -> 0 tracks everything")
	return t, nil
}

// E3 reports vertex/edge balance across k for every partitioner — §4.4
// worries that whole-group assignment could unbalance partitions; LDG's
// capacity penalty is supposed to contain it.
func (r *Runner) E3() (*Table, error) {
	n := r.scale(1200, 8000)
	inst, err := r.newInstance(n, 2, 4, r.scale(10, 20), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   "Balance across k",
		Columns: []string{"k", "partitioner", "vertex balance", "edge balance", "cut%"},
	}
	ks := []int{4, 8, 16}
	for _, k := range ks {
		baselines, err := baselineSet(inst.g, k, r.Seed)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"hash", "fennel", "ldg"} {
			a, err := r.runBaseline(inst.g, baselines[name], stream.RandomOrder)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", k), name,
				fmt.Sprintf("%.3f", metrics.VertexImbalance(a)),
				fmt.Sprintf("%.3f", metrics.EdgeImbalance(inst.g, a)),
				fmtP(metrics.CutFraction(inst.g, a)))
		}
		la, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), "loom",
			fmt.Sprintf("%.3f", metrics.VertexImbalance(la)),
			fmt.Sprintf("%.3f", metrics.EdgeImbalance(inst.g, la)),
			fmtP(metrics.CutFraction(inst.g, la)))
		if b := metrics.VertexImbalance(la); b > 1.8 {
			return nil, fmt.Errorf("E3: LOOM balance %.3f blew past slack at k=%d", b, k)
		}
	}
	t.AddNote("vertex balance is max-partition/ideal; 1.0 is perfect, slack configured 1.2")
	return t, nil
}

// E4 measures partitioning throughput (vertices/second) as n grows —
// the scalability argument for streaming partitioners (§3.1).
func (r *Runner) E4() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Partitioner throughput vs n",
		Columns: []string{"n", "partitioner", "vertices/sec", "elapsed"},
	}
	sizes := []int{1000, 4000, 16000}
	if r.Quick {
		sizes = []int{500, 2000}
	}
	k := 8
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(r.Seed))
		lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: rng}
		g, err := gen.BarabasiAlbert(n, 2, lab, rng)
		if err != nil {
			return nil, err
		}
		mix := query.DefaultMix(10)
		w, err := query.GenerateWorkload(mix, gen.DefaultAlphabet(4), rng)
		if err != nil {
			return nil, err
		}
		inst := &instance{g: g, alphabet: gen.DefaultAlphabet(4), w: w}
		trie, err := buildTrieFor(inst)
		if err != nil {
			return nil, err
		}
		inst.trie = trie

		baselines, err := baselineSet(g, k, r.Seed)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"hash", "ldg", "fennel"} {
			start := time.Now()
			if _, err := r.runBaseline(g, baselines[name], stream.RandomOrder); err != nil {
				return nil, err
			}
			el := time.Since(start)
			t.AddRow(fmt.Sprintf("%d", n), name, fmt.Sprintf("%.0f", float64(n)/el.Seconds()), el.Round(time.Microsecond).String())
		}
		start := time.Now()
		if _, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), stream.RandomOrder); err != nil {
			return nil, err
		}
		el := time.Since(start)
		t.AddRow(fmt.Sprintf("%d", n), "loom", fmt.Sprintf("%.0f", float64(n)/el.Seconds()), el.Round(time.Microsecond).String())
	}
	t.AddNote("loom pays for motif tracking; baselines are a single scan")
	return t, nil
}

// E5 compares the streaming heuristics against the offline multilevel
// reference (the METIS stand-in) on cut quality.
func (r *Runner) E5() (*Table, error) {
	n := r.scale(1000, 6000)
	k := 8
	rng := rand.New(rand.NewSource(r.Seed))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: rng}
	g, err := gen.PlantedPartitionDegrees(n, k, 12, 3, lab, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E5",
		Title:   "Offline multilevel vs streaming heuristics (community graph)",
		Columns: []string{"partitioner", "cut%", "vertex balance", "purity", "NMI"},
	}
	truth := func(v graph.VertexID) int { return gen.Community(v, k) }
	addRow := func(name string, a *partition.Assignment) {
		t.AddRow(name, fmtP(metrics.CutFraction(g, a)),
			fmt.Sprintf("%.3f", metrics.VertexImbalance(a)),
			fmt.Sprintf("%.3f", metrics.Purity(a, truth)),
			fmt.Sprintf("%.3f", metrics.NMI(a, truth)))
	}
	ml := &partition.Multilevel{K: k, Seed: r.Seed}
	ma, err := ml.Partition(g)
	if err != nil {
		return nil, err
	}
	addRow("multilevel", ma)

	baselines, err := baselineSet(g, k, r.Seed)
	if err != nil {
		return nil, err
	}
	ldgCut := 0.0
	for _, name := range []string{"ldg", "fennel", "hash"} {
		a, err := r.runBaseline(g, baselines[name], stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		if name == "ldg" {
			ldgCut = metrics.CutFraction(g, a)
		}
		addRow(name, a)
	}
	if mc := metrics.CutFraction(g, ma); mc > ldgCut {
		return nil, fmt.Errorf("E5: multilevel cut %.4f worse than LDG %.4f", mc, ldgCut)
	}
	t.AddNote("purity/NMI measure recovery of the planted communities (1.0 = exact)")
	t.AddNote("offline multilevel (METIS stand-in) sets the quality bar streaming heuristics trade away")
	return t, nil
}

// E6 sweeps workload skew: the more skewed the query frequencies, the more
// the TPSTry++'s frequent set concentrates, and the more LOOM's grouping
// pays off on exactly the hot motifs.
func (r *Runner) E6() (*Table, error) {
	n := r.scale(1200, 8000)
	k := 8
	t := &Table{
		ID:      "E6",
		Title:   "Workload-skew sweep (Zipf exponent s over query frequencies)",
		Columns: []string{"s", "ldg trav-p", "loom trav-p", "improvement"},
	}
	for _, s := range []float64{0, 0.5, 1.0, 1.5} {
		inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), s)
		if err != nil {
			return nil, err
		}
		cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: r.Seed}
		ldg, err := partition.NewLDG(cfg)
		if err != nil {
			return nil, err
		}
		la, err := r.runBaseline(inst.g, ldg, stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		ma, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		lp, _, err := traversalProbability(inst.g, la, inst.w)
		if err != nil {
			return nil, err
		}
		mp, _, err := traversalProbability(inst.g, ma, inst.w)
		if err != nil {
			return nil, err
		}
		imp := 0.0
		if lp > 0 {
			imp = 1 - mp/lp
		}
		t.AddRow(fmt.Sprintf("%.1f", s), fmtF(lp), fmtF(mp), fmtP(imp))
	}
	t.AddNote("improvement = 1 - loom/ldg; skew concentrates probability mass on fewer motifs")
	return t, nil
}

// E7 compares query-mix compositions: path-only, cycle-heavy and star-heavy
// workloads stress different motif topologies.
func (r *Runner) E7() (*Table, error) {
	n := r.scale(1200, 8000)
	k := 8
	t := &Table{
		ID:      "E7",
		Title:   "Query-mix sensitivity",
		Columns: []string{"mix", "trie motifs", "ldg trav-p", "loom trav-p", "improvement"},
	}
	mixes := map[string]query.Mix{
		"paths": {
			Shapes: []query.Shape{query.PathShape}, Proportions: []float64{1},
			MinSize: 2, MaxSize: 4, Count: r.scale(10, 20),
		},
		"cycle-heavy": {
			Shapes:      []query.Shape{query.CycleShape, query.PathShape},
			Proportions: []float64{0.7, 0.3},
			MinSize:     3, MaxSize: 4, Count: r.scale(10, 20),
		},
		"star-heavy": {
			Shapes:      []query.Shape{query.StarShape, query.PathShape},
			Proportions: []float64{0.7, 0.3},
			MinSize:     3, MaxSize: 4, Count: r.scale(10, 20),
		},
	}
	for _, name := range []string{"paths", "cycle-heavy", "star-heavy"} {
		rng := rand.New(rand.NewSource(r.Seed))
		alphabet := gen.DefaultAlphabet(4)
		lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
		g, err := gen.BarabasiAlbert(n, 2, lab, rng)
		if err != nil {
			return nil, err
		}
		w, err := query.GenerateWorkload(mixes[name], alphabet, rng)
		if err != nil {
			return nil, err
		}
		inst := &instance{g: g, alphabet: alphabet, w: w}
		trie, err := buildTrieFor(inst)
		if err != nil {
			return nil, err
		}
		inst.trie = trie

		cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: r.Seed}
		ldg, err := partition.NewLDG(cfg)
		if err != nil {
			return nil, err
		}
		la, err := r.runBaseline(g, ldg, stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		ma, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		lp, _, err := traversalProbability(g, la, w)
		if err != nil {
			return nil, err
		}
		mp, _, err := traversalProbability(g, ma, w)
		if err != nil {
			return nil, err
		}
		imp := 0.0
		if lp > 0 {
			imp = 1 - mp/lp
		}
		t.AddRow(name, fmt.Sprintf("%d", trie.NumNodes()), fmtF(lp), fmtF(mp), fmtP(imp))
	}
	return t, nil
}

// buildTrieFor constructs the TPSTry++ for an instance's workload.
func buildTrieFor(inst *instance) (*trieType, error) {
	trie := newTrieForAlphabet(inst.alphabet)
	if err := inst.w.BuildTrie(trie); err != nil {
		return nil, err
	}
	return trie, nil
}
