package experiments

import (
	"fmt"
	"math/rand"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/iso"
	"loom/internal/metrics"
	"loom/internal/query"
	"loom/internal/stream"
)

// E8 audits the number-theoretic signatures against exact isomorphism
// (§4.3 claims collisions are "very low"): random pairs of small motifs are
// compared under both equivalences, reporting agreement, false positives
// (signature-equal but non-isomorphic) and false negatives (must be zero —
// isomorphic graphs always share a signature).
func (r *Runner) E8() (*Table, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	alphabet := gen.DefaultAlphabet(3)
	trie := newTrieForAlphabet(alphabet)
	f := trie.Factory()

	pairs := r.scale(2000, 20000)
	var agree, falsePos, falseNeg, sigEqual, isoEqual int
	for i := 0; i < pairs; i++ {
		a := randomMotif(rng, alphabet)
		b := randomMotif(rng, alphabet)
		se := f.SignatureOf(a).Equal(f.SignatureOf(b))
		ie := iso.Isomorphic(a, b)
		if se {
			sigEqual++
		}
		if ie {
			isoEqual++
		}
		switch {
		case se == ie:
			agree++
		case se && !ie:
			falsePos++
		default:
			falseNeg++
		}
	}
	t := &Table{
		ID:      "E8",
		Title:   "Signature fidelity vs exact isomorphism (random motif pairs)",
		Columns: []string{"pairs", "agreement", "sig-equal", "iso-equal", "false positives", "false negatives"},
	}
	t.AddRow(fmt.Sprintf("%d", pairs), fmtP(float64(agree)/float64(pairs)),
		fmt.Sprintf("%d", sigEqual), fmt.Sprintf("%d", isoEqual),
		fmt.Sprintf("%d", falsePos), fmt.Sprintf("%d", falseNeg))
	if falseNeg != 0 {
		return nil, fmt.Errorf("E8: %d false negatives — signatures must be isomorphism-invariant", falseNeg)
	}
	rate := float64(falsePos) / float64(pairs)
	t.AddNote("false-positive (collision) rate: %s — the paper's 'very low' claim", fmtP(rate))
	if rate > 0.05 {
		return nil, fmt.Errorf("E8: collision rate %.3f implausibly high", rate)
	}
	return t, nil
}

// randomMotif generates a small connected labelled graph (2-5 vertices,
// tree plus up to 2 extra edges).
func randomMotif(rng *rand.Rand, alphabet []graph.Label) *graph.Graph {
	n := 2 + rng.Intn(4)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i), alphabet[rng.Intn(len(alphabet))])
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(graph.VertexID(rng.Intn(i)), graph.VertexID(i)); err != nil {
			panic(err)
		}
	}
	for e := 0; e < rng.Intn(3); e++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// E9 isolates the motif-placement win: LOOM vs LOOM with motif tracking
// disabled (pure windowed LDG) on the same instance, order and seed.
func (r *Runner) E9() (*Table, error) {
	n := r.scale(1500, 10000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E9",
		Title:   "Ablation: motif grouping on/off",
		Columns: []string{"variant", "traversal prob", "cut%", "motif groups"},
	}
	full := r.loomConfig(n, k, 256, 0.05)
	af, pf, err := r.runLoom(inst, full, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	off := full
	off.DisableMotifs = true
	ao, po, err := r.runLoom(inst, off, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	fp, _, err := traversalProbability(inst.g, af, inst.w)
	if err != nil {
		return nil, err
	}
	op, _, err := traversalProbability(inst.g, ao, inst.w)
	if err != nil {
		return nil, err
	}
	t.AddRow("loom", fmtF(fp), fmtP(metrics.CutFraction(inst.g, af)), fmt.Sprintf("%d", pf.Stats().MotifGroups))
	t.AddRow("loom-nomotifs", fmtF(op), fmtP(metrics.CutFraction(inst.g, ao)), fmt.Sprintf("%d", po.Stats().MotifGroups))
	if fp > op+0.02 {
		return nil, fmt.Errorf("E9: grouping made traversal probability worse (%.4f vs %.4f)", fp, op)
	}
	t.AddNote("the delta between rows is the entire contribution of motif grouping")
	return t, nil
}

// E10 compares signature-only match capture with exact-isomorphism-verified
// capture: groups formed, rejections, and resulting quality.
func (r *Runner) E10() (*Table, error) {
	n := r.scale(1500, 10000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E10",
		Title:   "Ablation: signature-only vs verified motif matching",
		Columns: []string{"variant", "traversal prob", "matches created", "verify rejections", "motif groups"},
	}
	base := r.loomConfig(n, k, 256, 0.05)
	a1, p1, err := r.runLoom(inst, base, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	verified := base
	verified.Verify = true
	a2, p2, err := r.runLoom(inst, verified, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	pr1, _, err := traversalProbability(inst.g, a1, inst.w)
	if err != nil {
		return nil, err
	}
	pr2, _, err := traversalProbability(inst.g, a2, inst.w)
	if err != nil {
		return nil, err
	}
	s1, s2 := p1.Stats(), p2.Stats()
	t.AddRow("signature-only", fmtF(pr1), fmt.Sprintf("%d", s1.Tracker.MatchesCreated),
		fmt.Sprintf("%d", s1.Tracker.VerifyRejections), fmt.Sprintf("%d", s1.MotifGroups))
	t.AddRow("verified", fmtF(pr2), fmt.Sprintf("%d", s2.Tracker.MatchesCreated),
		fmt.Sprintf("%d", s2.Tracker.VerifyRejections), fmt.Sprintf("%d", s2.MotifGroups))
	t.AddNote("Song et al. skip verification for partitioning; rejections measure what that costs")
	return t, nil
}

// E11 disables the co-assignment of overlapping motif matches (§4.4): each
// evicted vertex takes only its largest match with it.
func (r *Runner) E11() (*Table, error) {
	n := r.scale(1500, 10000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E11",
		Title:   "Ablation: overlap co-assignment on/off",
		Columns: []string{"variant", "traversal prob", "cut%", "largest group", "vertex balance"},
	}
	base := r.loomConfig(n, k, 256, 0.05)
	a1, p1, err := r.runLoom(inst, base, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	split := base
	split.SplitOverlaps = true
	a2, p2, err := r.runLoom(inst, split, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	pr1, _, err := traversalProbability(inst.g, a1, inst.w)
	if err != nil {
		return nil, err
	}
	pr2, _, err := traversalProbability(inst.g, a2, inst.w)
	if err != nil {
		return nil, err
	}
	t.AddRow("co-assign (paper)", fmtF(pr1), fmtP(metrics.CutFraction(inst.g, a1)),
		fmt.Sprintf("%d", p1.Stats().LargestGroup), fmt.Sprintf("%.3f", metrics.VertexImbalance(a1)))
	t.AddRow("largest-match only", fmtF(pr2), fmtP(metrics.CutFraction(inst.g, a2)),
		fmt.Sprintf("%d", p2.Stats().LargestGroup), fmt.Sprintf("%.3f", metrics.VertexImbalance(a2)))
	t.AddNote("co-assignment risks larger groups (balance pressure) in exchange for keeping shared substructure local")
	return t, nil
}

var _ = query.DefaultMix // keep import symmetry with sweeps.go
