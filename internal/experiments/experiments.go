// Package experiments implements every experiment in EXPERIMENTS.md: the
// paper's three figures (F1–F3), its three textual claims (C1–C3), and the
// future-work evaluation the paper commits to (E1–E11). Each experiment is
// a method on Runner returning a Table; cmd/loom-bench prints them and
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"loom/internal/cluster"
	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/stream"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as RFC-4180 CSV, one header row plus data
// rows; notes become trailing comment lines prefixed with "#".
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Runner executes experiments. Quick mode shrinks instance sizes so the
// full suite runs in seconds (used by benchmarks and CI); full mode uses
// the sizes reported in EXPERIMENTS.md.
type Runner struct {
	Seed  int64
	Quick bool
	// Out receives progress lines when non-nil.
	Out io.Writer
}

// scale returns quick when Quick, full otherwise.
func (r *Runner) scale(quick, full int) int {
	if r.Quick {
		return quick
	}
	return full
}

func (r *Runner) logf(format string, args ...any) {
	if r.Out != nil {
		fmt.Fprintf(r.Out, format+"\n", args...)
	}
}

// Spec describes one experiment for registry purposes.
type Spec struct {
	ID    string
	Title string
	Run   func(*Runner) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Spec {
	return []Spec{
		{"F1", "Figure 1: example graph, workload and q1's match", (*Runner).F1},
		{"F2", "Figure 2: TPSTry++ for the Figure 1 workload", (*Runner).F2},
		{"F3", "Figure 3: motif matching over the graph-stream", (*Runner).F3},
		{"C1", "Claim: LDG cuts up to 90% fewer edges than hash", (*Runner).C1},
		{"C2", "Claim: LOOM lowers inter-partition traversal probability", (*Runner).C2},
		{"C3", "Stream-order sensitivity", (*Runner).C3},
		{"E1", "Window-size sweep", (*Runner).E1},
		{"E2", "Motif-threshold sweep", (*Runner).E2},
		{"E3", "Partition balance across k", (*Runner).E3},
		{"E4", "Partitioner throughput", (*Runner).E4},
		{"E5", "Offline multilevel reference", (*Runner).E5},
		{"E6", "Workload skew sweep", (*Runner).E6},
		{"E7", "Query-mix sensitivity", (*Runner).E7},
		{"E8", "Signature fidelity vs exact isomorphism", (*Runner).E8},
		{"E9", "Ablation: motif grouping disabled", (*Runner).E9},
		{"E10", "Ablation: verified vs signature-only matching", (*Runner).E10},
		{"E11", "Ablation: overlap co-assignment disabled", (*Runner).E11},
		{"E12", "Future work: traversal-weighted LDG", (*Runner).E12},
		{"E13", "Future work: local split of large motif groups", (*Runner).E13},
		{"E14", "Sharded-store messages + hotspot replication", (*Runner).E14},
		{"E15", "Restreaming: pass-count sweep vs single-pass and multilevel", (*Runner).E15},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}

// ---- shared helpers ----

// instance bundles a data graph, workload and trie for an experiment.
type instance struct {
	g        *graph.Graph
	alphabet []graph.Label
	w        *query.Workload
	trie     *motif.Trie
}

// newInstance builds the standard C2-style instance: a BA graph with
// uniform labels and a mixed path/star/cycle/tree workload.
func (r *Runner) newInstance(n, mPer, alphaSize, queries int, zipf float64) (*instance, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	alphabet := gen.DefaultAlphabet(alphaSize)
	lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
	g, err := gen.BarabasiAlbert(n, mPer, lab, rng)
	if err != nil {
		return nil, err
	}
	mix := query.DefaultMix(queries)
	mix.ZipfSkew = zipf
	w, err := query.GenerateWorkload(mix, alphabet, rng)
	if err != nil {
		return nil, err
	}
	trie := motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{MaxMotifVertices: 4})
	if err := w.BuildTrie(trie); err != nil {
		return nil, err
	}
	return &instance{g: g, alphabet: alphabet, w: w, trie: trie}, nil
}

// loomConfig builds a LOOM config for the instance.
func (r *Runner) loomConfig(n, k, window int, threshold float64) core.Config {
	return core.Config{
		Partition:  partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: r.Seed},
		WindowSize: window,
		Threshold:  threshold,
	}
}

// runLoom streams the graph through LOOM and returns the assignment.
func (r *Runner) runLoom(inst *instance, cfg core.Config, order stream.Order) (*partition.Assignment, *core.Partitioner, error) {
	elems, err := stream.FromGraph(inst.g, order, rand.New(rand.NewSource(r.Seed+100)))
	if err != nil {
		return nil, nil, err
	}
	p, err := core.New(cfg, inst.trie)
	if err != nil {
		return nil, nil, err
	}
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		return nil, nil, err
	}
	return a, p, nil
}

// runBaseline streams the graph through a workload-agnostic heuristic.
func (r *Runner) runBaseline(g *graph.Graph, s partition.Streaming, order stream.Order) (*partition.Assignment, error) {
	vs, err := stream.VertexOrder(g, order, rand.New(rand.NewSource(r.Seed+100)))
	if err != nil {
		return nil, err
	}
	return partition.PartitionStream(g, vs, s), nil
}

// traversalProbability runs the workload exhaustively against an
// assignment and returns the inter-partition traversal probability and
// match-edge cut fraction.
func traversalProbability(g *graph.Graph, a *partition.Assignment, w *query.Workload) (float64, float64, error) {
	c, err := cluster.New(g, a, cluster.DefaultCostModel())
	if err != nil {
		return 0, 0, err
	}
	res := c.RunWorkloadExhaustive(w)
	return res.TraversalProbability(), res.MatchCutFraction(), nil
}

// fmtF renders a float at 4 decimals.
func fmtF(x float64) string { return fmt.Sprintf("%.4f", x) }

// fmtP renders a percentage at 1 decimal.
func fmtP(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// baselineSet builds the standard comparison set for a graph.
func baselineSet(g *graph.Graph, k int, seed int64) (map[string]partition.Streaming, error) {
	n := g.NumVertices()
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: seed}
	hash, err := partition.NewHash(cfg)
	if err != nil {
		return nil, err
	}
	ldg, err := partition.NewLDG(cfg)
	if err != nil {
		return nil, err
	}
	fennel, err := partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
	if err != nil {
		return nil, err
	}
	return map[string]partition.Streaming{
		"hash":   hash,
		"ldg":    ldg,
		"fennel": fennel,
	}, nil
}

var _ = metrics.CutFraction // referenced by experiment files

// trieType aliases the TPSTry++ for experiment helpers.
type trieType = motif.Trie

// newTrieForAlphabet builds an empty TPSTry++ with deterministic factors
// for the alphabet.
func newTrieForAlphabet(alphabet []graph.Label) *motif.Trie {
	return motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{MaxMotifVertices: 4})
}
