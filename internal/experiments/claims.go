package experiments

import (
	"fmt"
	"math/rand"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/partition"
	"loom/internal/stream"
)

// C1 reproduces the claim inherited from Stanton & Kliot (§4.1): "LDG is an
// effective heuristic, reducing the number of edges cut by up to 90%"
// relative to hash partitioning. We sweep k over power-law (BA) and
// community (planted-partition) graphs and report cut fractions and the
// reduction.
func (r *Runner) C1() (*Table, error) {
	t := &Table{
		ID:      "C1",
		Title:   "LDG vs hash edge-cut across graphs and k",
		Columns: []string{"graph", "n", "k", "hash cut%", "ldg cut%", "reduction"},
	}
	n := r.scale(1000, 20000)
	ks := []int{2, 4, 8, 16, 32}
	if r.Quick {
		ks = []int{2, 4, 8}
	}
	best := 0.0
	for _, gk := range []string{"ba", "community", "community-strong/bfs", "grid/temporal"} {
		rng := rand.New(rand.NewSource(r.Seed))
		lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: rng}
		var g *graph.Graph
		var err error
		ordering := stream.RandomOrder
		switch gk {
		case "ba":
			g, err = gen.BarabasiAlbert(n, 4, lab, rng)
		case "community":
			// Community count tied to the largest k so the planted structure
			// is recoverable at every sweep point; degree-targeted so its
			// strength does not dilute with n or k.
			nn := r.scale(1000, 8000)
			g, err = gen.PlantedPartitionDegrees(nn, ks[len(ks)-1], 12, 3, lab, rng)
		case "community-strong/bfs":
			// Pronounced communities arriving in crawl (BFS) order, so LDG
			// always sees placed neighbours.
			nn := r.scale(1000, 8000)
			g, err = gen.PlantedPartitionDegrees(nn, ks[len(ks)-1], 16, 1, lab, rng)
			ordering = stream.BFSOrdering
		case "grid/temporal":
			// The regime where the literature's "up to 90%" reductions
			// live: mesh-like locality streamed in creation (row-major)
			// order — the scientific-computing workloads the partitioning
			// literature grew up on.
			side := r.scale(32, 140)
			g, err = gen.Grid(side, side, lab)
			ordering = stream.TemporalOrder
		}
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			order, err := stream.VertexOrder(g, ordering, rand.New(rand.NewSource(r.Seed+7)))
			if err != nil {
				return nil, err
			}
			cfg := partition.Config{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.1, Seed: r.Seed}
			hash, err := partition.NewHash(cfg)
			if err != nil {
				return nil, err
			}
			ldg, err := partition.NewLDG(cfg)
			if err != nil {
				return nil, err
			}
			ha := partition.PartitionStream(g, order, hash)
			la := partition.PartitionStream(g, order, ldg)
			hc := metrics.CutFraction(g, ha)
			lc := metrics.CutFraction(g, la)
			red := 0.0
			if hc > 0 {
				red = 1 - lc/hc
			}
			if red > best {
				best = red
			}
			t.AddRow(gk, fmt.Sprintf("%d", g.NumVertices()), fmt.Sprintf("%d", k), fmtP(hc), fmtP(lc), fmtP(red))
		}
	}
	t.AddNote("paper/[17] claim: LDG reduces cut edges by up to 90%%; best reduction observed here: %s", fmtP(best))
	if best < 0.30 {
		return nil, fmt.Errorf("C1: best LDG reduction %.1f%% implausibly low", 100*best)
	}
	return t, nil
}

// C2 is the headline experiment: LOOM vs the workload-agnostic baselines on
// the probability of inter-partition traversals when executing the query
// workload, plus the structural cost LOOM pays (cut, balance).
func (r *Runner) C2() (*Table, error) {
	n := r.scale(1500, 10000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "C2",
		Title:   "Inter-partition traversal probability by partitioner",
		Columns: []string{"partitioner", "traversal prob", "match-edge cut", "graph cut%", "vertex balance"},
	}

	type entry struct {
		name string
		a    *partition.Assignment
	}
	var entries []entry

	baselines, err := baselineSet(inst.g, k, r.Seed)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"hash", "fennel", "ldg"} {
		a, err := r.runBaseline(inst.g, baselines[name], stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{name, a})
	}
	la, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"loom", la})

	probs := map[string]float64{}
	for _, e := range entries {
		p, mc, err := traversalProbability(inst.g, e.a, inst.w)
		if err != nil {
			return nil, err
		}
		probs[e.name] = p
		t.AddRow(e.name, fmtF(p), fmtF(mc), fmtP(metrics.CutFraction(inst.g, e.a)), fmt.Sprintf("%.3f", metrics.VertexImbalance(e.a)))
	}
	t.AddNote("shape check: loom <= ldg <= hash on traversal probability")
	if probs["loom"] > probs["hash"] {
		return nil, fmt.Errorf("C2: loom %.4f worse than hash %.4f", probs["loom"], probs["hash"])
	}
	return t, nil
}

// C3 measures stream-order sensitivity (§3.1): the same instance streamed
// in random, BFS, DFS, adversarial and temporal order, comparing LDG and
// LOOM cut fraction and traversal probability.
func (r *Runner) C3() (*Table, error) {
	n := r.scale(1200, 8000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(10, 20), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "C3",
		Title:   "Stream-order sensitivity (LDG vs LOOM)",
		Columns: []string{"order", "ldg cut%", "loom cut%", "ldg trav-p", "loom trav-p"},
	}
	orders := []stream.Order{stream.RandomOrder, stream.BFSOrdering, stream.DFSOrdering, stream.AdversarialOrder, stream.TemporalOrder}
	for _, o := range orders {
		cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: r.Seed}
		ldg, err := partition.NewLDG(cfg)
		if err != nil {
			return nil, err
		}
		la, err := r.runBaseline(inst.g, ldg, o)
		if err != nil {
			return nil, err
		}
		ma, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), o)
		if err != nil {
			return nil, err
		}
		lp, _, err := traversalProbability(inst.g, la, inst.w)
		if err != nil {
			return nil, err
		}
		mp, _, err := traversalProbability(inst.g, ma, inst.w)
		if err != nil {
			return nil, err
		}
		t.AddRow(o.String(),
			fmtP(metrics.CutFraction(inst.g, la)),
			fmtP(metrics.CutFraction(inst.g, ma)),
			fmtF(lp), fmtF(mp))
	}
	t.AddNote("adversarial (degree-ascending) ordering starves greedy heuristics of placed neighbours")
	return t, nil
}
