package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"loom/internal/checkpoint"
	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/partition"
	"loom/internal/qserve"
	"loom/internal/query"
	"loom/internal/serve"
	"loom/internal/stream"
)

// BenchRecord is one scenario of the benchmark trajectory loom-bench emits
// as BENCH_loom.json, so successive PRs can diff performance and quality.
type BenchRecord struct {
	// Scenario names graph x partitioner, e.g. "ba-8000/ldg".
	Scenario string `json:"scenario"`
	// NsPerOp is wall time per streamed vertex (legacy name, kept so
	// trajectories recorded before the dense-core refactor stay diffable).
	NsPerOp int64 `json:"ns_per_op"`
	// NsPerVertex is wall time per streamed vertex; AllocsPerVertex is heap
	// allocations per streamed vertex (runtime.MemStats.Mallocs delta over
	// the run). Together they are the speed trajectory: ns/vertex tracks
	// throughput, allocs/vertex catches hot-path allocation regressions
	// even when wall time is noisy.
	NsPerVertex     int64   `json:"ns_per_vertex"`
	AllocsPerVertex float64 `json:"allocs_per_vertex"`
	// CutFraction and Imbalance describe the resulting partitioning.
	CutFraction float64 `json:"cut_fraction"`
	Imbalance   float64 `json:"imbalance"`
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`
	K           int     `json:"k"`
	// RecoverMS (serve-recover scenario only) is the wall-clock restart
	// latency of a durable server: snapshot load plus WAL tail replay.
	RecoverMS int64 `json:"recover_ms,omitempty"`
	// IngestElementsPerSec (ingest-text / ingest-binary scenarios only) is
	// end-to-end ingest throughput through a durable server: wire decode,
	// writer-side partitioning and WAL append, per stream element.
	IngestElementsPerSec float64 `json:"ingest_elements_per_sec,omitempty"`
	// ChurnElementsPerSec (churn scenario only) is ingest throughput over
	// a mixed add/remove stream: vertex and edge deletions interleaved
	// with arrivals and re-adds, exercising placement-table tombstoning,
	// drift decrements and WAL-logged removal records end to end.
	ChurnElementsPerSec float64 `json:"churn_elements_per_sec,omitempty"`
	// QueryPerSec (query-serve scenario only) is served queries per second
	// through the online query engine (lock-free view reads, full message
	// accounting). MsgsPerQueryBefore/After bracket the workload feedback
	// loop: mean cross-shard messages per query of a fixed hot-pattern mix
	// on the streamed placement, and after one observed-workload restream
	// of the same server.
	QueryPerSec        float64 `json:"query_per_sec,omitempty"`
	MsgsPerQueryBefore float64 `json:"msgs_per_query_before,omitempty"`
	MsgsPerQueryAfter  float64 `json:"msgs_per_query_after,omitempty"`
}

// measure runs fn, returning its wall time and the number of heap
// allocations it performed (best effort: a concurrent GC's own allocations
// are counted too, but the scenarios here are single-goroutine and
// allocation-dominated, so the delta is stable).
func measure(fn func() error) (time.Duration, uint64, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	return elapsed, ms.Mallocs - m0, err
}

// BenchTrajectory measures the standard scenario set: the streaming
// heuristics, LOOM, and a 3-pass ReLDG restream on a power-law and a
// community graph. Deterministic per seed (timings aside).
func BenchTrajectory(seed int64, quick bool) ([]BenchRecord, error) {
	n := 8000
	if quick {
		n = 1000
	}
	const k = 8
	var out []BenchRecord

	record := func(scenario string, g *graph.Graph, a *partition.Assignment, elapsed time.Duration, mallocs uint64) {
		perVertex := elapsed.Nanoseconds() / int64(g.NumVertices())
		out = append(out, BenchRecord{
			Scenario:        scenario,
			NsPerOp:         perVertex,
			NsPerVertex:     perVertex,
			AllocsPerVertex: float64(mallocs) / float64(g.NumVertices()),
			CutFraction:     metrics.CutFraction(g, a),
			Imbalance:       metrics.VertexImbalance(a),
			Vertices:        g.NumVertices(),
			Edges:           g.NumEdges(),
			K:               k,
		})
	}

	alphabet := gen.DefaultAlphabet(4)
	graphs := make(map[string]*graph.Graph, 2)
	{
		rng := rand.New(rand.NewSource(seed))
		lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
		ba, err := gen.BarabasiAlbert(n, 2, lab, rng)
		if err != nil {
			return nil, err
		}
		graphs[fmt.Sprintf("ba-%d", n)] = ba
		comm, err := gen.PlantedPartitionDegrees(n, k, 12, 3, lab, rng)
		if err != nil {
			return nil, err
		}
		graphs[fmt.Sprintf("community-%d", n)] = comm
	}

	for _, gname := range []string{fmt.Sprintf("ba-%d", n), fmt.Sprintf("community-%d", n)} {
		g := graphs[gname]
		cfg := partition.Config{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: seed}
		base, err := stream.VertexOrder(g, stream.RandomOrder, rand.New(rand.NewSource(seed+100)))
		if err != nil {
			return nil, err
		}

		for _, name := range []string{"hash", "ldg", "fennel"} {
			var s partition.Streaming
			switch name {
			case "hash":
				s, err = partition.NewHash(cfg)
			case "ldg":
				s, err = partition.NewLDG(cfg)
			case "fennel":
				s, err = partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
			}
			if err != nil {
				return nil, err
			}
			var a *partition.Assignment
			elapsed, mallocs, err := measure(func() error {
				a = partition.PartitionStream(g, base, s)
				return nil
			})
			if err != nil {
				return nil, err
			}
			record(gname+"/"+name, g, a, elapsed, mallocs)
		}

		const passes = 3
		rs := &partition.Restreamer{
			Config:  partition.RestreamConfig{Passes: passes, Priority: partition.PriorityAmbivalence},
			NewPass: func(int) (partition.Streaming, error) { return partition.NewLDG(cfg) },
		}
		var res *partition.RestreamResult
		elapsed, mallocs, err := measure(func() error {
			var rerr error
			res, rerr = rs.Run(g, base, nil)
			return rerr
		})
		if err != nil {
			return nil, err
		}
		record(fmt.Sprintf("%s/reldg-%dpass", gname, passes), g, res.Final, elapsed/passes, mallocs/passes)

		// LOOM with a synthetic workload, on the power-law graph only (the
		// community graph has no meaningful workload here).
		if gname == fmt.Sprintf("ba-%d", n) {
			w, err := buildBenchTrie(alphabet, seed)
			if err != nil {
				return nil, err
			}
			p, err := core.New(core.Config{Partition: cfg, WindowSize: 256, Threshold: 0.05}, w)
			if err != nil {
				return nil, err
			}
			var a *partition.Assignment
			elapsed, mallocs, err := measure(func() error {
				var rerr error
				a, rerr = p.Run(stream.NewSliceSource(stream.FromVertexOrder(g, base)))
				return rerr
			})
			if err != nil {
				return nil, err
			}
			record(gname+"/loom", g, a, elapsed, mallocs)
		}
	}

	// Durable serving restart latency: a server that checkpointed at two
	// thirds of the stream and then crashed recovers from snapshot + WAL
	// tail; recover_ms is what a rolling restart of loom-serve costs.
	if err := benchRecover(&out, graphs[fmt.Sprintf("community-%d", n)], alphabet, seed, k,
		fmt.Sprintf("community-%d/serve-recover", n)); err != nil {
		return nil, err
	}

	// Ingest front doors: the text codec decoded inline (what POST /ingest
	// with the line codec costs) against the binary wire protocol through
	// the parallel decode front-stage, both at equal durability.
	if err := benchIngest(&out, graphs[fmt.Sprintf("community-%d", n)], alphabet, seed, k,
		fmt.Sprintf("community-%d", n)); err != nil {
		return nil, err
	}

	// Online query serving and the observed-workload loop: throughput of
	// POST /query's engine and the msgs/query delta one feedback restream
	// buys on a fixed hot-pattern mix.
	if err := benchQueries(&out, graphs[fmt.Sprintf("community-%d", n)], alphabet, seed, k,
		fmt.Sprintf("community-%d/query-serve", n)); err != nil {
		return nil, err
	}

	// Deletion churn: the same durable front door fed a mixed add/remove
	// stream, covering the tombstone/decrement/WAL-removal path.
	if err := benchChurn(&out, graphs[fmt.Sprintf("community-%d", n)], alphabet, seed, k,
		fmt.Sprintf("community-%d/churn", n)); err != nil {
		return nil, err
	}
	return out, nil
}

// benchQueries measures the online query path (internal/qserve) and the
// workload feedback loop it closes: ingest the community graph into a
// plain windowed-LDG server, serve a fixed hot-pattern mix (recording it
// in the observed-workload tracker), then restream against that observed
// workload and serve the same mix again. query_per_sec is the serving
// throughput; msgs_per_query_before/after bracket what the feedback
// restream buys.
func benchQueries(out *[]BenchRecord, g *graph.Graph, alphabet []graph.Label, seed int64, k int, scenario string) error {
	s, err := serve.New(serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: seed},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Alphabet: alphabet,
		Drift:    serve.DriftConfig{Passes: 2},
	})
	if err != nil {
		return err
	}
	defer s.Stop()
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		return err
	}
	for i := 0; i < len(elems); i += ingestBenchBatch {
		end := min(i+ingestBenchBatch, len(elems))
		if err := s.IngestSync(elems[i:end]); err != nil {
			return err
		}
	}
	if err := s.Drain(); err != nil {
		return err
	}

	e := qserve.New(s, qserve.Options{MatchLimit: -1})
	l := func(i int) string { return string(alphabet[i%len(alphabet)]) }
	hot := []string{
		"path " + l(0) + " " + l(1),
		"path " + l(1) + " " + l(0) + " " + l(1),
		"cycle " + l(0) + " " + l(1) + " " + l(2),
	}
	const reps = 20
	mix := func() (msgs, queries int, err error) {
		for r := 0; r < reps; r++ {
			for _, spec := range hot {
				resp, qerr := e.Query(qserve.Request{Spec: spec})
				if qerr != nil {
					return 0, 0, qerr
				}
				msgs += resp.Messages
				queries++
			}
		}
		return msgs, queries, nil
	}

	var msgs, queries int
	elapsed, _, err := measure(func() error {
		var merr error
		msgs, queries, merr = mix()
		return merr
	})
	if err != nil {
		return err
	}
	before := float64(msgs) / float64(queries)
	qps := float64(queries) / elapsed.Seconds()

	// One feedback restream: the tracker already holds the mix, so the
	// loom pass scores against exactly what was served.
	if err := s.TriggerRestream("workload"); err != nil {
		return err
	}
	if err := e.Refresh(); err != nil {
		return err
	}
	msgs, queries, err = mix()
	if err != nil {
		return err
	}
	after := float64(msgs) / float64(queries)

	a, err := s.Export()
	if err != nil {
		return err
	}
	*out = append(*out, BenchRecord{
		Scenario:           scenario,
		CutFraction:        metrics.CutFraction(g, a),
		Imbalance:          metrics.VertexImbalance(a),
		Vertices:           g.NumVertices(),
		Edges:              g.NumEdges(),
		K:                  k,
		QueryPerSec:        qps,
		MsgsPerQueryBefore: before,
		MsgsPerQueryAfter:  after,
	})
	return nil
}

// benchRecover measures serve.Open over a data directory holding a
// mid-stream checkpoint and a WAL tail, appending one BenchRecord.
func benchRecover(out *[]BenchRecord, g *graph.Graph, alphabet []graph.Label, seed int64, k int, scenario string) error {
	w, err := query.GenerateWorkload(query.DefaultMix(10), alphabet, rand.New(rand.NewSource(seed+7)))
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "loom-bench-recover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: seed},
			WindowSize: 256,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	}
	popts := serve.PersistOptions{Dir: dir, Fsync: checkpoint.SyncAlways}
	s, err := serve.Open(cfg, popts)
	if err != nil {
		return err
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		s.Stop()
		return err
	}
	barrier := 2 * len(elems) / 3
	feed := func(part []stream.Element) error {
		for i := 0; i < len(part); i += 512 {
			end := i + 512
			if end > len(part) {
				end = len(part)
			}
			if err := s.IngestSync(part[i:end]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := feed(elems[:barrier]); err != nil {
		s.Stop()
		return err
	}
	if err := s.Checkpoint(); err != nil {
		s.Stop()
		return err
	}
	if err := feed(elems[barrier:]); err != nil {
		s.Stop()
		return err
	}
	s.Abort()

	var recovered *serve.Server
	elapsed, mallocs, err := measure(func() error {
		var oerr error
		recovered, oerr = serve.Open(cfg, popts)
		return oerr
	})
	if err != nil {
		return err
	}
	if err := recovered.Drain(); err != nil {
		recovered.Stop()
		return err
	}
	a, err := recovered.Export()
	recovered.Stop()
	if err != nil {
		return err
	}
	perVertex := elapsed.Nanoseconds() / int64(g.NumVertices())
	*out = append(*out, BenchRecord{
		Scenario:        scenario,
		NsPerOp:         perVertex,
		NsPerVertex:     perVertex,
		AllocsPerVertex: float64(mallocs) / float64(g.NumVertices()),
		CutFraction:     metrics.CutFraction(g, a),
		Imbalance:       metrics.VertexImbalance(a),
		Vertices:        g.NumVertices(),
		Edges:           g.NumEdges(),
		K:               k,
		RecoverMS:       elapsed.Milliseconds(),
	})
	return nil
}

// ingestBenchBatch is the elements-per-batch of both ingest scenarios:
// the text path flushes IngestSync at this size (exactly loom-serve's
// HTTP handler) and the binary path packs this many elements per frame.
const ingestBenchBatch = 512

// benchIngest measures end-to-end ingest throughput of the two wire
// front doors at equal durability (WAL append per accepted batch, fsync
// none): the line-oriented text codec decoded inline on the feeding
// goroutine, and the binary frame protocol through the parallel decode
// front-stage with its raw WAL fast path. The writer runs plain windowed
// LDG (no workload trie), so the measurement is dominated by what the
// wire protocol controls — decode, validation, interning and the WAL
// append — not by motif scoring that is identical on both paths.
// Throughput is the best of five runs (fresh server and data dir each),
// which shakes out GC and scheduler noise on small quick-mode instances
// well enough for the CI regression gate's 20% tolerance.
func benchIngest(out *[]BenchRecord, g *graph.Graph, alphabet []graph.Label, seed int64, k int, prefix string) error {
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		return err
	}
	// Pre-render both wire forms once: the measurement covers decode and
	// apply, never rendering (clients pay that, not the server).
	var text bytes.Buffer
	if err := graph.WriteStreamed(&text, g); err != nil {
		return err
	}
	var bin bytes.Buffer
	fw := stream.NewFrameWriter(&bin)
	for i := 0; i < len(elems); i += ingestBenchBatch {
		end := min(i+ingestBenchBatch, len(elems))
		if err := fw.WriteBatch(elems[i:end]); err != nil {
			return err
		}
	}

	cfg := serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: seed},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Alphabet: alphabet,
	}

	run := func(scenario string, feed func(s *serve.Server) error) error {
		var best time.Duration
		var bestMallocs uint64
		var a *partition.Assignment
		for rep := 0; rep < 5; rep++ {
			dir, err := os.MkdirTemp("", "loom-bench-ingest-")
			if err != nil {
				return err
			}
			s, err := serve.Open(cfg, serve.PersistOptions{Dir: dir, Fsync: checkpoint.SyncNone})
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			elapsed, mallocs, err := measure(func() error { return feed(s) })
			if err == nil {
				if err = s.Drain(); err == nil {
					a, err = s.Export()
				}
			}
			s.Stop()
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			if rep == 0 || elapsed < best {
				best, bestMallocs = elapsed, mallocs
			}
		}
		perVertex := best.Nanoseconds() / int64(g.NumVertices())
		*out = append(*out, BenchRecord{
			Scenario:             scenario,
			NsPerOp:              perVertex,
			NsPerVertex:          perVertex,
			AllocsPerVertex:      float64(bestMallocs) / float64(g.NumVertices()),
			CutFraction:          metrics.CutFraction(g, a),
			Imbalance:            metrics.VertexImbalance(a),
			Vertices:             g.NumVertices(),
			Edges:                g.NumEdges(),
			K:                    k,
			IngestElementsPerSec: float64(len(elems)) / best.Seconds(),
		})
		return nil
	}

	if err := run(prefix+"/ingest-text", func(s *serve.Server) error {
		src := stream.FromReader(bytes.NewReader(text.Bytes()))
		batch := make([]stream.Element, 0, ingestBenchBatch)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			err := s.IngestSync(batch)
			batch = batch[:0]
			return err
		}
		for {
			el, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, el)
			if len(batch) == ingestBenchBatch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
		return src.Err()
	}); err != nil {
		return err
	}
	return run(prefix+"/ingest-binary", func(s *serve.Server) error {
		res, err := s.IngestFrames(bytes.NewReader(bin.Bytes()))
		if err != nil {
			return err
		}
		return res.Err()
	})
}

// spliceChurn injects deterministic removals and re-adds into an
// insert-only element stream without ever producing a rejectable
// element: a vertex still referenced by later elements is re-added
// immediately after its removal, one past its last reference stays gone,
// and removed edges never reappear (the source stream carries each edge
// once).
func spliceChurn(elems []stream.Element, seed int64) []stream.Element {
	lastRef := make(map[graph.VertexID]int)
	for i := range elems {
		el := &elems[i]
		lastRef[el.V] = i
		if el.Kind == stream.EdgeElement {
			lastRef[el.U] = i
		}
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make(map[graph.VertexID]graph.Label)
	var liveV []graph.VertexID
	var liveE [][2]graph.VertexID
	out := make([]stream.Element, 0, len(elems)+len(elems)/8)
	for i := range elems {
		el := elems[i]
		out = append(out, el)
		switch el.Kind {
		case stream.VertexElement:
			labels[el.V] = el.Label
			liveV = append(liveV, el.V)
		case stream.EdgeElement:
			liveE = append(liveE, [2]graph.VertexID{el.V, el.U})
		}
		switch x := rng.Float64(); {
		case x < 0.04 && len(liveV) > 0:
			j := rng.Intn(len(liveV))
			v := liveV[j]
			out = append(out, stream.Element{Kind: stream.RemoveVertexElement, V: v})
			keep := liveE[:0]
			for _, e := range liveE {
				if e[0] != v && e[1] != v {
					keep = append(keep, e)
				}
			}
			liveE = keep
			if lastRef[v] > i {
				out = append(out, stream.Element{Kind: stream.VertexElement, V: v, Label: labels[v]})
			} else {
				liveV[j] = liveV[len(liveV)-1]
				liveV = liveV[:len(liveV)-1]
			}
		case x < 0.08 && len(liveE) > 0:
			j := rng.Intn(len(liveE))
			e := liveE[j]
			liveE[j] = liveE[len(liveE)-1]
			liveE = liveE[:len(liveE)-1]
			out = append(out, stream.Element{Kind: stream.RemoveEdgeElement, V: e[0], U: e[1]})
		}
	}
	return out
}

// benchChurn measures ingest throughput over a mixed add/remove stream
// through the same durable front door as benchIngest (IngestSync batches,
// WAL append per batch, fsync none): every removal exercises the
// placement-table tombstone, the drift-estimator decrement and a WAL
// removal record. Quality metrics describe the surviving graph's
// partitioning. Best of five runs, matching the other ingest scenarios.
func benchChurn(out *[]BenchRecord, g *graph.Graph, alphabet []graph.Label, seed int64, k int, scenario string) error {
	base, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		return err
	}
	elems := spliceChurn(base, seed+200)

	cfg := serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: seed},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Alphabet: alphabet,
	}

	var best time.Duration
	var bestMallocs uint64
	var live *graph.Graph
	var a *partition.Assignment
	for rep := 0; rep < 5; rep++ {
		dir, err := os.MkdirTemp("", "loom-bench-churn-")
		if err != nil {
			return err
		}
		s, err := serve.Open(cfg, serve.PersistOptions{Dir: dir, Fsync: checkpoint.SyncNone})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		elapsed, mallocs, err := measure(func() error {
			for i := 0; i < len(elems); i += ingestBenchBatch {
				end := min(i+ingestBenchBatch, len(elems))
				if err := s.IngestSync(elems[i:end]); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			if err = s.Drain(); err == nil {
				var v *serve.View
				if v, err = s.ExportView(); err == nil {
					live, a = v.Graph, v.Assignment
				}
			}
		}
		s.Stop()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		if rep == 0 || elapsed < best {
			best, bestMallocs = elapsed, mallocs
		}
	}
	perVertex := best.Nanoseconds() / int64(g.NumVertices())
	*out = append(*out, BenchRecord{
		Scenario:            scenario,
		NsPerOp:             perVertex,
		NsPerVertex:         perVertex,
		AllocsPerVertex:     float64(bestMallocs) / float64(g.NumVertices()),
		CutFraction:         metrics.CutFraction(live, a),
		Imbalance:           metrics.VertexImbalance(a),
		Vertices:            live.NumVertices(),
		Edges:               live.NumEdges(),
		K:                   k,
		ChurnElementsPerSec: float64(len(elems)) / best.Seconds(),
	})
	return nil
}

// CompareBaseline checks records against a committed baseline and returns
// one human-readable line per regression beyond tol (a fraction, e.g.
// 0.20): ns_per_vertex may not grow and ingest_elements_per_sec may not
// shrink by more than tol relative to the baseline's value for the same
// scenario. Scenarios present on only one side are ignored, so the set
// can evolve without invalidating old baselines.
func CompareBaseline(records, baseline []BenchRecord, tol float64) []string {
	base := make(map[string]BenchRecord, len(baseline))
	for _, b := range baseline {
		base[b.Scenario] = b
	}
	var regressions []string
	for _, r := range records {
		b, ok := base[r.Scenario]
		if !ok {
			continue
		}
		if b.NsPerVertex > 0 && float64(r.NsPerVertex) > float64(b.NsPerVertex)*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns_per_vertex %d exceeds baseline %d by more than %.0f%%",
					r.Scenario, r.NsPerVertex, b.NsPerVertex, tol*100))
		}
		if b.IngestElementsPerSec > 0 && r.IngestElementsPerSec < b.IngestElementsPerSec*(1-tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ingest_elements_per_sec %.0f below baseline %.0f by more than %.0f%%",
					r.Scenario, r.IngestElementsPerSec, b.IngestElementsPerSec, tol*100))
		}
		if b.ChurnElementsPerSec > 0 && r.ChurnElementsPerSec < b.ChurnElementsPerSec*(1-tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: churn_elements_per_sec %.0f below baseline %.0f by more than %.0f%%",
					r.Scenario, r.ChurnElementsPerSec, b.ChurnElementsPerSec, tol*100))
		}
		if b.QueryPerSec > 0 && r.QueryPerSec < b.QueryPerSec*(1-tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: query_per_sec %.0f below baseline %.0f by more than %.0f%%",
					r.Scenario, r.QueryPerSec, b.QueryPerSec, tol*100))
		}
		if b.MsgsPerQueryAfter > 0 && r.MsgsPerQueryAfter > b.MsgsPerQueryAfter*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: msgs_per_query_after %.2f exceeds baseline %.2f by more than %.0f%%",
					r.Scenario, r.MsgsPerQueryAfter, b.MsgsPerQueryAfter, tol*100))
		}
	}
	return regressions
}

// ReadBenchJSON parses a benchmark trajectory written by WriteBenchJSON.
func ReadBenchJSON(r io.Reader) ([]BenchRecord, error) {
	var records []BenchRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, err
	}
	return records, nil
}

// buildBenchTrie synthesises the default workload trie for the bench.
func buildBenchTrie(alphabet []graph.Label, seed int64) (*trieType, error) {
	rng := rand.New(rand.NewSource(seed))
	w, err := query.GenerateWorkload(query.DefaultMix(10), alphabet, rng)
	if err != nil {
		return nil, err
	}
	trie := newTrieForAlphabet(alphabet)
	if err := w.BuildTrie(trie); err != nil {
		return nil, err
	}
	return trie, nil
}

// WriteBenchJSON renders records as indented JSON.
func WriteBenchJSON(w io.Writer, records []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
