package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode: each must
// produce a non-empty table and pass its internal shape checks.
func TestAllExperimentsQuick(t *testing.T) {
	r := &Runner{Seed: 42, Quick: true}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tab, err := spec.Run(r)
			if err != nil {
				t.Fatalf("%s failed: %v", spec.ID, err)
			}
			if tab.ID != spec.ID {
				t.Fatalf("table ID %q != spec ID %q", tab.ID, spec.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", spec.ID)
			}
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Fatalf("render: %v", err)
			}
			out := sb.String()
			if !strings.Contains(out, spec.ID) {
				t.Fatalf("rendered table missing ID header:\n%s", out)
			}
			for _, col := range tab.Columns {
				if !strings.Contains(out, col) {
					t.Fatalf("rendered table missing column %q", col)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("c2"); !ok {
		t.Fatal("Lookup should be case-insensitive")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown ID should not resolve")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"aa", "b"}}
	tab.AddRow("1", "22222")
	tab.AddNote("note %d", 7)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "note: note 7") {
		t.Fatalf("notes missing:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"col,a", "b"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello")
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"col,a",b`) {
		t.Fatalf("CSV header not quoted:\n%s", out)
	}
	if !strings.Contains(out, "1,2") || !strings.Contains(out, "# hello") {
		t.Fatalf("CSV body wrong:\n%s", out)
	}
}

func TestRunnerScale(t *testing.T) {
	q := &Runner{Quick: true}
	f := &Runner{}
	if q.scale(1, 2) != 1 || f.scale(1, 2) != 2 {
		t.Fatal("scale selection wrong")
	}
}
