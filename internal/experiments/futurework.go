package experiments

import (
	"fmt"

	"loom/internal/metrics"
	"loom/internal/stream"
)

// E12 evaluates the paper's first future-work extension: feeding the
// TPSTry++ per-edge traversal probabilities back into LDG's placement
// score, so that edges the workload is likely to traverse pull harder than
// structurally equivalent cold edges.
func (r *Runner) E12() (*Table, error) {
	n := r.scale(1500, 10000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), 1.0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E12",
		Title:   "Future work: traversal-probability-weighted LDG",
		Columns: []string{"variant", "traversal prob", "cut%", "vertex balance"},
	}
	base := r.loomConfig(n, k, 256, 0.05)
	a1, _, err := r.runLoom(inst, base, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	weighted := base
	weighted.TraversalWeighting = true
	a2, _, err := r.runLoom(inst, weighted, stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	p1, _, err := traversalProbability(inst.g, a1, inst.w)
	if err != nil {
		return nil, err
	}
	p2, _, err := traversalProbability(inst.g, a2, inst.w)
	if err != nil {
		return nil, err
	}
	t.AddRow("loom (unit weights)", fmtF(p1), fmtP(metrics.CutFraction(inst.g, a1)), fmt.Sprintf("%.3f", metrics.VertexImbalance(a1)))
	t.AddRow("loom + edge p-weights", fmtF(p2), fmtP(metrics.CutFraction(inst.g, a2)), fmt.Sprintf("%.3f", metrics.VertexImbalance(a2)))
	t.AddNote("weights = bias 0.1 + P(edge-label motif in workload); Zipf-skewed workload (s=1)")
	return t, nil
}

// E13 evaluates the second future-work extension: splitting oversized
// motif groups into connected blocks (local partitioning of large matched
// sub-graphs), bounding the balance damage a giant overlap closure can do.
func (r *Runner) E13() (*Table, error) {
	n := r.scale(1500, 10000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(12, 24), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E13",
		Title:   "Future work: local split of oversized motif groups",
		Columns: []string{"max group", "traversal prob", "cut%", "largest block", "groups split", "vertex balance"},
	}
	for _, max := range []int{0, 16, 8, 4} {
		cfg := r.loomConfig(n, k, 256, 0.05)
		cfg.MaxGroupSize = max
		a, p, err := r.runLoom(inst, cfg, stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		prob, _, err := traversalProbability(inst.g, a, inst.w)
		if err != nil {
			return nil, err
		}
		st := p.Stats()
		label := "unlimited"
		if max > 0 {
			label = fmt.Sprintf("%d", max)
		}
		t.AddRow(label, fmtF(prob), fmtP(metrics.CutFraction(inst.g, a)),
			fmt.Sprintf("%d", st.LargestGroup), fmt.Sprintf("%d", st.GroupsSplit),
			fmt.Sprintf("%.3f", metrics.VertexImbalance(a)))
		if max > 0 && st.LargestGroup > max {
			return nil, fmt.Errorf("E13: largest block %d exceeds cap %d", st.LargestGroup, max)
		}
	}
	t.AddNote("tighter caps bound balance pressure; the traversal-probability cost is the motifs cut at block seams")
	return t, nil
}
