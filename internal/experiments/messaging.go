package experiments

import (
	"fmt"
	"math/rand"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/store"
	"loom/internal/stream"
)

// E14 deploys each partitioning into the sharded store substrate and
// measures actual cross-shard messages for an online traversal workload
// (label-constrained path matches plus k-hop neighbourhood expansions),
// then applies the Yang-et-al hotspot replication with a fixed replica
// budget. The paper's §3.2 argument is that LOOM complements replication:
// a workload-aware base partitioning leaves fewer hotspots, so the same
// budget removes a larger share of the remaining messages.
func (r *Runner) E14() (*Table, error) {
	n := r.scale(1200, 8000)
	k := 8
	inst, err := r.newInstance(n, 2, 4, r.scale(10, 20), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E14",
		Title:   "Sharded-store messages and hotspot replication",
		Columns: []string{"partitioner", "path msgs", "khop msgs", "total", "after replication", "reduction", "replicas"},
	}
	budget := n / 50

	// Fixed traversal workload: path probes for the workload's hottest
	// label sequences plus k-hop expansions from random vertices.
	paths := pathLabelSeqs(inst)
	starts := randomStarts(inst.g, 64, r.Seed)

	type contender struct {
		name string
		a    *partition.Assignment
	}
	var cs []contender
	baselines, err := baselineSet(inst.g, k, r.Seed)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"hash", "ldg"} {
		a, err := r.runBaseline(inst.g, baselines[name], stream.RandomOrder)
		if err != nil {
			return nil, err
		}
		cs = append(cs, contender{name, a})
	}
	la, _, err := r.runLoom(inst, r.loomConfig(n, k, 256, 0.05), stream.RandomOrder)
	if err != nil {
		return nil, err
	}
	cs = append(cs, contender{"loom", la})

	var pathMsgs = map[string]int{}
	for _, c := range cs {
		st, err := store.Build(inst.g, c.a)
		if err != nil {
			return nil, err
		}
		adv := store.NewAdvisor(st)
		pathBefore, khopBefore, err := runTraversalWorkload(st, adv, paths, starts)
		if err != nil {
			return nil, err
		}
		before := pathBefore + khopBefore
		placed := adv.Apply(budget)
		pathAfter, khopAfter, err := runTraversalWorkload(st, nil, paths, starts)
		if err != nil {
			return nil, err
		}
		after := pathAfter + khopAfter
		red := 0.0
		if before > 0 {
			red = 1 - float64(after)/float64(before)
		}
		pathMsgs[c.name] = pathBefore
		t.AddRow(c.name, fmt.Sprintf("%d", pathBefore), fmt.Sprintf("%d", khopBefore),
			fmt.Sprintf("%d", before), fmt.Sprintf("%d", after), fmtP(red), fmt.Sprintf("%d", placed))
	}
	if pathMsgs["loom"] > pathMsgs["hash"] {
		return nil, fmt.Errorf("E14: loom path messages %d exceed hash %d", pathMsgs["loom"], pathMsgs["hash"])
	}
	t.AddNote("store messages count every candidate probe (fetch-to-check-label), not just accepted")
	t.AddNote("traversals, so raw cut dominates here — LOOM's win is on accepted traversals (C2);")
	t.AddNote("budget = n/50 replicas; the reduction column shows the §3.2 replication complementarity")
	return t, nil
}

// pathLabelSeqs extracts the label sequences of the workload's path-shaped
// queries (up to 6), so the store-level workload mirrors the query mix.
func pathLabelSeqs(inst *instance) [][]graph.Label {
	var out [][]graph.Label
	for _, q := range inst.w.Queries() {
		if len(out) >= 6 {
			break
		}
		seq, ok := asPathLabels(q.Pattern)
		if ok {
			out = append(out, seq)
		}
	}
	return out
}

// asPathLabels returns the label sequence when g is a simple path.
func asPathLabels(g *graph.Graph) ([]graph.Label, bool) {
	n := g.NumVertices()
	if n < 2 || g.NumEdges() != n-1 {
		return nil, false
	}
	var ends []graph.VertexID
	for _, v := range g.Vertices() {
		switch g.Degree(v) {
		case 1:
			ends = append(ends, v)
		case 2:
		default:
			return nil, false
		}
	}
	if len(ends) != 2 {
		return nil, false
	}
	order := g.BFSOrder(ends[0])
	if len(order) != n {
		return nil, false
	}
	labels := make([]graph.Label, n)
	for i, v := range order {
		labels[i] = g.MustLabel(v)
	}
	return labels, true
}

// randomStarts picks deterministic random start vertices.
func randomStarts(g *graph.Graph, count int, seed int64) []graph.VertexID {
	rng := rand.New(rand.NewSource(seed + 5))
	vs := g.Vertices()
	out := make([]graph.VertexID, 0, count)
	for i := 0; i < count && len(vs) > 0; i++ {
		out = append(out, vs[rng.Intn(len(vs))])
	}
	return out
}

// runTraversalWorkload executes the fixed workload against st, optionally
// feeding an advisor, and returns the cross-shard messages attributable to
// the path-pattern portion and to the k-hop portion.
func runTraversalWorkload(st *store.Store, adv *store.Advisor, paths [][]graph.Label, starts []graph.VertexID) (pathMsgs, khopMsgs int, err error) {
	const pathLimit = 2000
	e := store.NewEngine(st)
	if adv != nil {
		e.SetObserver(adv.Observe)
	}
	for _, p := range paths {
		if _, err := e.MatchPath(p, pathLimit); err != nil {
			return 0, 0, err
		}
	}
	pathMsgs = e.Stats().Messages
	for _, s := range starts {
		if _, err := e.KHop(s, 2); err != nil {
			return 0, 0, err
		}
	}
	khopMsgs = e.Stats().Messages - pathMsgs
	return pathMsgs, khopMsgs, nil
}
