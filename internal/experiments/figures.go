package experiments

import (
	"fmt"

	"loom/internal/graph"
	"loom/internal/iso"
	"loom/internal/motif"
	"loom/internal/pattern"
	"loom/internal/query"
	"loom/internal/signature"
)

// F1 reproduces Figure 1: the example graph G and workload Q, executing
// each query and reporting its distinct matches. The paper states q1's
// answer is the sub-graph over vertices {1, 2, 5, 6}.
func (r *Runner) F1() (*Table, error) {
	g := graph.Fig1Graph()
	w := query.Fig1Workload()

	t := &Table{
		ID:      "F1",
		Title:   "Figure 1 example: query answers over G",
		Columns: []string{"query", "pattern", "distinct matches", "match vertex sets"},
	}
	for _, q := range w.Queries() {
		ms := iso.DistinctMatches(q.Pattern, g, iso.Options{})
		sets := ""
		for i, m := range ms {
			if i > 0 {
				sets += " "
			}
			sets += fmt.Sprintf("%v", m.Vertices)
		}
		t.AddRow(q.ID, q.Pattern.String(), fmt.Sprintf("%d", len(ms)), sets)
	}

	// Paper check: q1 matches exactly {1,2,5,6}.
	q1 := w.Queries()[0]
	ms := iso.DistinctMatches(q1.Pattern, g, iso.Options{})
	if len(ms) != 1 {
		return nil, fmt.Errorf("F1: q1 distinct matches = %d, want 1", len(ms))
	}
	want := []graph.VertexID{1, 2, 5, 6}
	for i, v := range ms[0].Vertices {
		if v != want[i] {
			return nil, fmt.Errorf("F1: q1 match = %v, want %v", ms[0].Vertices, want)
		}
	}
	t.AddNote("paper: q1's answer is the sub-graph over {1,2,5,6} — confirmed")
	return t, nil
}

// F2 reproduces Figure 2: the TPSTry++ built from the Figure 1 workload.
// It prints every motif node with its size, support, p-value and
// parent/child degrees, and checks the structure (14 signature-distinct
// motifs, 4 roots, DAG closure).
func (r *Runner) F2() (*Table, error) {
	trie := motif.New(signature.NewFactoryForAlphabet(gen4()), motif.Options{MaxMotifVertices: 4})
	if err := query.Fig1Workload().BuildTrie(trie); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F2",
		Title:   "TPSTry++ for Q of Figure 1",
		Columns: []string{"motif", "|V|", "|E|", "support", "p", "parents", "children", "queries"},
	}
	for _, n := range trie.Nodes() {
		qids := ""
		for q := range n.Queries {
			if qids != "" {
				qids += ","
			}
			qids += q
		}
		t.AddRow(
			describeMotif(n),
			fmt.Sprintf("%d", n.NumVertices()),
			fmt.Sprintf("%d", n.NumEdges()),
			fmt.Sprintf("%.0f", n.Support),
			fmtF(trie.P(n)),
			fmt.Sprintf("%d", len(n.Parents())),
			fmt.Sprintf("%d", len(n.Children())),
			qids,
		)
	}
	if trie.NumNodes() != 14 {
		return nil, fmt.Errorf("F2: trie nodes = %d, want 14", trie.NumNodes())
	}
	if len(trie.Roots()) != 4 {
		return nil, fmt.Errorf("F2: roots = %d, want 4", len(trie.Roots()))
	}
	t.AddNote("14 signature-distinct motifs; one root per label; every child extends its parent by one edge")
	return t, nil
}

func gen4() []graph.Label { return []graph.Label{"a", "b", "c", "d"} }

// describeMotif renders a motif node as its label sequence + edge list.
func describeMotif(n *motif.Node) string {
	rep := n.Rep
	s := ""
	for _, v := range rep.Vertices() {
		l, _ := rep.Label(v)
		s += string(l)
	}
	if rep.NumEdges() > 0 {
		s += "{"
		for i, e := range rep.Edges() {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%d-%d", e.U, e.V)
		}
		s += "}"
	}
	return s
}

// F3 reproduces Figure 3: the stream scenario in which an arriving edge
// creates a second instance of the abc motif that naive incremental
// signature matching would miss, and the re-expansion procedure recovers.
func (r *Runner) F3() (*Table, error) {
	trie := motif.New(signature.NewFactoryForAlphabet(gen4()), motif.Options{MaxMotifVertices: 4})
	if err := query.Fig1Workload().BuildTrie(trie); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F3",
		Title:   "Motif matching over the graph-stream (Figure 3 scenario)",
		Columns: []string{"step", "window state", "active matches", "3-vertex matches", "re-expansions"},
	}

	run := func(threshold float64) (*pattern.Tracker, *graph.Graph, error) {
		tk := pattern.NewTracker(trie, pattern.Options{Threshold: threshold})
		w := graph.New()
		w.AddVertex(1, "a")
		w.AddVertex(2, "b")
		w.AddVertex(3, "c")
		if err := w.AddEdge(1, 2); err != nil {
			return nil, nil, err
		}
		if err := tk.ObserveEdge(1, 2, w); err != nil {
			return nil, nil, err
		}
		t.AddRow("1: +e(a1,b2)", "a-b", count(tk), fmt.Sprintf("%d", size3(tk, w)), fmt.Sprintf("%d", tk.Stats().Reexpansions))
		if err := w.AddEdge(2, 3); err != nil {
			return nil, nil, err
		}
		if err := tk.ObserveEdge(2, 3, w); err != nil {
			return nil, nil, err
		}
		t.AddRow("2: +e(b2,c3)", "a-b-c", count(tk), fmt.Sprintf("%d", size3(tk, w)), fmt.Sprintf("%d", tk.Stats().Reexpansions))
		// Second c attaches to b: S' = abc + c' is not itself a motif.
		w.AddVertex(4, "c")
		if err := w.AddEdge(2, 4); err != nil {
			return nil, nil, err
		}
		if err := tk.ObserveEdge(2, 4, w); err != nil {
			return nil, nil, err
		}
		t.AddRow("3: +e(b2,c4)", "a-b(-c)(-c')", count(tk), fmt.Sprintf("%d", size3(tk, w)), fmt.Sprintf("%d", tk.Stats().Reexpansions))
		return tk, w, nil
	}

	tk, _, err := run(0.3)
	if err != nil {
		return nil, err
	}
	// Both abc instances must be live: {1,2,3} and {1,2,4}.
	n3 := 0
	for _, m := range tk.MatchesContaining(2) {
		if m.Size() == 3 {
			n3++
		}
	}
	if n3 != 2 {
		return nil, fmt.Errorf("F3: abc instances tracked = %d, want 2", n3)
	}
	grp := tk.GroupFor(2)
	if len(grp) != 4 {
		return nil, fmt.Errorf("F3: co-assignment group = %v, want 4 vertices", grp)
	}
	t.AddNote("both abc instances tracked after the second c arrives; shared substructure groups all 4 vertices")
	return t, nil
}

func count(tk *pattern.Tracker) string { return fmt.Sprintf("%d", tk.ActiveMatches()) }

func size3(tk *pattern.Tracker, w *graph.Graph) int {
	n := 0
	seen := map[int64]bool{}
	for _, v := range w.Vertices() {
		for _, m := range tk.MatchesContaining(v) {
			if m.Size() == 3 && !seen[m.ID] {
				seen[m.ID] = true
				n++
			}
		}
	}
	return n
}
