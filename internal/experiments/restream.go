package experiments

import (
	"fmt"
	"math/rand"

	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/metrics"
	"loom/internal/partition"
	"loom/internal/stream"
)

// E15 sweeps restreaming pass counts on a planted-community graph: ReLDG,
// ReFennel and the workload-aware LOOM restream against their single-pass
// selves and the offline multilevel upper bound, reporting cut, balance and
// the migration fraction paid between consecutive passes.
func (r *Runner) E15() (*Table, error) {
	n := r.scale(1000, 6000)
	k := 8
	passes := 4
	if r.Quick {
		passes = 3
	}
	rng := rand.New(rand.NewSource(r.Seed))
	alphabet := gen.DefaultAlphabet(4)
	lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
	g, err := gen.PlantedPartitionDegrees(n, k, 12, 3, lab, rng)
	if err != nil {
		return nil, err
	}
	base, err := stream.VertexOrder(g, stream.RandomOrder, rand.New(rand.NewSource(r.Seed+100)))
	if err != nil {
		return nil, err
	}
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: r.Seed}

	t := &Table{
		ID:      "E15",
		Title:   "Restreaming: cut/imbalance/migration vs pass count (community graph)",
		Columns: []string{"partitioner", "pass", "cut%", "vertex balance", "migration%"},
	}
	addPass := func(name string, st partition.PassStats) {
		t.AddRow(name, fmt.Sprintf("%d", st.Pass), fmtP(st.CutFraction),
			fmt.Sprintf("%.3f", st.Imbalance), fmtP(st.MigrationFraction))
	}

	// Multi-pass ReLDG with ambivalence priority: pass 1 doubles as the
	// single-pass LDG baseline (same heuristic, same order, same seed).
	reldg := &partition.Restreamer{
		Config:  partition.RestreamConfig{Passes: passes, Priority: partition.PriorityAmbivalence},
		NewPass: func(int) (partition.Streaming, error) { return partition.NewLDG(cfg) },
	}
	lres, err := reldg.Run(g, base, nil)
	if err != nil {
		return nil, err
	}
	for _, st := range lres.Passes {
		addPass("reldg", st)
	}
	if last, first := lres.Passes[passes-1], lres.Passes[0]; last.CutFraction > first.CutFraction {
		return nil, fmt.Errorf("E15: ReLDG cut worsened across passes: %.4f -> %.4f",
			first.CutFraction, last.CutFraction)
	}

	refennel := &partition.Restreamer{
		Config: partition.RestreamConfig{Passes: passes, Priority: partition.PriorityAmbivalence},
		NewPass: func(int) (partition.Streaming, error) {
			return partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
		},
	}
	fres, err := refennel.Run(g, base, nil)
	if err != nil {
		return nil, err
	}
	for _, st := range fres.Passes {
		addPass("refennel", st)
	}

	// Workload-aware restream: the full LOOM partitioner re-run per pass.
	// The community graph is dense, so motif matches overlap massively;
	// bounding the group size keeps atomic placements from overwhelming
	// the capacity constraint (cf. experiment E13).
	trie, err := buildBenchTrie(alphabet, r.Seed)
	if err != nil {
		return nil, err
	}
	ccfg := core.Config{Partition: cfg, WindowSize: 256, Threshold: 0.05, MaxGroupSize: 8}
	cres, err := core.Restream(g, trie, ccfg, partition.RestreamConfig{Passes: passes}, base, nil)
	if err != nil {
		return nil, err
	}
	for _, st := range cres.Passes {
		addPass("loom-restream", st)
	}

	ml := &partition.Multilevel{K: k, Seed: r.Seed}
	ma, err := ml.Partition(g)
	if err != nil {
		return nil, err
	}
	t.AddRow("multilevel", "-", fmtP(metrics.CutFraction(g, ma)),
		fmt.Sprintf("%.3f", metrics.VertexImbalance(ma)), "-")

	t.AddNote("pass 1 is the cold-start single-pass baseline of each heuristic; migration%% is paid between consecutive passes")
	t.AddNote("priority: ambivalence (ReLDG/ReFennel); multilevel is the offline upper bound")
	t.AddNote("loom-restream places motif groups atomically (MaxGroupSize=8): it optimises workload traversal locality, so its raw cut trails the structural heuristics")
	return t, nil
}
