// Package iso provides exact sub-graph isomorphism over labelled graphs.
//
// Pattern matching queries (paper §2) are defined by sub-graph isomorphism:
// an injective, label-preserving mapping f from the query's vertices into
// the data graph such that every query edge maps to a data edge. The
// matcher is a VF2-style backtracking search with label and degree pruning,
// suitable for the small query graphs of GDBMS workloads.
//
// The package also provides canonical keys for small labelled graphs
// (exhaustive permutation with pruning), used to give motifs an exact
// identity against which the probabilistic signatures of package signature
// can be audited.
package iso

import (
	"fmt"
	"sort"
	"strings"

	"loom/internal/graph"
)

// Mapping is an assignment of pattern vertices to target vertices.
type Mapping map[graph.VertexID]graph.VertexID

// clone returns an independent copy of m.
func (m Mapping) clone() Mapping {
	c := make(Mapping, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// matcher carries the state of one FindAll invocation.
type matcher struct {
	pattern    *graph.Graph
	target     *graph.Graph
	order      []graph.VertexID // pattern vertices in match order
	induced    bool
	limit      int // stop after this many matches; <=0 means unlimited
	onTraverse func(from, to graph.VertexID)
	onVisit    func(from, to graph.VertexID)
	out        []Mapping
	// adjCache memoises sorted target adjacency: the anchored candidate
	// scan touches the same hub vertices thousands of times per search,
	// and Graph.Neighbors allocates and sorts on every call.
	adjCache map[graph.VertexID][]graph.VertexID
	// vertexCache memoises the sorted target vertex list for unanchored
	// scans.
	vertexCache []graph.VertexID
}

// targetNeighbors returns tv's sorted adjacency, cached.
func (m *matcher) targetNeighbors(tv graph.VertexID) []graph.VertexID {
	if ns, ok := m.adjCache[tv]; ok {
		return ns
	}
	ns := m.target.Neighbors(tv)
	m.adjCache[tv] = ns
	return ns
}

// targetVertices returns the sorted target vertex list, cached.
func (m *matcher) targetVertices() []graph.VertexID {
	if m.vertexCache == nil {
		m.vertexCache = m.target.Vertices()
	}
	return m.vertexCache
}

// Options configures a search.
type Options struct {
	// Induced requires non-adjacent pattern vertices to map to
	// non-adjacent target vertices (induced subgraph isomorphism). The
	// paper's query semantics are non-induced (monomorphism), the default.
	Induced bool
	// Limit stops the search after this many mappings (0 = all).
	Limit int
	// OnTraverse, when non-nil, is invoked for every accepted extension of
	// a partial match from an already-mapped target vertex to a new one —
	// the graph traversals a distributed query engine would perform. The
	// first (unanchored) vertex of a match is an index lookup, not a
	// traversal, and is not reported.
	OnTraverse func(from, to graph.VertexID)
	// OnVisit, when non-nil, is invoked for every candidate target vertex
	// inspected from an anchored scan, accepted or not: the cost of
	// probing neighbours during search.
	OnVisit func(from, to graph.VertexID)
}

// FindAll returns every mapping of pattern into target under opts. Mappings
// that differ only by a pattern automorphism are reported separately; use
// DistinctMatches for subgraph-level deduplication.
func FindAll(pattern, target *graph.Graph, opts Options) []Mapping {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return nil
	}
	m := &matcher{
		pattern:    pattern,
		target:     target,
		order:      matchOrder(pattern),
		induced:    opts.Induced,
		limit:      opts.Limit,
		onTraverse: opts.OnTraverse,
		onVisit:    opts.OnVisit,
		adjCache:   make(map[graph.VertexID][]graph.VertexID),
	}
	m.search(make(Mapping, pattern.NumVertices()), make(map[graph.VertexID]struct{}, pattern.NumVertices()))
	return m.out
}

// Exists reports whether at least one mapping of pattern into target exists.
func Exists(pattern, target *graph.Graph) bool {
	return len(FindAll(pattern, target, Options{Limit: 1})) > 0
}

// Count returns the number of mappings of pattern into target.
func Count(pattern, target *graph.Graph) int {
	return len(FindAll(pattern, target, Options{}))
}

// Match is a concrete sub-graph of the target matching a pattern: the
// mapped vertex set plus the images of the pattern's edges.
type Match struct {
	Vertices []graph.VertexID // sorted
	Edges    []graph.Edge     // normalized, sorted
}

// key returns a canonical identity for deduplication.
func (m Match) key() string {
	var sb strings.Builder
	for _, v := range m.Vertices {
		fmt.Fprintf(&sb, "%d,", v)
	}
	sb.WriteByte('|')
	for _, e := range m.Edges {
		fmt.Fprintf(&sb, "%d-%d,", e.U, e.V)
	}
	return sb.String()
}

// DistinctMatches returns the distinct sub-graphs of target matching
// pattern: mappings that select the same vertex and edge images (pattern
// automorphisms) are collapsed.
func DistinctMatches(pattern, target *graph.Graph, opts Options) []Match {
	maps := FindAll(pattern, target, opts)
	seen := make(map[string]struct{})
	var out []Match
	for _, mp := range maps {
		match := mappingToMatch(pattern, mp)
		k := match.key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, match)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

func mappingToMatch(pattern *graph.Graph, mp Mapping) Match {
	vs := make([]graph.VertexID, 0, len(mp))
	for _, tv := range mp {
		vs = append(vs, tv)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var es []graph.Edge
	for _, e := range pattern.Edges() {
		es = append(es, graph.Edge{U: mp[e.U], V: mp[e.V]}.Normalize())
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return Match{Vertices: vs, Edges: es}
}

// matchOrder returns the pattern's vertices ordered so each vertex (after
// the first) is adjacent to an earlier one where possible, starting from
// the highest-degree vertex. Connected-first ordering is what makes the
// adjacency pruning in search effective.
func matchOrder(p *graph.Graph) []graph.VertexID {
	vs := p.Vertices()
	if len(vs) == 0 {
		return nil
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := p.Degree(vs[i]), p.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	placed := map[graph.VertexID]bool{}
	var order []graph.VertexID
	var place func(v graph.VertexID)
	place = func(v graph.VertexID) {
		if placed[v] {
			return
		}
		placed[v] = true
		order = append(order, v)
		// Expand neighbours in descending-degree order.
		ns := p.Neighbors(v)
		sort.Slice(ns, func(i, j int) bool {
			di, dj := p.Degree(ns[i]), p.Degree(ns[j])
			if di != dj {
				return di > dj
			}
			return ns[i] < ns[j]
		})
		for _, n := range ns {
			place(n)
		}
	}
	for _, v := range vs {
		place(v)
	}
	return order
}

func (m *matcher) search(cur Mapping, used map[graph.VertexID]struct{}) bool {
	if len(cur) == len(m.order) {
		m.out = append(m.out, cur.clone())
		return m.limit > 0 && len(m.out) >= m.limit
	}
	pv := m.order[len(cur)]
	pl, _ := m.pattern.Label(pv)
	pdeg := m.pattern.Degree(pv)

	// Candidate set: if pv has a mapped neighbour, only that neighbour's
	// target adjacency needs scanning; otherwise all target vertices.
	var candidates []graph.VertexID
	var anchor graph.VertexID
	anchored := false
	for _, pn := range m.pattern.Neighbors(pv) {
		if tv, ok := cur[pn]; ok {
			candidates = m.targetNeighbors(tv)
			anchor = tv
			anchored = true
			break
		}
	}
	if !anchored {
		candidates = m.targetVertices()
	}

	for _, tv := range candidates {
		if _, taken := used[tv]; taken {
			continue
		}
		if anchored && m.onVisit != nil {
			m.onVisit(anchor, tv)
		}
		tl, ok := m.target.Label(tv)
		if !ok || tl != pl {
			continue
		}
		if m.target.Degree(tv) < pdeg {
			continue
		}
		if !m.consistent(cur, pv, tv) {
			continue
		}
		if anchored && m.onTraverse != nil {
			m.onTraverse(anchor, tv)
		}
		cur[pv] = tv
		used[tv] = struct{}{}
		stop := m.search(cur, used)
		delete(cur, pv)
		delete(used, tv)
		if stop {
			return true
		}
	}
	return false
}

// consistent checks adjacency constraints between the tentative pair
// (pv -> tv) and every already-mapped pattern vertex.
func (m *matcher) consistent(cur Mapping, pv, tv graph.VertexID) bool {
	//loom:orderinvariant pure adjacency predicate conjoined over all mapped pairs; the verdict is pair-order-free
	for qv, qt := range cur {
		pAdj := m.pattern.HasEdge(pv, qv)
		tAdj := m.target.HasEdge(tv, qt)
		if pAdj && !tAdj {
			return false
		}
		if m.induced && !pAdj && tAdj {
			return false
		}
	}
	return true
}

// Isomorphic reports whether a and b are isomorphic labelled graphs
// (|V|, |E| equal and a bijective label- and edge-preserving mapping
// exists).
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.NumVertices() == 0 {
		return true
	}
	// Quick invariant screens.
	if !equalHist(a.LabelHistogram(), b.LabelHistogram()) {
		return false
	}
	if !equalIntHist(a.DegreeHistogram(), b.DegreeHistogram()) {
		return false
	}
	// Induced matching of equal-sized graphs with equal edge counts is a
	// bijection that preserves edges exactly.
	return len(FindAll(a, b, Options{Induced: true, Limit: 1})) > 0
}

func equalHist(x, y map[graph.Label]int) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

func equalIntHist(x, y map[int]int) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// CanonicalKey returns a string that is identical for isomorphic labelled
// graphs and distinct otherwise. It tries every vertex permutation (with
// label/degree bucketing to cut the search), so it is exponential in |V|
// and intended for motifs of at most ~9 vertices; larger graphs yield an
// error.
func CanonicalKey(g *graph.Graph) (string, error) {
	n := g.NumVertices()
	if n > 9 {
		return "", fmt.Errorf("iso: CanonicalKey limited to 9 vertices, got %d", n)
	}
	if n == 0 {
		return "∅", nil
	}
	vs := g.Vertices()
	best := ""
	perm := make([]graph.VertexID, 0, n)
	usedIdx := make([]bool, n)
	var rec func()
	rec = func() {
		if len(perm) == n {
			key := renderKey(g, perm)
			if best == "" || key < best {
				best = key
			}
			return
		}
		for i, v := range vs {
			if usedIdx[i] {
				continue
			}
			perm = append(perm, v)
			usedIdx[i] = true
			rec()
			perm = perm[:len(perm)-1]
			usedIdx[i] = false
		}
	}
	rec()
	return best, nil
}

// renderKey serialises g under the vertex ordering perm: the label sequence
// followed by the upper-triangular adjacency bits.
func renderKey(g *graph.Graph, perm []graph.VertexID) string {
	var sb strings.Builder
	for _, v := range perm {
		l, _ := g.Label(v)
		sb.WriteString(string(l))
		sb.WriteByte(';')
	}
	sb.WriteByte('|')
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			if g.HasEdge(perm[i], perm[j]) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}
