package iso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func TestFindAllPathInPath(t *testing.T) {
	pat := graph.Path("a", "b")
	tgt := graph.Path("a", "b", "a")
	// Matches: (0->0,1->1) and (0->2,1->1).
	maps := FindAll(pat, tgt, Options{})
	if len(maps) != 2 {
		t.Fatalf("mappings = %d, want 2", len(maps))
	}
}

func TestFindAllLabelsRespected(t *testing.T) {
	pat := graph.Path("a", "a")
	tgt := graph.Path("a", "b", "a")
	if len(FindAll(pat, tgt, Options{})) != 0 {
		t.Fatal("aa must not match in aba")
	}
}

func TestFindAllTooBigPattern(t *testing.T) {
	pat := graph.Path("a", "b", "c", "d")
	tgt := graph.Path("a", "b")
	if FindAll(pat, tgt, Options{}) != nil {
		t.Fatal("pattern larger than target cannot match")
	}
	if FindAll(graph.New(), tgt, Options{}) != nil {
		t.Fatal("empty pattern yields no matches by convention")
	}
}

func TestFindAllLimit(t *testing.T) {
	pat := graph.Path("a", "b")
	tgt := graph.Star("b", "a", "a", "a", "a")
	all := FindAll(pat, tgt, Options{})
	if len(all) != 4 {
		t.Fatalf("mappings = %d, want 4", len(all))
	}
	limited := FindAll(pat, tgt, Options{Limit: 2})
	if len(limited) != 2 {
		t.Fatalf("limited mappings = %d, want 2", len(limited))
	}
}

func TestExistsAndCount(t *testing.T) {
	g := graph.Fig1Graph()
	q2 := graph.Path("a", "b", "c")
	if !Exists(q2, g) {
		t.Fatal("abc must exist in Fig1")
	}
	// Two distinct sub-graphs: 1-2-3 and 6-2-3.
	got := DistinctMatches(q2, g, Options{})
	if len(got) != 2 {
		t.Fatalf("abc distinct matches = %d, want 2", len(got))
	}
	if Count(q2, g) != 2 {
		t.Fatalf("Count = %d, want 2 (paths are asymmetric: no automorphism doubling)", Count(q2, g))
	}
}

func TestFig1SquareMatch(t *testing.T) {
	g := graph.Fig1Graph()
	q1 := graph.Cycle("a", "b", "a", "b")
	ms := DistinctMatches(q1, g, Options{})
	if len(ms) != 1 {
		t.Fatalf("q1 distinct matches = %d, want 1", len(ms))
	}
	want := []graph.VertexID{1, 2, 5, 6}
	for i, v := range ms[0].Vertices {
		if v != want[i] {
			t.Fatalf("match vertices %v, want %v", ms[0].Vertices, want)
		}
	}
	// The abab cycle has 4 label-preserving automorphisms (rotation by two
	// plus the two vertex-axis reflections), hence 4 mappings of the one
	// distinct match.
	if got := Count(q1, g); got != 4 {
		t.Fatalf("q1 mapping count = %d, want 4", got)
	}
}

func TestFig1PathQ3(t *testing.T) {
	g := graph.Fig1Graph()
	q3 := graph.Path("a", "b", "c", "d")
	ms := DistinctMatches(q3, g, Options{})
	// 1-2-3-4 and 6-2-3-4.
	if len(ms) != 2 {
		t.Fatalf("q3 distinct matches = %d, want 2", len(ms))
	}
}

func TestInducedVsNonInduced(t *testing.T) {
	// Pattern: path a-b-c. Target: triangle a-b-c. Non-induced matches the
	// path inside the triangle; induced does not (the extra a-c edge
	// violates induction).
	pat := graph.Path("a", "b", "c")
	tgt := graph.Cycle("a", "b", "c")
	if !Exists(pat, tgt) {
		t.Fatal("non-induced path must match inside the triangle")
	}
	if len(FindAll(pat, tgt, Options{Induced: true})) != 0 {
		t.Fatal("induced path must not match inside the triangle")
	}
}

func TestIsomorphic(t *testing.T) {
	a := graph.Cycle("a", "b", "a", "b")
	b := graph.New()
	for i, l := range []graph.Label{"b", "a", "b", "a"} {
		b.AddVertex(graph.VertexID(10+i), l)
	}
	for _, e := range []graph.Edge{{U: 10, V: 11}, {U: 11, V: 12}, {U: 12, V: 13}, {U: 13, V: 10}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if !Isomorphic(a, b) {
		t.Fatal("rotated cycles should be isomorphic")
	}
	if Isomorphic(a, graph.Path("a", "b", "a", "b")) {
		t.Fatal("cycle vs path should differ")
	}
	if Isomorphic(a, graph.Cycle("a", "b", "a", "a")) {
		t.Fatal("different label multisets should differ")
	}
	if !Isomorphic(graph.New(), graph.New()) {
		t.Fatal("empty graphs are isomorphic")
	}
}

func TestIsomorphicDegreeScreen(t *testing.T) {
	// Same labels, same |V| and |E|, different degree sequence:
	// path of 4 (degrees 1,2,2,1) vs star of 4 (3,1,1,1).
	p := graph.Path("x", "x", "x", "x")
	s := graph.Star("x", "x", "x", "x")
	if p.NumEdges() != s.NumEdges() {
		t.Fatal("test setup: edge counts should match")
	}
	if Isomorphic(p, s) {
		t.Fatal("path4 and star4 are not isomorphic")
	}
}

func TestCanonicalKey(t *testing.T) {
	a := graph.Path("a", "b", "c")
	b := graph.New()
	b.AddVertex(5, "c")
	b.AddVertex(9, "b")
	b.AddVertex(2, "a")
	if err := b.AddEdge(5, 9); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(9, 2); err != nil {
		t.Fatal(err)
	}
	ka, err := CanonicalKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := CanonicalKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("isomorphic graphs must share canonical key: %q vs %q", ka, kb)
	}
	kc, err := CanonicalKey(graph.Path("a", "c", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if ka == kc {
		t.Fatal("abc and acb paths must have different keys")
	}
}

func TestCanonicalKeyLimits(t *testing.T) {
	big := graph.Path("a", "a", "a", "a", "a", "a", "a", "a", "a", "a")
	if _, err := CanonicalKey(big); err == nil {
		t.Fatal("CanonicalKey must reject graphs over 9 vertices")
	}
	k, err := CanonicalKey(graph.New())
	if err != nil || k == "" {
		t.Fatalf("empty graph key: %q, %v", k, err)
	}
}

func TestTraversalHooks(t *testing.T) {
	g := graph.Fig1Graph()
	pat := graph.Path("a", "b", "c")
	var traversals, visits int
	FindAll(pat, g, Options{
		OnTraverse: func(from, to graph.VertexID) {
			if !g.HasEdge(from, to) {
				t.Errorf("traversal (%d,%d) is not an edge", from, to)
			}
			traversals++
		},
		OnVisit: func(from, to graph.VertexID) { visits++ },
	})
	if traversals == 0 {
		t.Fatal("expected traversals to be reported")
	}
	if visits < traversals {
		t.Fatalf("visits (%d) must be >= traversals (%d)", visits, traversals)
	}
}

func TestMatchKeyDedup(t *testing.T) {
	// A symmetric pattern (single edge a-a) in a triangle of a's: 3 edges,
	// 6 mappings, 3 distinct matches.
	pat := graph.Path("x", "x")
	tgt := graph.Cycle("x", "x", "x")
	if got := Count(pat, tgt); got != 6 {
		t.Fatalf("mapping count = %d, want 6", got)
	}
	if got := len(DistinctMatches(pat, tgt, Options{})); got != 3 {
		t.Fatalf("distinct matches = %d, want 3", got)
	}
}

// randomLabeledGraph builds a connected-ish random graph for properties.
func randomLabeledGraph(r *rand.Rand, n int, extra int, alphabet []graph.Label) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i), alphabet[r.Intn(len(alphabet))])
	}
	// Spanning tree first.
	for i := 1; i < n; i++ {
		p := graph.VertexID(r.Intn(i))
		if err := g.AddEdge(p, graph.VertexID(i)); err != nil {
			panic(err)
		}
	}
	for e := 0; e < extra; e++ {
		u := graph.VertexID(r.Intn(n))
		v := graph.VertexID(r.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func TestPropertyEverySubgraphMatches(t *testing.T) {
	// Any induced connected subgraph of g must be found in g.
	alphabet := []graph.Label{"a", "b"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 5+r.Intn(6), r.Intn(4), alphabet)
		order := g.BFSOrder(g.Vertices()[r.Intn(g.NumVertices())])
		k := 1 + r.Intn(4)
		if k > len(order) {
			k = len(order)
		}
		sub := g.InducedSubgraph(order[:k])
		if !sub.IsConnected() {
			return true // skip: BFS prefix is connected, but guard anyway
		}
		return Exists(sub, g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMappingsAreValid(t *testing.T) {
	// Every reported mapping is injective, label-preserving and
	// edge-preserving.
	alphabet := []graph.Label{"a", "b", "c"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 6+r.Intn(5), r.Intn(5), alphabet)
		pat := randomLabeledGraph(r, 2+r.Intn(3), r.Intn(2), alphabet)
		for _, mp := range FindAll(pat, g, Options{Limit: 50}) {
			seen := make(map[graph.VertexID]bool)
			for pv, tv := range mp {
				if seen[tv] {
					return false // not injective
				}
				seen[tv] = true
				pl, _ := pat.Label(pv)
				tl, _ := g.Label(tv)
				if pl != tl {
					return false
				}
			}
			for _, e := range pat.Edges() {
				if !g.HasEdge(mp[e.U], mp[e.V]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIsomorphicCanonicalAgree(t *testing.T) {
	// Isomorphic(a,b) must agree with CanonicalKey(a)==CanonicalKey(b) on
	// small graphs.
	alphabet := []graph.Label{"a", "b"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomLabeledGraph(r, 2+r.Intn(4), r.Intn(3), alphabet)
		b := randomLabeledGraph(r, 2+r.Intn(4), r.Intn(3), alphabet)
		ka, err := CanonicalKey(a)
		if err != nil {
			return false
		}
		kb, err := CanonicalKey(b)
		if err != nil {
			return false
		}
		return Isomorphic(a, b) == (ka == kb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
