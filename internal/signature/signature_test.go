package signature

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func TestFactoryAssignsDistinctPrimes(t *testing.T) {
	f := NewFactory()
	seen := map[uint64]string{}
	check := func(p uint64, what string) {
		if !isPrime(p) {
			t.Fatalf("%s factor %d is not prime", what, p)
		}
		if prev, dup := seen[p]; dup {
			t.Fatalf("factor %d assigned to both %s and %s", p, prev, what)
		}
		seen[p] = what
	}
	check(f.VertexFactor("a"), "v:a")
	check(f.VertexFactor("b"), "v:b")
	check(f.EdgeFactor("a", "b"), "e:ab")
	check(f.EdgeFactor("a", "a"), "e:aa")
	check(f.EdgeFactor("b", "b"), "e:bb")
}

func TestFactoryStableAssignment(t *testing.T) {
	f := NewFactory()
	p1 := f.VertexFactor("a")
	p2 := f.VertexFactor("a")
	if p1 != p2 {
		t.Fatalf("VertexFactor not stable: %d vs %d", p1, p2)
	}
	e1 := f.EdgeFactor("a", "b")
	e2 := f.EdgeFactor("b", "a")
	if e1 != e2 {
		t.Fatalf("EdgeFactor must be order-insensitive: %d vs %d", e1, e2)
	}
}

func TestFactoryForAlphabetDeterministic(t *testing.T) {
	alpha := []graph.Label{"c", "a", "b"}
	f1 := NewFactoryForAlphabet(alpha)
	f2 := NewFactoryForAlphabet([]graph.Label{"b", "c", "a"})
	for _, l := range alpha {
		if f1.VertexFactor(l) != f2.VertexFactor(l) {
			t.Fatalf("alphabet factories disagree on %s", l)
		}
	}
	if f1.EdgeFactor("a", "c") != f2.EdgeFactor("c", "a") {
		t.Fatal("alphabet factories disagree on edge factor")
	}
}

func TestFactoryConcurrentUse(t *testing.T) {
	f := NewFactory()
	labels := []graph.Label{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	results := make([][]uint64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([]uint64, 0, len(labels))
			for _, l := range labels {
				out = append(out, f.VertexFactor(l))
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		for j := range labels {
			if results[i][j] != results[0][j] {
				t.Fatalf("concurrent factor assignment diverged for %s", labels[j])
			}
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 97}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	composites := []uint64{0, 1, 4, 6, 9, 100}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("%d should not be prime", c)
		}
	}
}

func TestSignatureEqualAndKey(t *testing.T) {
	a := New().MulPrime(2).MulPrime(3).MulPrime(2)
	b := New().MulPrime(3).MulPrime(2).MulPrime(2)
	if !a.Equal(b) {
		t.Fatal("order of multiplication must not matter")
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %s vs %s", a.Key(), b.Key())
	}
	c := New().MulPrime(2).MulPrime(3)
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("different multiplicities must differ")
	}
	if New().Key() != "1" {
		t.Fatalf("empty signature key = %q, want 1", New().Key())
	}
}

func TestSignatureDivides(t *testing.T) {
	m := New().MulPrime(2).MulPrime(5)
	s := New().MulPrime(2).MulPrime(2).MulPrime(5).MulPrime(7)
	if !m.Divides(s) {
		t.Fatal("m should divide s")
	}
	if s.Divides(m) {
		t.Fatal("s should not divide m")
	}
	if !New().Divides(m) {
		t.Fatal("1 divides everything")
	}
	if !m.Divides(m) {
		t.Fatal("signature divides itself")
	}
}

func TestSignatureDivPrime(t *testing.T) {
	s := New().MulPrime(2).MulPrime(2).MulPrime(3)
	if !s.DivPrime(2) {
		t.Fatal("DivPrime(2) should succeed")
	}
	if !s.DivPrime(2) {
		t.Fatal("second DivPrime(2) should succeed")
	}
	if s.DivPrime(2) {
		t.Fatal("third DivPrime(2) should fail")
	}
	if !s.DivPrime(3) {
		t.Fatal("DivPrime(3) should succeed")
	}
	if !s.IsOne() {
		t.Fatalf("signature should be 1, got %s", s)
	}
	if s.DivPrime(5) {
		t.Fatal("DivPrime on absent prime should fail")
	}
}

func TestSignatureCloneIndependence(t *testing.T) {
	a := New().MulPrime(2)
	b := a.Clone()
	b.MulPrime(3)
	if a.Equal(b) {
		t.Fatal("clone mutation must not affect original")
	}
	if a.NumFactors() != 1 || b.NumFactors() != 2 {
		t.Fatal("factor counts wrong")
	}
}

func TestSignatureMul(t *testing.T) {
	a := New().MulPrime(2)
	b := New().MulPrime(3).MulPrime(2)
	a.Mul(b)
	want := New().MulPrime(2).MulPrime(2).MulPrime(3)
	if !a.Equal(want) {
		t.Fatalf("Mul result %s, want %s", a, want)
	}
}

func TestBigInt(t *testing.T) {
	s := New().MulPrime(2).MulPrime(3).MulPrime(3)
	if got := s.BigInt().Int64(); got != 18 {
		t.Fatalf("BigInt = %d, want 18", got)
	}
	if got := New().BigInt().Int64(); got != 1 {
		t.Fatalf("empty BigInt = %d, want 1", got)
	}
}

func TestSignatureOfGraph(t *testing.T) {
	f := NewFactoryForAlphabet([]graph.Label{"a", "b", "c"})
	p := graph.Path("a", "b", "c")
	s := f.SignatureOf(p)
	// 3 vertex factors + 2 edge factors.
	if s.NumFactors() != 5 {
		t.Fatalf("NumFactors = %d, want 5", s.NumFactors())
	}
	// Same structure, same labels => same signature regardless of IDs.
	p2 := graph.New()
	p2.AddVertex(10, "c")
	p2.AddVertex(20, "b")
	p2.AddVertex(30, "a")
	if err := p2.AddEdge(10, 20); err != nil {
		t.Fatal(err)
	}
	if err := p2.AddEdge(20, 30); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(f.SignatureOf(p2)) {
		t.Fatal("isomorphic graphs must share signature")
	}
}

func TestSignatureSubgraphDivisibility(t *testing.T) {
	f := NewFactoryForAlphabet([]graph.Label{"a", "b", "c", "d"})
	whole := graph.Path("a", "b", "c", "d")
	sub := graph.Path("a", "b", "c")
	if !f.SignatureOf(sub).Divides(f.SignatureOf(whole)) {
		t.Fatal("sub-path signature must divide super-path signature")
	}
	other := graph.Path("d", "c", "b")
	if !f.SignatureOf(other).Divides(f.SignatureOf(whole)) {
		t.Fatal("dcb is a subgraph of abcd (reversed)")
	}
	not := graph.Path("a", "a")
	if f.SignatureOf(not).Divides(f.SignatureOf(whole)) {
		t.Fatal("aa is not a subgraph of abcd")
	}
}

func TestSignatureIncrementalMatchesBatch(t *testing.T) {
	// Growing a graph edge by edge and multiplying factors incrementally
	// must equal SignatureOf the final graph.
	f := NewFactoryForAlphabet([]graph.Label{"a", "b", "c"})
	g := graph.New()
	s := New()

	addV := func(id graph.VertexID, l graph.Label) {
		g.AddVertex(id, l)
		s.MulPrime(f.VertexFactor(l))
	}
	addE := func(u, v graph.VertexID) {
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		lu, _ := g.Label(u)
		lv, _ := g.Label(v)
		s.MulPrime(f.EdgeFactor(lu, lv))
	}
	addV(1, "a")
	addV(2, "b")
	addE(1, 2)
	addV(3, "c")
	addE(2, 3)
	addE(1, 3)

	if !s.Equal(f.SignatureOf(g)) {
		t.Fatalf("incremental %s != batch %s", s, f.SignatureOf(g))
	}
}

func TestPropertyKeyBijective(t *testing.T) {
	// Key equality iff Equal, over random signatures.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		primes := []uint64{2, 3, 5, 7, 11, 13}
		mk := func() *Signature {
			s := New()
			for i := 0; i < r.Intn(8); i++ {
				s.MulPrime(primes[r.Intn(len(primes))])
			}
			return s
		}
		a, b := mk(), mk()
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDivisibilityMatchesBigInt(t *testing.T) {
	// Factor-multiset divisibility must agree with big.Int divisibility.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		primes := []uint64{2, 3, 5, 7}
		mk := func(n int) *Signature {
			s := New()
			for i := 0; i < n; i++ {
				s.MulPrime(primes[r.Intn(len(primes))])
			}
			return s
		}
		a, b := mk(r.Intn(6)), mk(r.Intn(10))
		ai, bi := a.BigInt(), b.BigInt()
		rem := ai.Mod(bi, ai) // bi mod ai
		intDivides := rem.Sign() == 0
		return a.Divides(b) == intDivides
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubgraphSignatureDivides(t *testing.T) {
	// For random graphs, any induced connected subgraph's signature divides
	// the whole graph's signature.
	alphabet := []graph.Label{"a", "b", "c"}
	f := NewFactoryForAlphabet(alphabet)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddVertex(graph.VertexID(i), alphabet[r.Intn(len(alphabet))])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.4 {
					if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
						return false
					}
				}
			}
		}
		keep := g.Vertices()[:1+r.Intn(n)]
		sub := g.InducedSubgraph(keep)
		return f.SignatureOf(sub).Divides(f.SignatureOf(g))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
