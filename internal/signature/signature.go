// Package signature implements the number-theoretic graph signatures of
// Song et al. (VLDB 2015) that LOOM uses for non-authoritative isomorphism
// checks (paper §4.3).
//
// Every distinct vertex label and every distinct unordered label pair is
// assigned a unique prime "factor". The signature of a labelled graph is
// the product of the factors of its vertices and edges. Two properties make
// this useful for streaming pattern matching:
//
//  1. Incrementality: when an edge arrives, the signature of the grown
//     subgraph is the previous signature multiplied by the edge's factor.
//  2. Divisibility: if motif M is a subgraph of S (preserving labels) then
//     sig(M) divides sig(S). The converse does not hold — signatures are a
//     necessary condition, not proof of a match — but collisions are rare
//     for small motifs (experiment E8 measures the rate, and the pattern
//     package can verify candidates with exact isomorphism).
//
// Signatures are represented exactly as prime-exponent multisets (so
// equality and divisibility are precise set operations), with an optional
// *big.Int rendering for the paper-faithful integer form.
package signature

import (
	"math/big"
	"sort"
	"strconv"
	"sync"

	"loom/internal/graph"
	"loom/internal/ident"
)

// Factory assigns prime factors to labels and label pairs. Assignment is
// first-come-first-served, so signatures are comparable only when produced
// by the same Factory (or one seeded with the same alphabet in the same
// order).
//
// Labels are interned to dense LabelIDs (package ident) and the factor
// tables are LabelID-indexed slices, so hot paths that already hold
// LabelIDs (the pattern tracker reading them off the window graph) probe a
// slice instead of hashing a string. Factory methods are safe for
// concurrent use; sharing its label interner with other components (via
// Labels) is safe only within a single goroutine's pipeline.
type Factory struct {
	mu            sync.Mutex
	nextCandidate uint64
	labels        *ident.Labels
	// vertexFactor[id] is the prime of label id; 0 = not yet assigned.
	vertexFactor []uint64
	// edgeFactor[a][b] is the prime of the unordered pair {a,b}, mirrored
	// across the diagonal; 0 = not yet assigned. Rows grow on demand.
	edgeFactor [][]uint64
}

// NewFactory returns an empty Factory.
func NewFactory() *Factory {
	return &Factory{
		nextCandidate: 2,
		labels:        ident.NewLabels(),
	}
}

// NewFactoryForAlphabet returns a Factory with factors pre-assigned for
// every label and label pair of the alphabet in sorted order, making factor
// assignment independent of observation order.
func NewFactoryForAlphabet(alphabet []graph.Label) *Factory {
	f := NewFactory()
	sorted := append([]graph.Label(nil), alphabet...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, l := range sorted {
		f.VertexFactor(l)
	}
	for i, a := range sorted {
		for _, b := range sorted[i:] {
			f.EdgeFactor(a, b)
		}
	}
	return f
}

// nextPrime returns the next unassigned prime, by trial division. Factor
// counts are tiny (|alphabet| + |alphabet|^2/2), so this is never hot.
func (f *Factory) nextPrime() uint64 {
	for {
		n := f.nextCandidate
		f.nextCandidate++
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Labels exposes the factory's label interner so other components (the LOOM
// stream window's graph) can intern labels to the same LabelIDs and probe
// the factor tables ByID. Single-goroutine sharing only.
func (f *Factory) Labels() *ident.Labels { return f.labels }

// LabelID interns l and returns its dense id.
func (f *Factory) LabelID(l graph.Label) ident.LabelID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.labels.Intern(string(l))
}

// vertexFactorLocked returns (assigning if needed) the prime of label id.
func (f *Factory) vertexFactorLocked(id ident.LabelID) uint64 {
	for int(id) >= len(f.vertexFactor) {
		f.vertexFactor = append(f.vertexFactor, 0)
	}
	if p := f.vertexFactor[id]; p != 0 {
		return p
	}
	p := f.nextPrime()
	f.vertexFactor[id] = p
	return p
}

// edgeFactorLocked returns (assigning if needed) the prime of the unordered
// pair {a,b}, mirroring the assignment across the diagonal.
func (f *Factory) edgeFactorLocked(a, b ident.LabelID) uint64 {
	hi := a
	if b > hi {
		hi = b
	}
	for int(hi) >= len(f.edgeFactor) {
		f.edgeFactor = append(f.edgeFactor, nil)
	}
	row := f.edgeFactor[a]
	if int(b) < len(row) && row[b] != 0 {
		return row[b]
	}
	p := f.nextPrime()
	for int(b) >= len(f.edgeFactor[a]) {
		f.edgeFactor[a] = append(f.edgeFactor[a], 0)
	}
	for int(a) >= len(f.edgeFactor[b]) {
		f.edgeFactor[b] = append(f.edgeFactor[b], 0)
	}
	f.edgeFactor[a][b] = p
	f.edgeFactor[b][a] = p
	return p
}

// VertexFactor returns the prime assigned to label l, assigning one if new.
func (f *Factory) VertexFactor(l graph.Label) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vertexFactorLocked(f.labels.Intern(string(l)))
}

// VertexFactorByID is VertexFactor for an already-interned label, skipping
// the string hash on the tracker's hot path.
func (f *Factory) VertexFactorByID(id ident.LabelID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vertexFactorLocked(id)
}

// EdgeFactor returns the prime assigned to the unordered label pair
// {la, lb}, assigning one if new.
func (f *Factory) EdgeFactor(la, lb graph.Label) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.edgeFactorLocked(f.labels.Intern(string(la)), f.labels.Intern(string(lb)))
}

// EdgeFactorByID is EdgeFactor for already-interned labels.
func (f *Factory) EdgeFactorByID(a, b ident.LabelID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.edgeFactorLocked(a, b)
}

// SignatureOf computes the signature of g from scratch.
func (f *Factory) SignatureOf(g *graph.Graph) *Signature {
	s := New()
	for _, v := range g.Vertices() {
		l, _ := g.Label(v)
		s.MulPrime(f.VertexFactor(l))
	}
	for _, e := range g.Edges() {
		la, _ := g.Label(e.U)
		lb, _ := g.Label(e.V)
		s.MulPrime(f.EdgeFactor(la, lb))
	}
	return s
}

// factorEntry is one (prime, exponent) pair of a signature's multiset.
type factorEntry struct {
	p uint64
	e uint32
}

// Signature is a multiset of prime factors: factor -> exponent, stored as a
// slice sorted by prime. Factor counts are tiny (|V| + |E| of a small
// motif), so sorted-slice probes beat hashing and keep the matcher's
// clone-per-extension hot path down to a single allocation. The zero value
// is not usable; construct with New. Signature is not safe for concurrent
// mutation.
type Signature struct {
	fs []factorEntry // sorted by p ascending
}

// New returns the empty signature (the multiplicative identity, integer 1).
func New() *Signature {
	return &Signature{}
}

// Clone returns an independent copy.
func (s *Signature) Clone() *Signature {
	c := &Signature{}
	if len(s.fs) > 0 {
		// Leave headroom: clones are almost always multiplied right after.
		c.fs = make([]factorEntry, len(s.fs), len(s.fs)+2)
		copy(c.fs, s.fs)
	}
	return c
}

// find returns the index of prime p in s.fs, or the insertion point with
// ok=false.
func (s *Signature) find(p uint64) (int, bool) {
	lo, hi := 0, len(s.fs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.fs[mid].p < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.fs) && s.fs[lo].p == p
}

// MulPrime multiplies the signature by prime p in place and returns s for
// chaining.
func (s *Signature) MulPrime(p uint64) *Signature {
	i, ok := s.find(p)
	if ok {
		s.fs[i].e++
		return s
	}
	s.fs = append(s.fs, factorEntry{})
	copy(s.fs[i+1:], s.fs[i:])
	s.fs[i] = factorEntry{p: p, e: 1}
	return s
}

// DivPrime divides by prime p in place; it reports false (leaving s
// unchanged) if p is not a factor.
func (s *Signature) DivPrime(p uint64) bool {
	i, ok := s.find(p)
	if !ok {
		return false
	}
	if s.fs[i].e > 1 {
		s.fs[i].e--
		return true
	}
	s.fs = append(s.fs[:i], s.fs[i+1:]...)
	return true
}

// Mul multiplies s by t in place and returns s.
func (s *Signature) Mul(t *Signature) *Signature {
	for _, f := range t.fs {
		i, ok := s.find(f.p)
		if ok {
			s.fs[i].e += f.e
			continue
		}
		s.fs = append(s.fs, factorEntry{})
		copy(s.fs[i+1:], s.fs[i:])
		s.fs[i] = f
	}
	return s
}

// Equal reports exact signature equality.
func (s *Signature) Equal(t *Signature) bool {
	if len(s.fs) != len(t.fs) {
		return false
	}
	for i, f := range s.fs {
		if t.fs[i] != f {
			return false
		}
	}
	return true
}

// Divides reports whether s divides t, i.e. every factor of s appears in t
// with at least the same multiplicity. sig(M).Divides(sig(S)) is the
// necessary condition for M being a (label-preserving) subgraph of S.
func (s *Signature) Divides(t *Signature) bool {
	j := 0
	for _, f := range s.fs {
		for j < len(t.fs) && t.fs[j].p < f.p {
			j++
		}
		if j >= len(t.fs) || t.fs[j].p != f.p || t.fs[j].e < f.e {
			return false
		}
	}
	return true
}

// IsOne reports whether s is the empty product.
func (s *Signature) IsOne() bool { return len(s.fs) == 0 }

// NumFactors returns the total factor count with multiplicity (= |V| + |E|
// of the underlying graph when built by SignatureOf).
func (s *Signature) NumFactors() int {
	n := 0
	for _, f := range s.fs {
		n += int(f.e)
	}
	return n
}

// AppendKey appends the canonical key to dst and returns it, letting
// callers that only need transient key bytes skip the string allocation.
func (s *Signature) AppendKey(dst []byte) []byte {
	if len(s.fs) == 0 {
		return append(dst, '1')
	}
	for i, f := range s.fs {
		if i > 0 {
			dst = append(dst, '.')
		}
		dst = strconv.AppendUint(dst, f.p, 10)
		dst = append(dst, '^')
		dst = strconv.AppendUint(dst, uint64(f.e), 10)
	}
	return dst
}

// Key returns a canonical string key ("p^e.p^e..." with primes ascending),
// suitable for indexing signatures in maps. Equal signatures have equal
// keys and vice versa.
func (s *Signature) Key() string {
	if len(s.fs) == 0 {
		return "1"
	}
	return string(s.AppendKey(make([]byte, 0, 12*len(s.fs))))
}

// BigInt renders the signature as the integer product Π p^e, the
// paper-faithful "large integer hash" form.
func (s *Signature) BigInt() *big.Int {
	out := big.NewInt(1)
	pb := new(big.Int)
	for _, f := range s.fs {
		pb.SetUint64(f.p)
		for i := uint32(0); i < f.e; i++ {
			out.Mul(out, pb)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (s *Signature) String() string { return "sig{" + s.Key() + "}" }
