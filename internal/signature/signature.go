// Package signature implements the number-theoretic graph signatures of
// Song et al. (VLDB 2015) that LOOM uses for non-authoritative isomorphism
// checks (paper §4.3).
//
// Every distinct vertex label and every distinct unordered label pair is
// assigned a unique prime "factor". The signature of a labelled graph is
// the product of the factors of its vertices and edges. Two properties make
// this useful for streaming pattern matching:
//
//  1. Incrementality: when an edge arrives, the signature of the grown
//     subgraph is the previous signature multiplied by the edge's factor.
//  2. Divisibility: if motif M is a subgraph of S (preserving labels) then
//     sig(M) divides sig(S). The converse does not hold — signatures are a
//     necessary condition, not proof of a match — but collisions are rare
//     for small motifs (experiment E8 measures the rate, and the pattern
//     package can verify candidates with exact isomorphism).
//
// Signatures are represented exactly as prime-exponent multisets (so
// equality and divisibility are precise set operations), with an optional
// *big.Int rendering for the paper-faithful integer form.
package signature

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"

	"loom/internal/graph"
)

// Factory assigns prime factors to labels and label pairs. Assignment is
// first-come-first-served, so signatures are comparable only when produced
// by the same Factory (or one seeded with the same alphabet in the same
// order). Factory is safe for concurrent use.
type Factory struct {
	mu            sync.Mutex
	nextCandidate uint64
	vertexFactor  map[graph.Label]uint64
	edgeFactor    map[[2]graph.Label]uint64
}

// NewFactory returns an empty Factory.
func NewFactory() *Factory {
	return &Factory{
		nextCandidate: 2,
		vertexFactor:  make(map[graph.Label]uint64),
		edgeFactor:    make(map[[2]graph.Label]uint64),
	}
}

// NewFactoryForAlphabet returns a Factory with factors pre-assigned for
// every label and label pair of the alphabet in sorted order, making factor
// assignment independent of observation order.
func NewFactoryForAlphabet(alphabet []graph.Label) *Factory {
	f := NewFactory()
	sorted := append([]graph.Label(nil), alphabet...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, l := range sorted {
		f.VertexFactor(l)
	}
	for i, a := range sorted {
		for _, b := range sorted[i:] {
			f.EdgeFactor(a, b)
		}
	}
	return f
}

// nextPrime returns the next unassigned prime, by trial division. Factor
// counts are tiny (|alphabet| + |alphabet|^2/2), so this is never hot.
func (f *Factory) nextPrime() uint64 {
	for {
		n := f.nextCandidate
		f.nextCandidate++
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// VertexFactor returns the prime assigned to label l, assigning one if new.
func (f *Factory) VertexFactor(l graph.Label) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.vertexFactor[l]; ok {
		return p
	}
	p := f.nextPrime()
	f.vertexFactor[l] = p
	return p
}

// EdgeFactor returns the prime assigned to the unordered label pair
// {la, lb}, assigning one if new.
func (f *Factory) EdgeFactor(la, lb graph.Label) uint64 {
	if lb < la {
		la, lb = lb, la
	}
	key := [2]graph.Label{la, lb}
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.edgeFactor[key]; ok {
		return p
	}
	p := f.nextPrime()
	f.edgeFactor[key] = p
	return p
}

// SignatureOf computes the signature of g from scratch.
func (f *Factory) SignatureOf(g *graph.Graph) *Signature {
	s := New()
	for _, v := range g.Vertices() {
		l, _ := g.Label(v)
		s.MulPrime(f.VertexFactor(l))
	}
	for _, e := range g.Edges() {
		la, _ := g.Label(e.U)
		lb, _ := g.Label(e.V)
		s.MulPrime(f.EdgeFactor(la, lb))
	}
	return s
}

// Signature is a multiset of prime factors: factor -> exponent. The zero
// value is not usable; construct with New. Signature is not safe for
// concurrent mutation.
type Signature struct {
	factors map[uint64]uint32
}

// New returns the empty signature (the multiplicative identity, integer 1).
func New() *Signature {
	return &Signature{factors: make(map[uint64]uint32)}
}

// Clone returns an independent copy.
func (s *Signature) Clone() *Signature {
	c := &Signature{factors: make(map[uint64]uint32, len(s.factors))}
	for p, e := range s.factors {
		c.factors[p] = e
	}
	return c
}

// MulPrime multiplies the signature by prime p in place and returns s for
// chaining.
func (s *Signature) MulPrime(p uint64) *Signature {
	s.factors[p]++
	return s
}

// DivPrime divides by prime p in place; it reports false (leaving s
// unchanged) if p is not a factor.
func (s *Signature) DivPrime(p uint64) bool {
	e, ok := s.factors[p]
	if !ok {
		return false
	}
	if e == 1 {
		delete(s.factors, p)
	} else {
		s.factors[p] = e - 1
	}
	return true
}

// Mul multiplies s by t in place and returns s.
func (s *Signature) Mul(t *Signature) *Signature {
	for p, e := range t.factors {
		s.factors[p] += e
	}
	return s
}

// Equal reports exact signature equality.
func (s *Signature) Equal(t *Signature) bool {
	if len(s.factors) != len(t.factors) {
		return false
	}
	for p, e := range s.factors {
		if t.factors[p] != e {
			return false
		}
	}
	return true
}

// Divides reports whether s divides t, i.e. every factor of s appears in t
// with at least the same multiplicity. sig(M).Divides(sig(S)) is the
// necessary condition for M being a (label-preserving) subgraph of S.
func (s *Signature) Divides(t *Signature) bool {
	for p, e := range s.factors {
		if t.factors[p] < e {
			return false
		}
	}
	return true
}

// IsOne reports whether s is the empty product.
func (s *Signature) IsOne() bool { return len(s.factors) == 0 }

// NumFactors returns the total factor count with multiplicity (= |V| + |E|
// of the underlying graph when built by SignatureOf).
func (s *Signature) NumFactors() int {
	n := 0
	for _, e := range s.factors {
		n += int(e)
	}
	return n
}

// Key returns a canonical string key ("p^e.p^e..." with primes ascending),
// suitable for indexing signatures in maps. Equal signatures have equal
// keys and vice versa.
func (s *Signature) Key() string {
	if len(s.factors) == 0 {
		return "1"
	}
	primes := make([]uint64, 0, len(s.factors))
	for p := range s.factors {
		primes = append(primes, p)
	}
	sort.Slice(primes, func(i, j int) bool { return primes[i] < primes[j] })
	var sb strings.Builder
	for i, p := range primes {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%d^%d", p, s.factors[p])
	}
	return sb.String()
}

// BigInt renders the signature as the integer product Π p^e, the
// paper-faithful "large integer hash" form.
func (s *Signature) BigInt() *big.Int {
	out := big.NewInt(1)
	pb := new(big.Int)
	for p, e := range s.factors {
		pb.SetUint64(p)
		for i := uint32(0); i < e; i++ {
			out.Mul(out, pb)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (s *Signature) String() string { return "sig{" + s.Key() + "}" }
