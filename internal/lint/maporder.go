package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for … range` over a map in the deterministic packages
// unless the loop is provably order-insensitive or carries a justified
// //loom:orderinvariant annotation. Go randomises map iteration order
// per run, so any order-sensitive map range makes whole seeded
// partitioning runs irreproducible (the exact failure PR 5 dug out of
// pattern.Tracker.enforceCaps by hand).
//
// The order-insensitivity proof is a conservative syntactic heuristic;
// a loop body qualifies when every statement is one of:
//
//   - an integer accumulation (x++, x--, x += e, …) — associative and
//     commutative, unlike float or string accumulation;
//   - appending to a slice that is sorted later in the same function
//     (the canonical extract-keys-then-sort fix);
//   - a store m[k] = v or delete(m, k) whose key mentions a loop
//     variable and whose value does not read the written map — distinct
//     iterations touch distinct entries (set/clone building);
//   - declaring fresh per-iteration locals from call-free expressions;
//   - an if statement whose branches qualify, including the pure
//     predicate form `if cond { return <constants> }` (every iteration
//     returns the same constants, so hit order is irrelevant) and the
//     payload-free integer min/max form `if v > best { best = v }`;
//   - a nested range over a slice/array (or another map — checked
//     separately) whose body qualifies.
//
// Anything else needs a sort or a reasoned annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags order-sensitive map iteration in the deterministic packages; " +
		"suppress with //loom:orderinvariant <reason>",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !DeterministicPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		file := f
		var funcStack []ast.Node // enclosing *ast.FuncDecl / *ast.FuncLit
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				var body *ast.BlockStmt
				if fd, ok := n.(*ast.FuncDecl); ok {
					body = fd.Body
				} else {
					body = n.(*ast.FuncLit).Body
				}
				if body != nil {
					ast.Inspect(body, visit)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				if !isMap(pass.TypeOf(n.X)) {
					return true
				}
				checkMapRange(pass, file, n, enclosingBody(funcStack))
				return true
			}
			return true
		}
		ast.Inspect(f, visit)
	}
}

func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	if len(stack) == 0 {
		return nil
	}
	switch fn := stack[len(stack)-1].(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	if d, ok := pass.DirectiveAt(file, rs, "orderinvariant"); ok {
		if d.Reason == "" {
			pass.Reportf(rs.For, "//loom:orderinvariant suppression requires a written reason")
		}
		return
	}
	chk := &orderChecker{pass: pass, rs: rs, fnBody: fnBody}
	if chk.insensitiveBody() {
		return
	}
	pass.Reportf(rs.For, "iteration over map %s has runtime-randomised order: sort the keys first, "+
		"or annotate //loom:orderinvariant <reason> if the body is order-insensitive", typeLabel(pass, rs.X))
}

func typeLabel(pass *Pass, e ast.Expr) string {
	if t := pass.TypeOf(e); t != nil {
		return t.String()
	}
	return "<unknown>"
}

// orderChecker proves (conservatively) that one map-range body is
// order-insensitive.
type orderChecker struct {
	pass   *Pass
	rs     *ast.RangeStmt
	fnBody *ast.BlockStmt
	// appendTargets collects slice objects appended to inside the loop;
	// each must be sorted after the loop for the proof to hold.
	appendTargets []types.Object
}

func (c *orderChecker) insensitiveBody() bool {
	if !c.allowedStmts(c.rs.Body.List) {
		return false
	}
	for _, obj := range c.appendTargets {
		if !c.sortedAfterLoop(obj) {
			return false
		}
	}
	return true
}

func (c *orderChecker) allowedStmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.allowedStmt(s) {
			return false
		}
	}
	return true
}

func (c *orderChecker) allowedStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return isInteger(c.typeOr(s.X))
	case *ast.AssignStmt:
		return c.allowedAssign(s)
	case *ast.ExprStmt:
		return c.allowedDelete(s.X)
	case *ast.IfStmt:
		return c.allowedIf(s)
	case *ast.BlockStmt:
		return c.allowedStmts(s.List)
	case *ast.BranchStmt:
		// break would stop after a random subset of entries; continue
		// just skips the current one.
		return s.Tok == token.CONTINUE
	case *ast.RangeStmt:
		// A nested range over a slice/array is deterministic given its
		// operand; a nested map range is checked independently by the
		// analyzer, so only its body matters for the outer proof.
		return c.allowedStmts(s.Body.List)
	case *ast.ReturnStmt:
		return c.constantReturn(s)
	}
	return false
}

func (c *orderChecker) typeOr(e ast.Expr) types.Type {
	if t := c.pass.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// allowedAssign vets one assignment statement inside the loop body.
func (c *orderChecker) allowedAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN, token.SHL_ASSIGN, token.AND_NOT_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (addition is not associative), string concatenation is ordered.
		return len(s.Lhs) == 1 && isInteger(c.typeOr(s.Lhs[0]))
	case token.DEFINE:
		// Fresh per-iteration locals are harmless as long as computing
		// them cannot have side effects (no calls).
		for _, rhs := range s.Rhs {
			if hasCall(rhs) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		// s = append(s, …): defer judgement to the post-loop sort check.
		if tgt, ok := c.appendSelf(lhs, rhs); ok {
			c.appendTargets = append(c.appendTargets, tgt)
			return true
		}
		// m[k] = v (or s[k] = v on a slice) with a loop-variable key and
		// a value that does not read the written container: distinct
		// iterations write distinct entries.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			t := c.typeOr(idx.X).Underlying()
			_, isM := t.(*types.Map)
			_, isS := t.(*types.Slice)
			if isM || isS {
				return c.usesLoopVar(idx.Index) && !c.mentionsTarget(rhs, idx.X) && !hasCall(rhs)
			}
		}
	}
	return false
}

// appendSelf matches `x = append(x, …)` — x a local or a field like
// t.scratch — and returns x's object.
func (c *orderChecker) appendSelf(lhs, rhs ast.Expr) (types.Object, bool) {
	obj := c.sliceObj(lhs)
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || c.pass.ObjectOf(fn) != types.Universe.Lookup("append") {
		return nil, false
	}
	if obj == nil || c.sliceObj(call.Args[0]) != obj {
		return nil, false
	}
	for _, a := range call.Args[1:] {
		if hasCall(a) {
			return nil, false
		}
	}
	return obj, true
}

// sliceObj resolves an append/sort target to its variable object: a
// plain ident or a field selector (the field's object stands in for
// the whole chain — within one function that is unambiguous enough for
// the heuristic).
func (c *orderChecker) sliceObj(e ast.Expr) types.Object {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.pass.ObjectOf(t)
	case *ast.SelectorExpr:
		return c.pass.ObjectOf(t.Sel)
	}
	return nil
}

// allowedDelete matches delete(m, k) where either m is not the ranged
// map and the statement touches a loop-variable-selected entry
// (independent per-key cleanup, like delete(t.byVertex[v], id)), or k
// is exactly the range key variable (deleting the current entry, which
// the spec makes well-defined).
func (c *orderChecker) allowedDelete(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "delete" || c.pass.ObjectOf(fn) != types.Universe.Lookup("delete") {
		return false
	}
	if hasCall(call.Args[0]) || hasCall(call.Args[1]) {
		return false
	}
	if !c.mentionsTarget(call.Args[0], c.rs.X) {
		return c.usesLoopVar(call.Args[1]) || c.usesLoopVar(call.Args[0])
	}
	key, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	kv, ok := ast.Unparen(c.rs.Key).(*ast.Ident)
	return ok && c.pass.ObjectOf(key) != nil && c.pass.ObjectOf(key) == c.pass.ObjectOf(kv)
}

func (c *orderChecker) allowedIf(s *ast.IfStmt) bool {
	if s.Init != nil && !c.allowedStmt(s.Init) {
		return false
	}
	if c.intExtremum(s) {
		return true
	}
	if !c.allowedStmts(s.Body.List) {
		return false
	}
	switch e := s.Else.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		return c.allowedStmts(e.List)
	case *ast.IfStmt:
		return c.allowedIf(e)
	}
	return false
}

// intExtremum matches the payload-free running min/max
// `if v > best { best = v }` over integers: the final extremum is the
// same whatever order the values arrive in, as long as nothing else
// (like an argmax key) is tracked alongside it.
func (c *orderChecker) intExtremum(s *ast.IfStmt) bool {
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	if !isInteger(c.typeOr(asg.Lhs[0])) {
		return false
	}
	lhs := c.objOf(asg.Lhs[0])
	rhs := c.objOf(asg.Rhs[0])
	x, y := c.objOf(cond.X), c.objOf(cond.Y)
	if lhs == nil || rhs == nil || x == nil || y == nil {
		return false
	}
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

func (c *orderChecker) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pass.ObjectOf(id)
}

// constantReturn accepts `return` of constant literals only (the pure
// predicate pattern): whichever iteration triggers it, the caller sees
// the same value. To keep multiple early returns from re-introducing
// order dependence, all such returns are checked for constancy
// individually — two different constant returns on overlapping
// conditions would still race on iteration order, so only ifs guard
// them and the heuristic stays conservative by requiring the loop to
// have at most one return shape.
func (c *orderChecker) constantReturn(s *ast.ReturnStmt) bool {
	sig := c.returnShape(s)
	if sig == "" {
		return false
	}
	first := ""
	ok := true
	ast.Inspect(c.rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			shape := c.returnShape(n)
			if shape == "" {
				ok = false
			} else if first == "" {
				first = shape
			} else if shape != first {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// returnShape renders a return statement's results if they are all
// constants (literals, true/false, nil); "" otherwise.
func (c *orderChecker) returnShape(s *ast.ReturnStmt) string {
	shape := "ret"
	for _, r := range s.Results {
		switch e := ast.Unparen(r).(type) {
		case *ast.BasicLit:
			shape += "|" + e.Value
		case *ast.Ident:
			if e.Name != "true" && e.Name != "false" && e.Name != "nil" {
				return ""
			}
			shape += "|" + e.Name
		default:
			return ""
		}
	}
	return shape
}

// usesLoopVar reports whether e mentions the range key or value
// variable.
func (c *orderChecker) usesLoopVar(e ast.Expr) bool {
	for _, v := range [...]ast.Expr{c.rs.Key, c.rs.Value} {
		if v == nil {
			continue
		}
		id, ok := ast.Unparen(v).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := c.pass.ObjectOf(id); obj != nil && c.pass.refersTo(e, obj) {
			return true
		}
	}
	return false
}

// mentionsTarget reports whether e mentions the root object of target
// (an ident, possibly behind selectors/indexes).
func (c *orderChecker) mentionsTarget(e, target ast.Expr) bool {
	obj := c.rootObj(target)
	if obj == nil {
		return true // unknown root: assume the worst
	}
	return c.pass.refersTo(e, obj)
}

func (c *orderChecker) rootObj(e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return c.pass.ObjectOf(t)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// sortedAfterLoop reports whether obj is passed to a sort call
// somewhere after the range statement in the enclosing function.
func (c *orderChecker) sortedAfterLoop(obj types.Object) bool {
	if c.fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "Slice", "SliceStable",
			"Strings", "Ints", "Float64s", "Stable":
			if c.sliceObj(call.Args[0]) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasCall reports whether e contains any call expression (conversions
// and builtins included — conservative).
func hasCall(e ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
