package lint_test

import (
	"testing"

	"loom/internal/lint"
	"loom/internal/lint/linttest"
)

// Each fixture package is loaded under an import path chosen to trip the
// analyzer's package gate, and both directions are asserted: every // want
// line must produce a diagnostic, and every diagnostic must be wanted.

func TestMapOrderAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/maporder", "loom/internal/core", lint.MapOrder)
}

func TestWallClockAnalyzerStrict(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", "loom/internal/stream", lint.WallClock)
}

func TestWallClockAnalyzerAllowlist(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclockserve", "loom/internal/serve", lint.WallClock)
}

func TestHotAllocAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/hotalloc", "loom/internal/core", lint.HotAlloc)
}

func TestFramedWriteAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/framedwrite", "loom/internal/checkpoint", lint.FramedWrite)
}

// The frame helpers shared with the WAL put internal/stream under the
// same framing discipline; the same fixture must diagnose identically
// when loaded at that import path.
func TestFramedWriteAnalyzerStream(t *testing.T) {
	linttest.Run(t, "testdata/src/framedwrite", "loom/internal/stream", lint.FramedWrite)
}
