package lint_test

import (
	"testing"

	"loom/internal/lint"
)

// TestRepositoryIsLintClean runs the full analyzer suite over every
// package in the module and demands zero diagnostics — the same gate CI
// applies via cmd/loom-lint. It type-checks the whole module (plus the
// std packages it imports), so it is skipped under -short.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short mode")
	}
	root, modPath, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(root, modPath)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no packages found in module")
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range lint.Run(pkg, lint.Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}
