// Package lint machine-enforces the repository's reproducibility
// invariants: deterministic map iteration, injected clocks and seeded
// randomness, zero-allocation hot paths, and CRC-framed-only WAL writes.
//
// The analyzers mirror the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Reportf) but are built directly on go/ast and
// go/types so the module stays dependency-free. cmd/loom-lint is the
// multichecker driver; lint_repo_test.go runs the whole suite over the
// repository so `go test ./...` fails on a violation even before CI's
// dedicated lint step does.
//
// Annotations understood by the suite:
//
//	//loom:orderinvariant <reason>  — the map range on this or the next
//	                                  line is order-insensitive for a
//	                                  reason the heuristics cannot prove.
//	//loom:hotpath                  — this function is a measured
//	                                  zero-alloc hot path; hotalloc
//	                                  flags allocation-inducing
//	                                  constructs inside it.
//	//loom:allocok <reason>         — the construct on this or the next
//	                                  line allocates intentionally
//	                                  (e.g. a once-per-call error path
//	                                  the benchmark never takes).
//	//loom:framedwriter <reason>    — this function is a CRC-framing
//	                                  helper and may write raw bytes to
//	                                  checkpoint file handles.
//
// Suppression annotations (orderinvariant, allocok, framedwriter) must
// carry a justification; a bare annotation is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass)
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      *[]Diagnostic
	directives map[*ast.File]map[int][]Directive
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id (Defs first, then Uses).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Run applies each analyzer to the package and returns the diagnostics
// sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallClock, HotAlloc, FramedWrite}
}

// DeterministicPackages lists the import paths whose behaviour must be
// bit-identical for a given seed: the partitioning engine and everything
// the equivalence/golden fixtures replay through it. maporder and the
// strict mode of wallclock apply to exactly this set.
var DeterministicPackages = map[string]bool{
	"loom":                      true,
	"loom/internal/core":        true,
	"loom/internal/partition":   true,
	"loom/internal/pattern":     true,
	"loom/internal/graph":       true,
	"loom/internal/stream":      true,
	"loom/internal/motif":       true,
	"loom/internal/signature":   true,
	"loom/internal/metrics":     true,
	"loom/internal/checkpoint":  true,
	"loom/internal/fault":       true,
	"loom/internal/fault/chaos": true,
	"loom/internal/cluster":     true,
	"loom/internal/iso":         true,
	"loom/internal/ident":       true,
	"loom/internal/gen":         true,
	"loom/internal/query":       true,
	"loom/internal/store":       true,
	"loom/internal/qserve":      true,
}

// A Directive is one parsed //loom:<name> <reason> comment.
type Directive struct {
	Name   string // "orderinvariant", "hotpath", ...
	Reason string // text after the name, may be empty
	Pos    token.Pos
}

const directivePrefix = "//loom:"

// parseDirective parses one comment; ok is false for ordinary comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := text[len(directivePrefix):]
	name, reason, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// fileDirectives indexes every directive in f by line number.
func (p *Pass) fileDirectives(f *ast.File) map[int][]Directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]Directive)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := make(map[int][]Directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				line := p.Fset.Position(c.Pos()).Line
				m[line] = append(m[line], d)
			}
		}
	}
	p.directives[f] = m
	return m
}

// DirectiveAt looks for a //loom:<name> directive attached to node: on
// the node's first line or on the line immediately above it.
func (p *Pass) DirectiveAt(f *ast.File, node ast.Node, name string) (Directive, bool) {
	m := p.fileDirectives(f)
	line := p.Fset.Position(node.Pos()).Line
	for _, cand := range [...]int{line, line - 1} {
		for _, d := range m[cand] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// FuncDirective looks for a //loom:<name> directive in the doc comment
// of a function declaration (or on the line above the func keyword).
func (p *Pass) FuncDirective(f *ast.File, fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if d, ok := parseDirective(c); ok && d.Name == name {
				return d, true
			}
		}
	}
	return p.DirectiveAt(f, fn, name)
}

// eachFuncWithFile visits every function declaration together with its
// enclosing file.
func (p *Pass) eachFuncWithFile(visit func(f *ast.File, fn *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(f, fn)
			}
		}
	}
}

// isInteger reports whether t's underlying type is an integer kind —
// the accumulator types for which += / ++ are order-insensitive
// (floating-point addition is not associative, strings are ordered).
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isString reports whether t's underlying type is a string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// if any (package-level functions, methods; not builtins/conversions).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// refersTo reports whether expr mentions obj.
func (p *Pass) refersTo(expr ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
