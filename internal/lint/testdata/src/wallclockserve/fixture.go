// Package fixture exercises the wallclock analyzer's allowlist mode;
// linttest loads it as loom/internal/serve, whose allowlist contains a
// function named Open.
package fixture

import "time"

// Open matches the allowlist entry wallClockAllowlist["loom/internal/serve"]["Open"].
func Open() time.Time {
	return time.Now()
}

func unlisted() time.Time {
	return time.Now() // want `reads the wall clock outside the curated allowlist`
}
