// Package fixture exercises the wallclock analyzer in strict mode;
// linttest loads it under a deterministic import path.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `reads the wall clock in deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `reads the wall clock in deterministic package`
}

func jitter() int {
	return rand.Intn(10) // want `reads the global math/rand source in deterministic package`
}

// seeded constructs and uses an injected generator: rand.New and
// rand.NewSource are allowed, and methods on a *rand.Rand are fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
