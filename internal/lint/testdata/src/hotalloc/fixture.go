// Package fixture exercises the hotalloc analyzer. Only functions
// annotated //loom:hotpath are checked.
package fixture

import (
	"fmt"
	"sync"
)

type buf struct {
	scratch []int
}

// unannotated may allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}

//loom:hotpath
func makeInHotPath(n int) int {
	tmp := make([]int, n) // want `in hot path allocates`
	return len(tmp)
}

//loom:hotpath
func appendLocal(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to a non-scratch slice in hot path`
	}
	return out
}

// appendField reuses a struct-field scratch buffer: accepted.
//
//loom:hotpath
func (b *buf) appendField(xs []int) {
	b.scratch = b.scratch[:0]
	for _, x := range xs {
		b.scratch = append(b.scratch, x)
	}
}

// appendDerived appends to a local bound to a reslice of persistent
// storage: accepted.
//
//loom:hotpath
func (b *buf) appendDerived(xs []int) {
	s := b.scratch[:0]
	for _, x := range xs {
		s = append(s, x)
	}
	b.scratch = s
}

//loom:hotpath
func format(v int) string {
	return fmt.Sprintf("%d", v) // want `fmt.Sprintf in hot path allocates`
}

//loom:hotpath
func closure(v int) func() int {
	f := func() int { return v } // want `closure in hot path`
	return f
}

//loom:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation in hot path`
}

//loom:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want `conversion in hot path copies`
}

func box(v interface{}) { _ = v }

//loom:hotpath
func boxes(v int) {
	box(v) // want `boxes it on the heap`
}

// errPath allocates only under an error guard: accepted, the
// steady-state benchmark never takes that branch.
//
//loom:hotpath
func errPath(err error) []int {
	if err != nil {
		return make([]int, 8)
	}
	return nil
}

// allowed carries a justified suppression and is accepted.
//
//loom:hotpath
func allowed(n int) []int {
	//loom:allocok result escapes to the caller by contract
	return make([]int, n)
}

// reasonlessOk shows that a bare suppression is itself a finding.
//
//loom:hotpath
func reasonlessOk(n int) []int {
	//loom:allocok
	return make([]int, n) // want `suppression requires a written reason`
}

type cache struct{ m map[string]int }

// mapReadKey is the intern-cache hit idiom: the compiler compiles a map
// READ keyed by string([]byte) without copying the key, so the
// conversion is exempt.
//
//loom:hotpath
func (c *cache) mapReadKey(b []byte) (int, bool) {
	v, ok := c.m[string(b)]
	return v, ok
}

// mapWriteKey stores the key, which copies it: still flagged.
//
//loom:hotpath
func (c *cache) mapWriteKey(b []byte, v int) {
	c.m[string(b)] = v // want `conversion in hot path copies`
}

// mapReadRuneKey gets no exemption: the no-copy lookup is []byte-only.
//
//loom:hotpath
func (c *cache) mapReadRuneKey(r []rune) int {
	return c.m[string(r)] // want `conversion in hot path copies`
}

type frameBuf struct{ buf []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// poolWorker is the decode-worker shape: take a pooled value, reslice
// its buffer, append into it. The appends target pool-backed amortised
// storage and are accepted; only returning the value to the pool boxes,
// once per frame, and carries its own justification.
//
//loom:hotpath
func poolWorker(data []byte) int {
	w := framePool.Get().(*frameBuf)
	w.buf = w.buf[:0]
	for _, b := range data {
		w.buf = append(w.buf, b)
	}
	n := len(w.buf)
	//loom:allocok interface boxing happens once per frame, not per element
	framePool.Put(w)
	return n
}

// poolWorkerDerived is the same shape through a local alias of the
// pooled buffer: accepted.
//
//loom:hotpath
func poolWorkerDerived(data []byte) int {
	w := framePool.Get().(*frameBuf)
	buf := w.buf[:0]
	for _, b := range data {
		buf = append(buf, b)
	}
	w.buf = buf
	//loom:allocok interface boxing happens once per frame, not per element
	framePool.Put(w)
	return len(buf)
}
