// Package fixture exercises the maporder analyzer; linttest loads it
// under a deterministic import path so the package gate fires.
package fixture

import "sort"

var out []string

func sink(s string) { out = append(out, s) }

// intSum is order-insensitive: integer accumulation commutes exactly.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum is NOT order-insensitive: float addition is non-associative,
// so the rounding depends on iteration order.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `iteration over map`
		total += v
	}
	return total
}

// sortedKeys collects then sorts — the canonical deterministic shape.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// leakOrder appends map values and never sorts them: the slice layout
// leaks the randomised iteration order to the caller.
func leakOrder(m map[string]string) []string {
	var vs []string
	for _, v := range m { // want `iteration over map`
		vs = append(vs, v)
	}
	return vs
}

// annotated carries a justified suppression and is accepted.
func annotated(m map[string]string) {
	//loom:orderinvariant fixture sink is order-free by contract
	for _, v := range m {
		sink(v)
	}
}

// reasonless shows that a bare suppression is itself a finding.
func reasonless(m map[string]string) {
	//loom:orderinvariant
	for _, v := range m { // want `suppression requires a written reason`
		sink(v)
	}
}
