// Package fixture exercises the framedwrite analyzer; linttest loads
// it as loom/internal/checkpoint, the only package it applies to.
package fixture

import (
	"fmt"
	"io"
	"os"
)

func raw(f *os.File, b []byte) error {
	_, err := f.Write(b) // want `raw Write on a checkpoint file handle`
	return err
}

func printf(f *os.File, v int) {
	fmt.Fprintf(f, "%d\n", v) // want `writes raw bytes to a checkpoint file handle`
}

func copyTo(f *os.File, r io.Reader) {
	_, _ = io.Copy(f, r) // want `writes raw bytes to a checkpoint file handle`
}

// viaWriter takes an abstract writer — framing is the caller's problem,
// so this is accepted.
func viaWriter(w io.Writer, b []byte) {
	_, _ = w.Write(b)
}

// framer is a framing helper itself: exempted with a reason.
//
//loom:framedwriter fixture framing helper; every byte it writes is a framed record
func framer(f *os.File, b []byte) {
	_, _ = f.Write(b)
}

// reasonless shows that a bare exemption is itself a finding.
//
//loom:framedwriter
func reasonless(f *os.File, b []byte) { // want `annotation requires a written reason`
	_, _ = f.Write(b)
}
