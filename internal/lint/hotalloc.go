package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc gives the benchmark suite's 0 allocs/op claims a static
// counterpart: inside functions annotated //loom:hotpath it flags the
// constructs that make the compiler allocate, pointing at the offending
// line instead of a regressed benchmark number. Flagged constructs:
//
//   - make() of maps, slices and channels, new(), and map/slice
//     composite literals (including &T{...});
//   - append to a plain local slice — scratch reuse appends to a
//     receiver/struct field, to a resliced buffer (s[:0]), through a
//     pointer-to-slice, or to a local that was bound to one of those
//     shapes earlier in the function (best := g.best[:0]), all of
//     which the analyzer accepts;
//   - any call into package fmt, and string concatenation (+ / += on
//     strings builds a fresh string every time);
//   - function literals (closures capture their environment on the
//     heap);
//   - string<->[]byte/[]rune conversions — except a string([]byte)
//     key in a map *read* (m[string(b)]), which the compiler compiles
//     without copying; map writes still allocate their key and stay
//     flagged;
//   - interface boxing at call sites: passing a concrete value to an
//     interface parameter materialises an interface value.
//
// Error paths are exempt: anything inside an if whose condition
// involves a nil comparison (the `if err != nil` shape) may allocate —
// the steady-state benchmark never takes it. Anything else that
// intentionally allocates needs //loom:allocok <reason> on its line.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-inducing constructs in //loom:hotpath functions; " +
		"suppress a line with //loom:allocok <reason>",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	pass.eachFuncWithFile(func(f *ast.File, fn *ast.FuncDecl) {
		if _, ok := pass.FuncDirective(f, fn, "hotpath"); !ok {
			return
		}
		h := &hotChecker{pass: pass, file: f, fn: fn}
		h.walk(fn.Body)
	})
}

type hotChecker struct {
	pass *Pass
	file *ast.File
	fn   *ast.FuncDecl
	// lvalues are map-index expressions appearing on an assignment's
	// left-hand side: a string([]byte) key there DOES allocate (the map
	// retains the key), so only reads earn the conversion exemption.
	lvalues map[*ast.IndexExpr]bool
}

func (h *hotChecker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isErrGuard(n.Cond) {
				// Walk the condition itself (it may call fmt etc.) but
				// skip both branches: error paths may allocate.
				if n.Init != nil {
					h.walk(n.Init)
				}
				h.walk(n.Cond)
				return false
			}
		case *ast.FuncLit:
			if !h.suppressed(n, "closure") {
				h.pass.Reportf(n.Pos(), "closure in hot path allocates its environment; hoist it to a method or package function")
			}
			return false // do not double-report inside the (cold) literal
		case *ast.CompositeLit:
			h.checkComposite(n)
		case *ast.CallExpr:
			h.checkCall(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(h.typeOr(n)) && !h.suppressed(n, "string concatenation") {
				h.pass.Reportf(n.Pos(), "string concatenation in hot path allocates; reuse a scratch buffer")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ie, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if h.lvalues == nil {
						h.lvalues = make(map[*ast.IndexExpr]bool)
					}
					h.lvalues[ie] = true
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(h.typeOr(n.Lhs[0])) && !h.suppressed(n, "string concatenation") {
				h.pass.Reportf(n.Pos(), "string concatenation in hot path allocates; reuse a scratch buffer")
			}
		case *ast.IndexExpr:
			if conv := h.mapReadStringKey(n); conv != nil {
				// The intern-cache hit idiom: walk everything except the
				// exempted key conversion itself.
				h.walk(n.X)
				for _, a := range conv.Args {
					h.walk(a)
				}
				return false
			}
		}
		return true
	})
}

func (h *hotChecker) typeOr(e ast.Expr) types.Type {
	if t := h.pass.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// suppressed honours //loom:allocok on the node's (or previous) line.
func (h *hotChecker) suppressed(n ast.Node, what string) bool {
	d, ok := h.pass.DirectiveAt(h.file, n, "allocok")
	if !ok {
		return false
	}
	if d.Reason == "" {
		h.pass.Reportf(n.Pos(), "//loom:allocok suppression requires a written reason")
	}
	return true
}

func (h *hotChecker) checkComposite(lit *ast.CompositeLit) {
	t := h.typeOr(lit)
	switch t.Underlying().(type) {
	case *types.Map:
		if !h.suppressed(lit, "map literal") {
			h.pass.Reportf(lit.Pos(), "map literal in hot path allocates; hoist it to a struct field or package variable")
		}
	case *types.Slice:
		if !h.suppressed(lit, "slice literal") {
			h.pass.Reportf(lit.Pos(), "slice literal in hot path allocates; reuse a scratch slice")
		}
	}
}

func (h *hotChecker) checkCall(call *ast.CallExpr) {
	// Builtins: make of map/slice/chan, new.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch obj := h.pass.ObjectOf(id); obj {
		case types.Universe.Lookup("make"):
			if len(call.Args) > 0 && !h.suppressed(call, "make") {
				h.pass.Reportf(call.Pos(), "make(%s) in hot path allocates; preallocate it outside the hot path", typeLabel(h.pass, call.Args[0]))
			}
			return
		case types.Universe.Lookup("new"):
			if !h.suppressed(call, "new") {
				h.pass.Reportf(call.Pos(), "new(...) in hot path allocates; reuse a preallocated value")
			}
			return
		case types.Universe.Lookup("append"):
			h.checkAppend(call)
			return
		}
	}
	// Conversions: string <-> []byte / []rune copy their operand.
	if tv, ok := h.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, h.typeOr(call.Args[0])
		if (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src)) {
			if !h.suppressed(call, "conversion") {
				h.pass.Reportf(call.Pos(), "%s conversion in hot path copies its operand; keep one representation", dst.String())
			}
		}
		return
	}
	// Calls into fmt always allocate (interface boxing + formatting).
	if fn := h.pass.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if !h.suppressed(call, "fmt") {
			h.pass.Reportf(call.Pos(), "fmt.%s in hot path allocates; format outside the hot path", fn.Name())
		}
		return
	}
	h.checkBoxing(call)
}

// checkAppend accepts the scratch-reuse shapes and flags the rest:
// appending to a field (s.buf), a reslice (buf[:0], buf[:n]), through a
// pointer-to-slice (*slot), or to a local bound to one of those shapes
// earlier in the function grows a preallocated buffer; appending to any
// other bare local almost always starts from nil and allocates
// geometrically.
func (h *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr, *ast.SliceExpr, *ast.StarExpr:
		return
	case *ast.Ident:
		if obj := h.pass.ObjectOf(arg); obj != nil && h.scratchDerived(obj) {
			return
		}
	}
	if h.suppressed(call, "append") {
		return
	}
	h.pass.Reportf(call.Pos(), "append to a non-scratch slice in hot path may allocate; append to a preallocated field or reslice (s[:0])")
}

// scratchDerived reports whether the local obj is, anywhere in the
// enclosing function, assigned from a reslice or a field selector —
// `best := g.best[:0]` — which makes it an alias of persistent storage,
// so appends to it are amortised allocation-free.
func (h *hotChecker) scratchDerived(obj types.Object) bool {
	derived := false
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || derived || len(asg.Lhs) != len(asg.Rhs) {
			return !derived
		}
		for i, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || h.pass.ObjectOf(id) != obj {
				continue
			}
			switch ast.Unparen(asg.Rhs[i]).(type) {
			case *ast.SliceExpr, *ast.SelectorExpr:
				derived = true
			}
		}
		return !derived
	})
	return derived
}

// mapReadStringKey returns the string([]byte) conversion used as the key
// of a map read — the one conversion the compiler performs without
// copying — or nil if n is not that shape (wrong types, or the index sits
// on an assignment's left-hand side, where the stored key is copied).
func (h *hotChecker) mapReadStringKey(n *ast.IndexExpr) *ast.CallExpr {
	if h.lvalues[n] {
		return nil
	}
	if _, ok := h.typeOr(n.X).Underlying().(*types.Map); !ok {
		return nil
	}
	call, ok := ast.Unparen(n.Index).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := h.pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isString(tv.Type) {
		return nil
	}
	// Only []byte keys: the compiler's no-copy lookup does not extend to
	// []rune conversions.
	if !isByteSlice(h.typeOr(call.Args[0])) {
		return nil
	}
	return call
}

// checkBoxing flags arguments whose concrete value is converted to an
// interface parameter at the call site.
func (h *hotChecker) checkBoxing(call *ast.CallExpr) {
	sig, ok := h.typeOr(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue // generic instantiation, not boxing
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := h.typeOr(arg)
		if at == types.Typ[types.Invalid] {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if h.suppressed(call, "boxing") {
			return
		}
		h.pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it on the heap; take a concrete type or hoist the call off the hot path", at.String())
	}
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isErrGuard reports whether cond contains a comparison against nil —
// the `if err != nil` / `if x == nil` shapes that guard cold paths.
func isErrGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return !found
		}
		for _, side := range [...]ast.Expr{be.X, be.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}
