package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClock bans ambient time and ambient randomness. In the
// deterministic packages every reference to a wall-clock reader
// (time.Now, time.Since, timers) or to the global math/rand source
// (rand.Intn and friends, which share process-wide state seeded by the
// runtime) is an error: time must arrive as a value or injected clock
// function, randomness as an explicitly seeded *rand.Rand.
//
// The serve and cmd layers legitimately measure wall-clock durations
// (recovery time, restream duration, benchmark timing) and back off in
// spin-waits; those sites live in a curated allowlist keyed by
// function, so any *new* wall-clock read outside the list is still
// flagged. Methods on an injected *rand.Rand and deterministic
// constructors (rand.New, rand.NewSource, rand.NewZipf, time.Unix,
// time.Date, duration arithmetic) are always fine.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "bans time.Now/timers and the global math/rand source outside injected " +
		"clocks and seeded *rand.Rand values",
	Run: runWallClock,
}

// bannedTimeFuncs reads or depends on the process wall clock /
// monotonic clock. Everything else in package time (Duration maths,
// Unix, Date, Parse) is a pure value computation.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level functions that do
// not touch the shared global source.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// wallClockAllowlist holds the curated (package, function) pairs that
// may read the wall clock, with the reason each is sound: none of them
// feeds partitioning decisions, only operator-facing measurements.
// Key: import path -> function name (methods as "Type.Method").
var wallClockAllowlist = map[string]map[string]string{
	"loom/internal/serve": {
		// Recovery and restream durations are reported in Stats for
		// operators; placements never read them. The shutdown paths
		// sleep in spin-wait backoffs while quiescing.
		"Open":                  "measures recover_ms for Stats.Persist",
		"Server.launchRestream": "stamps restream start for DurationMS",
		"Server.adopt":          "measures restream DurationMS for Stats",
		"Server.shutdown":       "spin-wait backoff while quiescing; no state derived from time",
		"Server.abortShutdown":  "spin-wait backoff during crash-shaped stop",
		"defaultAdmissionNow":   "token-bucket refill clock; injectable via AdmissionConfig.Now, placements never read it",
		"defaultReanchorTimer":  "self-healing retry timer; injectable via ReanchorPolicy.Timer, placements never read it",
	},
	"loom/internal/experiments": {
		// The experiment harness reports elapsed wall time next to the
		// (seed-deterministic) quality numbers.
		"measure":   "benchmark timing helper (duration + allocs)",
		"Runner.E1": "reports partitioner elapsed time (paper Table 1)",
		"Runner.E4": "reports one-pass vs multilevel elapsed time",
	},
	"loom/cmd/loom-bench": {
		"main":     "benchmark driver timing",
		"runChaos": "reports wall time of the chaos sweep; schedules themselves are seed-deterministic",
	},
	"loom/examples/recommender": {
		"main": "demo prints its own runtime",
	},
}

// wallClockStrict reports whether pkg gets no allowlist at all.
func wallClockStrict(path string) bool { return DeterministicPackages[path] }

func runWallClock(pass *Pass) {
	path := pass.Pkg.Path()
	strict := wallClockStrict(path)
	allow := wallClockAllowlist[path]
	if !strict && allow == nil && !strings.HasPrefix(path, "loom/") && path != "loom" {
		return
	}

	for _, f := range pass.Files {
		var fnStack []string
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fnStack = append(fnStack, funcKey(n))
				if n.Body != nil {
					ast.Inspect(n.Body, visit)
				}
				fnStack = fnStack[:len(fnStack)-1]
				return false
			case *ast.SelectorExpr:
				checkWallClockRef(pass, n, strict, allow, fnStack)
			}
			return true
		}
		ast.Inspect(f, visit)
	}
}

// funcKey renders a FuncDecl as its allowlist key: "Name" for plain
// functions, "Type.Method" for methods (pointer receivers included).
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + fn.Name.Name
		default:
			return fn.Name.Name
		}
	}
}

func checkWallClockRef(pass *Pass, sel *ast.SelectorExpr, strict bool, allow map[string]string, fnStack []string) {
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on an injected *rand.Rand or time.Time) are fine
	}
	var what string
	switch fn.Pkg().Path() {
	case "time":
		if !bannedTimeFuncs[fn.Name()] {
			return
		}
		what = "wall clock"
	case "math/rand", "math/rand/v2":
		if allowedRandFuncs[fn.Name()] {
			return
		}
		what = "global math/rand source"
	default:
		return
	}
	if !strict {
		for _, key := range fnStack {
			if _, ok := allow[key]; ok {
				return
			}
		}
		pass.Reportf(sel.Pos(), "%s.%s reads the %s outside the curated allowlist: "+
			"inject a clock/seeded *rand.Rand, or add this function to wallClockAllowlist with a reason",
			fn.Pkg().Name(), fn.Name(), what)
		return
	}
	pass.Reportf(sel.Pos(), "%s.%s reads the %s in deterministic package %s: "+
		"inject a clock function or a seeded *rand.Rand instead",
		fn.Pkg().Name(), fn.Name(), what, pass.Pkg.Path())
}
