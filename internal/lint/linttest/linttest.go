// Package linttest runs lint analyzers over fixture packages and
// checks their diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which the module cannot
// depend on). A fixture line expects diagnostics like:
//
//	for k := range m { // want `iteration over map`
//
// The string after want is a regular expression in backquotes or
// double quotes; several per comment demand several diagnostics on
// that line. Diagnostics without a matching want, and wants without a
// matching diagnostic, fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"loom/internal/lint"
)

// Run loads the fixture package in dir under the import path asPath
// (so analyzers gated on package paths see the path the test wants)
// and applies the analyzers, comparing diagnostics to want comments.
func Run(t *testing.T, dir, asPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	root, modPath, err := lint.FindModule(".")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader := lint.NewLoader(root, modPath)
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	diags := lint.Run(pkg, analyzers)

	wants := collectWants(t, pkg.Fset, pkg.Files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := parsePatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// parsePatterns splits `"a" "b"` / “ `a` `b` “ into raw patterns.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
