package lint

import (
	"go/ast"
	"go/types"
)

// FramedWrite guards the durability invariant of internal/checkpoint:
// every byte that reaches a WAL segment or snapshot file must pass
// through a CRC-framing helper, because recovery scans frames and a
// single unframed byte makes every record behind it unreachable. The
// analyzer flags, anywhere in loom/internal/checkpoint:
//
//   - method calls Write/WriteString/WriteAt/ReadFrom on a value of
//     type *os.File, and
//   - io.WriteString / io.Copy / io.CopyN / fmt.Fprint* calls whose
//     destination argument is statically a *os.File,
//
// unless the enclosing function is annotated //loom:framedwriter
// <reason>, which marks it as one of the framing helpers themselves.
//
// The same discipline covers loom/internal/stream: its wire-frame
// helpers produce the exact bytes the WAL appends verbatim
// (checkpoint.RecordBatchBinary), so a raw file write there would
// corrupt recovery just as surely as one in checkpoint itself.
var FramedWrite = &Analyzer{
	Name: "framedwrite",
	Doc: "in internal/checkpoint and internal/stream, bans raw writes to " +
		"file handles outside //loom:framedwriter framing helpers",
	Run: runFramedWrite,
}

// framedPaths are the packages under the framing discipline.
var framedPaths = map[string]bool{
	"loom/internal/checkpoint": true,
	"loom/internal/stream":     true,
}

// fileWriteMethods are the *os.File methods that emit bytes.
var fileWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"ReadFrom":    true,
}

// writerFirstArgFuncs are the package functions whose first argument is
// the destination writer.
var writerFirstArgFuncs = map[string]map[string]bool{
	"io":  {"WriteString": true, "Copy": true, "CopyN": true, "CopyBuffer": true},
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true},
}

func runFramedWrite(pass *Pass) {
	if !framedPaths[pass.Pkg.Path()] {
		return
	}
	pass.eachFuncWithFile(func(f *ast.File, fn *ast.FuncDecl) {
		if d, ok := pass.FuncDirective(f, fn, "framedwriter"); ok {
			if d.Reason == "" {
				pass.Reportf(fn.Pos(), "//loom:framedwriter annotation requires a written reason")
			}
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkFramedCall(pass, call)
			return true
		})
	})
}

func checkFramedCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil {
		// Method call: is the receiver an *os.File?
		if fileWriteMethods[fn.Name()] && isOSFile(pass.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(), "raw %s on a checkpoint file handle bypasses CRC framing; "+
				"go through a //loom:framedwriter helper so recovery can scan past this write", fn.Name())
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	if names, ok := writerFirstArgFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] && len(call.Args) > 0 {
		if isOSFile(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "%s.%s writes raw bytes to a checkpoint file handle, bypassing CRC framing; "+
				"go through a //loom:framedwriter helper", fn.Pkg().Name(), fn.Name())
		}
	}
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
