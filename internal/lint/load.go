package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("loom/internal/core")
	Dir   string // directory the files were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module without
// shelling out to the go command: module-internal import paths are
// mapped onto the module root directly, and standard-library imports
// are resolved by the compiler's source importer. Loads are memoised so
// every package in a run shares one type identity per import path.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root directory
	ModPath string // module path from go.mod ("loom")

	std  types.ImporterFrom
	pkgs map[string]*Package
	errs map[string]error
	info *types.Info
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		errs:    make(map[string]error),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
}

// FindModule walks upward from dir to the directory containing go.mod
// and returns its absolute path plus the module path declared in it.
func FindModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// Load parses and type-checks the module package with the given import
// path (memoised).
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[importPath]; ok {
		return nil, err
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModPath), "/")
	pkg, err := l.loadDir(filepath.Join(l.ModRoot, rel), importPath)
	if err != nil {
		l.errs[importPath] = err
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the package in dir under a caller-
// chosen import path. Analyzer fixtures use this to masquerade as
// deterministic packages; the directory must not import module
// packages.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if pkg, ok := l.pkgs[asPath]; ok {
		return pkg, nil
	}
	pkg, err := l.loadDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[asPath] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: l.info}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module root, everything else falls through to the standard
// library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// ModulePackages returns the import paths of every package in the
// module, in sorted order, skipping testdata and hidden directories.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.ModRoot, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, l.ModPath)
				} else {
					out = append(out, l.ModPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
