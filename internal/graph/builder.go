package graph

import "fmt"

// FromEdgeList builds a graph from parallel label and edge slices: labels[i]
// is the label of vertex i (VertexID(i)), and edges lists the undirected
// edges. It is the convenience constructor used by tests and examples.
func FromEdgeList(labels []Label, edges []Edge) (*Graph, error) {
	g := NewWithCapacity(len(labels))
	for i, l := range labels {
		g.AddVertex(VertexID(i), l)
	}
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("graph: FromEdgeList: %v", err)
		}
	}
	return g, nil
}

// MustFromEdgeList is FromEdgeList that panics on error; for tests and
// package-level fixtures where the input is a literal.
func MustFromEdgeList(labels []Label, edges []Edge) *Graph {
	g, err := FromEdgeList(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns a path graph v0-v1-...-v(n-1) with the given labels
// (len(labels) = n >= 1).
func Path(labels ...Label) *Graph {
	g := NewWithCapacity(len(labels))
	for i, l := range labels {
		g.AddVertex(VertexID(i), l)
	}
	for i := 1; i < len(labels); i++ {
		if err := g.AddEdge(VertexID(i-1), VertexID(i)); err != nil {
			panic(err)
		}
	}
	return g
}

// Cycle returns a cycle graph over the given labels (len >= 3).
func Cycle(labels ...Label) *Graph {
	if len(labels) < 3 {
		panic("graph: Cycle needs at least 3 vertices")
	}
	g := Path(labels...)
	if err := g.AddEdge(VertexID(len(labels)-1), 0); err != nil {
		panic(err)
	}
	return g
}

// Star returns a star graph: vertex 0 carries center and is adjacent to one
// leaf per entry of leaves.
func Star(center Label, leaves ...Label) *Graph {
	g := NewWithCapacity(len(leaves) + 1)
	g.AddVertex(0, center)
	for i, l := range leaves {
		id := VertexID(i + 1)
		g.AddVertex(id, l)
		if err := g.AddEdge(0, id); err != nil {
			panic(err)
		}
	}
	return g
}

// Fig1Graph returns the example graph G from Figure 1 of the paper:
//
//	5:b 6:a 7:d 8:c
//	1:a 2:b 3:c 4:d
//
// with the grid-like edges 1-2, 2-3, 3-4, 1-5, 5-6, 2-6, 3-8, 4-7, 7-8 so
// that vertices {1,2,5,6} form the square matching query q1 and the paths
// 1-2-3 / 6-2-3(-4) etc. realise the path queries.
func Fig1Graph() *Graph {
	g := New()
	add := func(id VertexID, l Label) { g.AddVertex(id, l) }
	add(1, "a")
	add(2, "b")
	add(3, "c")
	add(4, "d")
	add(5, "b")
	add(6, "a")
	add(7, "d")
	add(8, "c")
	for _, e := range []Edge{{1, 2}, {2, 3}, {3, 4}, {1, 5}, {5, 6}, {2, 6}, {3, 8}, {4, 7}, {7, 8}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			panic(err)
		}
	}
	return g
}
