package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// TestGraphChurnAgainstReference drives a randomized add/remove schedule
// against a map-backed reference model, pinning handle recycling across
// the graph/ident stack: after a RemoveVertex frees a handle, the next
// AddVertex that reuses it must start with a clean label slot and empty
// adjacency — no stale state from the previous owner may alias through
// the recycled handle — and every membership, label, degree and
// neighbourhood query must keep agreeing with the model.
func TestGraphChurnAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New()
	labels := make(map[VertexID]Label)
	edges := make(map[Edge]bool)

	alphabet := []Label{"a", "b", "c", "d"}
	randV := func() VertexID { return VertexID(rng.Intn(64)) }

	incident := func(v VertexID) []Edge {
		var out []Edge
		for e := range edges {
			if e.U == v || e.V == v {
				out = append(out, e)
			}
		}
		return out
	}

	verify := func(step int) {
		t.Helper()
		if g.NumVertices() != len(labels) {
			t.Fatalf("step %d: NumVertices=%d, model has %d", step, g.NumVertices(), len(labels))
		}
		if g.NumEdges() != len(edges) {
			t.Fatalf("step %d: NumEdges=%d, model has %d", step, g.NumEdges(), len(edges))
		}
		for v, want := range labels {
			got, ok := g.Label(v)
			if !ok || got != want {
				t.Fatalf("step %d: Label(%d)=%q,%v; model %q", step, v, got, ok, want)
			}
			var wantN []VertexID
			for e := range edges {
				if e.U == v {
					wantN = append(wantN, e.V)
				} else if e.V == v {
					wantN = append(wantN, e.U)
				}
			}
			slices.Sort(wantN)
			if gotN := g.Neighbors(v); !slices.Equal(gotN, wantN) {
				t.Fatalf("step %d: Neighbors(%d)=%v, model %v", step, v, gotN, wantN)
			}
		}
		for e := range edges {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				t.Fatalf("step %d: model edge %v missing", step, e)
			}
		}
	}

	for step := 0; step < 30000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // add (or relabel) a vertex
			v, l := randV(), alphabet[rng.Intn(len(alphabet))]
			g.AddVertex(v, l)
			labels[v] = l
		case op < 7: // add an edge
			u, v := randV(), randV()
			_, uOK := labels[u]
			_, vOK := labels[v]
			err := g.AddEdge(u, v)
			e := Edge{U: u, V: v}.Normalize()
			wantErr := u == v || !uOK || !vOK || edges[e]
			if (err != nil) != wantErr {
				t.Fatalf("step %d: AddEdge(%d,%d) err=%v, model wanted error=%v", step, u, v, err, wantErr)
			}
			if err == nil {
				edges[e] = true
			}
		case op < 8: // remove an edge
			u, v := randV(), randV()
			e := Edge{U: u, V: v}.Normalize()
			if got, want := g.RemoveEdge(u, v), edges[e]; got != want {
				t.Fatalf("step %d: RemoveEdge(%d,%d)=%v, model %v", step, u, v, got, want)
			}
			delete(edges, e)
		default: // remove a vertex (and its incident edges)
			v := randV()
			_, want := labels[v]
			if got := g.RemoveVertex(v); got != want {
				t.Fatalf("step %d: RemoveVertex(%d)=%v, model %v", step, v, got, want)
			}
			for _, e := range incident(v) {
				delete(edges, e)
			}
			delete(labels, v)
			if _, ok := g.Label(v); ok {
				t.Fatalf("step %d: vertex %d still labelled after removal", step, v)
			}
		}
		if step%1171 == 0 {
			verify(step)
		}
	}
	verify(30000)
}
