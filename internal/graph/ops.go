package graph

import (
	"sort"

	"loom/internal/ident"
)

// visitedSet is a handle-indexed membership scratch for traversals, replacing
// the map-based sets of the earlier representation.
func (g *Graph) visitedSet() []bool { return make([]bool, g.ids.Cap()) }

// BFSOrder returns vertices reachable from start in breadth-first order.
// Neighbour ties are broken by ascending vertex ID so the order is
// deterministic. If start is absent the result is nil.
func (g *Graph) BFSOrder(start VertexID) []VertexID {
	sh, ok := g.ids.Lookup(int64(start))
	if !ok {
		return nil
	}
	visited := g.visitedSet()
	visited[sh] = true
	order := []VertexID{start}
	queue := []VertexID{start}
	var scratch []VertexID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		scratch = g.AppendNeighbors(scratch[:0], v)
		for _, u := range scratch {
			uh, _ := g.ids.Lookup(int64(u))
			if !visited[uh] {
				visited[uh] = true
				order = append(order, u)
				queue = append(queue, u)
			}
		}
	}
	return order
}

// DFSOrder returns vertices reachable from start in depth-first preorder,
// with neighbour ties broken by ascending vertex ID.
func (g *Graph) DFSOrder(start VertexID) []VertexID {
	if _, ok := g.ids.Lookup(int64(start)); !ok {
		return nil
	}
	visited := g.visitedSet()
	var order []VertexID
	stack := []VertexID{start}
	var scratch []VertexID
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		vh, _ := g.ids.Lookup(int64(v))
		if visited[vh] {
			continue
		}
		visited[vh] = true
		order = append(order, v)
		// Push descending so the smallest neighbour pops first.
		scratch = g.AppendNeighbors(scratch[:0], v)
		for i := len(scratch) - 1; i >= 0; i-- {
			uh, _ := g.ids.Lookup(int64(scratch[i]))
			if !visited[uh] {
				stack = append(stack, scratch[i])
			}
		}
	}
	return order
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by their smallest member.
func (g *Graph) ConnectedComponents() [][]VertexID {
	seen := g.visitedSet()
	var comps [][]VertexID
	for _, v := range g.Vertices() {
		vh, _ := g.ids.Lookup(int64(v))
		if seen[vh] {
			continue
		}
		comp := g.BFSOrder(v)
		for _, u := range comp {
			uh, _ := g.ids.Lookup(int64(u))
			seen[uh] = true
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph is considered
// connected.
func (g *Graph) IsConnected() bool {
	if g.NumVertices() == 0 {
		return true
	}
	var start VertexID
	g.EachVertex(func(v VertexID) bool {
		start = v
		return false
	})
	return len(g.BFSOrder(start)) == g.NumVertices()
}

// ShortestPathLen returns the number of edges on a shortest path from u to v
// and whether v is reachable from u.
func (g *Graph) ShortestPathLen(u, v VertexID) (int, bool) {
	uh, okU := g.ids.Lookup(int64(u))
	vh, okV := g.ids.Lookup(int64(v))
	if !okU || !okV {
		return 0, false
	}
	if u == v {
		return 0, true
	}
	dist := make([]int, g.ids.Cap())
	for i := range dist {
		dist[i] = -1
	}
	dist[uh] = 0
	queue := []ident.Handle{uh}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, n := range g.adj[x] {
			if dist[n] >= 0 {
				continue
			}
			dist[n] = dist[x] + 1
			if n == vh {
				return dist[n], true
			}
			queue = append(queue, n)
		}
	}
	return 0, false
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	g.ids.EachLive(func(_ int64, vh ident.Handle) bool {
		h[len(g.adj[vh])]++
		return true
	})
	return h
}

// MaxDegree returns the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	g.ids.EachLive(func(_ int64, vh ident.Handle) bool {
		if d := len(g.adj[vh]); d > max {
			max = d
		}
		return true
	})
	return max
}

// AvgDegree returns the mean vertex degree (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.NumVertices())
}

// LabelHistogram returns a map from label to the number of vertices carrying
// that label.
func (g *Graph) LabelHistogram() map[Label]int {
	h := make(map[Label]int)
	g.ids.EachLive(func(_ int64, vh ident.Handle) bool {
		h[Label(g.lab.Name(g.labelOf[vh]))]++
		return true
	})
	return h
}

// TriangleCount returns the number of triangles in g. It enumerates each
// triangle once by requiring u < v < w (by VertexID).
func (g *Graph) TriangleCount() int {
	count := 0
	g.ids.EachLive(func(uk int64, uh ident.Handle) bool {
		for _, vh := range g.adj[uh] {
			if g.ids.KeyOf(vh) <= uk {
				continue
			}
			for _, wh := range g.adj[vh] {
				if g.ids.KeyOf(wh) <= g.ids.KeyOf(vh) {
					continue
				}
				if g.hasEdgeH(uh, wh) {
					count++
				}
			}
		}
		return true
	})
	return count
}
