package graph

import "sort"

// BFSOrder returns vertices reachable from start in breadth-first order.
// Neighbour ties are broken by ascending vertex ID so the order is
// deterministic. If start is absent the result is nil.
func (g *Graph) BFSOrder(start VertexID) []VertexID {
	if !g.HasVertex(start) {
		return nil
	}
	visited := map[VertexID]struct{}{start: {}}
	order := []VertexID{start}
	queue := []VertexID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if _, ok := visited[u]; !ok {
				visited[u] = struct{}{}
				order = append(order, u)
				queue = append(queue, u)
			}
		}
	}
	return order
}

// DFSOrder returns vertices reachable from start in depth-first preorder,
// with neighbour ties broken by ascending vertex ID.
func (g *Graph) DFSOrder(start VertexID) []VertexID {
	if !g.HasVertex(start) {
		return nil
	}
	visited := make(map[VertexID]struct{})
	var order []VertexID
	stack := []VertexID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := visited[v]; ok {
			continue
		}
		visited[v] = struct{}{}
		order = append(order, v)
		// Push descending so the smallest neighbour pops first.
		ns := g.Neighbors(v)
		for i := len(ns) - 1; i >= 0; i-- {
			if _, ok := visited[ns[i]]; !ok {
				stack = append(stack, ns[i])
			}
		}
	}
	return order
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by their smallest member.
func (g *Graph) ConnectedComponents() [][]VertexID {
	seen := make(map[VertexID]struct{}, len(g.labels))
	var comps [][]VertexID
	for _, v := range g.Vertices() {
		if _, ok := seen[v]; ok {
			continue
		}
		comp := g.BFSOrder(v)
		for _, u := range comp {
			seen[u] = struct{}{}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph is considered
// connected.
func (g *Graph) IsConnected() bool {
	if g.NumVertices() == 0 {
		return true
	}
	var start VertexID
	for v := range g.labels {
		start = v
		break
	}
	return len(g.BFSOrder(start)) == g.NumVertices()
}

// ShortestPathLen returns the number of edges on a shortest path from u to v
// and whether v is reachable from u.
func (g *Graph) ShortestPathLen(u, v VertexID) (int, bool) {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return 0, false
	}
	if u == v {
		return 0, true
	}
	dist := map[VertexID]int{u: 0}
	queue := []VertexID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for n := range g.adj[x] {
			if _, ok := dist[n]; ok {
				continue
			}
			dist[n] = dist[x] + 1
			if n == v {
				return dist[n], true
			}
			queue = append(queue, n)
		}
	}
	return 0, false
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := range g.labels {
		h[len(g.adj[v])]++
	}
	return h
}

// MaxDegree returns the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.labels {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean vertex degree (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	if len(g.labels) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.labels))
}

// LabelHistogram returns a map from label to the number of vertices carrying
// that label.
func (g *Graph) LabelHistogram() map[Label]int {
	h := make(map[Label]int)
	for _, l := range g.labels {
		h[l]++
	}
	return h
}

// TriangleCount returns the number of triangles in g. It enumerates each
// triangle once by requiring u < v < w.
func (g *Graph) TriangleCount() int {
	count := 0
	for u, ns := range g.adj {
		for v := range ns {
			if v <= u {
				continue
			}
			for w := range g.adj[v] {
				if w <= v {
					continue
				}
				if _, ok := ns[w]; ok {
					count++
				}
			}
		}
	}
	return count
}
