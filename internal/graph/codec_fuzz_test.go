package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCodec exercises the graph text parser on arbitrary input (no
// panics) and checks both writers round-trip: anything that parses must
// survive Write -> Read and WriteStreamed -> Read structurally intact.
func FuzzCodec(f *testing.F) {
	f.Add([]byte("v 0 a\nv 1 b\ne 0 1\n"))
	f.Add([]byte("# comment\nv -3 x\nv 7 y\ne -3 7\n"))
	f.Add([]byte("v 1 a\nv 2 a\nv 3 b\ne 1 2\ne 2 3\ne 3 1\n"))
	f.Add([]byte("v 9223372036854775807 big\n"))
	f.Add([]byte("e 1 2\n"))
	// Stream-codec removal records: this is the static snapshot format, so
	// "rv"/"re" must be refused with a clean error, never applied or
	// panicked on.
	f.Add([]byte("v 0 a\nv 1 b\ne 0 1\nrv 0\n"))
	f.Add([]byte("v 0 a\nv 1 b\ne 0 1\nre 0 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		text, err := g.MarshalText()
		if err != nil {
			t.Fatalf("marshal parsed graph: %v", err)
		}
		g2, err := Read(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("re-parse sorted layout: %v\nserialised: %q", err, text)
		}
		if !g.Equal(g2) {
			t.Fatalf("sorted round trip changed graph:\n%s\nvs\n%s", g, g2)
		}
		var sb strings.Builder
		if err := WriteStreamed(&sb, g); err != nil {
			t.Fatalf("write streamed layout: %v", err)
		}
		g3, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse streamed layout: %v\nserialised: %q", err, sb.String())
		}
		if !g.Equal(g3) {
			t.Fatalf("streamed round trip changed graph:\n%s\nvs\n%s", g, g3)
		}
	})
}
