package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec serialises graphs as one record per line:
//
//	# comment
//	v <id> <label>
//	e <u> <v>
//
// Vertices must appear before the edges that reference them; Write emits
// them in that order. The format is the on-disk interchange used by the CLI
// tools and the example programs.

// Write serialises g to w in the text format. Output is deterministic:
// vertices ascending, then edges in normalized lexicographic order.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, v := range g.Vertices() {
		l, _ := g.Label(v)
		if _, err := fmt.Fprintf(bw, "v %d %s\n", v, l); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteStreamed serialises g in the same text format but in stream-layout:
// vertices ascending, each immediately followed by its edges to lower-ID
// vertices. Read accepts both layouts, but a windowed streaming
// partitioner replaying the file (stream.FromReader, loom-serve ingest)
// sees each vertex arrive together with its known adjacency — the
// standard graph-stream input model — instead of every edge trailing the
// whole vertex set.
func WriteStreamed(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var scratch []VertexID
	for _, v := range g.Vertices() {
		l, _ := g.Label(v)
		if _, err := fmt.Fprintf(bw, "v %d %s\n", v, l); err != nil {
			return err
		}
		scratch = g.AppendNeighbors(scratch[:0], v)
		for _, u := range scratch {
			if u < v {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph from r in the text format. Malformed lines yield an
// error naming the offending line number.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'v <id> <label>', got %q", lineNo, line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
			}
			if g.HasVertex(VertexID(id)) {
				return nil, fmt.Errorf("graph: line %d: duplicate vertex %d", lineNo, id)
			}
			g.AddVertex(VertexID(id), Label(fields[2]))
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e <u> <v>', got %q", lineNo, line)
			}
			u, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q: %v", lineNo, fields[1], err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q: %v", lineNo, fields[2], err)
			}
			if err := g.AddEdge(VertexID(u), VertexID(v)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// MarshalText renders g in the text format.
func (g *Graph) MarshalText() ([]byte, error) {
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// UnmarshalText replaces g's contents with the parsed graph.
func (g *Graph) UnmarshalText(text []byte) error {
	parsed, err := Read(strings.NewReader(string(text)))
	if err != nil {
		return err
	}
	*g = *parsed
	return nil
}
