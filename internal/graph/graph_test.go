package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddVertexAndLabel(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	if !g.HasVertex(1) {
		t.Fatal("vertex 1 should exist")
	}
	if l, ok := g.Label(1); !ok || l != "a" {
		t.Fatalf("Label(1) = %q, %v; want a, true", l, ok)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
}

func TestAddVertexRelabels(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	g.AddVertex(1, "b")
	if l, _ := g.Label(1); l != "b" {
		t.Fatalf("relabel: got %q, want b", l)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
}

func TestLabelMissing(t *testing.T) {
	g := New()
	if _, ok := g.Label(42); ok {
		t.Fatal("Label on missing vertex should report !ok")
	}
}

func TestMustLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLabel on missing vertex should panic")
		}
	}()
	New().MustLabel(7)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	g.AddVertex(2, "b")
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge should be undirected")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	g.AddVertex(2, "b")
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop should error")
	}
	if err := g.AddEdge(1, 3); err == nil {
		t.Error("missing endpoint should error")
	}
	if err := g.AddEdge(3, 1); err == nil {
		t.Error("missing endpoint should error")
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(2, 1); err == nil {
		t.Error("duplicate edge should error")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestEnsureEdge(t *testing.T) {
	g := New()
	if !g.EnsureEdge(1, 2, "a", "b") {
		t.Fatal("first EnsureEdge should add")
	}
	if g.EnsureEdge(1, 2, "a", "b") {
		t.Fatal("second EnsureEdge should not add")
	}
	if g.EnsureEdge(3, 3, "c", "c") {
		t.Fatal("self-loop EnsureEdge should not add")
	}
	if l, _ := g.Label(1); l != "a" {
		t.Fatalf("EnsureEdge label: got %q want a", l)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got |V|=%d |E|=%d, want 2,1", g.NumVertices(), g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Path("a", "b", "c")
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report true for present edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report false for absent edge")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge should be gone in both directions")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveVertex(t *testing.T) {
	g := Star("c", "l", "l", "l")
	if !g.RemoveVertex(0) {
		t.Fatal("RemoveVertex should succeed")
	}
	if g.RemoveVertex(0) {
		t.Fatal("second RemoveVertex should report false")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("removing the hub should drop all edges, have %d", g.NumEdges())
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := Star("c", "x", "y", "z")
	want := []VertexID{1, 2, 3}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	if g.Neighbors(99) != nil {
		t.Fatal("Neighbors of a missing vertex should be nil")
	}
}

func TestEachNeighborEarlyStop(t *testing.T) {
	g := Star("c", "x", "y", "z")
	calls := 0
	g.EachNeighbor(0, func(VertexID) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("EachNeighbor should stop after fn returns false; got %d calls", calls)
	}
}

func TestVerticesAndEdgesSorted(t *testing.T) {
	g := New()
	for _, v := range []VertexID{5, 3, 9, 1} {
		g.AddVertex(v, "x")
	}
	for _, e := range []Edge{{9, 1}, {5, 3}, {3, 1}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := g.Vertices(), []VertexID{1, 3, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Vertices = %v, want %v", got, want)
	}
	wantE := []Edge{{1, 3}, {1, 9}, {3, 5}}
	if got := g.Edges(); !reflect.DeepEqual(got, wantE) {
		t.Fatalf("Edges = %v, want %v", got, wantE)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path("a", "b", "c")
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.RemoveVertex(1)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatal("mutating the clone must not affect the original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Fig1Graph()
	s := g.InducedSubgraph([]VertexID{1, 2, 5, 6})
	if s.NumVertices() != 4 {
		t.Fatalf("|V| = %d, want 4", s.NumVertices())
	}
	if s.NumEdges() != 4 {
		t.Fatalf("|E| = %d, want 4 (the q1 square)", s.NumEdges())
	}
	for _, e := range []Edge{{1, 2}, {2, 6}, {5, 6}, {1, 5}} {
		if !s.HasEdge(e.U, e.V) {
			t.Errorf("missing edge %v", e)
		}
	}
	// Vertices not in g are ignored.
	s2 := g.InducedSubgraph([]VertexID{1, 999})
	if s2.NumVertices() != 1 {
		t.Fatalf("unknown keep vertices should be dropped, |V|=%d", s2.NumVertices())
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := Path("a", "b", "c")
	b := Path("a", "b", "c")
	if !a.Equal(b) {
		t.Fatal("identical paths should be Equal")
	}
	b.AddVertex(2, "x") // relabel
	if a.Equal(b) {
		t.Fatal("label change should break equality")
	}
	c := Path("a", "b", "c")
	c.RemoveEdge(0, 1)
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different edge sets should not be Equal")
	}
}

func TestEdgeNormalizeAndOther(t *testing.T) {
	e := Edge{U: 5, V: 2}.Normalize()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Normalize = %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	e.Other(7)
}

func TestBFSOrder(t *testing.T) {
	g := Fig1Graph()
	order := g.BFSOrder(1)
	if len(order) != 8 {
		t.Fatalf("BFS should reach all 8 vertices, got %d", len(order))
	}
	if order[0] != 1 {
		t.Fatalf("BFS must start at 1, got %v", order[0])
	}
	// Deterministic: neighbours in ascending order => 1, then 2, 5, ...
	if order[1] != 2 || order[2] != 5 {
		t.Fatalf("BFS order not deterministic-ascending: %v", order)
	}
	if g.BFSOrder(100) != nil {
		t.Fatal("BFS from a missing vertex should be nil")
	}
}

func TestDFSOrder(t *testing.T) {
	g := Path("a", "b", "c", "d")
	want := []VertexID{0, 1, 2, 3}
	if got := g.DFSOrder(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("DFSOrder = %v, want %v", got, want)
	}
	if g.DFSOrder(100) != nil {
		t.Fatal("DFS from a missing vertex should be nil")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	g.AddVertex(2, "a")
	g.AddVertex(3, "a")
	g.AddVertex(4, "a")
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []VertexID{1, 2}) || !reflect.DeepEqual(comps[1], []VertexID{3, 4}) {
		t.Fatalf("components = %v", comps)
	}
}

func TestIsConnected(t *testing.T) {
	if !New().IsConnected() {
		t.Fatal("empty graph is connected by convention")
	}
	if !Fig1Graph().IsConnected() {
		t.Fatal("Fig1 graph is connected")
	}
	g := New()
	g.AddVertex(1, "a")
	g.AddVertex(2, "a")
	if g.IsConnected() {
		t.Fatal("two isolated vertices are not connected")
	}
}

func TestShortestPathLen(t *testing.T) {
	g := Fig1Graph()
	if d, ok := g.ShortestPathLen(1, 4); !ok || d != 3 {
		t.Fatalf("d(1,4) = %d,%v; want 3,true", d, ok)
	}
	if d, ok := g.ShortestPathLen(1, 1); !ok || d != 0 {
		t.Fatalf("d(1,1) = %d,%v; want 0,true", d, ok)
	}
	h := New()
	h.AddVertex(1, "a")
	h.AddVertex(2, "a")
	if _, ok := h.ShortestPathLen(1, 2); ok {
		t.Fatal("unreachable pair should report !ok")
	}
	if _, ok := h.ShortestPathLen(1, 99); ok {
		t.Fatal("missing vertex should report !ok")
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star("c", "x", "y", "z")
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("DegreeHistogram = %v", h)
	}
	if New().AvgDegree() != 0 || New().MaxDegree() != 0 {
		t.Fatal("empty graph degree stats should be 0")
	}
}

func TestLabelHistogramAndLabels(t *testing.T) {
	g := Fig1Graph()
	h := g.LabelHistogram()
	for _, l := range []Label{"a", "b", "c", "d"} {
		if h[l] != 2 {
			t.Fatalf("label %s count = %d, want 2", l, h[l])
		}
	}
	if got, want := g.Labels(), []Label{"a", "b", "c", "d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
}

func TestTriangleCount(t *testing.T) {
	tri := Cycle("a", "b", "c")
	if tri.TriangleCount() != 1 {
		t.Fatalf("triangle count = %d, want 1", tri.TriangleCount())
	}
	if Path("a", "b", "c").TriangleCount() != 0 {
		t.Fatal("path has no triangles")
	}
	// K4 has 4 triangles.
	k4 := New()
	for i := 0; i < 4; i++ {
		k4.AddVertex(VertexID(i), "x")
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := k4.AddEdge(VertexID(i), VertexID(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if k4.TriangleCount() != 4 {
		t.Fatalf("K4 triangles = %d, want 4", k4.TriangleCount())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	g := Fig1Graph()
	text, err := g.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var h Graph
	if err := h.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&h) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", g, &h)
	}
}

func TestCodecStreamedRoundTrip(t *testing.T) {
	g := Fig1Graph()
	var sb strings.Builder
	if err := WriteStreamed(&sb, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse streamed layout: %v", err)
	}
	if !g.Equal(h) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", g, h)
	}
	// Stream layout interleaves: the first edge line must appear before
	// the last vertex line.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	firstEdge, lastVertex := -1, -1
	for i, l := range lines {
		if strings.HasPrefix(l, "e ") && firstEdge == -1 {
			firstEdge = i
		}
		if strings.HasPrefix(l, "v ") {
			lastVertex = i
		}
	}
	if firstEdge == -1 || firstEdge > lastVertex {
		t.Fatalf("layout not interleaved: first edge at %d, last vertex at %d", firstEdge, lastVertex)
	}
}

func TestCodecCommentsAndBlank(t *testing.T) {
	in := "# header\n\nv 1 a\nv 2 b\n\n# edge\ne 1 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"v 1",          // short vertex record
		"v x a",        // bad id
		"v 1 a\nv 1 b", // duplicate vertex
		"e 1 2",        // edge before vertices
		"e 1",          // short edge record
		"v 1 a\ne x 1", // bad endpoint
		"v 1 a\ne 1 y", // bad endpoint
		"q 1 2",        // unknown record
		"v 1 a\ne 1 1", // self loop
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail to parse", in)
		}
	}
}

func TestBuilders(t *testing.T) {
	p := Path("a", "b", "c")
	if p.NumVertices() != 3 || p.NumEdges() != 2 {
		t.Fatal("Path shape wrong")
	}
	c := Cycle("a", "b", "c", "d")
	if c.NumVertices() != 4 || c.NumEdges() != 4 {
		t.Fatal("Cycle shape wrong")
	}
	s := Star("h", "x", "y")
	if s.NumVertices() != 3 || s.NumEdges() != 2 || s.Degree(0) != 2 {
		t.Fatal("Star shape wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle with <3 vertices should panic")
		}
	}()
	Cycle("a", "b")
}

func TestFromEdgeList(t *testing.T) {
	g, err := FromEdgeList([]Label{"a", "b"}, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("edge missing")
	}
	if _, err := FromEdgeList([]Label{"a"}, []Edge{{0, 5}}); err == nil {
		t.Fatal("dangling edge should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromEdgeList should panic on error")
		}
	}()
	MustFromEdgeList([]Label{"a"}, []Edge{{0, 5}})
}

func TestFig1GraphShape(t *testing.T) {
	g := Fig1Graph()
	if g.NumVertices() != 8 || g.NumEdges() != 9 {
		t.Fatalf("|V|=%d |E|=%d, want 8, 9", g.NumVertices(), g.NumEdges())
	}
	// The q1 square 1-2-6-5-1 must be present with alternating labels.
	for _, e := range []Edge{{1, 2}, {2, 6}, {5, 6}, {1, 5}} {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("square edge %v missing", e)
		}
	}
	if g.MustLabel(1) != "a" || g.MustLabel(6) != "a" || g.MustLabel(2) != "b" || g.MustLabel(5) != "b" {
		t.Error("square labels must alternate a/b")
	}
}

// randomGraph builds a random graph for property tests.
func randomGraph(r *rand.Rand, n int, p float64, alphabet []Label) *Graph {
	g := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), alphabet[r.Intn(len(alphabet))])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				if err := g.AddEdge(VertexID(i), VertexID(j)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	alphabet := []Label{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(30), 0.2, alphabet)
		text, err := g.MarshalText()
		if err != nil {
			return false
		}
		var h Graph
		if err := h.UnmarshalText(text); err != nil {
			return false
		}
		return g.Equal(&h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDegreeSum(t *testing.T) {
	// Handshake lemma: sum of degrees = 2|E|, under arbitrary add/remove.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(40), 0.15, []Label{"x", "y"})
		for i := 0; i < 10; i++ {
			vs := g.Vertices()
			if len(vs) == 0 {
				break
			}
			v := vs[r.Intn(len(vs))]
			if r.Intn(2) == 0 {
				g.RemoveVertex(v)
			} else if len(vs) > 1 {
				u := vs[r.Intn(len(vs))]
				g.RemoveEdge(u, v)
			}
		}
		sum := 0
		for _, v := range g.Vertices() {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInducedSubgraphIsSubgraph(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 5+r.Intn(25), 0.25, []Label{"a", "b"})
		vs := g.Vertices()
		keep := vs[:len(vs)/2]
		s := g.InducedSubgraph(keep)
		for _, v := range s.Vertices() {
			if !g.HasVertex(v) {
				return false
			}
			gl, _ := g.Label(v)
			sl, _ := s.Label(v)
			if gl != sl {
				return false
			}
		}
		for _, e := range s.Edges() {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		// Completeness: every g-edge within keep appears in s.
		in := make(map[VertexID]bool)
		for _, v := range keep {
			in[v] = true
		}
		for _, e := range g.Edges() {
			if in[e.U] && in[e.V] && !s.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringStable(t *testing.T) {
	g := Path("a", "b")
	s1, s2 := g.String(), g.String()
	if s1 != s2 {
		t.Fatal("String must be deterministic")
	}
	if !strings.Contains(s1, "|V|=2") || !strings.Contains(s1, "(0,1)") {
		t.Fatalf("String = %q", s1)
	}
}
