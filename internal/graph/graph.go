// Package graph provides the labelled graph model used throughout LOOM.
//
// A graph is a simple, undirected, vertex-labelled graph G = (V, E, L, fl)
// as defined in Section 2 of the paper: vertices carry labels drawn from a
// finite alphabet, edges are unordered pairs of distinct vertices, and the
// labelling function maps every vertex to exactly one label.
//
// The implementation favours predictable iteration (sorted snapshots) and
// cheap incremental mutation, because graphs are primarily consumed as
// streams of insertions by the partitioners.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are opaque to the library; generators
// use dense non-negative integers but nothing relies on density.
type VertexID int64

// Label is a vertex label drawn from a finite alphabet.
type Label string

// Edge is an unordered pair of distinct vertices. Normalize orders the pair
// so edges compare equal regardless of construction order.
type Edge struct {
	U, V VertexID
}

// Normalize returns the edge with endpoints ordered U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e; callers guarantee membership.
func (e Edge) Other(v VertexID) VertexID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a mutable, simple, undirected, vertex-labelled graph.
// The zero value is not usable; construct with New.
type Graph struct {
	labels map[VertexID]Label
	adj    map[VertexID]map[VertexID]struct{}
	m      int // number of edges
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		labels: make(map[VertexID]Label),
		adj:    make(map[VertexID]map[VertexID]struct{}),
	}
}

// NewWithCapacity returns an empty graph with room for n vertices.
func NewWithCapacity(n int) *Graph {
	return &Graph{
		labels: make(map[VertexID]Label, n),
		adj:    make(map[VertexID]map[VertexID]struct{}, n),
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.m }

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v VertexID) bool {
	_, ok := g.labels[v]
	return ok
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v VertexID) bool {
	n, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = n[v]
	return ok
}

// Label returns the label of v and whether v exists.
func (g *Graph) Label(v VertexID) (Label, bool) {
	l, ok := g.labels[v]
	return l, ok
}

// MustLabel returns the label of v, panicking if v is absent. It is intended
// for callers that have already established membership.
func (g *Graph) MustLabel(v VertexID) Label {
	l, ok := g.labels[v]
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not present", v))
	}
	return l
}

// AddVertex inserts v with the given label. Adding an existing vertex
// relabels it; this matches streaming semantics where the latest observation
// wins.
func (g *Graph) AddVertex(v VertexID, l Label) {
	if _, ok := g.labels[v]; !ok {
		g.adj[v] = make(map[VertexID]struct{})
	}
	g.labels[v] = l
}

// AddEdge inserts the undirected edge {u,v}. Both endpoints must already be
// present; self-loops and duplicate edges are rejected with an error so
// stream feeders can surface malformed input.
func (g *Graph) AddEdge(u, v VertexID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if !g.HasVertex(u) {
		return fmt.Errorf("graph: edge endpoint %d not present", u)
	}
	if !g.HasVertex(v) {
		return fmt.Errorf("graph: edge endpoint %d not present", v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return nil
}

// EnsureEdge inserts {u,v} if absent, creating endpoints with the given
// labels if they do not exist yet. It reports whether a new edge was added.
// Self-loops are ignored and reported as not added.
func (g *Graph) EnsureEdge(u, v VertexID, lu, lv Label) bool {
	if u == v {
		return false
	}
	if !g.HasVertex(u) {
		g.AddVertex(u, lu)
	}
	if !g.HasVertex(v) {
		g.AddVertex(v, lv)
	}
	if g.HasEdge(u, v) {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return true
}

// RemoveEdge deletes {u,v} if present and reports whether it was removed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	return true
}

// RemoveVertex deletes v and all incident edges, reporting whether v existed.
func (g *Graph) RemoveVertex(v VertexID) bool {
	if !g.HasVertex(v) {
		return false
	}
	for u := range g.adj[v] {
		delete(g.adj[u], v)
		g.m--
	}
	delete(g.adj, v)
	delete(g.labels, v)
	return true
}

// Degree returns the number of neighbours of v (0 if absent).
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// Neighbors returns the neighbours of v in ascending order. The slice is
// freshly allocated; callers may retain it.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	n := g.adj[v]
	if len(n) == 0 {
		return nil
	}
	out := make([]VertexID, 0, len(n))
	for u := range n {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachNeighbor calls fn for every neighbour of v in unspecified order,
// without allocating. If fn returns false the iteration stops.
func (g *Graph) EachNeighbor(v VertexID, fn func(VertexID) bool) {
	for u := range g.adj[v] {
		if !fn(u) {
			return
		}
	}
}

// Vertices returns all vertex IDs in ascending order.
func (g *Graph) Vertices() []VertexID {
	out := make([]VertexID, 0, len(g.labels))
	for v := range g.labels {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges, normalized and sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, ns := range g.adj {
		for v := range ns {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Labels returns the distinct labels present, sorted.
func (g *Graph) Labels() []Label {
	set := make(map[Label]struct{})
	for _, l := range g.labels {
		set[l] = struct{}{}
	}
	out := make([]Label, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := NewWithCapacity(len(g.labels))
	for v, l := range g.labels {
		c.labels[v] = l
		nn := make(map[VertexID]struct{}, len(g.adj[v]))
		for u := range g.adj[v] {
			nn[u] = struct{}{}
		}
		c.adj[v] = nn
	}
	c.m = g.m
	return c
}

// InducedSubgraph returns the subgraph induced by keep: all vertices in keep
// that exist in g, plus every edge of g with both endpoints in keep.
func (g *Graph) InducedSubgraph(keep []VertexID) *Graph {
	in := make(map[VertexID]struct{}, len(keep))
	for _, v := range keep {
		if g.HasVertex(v) {
			in[v] = struct{}{}
		}
	}
	s := NewWithCapacity(len(in))
	for v := range in {
		s.AddVertex(v, g.labels[v])
	}
	for v := range in {
		for u := range g.adj[v] {
			if _, ok := in[u]; ok && v < u {
				// Both endpoints known present; AddEdge cannot fail.
				if err := s.AddEdge(v, u); err != nil {
					panic(err)
				}
			}
		}
	}
	return s
}

// Equal reports whether g and h have identical vertex sets, labels and edge
// sets. It is structural identity, not isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for v, l := range g.labels {
		hl, ok := h.labels[v]
		if !ok || hl != l {
			return false
		}
	}
	for u, ns := range g.adj {
		for v := range ns {
			if !h.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// String returns a compact human-readable rendering, stable across runs.
func (g *Graph) String() string {
	vs := g.Vertices()
	s := fmt.Sprintf("graph{|V|=%d |E|=%d", len(vs), g.m)
	for _, v := range vs {
		s += fmt.Sprintf(" %d:%s", v, g.labels[v])
	}
	for _, e := range g.Edges() {
		s += " " + e.String()
	}
	return s + "}"
}
