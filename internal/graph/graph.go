// Package graph provides the labelled graph model used throughout LOOM.
//
// A graph is a simple, undirected, vertex-labelled graph G = (V, E, L, fl)
// as defined in Section 2 of the paper: vertices carry labels drawn from a
// finite alphabet, edges are unordered pairs of distinct vertices, and the
// labelling function maps every vertex to exactly one label.
//
// The implementation is the dense core of the engine: external VertexIDs and
// Labels are interned (package ident) into small dense handles, adjacency is
// a grow-on-append slice of neighbour handles per vertex, and labels are a
// handle-indexed slice of LabelIDs. Sorted snapshots (Neighbors, Vertices,
// Edges) are materialised only on demand; hot paths iterate handles without
// allocating. The API is unchanged from the earlier map-backed
// representation, and iteration-order-sensitive results (sorted snapshots)
// are bit-identical to it.
package graph

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"loom/internal/ident"
)

// VertexID identifies a vertex. IDs are opaque to the library; generators
// use dense non-negative integers but nothing relies on density (sparse and
// negative IDs take the interner's map fallback).
type VertexID int64

// Label is a vertex label drawn from a finite alphabet.
type Label string

// Edge is an unordered pair of distinct vertices. Normalize orders the pair
// so edges compare equal regardless of construction order.
type Edge struct {
	U, V VertexID
}

// Normalize returns the edge with endpoints ordered U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e; callers guarantee membership.
func (e Edge) Other(v VertexID) VertexID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a mutable, simple, undirected, vertex-labelled graph.
// The zero value is not usable; construct with New.
type Graph struct {
	ids *ident.Interner // VertexID -> dense handle
	lab *ident.Labels   // Label -> dense LabelID (possibly shared)
	// labelOf and adj are indexed by handle; entries of freed handles are
	// reset on reuse (adj keeps its capacity, so a sliding-window graph
	// reaches a steady state with no per-vertex allocation).
	labelOf []ident.LabelID
	adj     [][]ident.Handle
	m       int // number of edges
}

// New returns an empty graph.
func New() *Graph {
	return NewWithLabels(ident.NewLabels())
}

// NewWithCapacity returns an empty graph with room for n vertices.
func NewWithCapacity(n int) *Graph {
	g := NewWithLabels(ident.NewLabels())
	g.ids = ident.NewInternerWithCapacity(n)
	g.labelOf = make([]ident.LabelID, 0, n)
	g.adj = make([][]ident.Handle, 0, n)
	return g
}

// NewWithLabels returns an empty graph interning labels in lab, which may be
// shared with other components (e.g. a signature.Factory) so that LabelIDs
// agree across them. Sharing is not synchronised; share only within a single
// goroutine's pipeline.
func NewWithLabels(lab *ident.Labels) *Graph {
	return &Graph{ids: ident.NewInterner(), lab: lab}
}

// LabelInterner exposes the graph's label interner for components that need
// to agree on LabelIDs.
func (g *Graph) LabelInterner() *ident.Labels { return g.lab }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.ids.Len() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.m }

// HandleOf returns the dense handle of v, if present. Handles are stable
// while v stays in the graph and may be reused after RemoveVertex.
func (g *Graph) HandleOf(v VertexID) (ident.Handle, bool) {
	return g.ids.Lookup(int64(v))
}

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v VertexID) bool {
	_, ok := g.ids.Lookup(int64(v))
	return ok
}

// hasEdgeH reports whether the edge {hu,hv} is present, scanning the shorter
// adjacency list.
func (g *Graph) hasEdgeH(hu, hv ident.Handle) bool {
	a, b := g.adj[hu], g.adj[hv]
	if len(b) < len(a) {
		a, b = b, a
		hu, hv = hv, hu
	}
	for _, n := range a {
		if n == hv {
			return true
		}
	}
	return false
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v VertexID) bool {
	hu, ok := g.ids.Lookup(int64(u))
	if !ok {
		return false
	}
	hv, ok := g.ids.Lookup(int64(v))
	if !ok {
		return false
	}
	return g.hasEdgeH(hu, hv)
}

// Label returns the label of v and whether v exists.
func (g *Graph) Label(v VertexID) (Label, bool) {
	h, ok := g.ids.Lookup(int64(v))
	if !ok {
		return "", false
	}
	return Label(g.lab.Name(g.labelOf[h])), true
}

// MustLabel returns the label of v, panicking if v is absent. It is intended
// for callers that have already established membership.
func (g *Graph) MustLabel(v VertexID) Label {
	l, ok := g.Label(v)
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not present", v))
	}
	return l
}

// LabelIDOf returns the interned LabelID of v's label, if v is present.
func (g *Graph) LabelIDOf(v VertexID) (ident.LabelID, bool) {
	h, ok := g.ids.Lookup(int64(v))
	if !ok {
		return ident.NoLabel, false
	}
	return g.labelOf[h], true
}

// AddVertex inserts v with the given label. Adding an existing vertex
// relabels it; this matches streaming semantics where the latest observation
// wins.
func (g *Graph) AddVertex(v VertexID, l Label) {
	lid := g.lab.Intern(string(l))
	if h, ok := g.ids.Lookup(int64(v)); ok {
		g.labelOf[h] = lid
		return
	}
	h := g.ids.Intern(int64(v))
	for int(h) >= len(g.labelOf) {
		g.labelOf = append(g.labelOf, ident.NoLabel)
		g.adj = append(g.adj, nil)
	}
	g.labelOf[h] = lid
	g.adj[h] = g.adj[h][:0]
}

// AddEdge inserts the undirected edge {u,v}. Both endpoints must already be
// present; self-loops and duplicate edges are rejected with an error so
// stream feeders can surface malformed input.
// appendAdj appends one half-edge, seeding a fresh adjacency list with
// capacity for a typical degree: without it every vertex pays a chain of
// growslice doublings from zero on the ingest hot path.
func appendAdj(adj []ident.Handle, h ident.Handle) []ident.Handle {
	if adj == nil {
		adj = make([]ident.Handle, 0, 8)
	}
	return append(adj, h)
}

func (g *Graph) AddEdge(u, v VertexID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	hu, ok := g.ids.Lookup(int64(u))
	if !ok {
		return fmt.Errorf("graph: edge endpoint %d not present", u)
	}
	hv, ok := g.ids.Lookup(int64(v))
	if !ok {
		return fmt.Errorf("graph: edge endpoint %d not present", v)
	}
	if g.hasEdgeH(hu, hv) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[hu] = appendAdj(g.adj[hu], hv)
	g.adj[hv] = appendAdj(g.adj[hv], hu)
	g.m++
	return nil
}

// EnsureEdge inserts {u,v} if absent, creating endpoints with the given
// labels if they do not exist yet. It reports whether a new edge was added.
// Self-loops are ignored and reported as not added.
func (g *Graph) EnsureEdge(u, v VertexID, lu, lv Label) bool {
	if u == v {
		return false
	}
	if !g.HasVertex(u) {
		g.AddVertex(u, lu)
	}
	if !g.HasVertex(v) {
		g.AddVertex(v, lv)
	}
	hu, _ := g.ids.Lookup(int64(u))
	hv, _ := g.ids.Lookup(int64(v))
	if g.hasEdgeH(hu, hv) {
		return false
	}
	g.adj[hu] = append(g.adj[hu], hv)
	g.adj[hv] = append(g.adj[hv], hu)
	g.m++
	return true
}

// removeHalfEdge deletes hv from hu's adjacency list (swap-remove; neighbour
// order is unspecified).
func (g *Graph) removeHalfEdge(hu, hv ident.Handle) bool {
	a := g.adj[hu]
	for i, n := range a {
		if n == hv {
			a[i] = a[len(a)-1]
			g.adj[hu] = a[:len(a)-1]
			return true
		}
	}
	return false
}

// RemoveEdge deletes {u,v} if present and reports whether it was removed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	hu, ok := g.ids.Lookup(int64(u))
	if !ok {
		return false
	}
	hv, ok := g.ids.Lookup(int64(v))
	if !ok {
		return false
	}
	if !g.removeHalfEdge(hu, hv) {
		return false
	}
	g.removeHalfEdge(hv, hu)
	g.m--
	return true
}

// RemoveVertex deletes v and all incident edges, reporting whether v existed.
// Its handle is recycled for the next new vertex, so a bounded-population
// graph (LOOM's stream window) keeps a bounded handle space.
func (g *Graph) RemoveVertex(v VertexID) bool {
	h, ok := g.ids.Lookup(int64(v))
	if !ok {
		return false
	}
	for _, nh := range g.adj[h] {
		g.removeHalfEdge(nh, h)
		g.m--
	}
	g.adj[h] = g.adj[h][:0]
	g.labelOf[h] = ident.NoLabel
	g.ids.Remove(int64(v))
	return true
}

// Degree returns the number of neighbours of v (0 if absent).
func (g *Graph) Degree(v VertexID) int {
	h, ok := g.ids.Lookup(int64(v))
	if !ok {
		return 0
	}
	return len(g.adj[h])
}

// Neighbors returns the neighbours of v in ascending order. The slice is
// freshly allocated; callers may retain it.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.AppendNeighbors(nil, v)
}

// AppendNeighbors appends the neighbours of v to dst in ascending order and
// returns the extended slice, letting hot paths reuse a scratch buffer. dst
// may be nil; when v is absent or isolated dst is returned unchanged.
func (g *Graph) AppendNeighbors(dst []VertexID, v VertexID) []VertexID {
	h, ok := g.ids.Lookup(int64(v))
	if !ok || len(g.adj[h]) == 0 {
		return dst
	}
	start := len(dst)
	for _, nh := range g.adj[h] {
		dst = append(dst, VertexID(g.ids.KeyOf(nh)))
	}
	tail := dst[start:]
	slices.Sort(tail)
	return dst
}

// EachNeighbor calls fn for every neighbour of v in unspecified order,
// without allocating. If fn returns false the iteration stops.
func (g *Graph) EachNeighbor(v VertexID, fn func(VertexID) bool) {
	h, ok := g.ids.Lookup(int64(v))
	if !ok {
		return
	}
	for _, nh := range g.adj[h] {
		if !fn(VertexID(g.ids.KeyOf(nh))) {
			return
		}
	}
}

// Vertices returns all vertex IDs in ascending order.
func (g *Graph) Vertices() []VertexID {
	out := make([]VertexID, 0, g.ids.Len())
	g.ids.EachLive(func(k int64, _ ident.Handle) bool {
		out = append(out, VertexID(k))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachVertex calls fn for every vertex in unspecified order, without
// allocating. If fn returns false the iteration stops.
func (g *Graph) EachVertex(fn func(VertexID) bool) {
	g.ids.EachLive(func(k int64, _ ident.Handle) bool {
		return fn(VertexID(k))
	})
}

// EachEdge calls fn once for every undirected edge {u,v}, in unspecified
// order, without materialising or sorting the edge set. If fn returns false
// the iteration stops.
func (g *Graph) EachEdge(fn func(u, v VertexID) bool) {
	stop := false
	g.ids.EachLive(func(k int64, h ident.Handle) bool {
		u := VertexID(k)
		for _, nh := range g.adj[h] {
			v := VertexID(g.ids.KeyOf(nh))
			if u < v {
				if !fn(u, v) {
					stop = true
					return false
				}
			}
		}
		return !stop
	})
}

// Edges returns all edges, normalized and sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	g.EachEdge(func(u, v VertexID) bool {
		out = append(out, Edge{U: u, V: v})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Labels returns the distinct labels present, sorted.
func (g *Graph) Labels() []Label {
	seen := make(map[ident.LabelID]struct{})
	g.ids.EachLive(func(_ int64, h ident.Handle) bool {
		seen[g.labelOf[h]] = struct{}{}
		return true
	})
	out := make([]Label, 0, len(seen))
	//loom:orderinvariant collects the label set through the pure interner lookup Name, then sorts
	for lid := range seen {
		out = append(out, Label(g.lab.Name(lid)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g. The copy shares g's label interner (labels
// are immutable once interned); vertex handles are reassigned, so handles
// are not comparable across a clone boundary.
func (g *Graph) Clone() *Graph {
	c := NewWithLabels(g.lab)
	c.ids = ident.NewInternerWithCapacity(g.ids.Len())
	c.labelOf = make([]ident.LabelID, 0, g.ids.Len())
	c.adj = make([][]ident.Handle, 0, g.ids.Len())
	g.ids.EachLive(func(k int64, h ident.Handle) bool {
		ch := c.ids.Intern(k)
		for int(ch) >= len(c.labelOf) {
			c.labelOf = append(c.labelOf, ident.NoLabel)
			c.adj = append(c.adj, nil)
		}
		c.labelOf[ch] = g.labelOf[h]
		return true
	})
	g.EachEdge(func(u, v VertexID) bool {
		hu, _ := c.ids.Lookup(int64(u))
		hv, _ := c.ids.Lookup(int64(v))
		c.adj[hu] = append(c.adj[hu], hv)
		c.adj[hv] = append(c.adj[hv], hu)
		return true
	})
	c.m = g.m
	return c
}

// InducedSubgraph returns the subgraph induced by keep: all vertices in keep
// that exist in g, plus every edge of g with both endpoints in keep.
func (g *Graph) InducedSubgraph(keep []VertexID) *Graph {
	s := NewWithLabels(g.lab)
	for _, v := range keep {
		if l, ok := g.Label(v); ok {
			s.AddVertex(v, l)
		}
	}
	g.EachEdge(func(u, v VertexID) bool {
		if s.HasVertex(u) && s.HasVertex(v) {
			// Both endpoints known present; AddEdge cannot fail.
			if err := s.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
		return true
	})
	return s
}

// Equal reports whether g and h have identical vertex sets, labels and edge
// sets. It is structural identity, not isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	equal := true
	g.EachVertex(func(v VertexID) bool {
		gl, _ := g.Label(v)
		hl, ok := h.Label(v)
		if !ok || hl != gl {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		return false
	}
	g.EachEdge(func(u, v VertexID) bool {
		if !h.HasEdge(u, v) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// String returns a compact human-readable rendering, stable across runs.
func (g *Graph) String() string {
	vs := g.Vertices()
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{|V|=%d |E|=%d", len(vs), g.m)
	for _, v := range vs {
		fmt.Fprintf(&sb, " %d:%s", v, g.MustLabel(v))
	}
	for _, e := range g.Edges() {
		sb.WriteByte(' ')
		sb.WriteString(e.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
