package ident

import (
	"math/rand"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	keys := []int64{0, 1, 7, 1 << 30, -5, 42, 1 << 40, 3}
	handles := make(map[int64]Handle, len(keys))
	for _, k := range keys {
		handles[k] = in.Intern(k)
	}
	if in.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(keys))
	}
	for _, k := range keys {
		// Re-interning is stable.
		if h := in.Intern(k); h != handles[k] {
			t.Fatalf("Intern(%d) second call = %d, want %d", k, h, handles[k])
		}
		h, ok := in.Lookup(k)
		if !ok || h != handles[k] {
			t.Fatalf("Lookup(%d) = %d,%v, want %d,true", k, h, ok, handles[k])
		}
		if got := in.KeyOf(h); got != k {
			t.Fatalf("KeyOf(%d) = %d, want %d", h, got, k)
		}
	}
	// Handles are dense: all < Cap() = number interned.
	if in.Cap() != len(keys) {
		t.Fatalf("Cap = %d, want %d", in.Cap(), len(keys))
	}
	seen := make(map[Handle]bool)
	for _, h := range handles {
		if int(h) >= in.Cap() || seen[h] {
			t.Fatalf("handle %d out of range or duplicated", h)
		}
		seen[h] = true
	}
}

func TestInternerLookupAbsent(t *testing.T) {
	in := NewInterner()
	in.Intern(3)
	for _, k := range []int64{0, 4, -1, 1 << 50} {
		if h, ok := in.Lookup(k); ok {
			t.Fatalf("Lookup(%d) = %d, want absent", k, h)
		}
	}
}

func TestInternerHandleReuseAfterRemove(t *testing.T) {
	in := NewInterner()
	for i := int64(0); i < 100; i++ {
		in.Intern(i)
	}
	h7, _ := in.Lookup(7)
	if got, ok := in.Remove(7); !ok || got != h7 {
		t.Fatalf("Remove(7) = %d,%v, want %d,true", got, ok, h7)
	}
	if _, ok := in.Lookup(7); ok {
		t.Fatal("Lookup(7) found a removed key")
	}
	if in.Len() != 99 {
		t.Fatalf("Len = %d after remove, want 99", in.Len())
	}
	// The freed handle is reused for the next new key, keeping the handle
	// space dense.
	h := in.Intern(1000)
	if h != h7 {
		t.Fatalf("Intern(1000) = %d, want reused handle %d", h, h7)
	}
	if in.Cap() != 100 {
		t.Fatalf("Cap = %d after reuse, want 100", in.Cap())
	}
	if got := in.KeyOf(h); got != 1000 {
		t.Fatalf("KeyOf(reused) = %d, want 1000", got)
	}
}

// TestInternerWindowChurn models the sliding-window usage: keys arrive in an
// unbounded increasing stream, but only a bounded set is live at a time, so
// the handle space must stay bounded by the peak population.
func TestInternerWindowChurn(t *testing.T) {
	in := NewInterner()
	const window = 64
	for i := int64(0); i < 100_000; i++ {
		in.Intern(i)
		if i >= window {
			if _, ok := in.Remove(i - window); !ok {
				t.Fatalf("Remove(%d) failed", i-window)
			}
		}
	}
	if in.Len() != window {
		t.Fatalf("Len = %d, want %d", in.Len(), window)
	}
	if in.Cap() > 2*window {
		t.Fatalf("Cap = %d, want <= %d (handles must be reused)", in.Cap(), 2*window)
	}
	// The live keys are exactly the last window of the stream.
	for i := int64(100_000 - window); i < 100_000; i++ {
		h, ok := in.Lookup(i)
		if !ok {
			t.Fatalf("Lookup(%d) absent, want live", i)
		}
		if got := in.KeyOf(h); got != i {
			t.Fatalf("KeyOf = %d, want %d", got, i)
		}
	}
}

// TestInternerSparseDenseMigration pins the growDense migration: a key that
// lands in the sparse map must stay visible after the dense slice grows over
// its range.
func TestInternerSparseDenseMigration(t *testing.T) {
	in := NewInterner()
	in.Intern(0)
	// Far outside the initial dense window: goes sparse.
	far := int64(200_000)
	hFar := in.Intern(far)
	// Intern enough small keys that the dense slice grows past far.
	for i := int64(1); i <= 50_000; i++ {
		in.Intern(i)
	}
	if h, ok := in.Lookup(far); !ok || h != hFar {
		t.Fatalf("Lookup(%d) = %d,%v after dense growth, want %d,true", far, h, ok, hFar)
	}
	if _, ok := in.Remove(far); !ok {
		t.Fatalf("Remove(%d) failed after migration", far)
	}
	if _, ok := in.Lookup(far); ok {
		t.Fatal("removed migrated key still visible")
	}
}

func TestInternerEachLive(t *testing.T) {
	in := NewInterner()
	for i := int64(0); i < 10; i++ {
		in.Intern(i * 3)
	}
	in.Remove(9)
	in.Remove(21)
	var keys []int64
	in.EachLive(func(k int64, h Handle) bool {
		if got := in.KeyOf(h); got != k {
			t.Fatalf("EachLive key %d has KeyOf %d", k, got)
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != 8 {
		t.Fatalf("EachLive visited %d keys, want 8", len(keys))
	}
	for _, k := range keys {
		if k == 9 || k == 21 {
			t.Fatalf("EachLive visited removed key %d", k)
		}
	}
}

// TestInternerRandomisedAgainstMap cross-checks the interner against a plain
// map reference under a random intern/remove workload.
func TestInternerRandomisedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := NewInterner()
	ref := make(map[int64]Handle)
	for step := 0; step < 50_000; step++ {
		k := rng.Int63n(3000)
		if rng.Intn(3) == 0 {
			k = rng.Int63() // occasionally huge
		}
		if rng.Intn(2) == 0 {
			h := in.Intern(k)
			if prev, ok := ref[k]; ok && prev != h {
				t.Fatalf("step %d: Intern(%d) moved from %d to %d", step, k, prev, h)
			}
			ref[k] = h
		} else {
			h, ok := in.Remove(k)
			prev, refOK := ref[k]
			if ok != refOK || (ok && h != prev) {
				t.Fatalf("step %d: Remove(%d) = %d,%v, ref %d,%v", step, k, h, ok, prev, refOK)
			}
			delete(ref, k)
		}
		if in.Len() != len(ref) {
			t.Fatalf("step %d: Len %d, ref %d", step, in.Len(), len(ref))
		}
	}
	for k, h := range ref {
		got, ok := in.Lookup(k)
		if !ok || got != h {
			t.Fatalf("final: Lookup(%d) = %d,%v, want %d,true", k, got, ok, h)
		}
	}
}

func TestLabels(t *testing.T) {
	l := NewLabels()
	a := l.Intern("a")
	b := l.Intern("b")
	if a == b {
		t.Fatal("distinct labels share an id")
	}
	if got := l.Intern("a"); got != a {
		t.Fatalf("re-intern moved a: %d -> %d", a, got)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Name(a) != "a" || l.Name(b) != "b" {
		t.Fatalf("Name round-trip broken: %q %q", l.Name(a), l.Name(b))
	}
	if id, ok := l.Lookup("b"); !ok || id != b {
		t.Fatalf("Lookup(b) = %d,%v, want %d,true", id, ok, b)
	}
	if _, ok := l.Lookup("zzz"); ok {
		t.Fatal("Lookup found an absent label")
	}
}
