// Package ident is the identity layer of the dense core: it interns
// external identifiers — sparse int64 vertex IDs and string vertex labels —
// into small dense integers so that every container above it (adjacency
// lists, assignments, label tables, factor tables) can be a flat slice
// indexed by the interned value instead of a hash map keyed by the external
// one.
//
// Two interners are provided:
//
//   - Interner maps int64 keys to dense uint32 Handles with stable reverse
//     lookup. Small non-negative keys (the common case: generators and
//     streams emit 0..n-1) are served by a direct-index slice; outliers and
//     negative keys fall back to a map. Handles freed by Remove are reused,
//     so a sliding-window container's handle space stays as small as its
//     peak population.
//   - Labels maps strings to dense LabelIDs. Labels come from a small finite
//     alphabet and are never removed.
//
// Neither type is safe for concurrent use; callers that share an interner
// across goroutines must synchronise (signature.Factory does).
package ident

// Handle is a dense per-container vertex index assigned by an Interner.
// Handles are small and contiguous-ish (freed handles are reused), making
// them suitable as slice indexes.
type Handle uint32

// NoHandle marks the absence of a handle.
const NoHandle Handle = ^Handle(0)

// LabelID is a dense label index assigned by Labels.
type LabelID uint32

// NoLabel marks the absence of a label.
const NoLabel LabelID = ^LabelID(0)

// denseKeyLimit bounds the key range the direct-index fast path may cover,
// capping its worst-case memory at denseKeyLimit * 4 bytes.
const denseKeyLimit = 1 << 22

// Interner assigns dense Handles to int64 keys.
type Interner struct {
	// dense is the direct-index fast path: dense[k] is the handle of key k
	// for small non-negative k, NoHandle when absent.
	dense []Handle
	// sparse holds every key the dense slice does not cover. Lazily
	// allocated; most workloads never need it.
	sparse map[int64]Handle
	// keys is the reverse lookup: keys[h] is the key that owns handle h.
	// Entries of freed handles are stale until the handle is reused.
	keys []int64
	// free lists handles released by Remove, reused LIFO by Intern.
	free []Handle
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{} }

// NewInternerWithCapacity returns an empty interner with room for n keys.
func NewInternerWithCapacity(n int) *Interner {
	in := &Interner{keys: make([]int64, 0, n)}
	if n > 0 {
		limit := n
		if limit > denseKeyLimit {
			limit = denseKeyLimit
		}
		in.dense = make([]Handle, limit)
		for i := range in.dense {
			in.dense[i] = NoHandle
		}
	}
	return in
}

// Len returns the number of live keys.
func (in *Interner) Len() int { return len(in.keys) - len(in.free) }

// Cap returns an exclusive upper bound on every handle ever issued: all
// live handles are < Cap(), so a slice of length Cap() can be indexed by
// any of them.
func (in *Interner) Cap() int { return len(in.keys) }

// denseEligible reports whether key k should live in the direct-index slice.
// The slice follows the occupied handle space with slack, so a container
// whose keys are 0..n-1 is fully direct-indexed while a container holding a
// sliding window over an unbounded key stream keeps O(window) memory and
// sends distant keys to the map.
func (in *Interner) denseEligible(k int64) bool {
	if k < 0 || k >= denseKeyLimit {
		return false
	}
	if int(k) < len(in.dense) {
		return true
	}
	limit := 8 * (len(in.keys) + 1)
	if limit < 1024 {
		limit = 1024
	}
	return k < int64(limit)
}

// growDense extends the direct-index slice to cover key k, migrating any
// sparse entries the grown slice now covers so that the Lookup fast path
// stays authoritative for every key below len(dense).
func (in *Interner) growDense(k int64) {
	n := len(in.dense) * 2
	if n < int(k)+1 {
		n = int(k) + 1
	}
	if n < 1024 {
		n = 1024
	}
	if n > denseKeyLimit {
		n = denseKeyLimit
	}
	grown := make([]Handle, n)
	copy(grown, in.dense)
	for i := len(in.dense); i < n; i++ {
		grown[i] = NoHandle
	}
	for sk, sh := range in.sparse {
		if sk >= 0 && sk < int64(n) {
			grown[sk] = sh
			delete(in.sparse, sk)
		}
	}
	in.dense = grown
}

// Lookup returns the handle of k, if interned.
func (in *Interner) Lookup(k int64) (Handle, bool) {
	if k >= 0 && int64(len(in.dense)) > k {
		h := in.dense[k]
		return h, h != NoHandle
	}
	h, ok := in.sparse[k]
	return h, ok
}

// Intern returns the handle of k, assigning one (reusing freed handles
// first) when k is new.
func (in *Interner) Intern(k int64) Handle {
	if h, ok := in.Lookup(k); ok {
		return h
	}
	var h Handle
	if n := len(in.free); n > 0 {
		h = in.free[n-1]
		in.free = in.free[:n-1]
		in.keys[h] = k
	} else {
		h = Handle(len(in.keys))
		in.keys = append(in.keys, k)
	}
	if in.denseEligible(k) {
		if int(k) >= len(in.dense) {
			in.growDense(k)
		}
		in.dense[k] = h
	} else {
		if in.sparse == nil {
			in.sparse = make(map[int64]Handle)
		}
		in.sparse[k] = h
	}
	return h
}

// KeyOf returns the key owning handle h. It is only meaningful for live
// handles; the entry of a freed handle is stale until reuse.
func (in *Interner) KeyOf(h Handle) int64 { return in.keys[h] }

// Remove releases k's handle for reuse, reporting the freed handle and
// whether k was interned.
func (in *Interner) Remove(k int64) (Handle, bool) {
	h, ok := in.Lookup(k)
	if !ok {
		return NoHandle, false
	}
	if k >= 0 && int64(len(in.dense)) > k && in.dense[k] == h {
		in.dense[k] = NoHandle
	} else {
		delete(in.sparse, k)
	}
	in.free = append(in.free, h)
	return h, true
}

// EachLive calls fn for every live (key, handle) pair in ascending handle
// order. Freed handles are skipped.
func (in *Interner) EachLive(fn func(k int64, h Handle) bool) {
	if len(in.free) == 0 {
		for h, k := range in.keys {
			if !fn(k, Handle(h)) {
				return
			}
		}
		return
	}
	freed := make(map[Handle]struct{}, len(in.free))
	for _, h := range in.free {
		freed[h] = struct{}{}
	}
	for h, k := range in.keys {
		if _, dead := freed[Handle(h)]; dead {
			continue
		}
		if !fn(k, Handle(h)) {
			return
		}
	}
}

// Labels assigns dense LabelIDs to strings. The zero value is not usable;
// construct with NewLabels.
type Labels struct {
	ids  map[string]LabelID
	strs []string
}

// NewLabels returns an empty label interner.
func NewLabels() *Labels {
	return &Labels{ids: make(map[string]LabelID)}
}

// Len returns the number of interned labels.
func (l *Labels) Len() int { return len(l.strs) }

// Intern returns the id of s, assigning the next id when s is new.
func (l *Labels) Intern(s string) LabelID {
	if id, ok := l.ids[s]; ok {
		return id
	}
	id := LabelID(len(l.strs))
	l.ids[s] = id
	l.strs = append(l.strs, s)
	return id
}

// Lookup returns the id of s, if interned.
func (l *Labels) Lookup(s string) (LabelID, bool) {
	id, ok := l.ids[s]
	return id, ok
}

// Name returns the string owning id.
func (l *Labels) Name(id LabelID) string { return l.strs[id] }
