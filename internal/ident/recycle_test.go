package ident

import (
	"math/rand"
	"testing"
)

// TestInternerRecyclingAgainstReference drives a long randomized
// intern/remove schedule against a map-backed reference model, pinning the
// handle-recycling contract the graph and assignment layers build on:
// Lookup answers exactly the live key set, every live key keeps a distinct
// handle, KeyOf inverts live handles, freed handles are reused rather than
// leaked (bounded handle space), and EachLive enumerates exactly the live
// pairs.
func TestInternerRecyclingAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := NewInterner()
	model := make(map[int64]Handle)

	// Key mix: mostly small non-negative (dense path), plus negative and
	// huge keys to force the sparse map path and dense/sparse migration.
	randKey := func() int64 {
		switch rng.Intn(10) {
		case 0:
			return -1 - int64(rng.Intn(64))
		case 1:
			return denseKeyLimit + int64(rng.Intn(1024))
		default:
			return int64(rng.Intn(512))
		}
	}

	verify := func(step int) {
		t.Helper()
		if in.Len() != len(model) {
			t.Fatalf("step %d: Len=%d, model has %d live keys", step, in.Len(), len(model))
		}
		seen := make(map[Handle]int64, len(model))
		for k, want := range model {
			h, ok := in.Lookup(k)
			if !ok {
				t.Fatalf("step %d: live key %d not found", step, k)
			}
			if h != want {
				t.Fatalf("step %d: key %d moved to handle %d (had %d) without a remove", step, k, h, want)
			}
			if prev, dup := seen[h]; dup {
				t.Fatalf("step %d: handle %d aliased by live keys %d and %d", step, h, prev, k)
			}
			seen[h] = k
			if got := in.KeyOf(h); got != k {
				t.Fatalf("step %d: KeyOf(%d)=%d, want %d", step, h, got, k)
			}
		}
		live := 0
		in.EachLive(func(k int64, h Handle) bool {
			live++
			if want, ok := model[k]; !ok || want != h {
				t.Fatalf("step %d: EachLive yielded (%d,%d); model says (%v,%v)", step, k, h, model[k], ok)
			}
			return true
		})
		if live != len(model) {
			t.Fatalf("step %d: EachLive yielded %d pairs, want %d", step, live, len(model))
		}
	}

	peak := 0
	for step := 0; step < 20000; step++ {
		k := randKey()
		if rng.Intn(5) < 3 {
			h := in.Intern(k)
			if want, ok := model[k]; ok && want != h {
				t.Fatalf("step %d: re-intern of live key %d returned handle %d, want %d", step, k, h, want)
			}
			model[k] = h
		} else {
			h, ok := in.Remove(k)
			want, wasLive := model[k]
			if ok != wasLive {
				t.Fatalf("step %d: Remove(%d)=%v, model liveness %v", step, k, ok, wasLive)
			}
			if ok && h != want {
				t.Fatalf("step %d: Remove(%d) freed handle %d, model had %d", step, k, h, want)
			}
			delete(model, k)
			if _, still := in.Lookup(k); still {
				t.Fatalf("step %d: key %d still resolves after Remove", step, k)
			}
		}
		if n := len(model); n > peak {
			peak = n
		}
		if step%997 == 0 {
			verify(step)
		}
	}
	verify(20000)
	// Recycling bound: handles ever issued can exceed the peak population
	// only if the free list was ignored.
	if in.Cap() > peak {
		t.Fatalf("handle space %d exceeds peak population %d: freed handles are not reused", in.Cap(), peak)
	}
}
