package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/partition"
)

func TestPurityPerfect(t *testing.T) {
	a := partition.MustNewAssignment(2)
	for i := 0; i < 10; i++ {
		p := partition.ID(0)
		if i >= 5 {
			p = 1
		}
		if err := a.Set(graph.VertexID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	truth := func(v graph.VertexID) int {
		if v >= 5 {
			return 1
		}
		return 0
	}
	if got := Purity(a, truth); got != 1.0 {
		t.Fatalf("perfect purity = %v, want 1", got)
	}
	if got := NMI(a, truth); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("perfect NMI = %v, want 1", got)
	}
}

func TestPurityRelabelingInvariant(t *testing.T) {
	// Swapping partition labels must not change agreement.
	a := partition.MustNewAssignment(2)
	for i := 0; i < 10; i++ {
		p := partition.ID(1)
		if i >= 5 {
			p = 0
		}
		if err := a.Set(graph.VertexID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	truth := func(v graph.VertexID) int {
		if v >= 5 {
			return 1
		}
		return 0
	}
	if got := Purity(a, truth); got != 1.0 {
		t.Fatalf("relabelled purity = %v, want 1", got)
	}
	if got := NMI(a, truth); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("relabelled NMI = %v, want 1", got)
	}
}

func TestNMIIndependence(t *testing.T) {
	// Partition alternates, truth splits in halves: independent-ish.
	a := partition.MustNewAssignment(2)
	n := 1000
	for i := 0; i < n; i++ {
		if err := a.Set(graph.VertexID(i), partition.ID(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	truth := func(v graph.VertexID) int {
		if int(v) < n/2 {
			return 0
		}
		return 1
	}
	if got := NMI(a, truth); got > 0.01 {
		t.Fatalf("independent NMI = %v, want ~0", got)
	}
	if got := Purity(a, truth); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("independent purity = %v, want ~0.5", got)
	}
}

func TestAgreementDegenerate(t *testing.T) {
	empty := partition.MustNewAssignment(2)
	if Purity(empty, func(graph.VertexID) int { return 0 }) != 0 {
		t.Fatal("empty purity should be 0")
	}
	if NMI(empty, func(graph.VertexID) int { return 0 }) != 0 {
		t.Fatal("empty NMI should be 0")
	}
	// Single class on both sides: zero entropy, NMI defined as 0.
	a := partition.MustNewAssignment(1)
	for i := 0; i < 4; i++ {
		if err := a.Set(graph.VertexID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := NMI(a, func(graph.VertexID) int { return 7 }); got != 0 {
		t.Fatalf("degenerate NMI = %v, want 0", got)
	}
	if got := Purity(a, func(graph.VertexID) int { return 7 }); got != 1 {
		t.Fatalf("single-class purity = %v, want 1", got)
	}
}

func TestPropertyAgreementBounds(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(50)
		k := 2 + r.Intn(4)
		a := partition.MustNewAssignment(k)
		for i := 0; i < n; i++ {
			if err := a.Set(graph.VertexID(i), partition.ID(r.Intn(k))); err != nil {
				return false
			}
		}
		c := 2 + r.Intn(4)
		truth := func(v graph.VertexID) int { return int(v) % c }
		p := Purity(a, truth)
		m := NMI(a, truth)
		return p >= 0 && p <= 1 && m >= 0 && m <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
