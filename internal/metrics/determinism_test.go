package metrics

import (
	"math"
	"math/rand"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
)

// Regression for the NMI map-order fix: the entropy and mutual-information
// sums used to accumulate float64 terms in map iteration order, so two
// computations over the very same clustering could disagree in the low
// bits (float addition is not associative). Replaying must now be
// bit-identical, not merely close.
func TestAgreementReplayBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const n, k, classes = 600, 24, 19
	a := partition.MustNewAssignment(k)
	truthOf := make(map[graph.VertexID]int, n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(i)
		if err := a.Set(v, partition.ID(r.Intn(k))); err != nil {
			t.Fatal(err)
		}
		truthOf[v] = r.Intn(classes)
	}
	truth := func(v graph.VertexID) int { return truthOf[v] }

	firstNMI := NMI(a, truth)
	firstPurity := Purity(a, truth)
	for i := 1; i < 50; i++ {
		if got := NMI(a, truth); math.Float64bits(got) != math.Float64bits(firstNMI) {
			t.Fatalf("replay %d: NMI %v (bits %#x) != first %v (bits %#x)",
				i, got, math.Float64bits(got), firstNMI, math.Float64bits(firstNMI))
		}
		if got := Purity(a, truth); math.Float64bits(got) != math.Float64bits(firstPurity) {
			t.Fatalf("replay %d: purity %v != first %v", i, got, firstPurity)
		}
	}
}
