package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/partition"
)

func splitPath(t *testing.T) (*graph.Graph, *partition.Assignment) {
	t.Helper()
	g := graph.Path("a", "b", "c", "d")
	a := partition.MustNewAssignment(2)
	for v, p := range map[graph.VertexID]partition.ID{0: 0, 1: 0, 2: 1, 3: 1} {
		if err := a.Set(v, p); err != nil {
			t.Fatal(err)
		}
	}
	return g, a
}

func TestCutEdgesAndFraction(t *testing.T) {
	g, a := splitPath(t)
	if got := CutEdges(g, a); got != 1 {
		t.Fatalf("cut = %d, want 1", got)
	}
	if got := CutFraction(g, a); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("fraction = %v, want 1/3", got)
	}
	empty := graph.New()
	if CutFraction(empty, partition.MustNewAssignment(2)) != 0 {
		t.Fatal("edgeless graph cut fraction should be 0")
	}
}

func TestVertexImbalance(t *testing.T) {
	_, a := splitPath(t)
	if got := VertexImbalance(a); got != 1.0 {
		t.Fatalf("balanced split imbalance = %v, want 1.0", got)
	}
	b := partition.MustNewAssignment(2)
	for i := 0; i < 4; i++ {
		if err := b.Set(graph.VertexID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := VertexImbalance(b); got != 2.0 {
		t.Fatalf("one-sided imbalance = %v, want 2.0", got)
	}
	if VertexImbalance(partition.MustNewAssignment(2)) != 0 {
		t.Fatal("empty assignment imbalance should be 0")
	}
}

func TestEdgeCountsAndImbalance(t *testing.T) {
	g, a := splitPath(t)
	counts := EdgeCounts(g, a)
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("edge counts = %v, want [1 1]", counts)
	}
	if got := EdgeImbalance(g, a); got != 1.0 {
		t.Fatalf("edge imbalance = %v, want 1.0", got)
	}
	// No internal edges.
	b := partition.MustNewAssignment(2)
	for i := 0; i < 4; i++ {
		if err := b.Set(graph.VertexID(i), partition.ID(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := EdgeImbalance(g, b); got != 0 {
		t.Fatalf("all-cut edge imbalance = %v, want 0", got)
	}
}

func TestEvaluateAndString(t *testing.T) {
	g, a := splitPath(t)
	q := Evaluate("test", g, a)
	if q.Partitioner != "test" || q.K != 2 || q.CutEdges != 1 {
		t.Fatalf("quality = %+v", q)
	}
	s := q.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("String too short: %q", s)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Fatal("Ratio(1,2) wrong")
	}
	if Ratio(0, 0) != 0 {
		t.Fatal("Ratio(0,0) should be 0")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("Ratio(1,0) should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %v, want 3", s.P50)
	}
	if s.P95 != 5 {
		t.Fatalf("P95 = %v, want 5", s.P95)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPropertySummarizeBounds(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.N != n {
			return false
		}
		if s.Min > s.P50 || s.P50 > s.Max || s.P95 > s.Max || s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCutFractionBounds(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(20)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddVertex(graph.VertexID(i), "x")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
						return false
					}
				}
			}
		}
		k := 2 + r.Intn(3)
		a := partition.MustNewAssignment(k)
		for i := 0; i < n; i++ {
			if err := a.Set(graph.VertexID(i), partition.ID(r.Intn(k))); err != nil {
				return false
			}
		}
		f := CutFraction(g, a)
		if f < 0 || f > 1 {
			return false
		}
		return VertexImbalance(a) >= 1.0 || a.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
