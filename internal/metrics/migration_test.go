package metrics

import (
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
)

func TestMigration(t *testing.T) {
	prev := partition.MustNewAssignment(2)
	cur := partition.MustNewAssignment(2)
	for i := 0; i < 4; i++ {
		if err := prev.Set(graph.VertexID(i), partition.ID(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	// Two stay, one moves, one is new to cur.
	mustSet := func(a *partition.Assignment, v graph.VertexID, p partition.ID) {
		t.Helper()
		if err := a.Set(v, p); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(cur, 0, 0)
	mustSet(cur, 1, 1)
	mustSet(cur, 2, 1) // moved from 0
	mustSet(cur, 9, 0) // absent from prev -> migrated

	if got := Migration(prev, cur); got != 2 {
		t.Fatalf("Migration = %d, want 2", got)
	}
	if got := MigrationFraction(prev, cur); got != 0.5 {
		t.Fatalf("MigrationFraction = %v, want 0.5", got)
	}
	empty := partition.MustNewAssignment(2)
	if got := MigrationFraction(prev, empty); got != 0 {
		t.Fatalf("MigrationFraction(empty cur) = %v, want 0", got)
	}
	// A nil prev is the cold-start convention: everything counts as
	// migrated, nothing panics.
	if got := Migration(nil, cur); got != cur.Len() {
		t.Fatalf("Migration(nil, cur) = %d, want %d", got, cur.Len())
	}
	if got := MigrationFraction(nil, cur); got != 1 {
		t.Fatalf("MigrationFraction(nil, cur) = %v, want 1", got)
	}
}
