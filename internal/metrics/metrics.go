// Package metrics computes partitioning-quality measures.
//
// The paper distinguishes two qualities: the classic structural measure
// (fraction of edges cut, balance of vertex load) that workload-agnostic
// partitioners optimise, and the workload-sensitive measure LOOM targets —
// the probability that executing a random query from workload Q traverses
// an inter-partition edge. This package provides the structural measures;
// package cluster produces the traversal counts this package summarises.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
)

// CutEdges returns the number of edges of g with endpoints in different
// partitions. Edges with unassigned endpoints are ignored.
func CutEdges(g *graph.Graph, a *partition.Assignment) int {
	return a.CutEdges(g)
}

// CutFraction returns cut edges / total edges (0 for an edgeless graph).
func CutFraction(g *graph.Graph, a *partition.Assignment) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return float64(a.CutEdges(g)) / float64(g.NumEdges())
}

// VertexImbalance returns max partition size / ideal size (n/k); 1.0 is
// perfect balance. Empty assignments return 0.
func VertexImbalance(a *partition.Assignment) float64 {
	if a.Len() == 0 {
		return 0
	}
	ideal := float64(a.Len()) / float64(a.K())
	return float64(a.MaxSize()) / ideal
}

// Migration counts the vertices of cur placed differently than in prev
// (vertices absent from prev count as migrated) — the data-movement cost of
// adopting a restreamed or rebalanced assignment.
func Migration(prev, cur *partition.Assignment) int {
	return partition.Migration(prev, cur)
}

// MigrationFraction is Migration over cur's assigned vertex count (0 for
// an empty cur).
func MigrationFraction(prev, cur *partition.Assignment) float64 {
	if cur.Len() == 0 {
		return 0
	}
	return float64(partition.Migration(prev, cur)) / float64(cur.Len())
}

// EdgeCounts returns per-partition internal edge counts: edges with both
// endpoints inside the partition. Like Assignment.CutEdges it iterates
// adjacency directly instead of materialising and sorting the edge set.
func EdgeCounts(g *graph.Graph, a *partition.Assignment) []int {
	out := make([]int, a.K())
	g.EachEdge(func(u, v graph.VertexID) bool {
		pu, pv := a.Get(u), a.Get(v)
		if pu != partition.Unassigned && pu == pv {
			out[pu]++
		}
		return true
	})
	return out
}

// EdgeImbalance returns max per-partition internal edge count over the
// ideal (total internal / k); 1.0 is perfect. Returns 0 when no internal
// edges exist.
func EdgeImbalance(g *graph.Graph, a *partition.Assignment) float64 {
	counts := EdgeCounts(g, a)
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	ideal := float64(total) / float64(len(counts))
	return float64(max) / ideal
}

// Quality bundles the structural measures of one partitioning.
type Quality struct {
	Partitioner   string
	K             int
	Vertices      int
	Edges         int
	CutEdges      int
	CutFraction   float64
	VertexBalance float64 // max/ideal, 1.0 = perfect
	EdgeBalance   float64
	Sizes         []int
}

// Evaluate computes Quality for assignment a of graph g.
func Evaluate(name string, g *graph.Graph, a *partition.Assignment) Quality {
	return Quality{
		Partitioner:   name,
		K:             a.K(),
		Vertices:      g.NumVertices(),
		Edges:         g.NumEdges(),
		CutEdges:      a.CutEdges(g),
		CutFraction:   CutFraction(g, a),
		VertexBalance: VertexImbalance(a),
		EdgeBalance:   EdgeImbalance(g, a),
		Sizes:         a.Sizes(),
	}
}

// String renders the quality as a report row.
func (q Quality) String() string {
	return fmt.Sprintf("%-12s k=%-3d |V|=%-7d |E|=%-8d cut=%-8d cut%%=%6.2f balV=%5.3f balE=%5.3f",
		q.Partitioner, q.K, q.Vertices, q.Edges, q.CutEdges, 100*q.CutFraction, q.VertexBalance, q.EdgeBalance)
}

// Ratio returns a/b guarding division by zero (returns +Inf for b==0, a>0;
// 0 for both zero).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return a / b
}

// Stats summarises a float64 sample.
type Stats struct {
	N              int
	Mean, Min, Max float64
	P50, P95       float64
	StdDev         float64
}

// Summarize computes Stats over xs (zero Stats for empty input).
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, x := range sorted {
		sum += x
		sq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{
		N:      len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
		StdDev: math.Sqrt(variance),
	}
}

// percentile returns the p-quantile of ascending xs by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
