package metrics

import (
	"math"
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
)

// Ground-truth agreement measures: when a graph has planted communities
// (gen.PlantedPartition), these quantify how much of that structure a
// partitioning recovered, independent of edge counts. Used to interpret
// experiment E5-style comparisons.

// Purity returns the fraction of vertices whose partition's majority
// ground-truth community matches their own: 1.0 means every partition is
// drawn from a single community. truth maps each assigned vertex to its
// community.
func Purity(a *partition.Assignment, truth func(graph.VertexID) int) float64 {
	if a.Len() == 0 {
		return 0
	}
	// counts[partition][community] = vertices
	counts := make(map[partition.ID]map[int]int)
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		m, ok := counts[p]
		if !ok {
			m = make(map[int]int)
			counts[p] = m
		}
		m[truth(v)]++
	})
	majority := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		majority += best
	}
	return float64(majority) / float64(a.Len())
}

// NMI returns the normalized mutual information between the partitioning
// and the ground-truth communities, in [0, 1]: 1.0 means the partitioning
// determines the communities exactly (up to relabeling), 0 means
// independence. Normalisation is by the arithmetic mean of the entropies;
// degenerate clusterings (single class on either side) return 0.
func NMI(a *partition.Assignment, truth func(graph.VertexID) int) float64 {
	n := float64(a.Len())
	if n == 0 {
		return 0
	}
	joint := make(map[[2]int]float64)
	px := make(map[int]float64)
	py := make(map[int]float64)
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		c := truth(v)
		joint[[2]int{int(p), c}]++
		px[int(p)]++
		py[c]++
	})
	// Floating-point addition is not associative, so summing in map
	// iteration order would make NMI differ in the low bits from run to
	// run; iterate every term in sorted key order instead.
	jointKeys := make([][2]int, 0, len(joint))
	for k := range joint {
		jointKeys = append(jointKeys, k)
	}
	sort.Slice(jointKeys, func(i, j int) bool {
		if jointKeys[i][0] != jointKeys[j][0] {
			return jointKeys[i][0] < jointKeys[j][0]
		}
		return jointKeys[i][1] < jointKeys[j][1]
	})
	var mi float64
	for _, k := range jointKeys {
		pxy := joint[k] / n
		mi += pxy * math.Log(pxy/((px[k[0]]/n)*(py[k[1]]/n)))
	}
	hx := sortedEntropy(px, n)
	hy := sortedEntropy(py, n)
	denom := (hx + hy) / 2
	if denom == 0 {
		return 0
	}
	out := mi / denom
	// Clamp tiny negative float error.
	if out < 0 {
		return 0
	}
	if out > 1 {
		return 1
	}
	return out
}

// sortedEntropy returns -sum p*log p over counts/n, accumulating in
// sorted key order so the result is bit-identical across runs.
func sortedEntropy(counts map[int]float64, n float64) float64 {
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var h float64
	for _, k := range keys {
		p := counts[k] / n
		h -= p * math.Log(p)
	}
	return h
}
