package metrics

import (
	"math/rand"
	"testing"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
)

// refCutEdges is the pre-refactor implementation: materialise and sort the
// full edge list, then count cut edges.
func refCutEdges(g *graph.Graph, a *partition.Assignment) int {
	cut := 0
	for _, e := range g.Edges() {
		pu, pv := a.Get(e.U), a.Get(e.V)
		if pu == partition.Unassigned || pv == partition.Unassigned {
			continue
		}
		if pu != pv {
			cut++
		}
	}
	return cut
}

// refEdgeCounts is the pre-refactor per-partition internal edge counter.
func refEdgeCounts(g *graph.Graph, a *partition.Assignment) []int {
	out := make([]int, a.K())
	for _, e := range g.Edges() {
		pu, pv := a.Get(e.U), a.Get(e.V)
		if pu != partition.Unassigned && pu == pv {
			out[pu]++
		}
	}
	return out
}

// randomAssignment partially assigns g's vertices (some left unassigned to
// exercise the skip branch).
func randomAssignment(g *graph.Graph, k int, rng *rand.Rand) *partition.Assignment {
	a := partition.MustNewAssignment(k)
	for _, v := range g.Vertices() {
		if rng.Intn(10) == 0 {
			continue // leave unassigned
		}
		if err := a.Set(v, partition.ID(rng.Intn(k))); err != nil {
			panic(err)
		}
	}
	return a
}

// TestCutEdgesMatchesEdgeListReference proves the adjacency-direct
// CutEdges/EdgeCounts produce exactly the counts of the edge-list-based
// reference on a spread of random graphs and partial assignments.
func TestCutEdgesMatchesEdgeListReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: rng}
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		m := n + rng.Intn(3*n)
		g, err := gen.ErdosRenyi(n, m, lab, rng)
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + rng.Intn(7)
		a := randomAssignment(g, k, rng)

		if got, want := a.CutEdges(g), refCutEdges(g, a); got != want {
			t.Fatalf("trial %d: CutEdges = %d, reference %d", trial, got, want)
		}
		got, want := EdgeCounts(g, a), refEdgeCounts(g, a)
		for p := range want {
			if got[p] != want[p] {
				t.Fatalf("trial %d: EdgeCounts[%d] = %d, reference %d", trial, p, got[p], want[p])
			}
		}
	}
}

// TestCutEdgesAfterVertexRemoval exercises the handle-recycling path: counts
// must stay consistent after vertices are removed and new ones reuse their
// slots.
func TestCutEdgesAfterVertexRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: rng}
	g, err := gen.ErdosRenyi(100, 300, lab, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Vertices() {
		if rng.Intn(4) == 0 {
			g.RemoveVertex(v)
		}
	}
	for i := 0; i < 30; i++ {
		u := graph.VertexID(1000 + i)
		g.AddVertex(u, "a")
		for _, v := range g.Vertices() {
			if v != u && rng.Intn(20) == 0 && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	a := randomAssignment(g, 4, rng)
	if got, want := a.CutEdges(g), refCutEdges(g, a); got != want {
		t.Fatalf("CutEdges after churn = %d, reference %d", got, want)
	}
}
