package partition

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
)

// Regression for the FM-refinement map-order fix: the gain argmax in the
// multilevel refiner used to range over the external-degree map with no
// total tie-break, so equal-gain moves resolved by map iteration order and
// two runs with the same seed could emit different partitionings. The same
// seed must now reproduce the same assignment, vertex for vertex.
func TestMultilevelReplayIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 240
	g := plantedTwoCommunities(r, n, 0.12, 0.02)

	var first *Assignment
	for run := 0; run < 4; run++ {
		m := &Multilevel{K: 4, Seed: 9}
		a, err := m.Partition(g)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = a
			continue
		}
		if a.Len() != first.Len() {
			t.Fatalf("run %d assigned %d vertices, first run assigned %d", run, a.Len(), first.Len())
		}
		for i := 0; i < n; i++ {
			v := graph.VertexID(i)
			if got, want := a.Get(v), first.Get(v); got != want {
				t.Fatalf("run %d: vertex %d on partition %d, first run had %d", run, v, got, want)
			}
		}
	}
}
