package partition

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
)

func TestMultilevelValidation(t *testing.T) {
	m := &Multilevel{K: 0}
	if _, err := m.Partition(graph.Path("a", "b", "c", "d")); err == nil {
		t.Fatal("K=0 should error")
	}
}

func TestMultilevelEmptyGraph(t *testing.T) {
	m := &Multilevel{K: 2}
	a, err := m.Partition(graph.New())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 0 {
		t.Fatal("empty graph should yield empty assignment")
	}
}

func TestMultilevelAssignsAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := plantedTwoCommunities(r, 300, 0.15, 0.01)
	m := &Multilevel{K: 4, Seed: 3}
	a, err := m.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 300 {
		t.Fatalf("assigned %d, want 300", a.Len())
	}
	// Balance within tolerance (allowing coarsening granularity slop).
	ideal := 300.0 / 4
	for p := 0; p < 4; p++ {
		if s := float64(a.Size(ID(p))); s > ideal*1.5 {
			t.Fatalf("partition %d overloaded: %v vs ideal %v", p, s, ideal)
		}
	}
}

func TestMultilevelRecoversPlantedCut(t *testing.T) {
	// Two strong communities, k=2: the offline partitioner should recover
	// a near-optimal cut, far below hash.
	r := rand.New(rand.NewSource(5))
	g := plantedTwoCommunities(r, 200, 0.25, 0.01)
	m := &Multilevel{K: 2, Seed: 1}
	a, err := m.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := NewHash(Config{K: 2, ExpectedVertices: 200})
	ha := PartitionStream(g, g.Vertices(), hash)

	mc, hc := a.CutEdges(g), ha.CutEdges(g)
	t.Logf("cut: multilevel=%d hash=%d total=%d", mc, hc, g.NumEdges())
	if mc*4 > hc {
		t.Fatalf("multilevel cut %d should be well under hash cut %d", mc, hc)
	}
}

func TestMultilevelBeatsLDG(t *testing.T) {
	// Offline should be at least as good as streaming on community graphs.
	r := rand.New(rand.NewSource(8))
	g := plantedTwoCommunities(r, 240, 0.2, 0.02)
	m := &Multilevel{K: 4, Seed: 2}
	ma, err := m.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	ldg, _ := NewLDG(Config{K: 4, ExpectedVertices: 240, Slack: 1.1, Seed: 2})
	order := g.Vertices()
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	la := PartitionStream(g, order, ldg)

	t.Logf("cut: multilevel=%d ldg=%d", ma.CutEdges(g), la.CutEdges(g))
	if ma.CutEdges(g) > la.CutEdges(g) {
		t.Fatalf("multilevel cut %d worse than LDG %d", ma.CutEdges(g), la.CutEdges(g))
	}
}
