package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"loom/internal/graph"
)

// sortedPartitionKeys returns m's keys in ascending order so that
// refinement tie-breaks never depend on map iteration order.
func sortedPartitionKeys(m map[ID]int) []ID {
	keys := make([]ID, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Multilevel is an offline k-way partitioner in the style of METIS (paper
// §3.1): it recursively coarsens the graph by heavy-edge matching,
// partitions the coarsest graph greedily, then projects the partitioning
// back up, refining with greedy boundary moves at every level. It is the
// quality reference the streaming heuristics are compared against in
// experiment E5; it is not a METIS port.
type Multilevel struct {
	// K is the number of partitions.
	K int
	// Imbalance is the tolerated load factor: max partition weight is
	// (1+Imbalance) * total/K. Zero defaults to 0.05.
	Imbalance float64
	// CoarsenTarget stops coarsening once the graph has at most this many
	// vertices. Zero defaults to max(100, 20*K).
	CoarsenTarget int
	// RefinePasses bounds the boundary-refinement sweeps per level. Zero
	// defaults to 4.
	RefinePasses int
	// Seed drives matching and tie-breaking.
	Seed int64
}

// Partition computes a k-way assignment for g.
func (m *Multilevel) Partition(g *graph.Graph) (*Assignment, error) {
	if m.K < 1 {
		return nil, fmt.Errorf("partition: multilevel K=%d < 1", m.K)
	}
	if g.NumVertices() == 0 {
		return MustNewAssignment(m.K), nil
	}
	imbalance := m.Imbalance
	if imbalance == 0 {
		imbalance = 0.05
	}
	target := m.CoarsenTarget
	if target == 0 {
		target = 20 * m.K
		if target < 100 {
			target = 100
		}
	}
	passes := m.RefinePasses
	if passes == 0 {
		passes = 4
	}
	rng := rand.New(rand.NewSource(m.Seed))

	base, ids := fromGraph(g)
	levels := []*wgraph{base}
	var maps [][]int // maps[i][coarseVertex] undefined; we store fine->coarse
	for levels[len(levels)-1].n > target {
		cur := levels[len(levels)-1]
		coarse, fineToCoarse := cur.coarsen(rng)
		if coarse.n >= cur.n {
			break // matching stalled; stop coarsening
		}
		levels = append(levels, coarse)
		maps = append(maps, fineToCoarse)
	}

	// Initial partition at the coarsest level: greedy graph growing, then
	// FM refinement (the coarsest graph is small, so the stronger search
	// is affordable and most of the final quality is decided here).
	coarsest := levels[len(levels)-1]
	part := coarsest.initialPartition(m.K, rng)
	fmLimit := 4 * target
	coarsest.refineFM(part, m.K, imbalance, passes)

	// Project back up, refining at each level: FM while the level is small
	// enough, cheap greedy boundary moves otherwise.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		fineToCoarse := maps[i]
		finePart := make([]ID, fine.n)
		for v := 0; v < fine.n; v++ {
			finePart[v] = part[fineToCoarse[v]]
		}
		part = finePart
		if fine.n <= fmLimit {
			fine.refineFM(part, m.K, imbalance, passes)
		} else {
			fine.refine(part, m.K, imbalance, passes)
		}
	}

	a := MustNewAssignment(m.K)
	for i, v := range ids {
		if err := a.Set(v, part[i]); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// wgraph is the weighted working representation used during coarsening:
// vertices are dense ints, vertex weights count collapsed originals, edge
// weights count collapsed parallel edges.
type wgraph struct {
	n   int
	vw  []int
	adj []map[int]int
}

// fromGraph converts g, returning the wgraph and the dense-index -> original
// vertex ID table.
func fromGraph(g *graph.Graph) (*wgraph, []graph.VertexID) {
	ids := g.Vertices()
	idx := make(map[graph.VertexID]int, len(ids))
	for i, v := range ids {
		idx[v] = i
	}
	w := &wgraph{
		n:   len(ids),
		vw:  make([]int, len(ids)),
		adj: make([]map[int]int, len(ids)),
	}
	for i := range ids {
		w.vw[i] = 1
		w.adj[i] = make(map[int]int)
	}
	for _, e := range g.Edges() {
		u, v := idx[e.U], idx[e.V]
		w.adj[u][v] = 1
		w.adj[v][u] = 1
	}
	return w, ids
}

// coarsen performs one level of heavy-edge matching and contraction,
// returning the coarse graph and the fine->coarse vertex map.
func (w *wgraph) coarsen(rng *rand.Rand) (*wgraph, []int) {
	order := rng.Perm(w.n)
	match := make([]int, w.n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU, bestW := -1, -1
		//loom:orderinvariant argmax with a total tie-break (heaviest edge, then smallest u) picks the same mate in any order
		for u, ew := range w.adj[v] {
			if match[u] != -1 {
				continue
			}
			if ew > bestW || (ew == bestW && u < bestU) {
				bestU, bestW = u, ew
			}
		}
		if bestU == -1 {
			match[v] = v // unmatched: contracts alone
		} else {
			match[v] = bestU
			match[bestU] = v
		}
	}
	fineToCoarse := make([]int, w.n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	next := 0
	for v := 0; v < w.n; v++ {
		if fineToCoarse[v] != -1 {
			continue
		}
		fineToCoarse[v] = next
		if match[v] != v && match[v] != -1 {
			fineToCoarse[match[v]] = next
		}
		next++
	}
	coarse := &wgraph{
		n:   next,
		vw:  make([]int, next),
		adj: make([]map[int]int, next),
	}
	for i := 0; i < next; i++ {
		coarse.adj[i] = make(map[int]int)
	}
	for v := 0; v < w.n; v++ {
		cv := fineToCoarse[v]
		coarse.vw[cv] += w.vw[v]
		for u, ew := range w.adj[v] {
			cu := fineToCoarse[u]
			if cu == cv {
				continue
			}
			if v < u || fineToCoarse[u] != fineToCoarse[v] {
				// Accumulate each fine edge once per direction; halve by
				// only adding from the lower endpoint.
				if v < u {
					coarse.adj[cv][cu] += ew
					coarse.adj[cu][cv] += ew
				}
			}
		}
	}
	return coarse, fineToCoarse
}

// initialPartition seeds a k-way split of the (small) coarsest graph with
// greedy graph growing (GGGP): each partition grows from a seed vertex by
// repeatedly absorbing the unassigned vertex with the strongest
// connectivity to it, until it reaches its weight target. Region growing
// respects cluster structure far better than load-balanced scattering, and
// the boundary refinement then only has to polish.
func (w *wgraph) initialPartition(k int, rng *rand.Rand) []ID {
	part := make([]ID, w.n)
	for i := range part {
		part[i] = Unassigned
	}
	total := 0
	for _, vw := range w.vw {
		total += vw
	}
	target := float64(total) / float64(k)

	unassigned := w.n
	for p := 0; p < k-1 && unassigned > 0; p++ {
		load := 0
		// Seed: the heaviest unassigned vertex (deterministic; rng reserved
		// for future perturbation restarts).
		seed := -1
		for v := 0; v < w.n; v++ {
			if part[v] == Unassigned && (seed == -1 || w.vw[v] > w.vw[seed]) {
				seed = v
			}
		}
		if seed == -1 {
			break
		}
		part[seed] = ID(p)
		load += w.vw[seed]
		unassigned--
		// Grow: gain[v] = total edge weight from v into partition p.
		gain := make(map[int]int)
		addFrontier := func(v int) {
			for u, ew := range w.adj[v] {
				if part[u] == Unassigned {
					gain[u] += ew
				}
			}
		}
		addFrontier(seed)
		for float64(load) < target && unassigned > 0 {
			best, bestGain := -1, -1
			//loom:orderinvariant argmax with a total tie-break (highest gain, then smallest v) is iteration-order-free
			for v, gn := range gain {
				if gn > bestGain || (gn == bestGain && (best == -1 || v < best)) {
					best, bestGain = v, gn
				}
			}
			if best == -1 {
				// Disconnected frontier: restart from a fresh heavy seed.
				for v := 0; v < w.n; v++ {
					if part[v] == Unassigned && (best == -1 || w.vw[v] > w.vw[best]) {
						best = v
					}
				}
				if best == -1 {
					break
				}
			}
			delete(gain, best)
			part[best] = ID(p)
			load += w.vw[best]
			unassigned--
			addFrontier(best)
		}
	}
	// Remainder goes to the last partition.
	for v := 0; v < w.n; v++ {
		if part[v] == Unassigned {
			part[v] = ID(k - 1)
		}
	}
	_ = rng
	return part
}

// refineFM runs Fiduccia–Mattheyses-style passes: repeatedly apply the
// best feasible move — even when its gain is negative — locking each moved
// vertex, then roll back to the prefix of moves with the best cumulative
// gain. Accepting downhill moves lets the search escape the local optima
// that pure greedy refinement gets stuck in; the rollback guarantees each
// pass never makes the cut worse.
func (w *wgraph) refineFM(part []ID, k int, imbalance float64, passes int) {
	loads := make([]int, k)
	total := 0
	for v := 0; v < w.n; v++ {
		loads[part[v]] += w.vw[v]
		total += w.vw[v]
	}
	maxLoad := int(float64(total)/float64(k)*(1+imbalance)) + 1

	type move struct {
		v        int
		from, to ID
	}
	for pass := 0; pass < passes; pass++ {
		locked := make([]bool, w.n)
		var moves []move
		cum, bestCum, bestIdx := 0, 0, -1
		for step := 0; step < w.n; step++ {
			bestV, bestGain := -1, 0
			var bestTo ID
			first := true
			for v := 0; v < w.n; v++ {
				if locked[v] {
					continue
				}
				own := part[v]
				internal := 0
				ext := make(map[ID]int)
				for u, ew := range w.adj[v] {
					if part[u] == own {
						internal += ew
					} else {
						ext[part[u]] += ew
					}
				}
				if len(ext) == 0 {
					continue // interior vertex; moving it only hurts
				}
				// Equal-gain ties used to fall to map iteration order,
				// making whole refinement passes irreproducible; visit
				// candidate partitions in sorted order instead.
				for _, p := range sortedPartitionKeys(ext) {
					if loads[p]+w.vw[v] > maxLoad {
						continue
					}
					gain := ext[p] - internal
					if first || gain > bestGain {
						bestV, bestTo, bestGain = v, p, gain
						first = false
					}
				}
			}
			if bestV == -1 {
				break
			}
			loads[part[bestV]] -= w.vw[bestV]
			loads[bestTo] += w.vw[bestV]
			moves = append(moves, move{v: bestV, from: part[bestV], to: bestTo})
			part[bestV] = bestTo
			locked[bestV] = true
			cum += bestGain
			if cum > bestCum {
				bestCum, bestIdx = cum, len(moves)-1
			}
			// Stop descending once we are far below the best prefix; the
			// tail would be rolled back anyway.
			if cum < bestCum-total/4 {
				break
			}
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			mv := moves[i]
			loads[mv.to] -= w.vw[mv.v]
			loads[mv.from] += w.vw[mv.v]
			part[mv.v] = mv.from
		}
		if bestCum <= 0 {
			break
		}
	}
}

// refine runs bounded greedy boundary-move passes: move a vertex to the
// neighbouring partition with the highest positive cut gain, provided the
// balance constraint allows it.
func (w *wgraph) refine(part []ID, k int, imbalance float64, passes int) {
	loads := make([]int, k)
	total := 0
	for v := 0; v < w.n; v++ {
		loads[part[v]] += w.vw[v]
		total += w.vw[v]
	}
	maxLoad := int(float64(total)/float64(k)*(1+imbalance)) + 1

	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < w.n; v++ {
			own := part[v]
			ext := make(map[ID]int)
			internal := 0
			for u, ew := range w.adj[v] {
				if part[u] == own {
					internal += ew
				} else {
					ext[part[u]] += ew
				}
			}
			bestP, bestGain := own, 0
			// Sorted candidate order keeps equal-gain ties (first
			// strictly-better wins) independent of map iteration order.
			for _, p := range sortedPartitionKeys(ext) {
				gain := ext[p] - internal
				if gain > bestGain && loads[p]+w.vw[v] <= maxLoad {
					bestP, bestGain = p, gain
				}
			}
			if bestP != own {
				loads[own] -= w.vw[v]
				loads[bestP] += w.vw[v]
				part[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
