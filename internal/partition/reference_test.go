package partition

import (
	"math"
	"math/rand"
	"testing"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/stream"
)

// This file keeps a faithful re-implementation of the pre-refactor
// map-backed partitioners and checks, property-test style, that the dense
// slice-backed engine places every vertex of seeded random graphs
// identically — same partitions, same rng consumption, same sizes.

// refAssignment is the old map-backed assignment.
type refAssignment struct {
	k     int
	place map[graph.VertexID]ID
	sizes []int
}

func newRefAssignment(k int) *refAssignment {
	return &refAssignment{k: k, place: make(map[graph.VertexID]ID), sizes: make([]int, k)}
}

func (a *refAssignment) get(v graph.VertexID) ID {
	if p, ok := a.place[v]; ok {
		return p
	}
	return Unassigned
}

func (a *refAssignment) set(v graph.VertexID, p ID) {
	if old, ok := a.place[v]; ok {
		a.sizes[old]--
	}
	a.place[v] = p
	a.sizes[p]++
}

// refLDG is the old map-backed Linear Deterministic Greedy.
type refLDG struct {
	cfg Config
	a   *refAssignment
	rng *rand.Rand
}

func newRefLDG(cfg Config) *refLDG {
	return &refLDG{cfg: cfg, a: newRefAssignment(cfg.K), rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (g *refLDG) weight(size, add int) float64 {
	c := g.cfg.Capacity()
	w := 1 - (float64(size)+float64(add)/2)/c
	if w < 0 {
		return 0
	}
	return w
}

func (g *refLDG) place(v graph.VertexID, neighbors []graph.VertexID) ID {
	inGroup := map[graph.VertexID]struct{}{v: {}}
	links := make([]float64, g.cfg.K)
	for _, n := range neighbors {
		if _, self := inGroup[n]; self {
			continue
		}
		if p := g.a.get(n); p != Unassigned {
			links[p]++
		}
	}
	bestScore := math.Inf(-1)
	var best []ID
	for p := 0; p < g.cfg.K; p++ {
		score := links[p] * g.weight(g.a.sizes[p], 1)
		if score > bestScore {
			bestScore = score
			best = append(best[:0], ID(p))
		} else if score == bestScore {
			best = append(best, ID(p))
		}
	}
	var chosen ID
	if len(best) == 1 {
		chosen = best[0]
	} else {
		minSize := math.MaxInt
		var leastLoaded []ID
		for _, p := range best {
			s := g.a.sizes[p]
			if s < minSize {
				minSize = s
				leastLoaded = append(leastLoaded[:0], p)
			} else if s == minSize {
				leastLoaded = append(leastLoaded, p)
			}
		}
		chosen = leastLoaded[g.rng.Intn(len(leastLoaded))]
	}
	g.a.set(v, chosen)
	return chosen
}

// refFennel is the old map-backed Fennel (with the fixed saturated-fallback
// tie-breaking, which predates the dense refactor).
type refFennel struct {
	cfg   Config
	alpha float64
	gamma float64
	a     *refAssignment
	rng   *rand.Rand
}

func newRefFennel(cfg FennelConfig) *refFennel {
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		n := float64(cfg.ExpectedVertices)
		alpha = math.Sqrt(float64(cfg.K)) * float64(cfg.ExpectedEdges) / math.Pow(n, 1.5)
	}
	return &refFennel{
		cfg:   cfg.Config,
		alpha: alpha,
		gamma: gamma,
		a:     newRefAssignment(cfg.K),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (f *refFennel) place(v graph.VertexID, neighbors []graph.VertexID) ID {
	links := make([]float64, f.cfg.K)
	for _, n := range neighbors {
		if p := f.a.get(n); p != Unassigned && int(p) < f.cfg.K {
			links[p]++
		}
	}
	cap := f.cfg.Capacity()
	bestScore := math.Inf(-1)
	var best []ID
	for p := 0; p < f.cfg.K; p++ {
		size := float64(f.a.sizes[p])
		if size+1 > cap && f.cfg.Slack > 0 {
			continue
		}
		score := links[p] - f.alpha*f.gamma*math.Pow(size, f.gamma-1)
		if score > bestScore {
			bestScore = score
			best = append(best[:0], ID(p))
		} else if score == bestScore {
			best = append(best, ID(p))
		}
	}
	if len(best) == 0 {
		minSize := math.MaxInt
		for p := 0; p < f.cfg.K; p++ {
			s := f.a.sizes[p]
			if s < minSize {
				minSize = s
				best = append(best[:0], ID(p))
			} else if s == minSize {
				best = append(best, ID(p))
			}
		}
	}
	p := best[f.rng.Intn(len(best))]
	f.a.set(v, p)
	return p
}

// referenceTrialGraph generates one random graph + stream order per trial.
func referenceTrialGraph(t *testing.T, trial int) (*graph.Graph, []graph.VertexID, int64) {
	t.Helper()
	seed := int64(1000 + trial)
	rng := rand.New(rand.NewSource(seed))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: rng}
	var g *graph.Graph
	var err error
	switch trial % 3 {
	case 0:
		g, err = gen.BarabasiAlbert(150+rng.Intn(150), 2, lab, rng)
	case 1:
		g, err = gen.ErdosRenyi(150+rng.Intn(150), 600, lab, rng)
	default:
		g, err = gen.PlantedPartitionDegrees(120+rng.Intn(120), 4, 8, 2, lab, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	order, err := stream.VertexOrder(g, stream.RandomOrder, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, order, seed
}

// TestDenseLDGMatchesMapReference streams seeded random graphs through the
// dense LDG and the map-backed reference and requires identical placements.
func TestDenseLDGMatchesMapReference(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		g, order, seed := referenceTrialGraph(t, trial)
		cfg := Config{K: 2 + trial%7, ExpectedVertices: g.NumVertices(), Slack: 1.0 + float64(trial%3)*0.1, Seed: seed}
		ldg, err := NewLDG(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefLDG(cfg)
		for _, v := range order {
			ns := g.Neighbors(v)
			got, want := ldg.Place(v, ns), ref.place(v, ns)
			if got != want {
				t.Fatalf("trial %d: LDG diverged at vertex %d: dense %d, reference %d", trial, v, got, want)
			}
		}
		for p := 0; p < cfg.K; p++ {
			if ldg.Assignment().Size(ID(p)) != ref.a.sizes[p] {
				t.Fatalf("trial %d: partition %d size %d, reference %d", trial, p, ldg.Assignment().Size(ID(p)), ref.a.sizes[p])
			}
		}
	}
}

// TestDenseFennelMatchesMapReference is the Fennel equivalent, including
// saturated streams (Slack 1.0) that hit the fallback path.
func TestDenseFennelMatchesMapReference(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		g, order, seed := referenceTrialGraph(t, trial)
		fcfg := FennelConfig{
			Config:        Config{K: 2 + trial%7, ExpectedVertices: g.NumVertices(), Slack: 1.0 + float64(trial%2)*0.15, Seed: seed},
			ExpectedEdges: g.NumEdges(),
		}
		fennel, err := NewFennel(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefFennel(fcfg)
		for _, v := range order {
			ns := g.Neighbors(v)
			got, want := fennel.Place(v, ns), ref.place(v, ns)
			if got != want {
				t.Fatalf("trial %d: Fennel diverged at vertex %d: dense %d, reference %d", trial, v, got, want)
			}
		}
	}
}

// TestDenseGroupPlacementMatchesReference checks PlaceGroup against a
// map-backed group scoring re-implementation on random groups.
func TestDenseGroupPlacementMatchesReference(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g, order, seed := referenceTrialGraph(t, trial)
		cfg := Config{K: 4, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: seed}
		ldg, err := NewLDG(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefLDG(cfg)
		rng := rand.New(rand.NewSource(seed + 5))
		for i := 0; i < len(order); {
			gs := 1 + rng.Intn(4)
			if i+gs > len(order) {
				gs = len(order) - i
			}
			group := order[i : i+gs]
			i += gs
			neighbors := make(map[graph.VertexID][]graph.VertexID, gs)
			for _, v := range group {
				neighbors[v] = g.Neighbors(v)
			}
			got := ldg.PlaceGroup(group, neighbors)
			want := refPlaceGroup(ref, group, neighbors)
			if got != want {
				t.Fatalf("trial %d: PlaceGroup diverged at group %v: dense %d, reference %d", trial, group, got, want)
			}
		}
	}
}

// refPlaceGroup is the old map-backed group scoring (paper footnote 1).
func refPlaceGroup(g *refLDG, group []graph.VertexID, neighbors map[graph.VertexID][]graph.VertexID) ID {
	inGroup := make(map[graph.VertexID]struct{}, len(group))
	for _, v := range group {
		inGroup[v] = struct{}{}
	}
	links := make([]float64, g.cfg.K)
	for _, v := range group {
		for _, n := range neighbors[v] {
			if _, self := inGroup[n]; self {
				continue
			}
			if p := g.a.get(n); p != Unassigned {
				links[p]++
			}
		}
	}
	add := len(group)
	bestScore := math.Inf(-1)
	var best []ID
	for p := 0; p < g.cfg.K; p++ {
		score := links[p] * g.weight(g.a.sizes[p], add)
		if score > bestScore {
			bestScore = score
			best = append(best[:0], ID(p))
		} else if score == bestScore {
			best = append(best, ID(p))
		}
	}
	var chosen ID
	if len(best) == 1 {
		chosen = best[0]
	} else {
		minSize := math.MaxInt
		var leastLoaded []ID
		for _, p := range best {
			s := g.a.sizes[p]
			if s < minSize {
				minSize = s
				leastLoaded = append(leastLoaded[:0], p)
			} else if s == minSize {
				leastLoaded = append(leastLoaded, p)
			}
		}
		chosen = leastLoaded[g.rng.Intn(len(leastLoaded))]
	}
	for _, v := range group {
		g.a.set(v, chosen)
	}
	return chosen
}
