package partition

import (
	"strings"
	"testing"

	"loom/internal/graph"
)

func TestAssignmentCodecRoundTrip(t *testing.T) {
	a := MustNewAssignment(4)
	for i, p := range []ID{0, 3, 1, 1, 2, 0} {
		if err := a.Set(graph.VertexID(i*7-3), p); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := WriteAssignment(&sb, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadAssignment(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.K() != a.K() || got.Len() != a.Len() {
		t.Fatalf("k=%d len=%d, want k=%d len=%d", got.K(), got.Len(), a.K(), a.Len())
	}
	a.EachVertex(func(v graph.VertexID, p ID) {
		if got.Get(v) != p {
			t.Fatalf("Get(%d) = %d, want %d", v, got.Get(v), p)
		}
	})

	// A second encode must be byte-identical (sorted, deterministic).
	var sb2 strings.Builder
	if err := WriteAssignment(&sb2, got); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("codec not deterministic:\n%q\n%q", sb.String(), sb2.String())
	}
}

func TestReadAssignmentInfersK(t *testing.T) {
	a, err := ReadAssignment(strings.NewReader("p 1 0\np 2 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != 6 {
		t.Fatalf("inferred k = %d, want 6", a.K())
	}
}

func TestReadAssignmentEmpty(t *testing.T) {
	a, err := ReadAssignment(strings.NewReader("# just a comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 0 || a.K() != 1 {
		t.Fatalf("empty read: len=%d k=%d", a.Len(), a.K())
	}
}

func TestReadAssignmentErrors(t *testing.T) {
	for _, bad := range []string{
		"p 1\n",          // missing partition
		"q 1 2\n",        // unknown record
		"p x 2\n",        // bad vertex
		"p 1 y\n",        // bad partition
		"p 1 -2\n",       // negative partition
		"# k=zz\np 0 0p", // bad header
		"# k=2\np 0 7\n", // partition beyond header k
	} {
		if _, err := ReadAssignment(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadAssignment(%q) succeeded, want error", bad)
		}
	}
}
