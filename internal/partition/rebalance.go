package partition

import (
	"fmt"
	"math"
	"sort"

	"loom/internal/graph"
)

// Rebalancer performs bounded incremental repartitioning: when growth has
// drifted an assignment out of balance, it moves a small number of
// boundary vertices from overloaded to underloaded partitions, preferring
// moves that do not worsen (ideally improve) the edge cut. This is the
// lightweight alternative to the "expensive full repartitioning" the paper
// holds against offline partitioners (§3.1): placement decisions stay
// incremental; only the drift is repaired.
type Rebalancer struct {
	// MaxLoadFactor is the tolerated max/ideal vertex ratio before
	// rebalancing triggers (e.g. 1.1). Zero defaults to 1.1.
	MaxLoadFactor float64
	// MaxMoves bounds the vertices moved per Rebalance call. Zero
	// defaults to |V|/20.
	MaxMoves int
}

// Result reports what a Rebalance call did.
type RebalanceResult struct {
	Moves     int
	CutBefore int
	CutAfter  int
}

// Rebalance mutates a in place, returning the moves performed. The graph
// supplies adjacency for gain scoring; vertices absent from a are ignored.
func (r *Rebalancer) Rebalance(g *graph.Graph, a *Assignment) RebalanceResult {
	maxLoad := r.MaxLoadFactor
	if maxLoad == 0 {
		maxLoad = 1.1
	}
	maxMoves := r.MaxMoves
	if maxMoves == 0 {
		maxMoves = a.Len() / 20
		if maxMoves < 1 {
			maxMoves = 1
		}
	}
	res := RebalanceResult{CutBefore: a.CutEdges(g)}
	ideal := float64(a.Len()) / float64(a.K())
	cap := int(math.Ceil(ideal * maxLoad))

	for res.Moves < maxMoves {
		// Most loaded partition above cap.
		src := ID(-1)
		for p := 0; p < a.K(); p++ {
			if a.Size(ID(p)) > cap && (src == -1 || a.Size(ID(p)) > a.Size(src)) {
				src = ID(p)
			}
		}
		if src == -1 {
			break // balanced
		}
		v, dst, ok := r.bestMove(g, a, src, cap)
		if !ok {
			break // no feasible move
		}
		if err := a.Set(v, dst); err != nil {
			break
		}
		res.Moves++
	}
	res.CutAfter = a.CutEdges(g)
	return res
}

// bestMove picks the vertex of src whose move to an under-cap partition
// yields the best cut gain (ties: smaller destination, then smaller vertex
// ID for determinism).
func (r *Rebalancer) bestMove(g *graph.Graph, a *Assignment, src ID, cap int) (graph.VertexID, ID, bool) {
	// Collect src's vertices deterministically.
	var members []graph.VertexID
	a.EachVertex(func(v graph.VertexID, p ID) {
		if p == src {
			members = append(members, v)
		}
	})
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	bestGain := -1 << 30
	var bestV graph.VertexID
	bestDst := ID(-1)
	for _, v := range members {
		// Edges into each partition.
		links := make(map[ID]int)
		internal := 0
		g.EachNeighbor(v, func(u graph.VertexID) bool {
			p := a.Get(u)
			if p == src {
				internal++
			} else if p != Unassigned {
				links[p]++
			}
			return true
		})
		for dst := 0; dst < a.K(); dst++ {
			d := ID(dst)
			if d == src || a.Size(d) >= cap {
				continue
			}
			gain := links[d] - internal
			if gain > bestGain || (gain == bestGain && (bestDst == -1 || d < bestDst)) {
				bestGain = gain
				bestV = v
				bestDst = d
			}
		}
	}
	if bestDst == -1 {
		return 0, 0, false
	}
	return bestV, bestDst, true
}

// String implements fmt.Stringer.
func (r RebalanceResult) String() string {
	return fmt.Sprintf("rebalance{moves=%d cut %d -> %d}", r.Moves, r.CutBefore, r.CutAfter)
}
