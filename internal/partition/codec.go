package partition

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"loom/internal/graph"
)

// The assignment text codec serialises a placement as one record per line:
//
//	# k=<partitions>
//	p <vertex> <partition>
//
// Vertices are emitted ascending, so output is deterministic and diffable.
// It is the on-disk interchange of `loom partition -out`, `loom evaluate
// -assign` and the serving checkpoint (internal/checkpoint).

// WriteAssignment serialises a to w in the assignment text format.
func WriteAssignment(w io.Writer, a *Assignment) error {
	bw := bufio.NewWriter(w)
	type pair struct {
		v graph.VertexID
		p ID
	}
	pairs := make([]pair, 0, a.Len())
	a.EachVertex(func(v graph.VertexID, p ID) {
		pairs = append(pairs, pair{v, p})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	if _, err := fmt.Fprintf(bw, "# k=%d\n", a.K()); err != nil {
		return err
	}
	for _, pr := range pairs {
		if _, err := fmt.Fprintf(bw, "p %d %d\n", pr.v, pr.p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssignment parses the assignment text format. A `# k=<n>` header
// fixes the partition count; without one, k is inferred as the highest
// partition index seen plus one. Other comment lines and blank lines are
// ignored. Malformed lines yield an error naming the offending line.
func ReadAssignment(r io.Reader) (*Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	k := 0
	type rec struct {
		v graph.VertexID
		p ID
	}
	var recs []rec
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# k=") {
			n, err := strconv.Atoi(strings.TrimPrefix(line, "# k="))
			if err != nil {
				return nil, fmt.Errorf("partition: line %d: bad k header %q: %v", lineNo, line, err)
			}
			k = n
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "p" {
			return nil, fmt.Errorf("partition: line %d: want 'p <vertex> <partition>', got %q", lineNo, line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		p, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: bad partition id %q: %v", lineNo, fields[2], err)
		}
		if p < 0 {
			return nil, fmt.Errorf("partition: line %d: negative partition id %d", lineNo, p)
		}
		recs = append(recs, rec{graph.VertexID(v), ID(p)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if k == 0 {
		for _, r := range recs {
			if int(r.p)+1 > k {
				k = int(r.p) + 1
			}
		}
	}
	if k == 0 {
		k = 1 // an empty assignment still needs a valid k
	}
	a, err := NewAssignment(k)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := a.Set(r.v, r.p); err != nil {
			return nil, err
		}
	}
	return a, nil
}
