package partition

// Restreaming (multi-pass streaming partitioning): re-run a streaming
// heuristic over an already-partitioned graph with the previous pass's
// assignment visible to scoring. On pass >= 2 a vertex's neighbours that
// have not yet been re-placed score with their prior placement, and the
// vertex's own prior partition earns a self-affinity bonus, so placements
// stabilise while the cut drops toward the offline reference. The
// prioritized variant additionally reorders the stream between passes by a
// per-vertex priority computed from the previous assignment.
//
// References: Nishimura & Ugander, "Restreaming graph partitioning" (KDD
// 2013); Awadelkarim & Ugander, "Prioritized restreaming algorithms for
// balanced graph partitioning" (KDD 2020); Le Merrer et al.,
// "(Re)partitioning for stream-enabled computation".

import (
	"fmt"
	"sort"

	"loom/internal/graph"
)

// Priority names the between-pass stream reordering of prioritized
// restreaming.
type Priority int

const (
	// PriorityNone keeps the base vertex order on every pass.
	PriorityNone Priority = iota
	// PriorityDegree orders vertices by degree, descending: hubs are
	// re-placed first, while most of their neighbourhood still carries
	// prior-pass placements.
	PriorityDegree
	// PriorityAmbivalence orders vertices by the gap between their best and
	// second-best per-partition link counts under the previous assignment,
	// descending: decisively placed vertices first, ambivalent ones last,
	// when more of the stream has been re-placed.
	PriorityAmbivalence
	// PriorityCutDegree orders vertices by the number of neighbours placed
	// in a different partition under the previous assignment, descending:
	// the vertices responsible for the most cut edges get the first chance
	// to move.
	PriorityCutDegree
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityNone:
		return "none"
	case PriorityDegree:
		return "degree"
	case PriorityAmbivalence:
		return "ambivalence"
	case PriorityCutDegree:
		return "cutdegree"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority parses the String form of a Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "none", "":
		return PriorityNone, nil
	case "degree":
		return PriorityDegree, nil
	case "ambivalence":
		return PriorityAmbivalence, nil
	case "cutdegree":
		return PriorityCutDegree, nil
	}
	return 0, fmt.Errorf("partition: unknown restream priority %q", s)
}

// RestreamConfig parameterises a multi-pass restream.
type RestreamConfig struct {
	// Passes is the total number of streaming passes (>= 1). With a prior
	// assignment supplied, every pass restreams; without one, the first
	// pass is a plain cold-start stream.
	Passes int
	// Priority reorders the stream before each pass that has a previous
	// assignment to read.
	Priority Priority
	// SelfWeight is the link-count bonus a vertex's own prior partition
	// receives; zero defaults to 1.
	SelfWeight float64
}

func (c RestreamConfig) validate() error {
	if c.Passes < 1 {
		return fmt.Errorf("partition: restream Passes=%d < 1", c.Passes)
	}
	if c.SelfWeight < 0 {
		return fmt.Errorf("partition: restream SelfWeight=%v < 0", c.SelfWeight)
	}
	return nil
}

// PassStats measures one restreaming pass.
type PassStats struct {
	// Pass is 1-based.
	Pass int
	// Priority is the ordering the pass actually used (PriorityNone on a
	// cold-start first pass).
	Priority Priority
	// CutEdges / CutFraction are the structural cut after the pass.
	CutEdges    int
	CutFraction float64
	// Imbalance is max partition size over ideal (1.0 = perfect).
	Imbalance float64
	// Migrated counts vertices placed differently than in the previous
	// assignment (0 when there was none); MigrationFraction is Migrated
	// over the number of assigned vertices.
	Migrated          int
	MigrationFraction float64
}

// RestreamResult is the outcome of a multi-pass restream.
type RestreamResult struct {
	// Final is the assignment after the last pass.
	Final *Assignment
	// Passes holds one PassStats per pass, in order.
	Passes []PassStats
}

// PassFunc runs one streaming pass over g in the given vertex order, seeded
// with the previous pass's assignment (nil on a cold start), and returns
// the new assignment. pass is 1-based.
type PassFunc func(pass int, order []graph.VertexID, prev *Assignment) (*Assignment, error)

// Restream drives pass cfg.Passes times over g, reordering the stream by
// cfg.Priority between passes and collecting per-pass statistics. base is
// the cold-start vertex order (defaults to g.Vertices() when empty); prev
// may be nil.
func Restream(g *graph.Graph, base []graph.VertexID, prev *Assignment, cfg RestreamConfig, pass PassFunc) (*RestreamResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(base) == 0 {
		base = g.Vertices()
	}
	res := &RestreamResult{}
	for i := 1; i <= cfg.Passes; i++ {
		order := base
		used := PriorityNone
		if prev != nil && cfg.Priority != PriorityNone {
			order = PriorityOrder(g, prev, cfg.Priority, base)
			used = cfg.Priority
		}
		cur, err := pass(i, order, prev)
		if err != nil {
			return nil, fmt.Errorf("partition: restream pass %d: %w", i, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("partition: restream pass %d returned nil assignment", i)
		}
		res.Passes = append(res.Passes, passStats(g, i, used, prev, cur))
		prev = cur
	}
	res.Final = prev
	return res, nil
}

// passStats computes the per-pass measures without importing metrics (which
// imports this package).
func passStats(g *graph.Graph, pass int, used Priority, prev, cur *Assignment) PassStats {
	st := PassStats{Pass: pass, Priority: used, CutEdges: cur.CutEdges(g)}
	if m := g.NumEdges(); m > 0 {
		st.CutFraction = float64(st.CutEdges) / float64(m)
	}
	if n := cur.Len(); n > 0 {
		st.Imbalance = float64(cur.MaxSize()) / (float64(n) / float64(cur.K()))
	}
	if prev != nil {
		st.Migrated = Migration(prev, cur)
		if n := cur.Len(); n > 0 {
			st.MigrationFraction = float64(st.Migrated) / float64(n)
		}
	}
	return st
}

// Migration counts the vertices of cur whose placement differs from prev
// (vertices absent from prev count as migrated; a nil prev counts every
// vertex, matching the cold-start convention of the restream APIs).
func Migration(prev, cur *Assignment) int {
	if prev == nil {
		return cur.Len()
	}
	moved := 0
	cur.EachVertex(func(v graph.VertexID, p ID) {
		if prev.Get(v) != p {
			moved++
		}
	})
	return moved
}

// PriorityOrder returns base reordered for the next restreaming pass:
// vertices sorted by the chosen priority under prev, descending, stable
// with respect to base so equal-priority vertices keep their relative
// order (deterministic for a deterministic base).
func PriorityOrder(g *graph.Graph, prev *Assignment, pri Priority, base []graph.VertexID) []graph.VertexID {
	out := append([]graph.VertexID(nil), base...)
	if pri == PriorityNone {
		return out
	}
	score := make(map[graph.VertexID]float64, len(out))
	for _, v := range out {
		switch pri {
		case PriorityDegree:
			score[v] = float64(g.Degree(v))
		case PriorityAmbivalence:
			score[v] = decisiveness(g, prev, v)
		case PriorityCutDegree:
			score[v] = float64(cutDegree(g, prev, v))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return score[out[i]] > score[out[j]] })
	return out
}

// decisiveness is the gap between the best and second-best per-partition
// neighbour counts of v under prev — the negation of Awadelkarim &
// Ugander's ambivalence. Isolated vertices score 0.
func decisiveness(g *graph.Graph, prev *Assignment, v graph.VertexID) float64 {
	links := make([]int, prev.K())
	g.EachNeighbor(v, func(n graph.VertexID) bool {
		if p := prev.Get(n); p != Unassigned {
			links[p]++
		}
		return true
	})
	best, second := 0, 0
	for _, l := range links {
		if l > best {
			best, second = l, best
		} else if l > second {
			second = l
		}
	}
	return float64(best - second)
}

// cutDegree counts v's neighbours placed in a different partition under
// prev.
func cutDegree(g *graph.Graph, prev *Assignment, v graph.VertexID) int {
	pv := prev.Get(v)
	cut := 0
	g.EachNeighbor(v, func(n graph.VertexID) bool {
		if p := prev.Get(n); p != Unassigned && p != pv {
			cut++
		}
		return true
	})
	return cut
}

// Restreamer re-runs a Streaming heuristic over a previously partitioned
// graph for multiple passes. The heuristic must implement PriorAware for
// every pass that reads a previous assignment.
type Restreamer struct {
	// Config carries pass count, priority and self-affinity weight.
	Config RestreamConfig
	// NewPass returns a fresh heuristic for the given 1-based pass, so
	// capacity accounting restarts from empty each time.
	NewPass func(pass int) (Streaming, error)
}

// Run restreams g: base is the cold-start order, prev the assignment to
// improve (nil to start from scratch).
func (r *Restreamer) Run(g *graph.Graph, base []graph.VertexID, prev *Assignment) (*RestreamResult, error) {
	if r.NewPass == nil {
		return nil, fmt.Errorf("partition: Restreamer.NewPass is nil")
	}
	if prev != nil || r.Config.Passes > 1 {
		// Fail before the first streaming pass, not after it: a heuristic
		// that cannot read a prior would otherwise burn a full cold-start
		// pass before the type assertion fires on pass 2.
		probe, err := r.NewPass(1)
		if err != nil {
			return nil, err
		}
		if _, ok := probe.(PriorAware); !ok {
			return nil, fmt.Errorf("partition: %s cannot restream: not PriorAware", probe.Name())
		}
	}
	return Restream(g, base, prev, r.Config, func(pass int, order []graph.VertexID, prevA *Assignment) (*Assignment, error) {
		s, err := r.NewPass(pass)
		if err != nil {
			return nil, err
		}
		if prevA != nil {
			pa, ok := s.(PriorAware)
			if !ok {
				return nil, fmt.Errorf("%s cannot restream: not PriorAware", s.Name())
			}
			pa.SetPrior(prevA, r.Config.SelfWeight)
		}
		// Place never retains the neighbour slice, so one scratch buffer
		// serves the whole pass (this is the regime where per-vertex
		// allocation is multiplied by the pass count).
		var scratch []graph.VertexID
		for _, v := range order {
			scratch = g.AppendNeighbors(scratch[:0], v)
			s.Place(v, scratch)
		}
		return s.Assignment(), nil
	})
}
