package partition

import (
	"testing"

	"loom/internal/graph"
)

// starPlacements streams a 4-vertex star (hub first) through Fennel with a
// negligible balance penalty, so only the hard-capacity guard can stop the
// leaves from piling onto the hub's partition.
func starPlacements(t *testing.T, slack float64) *Assignment {
	t.Helper()
	f, err := NewFennel(FennelConfig{
		Config: Config{K: 2, ExpectedVertices: 4, Slack: slack, Seed: 1},
		Alpha:  1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := graph.VertexID(0)
	f.Place(hub, nil)
	for i := 1; i <= 3; i++ {
		f.Place(graph.VertexID(i), []graph.VertexID{hub})
	}
	return f.Assignment()
}

// TestFennelExplicitSlackOneEnforcesCapacity is the regression test for the
// saturation guard: Slack == 1.0 is an explicit capacity request (C = n/k)
// and must be enforced, not silently ignored.
func TestFennelExplicitSlackOneEnforcesCapacity(t *testing.T) {
	a := starPlacements(t, 1.0)
	if got := a.MaxSize(); got > 2 {
		t.Fatalf("slack 1.0: max partition size %d exceeds capacity 2", got)
	}
}

// TestFennelDefaultSlackIsPenaltyOnly pins the pre-existing behaviour: with
// Slack zero (unset) Fennel relies on the balance penalty alone, so a
// negligible alpha lets the whole star share one partition.
func TestFennelDefaultSlackIsPenaltyOnly(t *testing.T) {
	a := starPlacements(t, 0)
	if got := a.MaxSize(); got != 4 {
		t.Fatalf("slack 0: max partition size %d, want 4 (no hard cap)", got)
	}
}
