package partition

import (
	"math/rand"
	"strings"
	"testing"

	"loom/internal/graph"
)

func TestRebalanceNoOpWhenBalanced(t *testing.T) {
	g := graph.Path("a", "b", "c", "d")
	a := MustNewAssignment(2)
	for i, p := range []ID{0, 0, 1, 1} {
		mustSet(t, a, graph.VertexID(i), p)
	}
	r := &Rebalancer{}
	res := r.Rebalance(g, a)
	if res.Moves != 0 {
		t.Fatalf("balanced assignment should not move, got %d", res.Moves)
	}
	if res.CutBefore != res.CutAfter {
		t.Fatal("cut must be unchanged on no-op")
	}
}

func TestRebalanceRestoresBalance(t *testing.T) {
	// 20 vertices all on partition 0 of 2: heavily unbalanced.
	r := rand.New(rand.NewSource(4))
	g := plantedTwoCommunities(r, 20, 0.4, 0.05)
	a := MustNewAssignment(2)
	for _, v := range g.Vertices() {
		mustSet(t, a, v, 0)
	}
	rb := &Rebalancer{MaxLoadFactor: 1.1, MaxMoves: 100}
	res := rb.Rebalance(g, a)
	if res.Moves == 0 {
		t.Fatal("unbalanced assignment should trigger moves")
	}
	ideal := 10.0
	if float64(a.MaxSize()) > ideal*1.1+1 {
		t.Fatalf("still unbalanced: max=%d", a.MaxSize())
	}
	if !strings.Contains(res.String(), "moves=") {
		t.Fatalf("String = %q", res.String())
	}
}

func TestRebalancePrefersCutFriendlyMoves(t *testing.T) {
	// Two triangles joined by one bridge; all six vertices start on
	// partition 0. Rebalancing to 2 partitions should move one whole
	// triangle's worth of vertices, ending with only the bridge cut.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddVertex(graph.VertexID(i), "x")
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := MustNewAssignment(2)
	for i := 0; i < 6; i++ {
		mustSet(t, a, graph.VertexID(i), 0)
	}
	rb := &Rebalancer{MaxLoadFactor: 1.0, MaxMoves: 10}
	res := rb.Rebalance(g, a)
	if a.Size(0) != 3 || a.Size(1) != 3 {
		t.Fatalf("sizes = %v, want [3 3]", a.Sizes())
	}
	if res.CutAfter > 2 {
		t.Fatalf("cut after rebalance = %d; greedy moves should keep a triangle together", res.CutAfter)
	}
}

func TestRebalanceRespectsMaxMoves(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := plantedTwoCommunities(r, 40, 0.3, 0.05)
	a := MustNewAssignment(2)
	for _, v := range g.Vertices() {
		mustSet(t, a, v, 0)
	}
	rb := &Rebalancer{MaxLoadFactor: 1.0, MaxMoves: 3}
	res := rb.Rebalance(g, a)
	if res.Moves > 3 {
		t.Fatalf("moves = %d, want <= 3", res.Moves)
	}
}

func TestRebalanceDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := plantedTwoCommunities(r, 30, 0.3, 0.05)
	a := MustNewAssignment(3)
	for _, v := range g.Vertices() {
		mustSet(t, a, v, 0)
	}
	rb := &Rebalancer{} // defaults: factor 1.1, moves |V|/20
	res := rb.Rebalance(g, a)
	if res.Moves == 0 {
		t.Fatal("defaults should still move something")
	}
	if res.Moves > 30/20+1 {
		t.Fatalf("default move bound exceeded: %d", res.Moves)
	}
}
