package partition

import (
	"fmt"
	"math"
	"math/rand"

	"loom/internal/graph"
)

// Hash is the workload- and structure-agnostic default of distributed graph
// systems: partition = id mod k. Perfectly balanced in expectation, blind
// to locality.
type Hash struct {
	cfg Config
	a   *Assignment
}

// NewHash returns a Hash partitioner.
func NewHash(cfg Config) (*Hash, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Hash{cfg: cfg, a: MustNewAssignment(cfg.K)}, nil
}

// Place implements Streaming.
func (h *Hash) Place(v graph.VertexID, _ []graph.VertexID) ID {
	// splitmix64-style finalisation: multiplication alone leaves the low
	// bits of sequential IDs structured (an odd-constant multiply is a
	// bijection on the low k bits), which would correlate the partition
	// with any ID-periodic property of the graph. The xor-shift cascade
	// mixes high bits down before reduction.
	x := uint64(v) + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	p := ID(x % uint64(h.cfg.K))
	_ = h.a.Set(v, p)
	return p
}

// Assignment implements Streaming.
func (h *Hash) Assignment() *Assignment { return h.a }

// Name implements Streaming.
func (h *Hash) Name() string { return "hash" }

// Balanced places each vertex on the currently least-loaded partition,
// breaking ties uniformly at random. It ignores structure entirely.
type Balanced struct {
	cfg  Config
	a    *Assignment
	rng  *rand.Rand
	best []ID // scratch, reused across Place calls
}

// NewBalanced returns a Balanced partitioner.
func NewBalanced(cfg Config) (*Balanced, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Balanced{
		cfg:  cfg,
		a:    MustNewAssignment(cfg.K),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		best: make([]ID, 0, cfg.K),
	}, nil
}

// Place implements Streaming.
func (b *Balanced) Place(v graph.VertexID, _ []graph.VertexID) ID {
	best := append(b.best[:0], 0)
	for p := 1; p < b.cfg.K; p++ {
		switch {
		case b.a.Size(ID(p)) < b.a.Size(best[0]):
			best = append(best[:0], ID(p))
		case b.a.Size(ID(p)) == b.a.Size(best[0]):
			best = append(best, ID(p))
		}
	}
	b.best = best
	p := best[b.rng.Intn(len(best))]
	_ = b.a.Set(v, p)
	return p
}

// Assignment implements Streaming.
func (b *Balanced) Assignment() *Assignment { return b.a }

// Name implements Streaming.
func (b *Balanced) Name() string { return "balanced" }

// Chunking fills partitions sequentially: the first C vertices go to
// partition 0, the next C to partition 1, and so on. On temporally ordered
// streams of grown graphs this preserves accidental locality; on random
// orders it is as blind as hashing.
type Chunking struct {
	cfg   Config
	a     *Assignment
	next  int
	chunk int // ceil(Capacity()), hoisted out of the per-vertex hot path
}

// NewChunking returns a Chunking partitioner.
func NewChunking(cfg Config) (*Chunking, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	chunk := int(math.Ceil(cfg.Capacity()))
	if chunk < 1 {
		chunk = 1
	}
	return &Chunking{cfg: cfg, a: MustNewAssignment(cfg.K), chunk: chunk}, nil
}

// Place implements Streaming.
func (c *Chunking) Place(v graph.VertexID, _ []graph.VertexID) ID {
	p := ID((c.next / c.chunk) % c.cfg.K)
	c.next++
	_ = c.a.Set(v, p)
	return p
}

// Assignment implements Streaming.
func (c *Chunking) Assignment() *Assignment { return c.a }

// Name implements Streaming.
func (c *Chunking) Name() string { return "chunking" }

// greedyKind selects the capacity weighting of the greedy family.
type greedyKind int

const (
	unweightedGreedy greedyKind = iota
	linearGreedy
	exponentialGreedy
)

// Greedy is the deterministic greedy family of Stanton & Kliot: place v on
// the partition holding most of its neighbours, weighted by a capacity
// penalty. The linear weighting (1 - |P|/C) is LDG, the heuristic LOOM
// builds on; it reduces cut edges by up to 90% relative to hashing on
// power-law graphs.
type Greedy struct {
	cfg        Config
	kind       greedyKind
	a          *Assignment
	rng        *rand.Rand
	name       string
	prior      *Assignment
	selfWeight float64
	capacity   float64 // cfg.Capacity(), hoisted out of the scoring loop

	// Scoring scratch, reused across Place/PlaceGroup calls so steady-state
	// placement does not allocate.
	links       []float64 // per-partition link weight, len K
	best        []ID
	leastLoaded []ID
	// inGroupGen marks the current group's members: slot h (an assignment
	// handle) is in the group iff inGroupGen[h] == groupGen. Bumping the
	// generation clears the set in O(1).
	inGroupGen []uint32
	groupGen   uint32
}

// NewDeterministicGreedy returns the unweighted greedy heuristic
// (capacity-blind except for a hard cap, ties to least-loaded).
func NewDeterministicGreedy(cfg Config) (*Greedy, error) {
	return newGreedy(cfg, unweightedGreedy, "greedy")
}

// NewLDG returns the Linear Deterministic Greedy heuristic (paper §4.1).
func NewLDG(cfg Config) (*Greedy, error) {
	return newGreedy(cfg, linearGreedy, "ldg")
}

// NewExponentialGreedy returns the exponentially weighted greedy variant.
func NewExponentialGreedy(cfg Config) (*Greedy, error) {
	return newGreedy(cfg, exponentialGreedy, "expgreedy")
}

func newGreedy(cfg Config, kind greedyKind, name string) (*Greedy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Greedy{
		cfg:         cfg,
		kind:        kind,
		a:           MustNewAssignment(cfg.K),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		name:        name,
		capacity:    cfg.Capacity(),
		links:       make([]float64, cfg.K),
		best:        make([]ID, 0, cfg.K),
		leastLoaded: make([]ID, 0, cfg.K),
	}, nil
}

// weight returns the capacity penalty for a partition currently holding
// size vertices and about to receive add more.
func (g *Greedy) weight(size, add int) float64 {
	c := g.capacity
	switch g.kind {
	case linearGreedy:
		w := 1 - (float64(size)+float64(add)/2)/c
		if w < 0 {
			return 0
		}
		return w
	case exponentialGreedy:
		return 1 - math.Exp(float64(size)-c)
	default:
		return 1
	}
}

// SetPrior implements PriorAware: prev becomes the fallback placement for
// vertices not yet re-placed in the current pass (ReLDG), and a vertex's
// own previous partition contributes selfWeight to its link count, so
// placements stabilise across restreaming passes. selfWeight <= 0 defaults
// to 1. Prior placements outside [0, K) are ignored, so a restream may
// shrink k: vertices from dropped partitions simply carry no prior signal.
func (g *Greedy) SetPrior(prev *Assignment, selfWeight float64) {
	if selfWeight <= 0 {
		selfWeight = 1
	}
	g.prior = prev
	g.selfWeight = selfWeight
}

// effective returns n's partition for scoring: the current pass's placement
// when n has been re-placed, the prior pass's otherwise. Prior partitions
// beyond this heuristic's K (a shrinking restream) read as Unassigned.
//
//loom:hotpath
func (g *Greedy) effective(n graph.VertexID) ID {
	if p := g.a.Get(n); p != Unassigned {
		return p
	}
	if g.prior != nil {
		if p := g.prior.Get(n); int(p) < g.cfg.K {
			return p
		}
	}
	return Unassigned
}

// Place implements Streaming.
//
//loom:hotpath
func (g *Greedy) Place(v graph.VertexID, neighbors []graph.VertexID) ID {
	p := g.scoreOne(v, neighbors, nil)
	_ = g.a.Set(v, p)
	return p
}

// PlaceGroup atomically places a connected group of vertices (a motif
// match) on a single partition, scoring by the total number of edges from
// all group members to each partition (the sub-graph extension of LDG,
// paper footnote 1). neighbors maps each group vertex to its known
// neighbours outside the group.
//
//loom:hotpath
func (g *Greedy) PlaceGroup(group []graph.VertexID, neighbors map[graph.VertexID][]graph.VertexID) ID {
	p := g.scoreGroupWeighted(group, neighbors, nil)
	for _, v := range group {
		_ = g.a.Set(v, p)
	}
	return p
}

// EdgeWeightFunc scores the importance of the edge between a vertex being
// placed and one of its neighbours; LOOM's traversal-weighted mode derives
// it from TPSTry++ edge probabilities (the paper's future-work extension).
type EdgeWeightFunc func(v, neighbor graph.VertexID) float64

// PlaceWeighted places a single vertex with per-edge weights: instead of
// counting neighbours per partition, LDG sums weightFn over them, biasing
// the choice toward partitions holding neighbours the workload is likely
// to traverse to.
//
//loom:hotpath
func (g *Greedy) PlaceWeighted(v graph.VertexID, neighbors []graph.VertexID, weightFn EdgeWeightFunc) ID {
	p := g.scoreOne(v, neighbors, weightFn)
	_ = g.a.Set(v, p)
	return p
}

// PlaceGroupWeighted is PlaceGroup with per-edge weights.
//
//loom:hotpath
func (g *Greedy) PlaceGroupWeighted(group []graph.VertexID, neighbors map[graph.VertexID][]graph.VertexID, weightFn EdgeWeightFunc) ID {
	p := g.scoreGroupWeighted(group, neighbors, weightFn)
	for _, v := range group {
		_ = g.a.Set(v, p)
	}
	return p
}

// resetLinks zeroes and returns the per-partition link scratch.
//
//loom:hotpath
func (g *Greedy) resetLinks() []float64 {
	for i := range g.links {
		g.links[i] = 0
	}
	return g.links
}

// scoreOne is the single-vertex scoring fast path: the degenerate group {v}
// needs no group-membership set (a vertex is never its own neighbour in a
// simple graph, but the n == v guard preserves the old semantics for
// malformed input) and no per-call allocation at all.
//
//loom:hotpath
func (g *Greedy) scoreOne(v graph.VertexID, neighbors []graph.VertexID, weightFn EdgeWeightFunc) ID {
	links := g.resetLinks()
	for _, n := range neighbors {
		if n == v {
			continue
		}
		if p := g.effective(n); p != Unassigned {
			if weightFn == nil {
				links[p]++
			} else {
				links[p] += weightFn(v, n)
			}
		}
	}
	if g.prior != nil {
		// Restreaming self-affinity: staying put is worth selfWeight.
		if p := g.prior.Get(v); p != Unassigned && int(p) < g.cfg.K {
			links[p] += g.selfWeight
		}
	}
	return g.pickBest(links, 1)
}

// markGroup stamps the group members into the generation-stamped membership
// scratch (keyed by assignment handle) and returns the generation to test
// against.
//
//loom:hotpath
func (g *Greedy) markGroup(group []graph.VertexID) uint32 {
	if g.groupGen == math.MaxUint32 { // wrapped: stale stamps could alias
		for i := range g.inGroupGen {
			g.inGroupGen[i] = 0
		}
		g.groupGen = 0
	}
	g.groupGen++
	for _, v := range group {
		h := g.a.intern(v)
		for int(h) >= len(g.inGroupGen) {
			g.inGroupGen = append(g.inGroupGen, 0)
		}
		g.inGroupGen[h] = g.groupGen
	}
	return g.groupGen
}

// inGroup reports whether n was stamped by the latest markGroup.
//
//loom:hotpath
func (g *Greedy) inGroup(n graph.VertexID, gen uint32) bool {
	h, ok := g.a.ids.Lookup(int64(n))
	return ok && int(h) < len(g.inGroupGen) && g.inGroupGen[h] == gen
}

// scoreGroupWeighted is the scoring core for whole-group placement: with
// weightFn nil every external edge counts 1 (classic LDG); otherwise each
// counts weightFn(v, n).
//
//loom:hotpath
func (g *Greedy) scoreGroupWeighted(group []graph.VertexID, neighbors map[graph.VertexID][]graph.VertexID, weightFn EdgeWeightFunc) ID {
	gen := g.markGroup(group)
	// Weighted edges from the group to each partition.
	links := g.resetLinks()
	for _, v := range group {
		for _, n := range neighbors[v] {
			if g.inGroup(n, gen) {
				continue
			}
			if p := g.effective(n); p != Unassigned {
				if weightFn == nil {
					links[p]++
				} else {
					links[p] += weightFn(v, n)
				}
			}
		}
	}
	if g.prior != nil {
		// Restreaming self-affinity: staying put is worth selfWeight.
		for _, v := range group {
			if p := g.prior.Get(v); p != Unassigned && int(p) < g.cfg.K {
				links[p] += g.selfWeight
			}
		}
	}
	return g.pickBest(links, len(group))
}

// pickBest selects argmax links[p] * weight(size, add), breaking ties to the
// least-loaded candidates and then uniformly at random among them, per
// Stanton & Kliot. The rng is consumed only on a genuine tie, matching the
// map-backed reference bit for bit.
//
//loom:hotpath
func (g *Greedy) pickBest(links []float64, add int) ID {
	bestScore := math.Inf(-1)
	best := g.best[:0]
	for p := 0; p < g.cfg.K; p++ {
		score := links[p] * g.weight(g.a.Size(ID(p)), add)
		if score > bestScore {
			bestScore = score
			best = append(best[:0], ID(p))
		} else if score == bestScore {
			best = append(best, ID(p))
		}
	}
	g.best = best
	if len(best) == 1 {
		return best[0]
	}
	// Ties (including the all-zero score of a neighbourless vertex) break
	// to the least-loaded candidates.
	minSize := math.MaxInt
	leastLoaded := g.leastLoaded[:0]
	for _, p := range best {
		s := g.a.Size(p)
		if s < minSize {
			minSize = s
			leastLoaded = append(leastLoaded[:0], p)
		} else if s == minSize {
			leastLoaded = append(leastLoaded, p)
		}
	}
	g.leastLoaded = leastLoaded
	return leastLoaded[g.rng.Intn(len(leastLoaded))]
}

// Assignment implements Streaming.
func (g *Greedy) Assignment() *Assignment { return g.a }

// Name implements Streaming.
func (g *Greedy) Name() string { return g.name }

// Fennel implements Tsourakakis et al.'s one-pass heuristic: place v on
// argmax |N(v) ∩ P| - alpha * gamma * |P|^(gamma-1). With gamma = 1.5 and
// alpha = sqrt(k) * m / n^1.5 it interpolates between greedy cut
// minimisation and balance.
type Fennel struct {
	cfg        Config
	alpha      float64
	gamma      float64
	a          *Assignment
	rng        *rand.Rand
	prior      *Assignment
	selfWeight float64
	capacity   float64 // cfg.Capacity(), hoisted out of the scoring loop

	// Scoring scratch, reused across Place calls so steady-state placement
	// does not allocate.
	links []float64
	best  []ID
}

// FennelConfig extends Config with Fennel's parameters.
type FennelConfig struct {
	Config
	// ExpectedEdges is the stream's total edge count m, used to derive
	// alpha when Alpha is zero.
	ExpectedEdges int
	// Gamma is the load exponent; zero defaults to 1.5 (the paper's
	// recommended value).
	Gamma float64
	// Alpha overrides the derived balance coefficient when non-zero.
	Alpha float64
}

// NewFennel returns a Fennel partitioner.
func NewFennel(cfg FennelConfig) (*Fennel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		if cfg.ExpectedEdges < 1 {
			return nil, fmt.Errorf("partition: Fennel needs ExpectedEdges or Alpha")
		}
		n := float64(cfg.ExpectedVertices)
		alpha = math.Sqrt(float64(cfg.K)) * float64(cfg.ExpectedEdges) / math.Pow(n, 1.5)
	}
	return &Fennel{
		cfg:      cfg.Config,
		alpha:    alpha,
		gamma:    gamma,
		a:        MustNewAssignment(cfg.K),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		capacity: cfg.Capacity(),
		links:    make([]float64, cfg.K),
		best:     make([]ID, 0, cfg.K),
	}, nil
}

// SetPrior implements PriorAware; see Greedy.SetPrior (ReFennel).
func (f *Fennel) SetPrior(prev *Assignment, selfWeight float64) {
	if selfWeight <= 0 {
		selfWeight = 1
	}
	f.prior = prev
	f.selfWeight = selfWeight
}

// Place implements Streaming.
//
//loom:hotpath
func (f *Fennel) Place(v graph.VertexID, neighbors []graph.VertexID) ID {
	links := f.links
	for i := range links {
		links[i] = 0
	}
	for _, n := range neighbors {
		p := f.a.Get(n)
		if p == Unassigned && f.prior != nil {
			p = f.prior.Get(n)
		}
		if p != Unassigned && int(p) < f.cfg.K {
			links[p]++
		}
	}
	if f.prior != nil {
		if p := f.prior.Get(v); p != Unassigned && int(p) < f.cfg.K {
			links[p] += f.selfWeight
		}
	}
	cap := f.capacity
	bestScore := math.Inf(-1)
	best := f.best[:0]
	for p := 0; p < f.cfg.K; p++ {
		size := float64(f.a.Size(ID(p)))
		if size+1 > cap && f.cfg.Slack > 0 {
			// Hard capacity: any explicitly configured slack (1.0 included)
			// enforces the cap; default Fennel (Slack == 0) relies on the
			// balance penalty only.
			continue
		}
		score := links[p] - f.alpha*f.gamma*math.Pow(size, f.gamma-1)
		if score > bestScore {
			bestScore = score
			best = best[:0]
			best = append(best, ID(p))
		} else if score == bestScore {
			best = append(best, ID(p))
		}
	}
	if len(best) == 0 {
		// All partitions saturated; fall back to the least-loaded ones,
		// breaking ties uniformly at random (like Greedy) rather than
		// deterministically favouring low partition indices.
		minSize := math.MaxInt
		for p := 0; p < f.cfg.K; p++ {
			s := f.a.Size(ID(p))
			if s < minSize {
				minSize = s
				best = best[:0]
				best = append(best, ID(p))
			} else if s == minSize {
				best = append(best, ID(p))
			}
		}
	}
	f.best = best
	p := best[f.rng.Intn(len(best))]
	_ = f.a.Set(v, p)
	return p
}

// Assignment implements Streaming.
func (f *Fennel) Assignment() *Assignment { return f.a }

// Name implements Streaming.
func (f *Fennel) Name() string { return "fennel" }

// PartitionStream drives any Streaming heuristic over a full static graph
// presented in the given vertex order, feeding each vertex its full
// adjacency (the standard evaluation harness for streaming partitioners:
// neighbours already placed influence scoring, later ones do not).
func PartitionStream(g *graph.Graph, order []graph.VertexID, s Streaming) *Assignment {
	// Place never retains the neighbour slice, so one scratch buffer serves
	// the whole stream.
	var scratch []graph.VertexID
	for _, v := range order {
		scratch = g.AppendNeighbors(scratch[:0], v)
		s.Place(v, scratch)
	}
	return s.Assignment()
}
