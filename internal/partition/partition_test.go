package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func TestNewAssignmentValidation(t *testing.T) {
	if _, err := NewAssignment(0); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	a, err := NewAssignment(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != 3 || a.Len() != 0 {
		t.Fatal("fresh assignment state wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewAssignment should panic on bad k")
		}
	}()
	MustNewAssignment(-1)
}

func TestAssignmentSetGetMove(t *testing.T) {
	a := MustNewAssignment(2)
	if err := a.Set(1, 0); err != nil {
		t.Fatal(err)
	}
	if a.Get(1) != 0 || !a.Assigned(1) {
		t.Fatal("Get/Assigned wrong after Set")
	}
	if a.Get(2) != Unassigned || a.Assigned(2) {
		t.Fatal("unknown vertex should be Unassigned")
	}
	// Move keeps sizes consistent.
	if err := a.Set(1, 1); err != nil {
		t.Fatal(err)
	}
	if a.Size(0) != 0 || a.Size(1) != 1 {
		t.Fatalf("sizes after move = %v", a.Sizes())
	}
	if err := a.Set(1, 5); err == nil {
		t.Fatal("out-of-range partition should error")
	}
	if a.Size(9) != 0 {
		t.Fatal("Size out of range should be 0")
	}
}

func TestAssignmentCutEdges(t *testing.T) {
	g := graph.Path("a", "b", "c")
	a := MustNewAssignment(2)
	mustSet(t, a, 0, 0)
	mustSet(t, a, 1, 0)
	mustSet(t, a, 2, 1)
	if cut := a.CutEdges(g); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	// Unassigned endpoints are skipped.
	b := MustNewAssignment(2)
	mustSet(t, b, 0, 0)
	if cut := b.CutEdges(g); cut != 0 {
		t.Fatalf("cut with unassigned = %d, want 0", cut)
	}
}

func mustSet(t *testing.T, a *Assignment, v graph.VertexID, p ID) {
	t.Helper()
	if err := a.Set(v, p); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentReset(t *testing.T) {
	a := MustNewAssignment(3)
	for v := graph.VertexID(0); v < 9; v++ {
		mustSet(t, a, v, ID(v%3))
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", a.Len())
	}
	for p := ID(0); p < 3; p++ {
		if a.Size(p) != 0 {
			t.Fatalf("Size(%d) after Reset = %d, want 0", p, a.Size(p))
		}
	}
	for v := graph.VertexID(0); v < 9; v++ {
		if a.Get(v) != Unassigned || a.Assigned(v) {
			t.Fatalf("vertex %d still assigned after Reset", v)
		}
	}
	a.EachVertex(func(v graph.VertexID, p ID) {
		t.Fatalf("EachVertex visited %d -> %d after Reset", v, p)
	})
	// The handle space is retained: re-assigning reuses it and reads back.
	mustSet(t, a, 4, 2)
	if a.Get(4) != 2 || a.Len() != 1 || a.Size(2) != 1 {
		t.Fatal("re-assignment after Reset wrong")
	}
}

func TestAssignmentResetEpochWrap(t *testing.T) {
	a := MustNewAssignment(2)
	mustSet(t, a, 7, 1)
	// Force the wrap branch: the next Reset overflows the epoch counter and
	// must rewrite stamps so ancient slots cannot alias as live.
	a.epoch = ^uint32(0)
	a.stamp[0] = ^uint32(0) // pretend vertex 7 was placed in this epoch
	a.Reset()
	if a.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", a.epoch)
	}
	if a.Get(7) != Unassigned || a.Len() != 0 {
		t.Fatal("stale placement survived epoch wrap")
	}
	mustSet(t, a, 7, 0)
	if a.Get(7) != 0 || a.Len() != 1 {
		t.Fatal("re-assignment after wrap wrong")
	}
}

func TestAssignmentCloneIndependent(t *testing.T) {
	a := MustNewAssignment(2)
	mustSet(t, a, 1, 0)
	c := a.Clone()
	mustSet(t, c, 1, 1)
	if a.Get(1) != 0 {
		t.Fatal("clone mutation affected original")
	}
	if a.MaxSize() != 1 {
		t.Fatal("MaxSize wrong")
	}
}

func TestConfigCapacity(t *testing.T) {
	c := Config{K: 4, ExpectedVertices: 100}
	if got := c.Capacity(); got != 25 {
		t.Fatalf("Capacity = %v, want 25", got)
	}
	c.Slack = 1.2
	if got := c.Capacity(); got != 30 {
		t.Fatalf("Capacity with slack = %v, want 30", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{K: 0, ExpectedVertices: 10},
		{K: 2, ExpectedVertices: 0},
		{K: 2, ExpectedVertices: 10, Slack: -1},
	}
	for _, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("config %+v should fail validation", c)
		}
	}
	if err := (Config{K: 2, ExpectedVertices: 10}).validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHashDeterministicAndComplete(t *testing.T) {
	cfg := Config{K: 4, ExpectedVertices: 100}
	h1, err := NewHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := NewHash(cfg)
	for i := 0; i < 100; i++ {
		p1 := h1.Place(graph.VertexID(i), nil)
		p2 := h2.Place(graph.VertexID(i), nil)
		if p1 != p2 {
			t.Fatal("hash must be deterministic")
		}
		if p1 < 0 || int(p1) >= 4 {
			t.Fatalf("partition %d out of range", p1)
		}
	}
	if h1.Assignment().Len() != 100 {
		t.Fatal("all vertices should be assigned")
	}
	if h1.Name() != "hash" {
		t.Fatal("name wrong")
	}
}

func TestHashRoughBalance(t *testing.T) {
	h, _ := NewHash(Config{K: 4, ExpectedVertices: 4000})
	for i := 0; i < 4000; i++ {
		h.Place(graph.VertexID(i), nil)
	}
	for p := 0; p < 4; p++ {
		s := h.Assignment().Size(ID(p))
		if s < 800 || s > 1200 {
			t.Fatalf("hash partition %d size %d far from 1000", p, s)
		}
	}
}

func TestBalancedPerfectBalance(t *testing.T) {
	b, err := NewBalanced(Config{K: 3, ExpectedVertices: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		b.Place(graph.VertexID(i), nil)
	}
	for p := 0; p < 3; p++ {
		if b.Assignment().Size(ID(p)) != 3 {
			t.Fatalf("balanced sizes = %v", b.Assignment().Sizes())
		}
	}
	if b.Name() != "balanced" {
		t.Fatal("name wrong")
	}
}

func TestChunkingFillsSequentially(t *testing.T) {
	c, err := NewChunking(Config{K: 2, ExpectedVertices: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]ID, 4)
	for i := 0; i < 4; i++ {
		ps[i] = c.Place(graph.VertexID(i), nil)
	}
	if ps[0] != 0 || ps[1] != 0 || ps[2] != 1 || ps[3] != 1 {
		t.Fatalf("chunking placements = %v", ps)
	}
	if c.Name() != "chunking" {
		t.Fatal("name wrong")
	}
}

func TestLDGPrefersNeighborPartition(t *testing.T) {
	ldg, err := NewLDG(Config{K: 2, ExpectedVertices: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Seed vertex 0 onto some partition, then its neighbour must follow.
	p0 := ldg.Place(0, nil)
	p1 := ldg.Place(1, []graph.VertexID{0})
	if p0 != p1 {
		t.Fatalf("LDG should co-locate neighbour: %d vs %d", p0, p1)
	}
}

func TestLDGCapacityPenalty(t *testing.T) {
	// Capacity 2 per partition (n=4, k=2). After filling partition 0 with
	// two vertices, a third vertex adjacent to them must spill to
	// partition 1 because the weight term hits zero.
	ldg, err := NewLDG(Config{K: 2, ExpectedVertices: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := ldg.Assignment()
	mustSet(t, a, 10, 0)
	mustSet(t, a, 11, 0)
	p := ldg.Place(12, []graph.VertexID{10, 11})
	if p != 1 {
		t.Fatalf("LDG placed on %d, want 1 (capacity penalty)", p)
	}
}

func TestGreedyUnweightedIgnoresLoadUntilTie(t *testing.T) {
	g, err := NewDeterministicGreedy(Config{K: 2, ExpectedVertices: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := g.Assignment()
	mustSet(t, a, 10, 0)
	mustSet(t, a, 11, 0)
	// Unweighted greedy still follows neighbours even at capacity.
	p := g.Place(12, []graph.VertexID{10, 11})
	if p != 0 {
		t.Fatalf("unweighted greedy placed on %d, want 0", p)
	}
	if g.Name() != "greedy" {
		t.Fatal("name wrong")
	}
}

func TestExponentialGreedyName(t *testing.T) {
	g, err := NewExponentialGreedy(Config{K: 2, ExpectedVertices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "expgreedy" {
		t.Fatal("name wrong")
	}
	g.Place(1, nil) // smoke: must not panic
}

func TestPlaceGroupAtomicAndInternalEdgesIgnored(t *testing.T) {
	ldg, err := NewLDG(Config{K: 2, ExpectedVertices: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := ldg.Assignment()
	mustSet(t, a, 100, 1) // anchor on partition 1
	group := []graph.VertexID{1, 2, 3}
	neighbors := map[graph.VertexID][]graph.VertexID{
		1: {2, 3},   // internal only
		2: {1, 100}, // one external link to partition 1
		3: {1, 2},
	}
	p := ldg.PlaceGroup(group, neighbors)
	if p != 1 {
		t.Fatalf("group placed on %d, want 1 (follows external link)", p)
	}
	for _, v := range group {
		if a.Get(v) != 1 {
			t.Fatalf("group member %d on %d, want 1", v, a.Get(v))
		}
	}
}

func TestPlaceWeightedFollowsHeavyEdges(t *testing.T) {
	ldg, err := NewLDG(Config{K: 2, ExpectedVertices: 100, Slack: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := ldg.Assignment()
	mustSet(t, a, 10, 0)
	mustSet(t, a, 11, 0)
	mustSet(t, a, 20, 1)
	// Two light edges to partition 0, one heavy edge to partition 1.
	weights := map[graph.VertexID]float64{10: 0.1, 11: 0.1, 20: 1.0}
	p := ldg.PlaceWeighted(1, []graph.VertexID{10, 11, 20}, func(_, n graph.VertexID) float64 {
		return weights[n]
	})
	if p != 1 {
		t.Fatalf("weighted placement = %d, want 1 (heavy edge wins)", p)
	}
	// Unweighted: two edges beat one.
	ldg2, _ := NewLDG(Config{K: 2, ExpectedVertices: 100, Slack: 2, Seed: 1})
	a2 := ldg2.Assignment()
	mustSet(t, a2, 10, 0)
	mustSet(t, a2, 11, 0)
	mustSet(t, a2, 20, 1)
	if p := ldg2.Place(1, []graph.VertexID{10, 11, 20}); p != 0 {
		t.Fatalf("unweighted placement = %d, want 0", p)
	}
}

func TestPlaceGroupWeighted(t *testing.T) {
	ldg, err := NewLDG(Config{K: 2, ExpectedVertices: 100, Slack: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := ldg.Assignment()
	mustSet(t, a, 50, 1)
	group := []graph.VertexID{1, 2}
	neighbors := map[graph.VertexID][]graph.VertexID{1: {2, 50}, 2: {1}}
	p := ldg.PlaceGroupWeighted(group, neighbors, func(_, _ graph.VertexID) float64 { return 2.0 })
	if p != 1 {
		t.Fatalf("group placed on %d, want 1", p)
	}
	for _, v := range group {
		if a.Get(v) != 1 {
			t.Fatalf("member %d not co-located", v)
		}
	}
}

func TestFennelValidation(t *testing.T) {
	if _, err := NewFennel(FennelConfig{Config: Config{K: 2, ExpectedVertices: 10}}); err == nil {
		t.Fatal("Fennel without edges or alpha should error")
	}
	if _, err := NewFennel(FennelConfig{Config: Config{K: 0, ExpectedVertices: 10}, ExpectedEdges: 5}); err == nil {
		t.Fatal("bad base config should error")
	}
	f, err := NewFennel(FennelConfig{Config: Config{K: 2, ExpectedVertices: 10}, ExpectedEdges: 20})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "fennel" {
		t.Fatal("name wrong")
	}
}

func TestFennelFollowsNeighbors(t *testing.T) {
	f, err := NewFennel(FennelConfig{Config: Config{K: 2, ExpectedVertices: 100, Seed: 4}, ExpectedEdges: 300})
	if err != nil {
		t.Fatal(err)
	}
	p0 := f.Place(0, nil)
	p1 := f.Place(1, []graph.VertexID{0})
	if p0 != p1 {
		t.Fatalf("Fennel should co-locate neighbour: %d vs %d", p0, p1)
	}
}

func TestPartitionStreamAssignsAll(t *testing.T) {
	g := graph.Fig1Graph()
	ldg, _ := NewLDG(Config{K: 2, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 5})
	a := PartitionStream(g, g.Vertices(), ldg)
	if a.Len() != g.NumVertices() {
		t.Fatalf("assigned %d, want %d", a.Len(), g.NumVertices())
	}
}

func TestLDGBeatsHashOnCut(t *testing.T) {
	// The C1 shape at unit scale: on a graph with strong community
	// structure, LDG must cut far fewer edges than hash.
	r := rand.New(rand.NewSource(11))
	g := plantedTwoCommunities(r, 200, 0.2, 0.01)
	order := g.Vertices()
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	hash, _ := NewHash(Config{K: 2, ExpectedVertices: 200})
	ldg, _ := NewLDG(Config{K: 2, ExpectedVertices: 200, Slack: 1.1, Seed: 7})
	ha := PartitionStream(g, order, hash)
	la := PartitionStream(g, order, ldg)

	hc, lc := ha.CutEdges(g), la.CutEdges(g)
	t.Logf("cut: hash=%d ldg=%d", hc, lc)
	if lc >= hc {
		t.Fatalf("LDG cut %d should beat hash cut %d", lc, hc)
	}
}

// plantedTwoCommunities builds a two-community graph without importing gen
// (avoiding a package cycle in tests).
func plantedTwoCommunities(r *rand.Rand, n int, pIn, pOut float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i), "x")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if (i < n/2) == (j < n/2) {
				p = pIn
			}
			if r.Float64() < p {
				if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestPropertyStreamingPartitionersComplete(t *testing.T) {
	// Every heuristic assigns every vertex exactly once, within range, and
	// sizes sum to n.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(60)
		g := plantedTwoCommunities(r, n, 0.2, 0.05)
		k := 2 + r.Intn(4)
		cfg := Config{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
		mk := []func() (Streaming, error){
			func() (Streaming, error) { return NewHash(cfg) },
			func() (Streaming, error) { return NewBalanced(cfg) },
			func() (Streaming, error) { return NewChunking(cfg) },
			func() (Streaming, error) { return NewDeterministicGreedy(cfg) },
			func() (Streaming, error) { return NewLDG(cfg) },
			func() (Streaming, error) { return NewExponentialGreedy(cfg) },
			func() (Streaming, error) {
				return NewFennel(FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
			},
		}
		for _, f := range mk {
			s, err := f()
			if err != nil {
				return false
			}
			a := PartitionStream(g, g.Vertices(), s)
			if a.Len() != n {
				return false
			}
			sum := 0
			for _, sz := range a.Sizes() {
				if sz < 0 {
					return false
				}
				sum += sz
			}
			if sum != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
