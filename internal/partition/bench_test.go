package partition

import (
	"testing"

	"loom/internal/graph"
)

// benchNeighbors is a typical placement scoring input: 8 already-placed
// neighbours spread over the partitions.
func benchNeighbors(b *testing.B, s Streaming, k int) []graph.VertexID {
	b.Helper()
	neighbors := make([]graph.VertexID, 8)
	for i := range neighbors {
		v := graph.VertexID(i + 1)
		neighbors[i] = v
		if err := s.Assignment().Set(v, ID(i%k)); err != nil {
			b.Fatal(err)
		}
	}
	return neighbors
}

// BenchmarkGreedyPlace measures steady-state single-vertex LDG placement
// over a bounded vertex population (the restreaming regime: later passes
// re-place the same vertices); after the dense-core refactor this must run
// at 0 allocs/op.
func BenchmarkGreedyPlace(b *testing.B) {
	cfg := Config{K: 16, ExpectedVertices: 1 << 30, Slack: 1.1, Seed: 1}
	ldg, err := NewLDG(cfg)
	if err != nil {
		b.Fatal(err)
	}
	neighbors := benchNeighbors(b, ldg, cfg.K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ldg.Place(graph.VertexID(100+(i&0xFFFF)), neighbors)
	}
}

// BenchmarkGreedyPlaceGroup measures motif-group placement (4-vertex group,
// LOOM's hot path for matched sub-graphs).
func BenchmarkGreedyPlaceGroup(b *testing.B) {
	cfg := Config{K: 16, ExpectedVertices: 1 << 30, Slack: 1.1, Seed: 1}
	ldg, err := NewLDG(cfg)
	if err != nil {
		b.Fatal(err)
	}
	external := benchNeighbors(b, ldg, cfg.K)
	group := make([]graph.VertexID, 4)
	neighbors := make(map[graph.VertexID][]graph.VertexID, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := graph.VertexID(100 + 4*(i&0xFFFF))
		for j := range group {
			group[j] = base + graph.VertexID(j)
			neighbors[group[j]] = external
		}
		ldg.PlaceGroup(group, neighbors)
		for j := range group {
			delete(neighbors, group[j])
		}
	}
}

// BenchmarkFennelPlace measures steady-state single-vertex Fennel placement
// over a bounded vertex population; after the dense-core refactor this must
// run at 0 allocs/op.
func BenchmarkFennelPlace(b *testing.B) {
	cfg := Config{K: 16, ExpectedVertices: 1 << 30, Slack: 1.1, Seed: 1}
	f, err := NewFennel(FennelConfig{Config: cfg, ExpectedEdges: 1 << 31})
	if err != nil {
		b.Fatal(err)
	}
	neighbors := benchNeighbors(b, f, cfg.K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Place(graph.VertexID(100+(i&0xFFFF)), neighbors)
	}
}

// BenchmarkAssignmentGet measures the per-neighbour assignment probe that
// dominates scoring.
func BenchmarkAssignmentGet(b *testing.B) {
	a := MustNewAssignment(16)
	for i := 0; i < 1024; i++ {
		if err := a.Set(graph.VertexID(i), ID(i%16)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Get(graph.VertexID(i & 1023))
	}
}
