package partition_test

// External test package so the acceptance checks can use metrics (which
// imports partition) and the generators.

import (
	"math/rand"
	"testing"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/partition"
	"loom/internal/stream"
)

func communityGraph(t *testing.T, n, k int, seed int64) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: r}
	g, err := gen.PlantedPartitionDegrees(n, k, 12, 3, lab, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func ldgRestreamer(cfg partition.Config, rcfg partition.RestreamConfig) *partition.Restreamer {
	return &partition.Restreamer{
		Config:  rcfg,
		NewPass: func(int) (partition.Streaming, error) { return partition.NewLDG(cfg) },
	}
}

// TestReLDGImprovesOnSinglePass is the PR's acceptance check: >= 2 ReLDG
// passes on a planted-community graph cut strictly fewer edges than
// single-pass LDG at equal k, stay within the configured slack, and the
// migration fraction between consecutive passes decreases.
func TestReLDGImprovesOnSinglePass(t *testing.T) {
	const (
		n    = 1200
		k    = 8
		seed = 7
	)
	g := communityGraph(t, n, k, seed)
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
	base, err := stream.VertexOrder(g, stream.RandomOrder, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	ldg, err := partition.NewLDG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := partition.PartitionStream(g, base, ldg)
	singleCut := metrics.CutFraction(g, single)

	const passes = 3
	res, err := ldgRestreamer(cfg, partition.RestreamConfig{Passes: passes}).Run(g, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) != passes {
		t.Fatalf("got %d pass stats, want %d", len(res.Passes), passes)
	}
	if res.Final.Len() != n {
		t.Fatalf("final assignment covers %d vertices, want %d", res.Final.Len(), n)
	}

	finalCut := metrics.CutFraction(g, res.Final)
	if finalCut >= singleCut {
		t.Fatalf("restreamed cut %.4f not below single-pass LDG %.4f", finalCut, singleCut)
	}
	if bal := metrics.VertexImbalance(res.Final); bal > cfg.Slack+1e-9 {
		t.Fatalf("imbalance %.4f exceeds slack %.2f", bal, cfg.Slack)
	}

	// Pass 1 is a cold start: no migration. Later passes report migration
	// that shrinks as placements stabilise.
	if res.Passes[0].Migrated != 0 || res.Passes[0].MigrationFraction != 0 {
		t.Fatalf("cold-start pass reported migration %+v", res.Passes[0])
	}
	m2, m3 := res.Passes[1].MigrationFraction, res.Passes[2].MigrationFraction
	if m2 <= 0 {
		t.Fatal("pass 2 reported no migration; restreaming did nothing")
	}
	if m3 >= m2 {
		t.Fatalf("migration did not decrease: pass2=%.4f pass3=%.4f", m2, m3)
	}
	// Per-pass cut statistics must match the assignments they describe.
	if res.Passes[passes-1].CutEdges != res.Final.CutEdges(g) {
		t.Fatalf("final pass stats cut=%d, assignment cut=%d",
			res.Passes[passes-1].CutEdges, res.Final.CutEdges(g))
	}
}

// TestRestreamDeterministicPerSeed runs the same restream twice and demands
// identical assignments.
func TestRestreamDeterministicPerSeed(t *testing.T) {
	const n, k, seed = 400, 4, 11
	g := communityGraph(t, n, k, seed)
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
	base, err := stream.VertexOrder(g, stream.RandomOrder, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *partition.Assignment {
		res, err := ldgRestreamer(cfg, partition.RestreamConfig{Passes: 3, Priority: partition.PriorityAmbivalence}).Run(g, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	a, b := run(), run()
	mismatch := 0
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		if b.Get(v) != p {
			mismatch++
		}
	})
	if mismatch != 0 {
		t.Fatalf("%d placements differ between identical runs", mismatch)
	}
}

// TestRestreamPriorities checks every priority ordering completes, covers
// all vertices, and does not hurt relative to the cold-start pass.
func TestRestreamPriorities(t *testing.T) {
	const n, k, seed = 600, 4, 3
	g := communityGraph(t, n, k, seed)
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
	base, err := stream.VertexOrder(g, stream.RandomOrder, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pri := range []partition.Priority{
		partition.PriorityNone, partition.PriorityDegree,
		partition.PriorityAmbivalence, partition.PriorityCutDegree,
	} {
		res, err := ldgRestreamer(cfg, partition.RestreamConfig{Passes: 3, Priority: pri}).Run(g, base, nil)
		if err != nil {
			t.Fatalf("%v: %v", pri, err)
		}
		if res.Final.Len() != n {
			t.Fatalf("%v: covered %d of %d vertices", pri, res.Final.Len(), n)
		}
		if res.Passes[2].CutFraction > res.Passes[0].CutFraction {
			t.Errorf("%v: cut worsened across passes: %.4f -> %.4f",
				pri, res.Passes[0].CutFraction, res.Passes[2].CutFraction)
		}
	}
}

// TestReFennelRestreams exercises the Fennel PriorAware path.
func TestReFennelRestreams(t *testing.T) {
	const n, k, seed = 600, 4, 5
	g := communityGraph(t, n, k, seed)
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
	rs := &partition.Restreamer{
		Config: partition.RestreamConfig{Passes: 3},
		NewPass: func(int) (partition.Streaming, error) {
			return partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
		},
	}
	res, err := rs.Run(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != n {
		t.Fatalf("covered %d of %d vertices", res.Final.Len(), n)
	}
	if res.Passes[2].CutFraction > res.Passes[0].CutFraction {
		t.Errorf("ReFennel cut worsened: %.4f -> %.4f",
			res.Passes[0].CutFraction, res.Passes[2].CutFraction)
	}
}

// TestRestreamSeedsFromPriorAssignment feeds an existing assignment in as
// the prior of pass 1: every pass is then a restream and migration is
// reported from the very first pass.
func TestRestreamSeedsFromPriorAssignment(t *testing.T) {
	const n, k, seed = 400, 4, 9
	g := communityGraph(t, n, k, seed)
	cfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
	hash, err := partition.NewHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := partition.PartitionStream(g, g.Vertices(), hash)
	priorCut := metrics.CutFraction(g, prior)

	res, err := ldgRestreamer(cfg, partition.RestreamConfig{Passes: 2, Priority: partition.PriorityCutDegree}).Run(g, nil, prior)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes[0].Migrated == 0 {
		t.Fatal("restream from a hash prior should migrate vertices on pass 1")
	}
	if got := metrics.CutFraction(g, res.Final); got >= priorCut {
		t.Fatalf("restreamed cut %.4f not below hash prior %.4f", got, priorCut)
	}
}

func TestRestreamerRejectsNonPriorAware(t *testing.T) {
	const n, k = 100, 2
	g := communityGraph(t, n, k, 1)
	cfg := partition.Config{K: k, ExpectedVertices: n}
	passes := 0
	rs := &partition.Restreamer{
		Config: partition.RestreamConfig{Passes: 2},
		NewPass: func(int) (partition.Streaming, error) {
			passes++
			return partition.NewHash(cfg)
		},
	}
	if _, err := rs.Run(g, nil, nil); err == nil {
		t.Fatal("hash is not PriorAware; Run should error")
	}
	// The rejection must happen before any streaming pass runs, so only
	// the validation probe constructed a heuristic.
	if passes != 1 {
		t.Fatalf("heuristic constructed %d times; want 1 (validation probe only)", passes)
	}
}

// TestRestreamShrinksK refines a prior assignment built at a larger k down
// to fewer partitions: prior placements beyond the new k carry no signal
// but must not panic scoring.
func TestRestreamShrinksK(t *testing.T) {
	const n, bigK, smallK, seed = 400, 16, 8, 13
	g := communityGraph(t, n, smallK, seed)
	bigCfg := partition.Config{K: bigK, ExpectedVertices: n, Slack: 1.2, Seed: seed}
	ldgBig, err := partition.NewLDG(bigCfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := partition.PartitionStream(g, g.Vertices(), ldgBig)

	smallCfg := partition.Config{K: smallK, ExpectedVertices: n, Slack: 1.2, Seed: seed}
	for _, newPass := range map[string]func(int) (partition.Streaming, error){
		"reldg": func(int) (partition.Streaming, error) { return partition.NewLDG(smallCfg) },
		"refennel": func(int) (partition.Streaming, error) {
			return partition.NewFennel(partition.FennelConfig{Config: smallCfg, ExpectedEdges: g.NumEdges()})
		},
	} {
		rs := &partition.Restreamer{
			Config:  partition.RestreamConfig{Passes: 2, Priority: partition.PriorityCutDegree},
			NewPass: newPass,
		}
		res, err := rs.Run(g, nil, prior)
		if err != nil {
			t.Fatal(err)
		}
		if res.Final.K() != smallK || res.Final.Len() != n {
			t.Fatalf("shrunk restream: k=%d len=%d, want k=%d len=%d",
				res.Final.K(), res.Final.Len(), smallK, n)
		}
	}
}

func TestRestreamConfigValidation(t *testing.T) {
	g := graph.Path("a", "b")
	pass := func(int, []graph.VertexID, *partition.Assignment) (*partition.Assignment, error) {
		return partition.MustNewAssignment(2), nil
	}
	if _, err := partition.Restream(g, nil, nil, partition.RestreamConfig{Passes: 0}, pass); err == nil {
		t.Error("Passes=0 should be rejected")
	}
	if _, err := partition.Restream(g, nil, nil, partition.RestreamConfig{Passes: 1, SelfWeight: -1}, pass); err == nil {
		t.Error("negative SelfWeight should be rejected")
	}
}

func TestParsePriorityRoundTrip(t *testing.T) {
	for _, pri := range []partition.Priority{
		partition.PriorityNone, partition.PriorityDegree,
		partition.PriorityAmbivalence, partition.PriorityCutDegree,
	} {
		got, err := partition.ParsePriority(pri.String())
		if err != nil || got != pri {
			t.Errorf("ParsePriority(%q) = %v, %v", pri.String(), got, err)
		}
	}
	if _, err := partition.ParsePriority("nope"); err == nil {
		t.Error("unknown priority should error")
	}
	if got, err := partition.ParsePriority(""); err != nil || got != partition.PriorityNone {
		t.Errorf("empty priority = %v, %v; want none", got, err)
	}
}

func TestPriorityOrderDeterministicAndComplete(t *testing.T) {
	const n, k, seed = 200, 4, 2
	g := communityGraph(t, n, k, seed)
	cfg := partition.Config{K: k, ExpectedVertices: n}
	ldg, err := partition.NewLDG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := partition.PartitionStream(g, g.Vertices(), ldg)
	base := g.Vertices()
	for _, pri := range []partition.Priority{partition.PriorityDegree, partition.PriorityAmbivalence, partition.PriorityCutDegree} {
		o1 := partition.PriorityOrder(g, prev, pri, base)
		o2 := partition.PriorityOrder(g, prev, pri, base)
		if len(o1) != n {
			t.Fatalf("%v: order has %d vertices, want %d", pri, len(o1), n)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("%v: order not deterministic at %d", pri, i)
			}
		}
		seen := make(map[graph.VertexID]bool, n)
		for _, v := range o1 {
			if seen[v] {
				t.Fatalf("%v: duplicate vertex %d", pri, v)
			}
			seen[v] = true
		}
	}
}
