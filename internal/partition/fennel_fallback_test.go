package partition

import (
	"testing"

	"loom/internal/graph"
)

// saturatedFennel returns a Fennel instance whose partitions are all at the
// hard capacity, so the next Place must take the saturated fallback path.
func saturatedFennel(t *testing.T, seed int64) *Fennel {
	t.Helper()
	// K=4, n=8, Slack=1.0 -> capacity 2 per partition. Fill all 8 slots.
	f, err := NewFennel(FennelConfig{
		Config: Config{K: 4, ExpectedVertices: 8, Slack: 1.0, Seed: seed},
		Alpha:  1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := f.Assignment().Set(graph.VertexID(i), ID(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestFennelSaturatedFallbackRandomisesTies is the regression test for the
// saturated-capacity fallback: with every partition equally (over)loaded the
// spill partition must be drawn uniformly at random from the least-loaded
// set using the seeded rng — not deterministically partition 0.
func TestFennelSaturatedFallbackRandomisesTies(t *testing.T) {
	counts := make(map[ID]int)
	for seed := int64(0); seed < 64; seed++ {
		f := saturatedFennel(t, seed)
		p := f.Place(graph.VertexID(100), nil)
		counts[p]++
	}
	if len(counts) < 2 {
		t.Fatalf("saturated fallback always picked partition(s) %v across 64 seeds; want randomised ties", counts)
	}
}

// TestFennelSaturatedFallbackPrefersLeastLoaded checks the fallback still
// targets the least-loaded partitions when loads differ.
func TestFennelSaturatedFallbackPrefersLeastLoaded(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		f, err := NewFennel(FennelConfig{
			Config: Config{K: 2, ExpectedVertices: 2, Slack: 1.0, Seed: seed},
			Alpha:  1e-9,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Partition 0 holds two vertices, partition 1 one; both exceed the
		// capacity of 1, so the fallback triggers and must pick partition 1.
		for i, p := range []ID{0, 0, 1} {
			if err := f.Assignment().Set(graph.VertexID(i), p); err != nil {
				t.Fatal(err)
			}
		}
		if got := f.Place(graph.VertexID(100), nil); got != 1 {
			t.Fatalf("seed %d: saturated fallback chose %d, want least-loaded 1", seed, got)
		}
	}
}

// TestFennelSaturatedFallbackDeterministicPerSeed pins seeded determinism:
// the same seed must always produce the same spill partition.
func TestFennelSaturatedFallbackDeterministicPerSeed(t *testing.T) {
	first := saturatedFennel(t, 7).Place(graph.VertexID(100), nil)
	for i := 0; i < 4; i++ {
		if got := saturatedFennel(t, 7).Place(graph.VertexID(100), nil); got != first {
			t.Fatalf("seed 7 run %d: got partition %d, want %d", i, got, first)
		}
	}
}
