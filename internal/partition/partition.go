// Package partition implements the graph partitioners LOOM builds on and is
// evaluated against (paper §3.1, §4.1).
//
// A k-balanced partitioning splits a graph's vertices into k parts of
// near-equal size while minimising the number of cut (inter-partition)
// edges. The package provides:
//
//   - Assignment: the vertex -> partition map plus load accounting.
//   - The streaming heuristic family of Stanton & Kliot — Hash, Balanced,
//     Chunking, Deterministic Greedy, Linear Deterministic Greedy (LDG,
//     LOOM's base heuristic), Exponential Greedy — and Tsourakakis et
//     al.'s Fennel.
//   - Group placement: the LDG extension (paper footnote 1) that scores a
//     whole connected sub-graph by its total edges into each partition and
//     places it atomically; this is what LOOM uses for motif matches.
//   - A multilevel offline partitioner (heavy-edge matching + boundary
//     refinement) standing in for METIS as the quality reference.
package partition

import (
	"fmt"

	"loom/internal/graph"
	"loom/internal/ident"
)

// ID identifies a partition, in [0, k).
type ID int

// Unassigned is returned by Assignment.Get for vertices not yet placed.
const Unassigned ID = -1

// Assignment records the placement of vertices into k partitions.
//
// Placements live in a dense slice indexed by interned vertex handle
// (package ident), with an epoch stamp per slot so the whole assignment can
// be reset in O(1) without reallocating; Get on the common dense-ID case is
// two slice indexes instead of a hash probe.
type Assignment struct {
	k   int
	ids *ident.Interner
	// place and stamp are indexed by handle; a slot is live iff its stamp
	// equals the current epoch. The interner may hold handles for vertices
	// that were interned for scratch purposes but never assigned.
	place []ID
	stamp []uint32
	epoch uint32
	sizes []int
	n     int // number of live placements (Len)
}

// NewAssignment returns an empty assignment over k partitions (k >= 1).
func NewAssignment(k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k=%d < 1", k)
	}
	return &Assignment{
		k:     k,
		ids:   ident.NewInterner(),
		epoch: 1, // zero-valued stamps must read as stale
		sizes: make([]int, k),
	}, nil
}

// MustNewAssignment is NewAssignment that panics on error.
func MustNewAssignment(k int) *Assignment {
	a, err := NewAssignment(k)
	if err != nil {
		panic(err)
	}
	return a
}

// K returns the number of partitions.
func (a *Assignment) K() int { return a.k }

// Len returns the number of assigned vertices.
func (a *Assignment) Len() int { return a.n }

// getH returns the placement of handle h, or Unassigned.
func (a *Assignment) getH(h ident.Handle) ID {
	if int(h) < len(a.place) && a.stamp[h] == a.epoch {
		return a.place[h]
	}
	return Unassigned
}

// Get returns the partition of v, or Unassigned.
func (a *Assignment) Get(v graph.VertexID) ID {
	h, ok := a.ids.Lookup(int64(v))
	if !ok {
		return Unassigned
	}
	return a.getH(h)
}

// Assigned reports whether v has been placed.
func (a *Assignment) Assigned(v graph.VertexID) bool {
	return a.Get(v) != Unassigned
}

// intern returns v's handle, growing the placement slices to cover it. The
// slot is left stale (unassigned); partitioner scratch (Greedy's group
// stamps) relies on this to reuse assignment handles.
func (a *Assignment) intern(v graph.VertexID) ident.Handle {
	h := a.ids.Intern(int64(v))
	for int(h) >= len(a.place) {
		a.place = append(a.place, Unassigned)
		a.stamp = append(a.stamp, 0)
	}
	return h
}

// Set places v in partition p. Re-placing a vertex moves it (load counts
// are kept consistent). It errors if p is out of range.
func (a *Assignment) Set(v graph.VertexID, p ID) error {
	if p < 0 || int(p) >= a.k {
		return fmt.Errorf("partition: partition %d out of range [0,%d)", p, a.k)
	}
	h := a.intern(v)
	if a.stamp[h] == a.epoch {
		a.sizes[a.place[h]]--
	} else {
		a.stamp[h] = a.epoch
		a.n++
	}
	a.place[h] = p
	a.sizes[p]++
	return nil
}

// Remove clears v's placement, keeping load accounting consistent. It
// reports whether v was assigned. The handle stays interned (its slot is
// merely stamped stale), so a later re-add reuses it; epoch is never 0
// (see Reset), so stamping 0 always reads as unassigned.
func (a *Assignment) Remove(v graph.VertexID) bool {
	h, ok := a.ids.Lookup(int64(v))
	if !ok || int(h) >= len(a.place) || a.stamp[h] != a.epoch {
		return false
	}
	a.sizes[a.place[h]]--
	a.stamp[h] = 0
	a.place[h] = Unassigned
	a.n--
	return true
}

// Reset clears every placement in O(1) (epoch bump), retaining the interned
// handle space and slice capacity for reuse.
func (a *Assignment) Reset() {
	a.epoch++
	if a.epoch == 0 { // wrapped: stamps from 2^32 resets ago could alias
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.n = 0
	for i := range a.sizes {
		a.sizes[i] = 0
	}
}

// Size returns the number of vertices in partition p.
func (a *Assignment) Size(p ID) int {
	if p < 0 || int(p) >= a.k {
		return 0
	}
	return a.sizes[p]
}

// Sizes returns a copy of all partition sizes.
func (a *Assignment) Sizes() []int { return append([]int(nil), a.sizes...) }

// MaxSize returns the largest partition size.
func (a *Assignment) MaxSize() int {
	max := 0
	for _, s := range a.sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// Clone returns an independent copy.
func (a *Assignment) Clone() *Assignment {
	c := MustNewAssignment(a.k)
	a.EachVertex(func(v graph.VertexID, p ID) {
		_ = c.Set(v, p)
	})
	return c
}

// EachVertex calls fn for every assigned vertex, in unspecified order.
func (a *Assignment) EachVertex(fn func(v graph.VertexID, p ID)) {
	a.ids.EachLive(func(k int64, h ident.Handle) bool {
		if a.stamp[h] == a.epoch {
			fn(graph.VertexID(k), a.place[h])
		}
		return true
	})
}

// CutEdges returns the number of edges of g whose endpoints are assigned
// to different partitions. Edges with an unassigned endpoint are not
// counted. It iterates adjacency directly (no edge materialisation or
// sorting), so metrics calls stay cheap on large graphs.
func (a *Assignment) CutEdges(g *graph.Graph) int {
	cut := 0
	g.EachEdge(func(u, v graph.VertexID) bool {
		pu, pv := a.Get(u), a.Get(v)
		if pu != Unassigned && pv != Unassigned && pu != pv {
			cut++
		}
		return true
	})
	return cut
}

// Config carries the shared parameters of the streaming partitioners.
type Config struct {
	// K is the number of partitions.
	K int
	// ExpectedVertices is the stream's total vertex count n; the capacity
	// constraint C = Slack * n / K derives from it (paper §4.1).
	ExpectedVertices int
	// Slack inflates the per-partition capacity; 1.0 reproduces the strict
	// C = n/k of LDG. Values slightly above 1 (e.g. 1.05) avoid forced
	// spill near the end of the stream. Zero defaults to 1.0.
	Slack float64
	// Seed drives tie-breaking in heuristics that randomise; the same seed
	// reproduces the same partitioning.
	Seed int64
}

// Capacity returns the per-partition capacity constraint C.
func (c Config) Capacity() float64 {
	slack := c.Slack
	if slack == 0 {
		slack = 1.0
	}
	return slack * float64(c.ExpectedVertices) / float64(c.K)
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("partition: K=%d < 1", c.K)
	}
	if c.ExpectedVertices < 1 {
		return fmt.Errorf("partition: ExpectedVertices=%d < 1", c.ExpectedVertices)
	}
	if c.Slack < 0 {
		return fmt.Errorf("partition: Slack=%v < 0", c.Slack)
	}
	return nil
}

// Streaming is a streaming vertex partitioner: it places each vertex as it
// arrives, given the vertex's already-known neighbours (placed or not), and
// never revisits a decision.
type Streaming interface {
	// Place assigns v, whose currently-known neighbours are neighbors
	// (only the already-assigned ones influence scoring), and returns the
	// chosen partition. neighbors is only valid for the duration of the
	// call: drivers (PartitionStream, Restreamer) reuse one scratch buffer
	// across vertices, so implementations must not retain it.
	Place(v graph.VertexID, neighbors []graph.VertexID) ID
	// Assignment exposes the accumulated placement.
	Assignment() *Assignment
	// Name identifies the heuristic in reports.
	Name() string
}

// PriorAware is a Streaming heuristic that can restream: score against a
// previous pass's assignment for vertices not yet re-placed in the current
// pass, with a self-affinity bonus for a vertex's own prior partition
// (ReLDG / ReFennel, Awadelkarim & Ugander 2020). Capacity accounting stays
// with the current pass's assignment.
type PriorAware interface {
	Streaming
	// SetPrior installs the previous assignment and the self-affinity
	// weight (<= 0 defaults to 1). Must be called before the first Place
	// of the pass.
	SetPrior(prev *Assignment, selfWeight float64)
}
