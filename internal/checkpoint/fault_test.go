package checkpoint

import (
	"errors"
	"path/filepath"
	"testing"

	"loom/internal/fault"
	"loom/internal/graph"
)

// openForFaults builds a store with two appended batches, ready for
// fault-injection drills.
func openForFaults(t *testing.T, dir string) *Store {
	t.Helper()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(0, "a"), v(1, "b"), e(0, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(2, "c"), e(2, 0))); err != nil {
		t.Fatal(err)
	}
	return st
}

func noTmpOrphans(t *testing.T, dir string) {
	t.Helper()
	if stale, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(stale) != 0 {
		t.Fatalf("tmp orphans left behind: %v", stale)
	}
}

// TestSnapshotENOSPCKeepsPreviousGeneration drills ENOSPC at each of the
// three temp+rename failure positions: the failed generation must leave
// no orphan, the previous generation must stay loadable, and the WAL
// tail behind it must replay in full.
func TestSnapshotENOSPCKeepsPreviousGeneration(t *testing.T) {
	for _, point := range []fault.Point{fault.SnapWrite, fault.SnapSync, fault.SnapRename} {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			st := openForFaults(t, dir)
			g, a := testGraphAssignment(t)
			m := testMeta()
			if err := st.WriteSnapshot(m, g, a); err != nil {
				t.Fatalf("baseline snapshot: %v", err)
			}
			// Two more records form the tail behind the good generation.
			if _, err := st.Append(RecordBatch, batch(v(3, "a"))); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Append(RecordDrain, nil); err != nil {
				t.Fatal(err)
			}

			fault.Enable(fault.NewRegistry(1).FailOnce(point, fault.ErrNoSpace))
			defer fault.Disable()
			if err := st.WriteSnapshot(m, g, a); !errors.Is(err, fault.ErrNoSpace) {
				t.Fatalf("snapshot under %s = %v, want ErrNoSpace", point, err)
			}
			noTmpOrphans(t, dir)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			fault.Disable()
			st2, rec, err := Open(dir, SyncAlways)
			if err != nil {
				t.Fatalf("recover after failed snapshot: %v", err)
			}
			defer st2.Close()
			if !rec.HasSnapshot {
				t.Fatal("previous snapshot generation was not loaded")
			}
			if len(rec.Tail) != 2 {
				t.Fatalf("replayed tail = %d records, want the 2 behind the good generation", len(rec.Tail))
			}
			if rec.Tail[0].Kind != RecordBatch || rec.Tail[1].Kind != RecordDrain {
				t.Fatalf("tail kinds = %v,%v", rec.Tail[0].Kind, rec.Tail[1].Kind)
			}
		})
	}
}

// TestPruneFailureKeepsGenerationsLoadable: a failed prune pass only
// costs disk — every retained generation stays loadable, and the next
// successful snapshot prunes the backlog.
func TestPruneFailureKeepsGenerationsLoadable(t *testing.T) {
	dir := t.TempDir()
	st := openForFaults(t, dir)
	g, a := testGraphAssignment(t)
	m := testMeta()

	fault.Enable(fault.NewRegistry(1).Fail(fault.SegPrune, fault.ErrNoSpace))
	defer fault.Disable()
	for i := 0; i < 4; i++ {
		if err := st.WriteSnapshot(m, g, a); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if _, err := st.Append(RecordBatch, batch(v(graph4(i), "a"))); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) <= keepSnapshots {
		t.Fatalf("prune ran under injection: %d snapshot files", len(snaps))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	fault.Disable()
	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("recover with unpruned backlog: %v", err)
	}
	if !rec.HasSnapshot || len(rec.Tail) != 1 {
		t.Fatalf("recovered snapshot=%v tail=%d, want newest generation + 1 record", rec.HasSnapshot, len(rec.Tail))
	}
	// The next successful snapshot prunes the backlog down.
	if err := st2.WriteSnapshot(m, g, a); err != nil {
		t.Fatal(err)
	}
	snaps, _ = filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) > keepSnapshots {
		t.Fatalf("backlog survived a clean prune: %d snapshot files", len(snaps))
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// graph4 maps small ints to fresh vertex IDs outside the seed batches.
func graph4(i int) graph.VertexID { return graph.VertexID(10 + i) }

// TestWALShortWriteRollsBack: an injected torn frame (ENOSPC mid-write)
// must be truncated away so the writer keeps working and recovery sees a
// gapless history.
func TestWALShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	st := openForFaults(t, dir)
	fault.Enable(fault.NewRegistry(1).ShortWriteOnce(fault.WALFrameWrite, 7))
	defer fault.Disable()
	if _, err := st.Append(RecordBatch, batch(v(3, "a"))); !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("append under short write = %v, want ErrNoSpace", err)
	}
	// The writer rolled back: the very next append lands cleanly.
	if _, err := st.Append(RecordBatch, batch(v(3, "a"))); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fault.Disable()
	_, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.TornTail {
		t.Fatal("torn bytes survived the rollback")
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("replayed %d records, want 3 (2 seed + 1 after rollback)", len(rec.Tail))
	}
}

// TestWALSyncFailureRollsBack: a failed fsync keeps the invariant that a
// failed append leaves no record.
func TestWALSyncFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	st := openForFaults(t, dir)
	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WALSync, fault.ErrNoSpace))
	defer fault.Disable()
	if _, err := st.Append(RecordBatch, batch(v(3, "a"))); !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("append under failed fsync = %v, want ErrNoSpace", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fault.Disable()
	_, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Tail) != 2 {
		t.Fatalf("replayed %d records, want only the 2 acknowledged ones", len(rec.Tail))
	}
}

// TestWALReadCorruptTornTail: read-side corruption of the segment tail
// degrades to a truncated torn tail — reported, never a panic or a scan
// error.
func TestWALReadCorruptTornTail(t *testing.T) {
	dir := t.TempDir()
	st := openForFaults(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WALReadCorrupt, nil))
	defer fault.Disable()
	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("recover over corrupted tail: %v", err)
	}
	if !rec.TornTail {
		t.Fatal("corruption was not surfaced as a torn tail")
	}
	if len(rec.Tail) != 1 {
		t.Fatalf("replayed %d records, want 1 (the corrupted final record is dropped)", len(rec.Tail))
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapReadSkipFallsBack: a damaged newest snapshot is passed over and
// recovery anchors on the previous generation plus its longer tail.
func TestSnapReadSkipFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := openForFaults(t, dir)
	g, a := testGraphAssignment(t)
	m := testMeta()
	if err := st.WriteSnapshot(m, g, a); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(3, "a"))); err != nil {
		t.Fatal(err)
	}
	m2 := m
	m2.Epoch = m.Epoch + 1
	if err := st.WriteSnapshot(m2, g, a); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.SnapReadSkip, nil))
	defer fault.Disable()
	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("recover with damaged newest generation: %v", err)
	}
	defer st2.Close()
	if !rec.HasSnapshot || rec.Meta.Epoch != m.Epoch {
		t.Fatalf("recovered epoch %d (snapshot=%v), want fallback to epoch %d",
			rec.Meta.Epoch, rec.HasSnapshot, m.Epoch)
	}
	if rec.SkippedSnapshots != 1 {
		t.Fatalf("SkippedSnapshots = %d, want 1", rec.SkippedSnapshots)
	}
	if len(rec.Tail) != 1 {
		t.Fatalf("replayed %d records, want the 1 behind the fallback generation", len(rec.Tail))
	}
}
