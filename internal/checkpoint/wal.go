package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"loom/internal/fault"
	"loom/internal/graph"
	"loom/internal/stream"
	"loom/internal/wire"
)

// The write-ahead log is a sequence of framed records appended to segment
// files. Each frame is
//
//	u32 LE payload length | u32 LE CRC32(payload) | payload
//
// (the shared wire framing — see internal/wire) and each payload is
//
//	u64 LE sequence number | u8 record kind | body
//
// where the body of a text batch record is the graph-stream text codec
// ("v <id> <label>" / "e <u> <v>" lines, removals as "rv <id>" /
// "re <u> <v>") — the same shape loom-serve
// ingests over HTTP, so replay reuses stream.FromReader unchanged — and
// the body of a binary batch record is a binary ingest frame payload
// verbatim (see internal/stream's binary codec), so an accepted binary
// batch is logged without re-encoding. A segment file starts with an
// 8-byte magic plus the u64 LE sequence number of its first record.
//
// Recovery tolerates a torn tail: a frame whose length, checksum, body or
// sequence number does not check out ends the scan, and everything before
// it replays normally. The writer truncates the file back to the last
// intact frame before appending again.

const (
	walMagic = "loomwal1"
	// walHeaderSize is magic + start sequence number.
	walHeaderSize = len(walMagic) + 8
	// frameHeaderSize is length + CRC (the shared wire framing).
	frameHeaderSize = wire.HeaderSize
	// payloadHeaderSize is sequence number + kind.
	payloadHeaderSize = 9
	// maxPayload bounds a single record so a corrupt length field cannot
	// drive a giant allocation.
	maxPayload = wire.MaxPayload
)

// RecordKind discriminates WAL records.
type RecordKind uint8

const (
	// RecordBatch carries the accepted elements of one ingest batch.
	RecordBatch RecordKind = 1
	// RecordDrain marks a window drain (Server.Drain): replay must force
	// the same assignment barrier at the same stream position.
	RecordDrain RecordKind = 2
	// RecordBarrier marks a checkpoint barrier (drain + engine reseed).
	// It is written before the snapshot; when the snapshot write then
	// succeeds and rotates the WAL the record is covered and filtered,
	// but when it fails, replay must reproduce the reseed too — a drain
	// alone would leave the engine (and its tie-break RNG) in a
	// different state than the live server had.
	RecordBarrier RecordKind = 3
	// RecordBatchBinary carries the accepted elements of one binary
	// ingest batch: the body is a binary frame payload (internal/stream)
	// appended verbatim, so the hot ingest path never re-encodes. Only
	// dedup-clean payloads whose every element was accepted are logged
	// this way; partial batches fall back to RecordBatch.
	RecordBatchBinary RecordKind = 4
)

// Record is one decoded WAL entry.
type Record struct {
	Seq   uint64
	Kind  RecordKind
	Elems []stream.Element // batch records only
}

// CodecSafeLabel reports whether l survives the line-oriented text codecs
// (graph files, WAL bodies, snapshots): non-empty and free of anything
// the decoders treat as whitespace. The bar is unicode.IsSpace because
// that is exactly what strings.Fields splits on and strings.TrimSpace
// trims — an ASCII-only check would let labels like "a\vb" (splits into
// extra fields) or "b\v" (silently decodes as "b") through, acknowledging
// batches the codecs cannot replay faithfully. The serve layer rejects
// unsafe labels at ingest with this same predicate, so the accepted
// stream is always encodable.
func CodecSafeLabel(l graph.Label) bool {
	return wire.SafeLabel(string(l))
}

// encodeElements renders elems in the graph-stream text codec. Labels
// must be codec-safe; the serve layer enforces this at ingest validation,
// so an error here indicates a caller bug.
func encodeElements(buf *bytes.Buffer, elems []stream.Element) error {
	for i := range elems {
		el := &elems[i]
		switch el.Kind {
		case stream.VertexElement:
			if !CodecSafeLabel(el.Label) {
				return fmt.Errorf("checkpoint: vertex %d label %q is not codec-safe", el.V, el.Label)
			}
			fmt.Fprintf(buf, "v %d %s\n", el.V, el.Label)
		case stream.EdgeElement:
			fmt.Fprintf(buf, "e %d %d\n", el.V, el.U)
		case stream.RemoveVertexElement:
			fmt.Fprintf(buf, "rv %d\n", el.V)
		case stream.RemoveEdgeElement:
			fmt.Fprintf(buf, "re %d %d\n", el.V, el.U)
		default:
			return fmt.Errorf("checkpoint: unknown element kind %d", el.Kind)
		}
	}
	return nil
}

// decodeElements parses a batch body back into elements.
func decodeElements(body []byte) ([]stream.Element, error) {
	src := stream.FromReader(bytes.NewReader(body))
	var out []stream.Element
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, el)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// encodeRecord frames one record whose body is built from elems.
func encodeRecord(seq uint64, kind RecordKind, elems []stream.Element) ([]byte, error) {
	var body bytes.Buffer
	if kind == RecordBatch {
		if err := encodeElements(&body, elems); err != nil {
			return nil, err
		}
	}
	return encodeRecordBody(seq, kind, body.Bytes()), nil
}

// encodeRecordBody frames one record around a pre-encoded body using the
// shared wire framing. This is the path binary ingest batches take: the
// body is the frame payload the decode stage already validated, appended
// without re-encoding.
func encodeRecordBody(seq uint64, kind RecordKind, body []byte) []byte {
	frame := make([]byte, frameHeaderSize+payloadHeaderSize+len(body))
	payload := frame[frameHeaderSize:]
	binary.LittleEndian.PutUint64(payload[0:8], seq)
	payload[8] = byte(kind)
	copy(payload[payloadHeaderSize:], body)
	wire.PutHeader(frame[:frameHeaderSize], payload)
	return frame
}

// decodePayload parses one CRC-validated payload.
func decodePayload(payload []byte) (Record, error) {
	if len(payload) < payloadHeaderSize {
		return Record{}, fmt.Errorf("checkpoint: payload %d bytes, want >= %d", len(payload), payloadHeaderSize)
	}
	rec := Record{
		Seq:  binary.LittleEndian.Uint64(payload[0:8]),
		Kind: RecordKind(payload[8]),
	}
	body := payload[payloadHeaderSize:]
	switch rec.Kind {
	case RecordBatch:
		elems, err := decodeElements(body)
		if err != nil {
			return Record{}, err
		}
		rec.Elems = elems
	case RecordBatchBinary:
		elems, err := stream.DecodeFramePayload(body)
		if err != nil {
			return Record{}, err
		}
		rec.Elems = elems
	case RecordDrain, RecordBarrier:
		if len(body) != 0 {
			return Record{}, fmt.Errorf("checkpoint: record kind %d carries %d body bytes", rec.Kind, len(body))
		}
	default:
		return Record{}, fmt.Errorf("checkpoint: unknown record kind %d", rec.Kind)
	}
	return rec, nil
}

// segmentScan is the result of reading one WAL segment.
type segmentScan struct {
	start uint64   // first sequence number, from the header
	recs  []Record // intact records, consecutive from start
	valid int64    // file offset just past the last intact record
	torn  bool     // trailing bytes were discarded
}

var errBadSegmentHeader = fmt.Errorf("checkpoint: bad WAL segment header")

// errWriterBroken is returned by every append after a failed rollback;
// hoisted to a package variable so the hot append path allocates nothing.
var errWriterBroken = errors.New("checkpoint: WAL writer broken by an earlier failed write")

// scanSegment decodes a whole segment from data. A missing or corrupt
// header yields errBadSegmentHeader. Framing-level damage — short or
// checksum-failing trailing bytes, the only shapes a torn write can
// leave — ends the scan as a torn tail, never an error and never a
// panic. A frame whose checksum passes but whose payload does not decode
// (or carries the wrong sequence number) cannot come from a torn write:
// that is corruption or an encoder/decoder mismatch, and it is returned
// as an error so recovery refuses to start instead of silently
// truncating every acknowledged record behind it.
func scanSegment(data []byte) (segmentScan, error) {
	if len(data) < walHeaderSize || string(data[:len(walMagic)]) != walMagic {
		return segmentScan{}, errBadSegmentHeader
	}
	s := segmentScan{
		start: binary.LittleEndian.Uint64(data[len(walMagic):walHeaderSize]),
		valid: int64(walHeaderSize),
	}
	next := s.start
	pos := walHeaderSize
	for {
		if pos == len(data) {
			return s, nil // clean end
		}
		if len(data)-pos < frameHeaderSize {
			s.torn = true
			return s, nil
		}
		n, sum := wire.ParseHeader(data[pos : pos+frameHeaderSize])
		if n < payloadHeaderSize || n > maxPayload || len(data)-pos-frameHeaderSize < n {
			s.torn = true
			return s, nil
		}
		payload := data[pos+frameHeaderSize : pos+frameHeaderSize+n]
		if !wire.Verify(payload, sum) {
			s.torn = true
			return s, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return s, fmt.Errorf("checkpoint: offset %d: CRC-valid record does not decode: %w", pos, err)
		}
		if rec.Seq != next {
			return s, fmt.Errorf("checkpoint: offset %d: record seq %d, want %d", pos, rec.Seq, next)
		}
		s.recs = append(s.recs, rec)
		next++
		pos += frameHeaderSize + n
		s.valid = int64(pos)
	}
}

// readSegmentFile scans the segment at path. The fault.WALReadCorrupt
// failpoint flips the last byte of the in-memory image before the scan,
// simulating on-disk corruption of the tail: the scan must degrade to a
// torn tail, never a panic.
func readSegmentFile(path string) (segmentScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segmentScan{}, err
	}
	if inj := fault.Hit(fault.WALReadCorrupt); inj != nil && len(data) > walHeaderSize {
		data[len(data)-1] ^= 0xff
	}
	return scanSegment(data)
}

// walWriter appends framed records to one open segment file.
type walWriter struct {
	f     *os.File
	path  string
	start uint64
	next  uint64
	sync  bool
	// off is the offset just past the last intact frame. A failed or
	// short frame write is rolled back by truncating to off; if even that
	// fails the writer flips broken and refuses further appends — leaving
	// a torn frame mid-file would make every later (fsynced!) record
	// unreachable to the recovery scan.
	off    int64
	broken bool
}

// createSegment writes a fresh segment with the given start sequence. The
// header is written and (under SyncAlways) synced before the writer is
// returned, so a crash right after rotation leaves a parseable segment.
//
//loom:framedwriter emits the fixed-size segment header the frame scan starts from
func createSegment(path string, start uint64, syncOn bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], start)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if syncOn {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walWriter{f: f, path: path, start: start, next: start, sync: syncOn, off: int64(walHeaderSize)}, nil
}

// openSegmentForAppend reopens an existing segment, truncating any torn
// tail back to validSize, and positions the writer at the end.
func openSegmentForAppend(path string, sc segmentScan, syncOn bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(sc.valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(sc.valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	next := sc.start + uint64(len(sc.recs))
	return &walWriter{f: f, path: path, start: sc.start, next: next, sync: syncOn, off: sc.valid}, nil
}

// append frames and writes one record, returning its size on disk. A
// failed write is rolled back to the previous frame boundary; a failed
// rollback breaks the writer for good (fail-fast beats acknowledging
// records the recovery scan can never reach behind a torn frame).
//
//loom:framedwriter this is the CRC-framing helper itself; every byte it writes is a framed record
//loom:hotpath
func (w *walWriter) append(kind RecordKind, elems []stream.Element) (int, error) {
	if w.broken {
		return 0, errWriterBroken
	}
	// Fault injection sites mirror the real failure shapes: WALAppend
	// fails before any byte moves, WALFrameWrite tears (ShortWrite) or
	// fails the frame write, WALSync fails the fsync after a complete
	// frame. Each takes the same rollback path the organic error would.
	if err := fault.Check(fault.WALAppend); err != nil {
		return 0, err
	}
	frame, err := encodeRecord(w.next, kind, elems)
	if err != nil {
		return 0, err
	}
	return w.writeFrame(frame)
}

// appendBody frames and writes one record around a pre-encoded body —
// the zero-re-encode path binary ingest batches take. Same fault sites
// and rollback guarantees as append.
//
//loom:framedwriter shares the frame write/rollback tail with append; every byte is a framed record
//loom:hotpath
func (w *walWriter) appendBody(kind RecordKind, body []byte) (int, error) {
	if w.broken {
		return 0, errWriterBroken
	}
	if err := fault.Check(fault.WALAppend); err != nil {
		return 0, err
	}
	return w.writeFrame(encodeRecordBody(w.next, kind, body))
}

// writeFrame writes one already-framed record, honouring the frame-write
// and sync failpoints and rolling back to the previous frame boundary on
// failure.
//
//loom:framedwriter the single sink both append paths funnel framed bytes through
//loom:hotpath
func (w *walWriter) writeFrame(frame []byte) (int, error) {
	if inj := fault.Hit(fault.WALFrameWrite); inj != nil {
		if sw := inj.ShortWrite; sw > 0 && sw < len(frame) {
			// A genuinely torn frame prefix, exactly what a crash or
			// ENOSPC mid-write leaves; rollback must truncate it away.
			_, _ = w.f.Write(frame[:sw])
		}
		w.rollback()
		return 0, inj.Failure()
	}
	n, err := w.f.Write(frame)
	if err != nil || n != len(frame) {
		w.rollback()
		if err == nil {
			err = io.ErrShortWrite
		}
		return 0, err
	}
	if w.sync {
		if err := fault.Check(fault.WALSync); err != nil {
			w.rollback()
			return 0, err
		}
		if err := w.f.Sync(); err != nil {
			// Rolling the unsynced frame back keeps one invariant for
			// callers: a failed append leaves no record. (Recovery copes
			// either way — a frame boundary is always a valid file end.)
			w.rollback()
			return 0, err
		}
	}
	w.off += int64(len(frame))
	w.next++
	return len(frame), nil
}

// rollback truncates a torn frame back to the previous frame boundary;
// failure to do so breaks the writer permanently.
func (w *walWriter) rollback() {
	if terr := w.f.Truncate(w.off); terr != nil {
		w.broken = true
	} else if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
		w.broken = true
	}
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
