package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"loom/internal/fault"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/stream"
)

// SyncPolicy says when the WAL is fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: an acknowledged batch
	// survives power loss. The zero value, so it is also the default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache: faster, but batches
	// acknowledged in the last few seconds before a crash may be lost.
	SyncNone
)

// ParseSyncPolicy maps the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("checkpoint: unknown fsync policy %q (want always|none)", s)
}

func (p SyncPolicy) String() string {
	if p == SyncNone {
		return "none"
	}
	return "always"
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
	segPrefix  = "wal-"
	segSuffix  = ".log"
	// keepSnapshots is how many generations survive pruning: the latest
	// plus one fallback in case the latest turns out unreadable later.
	keepSnapshots = 2
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix) }
func segName(seq uint64) string  { return fmt.Sprintf("%s%020d%s", segPrefix, seq, segSuffix) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scanDir lists the directory's checkpoint artifacts: snapshot sequences
// newest-first (the recovery preference order) and WAL segment start
// sequences oldest-first (the replay order).
func scanDir(dir string) (snapSeqs, segSeqs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segSeqs = append(segSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	return snapSeqs, segSeqs, nil
}

// Recovered is the state Open reconstructs from a data directory.
type Recovered struct {
	// HasSnapshot reports whether a base snapshot was loaded; when false
	// the whole history lives in Tail.
	HasSnapshot bool
	Meta        Meta
	Graph       *graph.Graph
	Assignment  *partition.Assignment
	// Tail holds the WAL records not covered by the snapshot, in order.
	Tail []Record
	// SkippedSnapshots counts snapshot files that failed validation and
	// were passed over; TornTail reports whether the last WAL segment had
	// a torn final record that was truncated.
	SkippedSnapshots int
	TornTail         bool
}

// Store manages one serving checkpoint directory: the current WAL segment
// plus snapshot rotation and pruning. It is owned by the server's single
// writer goroutine and is not safe for concurrent use.
type Store struct {
	dir    string
	policy SyncPolicy
	wal    *walWriter // also owns the next-sequence counter
}

// Open scans dir (created if missing), loads the newest intact snapshot,
// collects the WAL tail behind it, and prepares the last segment for
// appending (truncating a torn final record). The returned Recovered is
// never nil.
func Open(dir string, policy SyncPolicy) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// A crash between snapshot temp-write and rename leaves a .tmp orphan
	// that scanDir never matches; sweep them here or they accumulate.
	if stale, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix+".tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	snapSeqs, segSeqs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	for _, seq := range snapSeqs {
		// fault.SnapReadSkip treats this generation as damaged, forcing
		// the fall-back-to-previous-generation path recovery must survive.
		if fault.Check(fault.SnapReadSkip) != nil {
			rec.SkippedSnapshots++
			continue
		}
		f, err := os.Open(filepath.Join(dir, snapName(seq)))
		if err != nil {
			rec.SkippedSnapshots++
			continue
		}
		m, g, a, rerr := ReadSnapshot(f)
		f.Close()
		if rerr != nil {
			rec.SkippedSnapshots++
			continue
		}
		rec.HasSnapshot, rec.Meta, rec.Graph, rec.Assignment = true, m, g, a
		break
	}
	minSeq := rec.Meta.NextSeq // 0 without a snapshot

	// Scan every segment in order; records below minSeq are already
	// covered by the snapshot.
	var scans []segmentScan
	var paths []string
	for i, seq := range segSeqs {
		path := filepath.Join(dir, segName(seq))
		sc, err := readSegmentFile(path)
		if err == errBadSegmentHeader && i == len(segSeqs)-1 {
			// A crash during rotation can leave a header-less final
			// segment with no records in it; recreate it below.
			if err := os.Remove(path); err != nil {
				return nil, nil, err
			}
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint: segment %s: %w", segName(seq), err)
		}
		// A torn segment mid-history is not fatal by itself: under
		// SyncNone a crash can tear a tail whose records the (always
		// fsynced) snapshot already covers. The sequence-continuity check
		// below fails loudly iff a record the snapshot does NOT cover was
		// actually lost.
		rec.TornTail = rec.TornTail || sc.torn
		scans = append(scans, sc)
		paths = append(paths, path)
	}
	next := minSeq
	for i, sc := range scans {
		for _, r := range sc.recs {
			if r.Seq < minSeq {
				continue
			}
			if r.Seq != next {
				return nil, nil, fmt.Errorf("checkpoint: WAL gap: want seq %d, segment %s holds %d", next, filepath.Base(paths[i]), r.Seq)
			}
			rec.Tail = append(rec.Tail, r)
			next++
		}
	}

	s := &Store{dir: dir, policy: policy}
	if last := len(scans) - 1; last >= 0 && scans[last].start+uint64(len(scans[last].recs)) == next {
		// The last segment ends exactly at the global next sequence:
		// append in place (truncating any torn bytes).
		w, err := openSegmentForAppend(paths[last], scans[last], policy == SyncAlways)
		if err != nil {
			return nil, nil, err
		}
		s.wal = w
	} else {
		// No segment, or the last segment's tail was torn away while the
		// snapshot had already covered those sequences — appending there
		// would leave an in-segment gap that the next recovery rejects.
		// Start a fresh segment at the global next sequence instead.
		w, err := createSegment(filepath.Join(dir, segName(next)), next, policy == SyncAlways)
		if err != nil {
			return nil, nil, err
		}
		s.wal = w
		s.syncDir()
	}
	return s, rec, nil
}

// NextSeq is the sequence number the next appended record will get.
func (s *Store) NextSeq() uint64 { return s.wal.next }

// Append writes one record to the WAL (fsync per policy) and returns its
// size on disk.
func (s *Store) Append(kind RecordKind, elems []stream.Element) (int, error) {
	return s.wal.append(kind, elems)
}

// AppendBinary writes one binary-batch record whose body is the given
// pre-encoded binary frame payload, verbatim — no re-encoding between
// the decode stage and the log. The caller (the serve decode stage)
// guarantees the payload decodes cleanly with zero intra-frame
// duplicates and that every element it carries was accepted; replay
// rejects anything else as corruption.
func (s *Store) AppendBinary(payload []byte) (int, error) {
	return s.wal.appendBody(RecordBatchBinary, payload)
}

// WriteSnapshot persists one snapshot (temp file + rename), rotates the
// WAL to a fresh segment, and prunes snapshots and segments that are no
// longer needed. m.NextSeq is stamped by the store.
func (s *Store) WriteSnapshot(m Meta, g *graph.Graph, a *partition.Assignment) error {
	m.NextSeq = s.wal.next
	final := filepath.Join(s.dir, snapName(m.NextSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Fault sites cover the three distinct failure positions of the
	// temp+rename dance — body write, fsync, rename — each of which must
	// leave the previous generation loadable and no tmp orphan behind.
	if err := fault.Check(fault.SnapWrite); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := WriteSnapshot(f, m, g, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := fault.Check(fault.SnapSync); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fault.Check(fault.SnapRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	s.syncDir()

	// Rotate the WAL so the tail behind the new snapshot starts empty.
	// Skip when the current segment already starts at the next sequence
	// since the last rotation) — recreating it would truncate nothing —
	// unless the writer broke (failed write + failed rollback): the
	// snapshot has re-anchored history, and recreating the segment (same
	// name, O_TRUNC) discards the garbage and yields a working writer, so
	// a wedge cleared by this snapshot stays cleared.
	if s.wal.start != s.wal.next || s.wal.broken {
		w, err := createSegment(filepath.Join(s.dir, segName(m.NextSeq)), m.NextSeq, s.policy == SyncAlways)
		if err != nil {
			return err
		}
		old := s.wal
		s.wal = w
		s.syncDir()
		// Best-effort: everything in the old segment is covered by the
		// snapshot just written (or was unacknowledged garbage on a
		// broken writer), so a close failure changes nothing durable.
		_ = old.close()
	}
	s.prune()
	return nil
}

// prune removes snapshots beyond the newest keepSnapshots and WAL
// segments that no kept snapshot needs. Best-effort: pruning failures are
// ignored (they only cost disk).
func (s *Store) prune() {
	// An injected prune failure skips the pass wholesale, as a failed
	// unlink would: the extra generations cost disk, never correctness.
	if fault.Check(fault.SegPrune) != nil {
		return
	}
	snapSeqs, segSeqs, err := scanDir(s.dir)
	if err != nil {
		return
	}
	if len(snapSeqs) > keepSnapshots {
		for _, seq := range snapSeqs[keepSnapshots:] {
			os.Remove(filepath.Join(s.dir, snapName(seq)))
		}
		snapSeqs = snapSeqs[:keepSnapshots]
	}
	if len(snapSeqs) == 0 {
		return
	}
	oldestNeeded := snapSeqs[len(snapSeqs)-1]
	// Segment i covers sequences [segSeqs[i], segSeqs[i+1]); it is safe to
	// delete when the whole range predates the oldest kept snapshot.
	for i := 0; i+1 < len(segSeqs); i++ {
		if segSeqs[i+1] <= oldestNeeded {
			os.Remove(filepath.Join(s.dir, segName(segSeqs[i])))
		}
	}
}

// syncDir fsyncs the directory so renames and creations are durable.
// Best-effort: some filesystems refuse directory fsync.
func (s *Store) syncDir() {
	if s.policy != SyncAlways {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Close closes the WAL segment. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}
