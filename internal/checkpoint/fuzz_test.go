package checkpoint

import (
	"bytes"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/stream"
)

// FuzzSnapshotCodec feeds arbitrary bytes to the snapshot reader: it must
// never panic, and whenever it does accept an input, re-encoding the
// decoded state must produce a snapshot the reader accepts again with the
// same metadata (round-trip stability).
func FuzzSnapshotCodec(f *testing.F) {
	g := graph.New()
	g.AddVertex(0, "a")
	g.AddVertex(1, "b")
	if err := g.AddEdge(0, 1); err != nil {
		f.Fatal(err)
	}
	a := partition.MustNewAssignment(2)
	_ = a.Set(0, 0)
	_ = a.Set(1, 1)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, Meta{Epoch: 3, K: 2, ExpectedVertices: 4, NextSeq: 9}, g, a); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])            // torn
	f.Add([]byte("loom-snapshot 1\n"))   // header only
	f.Add([]byte("%end crc32=00000000")) // footer only
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, gg, ga, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := WriteSnapshot(&out, m, gg, ga); werr != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", werr)
		}
		m2, gg2, _, rerr := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if rerr != nil {
			t.Fatalf("re-decode failed: %v", rerr)
		}
		if m2 != m {
			t.Fatalf("meta changed across round-trip: %+v vs %+v", m, m2)
		}
		if !gg2.Equal(gg) {
			t.Fatal("graph changed across round-trip")
		}
	})
}

// FuzzWALRecord feeds arbitrary bytes to the segment scanner: never panic
// on corrupt or truncated input, a torn final record is skipped rather
// than fatal, and every record the scanner does accept must round-trip
// through the frame encoder bit for bit.
func FuzzWALRecord(f *testing.F) {
	mkSeg := func(start uint64, recs ...[]byte) []byte {
		var buf bytes.Buffer
		buf.WriteString(walMagic)
		var hdr [8]byte
		for i := 0; i < 8; i++ {
			hdr[i] = byte(start >> (8 * i))
		}
		buf.Write(hdr[:])
		for _, r := range recs {
			buf.Write(r)
		}
		return buf.Bytes()
	}
	r0, err := encodeRecord(0, RecordBatch, []stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
		{Kind: stream.EdgeElement, V: 1, U: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	r1, err := encodeRecord(1, RecordDrain, nil)
	if err != nil {
		f.Fatal(err)
	}
	var enc stream.FrameEncoder
	binBody, err := enc.AppendPayload(nil, []stream.Element{
		{Kind: stream.VertexElement, V: 3, Label: "c"},
		{Kind: stream.EdgeElement, V: 1, U: 3},
	})
	if err != nil {
		f.Fatal(err)
	}
	r2 := encodeRecordBody(2, RecordBatchBinary, binBody)
	r3, err := encodeRecord(3, RecordBatch, []stream.Element{
		{Kind: stream.RemoveEdgeElement, V: 1, U: 2},
		{Kind: stream.RemoveVertexElement, V: 2},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
	})
	if err != nil {
		f.Fatal(err)
	}
	var renc stream.FrameEncoder
	rmBody, err := renc.AppendPayload(nil, []stream.Element{
		{Kind: stream.RemoveVertexElement, V: 3},
		{Kind: stream.RemoveEdgeElement, V: 1, U: 3},
	})
	if err != nil {
		f.Fatal(err)
	}
	r4 := encodeRecordBody(4, RecordBatchBinary, rmBody)
	full := mkSeg(0, r0, r1, r2, r3, r4)
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn final (binary removal) record
	f.Add(mkSeg(7))           // header only
	f.Add([]byte(walMagic))   // short header
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := scanSegment(data)
		if err != nil {
			// Bad header, or a CRC-valid frame that does not decode
			// (corruption is refused, not silently truncated).
			return
		}
		if sc.valid > int64(len(data)) {
			t.Fatalf("valid offset %d beyond input %d", sc.valid, len(data))
		}
		next := sc.start
		for _, rec := range sc.recs {
			if rec.Seq != next {
				t.Fatalf("scanner returned non-consecutive seq %d (want %d)", rec.Seq, next)
			}
			next++
			var frame []byte
			if rec.Kind == RecordBatchBinary {
				// Binary bodies re-encode through the binary codec; the
				// text encoder would stamp the right kind over the wrong
				// body format.
				var renc stream.FrameEncoder
				body, err := renc.AppendPayload(nil, rec.Elems)
				if err != nil {
					t.Fatalf("accepted binary record does not re-encode: %v", err)
				}
				frame = encodeRecordBody(rec.Seq, rec.Kind, body)
			} else {
				var err error
				frame, err = encodeRecord(rec.Seq, rec.Kind, rec.Elems)
				if err != nil {
					t.Fatalf("accepted record does not re-encode: %v", err)
				}
			}
			back, err := decodePayload(frame[frameHeaderSize:])
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v", err)
			}
			if back.Seq != rec.Seq || back.Kind != rec.Kind || !elemsEqual(back.Elems, rec.Elems) {
				t.Fatalf("record changed across round-trip: %+v vs %+v", rec, back)
			}
		}
		// The valid prefix must rescan to the same records (truncation
		// at the reported offset is safe).
		if sc.torn {
			sc2, err := scanSegment(data[:sc.valid])
			if err != nil || sc2.torn || len(sc2.recs) != len(sc.recs) {
				t.Fatalf("valid prefix rescans to %d records (torn=%v, err=%v), want %d", len(sc2.recs), sc2.torn, err, len(sc.recs))
			}
		}
	})
}
