package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/stream"
)

func testGraphAssignment(t testing.TB) (*graph.Graph, *partition.Assignment) {
	t.Helper()
	g := graph.New()
	for i, l := range []graph.Label{"a", "b", "a", "c", "b"} {
		g.AddVertex(graph.VertexID(i), l)
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := partition.MustNewAssignment(3)
	for i, p := range []partition.ID{0, 1, 2, 0, 1} {
		if err := a.Set(graph.VertexID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	return g, a
}

func testMeta() Meta {
	return Meta{
		Epoch: 42, K: 3, ExpectedVertices: 1024, WindowSize: 64,
		Threshold: 0.05, Slack: 1.2, Seed: 7,
		Ingested: 10, Rejected: 2, Cut: 3, Observed: 5,
		Restreams: 1, SinceRestream: 4, EverRestream: true, NextSeq: 17,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g, a := testGraphAssignment(t)
	m := testMeta()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m, g, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	gm, gg, ga, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if gm != m {
		t.Fatalf("meta round-trip:\n got %+v\nwant %+v", gm, m)
	}
	if !gg.Equal(g) {
		t.Fatal("graph did not round-trip")
	}
	if ga.K() != a.K() || ga.Len() != a.Len() {
		t.Fatalf("assignment k=%d len=%d, want k=%d len=%d", ga.K(), ga.Len(), a.K(), a.Len())
	}
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		if ga.Get(v) != p {
			t.Fatalf("assignment Get(%d) = %d, want %d", v, ga.Get(v), p)
		}
	})
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g, a := testGraphAssignment(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, testMeta(), g, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncation anywhere must fail (missing or mismatching footer).
	for _, cut := range []int{1, len(good) / 2, len(good) - 2} {
		if _, _, _, err := ReadSnapshot(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncated snapshot at %d accepted", cut)
		}
	}
	// A flipped byte in the body must fail the checksum.
	bad := append([]byte(nil), good...)
	bad[len(good)/2] ^= 0x40
	if _, _, _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted snapshot accepted")
	}
}

func batch(elems ...stream.Element) []stream.Element { return elems }

func v(id graph.VertexID, l graph.Label) stream.Element {
	return stream.Element{Kind: stream.VertexElement, V: id, Label: l}
}

func e(u, vv graph.VertexID) stream.Element {
	return stream.Element{Kind: stream.EdgeElement, V: u, U: vv}
}

// elemsEqual ignores Seq, which the WAL does not persist (the decoder
// renumbers within each record).
func elemsEqual(a, b []stream.Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].V != b[i].V || a[i].U != b[i].U || a[i].Label != b[i].Label {
			return false
		}
	}
	return true
}

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasSnapshot || len(rec.Tail) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	batches := [][]stream.Element{
		batch(v(0, "a"), v(1, "b"), e(0, 1)),
		batch(v(2, "c"), e(2, 0)),
	}
	for _, b := range batches {
		if _, err := st.Append(RecordBatch, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Append(RecordDrain, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(3, "a"))); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything replays in order.
	st2, rec2, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Tail) != 4 || rec2.TornTail {
		t.Fatalf("recovered %d records (torn=%v), want 4 intact", len(rec2.Tail), rec2.TornTail)
	}
	for i, r := range rec2.Tail {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if !elemsEqual(rec2.Tail[0].Elems, batches[0]) || !elemsEqual(rec2.Tail[1].Elems, batches[1]) {
		t.Fatalf("batches did not round-trip: %+v", rec2.Tail)
	}
	if rec2.Tail[2].Kind != RecordDrain {
		t.Fatalf("record 2 kind = %d, want drain", rec2.Tail[2].Kind)
	}
	st2.Close()

	// Tear the final record: recovery skips it, keeps the rest, and
	// appending after recovery overwrites the torn bytes.
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st3, rec3, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Tail) != 3 || !rec3.TornTail {
		t.Fatalf("after tear: %d records, torn=%v; want 3, true", len(rec3.Tail), rec3.TornTail)
	}
	if _, err := st3.Append(RecordBatch, batch(v(9, "z"))); err != nil {
		t.Fatal(err)
	}
	st3.Close()
	_, rec4, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec4.Tail) != 4 || rec4.TornTail {
		t.Fatalf("after re-append: %d records, torn=%v", len(rec4.Tail), rec4.TornTail)
	}
	if rec4.Tail[3].Seq != 3 || !elemsEqual(rec4.Tail[3].Elems, batch(v(9, "z"))) {
		t.Fatalf("re-appended record = %+v", rec4.Tail[3])
	}
}

func TestStoreSnapshotRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g, a := testGraphAssignment(t)
	if _, err := st.Append(RecordBatch, batch(v(0, "a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(1, "b"))); err != nil {
		t.Fatal(err)
	}
	m := testMeta()
	if err := st.WriteSnapshot(m, g, a); err != nil {
		t.Fatal(err)
	}
	// Two records after the snapshot form the tail.
	if _, err := st.Append(RecordBatch, batch(v(2, "c"))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordDrain, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !rec.HasSnapshot {
		t.Fatal("snapshot not recovered")
	}
	if rec.Meta.NextSeq != 2 || rec.Meta.Epoch != m.Epoch {
		t.Fatalf("meta = %+v", rec.Meta)
	}
	if !rec.Graph.Equal(g) {
		t.Fatal("graph not recovered")
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 2 || rec.Tail[1].Kind != RecordDrain {
		t.Fatalf("tail = %+v", rec.Tail)
	}
	if st2.NextSeq() != 4 {
		t.Fatalf("next seq = %d, want 4", st2.NextSeq())
	}
}

func TestStoreSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g, a := testGraphAssignment(t)
	if _, err := st.Append(RecordBatch, batch(v(0, "a"))); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(testMeta(), g, a); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(1, "b"))); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(testMeta(), g, a); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt the newest snapshot: recovery falls back to the previous
	// one and replays the longer tail.
	snaps, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots: %v %v", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	if err := os.WriteFile(newest, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !rec.HasSnapshot || rec.SkippedSnapshots != 1 {
		t.Fatalf("recovered = %+v", rec)
	}
	if rec.Meta.NextSeq != 1 || len(rec.Tail) != 1 || rec.Tail[0].Seq != 1 {
		t.Fatalf("fallback recovery: meta=%+v tail=%+v", rec.Meta, rec.Tail)
	}
}

func TestStorePrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	g, a := testGraphAssignment(t)
	for i := 0; i < 4; i++ {
		if _, err := st.Append(RecordBatch, batch(v(graph.VertexID(100+i), "a"))); err != nil {
			t.Fatal(err)
		}
		if err := st.WriteSnapshot(testMeta(), g, a); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"))
	if len(snaps) != keepSnapshots {
		t.Fatalf("%d snapshots on disk, want %d", len(snaps), keepSnapshots)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	// Segments older than the oldest kept snapshot are gone: at most one
	// per kept generation plus the active one.
	if len(segs) > keepSnapshots+1 {
		t.Fatalf("%d segments on disk: %v", len(segs), segs)
	}
	// The pruned directory still recovers.
	st2, rec, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if !rec.HasSnapshot || len(rec.Tail) != 0 {
		t.Fatalf("recovered = %+v", rec)
	}
}

// TestTornTailCoveredBySnapshotStartsFreshSegment: under SyncNone a crash
// can tear away records the (always fsynced) snapshot already covers.
// Recovery must not append into the shortened segment (that would leave
// an in-segment sequence gap the NEXT recovery rejects); it starts a
// fresh segment at the snapshot's next sequence, and the directory stays
// recoverable across further restarts.
func TestTornTailCoveredBySnapshotStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g, a := testGraphAssignment(t)
	for i := 0; i < 4; i++ {
		if _, err := st.Append(RecordBatch, batch(v(graph.VertexID(i), "a"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(testMeta(), g, a); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate the SyncNone crash: the post-snapshot segment vanished,
	// and the pre-snapshot segment (recreated here, since rotation
	// legitimately pruned it) survives with only two of its four covered
	// records plus a torn sliver.
	if err := os.Remove(filepath.Join(dir, segName(4))); err != nil {
		t.Fatal(err)
	}
	seg0 := filepath.Join(dir, segName(0))
	w, err := createSegment(seg0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.append(RecordBatch, batch(v(graph.VertexID(i), "a"))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("recovery refused a fully snapshot-covered torn tail: %v", err)
	}
	if !rec.HasSnapshot || len(rec.Tail) != 0 {
		t.Fatalf("recovered %+v, want snapshot with empty tail", rec)
	}
	if st2.NextSeq() != 4 {
		t.Fatalf("next seq = %d, want 4", st2.NextSeq())
	}
	if _, err := st2.Append(RecordBatch, batch(v(9, "z"))); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	// The follow-up recovery sees a gapless history: snapshot + seq 4.
	st3, rec3, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer st3.Close()
	if len(rec3.Tail) != 1 || rec3.Tail[0].Seq != 4 {
		t.Fatalf("second recovery tail = %+v", rec3.Tail)
	}
}

// TestBrokenWriterRepairedBySnapshot: a snapshot that clears a wedge must
// also replace a broken WAL writer, even when no rotation would otherwise
// happen — otherwise the wedge re-arms on the very next append.
func TestBrokenWriterRepairedBySnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g, a := testGraphAssignment(t)
	// Sabotage the handle: the append's write and its rollback both fail,
	// breaking the writer while s.next still equals the segment start.
	if err := st.wal.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(0, "a"))); err == nil {
		t.Fatal("append on sabotaged writer succeeded")
	}
	if !st.wal.broken {
		t.Fatal("writer not broken")
	}
	if err := st.WriteSnapshot(testMeta(), g, a); err != nil {
		t.Fatalf("snapshot on broken writer: %v", err)
	}
	if _, err := st.Append(RecordBatch, batch(v(0, "a"))); err != nil {
		t.Fatalf("append after repairing snapshot: %v", err)
	}
	st.Close()
	_, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasSnapshot || len(rec.Tail) != 1 {
		t.Fatalf("recovered %+v, want snapshot + 1 record", rec)
	}
}

// TestWALWriterFailedWriteRollsBack: a failed frame write must not leave
// torn bytes in front of later appends (which recovery could then never
// reach), and a writer that cannot roll back refuses further appends.
func TestWALWriterFailedWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segName(0))
	w, err := createSegment(path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(RecordBatch, batch(v(1, "a"))); err != nil {
		t.Fatal(err)
	}
	// Sabotage the file handle: the next write fails, the rollback
	// (truncate on a closed file) fails too, and the writer breaks.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(RecordBatch, batch(v(2, "b"))); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if !w.broken {
		t.Fatal("writer did not break after a failed rollback")
	}
	if _, err := w.append(RecordBatch, batch(v(3, "c"))); err == nil {
		t.Fatal("broken writer accepted another append")
	}
	// The record appended before the sabotage is intact on disk.
	sc, err := readSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.recs) != 1 || sc.torn {
		t.Fatalf("scan after failure: %d records, torn=%v", len(sc.recs), sc.torn)
	}
	w.f = nil // already closed
}

func TestBarrierRecordRoundTrip(t *testing.T) {
	frame, err := encodeRecord(5, RecordBarrier, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodePayload(frame[frameHeaderSize:])
	if err != nil || rec.Kind != RecordBarrier || rec.Seq != 5 {
		t.Fatalf("barrier round-trip: %+v, %v", rec, err)
	}
}

func TestEncodeRejectsUnsafeLabels(t *testing.T) {
	// The decoders split/trim on unicode.IsSpace, so the predicate must
	// reject every such rune — not just ASCII blanks.
	for _, l := range []graph.Label{"", "a b", "a\tb", "a\nb", "a\vb", "b\v", "a\u00a0b", "a\u2028b"} {
		if CodecSafeLabel(l) {
			t.Errorf("CodecSafeLabel(%q) = true", l)
		}
		if _, err := encodeRecord(0, RecordBatch, batch(v(1, l))); err == nil {
			t.Errorf("label %q encoded without error", l)
		}
	}
	if !CodecSafeLabel("ok-label_1") {
		t.Error("plain label rejected")
	}
}

// TestCorruptRecordIsFatalNotTorn: a CRC-valid frame that fails to decode
// cannot come from a torn write; recovery must refuse to start rather
// than silently truncate the acknowledged records behind it.
// TestWALBinaryRecordRoundTrip interleaves text and binary batch records
// in one segment: AppendBinary's verbatim frame payload must replay as
// the same elements, in sequence with its text neighbours.
func TestWALBinaryRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	textBatch := batch(v(0, "a"), v(1, "b"), e(0, 1))
	binBatch := batch(v(2, "c"), v(3, "a"), e(2, 3), e(3, 0))
	var enc stream.FrameEncoder
	payload, err := enc.AppendPayload(nil, binBatch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, textBatch); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendBinary(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordDrain, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 3 || rec.TornTail {
		t.Fatalf("recovered %d records (torn=%v), want 3 intact", len(rec.Tail), rec.TornTail)
	}
	if rec.Tail[0].Kind != RecordBatch || !elemsEqual(rec.Tail[0].Elems, textBatch) {
		t.Fatalf("text record did not round-trip: %+v", rec.Tail[0])
	}
	if rec.Tail[1].Kind != RecordBatchBinary || !elemsEqual(rec.Tail[1].Elems, binBatch) {
		t.Fatalf("binary record did not round-trip: %+v", rec.Tail[1])
	}
	if rec.Tail[2].Kind != RecordDrain {
		t.Fatalf("record 2 kind = %d, want drain", rec.Tail[2].Kind)
	}

	// A torn binary tail is skipped like any other torn record, and the
	// intact prefix survives.
	if _, err := st2.AppendBinary(payload); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Tail) != 3 || !rec2.TornTail {
		t.Fatalf("after tear: %d records, torn=%v; want 3, true", len(rec2.Tail), rec2.TornTail)
	}
}

// TestCorruptBinaryRecordIsFatalNotTorn is the binary twin of
// TestCorruptRecordIsFatalNotTorn: a CRC-valid binary record whose frame
// payload no longer decodes (here: an unknown element kind) is an
// encoder bug or bit-rot, not a torn write — recovery must refuse, not
// silently truncate acknowledged data.
func TestCorruptBinaryRecordIsFatalNotTorn(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	var enc stream.FrameEncoder
	payload, err := enc.AppendPayload(nil, batch(v(0, "a"), v(1, "b")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendBinary(payload); err != nil {
		t.Fatal(err)
	}
	st.Close()

	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	pos := walHeaderSize
	n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
	// Drop the last byte of the binary frame body (cutting the element
	// stream mid-element) and re-stamp the WAL frame's length and CRC so
	// the framing layer still accepts it.
	rec := data[pos+frameHeaderSize : pos+frameHeaderSize+n-1]
	binary.LittleEndian.PutUint32(data[pos:pos+4], uint32(n-1))
	binary.LittleEndian.PutUint32(data[pos+4:pos+8], crc32.ChecksumIEEE(rec))
	if err := os.WriteFile(segs[0], data[:pos+frameHeaderSize+n-1], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, SyncAlways); err == nil {
		t.Fatal("Open accepted a CRC-valid undecodable binary record (silent truncation)")
	}
}

func TestCorruptRecordIsFatalNotTorn(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(0, "a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(RecordBatch, batch(v(1, "b"))); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt record 0's kind byte in place and re-stamp its CRC so the
	// frame still checksums — an encoder bug or bit-rot shape, not a torn
	// write.
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	pos := walHeaderSize
	n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
	payload := data[pos+frameHeaderSize : pos+frameHeaderSize+n]
	payload[8] = 99 // unknown record kind
	binary.LittleEndian.PutUint32(data[pos+4:pos+8], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, SyncAlways); err == nil {
		t.Fatal("Open accepted a CRC-valid undecodable record (silent truncation)")
	}
	// The file was not truncated: the acknowledged second record is still
	// on disk for manual repair.
	after, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("recovery truncated the segment: %d -> %d bytes", len(data), len(after))
	}
}

func TestOpenSweepsStaleSnapshotTemp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, snapName(7)+".tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot temp file survived Open: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if !strings.Contains(SyncNone.String(), "none") || !strings.Contains(SyncAlways.String(), "always") {
		t.Fatal("String() mismatch")
	}
}
