// Package checkpoint persists the online serving state of internal/serve:
// full snapshots of the canonical graph + assignment + serve metadata,
// plus an incremental write-ahead log of accepted ingest batches layered
// on top. A Store manages the data-directory layout (snapshot rotation,
// WAL segments, pruning); Open recovers the latest intact snapshot and
// the WAL tail behind it so a restarted server comes up warm instead of
// replaying its whole stream.
//
// Both codecs are layered on the repository's existing text formats: a
// snapshot embeds graph.Write and partition.WriteAssignment sections
// behind a CRC32 footer, and WAL batch bodies are the graph-stream text
// codec decoded by stream.FromReader. Everything is crash-tolerant by
// construction: snapshots are written to a temp file and renamed into
// place, a snapshot without its footer is skipped in favour of the
// previous one, and a torn final WAL record is truncated, not fatal.
package checkpoint

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"

	"loom/internal/graph"
	"loom/internal/partition"
)

// Meta is the serve state captured alongside the graph and assignment.
// Snapshots are taken at window-empty barriers (restream swap, explicit
// checkpoint, graceful stop), so no window-resident state needs encoding.
type Meta struct {
	// Epoch is the published snapshot epoch at capture time.
	Epoch uint64
	// K is the partition count; recovery refuses a mismatching server.
	K int
	// ExpectedVertices is the effective LDG capacity parameter at capture
	// time (it grows at restream swaps); recovery seeds the rebuilt engine
	// with it so post-restart placements match an uninterrupted run.
	ExpectedVertices int
	// WindowSize, Threshold, Slack and Seed record the rest of the
	// partitioner configuration for operator sanity checks.
	WindowSize int
	Threshold  float64
	Slack      float64
	Seed       int64
	// Ingested/Rejected are the lifetime element counters.
	Ingested int64
	Rejected int64
	// Cut/Observed are the incremental drift-estimator counters.
	Cut      int
	Observed int
	// Restreams, SinceRestream and EverRestream restore the drift
	// monitor's trigger state.
	Restreams     int
	SinceRestream int
	EverRestream  bool
	// VertsAtSwap is the vertex count at the last restream swap — the
	// baseline of the adaptive ExpectedVertices re-plan. Persisted so a
	// recovered server re-plans the next swap exactly like an
	// uninterrupted one (0 before the first swap, and in snapshots
	// written before the field existed).
	VertsAtSwap int
	// NextSeq is the sequence number of the first WAL record not covered
	// by this snapshot: recovery replays records with seq >= NextSeq.
	NextSeq uint64
}

const (
	snapshotHeader    = "loom-snapshot 1"
	sectionGraph      = "%graph"
	sectionAssignment = "%assignment"
	footerPrefix      = "%end crc32="
)

// crcWriter tees everything written through it into a running CRC32.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteSnapshot serialises one snapshot to w: a header, `m <key> <value>`
// metadata lines, the graph text codec, the assignment text codec, and a
// CRC32 footer over everything before it.
func WriteSnapshot(w io.Writer, m Meta, g *graph.Graph, a *partition.Assignment) error {
	cw := &crcWriter{w: w}
	if _, err := fmt.Fprintln(cw, snapshotHeader); err != nil {
		return err
	}
	meta := []struct {
		key string
		val string
	}{
		{"epoch", strconv.FormatUint(m.Epoch, 10)},
		{"k", strconv.Itoa(m.K)},
		{"expected_vertices", strconv.Itoa(m.ExpectedVertices)},
		{"window", strconv.Itoa(m.WindowSize)},
		{"threshold", strconv.FormatFloat(m.Threshold, 'g', -1, 64)},
		{"slack", strconv.FormatFloat(m.Slack, 'g', -1, 64)},
		{"seed", strconv.FormatInt(m.Seed, 10)},
		{"ingested", strconv.FormatInt(m.Ingested, 10)},
		{"rejected", strconv.FormatInt(m.Rejected, 10)},
		{"cut", strconv.Itoa(m.Cut)},
		{"observed", strconv.Itoa(m.Observed)},
		{"restreams", strconv.Itoa(m.Restreams)},
		{"since_restream", strconv.Itoa(m.SinceRestream)},
		{"ever_restream", boolVal(m.EverRestream)},
		{"verts_at_swap", strconv.Itoa(m.VertsAtSwap)},
		{"next_seq", strconv.FormatUint(m.NextSeq, 10)},
	}
	for _, kv := range meta {
		if _, err := fmt.Fprintf(cw, "m %s %s\n", kv.key, kv.val); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(cw, "%s\n", sectionGraph); err != nil {
		return err
	}
	if err := graph.Write(cw, g); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cw, "%s\n", sectionAssignment); err != nil {
		return err
	}
	if err := partition.WriteAssignment(cw, a); err != nil {
		return err
	}
	// The footer is written to the underlying writer: the CRC covers every
	// byte before it.
	_, err := fmt.Fprintf(w, "%s%08x\n", footerPrefix, cw.crc)
	return err
}

func boolVal(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// ReadSnapshot parses and validates one snapshot. It fails (never panics)
// on a missing footer, a checksum mismatch, or malformed sections — the
// caller falls back to an older snapshot.
func ReadSnapshot(r io.Reader) (Meta, *graph.Graph, *partition.Assignment, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Meta{}, nil, nil, err
	}
	body, err := verifyFooter(data)
	if err != nil {
		return Meta{}, nil, nil, err
	}

	// Walk lines by offset: metadata until %graph, graph codec until
	// %assignment, assignment codec until the footer.
	var m Meta
	graphStart, graphEnd, assignStart := -1, -1, -1
	pos := 0
	for pos < len(body) && assignStart < 0 {
		lineEnd := bytes.IndexByte(body[pos:], '\n')
		if lineEnd < 0 {
			lineEnd = len(body) - pos
		}
		line := string(body[pos : pos+lineEnd])
		next := pos + lineEnd + 1
		if next > len(body) {
			next = len(body)
		}
		switch {
		case pos == 0:
			if line != snapshotHeader {
				return Meta{}, nil, nil, fmt.Errorf("checkpoint: bad snapshot header %q", line)
			}
		case graphStart < 0:
			if line == sectionGraph {
				graphStart = next
			} else if err := parseMetaLine(&m, line); err != nil {
				return Meta{}, nil, nil, err
			}
		default:
			if line == sectionAssignment {
				graphEnd = pos
				assignStart = next
			}
		}
		pos = next
	}
	if assignStart < 0 {
		return Meta{}, nil, nil, fmt.Errorf("checkpoint: snapshot missing %%graph/%%assignment sections")
	}

	g, err := graph.Read(bytes.NewReader(body[graphStart:graphEnd]))
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("checkpoint: graph section: %w", err)
	}
	a, err := partition.ReadAssignment(bytes.NewReader(body[assignStart:]))
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("checkpoint: assignment section: %w", err)
	}
	if m.K != 0 && a.K() != m.K {
		return Meta{}, nil, nil, fmt.Errorf("checkpoint: assignment k=%d disagrees with metadata k=%d", a.K(), m.K)
	}
	return m, g, a, nil
}

// verifyFooter checks the trailing CRC line and returns the covered body.
func verifyFooter(data []byte) ([]byte, error) {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("checkpoint: snapshot truncated (no footer)")
	}
	lineStart := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	footer := string(data[lineStart : len(data)-1])
	if len(footer) != len(footerPrefix)+8 || footer[:len(footerPrefix)] != footerPrefix {
		return nil, fmt.Errorf("checkpoint: snapshot truncated (bad footer %q)", footer)
	}
	want, err := strconv.ParseUint(footer[len(footerPrefix):], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: bad footer checksum: %v", err)
	}
	body := data[:lineStart]
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return nil, fmt.Errorf("checkpoint: snapshot checksum %08x, footer says %08x", got, want)
	}
	return body, nil
}

// parseMetaLine folds one `m <key> <value>` line into m. Unknown keys are
// ignored for forward compatibility.
func parseMetaLine(m *Meta, line string) error {
	if line == "" {
		return nil
	}
	var key, val string
	if _, err := fmt.Sscanf(line, "m %s %s", &key, &val); err != nil {
		return fmt.Errorf("checkpoint: bad metadata line %q", line)
	}
	var err error
	switch key {
	case "epoch":
		m.Epoch, err = strconv.ParseUint(val, 10, 64)
	case "k":
		m.K, err = strconv.Atoi(val)
	case "expected_vertices":
		m.ExpectedVertices, err = strconv.Atoi(val)
	case "window":
		m.WindowSize, err = strconv.Atoi(val)
	case "threshold":
		m.Threshold, err = strconv.ParseFloat(val, 64)
	case "slack":
		m.Slack, err = strconv.ParseFloat(val, 64)
	case "seed":
		m.Seed, err = strconv.ParseInt(val, 10, 64)
	case "ingested":
		m.Ingested, err = strconv.ParseInt(val, 10, 64)
	case "rejected":
		m.Rejected, err = strconv.ParseInt(val, 10, 64)
	case "cut":
		m.Cut, err = strconv.Atoi(val)
	case "observed":
		m.Observed, err = strconv.Atoi(val)
	case "restreams":
		m.Restreams, err = strconv.Atoi(val)
	case "since_restream":
		m.SinceRestream, err = strconv.Atoi(val)
	case "ever_restream":
		m.EverRestream = val == "1"
	case "verts_at_swap":
		m.VertsAtSwap, err = strconv.Atoi(val)
	case "next_seq":
		m.NextSeq, err = strconv.ParseUint(val, 10, 64)
	}
	if err != nil {
		return fmt.Errorf("checkpoint: bad metadata %s=%q: %v", key, val, err)
	}
	return nil
}
