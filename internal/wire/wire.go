// Package wire holds the byte-level conventions shared by the binary
// graph-stream codec (internal/stream) and the write-ahead log
// (internal/checkpoint): a length-prefixed, CRC-guarded frame and the
// label-safety predicate both codecs enforce.
//
// A frame is
//
//	u32 LE payload length | u32 LE CRC32-IEEE(payload) | payload
//
// — exactly the WAL's record framing, hoisted here so an ingest frame
// payload can be appended to the log as a record body without
// re-encoding, and so the torn-tail recovery rules (a short or
// checksum-failing frame ends the scan) are stated once.
package wire

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"unicode"
	"unicode/utf8"
)

const (
	// HeaderSize is the fixed frame prefix: u32 length + u32 CRC.
	HeaderSize = 8
	// MaxPayload bounds a single frame so a corrupt length field cannot
	// drive a giant allocation. Shared with the WAL's record cap.
	MaxPayload = 1 << 30
)

// PutHeader writes the frame header for payload into hdr, which must be
// at least HeaderSize bytes.
//
//loom:hotpath
func PutHeader(hdr, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
}

// AppendFrame appends one whole frame (header + payload) to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ParseHeader decodes a frame header. The caller is responsible for
// bounds-checking n against the bytes actually available and MaxPayload.
//
//loom:hotpath
func ParseHeader(hdr []byte) (n int, crc uint32) {
	return int(binary.LittleEndian.Uint32(hdr[0:4])), binary.LittleEndian.Uint32(hdr[4:8])
}

// Verify reports whether payload matches the CRC from its frame header.
//
//loom:hotpath
func Verify(payload []byte, crc uint32) bool {
	return crc32.ChecksumIEEE(payload) == crc
}

// SafeLabel reports whether a label survives every loom codec (text
// graph files, WAL bodies, snapshots, binary frames): non-empty and free
// of anything the text decoders treat as whitespace. The bar is
// unicode.IsSpace because that is exactly what strings.Fields splits on
// and strings.TrimSpace trims; the binary codec could carry arbitrary
// bytes, but accepting labels there that the text codecs cannot replay
// would fork the durable formats.
func SafeLabel(s string) bool {
	return s != "" && !strings.ContainsFunc(s, unicode.IsSpace)
}

// SafeLabelBytes is SafeLabel over raw bytes, for decode hot paths that
// must not allocate a string first. Invalid UTF-8 decodes to RuneError,
// which is not a space — the same verdict SafeLabel reaches.
func SafeLabelBytes(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for i := 0; i < len(b); {
		r, size := utf8.DecodeRune(b[i:])
		if unicode.IsSpace(r) {
			return false
		}
		i += size
	}
	return true
}
