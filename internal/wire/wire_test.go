package wire

import (
	"bytes"
	"testing"
)

func TestFrameHeaderRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xab}, 1000),
	}
	for _, p := range payloads {
		frame := AppendFrame(nil, p)
		if len(frame) != HeaderSize+len(p) {
			t.Fatalf("frame length %d, want %d", len(frame), HeaderSize+len(p))
		}
		n, crc := ParseHeader(frame[:HeaderSize])
		if n != len(p) {
			t.Fatalf("parsed length %d, want %d", n, len(p))
		}
		if !Verify(frame[HeaderSize:], crc) {
			t.Fatal("CRC did not verify")
		}
		if len(p) > 0 {
			mutated := append([]byte(nil), frame[HeaderSize:]...)
			mutated[0] ^= 0xff
			if Verify(mutated, crc) {
				t.Fatal("CRC verified a mutated payload")
			}
		}
	}
}

func TestAppendFrameExtends(t *testing.T) {
	buf := AppendFrame(nil, []byte("one"))
	buf = AppendFrame(buf, []byte("two"))
	n1, crc1 := ParseHeader(buf[:HeaderSize])
	if n1 != 3 || !Verify(buf[HeaderSize:HeaderSize+n1], crc1) {
		t.Fatal("first frame damaged by second append")
	}
	rest := buf[HeaderSize+n1:]
	n2, crc2 := ParseHeader(rest[:HeaderSize])
	if n2 != 3 || !Verify(rest[HeaderSize:HeaderSize+n2], crc2) {
		t.Fatal("second frame does not parse")
	}
}

func TestSafeLabel(t *testing.T) {
	cases := []struct {
		label string
		ok    bool
	}{
		{"", false},
		{"a", true},
		{"user:42", true},
		{"a b", false},
		{"a\tb", false},
		{"a\vb", false},     // vertical tab: unicode space, not ASCII-obvious
		{"b\u00a0c", false}, // NBSP
		{"\u2028", false},   // line separator
		{"héllo", true},     // multi-byte, no space
		{"\xff\xfe", true},  // invalid UTF-8 is not whitespace
		{"trail\n", false},
	}
	for _, c := range cases {
		if got := SafeLabel(c.label); got != c.ok {
			t.Errorf("SafeLabel(%q) = %v, want %v", c.label, got, c.ok)
		}
		if got := SafeLabelBytes([]byte(c.label)); got != c.ok {
			t.Errorf("SafeLabelBytes(%q) = %v, want %v", c.label, got, c.ok)
		}
	}
}
