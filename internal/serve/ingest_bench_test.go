package serve

import (
	"bytes"
	"fmt"
	"testing"

	"loom/internal/checkpoint"
	"loom/internal/core"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/stream"
)

// benchElems generates the shared benchmark stream once per process.
func benchElems(b *testing.B) []stream.Element {
	b.Helper()
	g, _, _ := testGraph(b, 2000, 4, 11)
	return elementsOf(b, g)
}

func benchConfig(n int) Config {
	return Config{
		Core: core.Config{
			Partition:  partition.Config{K: 4, ExpectedVertices: n, Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Alphabet: []graph.Label{"a", "b", "c", "d"},
	}
}

// BenchmarkIngestText is the text front door: pre-rendered line codec,
// decoded inline and applied through IngestSync in 512-element batches,
// against a durable server at fsync none — the loom-serve HTTP handler's
// exact shape.
func BenchmarkIngestText(b *testing.B) {
	elems := benchElems(b)
	var text bytes.Buffer
	for i := range elems {
		el := &elems[i]
		if el.Kind == stream.VertexElement {
			fmt.Fprintf(&text, "v %d %s\n", el.V, el.Label)
		} else {
			fmt.Fprintf(&text, "e %d %d\n", el.V, el.U)
		}
	}
	b.SetBytes(int64(text.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(benchConfig(len(elems)), PersistOptions{Dir: b.TempDir(), Fsync: checkpoint.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		src := stream.FromReader(bytes.NewReader(text.Bytes()))
		batch := make([]stream.Element, 0, 512)
		for {
			el, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, el)
			if len(batch) == 512 {
				if err := s.IngestSync(batch); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := s.IngestSync(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := src.Err(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Stop()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(elems)), "elems/op")
}

// BenchmarkIngestFrames is the binary front door: pre-encoded 512-element
// frames through the parallel decode stage and the raw WAL fast path, on
// the same server shape as BenchmarkIngestText.
func BenchmarkIngestFrames(b *testing.B) {
	elems := benchElems(b)
	frames := encodeFrames(b, elems, 512)
	b.SetBytes(int64(len(frames)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(benchConfig(len(elems)), PersistOptions{Dir: b.TempDir(), Fsync: checkpoint.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := s.IngestFrames(bytes.NewReader(frames))
		if err == nil {
			err = res.Err()
		}
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Stop()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(elems)), "elems/op")
}
