package serve

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"loom/internal/fault"
	"loom/internal/graph"
	"loom/internal/stream"
	"loom/internal/wire"
)

// encodeFrames renders elems as binary frames of at most per elements
// each, concatenated into one wire stream.
func encodeFrames(t testing.TB, elems []stream.Element, per int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := stream.NewFrameWriter(&buf)
	for i := 0; i < len(elems); i += per {
		end := i + per
		if end > len(elems) {
			end = len(elems)
		}
		if err := fw.WriteBatch(elems[i:end]); err != nil {
			t.Fatalf("encode frame at %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// feedFrames sends elems to every server in one IngestFrames call per
// batch of size bs — the frame-at-a-time feeding that keeps epochs
// deterministic across servers (one envelope per call, like IngestSync).
func feedFrames(t testing.TB, elems []stream.Element, bs int, servers ...*Server) {
	t.Helper()
	for i := 0; i < len(elems); i += bs {
		end := i + bs
		if end > len(elems) {
			end = len(elems)
		}
		frame := encodeFrames(t, elems[i:end], end-i)
		for _, s := range servers {
			res, err := s.IngestFrames(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("ingest frame at %d: %v", i, err)
			}
			if rerr := res.Err(); rerr != nil {
				t.Fatalf("frame at %d: element errors: %v", i, rerr)
			}
		}
	}
}

// TestBinaryIngestMatchesText feeds the same element stream to a server
// over the text path (IngestSync) and to another over the pipelined
// binary path (one multi-frame IngestFrames stream), and requires
// identical placements and statistics. Epoch is normalized: the binary
// pipeline may coalesce several frames into one writer cycle, which
// changes how often snapshots are published but nothing about their
// final content.
func TestBinaryIngestMatchesText(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 7)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)

	text, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer text.Stop()
	bin, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Stop()

	feedBatches(t, elems, 97, text)

	res, err := bin.IngestFrames(bytes.NewReader(encodeFrames(t, elems, 97)))
	if err != nil {
		t.Fatal(err)
	}
	if rerr := res.Err(); rerr != nil {
		t.Fatal(rerr)
	}
	if res.Elements != len(elems) || res.Deduped != 0 {
		t.Fatalf("res = %+v, want %d elements, 0 deduped", res, len(elems))
	}

	st, sb := normalizeStats(text.Stats()), normalizeStats(bin.Stats())
	st.Epoch, sb.Epoch = 0, 0
	if st.Ingested != sb.Ingested || st.Rejected != sb.Rejected ||
		st.Vertices != sb.Vertices || st.Edges != sb.Edges ||
		st.CutEdges != sb.CutEdges || st.ObservedEdges != sb.ObservedEdges {
		t.Fatalf("stats diverge:\ntext %+v\nbin  %+v", st, sb)
	}
	for _, v := range g.Vertices() {
		pt, okt := text.Where(v)
		pb, okb := bin.Where(v)
		if pt != pb || okt != okb {
			t.Fatalf("Where(%d) = %v,%v (text) vs %v,%v (binary)", v, pt, okt, pb, okb)
		}
	}
}

// TestBinaryCrashRecoveryMatchesControl is the binary-ingest twin of
// TestCrashRecoveryMatchesControl: the WAL tail now holds
// RecordBatchBinary records (raw frame payloads), and replaying them
// must reproduce the control server bit-identically.
func TestBinaryCrashRecoveryMatchesControl(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 7)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)
	dir := t.TempDir()

	control, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Stop()
	durable, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	half := len(elems) / 2
	feedFrames(t, elems[:half], 97, control, durable)
	if err := control.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := durable.Drain(); err != nil {
		t.Fatal(err)
	}

	// The raw-payload fast path must actually be in use: every record so
	// far is a fully-accepted, dedup-free binary batch.
	durable.Abort()

	restarted, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer restarted.Stop()
	ri := restarted.Stats().Persist.Recover
	if ri.ReplayedElements != half {
		t.Fatalf("replayed %d elements, want %d", ri.ReplayedElements, half)
	}
	assertSameServing(t, g, restarted, control)

	// Recovery continues to serve binary ingest.
	feedFrames(t, elems[half:], 97, control, restarted)
	assertSameServing(t, g, restarted, control)
}

// TestPoisonedFrameNeverReachesWriter corrupts the middle frame of a
// three-frame stream: IngestFrames must stop with a typed *BadFrameError,
// the first frame's elements are applied and logged, and nothing from the
// poisoned frame or the one after it reaches the writer or the WAL.
func TestPoisonedFrameNeverReachesWriter(t *testing.T) {
	g, w, alphabet := testGraph(t, 120, 2, 3)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	third := len(elems) / 3
	var buf bytes.Buffer
	fw := stream.NewFrameWriter(&buf)
	if err := fw.WriteBatch(elems[:third]); err != nil {
		t.Fatal(err)
	}
	poisonAt := buf.Len()
	if err := fw.WriteBatch(elems[third : 2*third]); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteBatch(elems[2*third:]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[poisonAt+wire.HeaderSize] ^= 0xff // corrupt the 2nd frame's payload

	res, err := s.IngestFrames(bytes.NewReader(data))
	var bad *BadFrameError
	if !errors.As(err, &bad) {
		t.Fatalf("err = %v, want *BadFrameError", err)
	}
	if bad.Frame != 1 {
		t.Fatalf("poisoned frame index %d, want 1", bad.Frame)
	}
	if !errors.Is(err, stream.ErrFrameCRC) {
		t.Fatalf("err = %v, want ErrFrameCRC in chain", err)
	}
	if res.Frames != 1 || res.Elements != third {
		t.Fatalf("res = %+v, want exactly the first frame accepted", res)
	}

	st := s.Stats()
	if st.Ingested != int64(third) || st.Rejected != 0 {
		t.Fatalf("ingested %d rejected %d, want %d and 0", st.Ingested, st.Rejected, third)
	}
	if st.Persist.WALRecords != 1 {
		t.Fatalf("WAL holds %d records, want 1 (only the good frame)", st.Persist.WALRecords)
	}
}

// TestDecodeFailpoints drills the two decode-stage fault points: an
// erroring WireDecode injection poisons the frame (typed refusal, WAL
// and writer untouched), and a stalled worker (ServeDecodeStall with
// latency only) delays but does not corrupt the pipeline.
func TestDecodeFailpoints(t *testing.T) {
	g, w, alphabet := testGraph(t, 120, 2, 3)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	frame := encodeFrames(t, elems, len(elems))

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WireDecode, nil))
	res, err := s.IngestFrames(bytes.NewReader(frame))
	fault.Disable()
	var bad *BadFrameError
	if !errors.As(err, &bad) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want *BadFrameError wrapping ErrInjected", err)
	}
	if res.Frames != 0 {
		t.Fatalf("res = %+v, want nothing accepted", res)
	}
	st := s.Stats()
	if st.Ingested != 0 || st.Persist.WALRecords != 0 {
		t.Fatalf("poisoned frame leaked: ingested=%d wal=%d", st.Ingested, st.Persist.WALRecords)
	}

	// A latency-only stall injection must leave results intact.
	slept := 0
	fault.Enable(fault.NewRegistry(1).
		Add(fault.ServeDecodeStall, fault.Rule{Count: 1, Injection: fault.Injection{DelayOnly: true, Latency: time.Millisecond}}).
		SetSleep(func(d time.Duration) { slept++ }))
	res, err = s.IngestFrames(bytes.NewReader(frame))
	fault.Disable()
	if err != nil {
		t.Fatalf("stalled ingest failed: %v", err)
	}
	if rerr := res.Err(); rerr != nil {
		t.Fatal(rerr)
	}
	if slept == 0 {
		t.Fatal("stall failpoint never fired")
	}
	if res.Elements != len(elems) {
		t.Fatalf("res = %+v, want %d elements", res, len(elems))
	}
	if got := s.Stats().Ingested; got != int64(len(elems)) {
		t.Fatalf("ingested %d, want %d", got, len(elems))
	}
}

// TestBinaryIngestDedupFallsBackToTextWAL sends a frame containing
// intra-frame duplicates: decode drops them (Deduped > 0), the writer
// accepts the rest, and because the raw payload no longer describes
// exactly the accepted elements the WAL record must take the text
// fallback — proven by crash-recovering from it.
func TestBinaryIngestDedupFallsBackToTextWAL(t *testing.T) {
	cfg := persistConfig(nil, []graph.Label{"a", "b"}, 16, 2)
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	elems := []stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
		{Kind: stream.VertexElement, V: 1, Label: "a"}, // intra-frame dup
		{Kind: stream.EdgeElement, V: 1, U: 2},
		{Kind: stream.EdgeElement, V: 2, U: 1}, // intra-frame dup edge
	}
	res, err := s.IngestFrames(bytes.NewReader(encodeFrames(t, elems, len(elems))))
	if err != nil {
		t.Fatal(err)
	}
	if rerr := res.Err(); rerr != nil {
		t.Fatal(rerr)
	}
	if res.Deduped != 2 || res.Elements != 3 {
		t.Fatalf("res = %+v, want 3 elements with 2 deduped", res)
	}
	if got := s.Stats().Ingested; got != 3 {
		t.Fatalf("ingested %d, want 3", got)
	}
	s.Abort()

	restarted, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover from fallback record: %v", err)
	}
	defer restarted.Stop()
	ri := restarted.Stats().Persist.Recover
	if ri.ReplayedElements != 3 {
		t.Fatalf("replayed %d elements, want 3", ri.ReplayedElements)
	}
}

// TestBinaryIngestCrossFrameRejects sends the same vertex in two frames:
// the writer rejects the duplicate (cross-frame dedup is its job), the
// stream keeps going, and the partial batch is logged via the text
// fallback so recovery replays cleanly.
func TestBinaryIngestCrossFrameRejects(t *testing.T) {
	cfg := persistConfig(nil, []graph.Label{"a", "b"}, 16, 2)
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	fw := stream.NewFrameWriter(&buf)
	if err := fw.WriteBatch([]stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteBatch([]stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"}, // cross-frame dup
		{Kind: stream.VertexElement, V: 3, Label: "a"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.IngestFrames(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("stream terminated: %v", err)
	}
	if res.Frames != 2 {
		t.Fatalf("res = %+v, want both frames processed", res)
	}
	rerr := res.Err()
	if rerr == nil {
		t.Fatal("expected an element rejection for the cross-frame duplicate")
	}
	st := s.Stats()
	if st.Ingested != 3 || st.Rejected != 1 {
		t.Fatalf("ingested %d rejected %d, want 3 and 1", st.Ingested, st.Rejected)
	}
	s.Abort()

	restarted, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer restarted.Stop()
	if got := restarted.Stats().Persist.Recover.ReplayedElements; got != 3 {
		t.Fatalf("replayed %d elements, want 3", got)
	}
}

// TestBinaryIngestWedgeRefusal arms a WAL append failure under binary
// ingest: the failing batch is applied-but-unacknowledged (its error
// carries the injected failure), and the next frame is refused with
// ErrWedged as a stream-terminating error — identical wedge semantics to
// the text path.
func TestBinaryIngestWedgeRefusal(t *testing.T) {
	cfg := persistConfig(nil, []graph.Label{"a", "b"}, 16, 2)
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	first := []stream.Element{{Kind: stream.VertexElement, V: 1, Label: "a"}}
	second := []stream.Element{{Kind: stream.VertexElement, V: 2, Label: "b"}}

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WALAppend, fault.ErrNoSpace))
	res, err := s.IngestFrames(bytes.NewReader(encodeFrames(t, first, 1)))
	fault.Disable()
	if err != nil {
		t.Fatalf("stream-terminating error %v; the failed ack belongs in res.Err", err)
	}
	if rerr := res.Err(); !errors.Is(rerr, fault.ErrNoSpace) {
		t.Fatalf("res.Err() = %v, want the injected append failure", rerr)
	}

	_, err = s.IngestFrames(bytes.NewReader(encodeFrames(t, second, 1)))
	if !errors.Is(err, ErrWedged) {
		t.Fatalf("wedged ingest = %v, want ErrWedged", err)
	}

	// A checkpoint re-anchors; binary ingest resumes.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err = s.IngestFrames(bytes.NewReader(encodeFrames(t, second, 1)))
	if err != nil || res.Err() != nil {
		t.Fatalf("post-heal ingest: %v / %v", err, res.Err())
	}
}
