package serve

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"loom/internal/checkpoint"
	"loom/internal/core"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/stream"
)

// persistConfig is a deterministic serving config (drift disabled, fixed
// seed, explicit alphabet) shared by the durability tests.
func persistConfig(w *query.Workload, alphabet []graph.Label, n, k int) Config {
	return Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	}
}

// feedBatches sends elems to every server in batches of size bs.
func feedBatches(t testing.TB, elems []stream.Element, bs int, servers ...*Server) {
	t.Helper()
	for i := 0; i < len(elems); i += bs {
		end := i + bs
		if end > len(elems) {
			end = len(elems)
		}
		for _, s := range servers {
			if err := s.IngestSync(elems[i:end]); err != nil {
				t.Fatalf("ingest batch at %d: %v", i, err)
			}
		}
	}
}

// normalizeStats blanks the fields that legitimately differ between a
// recovered server and a control (live mailbox depth, persistence info).
func normalizeStats(st Stats) Stats {
	st.MailboxDepth = 0
	st.Persist = nil
	return st
}

// assertSameServing fails unless a and b answer identically: every
// vertex placement and the full frozen statistics.
func assertSameServing(t testing.TB, g *graph.Graph, a, b *Server) {
	t.Helper()
	sa, sb := normalizeStats(a.Stats()), normalizeStats(b.Stats())
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("stats diverge:\n got %+v\nwant %+v", sa, sb)
	}
	for _, v := range g.Vertices() {
		pa, oka := a.Where(v)
		pb, okb := b.Where(v)
		if pa != pb || oka != okb {
			t.Fatalf("Where(%d) = %v,%v vs %v,%v", v, pa, oka, pb, okb)
		}
	}
}

// TestCrashRecoveryMatchesControl is the package-level crash drill: a
// durable server is hard-stopped mid-stream with no graceful checkpoint,
// reopened from its data directory (pure WAL replay), fed the rest of the
// stream, and must end bit-identical to a control server that never went
// down — including a drain barrier in the middle of the replayed history.
func TestCrashRecoveryMatchesControl(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 7)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)
	dir := t.TempDir()

	control, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Stop()
	durable, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	half := len(elems) / 2
	feedBatches(t, elems[:half], 97, control, durable)
	if err := control.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := durable.Drain(); err != nil {
		t.Fatal(err)
	}

	// Crash. No Stop, no checkpoint: everything durable lives in the WAL.
	durable.Abort()
	if err := durable.Ingest(nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("ingest after abort = %v, want ErrStopped", err)
	}

	restarted, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer restarted.Stop()
	ri := restarted.Stats().Persist.Recover
	if ri.SnapshotLoaded {
		t.Fatalf("no snapshot was ever written, but recovery loaded one: %+v", ri)
	}
	if ri.ReplayedElements != half {
		t.Fatalf("replayed %d elements, want %d", ri.ReplayedElements, half)
	}
	assertSameServing(t, g, restarted, control)

	// The recovered server keeps serving: stream the second half into
	// both and the histories stay identical.
	feedBatches(t, elems[half:], 97, control, restarted)
	if err := control.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := restarted.Drain(); err != nil {
		t.Fatal(err)
	}
	assertSameServing(t, g, restarted, control)
}

// TestCheckpointRestoreReplaysOnlyTail proves the acceptance criterion
// that recovery after a checkpoint replays the WAL tail, not the full
// stream, and still reproduces the exact pre-crash state.
func TestCheckpointRestoreReplaysOnlyTail(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 9)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)
	dir := t.TempDir()

	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	half := len(elems) / 2
	feedBatches(t, elems[:half], 97, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Three more batches after the snapshot form the tail.
	const tailBatches = 3
	const bs = 50
	feedBatches(t, elems[half:half+tailBatches*bs], bs, s)
	want := s.Stats()
	wantWhere := make(map[graph.VertexID]partition.ID)
	for _, v := range g.Vertices() {
		if p, ok := s.Where(v); ok {
			wantWhere[v] = p
		}
	}
	s.Abort()

	re, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Stop()
	ri := re.Stats().Persist.Recover
	if !ri.SnapshotLoaded {
		t.Fatal("recovery did not load the checkpoint snapshot")
	}
	if ri.ReplayedRecords != tailBatches {
		t.Fatalf("replayed %d records, want only the %d-batch tail", ri.ReplayedRecords, tailBatches)
	}
	got := re.Stats()
	if gn, wn := normalizeStats(got), normalizeStats(want); !reflect.DeepEqual(gn, wn) {
		t.Fatalf("stats diverge:\n got %+v\nwant %+v", gn, wn)
	}
	for v, p := range wantWhere {
		if gp, ok := re.Where(v); !ok || gp != p {
			t.Fatalf("Where(%d) = %v,%v, want %v", v, gp, ok, p)
		}
	}
	for _, v := range g.Vertices() {
		if _, had := wantWhere[v]; !had {
			if _, ok := re.Where(v); ok {
				t.Fatalf("vertex %d gained a placement across recovery", v)
			}
		}
	}
}

// TestCheckpointEquivalentToUninterruptedRun pins snapshot+WAL restore
// against a full-stream control run with the same logical history (both
// checkpoint at the same stream position): final assignments must be
// bit-identical under the fixed seed.
func TestCheckpointEquivalentToUninterruptedRun(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 13)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)

	crashDir, controlDir := t.TempDir(), t.TempDir()
	crashed, err := Open(cfg, PersistOptions{Dir: crashDir})
	if err != nil {
		t.Fatal(err)
	}
	control, err := Open(cfg, PersistOptions{Dir: controlDir})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Stop()

	third := len(elems) / 3
	feedBatches(t, elems[:third], 97, crashed, control)
	if err := crashed.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := control.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feedBatches(t, elems[third:2*third], 97, crashed, control)
	crashed.Abort()

	restarted, err := Open(cfg, PersistOptions{Dir: crashDir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer restarted.Stop()
	assertSameServing(t, g, restarted, control)

	// Continue past the crash point: the restored engine must keep making
	// the same placement decisions as the uninterrupted control.
	feedBatches(t, elems[2*third:], 97, restarted, control)
	if err := restarted.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := control.Drain(); err != nil {
		t.Fatal(err)
	}
	assertSameServing(t, g, restarted, control)
}

// TestGracefulStopWarmRestart: a clean Stop writes a final snapshot, so
// reopening replays nothing and serves the same placements.
func TestGracefulStopWarmRestart(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 2, 5)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	dir := t.TempDir()

	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, elementsOf(t, g), 97, s)
	s.Stop()
	want := make(map[graph.VertexID]partition.ID)
	for _, v := range g.Vertices() {
		p, ok := s.Where(v)
		if !ok {
			t.Fatalf("vertex %d unassigned after Stop", v)
		}
		want[v] = p
	}

	re, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Stop()
	ri := re.Stats().Persist.Recover
	if !ri.SnapshotLoaded || ri.ReplayedRecords != 0 {
		t.Fatalf("warm restart should replay nothing: %+v", ri)
	}
	for v, p := range want {
		if gp, ok := re.Where(v); !ok || gp != p {
			t.Fatalf("Where(%d) = %v,%v, want %v", v, gp, ok, p)
		}
	}
	if st := re.Stats(); st.Vertices != g.NumVertices() || st.Assigned != g.NumVertices() {
		t.Fatalf("stats after warm restart: %+v", st)
	}
}

// TestStopAdoptsInflightRestream is the regression test for the shutdown
// race: Stop used to abandon a restream still in flight, discarding the
// recomputed assignment and drift-estimator state that the swap would
// have installed. Stop must now quiesce, wait for the outcome, and adopt
// it deterministically.
func TestStopAdoptsInflightRestream(t *testing.T) {
	g, w, alphabet := testGraph(t, 800, 4, 11)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatal(err)
	}

	restreamErr := make(chan error, 1)
	go func() { restreamErr <- s.Restream() }()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Stats().RestreamLive {
		if time.Now().After(deadline) {
			t.Fatal("restream never launched")
		}
		time.Sleep(100 * time.Microsecond)
	}
	s.Stop()

	if err := <-restreamErr; err != nil {
		t.Fatalf("in-flight restream was not adopted: %v", err)
	}
	st := s.Stats()
	if st.Restreams != 1 || st.RestreamLive {
		t.Fatalf("restreams=%d live=%v after Stop, want exactly one adopted", st.Restreams, st.RestreamLive)
	}
	if st.LastRestream == nil || st.LastRestream.Err != "" {
		t.Fatalf("last restream = %+v", st.LastRestream)
	}
	// The adopted state is consistent: the published cut matches a
	// recount over the final placements.
	if cut := partitionCut(t, s, g); cut != st.CutEdges {
		t.Fatalf("cut %d != recount %d", st.CutEdges, cut)
	}
	if st.Assigned != g.NumVertices() {
		t.Fatalf("assigned = %d, want %d", st.Assigned, g.NumVertices())
	}
}

// TestRestreamSwapWritesSnapshot: a drift/manual restream swap checkpoints
// implicitly, so recovery after a later crash starts from the swapped
// assignment instead of replaying from zero.
func TestRestreamSwapWritesSnapshot(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 2, 3)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, elementsOf(t, g), 97, s)
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	if n := s.Stats().Persist.Snapshots; n != 1 {
		t.Fatalf("snapshots written = %d, want 1 (at the swap)", n)
	}
	want := s.Stats()
	s.Abort()

	re, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Stop()
	ri := re.Stats().Persist.Recover
	if !ri.SnapshotLoaded || ri.ReplayedRecords != 0 {
		t.Fatalf("recovery after swap: %+v, want snapshot with empty tail", ri)
	}
	got := re.Stats()
	if got.Restreams != want.Restreams || got.CutEdges != want.CutEdges || got.Assigned != want.Assigned {
		t.Fatalf("recovered stats %+v, want %+v", got, want)
	}
	for _, v := range g.Vertices() {
		wp, _ := s.Where(v)
		if gp, ok := re.Where(v); !ok || gp != wp {
			t.Fatalf("Where(%d) = %v,%v, want %v", v, gp, ok, wp)
		}
	}
}

// TestConcurrentCheckpointsAllReturn: multiple Checkpoint callers whose
// envelopes land in the same writer cycle must all be released (the
// writer keeps a list of waiters, not a single slot).
func TestConcurrentCheckpointsAllReturn(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 3)
	s, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	feedBatches(t, elementsOf(t, g), 97, s)

	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() { errs <- s.Checkpoint() }()
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("checkpoint %d: %v", i, err)
			}
		case <-deadline:
			t.Fatalf("only %d of %d Checkpoint callers returned", i, callers)
		}
	}
}

// TestCheckpointUnderConcurrentIngest: a checkpoint racing a writer full
// of queued batches must not fail with window-resident vertices (the
// burst is cut at the barrier) and the recovered state must stay whole.
func TestCheckpointUnderConcurrentIngest(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 17)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)
	cfg.Mailbox = 4
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < len(elems); i += 53 {
			end := i + 53
			if end > len(elems) {
				end = len(elems)
			}
			if err := s.Ingest(append([]stream.Element(nil), elems[i:end]...)); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()
	checkpoints := 0
	for i := 0; i < 5; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d during ingest: %v", i, err)
		}
		checkpoints++
	}
	<-done
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	want := s.Stats()
	if int(want.Persist.Snapshots) < checkpoints {
		t.Fatalf("snapshots = %d, want >= %d", want.Persist.Snapshots, checkpoints)
	}
	s.Abort()

	re, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Stop()
	got := re.Stats()
	if got.Vertices != want.Vertices || got.Assigned != want.Assigned || got.CutEdges != want.CutEdges {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	for _, v := range g.Vertices() {
		wp, wok := s.Where(v)
		gp, gok := re.Where(v)
		if wp != gp || wok != gok {
			t.Fatalf("Where(%d) = %v,%v, want %v,%v", v, gp, gok, wp, wok)
		}
	}
}

// TestBarrierRecordReplay: a checkpoint whose snapshot never landed
// leaves a barrier record in the WAL; replay must reproduce the drain AND
// the engine reseed, matching a server whose checkpoint succeeded (the
// snapshot only affects durability, never placement).
func TestBarrierRecordReplay(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 2, 19)
	elems := elementsOf(t, g)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	half := len(elems) / 2

	// Control: durable server, successful checkpoint at the midpoint.
	control, err := Open(cfg, PersistOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Stop()
	feedBatches(t, elems[:half], 97, control)
	if err := control.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feedBatches(t, elems[half:], 97, control)
	if err := control.Drain(); err != nil {
		t.Fatal(err)
	}

	// Hand-build the WAL a failed-snapshot checkpoint leaves behind: the
	// same batches with a bare barrier record in the middle, no snapshot.
	dir := t.TempDir()
	st, _, err := checkpoint.Open(dir, checkpoint.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	writeBatches := func(part []stream.Element) {
		for i := 0; i < len(part); i += 97 {
			end := i + 97
			if end > len(part) {
				end = len(part)
			}
			if _, err := st.Append(checkpoint.RecordBatch, part[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeBatches(elems[:half])
	if _, err := st.Append(checkpoint.RecordBarrier, nil); err != nil {
		t.Fatal(err)
	}
	writeBatches(elems[half:])
	if _, err := st.Append(checkpoint.RecordDrain, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Stop()
	assertSameServing(t, g, re, control)
}

// TestWedgeStateMachine drives the failure-hardening path end to end by
// forcing the wedge flag a failed WAL append would set: ingest and drain
// are refused (nothing is acknowledged that the log missed), a successful
// Checkpoint re-anchors the history and clears the wedge, and the
// repaired directory recovers cleanly.
func TestWedgeStateMachine(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 23)
	elems := elementsOf(t, g)
	dir := t.TempDir()
	s, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	half := len(elems) / 2
	feedBatches(t, elems[:half], 97, s)

	s.persist.wedged.Store(true)
	if err := s.IngestSync(elems[half : half+10]); err == nil {
		t.Fatal("wedged server accepted a batch")
	}
	if err := s.Drain(); err == nil {
		t.Fatal("wedged server accepted a drain")
	}
	st := s.Stats()
	if st.Persist == nil || !st.Persist.Wedged {
		t.Fatalf("Stats does not report the wedge: %+v", st.Persist)
	}
	if st.Rejected != 10 {
		t.Fatalf("rejected = %d, want the 10 refused elements", st.Rejected)
	}

	// Checkpoint captures the full in-memory state and rotates the WAL
	// past the (simulated) gap: the wedge clears and ingest resumes.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("repairing checkpoint: %v", err)
	}
	if s.Stats().Persist.Wedged {
		t.Fatal("wedge survived a successful checkpoint")
	}
	feedBatches(t, elems[half:], 97, s)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	want := s.Stats()
	s.Abort()

	re, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover after wedge repair: %v", err)
	}
	defer re.Stop()
	got := re.Stats()
	if got.Assigned != want.Assigned || got.CutEdges != want.CutEdges || got.Vertices != want.Vertices {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	for _, vtx := range g.Vertices() {
		wp, wok := s.Where(vtx)
		gp, gok := re.Where(vtx)
		if wp != gp || wok != gok {
			t.Fatalf("Where(%d) = %v,%v, want %v,%v", vtx, gp, gok, wp, wok)
		}
	}
}

func TestCheckpointWithoutPersistence(t *testing.T) {
	s, err := New(Config{
		Core: core.Config{Partition: partition.Config{K: 2, ExpectedVertices: 8}, WindowSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Checkpoint(); !errors.Is(err, ErrNoPersistence) {
		t.Fatalf("Checkpoint on non-durable server = %v, want ErrNoPersistence", err)
	}
}

func TestOpenRefusesKMismatch(t *testing.T) {
	g, w, alphabet := testGraph(t, 200, 2, 3)
	dir := t.TempDir()
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, elementsOf(t, g), 97, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Stop()

	bad := persistConfig(w, alphabet, g.NumVertices(), 4)
	if _, err := Open(bad, PersistOptions{Dir: dir}); err == nil {
		t.Fatal("Open with mismatching k succeeded")
	}
}

func TestCodecUnsafeLabelsRejected(t *testing.T) {
	s, err := New(Config{
		Core: core.Config{Partition: partition.Config{K: 2, ExpectedVertices: 8}, WindowSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	bad := []stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: ""},
		{Kind: stream.VertexElement, V: 2, Label: "a b"},
		{Kind: stream.VertexElement, V: 3, Label: "a\nb"},
		{Kind: stream.VertexElement, V: 4, Label: "fine"},
	}
	if err := s.IngestSync(bad); err == nil {
		t.Fatal("expected element errors for codec-unsafe labels")
	}
	st := s.Stats()
	if st.Rejected != 3 || st.Vertices != 1 {
		t.Fatalf("rejected=%d vertices=%d, want 3/1", st.Rejected, st.Vertices)
	}
}
