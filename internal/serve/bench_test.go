package serve

import (
	"math/rand"
	"testing"

	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/stream"
)

// benchFixture builds one BA graph and its temporal element stream.
func benchFixture(b *testing.B, n int) (*graph.Graph, []stream.Element, core.Config) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.BarabasiAlbert(n, 4, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		b.Fatalf("stream: %v", err)
	}
	cfg := core.Config{
		Partition:  partition.Config{K: 8, ExpectedVertices: n, Slack: 1.2, Seed: 1},
		WindowSize: 128,
		Threshold:  0.05,
	}
	return g, elems, cfg
}

// BenchmarkBatchRun is the baseline: core.Partitioner.Run over a
// materialised element slice, no serving layer.
func BenchmarkBatchRun(b *testing.B) {
	_, elems, cfg := benchFixture(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie, err := buildTrie(nil, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.New(cfg, trie)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(stream.NewSliceSource(elems)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(elems)), "ns/element")
}

// BenchmarkServerIngest measures the serving pipeline end to end: mailbox,
// writer loop, snapshot publication — the overhead on top of BatchRun.
func BenchmarkServerIngest(b *testing.B) {
	_, elems, cfg := benchFixture(b, 5000)
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Core: cfg})
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(elems); off += batch {
			end := off + batch
			if end > len(elems) {
				end = len(elems)
			}
			if err := s.Ingest(elems[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		s.Stop()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(elems)), "ns/element")
}

// BenchmarkWhere measures lock-free lookup scaling: run with
// -cpu 1,2,4,8 to see throughput scale across GOMAXPROCS.
func BenchmarkWhere(b *testing.B) {
	const n = 100_000
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 16, ExpectedVertices: n, Slack: 1.2, Seed: 1},
			WindowSize: 256,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	elems := make([]stream.Element, 0, n)
	for v := 0; v < n; v++ {
		elems = append(elems, stream.Element{Kind: stream.VertexElement, V: graph.VertexID(v), Label: "a"})
	}
	if err := s.IngestSync(elems); err != nil {
		b.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := graph.VertexID(0)
		for pb.Next() {
			if _, ok := s.Where(v); !ok {
				b.Errorf("Where(%d) missed", v)
				return
			}
			v++
			if v == n {
				v = 0
			}
		}
	})
}

// BenchmarkRoute measures the multi-anchor routing decision.
func BenchmarkRoute(b *testing.B) {
	const n = 10_000
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 8, ExpectedVertices: n, Slack: 1.2, Seed: 1},
			WindowSize: 64,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	elems := make([]stream.Element, 0, n)
	for v := 0; v < n; v++ {
		elems = append(elems, stream.Element{Kind: stream.VertexElement, V: graph.VertexID(v), Label: "a"})
	}
	if err := s.IngestSync(elems); err != nil {
		b.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := graph.VertexID(0)
		for pb.Next() {
			d := s.Route(v, v+1, v+2, v+3)
			if d.Known == 0 {
				b.Error("route found nothing")
				return
			}
			v = (v + 7) % (n - 4)
		}
	})
}
