package serve

import (
	"strings"
	"testing"
	"time"

	"loom/internal/core"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/store"
	"loom/internal/stream"
)

// TestExportView checks that a view carries exactly the assigned portion
// of the serving state, is detached from the server, and can back a
// sharded store.
func TestExportView(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 13)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 2, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// Mid-stream: some vertices are window residents. The view must skip
	// them — every view vertex has a placement.
	v1, err := s.ExportView()
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	st := s.Stats()
	if st.PendingWindow == 0 {
		t.Fatal("test wants window residents; tune WindowSize/graph")
	}
	if v1.Graph.NumVertices() != st.Assigned {
		t.Fatalf("view vertices = %d, assigned = %d", v1.Graph.NumVertices(), st.Assigned)
	}
	if v1.Assignment.Len() != v1.Graph.NumVertices() {
		t.Fatalf("view assignment covers %d of %d vertices", v1.Assignment.Len(), v1.Graph.NumVertices())
	}
	v1.Graph.EachVertex(func(v graph.VertexID) bool {
		if p, ok := s.Where(v); !ok || p != v1.Assignment.Get(v) {
			t.Fatalf("view vertex %d: Where=%v,%v assignment=%v", v, p, ok, v1.Assignment.Get(v))
		}
		return true
	})
	// A view is always storable: Build rejects unassigned vertices, so
	// this doubles as the no-window-residents check.
	if _, err := store.Build(v1.Graph, v1.Assignment); err != nil {
		t.Fatalf("store over view: %v", err)
	}
	// Detached: mutating the view cannot disturb the server.
	v1.Graph.AddVertex(1_000_000, "zz")
	if s.Stats().Vertices != st.Vertices {
		t.Fatal("view shares graph state with the server")
	}

	// After a drain the view covers everything.
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	v2, err := s.ExportView()
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	if v2.Graph.NumVertices() != g.NumVertices() || v2.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("drained view %d/%d, want %d/%d",
			v2.Graph.NumVertices(), v2.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if v2.Epoch == 0 {
		t.Fatal("view epoch not stamped")
	}
}

// TestWorkloadSourceDrivesRestream closes the loop at the serve layer: a
// restream launched after SetWorkloadSource scores against the observed
// workload and reports it, and removing the source falls back to static.
func TestWorkloadSourceDrivesRestream(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 2, 5)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 2, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 32,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()
	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	observed := query.MustNewWorkload(query.Query{
		ID:      "obs0",
		Pattern: graph.Path(alphabet[0], alphabet[1]),
		Weight:  3,
	})
	s.SetWorkloadSource(func() *query.Workload { return observed })
	if err := s.TriggerRestream("workload"); err != nil {
		t.Fatalf("workload restream: %v", err)
	}
	rep := s.Stats().LastRestream
	if rep == nil || rep.Trigger != "workload" || rep.WorkloadSource != "observed" {
		t.Fatalf("report = %+v, want trigger=workload source=observed", rep)
	}
	if rep.ExpectedVertices == 0 {
		t.Fatal("adaptive re-plan did not stamp ExpectedVertices")
	}

	// An empty observed workload falls back to the static one.
	s.SetWorkloadSource(func() *query.Workload { return nil })
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	rep = s.Stats().LastRestream
	if rep == nil || rep.Trigger != "manual" || rep.WorkloadSource != "static" {
		t.Fatalf("report = %+v, want trigger=manual source=static", rep)
	}
}

// TestMigrationBudget checks that an automatically triggered restream
// whose plan exceeds MaxMigrationFraction is refused — old assignment
// keeps serving — while a manual restream is exempt.
func TestMigrationBudget(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 4, 9)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 4, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 32,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
		Drift: DriftConfig{
			MaxMigrationFraction: 1e-9, // any movement at all exceeds it
			Passes:               2,
			Priority:             partition.PriorityDegree,
		},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()
	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	before, err := s.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}

	err = s.TriggerRestream("workload")
	if err == nil || !strings.Contains(err.Error(), "exceeds budget") {
		t.Fatalf("budget-violating restream returned %v", err)
	}
	st := s.Stats()
	if st.Restreams != 0 {
		t.Fatalf("rejected restream counted as adopted: %d", st.Restreams)
	}
	rep := st.LastRestream
	if rep == nil || !rep.BudgetRejected || rep.Trigger != "workload" {
		t.Fatalf("report = %+v, want BudgetRejected on workload trigger", rep)
	}
	// The old assignment keeps serving.
	before.EachVertex(func(v graph.VertexID, p partition.ID) {
		if got, ok := s.Where(v); !ok || got != p {
			t.Fatalf("Where(%d) = %v,%v, want pre-restream %v", v, got, ok, p)
		}
	})

	// Manual restreams are operator decisions: the budget does not apply.
	if err := s.Restream(); err != nil {
		t.Fatalf("manual restream under budget: %v", err)
	}
	st = s.Stats()
	if st.Restreams != 1 || st.LastRestream.BudgetRejected {
		t.Fatalf("manual restream not adopted: %+v", st.LastRestream)
	}
	if st.LastRestream.Migrated == 0 {
		t.Fatal("test wants a plan that moves vertices; tune the seed")
	}
}

// TestWindowedDriftTrigger runs the drift monitor over a rolling window
// and checks both the published window rate and that the cut trigger
// still fires from it.
func TestWindowedDriftTrigger(t *testing.T) {
	g, w, alphabet := testGraph(t, 800, 4, 11)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 4, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
		Drift: DriftConfig{
			MaxCutFraction:   0.001, // any realistic cut trips it
			MinAssigned:      128,
			CooldownAssigned: 1 << 30, // one restream only
			WindowEdges:      200,
			Heuristic:        "ldg",
		},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.Restreams >= 1 && !st.RestreamLive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("windowed restream never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep := s.Stats().LastRestream
	if rep.Trigger != "cut" || rep.Err != "" {
		t.Fatalf("report = %+v, want clean cut trigger", rep)
	}

	// Keep streaming past another full window: the published window rate
	// becomes valid again after the swap reset it.
	more, _, _ := testGraph(t, 800, 4, 12)
	elems := elementsOf(t, more)
	shifted := make([]stream.Element, 0, len(elems))
	for _, el := range elems {
		el.V += 10_000
		if el.Kind == stream.EdgeElement {
			el.U += 10_000
		}
		shifted = append(shifted, el)
	}
	if err := s.IngestSync(shifted); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	st := s.Stats()
	if !st.WindowCutValid {
		t.Fatalf("window rate never became valid: %+v", st)
	}
	if st.WindowCutFraction < 0 || st.WindowCutFraction > 1 {
		t.Fatalf("window cut fraction %v out of range", st.WindowCutFraction)
	}
}

// TestAdaptiveExpectedVertices pins the capacity re-plan: the first swap
// keeps the historical 2x headroom, and a plateaued stream no longer
// doubles the constraint on every subsequent swap.
func TestAdaptiveExpectedVertices(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 21)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 2, ExpectedVertices: 64, Slack: 1.2, Seed: 1},
			WindowSize: 32,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()
	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	n := g.NumVertices()
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	first := s.Stats().LastRestream.ExpectedVertices
	if first != 2*n {
		t.Fatalf("first swap ExpectedVertices = %d, want %d", first, 2*n)
	}
	// No arrivals since: the re-plan targets 1.25x the population, which
	// the constraint already exceeds — it must not double again.
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	second := s.Stats().LastRestream.ExpectedVertices
	if second != first {
		t.Fatalf("plateaued stream grew ExpectedVertices %d -> %d", first, second)
	}
}
