// Package serve is the online partition-serving runtime: the long-running
// layer that connects the streaming partitioner (internal/core) to a live
// query workload.
//
// A Server runs a single-writer ingest loop that drives a core.Partitioner
// through a bounded, batched mailbox with backpressure, while publishing
// copy-on-write assignment snapshots through an atomic pointer so any
// number of reader goroutines answer Where/Route lookups lock-free. A
// drift monitor maintains incremental cut-fraction and imbalance
// estimators as edges stream in; when either crosses its configured
// threshold the server kicks off a background restream (workload-aware
// LOOM, ReLDG or ReFennel) over a detached graph snapshot, then atomically
// swaps in the new assignment together with a migration plan.
//
// The design splits state three ways:
//
//   - Writer-owned: the canonical graph, the live core.Partitioner, the
//     drift counters. Touched only by the ingest loop goroutine.
//   - Published: Snapshot behind an atomic.Pointer. Readers load the
//     pointer and answer from the write-once placement table.
//   - Background: an in-flight restream works on fully detached clones
//     (fresh interners, private trie) because the engine's identity layer
//     is not concurrency-safe; results return over a channel and are
//     adopted by the writer.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loom/internal/checkpoint"
	"loom/internal/core"
	"loom/internal/fault"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/stream"
)

// Defaults applied by New for zero-valued Config fields.
const (
	// DefaultMailbox is the mailbox capacity in batches.
	DefaultMailbox = 64
	// DefaultExpectedVertices sizes the LDG capacity constraint when the
	// caller does not know the eventual stream length. The constraint is
	// soft: once exceeded, placement degrades gracefully to least-loaded.
	DefaultExpectedVertices = 1 << 16
	// DefaultMinAssigned gates drift triggers until the estimate has a
	// meaningful sample.
	DefaultMinAssigned = 512
	// drainBurst bounds how many queued batches one loop cycle absorbs
	// before republishing the snapshot.
	drainBurst = 32
	// maxReportedErrors caps the per-batch element errors joined into the
	// IngestSync result; the rest are only counted.
	maxReportedErrors = 8
)

// ErrStopped is returned by operations on a stopped Server.
var ErrStopped = errors.New("serve: server stopped")

// ErrWedged is the base error of every wedged-ingest refusal: a WAL
// append (or restream-swap snapshot) failed, so the in-memory state
// leads the log and accepting more would acknowledge durability the
// directory cannot deliver. errors.Is(err, ErrWedged) matches. A
// successful Checkpoint — explicit, or scheduled by ReanchorPolicy —
// clears it.
var ErrWedged = errors.New("serve: persistence wedged")

// ErrNoPersistence is returned by Checkpoint on a server built without a
// data directory (New instead of Open).
var ErrNoPersistence = errors.New("serve: server has no persistence configured")

// DriftConfig parameterises the drift monitor and the background restream
// it triggers.
type DriftConfig struct {
	// MaxCutFraction triggers a restream when cut edges / observed
	// assigned-assigned edges exceeds it. Zero disables the cut trigger.
	// Pair it with MaxImbalance: an oversized capacity constraint can
	// collapse a connected stream into one partition, where the cut is a
	// legitimate zero and only the imbalance trigger fires.
	MaxCutFraction float64
	// MaxImbalance triggers a restream when max partition size over ideal
	// exceeds it (1.0 = perfect balance). Zero disables the trigger.
	MaxImbalance float64
	// MinAssigned gates both triggers until this many vertices are
	// assigned. Zero defaults to DefaultMinAssigned.
	MinAssigned int
	// CooldownAssigned is the number of newly assigned vertices required
	// between restreams. Zero defaults to MinAssigned.
	CooldownAssigned int
	// Passes is the number of restream passes per trigger (default 1).
	Passes int
	// Priority reorders the stream between passes (prioritized
	// restreaming).
	Priority partition.Priority
	// SelfWeight is the prior self-affinity bonus (zero defaults to 1).
	SelfWeight float64
	// Heuristic picks the restream engine: "loom" (workload-aware, the
	// default), "ldg" (ReLDG) or "fennel" (ReFennel).
	Heuristic string
	// WindowEdges sizes the drift estimator window in observed
	// (assigned-assigned) edges. When set, the cut trigger compares the
	// cut fraction of the last completed window instead of the lifetime
	// counters, so a long well-partitioned prefix cannot mask fresh
	// drift. Zero keeps the lifetime estimator.
	WindowEdges int
	// MaxMigrationFraction bounds the data movement an automatically
	// triggered restream may impose: if the finished plan would move more
	// than this fraction of the assigned vertices, the swap is refused
	// and the old assignment keeps serving (the cooldown then spaces out
	// the next attempt). Manual restreams are operator decisions and
	// exempt. Zero means unlimited.
	MaxMigrationFraction float64
	// MaxMessagesPerQuery triggers a workload restream when the served
	// queries' cross-shard message rate (messages per query, averaged
	// over QueryWindow queries) exceeds it. The serve layer does not see
	// queries itself: the query engine (internal/qserve) reads this via
	// DriftConfig() and calls TriggerRestream("workload"). Zero disables
	// the trigger.
	MaxMessagesPerQuery float64
	// QueryWindow is the number of served queries per message-rate
	// window for the MaxMessagesPerQuery trigger. Zero lets the query
	// engine pick its default.
	QueryWindow int
}

// Config parameterises a Server.
type Config struct {
	// Core carries the LOOM parameters (partition config, window,
	// threshold...). Core.Partition.ExpectedVertices zero defaults to
	// DefaultExpectedVertices.
	Core core.Config
	// Workload summarises the query workload LOOM keeps intact; nil serves
	// with plain windowed LDG. The workload must not be mutated after New:
	// background restreams rebuild private tries from it.
	Workload *query.Workload
	// Alphabet pre-assigns signature factors so motif signatures are
	// deterministic and agree between the live trie and restream tries.
	Alphabet []graph.Label
	// MaxMotifVertices caps enumerated motif size (0 = package default).
	MaxMotifVertices int
	// Mailbox is the ingest queue capacity in batches; Ingest blocks
	// (backpressure) when it is full. Zero defaults to DefaultMailbox.
	Mailbox int
	// Drift configures degradation-triggered restreaming.
	Drift DriftConfig
	// Admission rate-limits ingest ahead of the mailbox; refused batches
	// fail fast with *OverloadError instead of blocking. Zero Rate
	// disables it.
	Admission AdmissionConfig
	// Reanchor makes a wedged server retry the re-anchoring snapshot
	// itself instead of waiting for an operator Checkpoint.
	Reanchor ReanchorPolicy
	// DecodeWorkers sizes the parallel binary-frame decode stage in
	// front of the writer loop (IngestFrames). Zero defaults to
	// GOMAXPROCS; the workers start lazily on first binary ingest.
	DecodeWorkers int
	// SnapshotEveryBatches bounds the WAL tail on long runs: after this
	// many accepted data batches the writer performs the same drain +
	// barrier + engine-reseed cycle an explicit Checkpoint does and writes
	// a durable snapshot, so recovery never replays more than roughly this
	// many batches. Like Checkpoint, the drain force-assigns window
	// residents; pick a period long enough that the placement-quality cost
	// is amortised. Zero disables the trigger. Ignored without
	// persistence.
	SnapshotEveryBatches int
	// DecaySpan ages edges out of restream scoring: when > 0, an edge
	// whose last add is more than DecaySpan accepted elements in the past
	// is excluded from the detached clone a background restream scores
	// over (the same logical-time span semantics stream.TimedWindow
	// applies to vertex residency — element counts, never the wall
	// clock). The canonical graph and the served placements are
	// unaffected; only restream scoring forgets stale structure. Zero
	// keeps every edge forever.
	DecaySpan int64
}

// ctrlKind discriminates control envelopes from data batches.
type ctrlKind uint8

const (
	ctrlNone ctrlKind = iota
	ctrlDrain
	ctrlRestream
	ctrlExport
	ctrlView
	ctrlCheckpoint
)

type envelope struct {
	elems  []stream.Element
	kind   ctrlKind
	reply  chan error                 // buffered(1) when non-nil
	replyA chan *partition.Assignment // ctrlExport only, buffered(1)
	replyV chan *View                 // ctrlView only, buffered(1)
	// trigger labels a ctrlRestream request ("manual", "workload", ...)
	// for the restream report and the migration-budget exemption.
	trigger string
	// raw is the binary frame payload elems were decoded from, when the
	// batch arrived through the binary decode stage: if the writer
	// accepts every element it is appended to the WAL verbatim instead
	// of re-encoding. rawExact means decode dropped nothing (no
	// intra-frame duplicates), i.e. raw describes exactly elems. The
	// buffers stay owned by the sender's frame job; the writer may read
	// them only until it releases the reply.
	raw      []byte
	rawExact bool
}

// restreamOutcome carries a finished background restream back to the
// writer.
type restreamOutcome struct {
	res     *partition.RestreamResult
	err     error
	trigger string
	started time.Time
	// trie is the restream's private TPSTry++ (loom heuristic only): on
	// adoption it becomes the live trie, so the pattern tracker follows
	// the workload the restream was scored against.
	trie *motif.Trie
	// workload records which workload the loom heuristic scored against:
	// "static" (Config.Workload) or "observed" (live workload source).
	// Empty for ldg/fennel.
	workload string
}

// Server is an online partition server. Ingest/IngestSync feed the graph
// stream; Where/Route/Stats answer from lock-free snapshots on any number
// of goroutines; Stop shuts the pipeline down gracefully.
type Server struct {
	cfg  Config
	trie *motif.Trie
	k    int

	mail chan envelope
	cur  atomic.Pointer[Snapshot]
	quit chan struct{}
	done chan struct{}
	once sync.Once
	// aborted flips the quit path from graceful shutdown to a hard stop.
	aborted atomic.Bool
	// inflight counts senders between their quit-check and their enqueue,
	// so shutdown can quiesce the mailbox without stranding a reply.
	inflight atomic.Int64

	// persist is the durability layer; persist.store is nil on a server
	// built without a data directory. The store itself is writer-owned;
	// the counters are atomics so Stats can read them from any goroutine.
	persist struct {
		store      *checkpoint.Store
		enabled    bool
		dir        string
		fsync      checkpoint.SyncPolicy
		walRecords atomic.Int64
		walBytes   atomic.Int64
		// walTail counts WAL records appended since the last successful
		// snapshot rotation — the tail a crash recovery would replay.
		walTail   atomic.Int64
		snapshots atomic.Int64
		lastErr   atomic.Pointer[string]
		// wedged flips when a WAL append fails: the in-memory state then
		// holds elements the log does not, so further ingest is refused
		// (acknowledging it would poison recovery). A successful snapshot
		// (Checkpoint, restream swap) captures the full state, rotates
		// the WAL past the gap and clears the wedge.
		wedged  atomic.Bool
		recover RecoverInfo
	}

	// admission is the ingest token bucket; nil when Admission.Rate is 0.
	// It runs on the caller's goroutine in send, ahead of the mailbox.
	admission *tokenBucket

	// workloadSrc is the live workload source installed by
	// SetWorkloadSource; nil serves the static Config.Workload. An
	// atomic pointer because the installer (query engine) and the
	// consumer (writer goroutine, at restream launch) are different
	// goroutines.
	workloadSrc atomic.Pointer[workloadSource]

	// decode is the parallel binary-frame decode stage (ingest.go):
	// workers start lazily on the first IngestFrames call and exit with
	// quit. jobs carries frames to whichever worker is free; the
	// sequencer re-establishes frame order before the mailbox.
	decode struct {
		start    sync.Once
		jobs     chan *frameJob
		pool     sync.Pool
		workers  int
		inflight int
	}

	// heal is the self-healing re-anchor state. The atomics are readable
	// from any goroutine (Stats); everything else is writer-owned.
	heal struct {
		enabled      bool
		initial, max time.Duration
		timer        func(time.Duration) <-chan time.Time
		// retryCh is the armed retry timer; nil (blocking forever in the
		// loop select) when no retry is pending.
		retryCh <-chan time.Time
		backoff time.Duration
		// attempts/healed count re-anchor tries and successes; nextMS is
		// the currently armed backoff (0 = no retry pending).
		attempts atomic.Int64
		healed   atomic.Int64
		nextMS   atomic.Int64
	}

	// Writer-owned state below: touched only by the loop goroutine.
	g *graph.Graph
	p *core.Partitioner
	// ccfg is the effective core configuration: cfg.Core with defaults
	// applied and ExpectedVertices grown at restream swaps. Engine
	// rebuilds (restream adoption, checkpoints, recovery) all construct
	// from it, and snapshots record it so a recovered engine scores with
	// the same capacity constraint.
	ccfg     core.Config
	tab      *table
	pending  []graph.VertexID // ingested, not yet mirrored into tab
	cut      int              // cut edges among assigned-assigned pairs
	observed int              // assigned-assigned edges seen
	epoch    uint64
	ingested int64
	rejected int64
	// edgeStamp records each live edge's last-add logical time (accepted
	// element count) for Config.DecaySpan; nil when decay is off. Only
	// read at restream launch, where the live graph's deterministic edge
	// iteration drives the probes, so map order never leaks.
	edgeStamp map[edgeKey]int64
	// batchesSinceSnap counts accepted data batches toward the
	// Config.SnapshotEveryBatches periodic checkpoint trigger.
	batchesSinceSnap int
	// walScratch accumulates a batch's accepted elements for the WAL.
	walScratch []stream.Element
	// wantSnapshot asks handle to write a snapshot after the next
	// publish; every snapWaits entry (Checkpoint callers) receives the
	// write error.
	wantSnapshot bool
	snapWaits    []chan error

	restreaming   bool
	everRestream  bool // a restream has been launched at least once
	sinceRestream int  // vertices assigned since the last restream event
	restreams     int
	lastRestream  *RestreamReport
	manualWait    chan error
	restreamCh    chan *restreamOutcome

	// Windowed drift estimator (Drift.WindowEdges > 0): winStart* mark
	// the counters at the open window's start; winRate/winValid hold the
	// last completed window's cut fraction.
	winStartCut      int
	winStartObserved int
	winRate          float64
	winValid         bool
	// vertsAtSwap is the vertex count at the last restream swap, the
	// baseline of the adaptive ExpectedVertices re-plan (0 before the
	// first swap).
	vertsAtSwap int
}

// workloadSource wraps the observed-workload callback for atomic storage.
type workloadSource struct {
	fn func() *query.Workload
}

// edgeKey is an undirected edge normalised for the decay stamp map.
type edgeKey struct{ a, b graph.VertexID }

func mkEdgeKey(u, v graph.VertexID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// View is a detached copy of the assigned portion of the serving state:
// every vertex in Graph has a placement in Assignment. Window residents
// (ingested but not yet placed) are excluded, so a View can always back a
// sharded store. The copy shares nothing with the server — readers may
// keep it indefinitely.
type View struct {
	Graph      *graph.Graph
	Assignment *partition.Assignment
	// Epoch is the published epoch the view was cut at.
	Epoch uint64
}

// buildTrie captures w (possibly nil) into a fresh TPSTry++ with its own
// signature factory and label interner.
func buildTrie(w *query.Workload, alphabet []graph.Label, maxMotif int) (*motif.Trie, error) {
	var f *signature.Factory
	if len(alphabet) > 0 {
		f = signature.NewFactoryForAlphabet(alphabet)
	} else {
		f = signature.NewFactory()
	}
	t := motif.New(f, motif.Options{MaxMotifVertices: maxMotif})
	if w != nil {
		if err := w.BuildTrie(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// New starts a Server and its ingest loop.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	s.publish()
	go s.loop()
	return s, nil
}

// newServer validates cfg and builds a Server without publishing a
// snapshot or starting the loop, so Open can restore persisted state
// first.
func newServer(cfg Config) (*Server, error) {
	if cfg.Core.Partition.ExpectedVertices == 0 {
		cfg.Core.Partition.ExpectedVertices = DefaultExpectedVertices
	}
	if cfg.Mailbox == 0 {
		cfg.Mailbox = DefaultMailbox
	}
	if cfg.Mailbox < 1 {
		return nil, fmt.Errorf("serve: mailbox capacity %d < 1", cfg.Mailbox)
	}
	if cfg.Drift.MinAssigned == 0 {
		cfg.Drift.MinAssigned = DefaultMinAssigned
	}
	if cfg.Drift.CooldownAssigned == 0 {
		cfg.Drift.CooldownAssigned = cfg.Drift.MinAssigned
	}
	if cfg.Drift.Passes == 0 {
		cfg.Drift.Passes = 1
	}
	switch cfg.Drift.Heuristic {
	case "", "loom", "ldg", "fennel":
	default:
		return nil, fmt.Errorf("serve: unknown restream heuristic %q", cfg.Drift.Heuristic)
	}
	trie, err := buildTrie(cfg.Workload, cfg.Alphabet, cfg.MaxMotifVertices)
	if err != nil {
		return nil, err
	}
	p, err := core.New(cfg.Core, trie)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		trie:       trie,
		k:          cfg.Core.Partition.K,
		mail:       make(chan envelope, cfg.Mailbox),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		g:          graph.New(),
		p:          p,
		ccfg:       cfg.Core,
		tab:        newTable(0),
		restreamCh: make(chan *restreamOutcome, 1),
	}
	if cfg.Admission.Rate < 0 {
		return nil, fmt.Errorf("serve: admission rate %v < 0", cfg.Admission.Rate)
	}
	if cfg.DecodeWorkers < 0 {
		return nil, fmt.Errorf("serve: decode workers %d < 0", cfg.DecodeWorkers)
	}
	if cfg.SnapshotEveryBatches < 0 {
		return nil, fmt.Errorf("serve: snapshot every %d batches < 0", cfg.SnapshotEveryBatches)
	}
	if cfg.DecaySpan < 0 {
		return nil, fmt.Errorf("serve: decay span %d < 0", cfg.DecaySpan)
	}
	if cfg.DecaySpan > 0 {
		s.edgeStamp = make(map[edgeKey]int64)
	}
	if cfg.Admission.Rate > 0 {
		s.admission = newTokenBucket(cfg.Admission)
	}
	if cfg.Reanchor.Enabled {
		s.heal.enabled = true
		s.heal.initial = cfg.Reanchor.Initial
		if s.heal.initial <= 0 {
			s.heal.initial = DefaultReanchorInitial
		}
		s.heal.max = cfg.Reanchor.Max
		if s.heal.max <= 0 {
			s.heal.max = DefaultReanchorMax
		}
		if s.heal.max < s.heal.initial {
			s.heal.max = s.heal.initial
		}
		s.heal.timer = cfg.Reanchor.Timer
		if s.heal.timer == nil {
			s.heal.timer = defaultReanchorTimer
		}
	}
	return s, nil
}

// Ingest enqueues a batch of stream elements and returns once the batch is
// accepted into the mailbox (blocking for backpressure when it is full).
// Element errors are counted in Stats().Rejected; use IngestSync to
// receive them.
func (s *Server) Ingest(elems []stream.Element) error {
	return s.send(envelope{elems: elems})
}

// IngestSync enqueues a batch and waits until the writer has processed it
// and published the resulting snapshot, returning the per-element errors
// (joined, capped) if any were rejected.
func (s *Server) IngestSync(elems []stream.Element) error {
	env := envelope{elems: elems, reply: make(chan error, 1)}
	if err := s.send(env); err != nil {
		return err
	}
	return <-env.reply
}

// Flush waits until everything enqueued before it has been processed and
// published.
func (s *Server) Flush() error { return s.IngestSync(nil) }

// Drain forces the assignment of every window-resident vertex, as if the
// stream had ended. Placement quality for those vertices may suffer (they
// are assigned before their remaining adjacency arrives); intended for
// end-of-stream, checkpointing, or tests. Ingest may continue afterwards.
func (s *Server) Drain() error {
	env := envelope{kind: ctrlDrain, reply: make(chan error, 1)}
	if err := s.send(env); err != nil {
		return err
	}
	return <-env.reply
}

// Restream requests a restream now, regardless of drift thresholds, and
// waits for the new assignment to be adopted. It fails if a restream is
// already in flight.
func (s *Server) Restream() error { return s.TriggerRestream("manual") }

// TriggerRestream is Restream with a caller-supplied trigger label for
// the restream report ("workload" for the query engine's message-rate
// trigger; empty defaults to "manual"). Triggers other than "manual" are
// subject to the Drift.MaxMigrationFraction budget.
func (s *Server) TriggerRestream(trigger string) error {
	if trigger == "" {
		trigger = "manual"
	}
	env := envelope{kind: ctrlRestream, trigger: trigger, reply: make(chan error, 1)}
	if err := s.send(env); err != nil {
		return err
	}
	return <-env.reply
}

// SetWorkloadSource installs (or, with nil, removes) a live workload
// source. When set, every subsequent loom-heuristic restream asks fn for
// the current observed workload and scores against it instead of the
// static Config.Workload (falling back to the static workload when fn
// returns nil or an empty workload). fn is called on the writer goroutine
// at restream launch and must be safe for that; the returned workload
// must not be mutated afterwards.
func (s *Server) SetWorkloadSource(fn func() *query.Workload) {
	if fn == nil {
		s.workloadSrc.Store(nil)
		return
	}
	s.workloadSrc.Store(&workloadSource{fn: fn})
}

// DriftConfig returns the effective drift configuration (defaults
// applied). Safe for any goroutine; the query engine reads its
// MaxMessagesPerQuery/QueryWindow trigger parameters from it.
func (s *Server) DriftConfig() DriftConfig { return s.cfg.Drift }

// Export returns an independent copy of the current assignment (assigned
// vertices only).
func (s *Server) Export() (*partition.Assignment, error) {
	env := envelope{kind: ctrlExport, replyA: make(chan *partition.Assignment, 1)}
	if err := s.send(env); err != nil {
		return nil, err
	}
	a := <-env.replyA
	if a == nil {
		// An abort raced the request: the envelope was refused.
		return nil, ErrStopped
	}
	return a, nil
}

// ExportView returns a detached copy of the assigned portion of the
// serving state — graph and placements — suitable for building a sharded
// query store (internal/store). Window residents are excluded: queries
// over the view see the placed portion of the graph only.
func (s *Server) ExportView() (*View, error) {
	env := envelope{kind: ctrlView, replyV: make(chan *View, 1)}
	if err := s.send(env); err != nil {
		return nil, err
	}
	v := <-env.replyV
	if v == nil {
		// An abort raced the request: the envelope was refused.
		return nil, ErrStopped
	}
	return v, nil
}

// Checkpoint forces a durable snapshot now. Like Drain, it assigns every
// window-resident vertex first (placement quality for those may suffer);
// the engine is then reseeded at the barrier — exactly the reseed a
// restream swap performs — and the snapshot plus WAL rotation are on disk
// before Checkpoint returns. Fails with ErrNoPersistence on a server
// built without a data directory.
func (s *Server) Checkpoint() error {
	if s.persist.store == nil {
		return ErrNoPersistence
	}
	env := envelope{kind: ctrlCheckpoint, reply: make(chan error, 1)}
	if err := s.send(env); err != nil {
		return err
	}
	return <-env.reply
}

func (s *Server) send(env envelope) error {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	select {
	case <-s.quit:
		return ErrStopped
	default:
	}
	// Admission control and the accept failpoint gate data batches only:
	// control envelopes (drain, checkpoint, restream...) are operator
	// actions, not load.
	if env.kind == ctrlNone && len(env.elems) > 0 {
		if s.admission != nil {
			if wait, ok := s.admission.admit(len(env.elems)); !ok {
				s.admission.refused.Add(int64(len(env.elems)))
				return &OverloadError{RetryAfter: wait}
			}
		}
		if err := fault.Check(fault.ServeAccept); err != nil {
			return err
		}
	}
	select {
	case s.mail <- env:
		return nil
	case <-s.quit:
		return ErrStopped
	}
}

// Stop shuts the server down: no new batches are accepted, already-queued
// batches are processed, an in-flight background restream is waited for
// and adopted (deterministic checkpoint-after-quiesce — its result is
// never discarded), the window is drained so every ingested vertex has a
// placement, and a final snapshot is published — durably, when the server
// was opened with persistence. Where/Route/Stats keep answering from that
// snapshot. Stop blocks until the loop has exited and is safe to call
// more than once.
func (s *Server) Stop() {
	s.once.Do(func() { close(s.quit) })
	<-s.done
}

// Abort hard-stops the server: no draining, no window assignment, no
// final checkpoint — the closest a process can get to crashing on
// purpose. Queued batches and in-flight callers are refused with
// ErrStopped; Where/Route/Stats keep answering from the last published
// snapshot. With persistence enabled the data directory is left exactly
// as the WAL last recorded it, which is the state a crash recovery must
// cope with — the crash-recovery tests are built on this. Safe to call
// more than once; an Abort that races Stop yields whichever came first.
func (s *Server) Abort() {
	s.aborted.Store(true)
	s.once.Do(func() { close(s.quit) })
	<-s.done
}

// Where returns the partition serving vertex v, lock-free. ok is false
// while v is unknown or still awaiting assignment in the window.
//
//loom:hotpath
func (s *Server) Where(v graph.VertexID) (partition.ID, bool) {
	return s.cur.Load().tab.get(v)
}

// RouteDecision is the outcome of routing a query's anchor vertices.
type RouteDecision struct {
	// Target is the partition owning the plurality of the known anchors,
	// or partition.Unassigned when none are known.
	Target partition.ID `json:"target"`
	// Known/Unknown count anchors with and without a placement.
	Known   int `json:"known"`
	Unknown int `json:"unknown"`
	// PerPartition counts known anchors per partition.
	PerPartition []int `json:"per_partition"`
}

// Route picks the shard a query touching the given vertices should be sent
// to: the partition owning the most of them (lowest ID on ties). Lock-free.
//
//loom:hotpath
func (s *Server) Route(vs ...graph.VertexID) RouteDecision {
	tab := s.cur.Load().tab
	//loom:allocok PerPartition escapes to the caller by contract; one small slice per routed query
	d := RouteDecision{Target: partition.Unassigned, PerPartition: make([]int, s.k)}
	for _, v := range vs {
		p, ok := tab.get(v)
		if !ok {
			d.Unknown++
			continue
		}
		d.Known++
		d.PerPartition[p]++
	}
	best := 0
	for i, c := range d.PerPartition {
		if c > best {
			best = c
			d.Target = partition.ID(i)
		}
	}
	return d
}

// Stats returns the statistics frozen at the last published epoch, plus
// the live mailbox depth. Safe for any goroutine.
func (s *Server) Stats() Stats {
	st := s.cur.Load().stats
	st.MailboxDepth = len(s.mail)
	st.MailboxCap = cap(s.mail)
	if s.admission != nil {
		st.Admission = &AdmissionStats{
			Rate:    s.admission.rate,
			Burst:   s.admission.burst,
			Refused: s.admission.refused.Load(),
		}
	}
	if s.persist.enabled {
		ps := &PersistStats{
			Enabled:    true,
			Dir:        s.persist.dir,
			Fsync:      s.persist.fsync.String(),
			WALRecords: s.persist.walRecords.Load(),
			WALBytes:   s.persist.walBytes.Load(),
			WALTail:    s.persist.walTail.Load(),
			Snapshots:  s.persist.snapshots.Load(),
			Wedged:     s.persist.wedged.Load(),
			Recover:    s.persist.recover,
		}
		switch {
		case ps.Wedged && s.heal.enabled:
			ps.State = "re-anchoring"
		case ps.Wedged:
			ps.State = "wedged"
		default:
			ps.State = "healthy"
		}
		ps.ReanchorAttempts = s.heal.attempts.Load()
		ps.Reanchors = s.heal.healed.Load()
		ps.NextRetryMS = s.heal.nextMS.Load()
		if e := s.persist.lastErr.Load(); e != nil {
			ps.LastErr = *e
		}
		st.Persist = ps
	}
	return st
}

// loop is the single writer: it owns the graph, the partitioner and the
// drift counters.
func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case env := <-s.mail:
			s.handle(env)
		case out := <-s.restreamCh:
			s.adopt(out)
		case <-s.heal.retryCh:
			// nil when no retry is pending (blocks forever).
			s.reanchor()
		case <-s.quit:
			if s.aborted.Load() {
				s.abortShutdown()
			} else {
				s.shutdown()
			}
			return
		}
	}
}

// handle processes env plus an opportunistic burst of already-queued
// batches, sweeps fresh assignments into the table, publishes one snapshot
// and answers the drift monitor.
func (s *Server) handle(env envelope) {
	type pendingReply struct {
		ch  chan error
		err error
	}
	var replies []pendingReply
	add := func(e envelope) {
		err := s.process(e)
		// Restream replies wait for adoption; checkpoint replies wait for
		// the snapshot write below.
		if e.reply != nil && e.kind != ctrlRestream && e.kind != ctrlCheckpoint {
			replies = append(replies, pendingReply{ch: e.reply, err: err})
		}
	}
	add(env)
	// A checkpoint ends the burst: the snapshot below needs the cycle to
	// close at its window-empty barrier — coalescing further batches
	// behind it would re-populate the window before the write.
	for burst := 0; burst < drainBurst && env.kind != ctrlCheckpoint; burst++ {
		select {
		case next := <-s.mail:
			add(next)
			if next.kind == ctrlCheckpoint {
				burst = drainBurst
			}
		default:
			burst = drainBurst
		}
	}
	// Periodic checkpoint (Config.SnapshotEveryBatches): bound the WAL
	// tail by re-anchoring the log on a fresh snapshot after every N
	// accepted data batches — the same drain + barrier + reseed cycle an
	// explicit Checkpoint performs.
	if n := s.cfg.SnapshotEveryBatches; n > 0 && s.persist.store != nil && s.batchesSinceSnap >= n {
		s.batchesSinceSnap = 0
		s.periodicCheckpoint()
	}
	s.sweep()
	s.publish()
	for _, r := range replies {
		r.ch <- r.err
	}
	if s.wantSnapshot {
		s.wantSnapshot = false
		err := s.writeSnapshot()
		for _, ch := range s.snapWaits {
			ch <- err
		}
		s.snapWaits = s.snapWaits[:0]
		if err != nil {
			// A failed checkpoint snapshot on a wedged server leaves the
			// wedge in place; hand the repair to the retry timer.
			s.scheduleReanchor()
		}
	}
	s.maybeDriftRestream()
}

// process applies one envelope. The returned error joins the first few
// element rejections (nil when everything was accepted).
func (s *Server) process(env envelope) error {
	switch env.kind {
	case ctrlDrain:
		// The drain is part of the replayable history: it changes window
		// state and therefore every subsequent placement. Refuse it
		// outright while wedged — draining unlogged would diverge.
		if s.persist.store != nil && s.persist.wedged.Load() {
			return fmt.Errorf("%w: drain refused; checkpoint to repair", ErrWedged)
		}
		s.p.Finish()
		return s.logRecord(checkpoint.RecordDrain)
	case ctrlCheckpoint:
		// The barrier failpoint refuses the checkpoint request before it
		// drains or reseeds anything: the caller sees the error, the
		// serving state is untouched.
		if err := fault.Check(fault.ServeBarrier); err != nil {
			env.reply <- err
			return nil
		}
		s.p.Finish()
		// The barrier record makes the drain+reseed replayable when the
		// snapshot below fails. While wedged (or if this append itself
		// fails) the WAL cannot carry it, but the snapshot still can
		// repair everything, so keep going either way.
		if !s.persist.wedged.Load() {
			_ = s.logRecord(checkpoint.RecordBarrier)
		}
		if err := s.rebuildEngine(); err != nil {
			env.reply <- err
			return nil
		}
		s.wantSnapshot = true
		s.snapWaits = append(s.snapWaits, env.reply)
		return nil
	case ctrlExport:
		env.replyA <- s.p.Assignment().Clone()
		return nil
	case ctrlView:
		env.replyV <- s.buildView()
		return nil
	case ctrlRestream:
		switch {
		case s.restreaming:
			env.reply <- errors.New("serve: restream already in flight")
		case s.g.NumVertices() == 0:
			env.reply <- errors.New("serve: nothing to restream")
		default:
			s.manualWait = env.reply
			s.launchRestream(env.trigger)
		}
		return nil
	}
	logWAL := s.persist.store != nil
	// Once wedged, the log is missing applied elements; accepting more
	// would acknowledge durability the directory cannot deliver, and
	// recovery would reject replayed records referencing the gap.
	if logWAL && s.persist.wedged.Load() && len(env.elems) > 0 {
		s.rejected += int64(len(env.elems))
		return fmt.Errorf("%w: refused %d elements; checkpoint to repair", ErrWedged, len(env.elems))
	}
	var errs []error
	dropped := 0
	s.walScratch = s.walScratch[:0]
	for i := range env.elems {
		if err := s.applyElement(env.elems[i]); err != nil {
			s.rejected++
			if len(errs) < maxReportedErrors {
				errs = append(errs, err)
			} else {
				dropped++
			}
		} else {
			s.ingested++
			if logWAL {
				s.walScratch = append(s.walScratch, env.elems[i])
			}
		}
	}
	if dropped > 0 {
		errs = append(errs, fmt.Errorf("serve: %d further element errors", dropped))
	}
	if len(env.elems) > 0 {
		s.batchesSinceSnap++
	}
	// Durability before acknowledgement: the accepted slice of the batch
	// is in the WAL (fsynced per policy) before handle releases the reply.
	if logWAL && len(s.walScratch) > 0 {
		// Binary batches whose every decoded element was accepted are
		// logged as their original frame payload, skipping the text
		// re-encode entirely. The payload must describe exactly the
		// accepted elements — any decode-stage dedup or writer-side
		// rejection falls back to encoding the accepted subset, because
		// replay applies WAL bodies verbatim and fatally rejects
		// duplicates ("the log holds only once-accepted elements").
		if env.raw != nil && env.rawExact && len(s.walScratch) == len(env.elems) {
			if err := s.appendWALBinary(env.raw); err != nil {
				errs = append(errs, err)
			}
		} else if err := s.appendWAL(checkpoint.RecordBatch, s.walScratch); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// appendWAL writes one record and maintains the persistence counters. On
// failure the server wedges: the in-memory state now leads the log, so
// further appends are pointless until a snapshot re-anchors the history.
func (s *Server) appendWAL(kind checkpoint.RecordKind, elems []stream.Element) error {
	n, err := s.persist.store.Append(kind, elems)
	return s.noteAppend(n, err)
}

// appendWALBinary logs one accepted binary batch as its original frame
// payload (no re-encode); failure semantics are identical to appendWAL.
func (s *Server) appendWALBinary(payload []byte) error {
	n, err := s.persist.store.AppendBinary(payload)
	return s.noteAppend(n, err)
}

// noteAppend maintains the persistence counters and the wedge for both
// append paths.
func (s *Server) noteAppend(n int, err error) error {
	if err != nil {
		// The returned error wraps the underlying I/O failure, NOT
		// ErrWedged: the batch WAS applied in memory — it is the durability
		// acknowledgement that failed. Only refusals of later work (which
		// is not applied) carry ErrWedged.
		s.notePersistErr(err)
		s.persist.wedged.Store(true)
		s.scheduleReanchor()
		return fmt.Errorf("serve: wal append: %w", err)
	}
	s.persist.walRecords.Add(1)
	s.persist.walBytes.Add(int64(n))
	s.persist.walTail.Add(1)
	return nil
}

// logRecord appends an element-less marker record (drain, barrier).
func (s *Server) logRecord(kind checkpoint.RecordKind) error {
	if s.persist.store == nil {
		return nil
	}
	return s.appendWAL(kind, nil)
}

// applyElement validates one element against the canonical graph, then
// feeds graph and partitioner in lockstep. Validation up front keeps the
// two views consistent: anything the graph would reject never reaches the
// engine.
func (s *Server) applyElement(el stream.Element) error {
	switch el.Kind {
	case stream.VertexElement:
		if s.g.HasVertex(el.V) {
			return fmt.Errorf("serve: duplicate vertex %d", el.V)
		}
		// Labels must survive the text codecs (WAL records, snapshots,
		// Export files); reject the ones that cannot up front, so the
		// accepted stream is always durable and replayable.
		if !checkpoint.CodecSafeLabel(el.Label) {
			return fmt.Errorf("serve: vertex %d label %q is not codec-safe", el.V, el.Label)
		}
		s.g.AddVertex(el.V, el.Label)
		if err := s.p.AddVertex(el.V, el.Label); err != nil {
			s.g.RemoveVertex(el.V)
			return err
		}
		s.pending = append(s.pending, el.V)
		return nil
	case stream.EdgeElement:
		// graph.AddEdge validates self-loops, unknown endpoints and
		// duplicates before mutating, so it is the single gatekeeper here.
		if err := s.g.AddEdge(el.V, el.U); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if err := s.p.AddEdge(el.V, el.U); err != nil {
			s.g.RemoveEdge(el.V, el.U)
			return err
		}
		// A late edge between two already-assigned vertices is accounted
		// here; edges with a pending endpoint are accounted by sweep when
		// that endpoint lands in the table.
		if pv, ok := s.tab.get(el.V); ok {
			if pu, ok2 := s.tab.get(el.U); ok2 {
				s.observed++
				if pv != pu {
					s.cut++
				}
			}
		}
		if s.edgeStamp != nil {
			s.edgeStamp[mkEdgeKey(el.V, el.U)] = s.ingested
		}
		return nil
	case stream.RemoveVertexElement:
		if !s.g.HasVertex(el.V) {
			return fmt.Errorf("serve: remove of unknown vertex %d", el.V)
		}
		// Engine first: every canonical-graph vertex is window-resident or
		// assigned in the core (graph and partitioner are fed in lockstep),
		// so this cannot fail; if it ever did, no serve-side state has been
		// touched yet.
		if err := s.p.RemoveVertex(el.V); err != nil {
			return err
		}
		// Drift decrement before the graph forgets the adjacency, mirroring
		// the exactly-once accounting above and in sweep: an edge was
		// counted iff BOTH endpoints are in the published table, and table
		// entries only ever leave through this path (which decrements) or a
		// restream swap (which recounts from scratch).
		if pv, ok := s.tab.get(el.V); ok {
			s.g.EachNeighbor(el.V, func(u graph.VertexID) bool {
				if pu, ok2 := s.tab.get(u); ok2 {
					s.observed--
					if pu != pv {
						s.cut--
					}
				}
				return true
			})
		}
		if s.edgeStamp != nil {
			s.g.EachNeighbor(el.V, func(u graph.VertexID) bool {
				delete(s.edgeStamp, mkEdgeKey(el.V, u))
				return true
			})
		}
		// Tombstone the published placement and evict any sparse entry so
		// no reader — of this or any older table generation — resolves the
		// stale shard off a later recycled handle.
		s.tabClear(el.V)
		for i, pv := range s.pending {
			if pv == el.V {
				s.pending[i] = s.pending[len(s.pending)-1]
				s.pending = s.pending[:len(s.pending)-1]
				break
			}
		}
		s.g.RemoveVertex(el.V)
		return nil
	case stream.RemoveEdgeElement:
		if !s.g.HasEdge(el.V, el.U) {
			return fmt.Errorf("serve: remove of unknown edge {%d,%d}", el.V, el.U)
		}
		if err := s.p.RemoveEdge(el.V, el.U); err != nil {
			return err
		}
		s.g.RemoveEdge(el.V, el.U)
		// Undo the exactly-once drift accounting: counted iff both
		// endpoints are in the table (see the edge case above).
		if pv, ok := s.tab.get(el.V); ok {
			if pu, ok2 := s.tab.get(el.U); ok2 {
				s.observed--
				if pv != pu {
					s.cut--
				}
			}
		}
		if s.edgeStamp != nil {
			delete(s.edgeStamp, mkEdgeKey(el.V, el.U))
		}
		return nil
	}
	return fmt.Errorf("serve: unknown element kind %d", el.Kind)
}

// sweep mirrors freshly assigned vertices into the placement table and
// folds their edges into the drift estimate. Each assigned-assigned edge
// is counted exactly once: when its second endpoint enters the table.
func (s *Server) sweep() {
	cur := s.p.Assignment()
	for i := 0; i < len(s.pending); {
		v := s.pending[i]
		p := cur.Get(v)
		if p == partition.Unassigned {
			i++
			continue
		}
		s.g.EachNeighbor(v, func(u graph.VertexID) bool {
			if pu, ok := s.tab.get(u); ok {
				s.observed++
				if pu != p {
					s.cut++
				}
			}
			return true
		})
		s.tabSet(v, p)
		s.sinceRestream++
		s.pending[i] = s.pending[len(s.pending)-1]
		s.pending = s.pending[:len(s.pending)-1]
	}
}

// tabSet stores one placement, growing the dense region (as a fresh table
// generation, copy-on-write) when v outgrows it.
func (s *Server) tabSet(v graph.VertexID, p partition.ID) {
	t := s.tab
	if v >= 0 && int64(v) < int64(len(t.dense)) {
		atomic.StoreInt32(&t.dense[v], int32(p))
		return
	}
	if denseEligible(v, s.g.NumVertices()) {
		nd := newDense(grownDense(len(t.dense), v))
		// Plain reads of our own previously published values: the writer
		// is the only goroutine that ever stores, and readers only read.
		copy(nd, t.dense)
		nd[v] = int32(p)
		s.tab = &table{dense: nd, sparse: t.sparse, hasSparse: t.hasSparse}
		return
	}
	t.hasSparse.Store(true)
	t.sparse.Store(v, p)
}

// tabClear tombstones one placement. The dense slot (when v is in range)
// flips back to denseUnassigned atomically, and the sparse entry is
// deleted unconditionally — the sparse map is shared by every growth
// generation, so readers holding an older table observe the removal too.
// Either way, a vertex ID recycled by a later re-add starts unplaced.
func (s *Server) tabClear(v graph.VertexID) {
	t := s.tab
	if v >= 0 && int64(v) < int64(len(t.dense)) {
		atomic.StoreInt32(&t.dense[v], denseUnassigned)
	}
	if t.hasSparse.Load() {
		t.sparse.Delete(v)
	}
}

// publish freezes the current statistics into a new Snapshot epoch.
func (s *Server) publish() {
	s.epoch++
	cur := s.p.Assignment()
	st := Stats{
		Epoch:         s.epoch,
		K:             s.k,
		Ingested:      s.ingested,
		Rejected:      s.rejected,
		Vertices:      s.g.NumVertices(),
		Edges:         s.g.NumEdges(),
		Assigned:      cur.Len(),
		PendingWindow: s.g.NumVertices() - cur.Len(),
		ObservedEdges: s.observed,
		CutEdges:      s.cut,
		Imbalance:     metrics.VertexImbalance(cur),
		Sizes:         cur.Sizes(),
		Restreams:     s.restreams,
		RestreamLive:  s.restreaming,
		LastRestream:  s.lastRestream,
	}
	if s.observed > 0 {
		st.CutFraction = float64(s.cut) / float64(s.observed)
	}
	if s.winValid {
		st.WindowCutFraction = s.winRate
		st.WindowCutValid = true
	}
	s.cur.Store(&Snapshot{tab: s.tab, stats: st})
}

// seedEngine builds a fresh core.Partitioner from the effective config
// and seeds its assignment with a. This is the engine reseed performed at
// every barrier — restream adoption, explicit checkpoint, snapshot
// recovery — so all three leave the engine in the same state (empty
// window, fresh seeded RNG, restored placements): a recovered server
// continues exactly like one that rebuilt in place.
func (s *Server) seedEngine(a *partition.Assignment) (*core.Partitioner, error) {
	np, err := core.New(s.ccfg, s.trie)
	if err != nil {
		return nil, err
	}
	na := np.Assignment()
	var serr error
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		if err := na.Set(v, p); err != nil && serr == nil {
			serr = err
		}
	})
	if serr != nil {
		return nil, serr
	}
	return np, nil
}

// buildView deep-copies the assigned subgraph and its placements with
// fresh interners (like detachedClone: the identity layer is not
// concurrency-safe, so the copy must share nothing). Runs on the writer.
func (s *Server) buildView() *View {
	cur := s.p.Assignment()
	g := graph.NewWithCapacity(cur.Len())
	a := partition.MustNewAssignment(s.k)
	s.g.EachVertex(func(v graph.VertexID) bool {
		p := cur.Get(v)
		if p == partition.Unassigned {
			return true // window resident: not in the view
		}
		l, _ := s.g.Label(v)
		g.AddVertex(v, l)
		// p came from a live assignment over the same k; Set cannot fail.
		if err := a.Set(v, p); err != nil {
			panic(err)
		}
		return true
	})
	s.g.EachEdge(func(u, v graph.VertexID) bool {
		if g.HasVertex(u) && g.HasVertex(v) {
			// Endpoints were just added; AddEdge cannot fail.
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
		return true
	})
	return &View{Graph: g, Assignment: a, Epoch: s.epoch}
}

// periodicCheckpoint is the SnapshotEveryBatches trigger: the same drain,
// barrier record and engine reseed an explicit Checkpoint performs, with
// the snapshot written by handle after the next publish. Runs on the
// writer.
func (s *Server) periodicCheckpoint() {
	s.p.Finish()
	// While wedged the WAL cannot carry the barrier, but the snapshot
	// alone still re-anchors everything; keep going either way.
	if !s.persist.wedged.Load() {
		_ = s.logRecord(checkpoint.RecordBarrier)
	}
	if err := s.rebuildEngine(); err != nil {
		// Unreachable with a validated config; record and skip this cycle.
		s.notePersistErr(err)
		return
	}
	s.wantSnapshot = true
}

// rebuildEngine reseeds the live engine in place with its own current
// assignment (a checkpoint barrier). The pending list is left alone: the
// next sweep mirrors those vertices from the reseeded assignment.
func (s *Server) rebuildEngine() error {
	np, err := s.seedEngine(s.p.Assignment())
	if err != nil {
		return err
	}
	s.p = np
	return nil
}

// buildTable makes a fresh table generation holding exactly a's
// placements. Plain writes are safe: no reader sees the table until it is
// published.
func buildTable(a *partition.Assignment) *table {
	maxID := graph.VertexID(-1)
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		if v > maxID && denseEligible(v, a.Len()) {
			maxID = v
		}
	})
	nt := newTable(grownDense(0, maxID))
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		if v >= 0 && int64(v) < int64(len(nt.dense)) {
			nt.dense[v] = int32(p)
			return
		}
		nt.hasSparse.Store(true)
		nt.sparse.Store(v, p)
	})
	return nt
}

// writeSnapshot persists the current state. Callers must be at a
// window-empty barrier (everything assigned); the snapshot codec has no
// representation for window residents.
func (s *Server) writeSnapshot() error {
	if s.persist.store == nil {
		return nil
	}
	cur := s.p.Assignment()
	if cur.Len() != s.g.NumVertices() {
		err := fmt.Errorf("serve: checkpoint with %d window-resident vertices", s.g.NumVertices()-cur.Len())
		s.notePersistErr(err)
		return err
	}
	m := checkpoint.Meta{
		Epoch:            s.epoch,
		K:                s.k,
		ExpectedVertices: s.ccfg.Partition.ExpectedVertices,
		WindowSize:       s.ccfg.WindowSize,
		Threshold:        s.ccfg.Threshold,
		Slack:            s.ccfg.Partition.Slack,
		Seed:             s.ccfg.Partition.Seed,
		Ingested:         s.ingested,
		Rejected:         s.rejected,
		Cut:              s.cut,
		Observed:         s.observed,
		Restreams:        s.restreams,
		SinceRestream:    s.sinceRestream,
		EverRestream:     s.everRestream,
		VertsAtSwap:      s.vertsAtSwap,
	}
	if err := s.persist.store.WriteSnapshot(m, s.g, cur); err != nil {
		s.notePersistErr(err)
		return err
	}
	s.persist.snapshots.Add(1)
	// The snapshot captures everything the WAL may have missed and
	// rotates to a fresh segment: a wedged log is whole again and the
	// replayable tail is empty.
	s.persist.wedged.Store(false)
	s.persist.walTail.Store(0)
	s.batchesSinceSnap = 0
	return nil
}

func (s *Server) notePersistErr(err error) {
	msg := err.Error()
	s.persist.lastErr.Store(&msg)
}

// rollDriftWindow closes the open drift window once WindowEdges observed
// edges have accumulated in it, freezing that window's cut fraction as
// the rate the cut trigger compares.
func (s *Server) rollDriftWindow() {
	w := s.cfg.Drift.WindowEdges
	if w <= 0 {
		return
	}
	if n := s.observed - s.winStartObserved; n >= w {
		s.winRate = float64(s.cut-s.winStartCut) / float64(n)
		s.winValid = true
		s.winStartCut, s.winStartObserved = s.cut, s.observed
	}
}

// driftCutRate returns the cut fraction the trigger should compare:
// the last completed window's rate when windowing is configured (ok is
// false until one window has completed), the lifetime fraction otherwise.
func (s *Server) driftCutRate() (float64, bool) {
	if s.cfg.Drift.WindowEdges > 0 {
		return s.winRate, s.winValid
	}
	if s.observed == 0 {
		return 0, false
	}
	return float64(s.cut) / float64(s.observed), true
}

// maybeDriftRestream fires a background restream when the incremental
// estimators cross their thresholds.
func (s *Server) maybeDriftRestream() {
	s.rollDriftWindow()
	if s.restreaming {
		return
	}
	d := s.cfg.Drift
	if d.MaxCutFraction <= 0 && d.MaxImbalance <= 0 {
		return
	}
	cur := s.p.Assignment()
	if cur.Len() < d.MinAssigned {
		return
	}
	// The cooldown spaces restreams out; it does not gate the first one.
	if s.everRestream && s.sinceRestream < d.CooldownAssigned {
		return
	}
	trigger := ""
	rate, rateOK := s.driftCutRate()
	switch {
	case d.MaxCutFraction > 0 && rateOK && rate > d.MaxCutFraction:
		trigger = "cut"
	case d.MaxImbalance > 0 && metrics.VertexImbalance(cur) > d.MaxImbalance:
		trigger = "imbalance"
	}
	if trigger != "" {
		s.launchRestream(trigger)
	}
}

// launchRestream snapshots the graph and assignment into fully detached
// copies (fresh interners — the identity layer is not concurrency-safe)
// and restreams them on a background goroutine.
func (s *Server) launchRestream(trigger string) {
	s.restreaming = true
	s.everRestream = true
	s.sinceRestream = 0
	gc := s.restreamClone()
	prior := s.p.Assignment().Clone()
	cfg := s.cfg
	// Resolve the workload the loom heuristic scores against: the live
	// observed workload when a source is installed and has data, the
	// static Config.Workload otherwise. Resolved here, on the writer, so
	// the background goroutine never touches the source.
	w, wsrc := cfg.Workload, ""
	if h := cfg.Drift.Heuristic; h == "" || h == "loom" {
		wsrc = "static"
		if src := s.workloadSrc.Load(); src != nil {
			if ow := src.fn(); ow != nil && ow.Len() > 0 {
				w, wsrc = ow, "observed"
			}
		}
	}
	ch := s.restreamCh
	started := time.Now()
	go func() {
		res, trie, err := runRestream(cfg, w, gc, prior)
		ch <- &restreamOutcome{
			res: res, err: err, trigger: trigger, started: started,
			trie: trie, workload: wsrc,
		}
	}()
}

// runRestream executes the configured restream heuristic over the
// detached clone, scoring against workload w (loom heuristic only). It
// runs on a background goroutine and must not touch any writer-owned
// state. For the loom heuristic the returned trie is the private
// TPSTry++ built from w, ready to become the live trie at adoption.
func runRestream(cfg Config, w *query.Workload, gc *graph.Graph, prior *partition.Assignment) (*partition.RestreamResult, *motif.Trie, error) {
	d := cfg.Drift
	rcfg := partition.RestreamConfig{Passes: d.Passes, Priority: d.Priority, SelfWeight: d.SelfWeight}
	base := gc.Vertices()
	pcfg := cfg.Core.Partition
	pcfg.ExpectedVertices = gc.NumVertices()
	switch d.Heuristic {
	case "", "loom":
		trie, err := buildTrie(w, cfg.Alphabet, cfg.MaxMotifVertices)
		if err != nil {
			return nil, nil, err
		}
		ccfg := cfg.Core
		ccfg.Partition = pcfg
		res, err := core.Restream(gc, trie, ccfg, rcfg, base, prior)
		if err != nil {
			return nil, nil, err
		}
		return res, trie, nil
	case "ldg", "fennel":
		rs := &partition.Restreamer{
			Config: rcfg,
			NewPass: func(int) (partition.Streaming, error) {
				if d.Heuristic == "fennel" {
					return partition.NewFennel(partition.FennelConfig{Config: pcfg, ExpectedEdges: gc.NumEdges()})
				}
				return partition.NewLDG(pcfg)
			},
		}
		res, err := rs.Run(gc, base, prior)
		return res, nil, err
	}
	return nil, nil, fmt.Errorf("serve: unknown restream heuristic %q", d.Heuristic)
}

// adopt swaps a finished restream into the serving path: it drains the
// live window (a swap barrier — every ingested vertex gets a current
// placement), merges post-snapshot arrivals into the restreamed
// assignment, rebuilds the engine seeded with the merged placement, and
// republishes table and drift counters under a new epoch. The snapshot is
// published before any waiting Restream caller is released, so a waiter's
// next Where/Stats observes the swapped state.
func (s *Server) adopt(out *restreamOutcome) {
	s.restreaming = false
	s.sinceRestream = 0
	reply := s.manualWait
	s.manualWait = nil
	if out.err != nil {
		s.lastRestream = &RestreamReport{
			Trigger:        out.trigger,
			Err:            out.err.Error(),
			WorkloadSource: out.workload,
			DurationMS:     time.Since(out.started).Milliseconds(),
		}
		s.publish()
		if reply != nil {
			reply <- out.err
		}
		return
	}

	prev := s.p.Assignment().Clone()
	s.p.Finish()
	cur := s.p.Assignment()
	merged := out.res.Final
	// Deletions that raced the background pass: the detached clone
	// predates them, so scrub placements for vertices the live graph no
	// longer holds — a removed (and possibly later recycled) ID must
	// never inherit a shard from a stale clone.
	var gone []graph.VertexID
	merged.EachVertex(func(v graph.VertexID, _ partition.ID) {
		if !s.g.HasVertex(v) {
			gone = append(gone, v)
		}
	})
	for _, v := range gone {
		merged.Remove(v)
	}
	restreamed := merged.Len()
	// Vertices ingested after the snapshot keep their live placement.
	var mergeErr error
	cur.EachVertex(func(v graph.VertexID, p partition.ID) {
		if merged.Get(v) == partition.Unassigned {
			if err := merged.Set(v, p); err != nil && mergeErr == nil {
				mergeErr = err
			}
		}
	})
	if mergeErr != nil {
		// Unreachable with a validated config; keep serving the old state.
		report := &RestreamReport{
			Trigger:    out.trigger,
			Err:        mergeErr.Error(),
			DurationMS: time.Since(out.started).Milliseconds(),
		}
		s.lastRestream = report
		s.publish()
		if reply != nil {
			reply <- mergeErr
		}
		return
	}

	report := &RestreamReport{
		Trigger:        out.trigger,
		Passes:         out.res.Passes,
		Vertices:       restreamed,
		WorkloadSource: out.workload,
		DurationMS:     time.Since(out.started).Milliseconds(),
	}
	prev.EachVertex(func(v graph.VertexID, from partition.ID) {
		if to := merged.Get(v); to != partition.Unassigned && to != from {
			report.Moves = append(report.Moves, Move{V: v, From: from, To: to})
		}
	})
	sort.Slice(report.Moves, func(i, j int) bool { return report.Moves[i].V < report.Moves[j].V })
	// Only previously visible placements that changed cost data movement;
	// window residents assigned at the barrier were never published.
	report.Migrated = len(report.Moves)
	if n := merged.Len(); n > 0 {
		report.MigrationFraction = float64(report.Migrated) / float64(n)
	}

	// The migration budget gates automatically triggered swaps: when the
	// plan would move more of the graph than the operator allowed, keep
	// serving the old assignment. The check uses metrics.MigrationFraction
	// over the full pre/post assignments (vertices first assigned at the
	// barrier included), the same measure the offline evaluator reports.
	// The cooldown (sinceRestream was reset above) spaces out the retry.
	if bud := s.cfg.Drift.MaxMigrationFraction; bud > 0 && out.trigger != "manual" {
		if mf := metrics.MigrationFraction(prev, merged); mf > bud {
			report.BudgetRejected = true
			report.Err = fmt.Sprintf("serve: migration fraction %.4f exceeds budget %.4f", mf, bud)
			s.lastRestream = report
			// The window was drained above; mirror its placements before
			// republishing so Where stays consistent with Assigned.
			s.sweep()
			s.publish()
			if reply != nil {
				reply <- errors.New(report.Err)
			}
			return
		}
	}

	// Adopt the restream's trie as the live one (loom heuristic): the
	// pattern tracker and every later engine reseed then score against
	// the workload this restream was built from — the observed workload
	// once a source is installed, closing the feedback loop.
	if out.trie != nil {
		s.trie = out.trie
	}

	// Rebuild the engine around the merged assignment. ExpectedVertices
	// is re-planned from the observed arrival ratio since the last swap
	// (clamped to [1.25x, 4x] headroom over the current population, 2x
	// before a baseline exists) instead of blindly doubling: a plateaued
	// stream no longer inflates the capacity constraint, a fast-growing
	// one gets more headroom. The growth sticks in s.ccfg so later
	// barriers (checkpoints, recovery) rebuild with the same capacity.
	n := s.g.NumVertices()
	growth := 2.0
	if s.vertsAtSwap > 0 {
		growth = float64(n) / float64(s.vertsAtSwap)
		if growth < 1.25 {
			growth = 1.25
		}
		if growth > 4 {
			growth = 4
		}
	}
	if target := int(float64(n) * growth); s.ccfg.Partition.ExpectedVertices < target {
		s.ccfg.Partition.ExpectedVertices = target
	}
	s.vertsAtSwap = n
	report.ExpectedVertices = s.ccfg.Partition.ExpectedVertices
	np, err := s.seedEngine(merged)
	if err != nil {
		// Unreachable with a validated config; keep serving the old state.
		report.Err = err.Error()
		s.lastRestream = report
		s.publish()
		if reply != nil {
			reply <- err
		}
		return
	}
	na := np.Assignment()
	s.p = np
	s.pending = s.pending[:0]

	// Fresh table generation; the epoch flip makes the swap atomic for
	// readers.
	s.tab = buildTable(na)
	s.cut, s.observed = 0, 0
	s.g.EachEdge(func(u, v graph.VertexID) bool {
		pu, pv := na.Get(u), na.Get(v)
		if pu != partition.Unassigned && pv != partition.Unassigned {
			s.observed++
			if pu != pv {
				s.cut++
			}
		}
		return true
	})
	// The swap starts a fresh drift window: the recomputed counters are
	// the new baseline, and the pre-swap window rate no longer describes
	// the serving assignment.
	s.winStartCut, s.winStartObserved = s.cut, s.observed
	s.winRate, s.winValid = 0, false
	s.restreams++
	s.lastRestream = report
	s.publish()
	// The swap is a window-empty barrier right after an engine reseed:
	// exactly what a snapshot needs. Unlike a checkpoint, a swap is NOT
	// representable in the WAL (the merged assignment came from a
	// background pass), so if the write fails the log's timeline is now
	// behind the served state for good — wedge ingest until a snapshot
	// succeeds, exactly like a failed WAL append. Serving reads goes on.
	swapErr := fault.Check(fault.ServeSwap)
	if swapErr != nil && s.persist.store != nil {
		s.notePersistErr(swapErr)
	} else {
		swapErr = s.writeSnapshot()
	}
	if swapErr != nil && s.persist.store != nil {
		s.persist.wedged.Store(true)
		s.scheduleReanchor()
	}
	if reply != nil {
		reply <- nil
	}
}

// shutdown quiesces senders, drains the mailbox, assigns everything still
// in the window and publishes the final snapshot. Every batch that made it
// into the mailbox is processed and replied to; senders still deciding see
// the closed quit channel and return ErrStopped themselves.
func (s *Server) shutdown() {
	drainOne := func() bool {
		select {
		case env := <-s.mail:
			// A queued restream request would only launch work that is
			// guaranteed to be abandoned; refuse it instead.
			if env.kind == ctrlRestream {
				env.reply <- ErrStopped
				return true
			}
			err := s.process(env)
			// A checkpoint's reply waits for the final snapshot write
			// below (process put it on snapWaits); answering here would
			// report success before anything hit disk.
			if env.reply != nil && env.kind != ctrlCheckpoint {
				env.reply <- err
			}
			return true
		default:
			return false
		}
	}
	for {
		if drainOne() {
			continue
		}
		if s.inflight.Load() == 0 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	for drainOne() {
	}
	// A restream in flight is waited for and adopted, never abandoned:
	// the worker always sends exactly one outcome, so this cannot hang,
	// and Stop's final state is deterministic — the drift-estimator
	// counters and the restreamed assignment survive instead of depending
	// on whether the swap won the race against shutdown. A waiting
	// Restream caller is released by adopt with the real outcome.
	if s.restreaming {
		s.adopt(<-s.restreamCh)
	} else {
		select {
		case out := <-s.restreamCh:
			s.adopt(out)
		default:
		}
	}
	s.p.Finish()
	s.sweep()
	s.publish()
	// Graceful shutdown checkpoint: a restart from the data directory
	// comes up warm with an empty WAL tail. The write error (if any)
	// reaches pending Checkpoint callers, and is recorded either way.
	err := s.writeSnapshot()
	s.wantSnapshot = false
	for _, ch := range s.snapWaits {
		ch <- err
	}
	s.snapWaits = s.snapWaits[:0]
	if s.persist.store != nil {
		if cerr := s.persist.store.Close(); cerr != nil {
			s.notePersistErr(cerr)
		}
	}
	if s.manualWait != nil {
		s.manualWait <- ErrStopped
		s.manualWait = nil
	}
}

// abortShutdown is the hard-stop path: refuse everything queued, quiesce
// senders, close the WAL without draining the window and without a final
// snapshot. See Abort.
func (s *Server) abortShutdown() {
	refuseOne := func() bool {
		select {
		case env := <-s.mail:
			if env.reply != nil {
				env.reply <- ErrStopped
			}
			if env.replyA != nil {
				env.replyA <- nil
			}
			if env.replyV != nil {
				env.replyV <- nil
			}
			return true
		default:
			return false
		}
	}
	for {
		if refuseOne() {
			continue
		}
		if s.inflight.Load() == 0 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	for refuseOne() {
	}
	if s.manualWait != nil {
		s.manualWait <- ErrStopped
		s.manualWait = nil
	}
	for _, ch := range s.snapWaits {
		ch <- ErrStopped
	}
	s.snapWaits = s.snapWaits[:0]
	if s.persist.store != nil {
		if cerr := s.persist.store.Close(); cerr != nil {
			s.notePersistErr(cerr)
		}
	}
}

// restreamClone snapshots the graph for a background restream. With
// Config.DecaySpan set, edges whose last add is older than the span (in
// accepted elements) are left out of the clone: core.Restream and the
// ldg/fennel restreamers score only from the clone they are handed, so
// stale edges age out of restream scoring uniformly across heuristics
// while the canonical graph and the served placements keep them.
func (s *Server) restreamClone() *graph.Graph {
	if s.edgeStamp == nil {
		return detachedClone(s.g)
	}
	cutoff := s.ingested - s.cfg.DecaySpan
	c := graph.NewWithCapacity(s.g.NumVertices())
	s.g.EachVertex(func(v graph.VertexID) bool {
		l, _ := s.g.Label(v)
		c.AddVertex(v, l)
		return true
	})
	s.g.EachEdge(func(u, v graph.VertexID) bool {
		if s.edgeStamp[mkEdgeKey(u, v)] < cutoff {
			return true // aged out of scoring
		}
		// Endpoints were just added; AddEdge cannot fail.
		if err := c.AddEdge(u, v); err != nil {
			panic(err)
		}
		return true
	})
	return c
}

// detachedClone deep-copies g with fresh interners, so a background
// goroutine can read it while the writer keeps mutating the original
// (graph.Clone shares the label interner, which is not concurrency-safe).
func detachedClone(g *graph.Graph) *graph.Graph {
	c := graph.NewWithCapacity(g.NumVertices())
	g.EachVertex(func(v graph.VertexID) bool {
		l, _ := g.Label(v)
		c.AddVertex(v, l)
		return true
	})
	g.EachEdge(func(u, v graph.VertexID) bool {
		// Endpoints were just added; AddEdge cannot fail.
		if err := c.AddEdge(u, v); err != nil {
			panic(err)
		}
		return true
	})
	return c
}
