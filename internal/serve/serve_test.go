package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/stream"
)

// testGraph returns a planted-partition graph and a synthetic workload
// over its alphabet, both deterministic.
func testGraph(t testing.TB, n, k int, seed int64) (*graph.Graph, *query.Workload, []graph.Label) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(n, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(8), alphabet, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return g, w, alphabet
}

func elementsOf(t testing.TB, g *graph.Graph) []stream.Element {
	t.Helper()
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return elems
}

// TestServerMatchesBatchRun pins the serving pipeline to the batch
// engine: with drift disabled, ingesting the same element sequence and
// stopping must yield exactly the placements of core.Partitioner.Run.
func TestServerMatchesBatchRun(t *testing.T) {
	g, w, alphabet := testGraph(t, 600, 4, 7)
	elems := elementsOf(t, g)
	ccfg := core.Config{
		Partition:  partition.Config{K: 4, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
		WindowSize: 64,
		Threshold:  0.05,
	}

	trie, err := buildTrie(w, alphabet, 0)
	if err != nil {
		t.Fatalf("trie: %v", err)
	}
	bp, err := core.New(ccfg, trie)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	want, err := bp.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}

	s, err := New(Config{Core: ccfg, Workload: w, Alphabet: alphabet})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	for i := 0; i < len(elems); i += 97 {
		end := i + 97
		if end > len(elems) {
			end = len(elems)
		}
		if err := s.IngestSync(elems[i:end]); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	s.Stop()

	if got := s.Stats().Assigned; got != want.Len() {
		t.Fatalf("assigned %d, want %d", got, want.Len())
	}
	want.EachVertex(func(v graph.VertexID, p partition.ID) {
		got, ok := s.Where(v)
		if !ok || got != p {
			t.Fatalf("Where(%d) = %v,%v, want %v", v, got, ok, p)
		}
	})
}

func TestWhereRouteDrainStats(t *testing.T) {
	g, w, alphabet := testGraph(t, 200, 2, 3)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 2, ExpectedVertices: 200, Slack: 1.2},
			WindowSize: 32,
		},
		Workload: w,
		Alphabet: alphabet,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	if _, ok := s.Where(0); ok {
		t.Fatal("Where on empty server reported a placement")
	}
	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	st := s.Stats()
	if st.Vertices != 200 {
		t.Fatalf("vertices = %d, want 200", st.Vertices)
	}
	if st.PendingWindow == 0 {
		t.Fatal("expected window-resident vertices before drain")
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st = s.Stats()
	if st.Assigned != 200 || st.PendingWindow != 0 {
		t.Fatalf("after drain: assigned=%d pending=%d", st.Assigned, st.PendingWindow)
	}
	if st.ObservedEdges != g.NumEdges() {
		t.Fatalf("observed edges = %d, want %d", st.ObservedEdges, g.NumEdges())
	}
	if cut := partitionCut(t, s, g); cut != st.CutEdges {
		t.Fatalf("incremental cut %d disagrees with recount %d", st.CutEdges, cut)
	}
	sum := 0
	for _, n := range st.Sizes {
		sum += n
	}
	if sum != 200 {
		t.Fatalf("sizes sum to %d, want 200", sum)
	}

	d := s.Route(0, 1, 2, 3, 4, 1<<40)
	if d.Known != 5 || d.Unknown != 1 {
		t.Fatalf("route known=%d unknown=%d", d.Known, d.Unknown)
	}
	if d.Target < 0 || int(d.Target) >= 2 {
		t.Fatalf("route target %v out of range", d.Target)
	}
	if none := s.Route(1 << 41); none.Target != partition.Unassigned {
		t.Fatalf("route of unknown anchors picked %v", none.Target)
	}
}

// partitionCut recomputes the assigned-assigned cut from scratch via Where.
func partitionCut(t testing.TB, s *Server, g *graph.Graph) int {
	t.Helper()
	cut := 0
	g.EachEdge(func(u, v graph.VertexID) bool {
		pu, ok1 := s.Where(u)
		pv, ok2 := s.Where(v)
		if ok1 && ok2 && pu != pv {
			cut++
		}
		return true
	})
	return cut
}

func TestIngestValidation(t *testing.T) {
	s, err := New(Config{
		Core: core.Config{Partition: partition.Config{K: 2, ExpectedVertices: 16}, WindowSize: 4},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	good := []stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
		{Kind: stream.EdgeElement, V: 1, U: 2},
	}
	if err := s.IngestSync(good); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	bad := []stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"}, // duplicate vertex
		{Kind: stream.EdgeElement, V: 1, U: 2},         // duplicate edge
		{Kind: stream.EdgeElement, V: 1, U: 99},        // unknown endpoint
		{Kind: stream.EdgeElement, V: 2, U: 2},         // self-loop
		{Kind: stream.VertexElement, V: 3, Label: "a"}, // fine
	}
	err = s.IngestSync(bad)
	if err == nil {
		t.Fatal("expected element errors")
	}
	st := s.Stats()
	if st.Rejected != 4 {
		t.Fatalf("rejected = %d, want 4", st.Rejected)
	}
	if st.Ingested != int64(len(good))+1 {
		t.Fatalf("ingested = %d, want %d", st.Ingested, len(good)+1)
	}
	if st.Vertices != 3 || st.Edges != 1 {
		t.Fatalf("graph %d/%d, want 3/1", st.Vertices, st.Edges)
	}
}

func TestSparseAndNegativeIDs(t *testing.T) {
	s, err := New(Config{
		Core: core.Config{Partition: partition.Config{K: 2, ExpectedVertices: 8}, WindowSize: 1},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	ids := []graph.VertexID{-5, 1 << 40, 3, 0}
	var elems []stream.Element
	for _, v := range ids {
		elems = append(elems, stream.Element{Kind: stream.VertexElement, V: v, Label: "a"})
	}
	if err := s.IngestSync(elems); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, v := range ids {
		if p, ok := s.Where(v); !ok || p < 0 || int(p) >= 2 {
			t.Fatalf("Where(%d) = %v,%v", v, p, ok)
		}
	}
}

// TestDriftTriggeredRestream forces the cut trigger and verifies the
// background restream completes, swaps a consistent assignment in, and
// reports a migration plan.
func TestDriftTriggeredRestream(t *testing.T) {
	g, w, alphabet := testGraph(t, 800, 4, 11)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 4, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
		Drift: DriftConfig{
			MaxCutFraction:   0.001, // any realistic cut trips it
			MinAssigned:      128,
			CooldownAssigned: 1 << 30, // one restream only
			Passes:           2,
			Priority:         partition.PriorityDegree,
			Heuristic:        "ldg",
		},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.Restreams >= 1 && !st.RestreamLive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restream never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := s.Stats()
	if st.LastRestream == nil {
		t.Fatal("no restream report")
	}
	rep := st.LastRestream
	if rep.Trigger != "cut" {
		t.Fatalf("trigger = %q, want cut", rep.Trigger)
	}
	if rep.Err != "" {
		t.Fatalf("restream failed: %s", rep.Err)
	}
	if len(rep.Passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(rep.Passes))
	}
	if rep.Migrated != len(rep.Moves) {
		t.Fatalf("migrated %d != moves %d", rep.Migrated, len(rep.Moves))
	}

	// The swapped-in state must be self-consistent: Export == Where for
	// every vertex, and the published cut matches a recount.
	a, err := s.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		got, ok := s.Where(v)
		if !ok || got != p {
			t.Fatalf("Where(%d) = %v,%v, want %v", v, got, ok, p)
		}
	})
	if cut := partitionCut(t, s, g); cut != s.Stats().CutEdges {
		t.Fatalf("cut %d != recount %d", s.Stats().CutEdges, cut)
	}
}

func TestManualRestream(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 2, 5)
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 2, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
			WindowSize: 32,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Stop()

	if err := s.Restream(); err == nil {
		t.Fatal("restream on empty server should fail")
	}
	if err := s.IngestSync(elementsOf(t, g)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	epochBefore := s.Stats().Epoch
	if err := s.Restream(); err != nil {
		t.Fatalf("manual restream: %v", err)
	}
	st := s.Stats()
	if st.Restreams != 1 || st.LastRestream == nil || st.LastRestream.Trigger != "manual" {
		t.Fatalf("restream not adopted: %+v", st)
	}
	if st.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance: %d -> %d", epochBefore, st.Epoch)
	}
	// The swap barrier drains the window: everything is assigned.
	if st.Assigned != g.NumVertices() {
		t.Fatalf("assigned = %d, want %d", st.Assigned, g.NumVertices())
	}
	// Ingest keeps working after a swap.
	more := []stream.Element{
		{Kind: stream.VertexElement, V: 10_000, Label: "a"},
		{Kind: stream.EdgeElement, V: 10_000, U: 0},
	}
	if err := s.IngestSync(more); err != nil {
		t.Fatalf("post-swap ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, ok := s.Where(10_000); !ok {
		t.Fatal("post-swap vertex never assigned")
	}
}

func TestStopSemantics(t *testing.T) {
	s, err := New(Config{
		Core: core.Config{Partition: partition.Config{K: 2, ExpectedVertices: 8}, WindowSize: 4},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := s.IngestSync([]stream.Element{{Kind: stream.VertexElement, V: 0, Label: "a"}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	s.Stop()
	s.Stop() // idempotent

	if _, ok := s.Where(0); !ok {
		t.Fatal("Stop should drain the window; vertex 0 unassigned")
	}
	if err := s.Ingest(nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Ingest after Stop = %v, want ErrStopped", err)
	}
	if err := s.IngestSync(nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("IngestSync after Stop = %v, want ErrStopped", err)
	}
	if err := s.Restream(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Restream after Stop = %v, want ErrStopped", err)
	}
	if _, err := s.Export(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Export after Stop = %v, want ErrStopped", err)
	}
}

// TestConcurrentIngestWhereRestream is the -race workhorse: one goroutine
// streams a live graph in batches, several readers hammer Where/Route/
// Stats, and tight drift thresholds force restream swaps mid-flight.
func TestConcurrentIngestWhereRestream(t *testing.T) {
	const total = 3000
	alphabet := gen.DefaultAlphabet(4)
	src, err := stream.NewLiveSource(total, 3, func(graph.VertexID) graph.Label { return alphabet[0] }, 42)
	if err != nil {
		t.Fatalf("live source: %v", err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(6), alphabet, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	s, err := New(Config{
		Core: core.Config{
			Partition:  partition.Config{K: 8, ExpectedVertices: total, Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
		Mailbox:  8,
		Drift: DriftConfig{
			MaxCutFraction:   0.001,
			MinAssigned:      128,
			CooldownAssigned: 256,
			Heuristic:        "ldg",
		},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				v := graph.VertexID(rng.Intn(total))
				if p, ok := s.Where(v); ok && (p < 0 || int(p) >= 8) {
					t.Errorf("Where(%d) = %d out of range", v, p)
					return
				}
				d := s.Route(v, v+1, v+2)
				if d.Known+d.Unknown != 3 {
					t.Errorf("route counted %d anchors", d.Known+d.Unknown)
					return
				}
				st := s.Stats()
				if st.K != 8 {
					t.Errorf("stats k = %d", st.K)
					return
				}
			}
		}(int64(r))
	}

	batch := make([]stream.Element, 0, 64)
	for {
		el, ok := src.Next()
		if ok {
			batch = append(batch, el)
		}
		if len(batch) == 64 || (!ok && len(batch) > 0) {
			if err := s.Ingest(append([]stream.Element(nil), batch...)); err != nil {
				t.Fatalf("ingest: %v", err)
			}
			batch = batch[:0]
		}
		if !ok {
			break
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Let any in-flight restream land before stopping the readers.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().RestreamLive && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	s.Stop()

	st := s.Stats()
	if st.Vertices != total {
		t.Fatalf("vertices = %d, want %d", st.Vertices, total)
	}
	if st.Assigned != total {
		t.Fatalf("assigned = %d, want %d", st.Assigned, total)
	}
	if st.Restreams < 1 {
		t.Fatalf("expected at least one drift restream, got %d", st.Restreams)
	}
	sum := 0
	for _, n := range st.Sizes {
		sum += n
	}
	if sum != total {
		t.Fatalf("sizes sum to %d, want %d", sum, total)
	}
}
