package serve

import (
	"math/rand"
	"testing"
	"time"

	"loom/internal/graph"
	"loom/internal/stream"
)

// churnStream splices deterministic removals and re-adds into an
// insert-only element stream without ever producing a rejectable element:
// a vertex is removed for good ("sticky") only when no later element
// references it, otherwise it is re-added immediately with its old label;
// removed edges never reappear because the source stream carries each
// edge once. Both servers of an equivalence pair must be fed the same
// spliced stream, so the splice depends only on (elems, seed).
func churnStream(elems []stream.Element, seed int64) (out []stream.Element, sticky []graph.VertexID) {
	lastRef := make(map[graph.VertexID]int)
	for i, el := range elems {
		lastRef[el.V] = i
		if el.Kind == stream.EdgeElement {
			lastRef[el.U] = i
		}
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make(map[graph.VertexID]graph.Label)
	var liveV []graph.VertexID
	var liveE [][2]graph.VertexID
	for i, el := range elems {
		out = append(out, el)
		switch el.Kind {
		case stream.VertexElement:
			labels[el.V] = el.Label
			liveV = append(liveV, el.V)
		case stream.EdgeElement:
			liveE = append(liveE, [2]graph.VertexID{el.V, el.U})
		}
		switch x := rng.Float64(); {
		case x < 0.04 && len(liveV) > 0:
			j := rng.Intn(len(liveV))
			v := liveV[j]
			out = append(out, stream.Element{Kind: stream.RemoveVertexElement, V: v})
			keep := liveE[:0]
			for _, e := range liveE {
				if e[0] != v && e[1] != v {
					keep = append(keep, e)
				}
			}
			liveE = keep
			if lastRef[v] > i {
				out = append(out, stream.Element{Kind: stream.VertexElement, V: v, Label: labels[v]})
			} else {
				liveV[j] = liveV[len(liveV)-1]
				liveV = liveV[:len(liveV)-1]
				sticky = append(sticky, v)
			}
		case x < 0.08 && len(liveE) > 0:
			j := rng.Intn(len(liveE))
			e := liveE[j]
			liveE[j] = liveE[len(liveE)-1]
			liveE = liveE[:len(liveE)-1]
			out = append(out, stream.Element{Kind: stream.RemoveEdgeElement, V: e[0], U: e[1]})
		}
	}
	return out, sticky
}

// countRemovals counts removal elements in elems.
func countRemovals(elems []stream.Element) int {
	n := 0
	for i := range elems {
		if elems[i].Kind == stream.RemoveVertexElement || elems[i].Kind == stream.RemoveEdgeElement {
			n++
		}
	}
	return n
}

// TestRemovalSemantics covers the direct contract of the deletion path:
// removals validate before they apply, an applied vertex removal clears
// the placement, and the incremental cut/observed drift estimators agree
// with a from-scratch recount after arbitrary interleaved churn.
func TestRemovalSemantics(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 3, 5)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 3)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	elems, sticky := churnStream(elementsOf(t, g), 41)
	if countRemovals(elems) == 0 || len(sticky) == 0 {
		t.Fatalf("churn splice produced %d removals, %d sticky — widen the schedule", countRemovals(elems), len(sticky))
	}
	if err := s.IngestSync(elems); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Removing a vertex or edge that is not in the served graph must be
	// rejected (and counted), not silently absorbed.
	before := s.Stats()
	if err := s.IngestSync([]stream.Element{{Kind: stream.RemoveVertexElement, V: 1 << 40}}); err == nil {
		t.Fatal("removal of unknown vertex was accepted")
	}
	if err := s.IngestSync([]stream.Element{{Kind: stream.RemoveEdgeElement, V: sticky[0], U: 1 << 40}}); err == nil {
		t.Fatal("removal of unknown edge was accepted")
	}
	if st := s.Stats(); st.Rejected != before.Rejected+2 {
		t.Fatalf("rejected = %d, want %d", st.Rejected, before.Rejected+2)
	}

	// Sticky-removed vertices serve no placement.
	for _, v := range sticky {
		if p, ok := s.Where(v); ok {
			t.Fatalf("Where(%d) = %v after removal", v, p)
		}
	}

	// Drift estimators survived the churn: recount the assigned-assigned
	// cut from scratch over the surviving graph.
	live := graph.New()
	lbl := make(map[graph.VertexID]graph.Label)
	type pair = [2]graph.VertexID
	edges := make(map[pair]bool)
	for _, el := range elems {
		switch el.Kind {
		case stream.VertexElement:
			lbl[el.V] = el.Label
		case stream.EdgeElement:
			e := pair{el.V, el.U}
			if el.U < el.V {
				e = pair{el.U, el.V}
			}
			edges[e] = true
		case stream.RemoveVertexElement:
			delete(lbl, el.V)
			for e := range edges {
				if e[0] == el.V || e[1] == el.V {
					delete(edges, e)
				}
			}
		case stream.RemoveEdgeElement:
			e := pair{el.V, el.U}
			if el.U < el.V {
				e = pair{el.U, el.V}
			}
			delete(edges, e)
		}
	}
	for v, l := range lbl {
		live.AddVertex(v, l)
	}
	for e := range edges {
		if err := live.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("rebuild model edge %v: %v", e, err)
		}
	}
	st := s.Stats()
	if st.Vertices != live.NumVertices() || st.Edges != live.NumEdges() {
		t.Fatalf("served graph %d/%d, model %d/%d", st.Vertices, st.Edges, live.NumVertices(), live.NumEdges())
	}
	if st.ObservedEdges != live.NumEdges() {
		t.Fatalf("observed edges = %d after drain, model has %d", st.ObservedEdges, live.NumEdges())
	}
	if cut := partitionCut(t, s, live); cut != st.CutEdges {
		t.Fatalf("incremental cut %d disagrees with recount %d after churn", st.CutEdges, cut)
	}
}

// TestWhereNotFoundAfterHandleRecycle pins the acceptance criterion that
// a removed vertex keeps answering not-found even after its interner
// handle has been recycled by later arrivals: the publication table is
// keyed by vertex id, so a recycled internal handle must never resurrect
// the old placement.
func TestWhereNotFoundAfterHandleRecycle(t *testing.T) {
	s, err := New(persistConfig(nil, []graph.Label{"a", "b"}, 64, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	base := []stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
		{Kind: stream.VertexElement, V: 3, Label: "a"},
		{Kind: stream.EdgeElement, V: 1, U: 2},
		{Kind: stream.EdgeElement, V: 2, U: 3},
	}
	if err := s.IngestSync(base); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Where(3); !ok {
		t.Fatal("vertex 3 unplaced after drain")
	}
	if err := s.IngestSync([]stream.Element{{Kind: stream.RemoveVertexElement, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Where(3); ok {
		t.Fatal("Where(3) still resolves right after removal")
	}

	// New arrivals recycle the freed handle (the interner free list is
	// LIFO, so the very next intern reuses it); the dead id must stay dead
	// while the newcomers get placements.
	var next []stream.Element
	for v := graph.VertexID(100); v < 116; v++ {
		next = append(next, stream.Element{Kind: stream.VertexElement, V: v, Label: "b"})
		next = append(next, stream.Element{Kind: stream.EdgeElement, V: v, U: 1})
	}
	if err := s.IngestSync(next); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if p, ok := s.Where(3); ok {
		t.Fatalf("Where(3) = %v through a recycled handle", p)
	}
	for v := graph.VertexID(100); v < 116; v++ {
		if _, ok := s.Where(v); !ok {
			t.Fatalf("Where(%d) unplaced after drain", v)
		}
	}

	// Re-adding the id is a fresh vertex: it gets a live placement again.
	if err := s.IngestSync([]stream.Element{
		{Kind: stream.VertexElement, V: 3, Label: "a"},
		{Kind: stream.EdgeElement, V: 3, U: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Where(3); !ok {
		t.Fatal("re-added vertex 3 unplaced after drain")
	}
}

// TestChurnCrashRecoveryMatchesControl is the deletion counterpart of
// TestCrashRecoveryMatchesControl: a durable server is hard-stopped
// mid-stream with removal records in the unsnapshotted WAL tail, reopened
// (pure replay), and must serve bit-identically to a control that never
// went down — including not-found for every vertex deleted before the
// crash.
func TestChurnCrashRecoveryMatchesControl(t *testing.T) {
	g, w, alphabet := testGraph(t, 500, 4, 9)
	elems, sticky := churnStream(elementsOf(t, g), 31)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 4)
	dir := t.TempDir()

	control, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Stop()
	durable, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	cut := len(elems) * 3 / 5
	if countRemovals(elems[:cut]) == 0 {
		t.Fatal("no removals ahead of the crash point; the replayed tail would be insert-only")
	}
	feedBatches(t, elems[:cut], 97, control, durable)

	durable.Abort()
	restarted, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer restarted.Stop()
	assertSameServing(t, g, restarted, control)

	feedBatches(t, elems[cut:], 97, control, restarted)
	if err := control.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := restarted.Drain(); err != nil {
		t.Fatal(err)
	}
	assertSameServing(t, g, restarted, control)
	for _, v := range sticky {
		if p, ok := restarted.Where(v); ok {
			t.Fatalf("recovered server still places removed vertex %d at %v", v, p)
		}
	}
}

// TestSnapshotEveryBatchesBoundsWALTail proves the periodic checkpoint
// trigger keeps the WAL tail bounded without any operator Checkpoint
// call, and that recovery after a crash replays only that bounded tail.
func TestSnapshotEveryBatchesBoundsWALTail(t *testing.T) {
	g, w, alphabet := testGraph(t, 400, 3, 13)
	elems, _ := churnStream(elementsOf(t, g), 17)
	cfg := persistConfig(w, alphabet, g.NumVertices(), 3)
	cfg.SnapshotEveryBatches = 4
	dir := t.TempDir()

	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	batches := 0
	for i := 0; i < len(elems); i += batch {
		end := i + batch
		if end > len(elems) {
			end = len(elems)
		}
		if err := s.IngestSync(elems[i:end]); err != nil {
			t.Fatalf("ingest batch at %d: %v", i, err)
		}
		batches++
	}

	// The trigger runs on the writer goroutine after the batch burst, so
	// give the last periodic snapshot a moment to land.
	deadline := time.Now().Add(5 * time.Second)
	var ps PersistStats
	for {
		ps = *s.Stats().Persist
		if ps.Snapshots > 0 && ps.WALTail <= 2*int64(cfg.SnapshotEveryBatches) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("WAL tail never converged: %+v after %d batches", ps, batches)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wantSnaps := int64(batches / cfg.SnapshotEveryBatches)
	if ps.Snapshots < wantSnaps/2 {
		t.Fatalf("only %d periodic snapshots across %d batches (every %d)", ps.Snapshots, batches, cfg.SnapshotEveryBatches)
	}

	// Crash and recover: replay must cover the tail, not the stream.
	s.Abort()
	restarted, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer restarted.Stop()
	ri := restarted.Stats().Persist.Recover
	if !ri.SnapshotLoaded {
		t.Fatalf("recovery ignored the periodic snapshots: %+v", ri)
	}
	if ri.ReplayedRecords > 3*cfg.SnapshotEveryBatches {
		t.Fatalf("replayed %d records; periodic snapshots every %d batches should bound the tail", ri.ReplayedRecords, cfg.SnapshotEveryBatches)
	}
	if tail := restarted.Stats().Persist.WALTail; tail != int64(ri.ReplayedRecords) {
		t.Fatalf("recovered WALTail = %d, want the %d replayed records", tail, ri.ReplayedRecords)
	}
}
