package serve

import (
	"errors"
	"fmt"
	"time"

	"loom/internal/checkpoint"
	"loom/internal/graph"
	"loom/internal/partition"
)

// PersistOptions configures the durability layer of Open.
type PersistOptions struct {
	// Dir is the checkpoint directory (created if missing): snapshots
	// plus WAL segments, managed by internal/checkpoint.
	Dir string
	// Fsync is the WAL sync policy. The zero value is
	// checkpoint.SyncAlways: an acknowledged batch survives power loss.
	Fsync checkpoint.SyncPolicy
}

// RecoverInfo describes what Open reconstructed. Immutable after Open.
type RecoverInfo struct {
	// SnapshotLoaded is false when the directory held no (intact)
	// snapshot and the whole history was replayed from the WAL.
	SnapshotLoaded bool   `json:"snapshot_loaded"`
	SnapshotEpoch  uint64 `json:"snapshot_epoch,omitempty"`
	// ReplayedRecords/ReplayedElements count the WAL tail fed back
	// through the ingest path — only the tail, never the full stream.
	ReplayedRecords  int `json:"replayed_records"`
	ReplayedElements int `json:"replayed_elements"`
	// SkippedSnapshots counts corrupt snapshot files passed over;
	// TornTail reports a truncated final WAL record (dropped, not fatal).
	SkippedSnapshots int  `json:"skipped_snapshots,omitempty"`
	TornTail         bool `json:"torn_tail,omitempty"`
	// RecoverMS is the wall-clock cost of Open: directory scan, snapshot
	// load and WAL tail replay.
	RecoverMS int64 `json:"recover_ms"`
}

// PersistStats is the durability section of Stats.
type PersistStats struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir"`
	Fsync   string `json:"fsync"`
	// WALRecords/WALBytes/Snapshots count what this process wrote.
	WALRecords int64 `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// WALTail counts records appended since the last successful snapshot
	// rotation (including a recovered tail) — what a crash right now
	// would replay. Config.SnapshotEveryBatches bounds it.
	WALTail   int64 `json:"wal_tail"`
	Snapshots int64 `json:"snapshots"`
	// LastErr is the most recent persistence failure, sticky until the
	// next one overwrites it.
	LastErr string `json:"last_err,omitempty"`
	// Wedged reports that a WAL append failed and ingest is refused until
	// a successful Checkpoint (or restream swap) re-anchors the log.
	Wedged bool `json:"wedged,omitempty"`
	// State is the durability state machine: "healthy", "re-anchoring"
	// (wedged, self-healing retries scheduled) or "wedged" (waiting for
	// an operator Checkpoint).
	State string `json:"state,omitempty"`
	// ReanchorAttempts/Reanchors count self-healing snapshot tries and
	// successes; NextRetryMS is the currently armed backoff delay (0 when
	// no retry is pending).
	ReanchorAttempts int64       `json:"reanchor_attempts,omitempty"`
	Reanchors        int64       `json:"reanchors,omitempty"`
	NextRetryMS      int64       `json:"next_retry_ms,omitempty"`
	Recover          RecoverInfo `json:"recover"`
}

// Open starts a durable Server over the checkpoint directory in opts: it
// loads the newest intact snapshot (if any), replays the WAL tail behind
// it through the same single-writer path live ingest uses, and then runs
// like New with every accepted batch appended to the WAL, a snapshot
// written at each restream swap, explicit Checkpoint, and graceful Stop.
// A server killed without ceremony (crash, Abort) and reopened this way
// answers Where/Route/Stats exactly like one that never went down,
// modulo batches that were never acknowledged durable under
// checkpoint.SyncNone. Two cosmetic exceptions: Stats.Epoch counts
// snapshot publications, and replay publishes once per WAL record while
// a loaded live server may coalesce several queued batches into one
// publication — under concurrent ingest the epoch can therefore differ
// from an uninterrupted control; and Stats.Rejected only survives up to
// the last snapshot (the WAL records accepted elements, so rejections
// after it are not replayable). Every placement and every other counter
// matches exactly.
//
// Deterministic recovery has the same preconditions as background
// restreams: set Config.Alphabet so motif signatures agree across engine
// rebuilds, and keep the Config between runs identical (K in particular
// is enforced against the snapshot).
func Open(cfg Config, opts PersistOptions) (*Server, error) {
	if opts.Dir == "" {
		return nil, errors.New("serve: PersistOptions.Dir is required")
	}
	start := time.Now()
	st, rec, err := checkpoint.Open(opts.Dir, opts.Fsync)
	if err != nil {
		return nil, err
	}
	s, err := newServer(cfg)
	if err != nil {
		st.Close()
		return nil, err
	}
	info := RecoverInfo{SkippedSnapshots: rec.SkippedSnapshots, TornTail: rec.TornTail}
	if rec.HasSnapshot {
		if err := s.restoreSnapshot(rec); err != nil {
			st.Close()
			return nil, err
		}
		info.SnapshotLoaded = true
		info.SnapshotEpoch = rec.Meta.Epoch
	}
	s.publish()

	// Replay the WAL tail through the writer's own code path. The loop is
	// not running yet, so this goroutine is the writer; drift triggers
	// stay quiet (maybeDriftRestream only runs from handle) and nothing
	// is re-appended (the store is attached after the replay).
	for _, r := range rec.Tail {
		info.ReplayedRecords++
		switch r.Kind {
		case checkpoint.RecordBatch, checkpoint.RecordBatchBinary:
			// Binary batch records decode to the same pre-validated
			// elements the writer accepted live (the store decoded the
			// payload during the segment scan); both kinds replay through
			// the identical apply path.
			info.ReplayedElements += len(r.Elems)
			if err := s.process(envelope{elems: r.Elems}); err != nil {
				// The log holds only once-accepted elements; a rejection
				// means log and snapshot disagree.
				st.Close()
				return nil, fmt.Errorf("serve: WAL replay (record %d): %w", r.Seq, err)
			}
		case checkpoint.RecordDrain:
			s.p.Finish()
		case checkpoint.RecordBarrier:
			// A checkpoint barrier whose snapshot never landed: reproduce
			// the drain and the engine reseed the live server performed.
			s.p.Finish()
			if err := s.rebuildEngine(); err != nil {
				st.Close()
				return nil, fmt.Errorf("serve: WAL replay (barrier %d): %w", r.Seq, err)
			}
		default:
			st.Close()
			return nil, fmt.Errorf("serve: WAL replay: unknown record kind %d", r.Kind)
		}
		s.sweep()
		s.publish()
	}
	info.RecoverMS = time.Since(start).Milliseconds()

	s.persist.store = st
	s.persist.walTail.Store(int64(info.ReplayedRecords))
	s.persist.enabled = true
	s.persist.dir = opts.Dir
	s.persist.fsync = opts.Fsync
	s.persist.recover = info
	go s.loop()
	return s, nil
}

// restoreSnapshot installs a recovered snapshot as the writer state, as
// if the server had just performed the barrier the snapshot was taken at.
func (s *Server) restoreSnapshot(rec *checkpoint.Recovered) error {
	m := rec.Meta
	if m.K != s.k {
		return fmt.Errorf("serve: snapshot has k=%d, server is configured with k=%d", m.K, s.k)
	}
	if rec.Assignment.Len() != rec.Graph.NumVertices() {
		return fmt.Errorf("serve: snapshot places %d of %d vertices (not a barrier snapshot)",
			rec.Assignment.Len(), rec.Graph.NumVertices())
	}
	var missing error
	rec.Assignment.EachVertex(func(v graph.VertexID, _ partition.ID) {
		if missing == nil && !rec.Graph.HasVertex(v) {
			missing = fmt.Errorf("serve: snapshot places vertex %d that is not in the graph", v)
		}
	})
	if missing != nil {
		return missing
	}
	if m.ExpectedVertices > 0 {
		s.ccfg.Partition.ExpectedVertices = m.ExpectedVertices
	}
	np, err := s.seedEngine(rec.Assignment)
	if err != nil {
		return err
	}
	s.g = rec.Graph
	s.p = np
	s.tab = buildTable(np.Assignment())
	s.pending = s.pending[:0]
	if s.edgeStamp != nil {
		// The snapshot codec carries no per-edge ages: stamp restored edges
		// with the snapshot's logical time — the most recent moment they
		// are known to have existed. WAL-tail replay then re-stamps any
		// edge the tail touches through the normal apply path.
		s.g.EachEdge(func(u, v graph.VertexID) bool {
			s.edgeStamp[mkEdgeKey(u, v)] = m.Ingested
			return true
		})
	}
	s.cut, s.observed = m.Cut, m.Observed
	s.ingested, s.rejected = m.Ingested, m.Rejected
	s.restreams = m.Restreams
	s.sinceRestream = m.SinceRestream
	s.everRestream = m.EverRestream
	s.vertsAtSwap = m.VertsAtSwap
	// publish() pre-increments, so the first publish after restore lands
	// on the snapshot's epoch — the same number an uninterrupted server
	// showed at the barrier.
	if m.Epoch > 0 {
		s.epoch = m.Epoch - 1
	}
	return nil
}
