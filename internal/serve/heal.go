package serve

import (
	"time"
)

// Defaults for ReanchorPolicy zero fields.
const (
	// DefaultReanchorInitial is the first retry delay after a wedge.
	DefaultReanchorInitial = 100 * time.Millisecond
	// DefaultReanchorMax caps the exponential backoff.
	DefaultReanchorMax = 5 * time.Second
)

// ReanchorPolicy makes a wedged server heal itself. A wedge means the
// in-memory state leads the WAL (an append or a swap snapshot failed);
// the repair is always the same — a successful re-anchoring snapshot —
// and without a policy it waits for an operator to call Checkpoint.
// With Enabled set, the server schedules that snapshot itself on a
// capped exponential backoff, serving reads throughout, and resumes
// ingest the moment a retry lands.
type ReanchorPolicy struct {
	// Enabled turns self-healing on.
	Enabled bool
	// Initial is the first retry delay (default DefaultReanchorInitial);
	// each failed retry doubles it up to Max (default DefaultReanchorMax).
	Initial time.Duration
	Max     time.Duration
	// Timer returns a channel that fires once after d; nil defaults to the
	// process clock. Tests and the chaos harness inject a fake so healing
	// is deterministic.
	Timer func(d time.Duration) <-chan time.Time
}

// defaultReanchorTimer schedules retries on the process clock.
func defaultReanchorTimer(d time.Duration) <-chan time.Time { return time.After(d) }

// scheduleReanchor arms the retry timer. Writer-owned (loop goroutine);
// callers invoke it right after setting the wedge. A pending timer is
// left alone — reanchor re-checks the wedge when it fires, so a retry
// scheduled before the wedge cleared (or before a re-wedge) stays
// harmless.
func (s *Server) scheduleReanchor() {
	if !s.heal.enabled || s.heal.retryCh != nil || !s.persist.wedged.Load() {
		return
	}
	if s.heal.backoff <= 0 {
		s.heal.backoff = s.heal.initial
	}
	s.heal.retryCh = s.heal.timer(s.heal.backoff)
	s.heal.nextMS.Store(s.heal.backoff.Milliseconds())
}

// reanchor is one self-healing attempt: the same window-empty barrier an
// explicit Checkpoint performs (drain, engine reseed, snapshot), minus
// the barrier WAL record a wedged log cannot carry. On failure the
// backoff doubles (capped) and the timer is re-armed; on success the
// wedge is gone and ingest resumes. Runs on the writer goroutine.
func (s *Server) reanchor() {
	s.heal.retryCh = nil
	s.heal.nextMS.Store(0)
	if !s.persist.wedged.Load() {
		// Something else (an explicit Checkpoint, a restream swap) already
		// re-anchored while the timer was pending.
		s.heal.backoff = 0
		return
	}
	// attempts is bumped LAST on every path: once a caller observes the
	// increment, the outcome (wedge cleared or next retry armed) is
	// already settled — the chaos harness synchronizes on exactly this.
	s.p.Finish()
	if err := s.rebuildEngine(); err != nil {
		// Unreachable with a validated config; leave the wedge for the
		// next retry rather than serving a half-reseeded engine.
		s.notePersistErr(err)
		s.backoffAndRetry()
		s.heal.attempts.Add(1)
		return
	}
	s.sweep()
	s.publish()
	if err := s.writeSnapshot(); err != nil {
		s.backoffAndRetry()
		s.heal.attempts.Add(1)
		return
	}
	s.heal.backoff = 0
	s.heal.healed.Add(1)
	s.heal.attempts.Add(1)
}

func (s *Server) backoffAndRetry() {
	s.heal.backoff = min(s.heal.backoff*2, s.heal.max)
	s.scheduleReanchor()
}
