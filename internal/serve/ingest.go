package serve

import (
	"errors"
	"fmt"
	"io"
	"runtime"

	"loom/internal/fault"
	"loom/internal/stream"
)

// The binary ingest front-stage.
//
// IngestFrames reads length-prefixed binary frames (internal/stream's
// binary codec) off a connection and fans the CPU-heavy work — CRC
// check, parse, label intern, intra-frame dedup, validation — out to a
// pool of decode workers, so the single-writer loop only scores and
// places. The determinism contract is preserved by construction: the
// caller's goroutine reads frames in order, hands each to a free worker,
// then re-joins the decoded batches in submission order before sending
// them to the mailbox. Batch order at the mailbox is therefore exactly
// frame order on the wire, no matter how the workers interleave.
//
// The durability contract is untouched: decoded batches travel as
// ordinary envelopes through the same admission gate, mailbox, writer
// validation and WAL-append-before-ack as the text path. The envelope
// additionally carries the raw frame payload so a fully-accepted batch
// is logged without re-encoding (see Server.process).
//
// A frame that fails to read or decode is poisoned: IngestFrames stops
// at it, returns a *BadFrameError (HTTP 400), and nothing from that
// frame — or any later frame — reaches the writer or the WAL.

// maxPendingFrames bounds how many decoded-and-sent envelopes may await
// writer replies before the sequencer stops reading new frames; it
// bounds frame-buffer memory, not throughput (the mailbox provides the
// real backpressure).
const maxPendingFrames = 32

// BadFrameError reports a malformed binary ingest frame. The stream is
// terminated at that frame; nothing from it reached the writer or the
// WAL. Frame is the zero-based index of the offending frame.
type BadFrameError struct {
	Frame int
	Err   error
}

func (e *BadFrameError) Error() string {
	return fmt.Sprintf("serve: bad frame %d: %v", e.Frame, e.Err)
}

func (e *BadFrameError) Unwrap() error { return e.Err }

// FrameIngest summarises one binary ingest stream.
type FrameIngest struct {
	// Frames and Elements count what was decoded and handed to the
	// writer; Deduped counts intra-frame duplicates dropped by the
	// decode stage before the writer ever saw them.
	Frames   int
	Elements int
	Deduped  int

	errs    []error
	dropped int
}

// Err joins the per-batch element errors (writer-side rejections,
// durability acknowledgement failures), capped like IngestSync's reply;
// nil when every element of every frame was accepted and acknowledged.
func (r *FrameIngest) Err() error {
	if len(r.errs) == 0 {
		return nil
	}
	errs := r.errs
	if r.dropped > 0 {
		errs = append(errs[:len(errs):len(errs)],
			fmt.Errorf("serve: %d further batch errors", r.dropped))
	}
	return errors.Join(errs...)
}

func (r *FrameIngest) note(err error) {
	if err == nil {
		return
	}
	if len(r.errs) < maxReportedErrors {
		r.errs = append(r.errs, err)
	} else {
		r.dropped++
	}
}

// frameJob is one frame moving through the decode stage. The done and
// reply channels are buffered(1) and live as long as the job: done
// carries the worker's completion, reply the writer's acknowledgement.
// The job (and its batch buffers) returns to the pool only after the
// last goroutine that may touch it — worker or writer — has signalled.
type frameJob struct {
	batch stream.Batch
	err   error
	done  chan struct{}
	reply chan error
}

// startDecodeStage builds the worker pool; called once, lazily, so
// servers that never see binary ingest pay nothing and failed Opens leak
// no goroutines.
func (s *Server) startDecodeStage() {
	n := s.cfg.DecodeWorkers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.decode.workers = n
	// One frame being read ahead per worker plus one in hand keeps every
	// worker busy without unbounded read-ahead.
	s.decode.inflight = n + 1
	s.decode.jobs = make(chan *frameJob, n)
	s.decode.pool.New = func() any {
		return &frameJob{
			done:  make(chan struct{}, 1),
			reply: make(chan error, 1),
		}
	}
	for i := 0; i < n; i++ {
		go s.decodeWorker()
	}
}

// decodeWorker decodes frames until the server quits. Each worker owns
// one FrameDecoder whose intern cache and dedup maps persist across
// frames, keeping the steady-state decode allocation-free.
func (s *Server) decodeWorker() {
	var d stream.FrameDecoder
	for {
		select {
		case job := <-s.decode.jobs:
			job.err = decodeJob(&d, job)
			job.done <- struct{}{}
		case <-s.quit:
			return
		}
	}
}

// decodeJob runs the failpoint-instrumented decode of one frame.
//
//loom:hotpath
func decodeJob(d *stream.FrameDecoder, job *frameJob) error {
	// ServeDecodeStall models a slow worker (latency-only injections
	// sleep inside Check); an erroring rule poisons the frame, same as
	// WireDecode below.
	if err := fault.Check(fault.ServeDecodeStall); err != nil {
		return err
	}
	// WireDecode poisons the frame before it is parsed: the typed error
	// path must refuse it without anything reaching the writer.
	if err := fault.Check(fault.WireDecode); err != nil {
		return err
	}
	return d.Decode(&job.batch)
}

// IngestFrames reads binary element frames from r until EOF, decoding
// them on the parallel decode stage and feeding the writer in frame
// order. It returns once every accepted frame has been processed and
// acknowledged by the writer (durability included, per the store's sync
// policy).
//
// The error is non-nil only for stream-terminating failures: a malformed
// frame (*BadFrameError), an admission refusal (*OverloadError), a wedged
// or stopped server. Per-element rejections inside otherwise-healthy
// frames do not terminate the stream; they are reported via
// FrameIngest.Err, mirroring IngestSync.
func (s *Server) IngestFrames(r io.Reader) (FrameIngest, error) {
	s.decode.start.Do(s.startDecodeStage)
	fr := stream.NewFrameReader(r)
	var res FrameIngest
	var fatal error

	// decoding: submitted to workers, awaiting done — in frame order.
	// pending: sent to the writer, awaiting reply — in frame order.
	var decoding, pending []*frameJob

	// settleOldest receives the writer's acknowledgement for the oldest
	// pending job and recycles it. Refusals of whole batches (wedge,
	// stop) terminate the stream; element-level errors accumulate.
	settleOldest := func() {
		job := pending[0]
		copy(pending, pending[1:])
		pending = pending[:len(pending)-1]
		err := <-job.reply
		if err != nil {
			if errors.Is(err, ErrWedged) || errors.Is(err, ErrStopped) {
				// The whole batch was refused, not applied; later frames
				// would meet the same refusal.
				if fatal == nil {
					fatal = err
				}
			} else {
				res.note(err)
			}
		}
		s.decode.pool.Put(job)
	}

	// sequence waits for the oldest decoding job and, if the stream is
	// still healthy, sends its batch to the writer.
	sequence := func() {
		job := decoding[0]
		copy(decoding, decoding[1:])
		decoding = decoding[:len(decoding)-1]
		select {
		case <-job.done:
		case <-s.quit:
			if fatal == nil {
				fatal = ErrStopped
			}
			// The worker may still write into the job; do not recycle.
			return
		}
		if fatal != nil {
			s.decode.pool.Put(job)
			return
		}
		if job.err != nil {
			fatal = &BadFrameError{Frame: res.Frames, Err: job.err}
			s.decode.pool.Put(job)
			return
		}
		env := envelope{
			elems:    job.batch.Elems,
			raw:      job.batch.Payload,
			rawExact: job.batch.Deduped == 0,
			reply:    job.reply,
		}
		if err := s.send(env); err != nil {
			fatal = err
			s.decode.pool.Put(job)
			return
		}
		res.Frames++
		res.Elements += len(job.batch.Elems)
		res.Deduped += job.batch.Deduped
		pending = append(pending, job)
		if len(pending) >= maxPendingFrames {
			settleOldest()
		}
	}

	for fatal == nil {
		job := s.decode.pool.Get().(*frameJob)
		err := fr.Next(&job.batch)
		if err == io.EOF {
			s.decode.pool.Put(job)
			break
		}
		if err != nil {
			s.decode.pool.Put(job)
			fatal = &BadFrameError{Frame: res.Frames + len(decoding), Err: err}
			break
		}
		select {
		case s.decode.jobs <- job:
			decoding = append(decoding, job)
		case <-s.quit:
			// Not submitted: nobody else touches the job.
			s.decode.pool.Put(job)
			fatal = ErrStopped
		}
		if fatal == nil && len(decoding) >= s.decode.inflight {
			sequence()
		}
	}
	// Join the tail: every submitted frame must be awaited (the worker
	// owns its buffers until done fires); healthy ones are still sent so
	// "accepted frame ⇒ processed" holds even at EOF.
	for len(decoding) > 0 {
		sequence()
	}
	for len(pending) > 0 {
		settleOldest()
	}
	return res, fatal
}
