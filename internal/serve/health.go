package serve

// Health is the liveness/readiness view of a Server, built for the two
// standard probes: a live server answers at all; a ready one should
// receive traffic. Reads (Where/Route/Stats) work in every state but
// "stopped" — wedged and re-anchoring only refuse ingest.
type Health struct {
	// Ready is the readiness verdict; Reasons lists what failed it.
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
	// State is "healthy", "re-anchoring" (wedged with self-healing
	// enabled), "wedged" (waiting for an operator Checkpoint), or
	// "stopped".
	State string `json:"state"`
	// MailboxDepth/MailboxCap expose ingest queue pressure; readiness
	// fails when the queue is above readyHighWater of capacity.
	MailboxDepth int `json:"mailbox_depth"`
	MailboxCap   int `json:"mailbox_cap"`
	// LastPersistErr is the sticky most-recent persistence failure.
	LastPersistErr string `json:"last_persist_err,omitempty"`
}

// readyHighWater is the mailbox fill fraction (in 1/4ths) above which
// readiness fails: 3 means "above three quarters full".
const readyHighWater = 3

// Health reports liveness and readiness. Safe for any goroutine.
func (s *Server) Health() Health {
	h := Health{
		State:        "healthy",
		MailboxDepth: len(s.mail),
		MailboxCap:   cap(s.mail),
	}
	stopped := false
	select {
	case <-s.quit:
		stopped = true
	default:
	}
	switch {
	case stopped:
		h.State = "stopped"
		h.Reasons = append(h.Reasons, "server stopped")
	case s.persist.wedged.Load():
		if s.heal.enabled {
			h.State = "re-anchoring"
		} else {
			h.State = "wedged"
		}
		h.Reasons = append(h.Reasons, "persistence wedged: ingest refused until a snapshot re-anchors the WAL")
	}
	if 4*h.MailboxDepth > readyHighWater*h.MailboxCap {
		h.Reasons = append(h.Reasons, "ingest queue above high-water mark")
	}
	if e := s.persist.lastErr.Load(); e != nil {
		h.LastPersistErr = *e
	}
	h.Ready = len(h.Reasons) == 0
	return h
}
