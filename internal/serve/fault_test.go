package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loom/internal/fault"
	"loom/internal/graph"
	"loom/internal/stream"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeTimer is an injected ReanchorPolicy.Timer: it records every armed
// delay and lets the test fire retries on demand.
type fakeTimer struct {
	mu  sync.Mutex
	ds  []time.Duration
	chs []chan time.Time
}

func (ft *fakeTimer) timer(d time.Duration) <-chan time.Time {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ch := make(chan time.Time, 1)
	ft.ds = append(ft.ds, d)
	ft.chs = append(ft.chs, ch)
	return ch
}

func (ft *fakeTimer) armed() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.chs)
}

func (ft *fakeTimer) fire(i int) {
	ft.mu.Lock()
	ch := ft.chs[i]
	ft.mu.Unlock()
	ch <- time.Time{}
}

func (ft *fakeTimer) delays() []time.Duration {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return append([]time.Duration(nil), ft.ds...)
}

// TestInjectedWedgeAndTypedErrors replaces the hand-forced wedge flag
// with the real failure: an injected WAL append error. The failing batch
// reports the I/O error (it was applied, not acknowledged durable);
// later batches and drains are refused with ErrWedged; reads keep
// working; Checkpoint repairs; recovery serves every applied element.
func TestInjectedWedgeAndTypedErrors(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 23)
	elems := elementsOf(t, g)
	dir := t.TempDir()
	s, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	half := len(elems) / 2
	feedBatches(t, elems[:half], 97, s)

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WALAppend, fault.ErrNoSpace))
	defer fault.Disable()
	err = s.IngestSync(elems[half : half+10])
	if !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("batch under injected append failure = %v, want ErrNoSpace", err)
	}
	if errors.Is(err, ErrWedged) {
		t.Fatal("the failing batch itself must report the I/O error, not a wedge refusal")
	}
	if err := s.IngestSync(elems[half+10 : half+20]); !errors.Is(err, ErrWedged) {
		t.Fatalf("batch after wedge = %v, want ErrWedged", err)
	}
	if err := s.Drain(); !errors.Is(err, ErrWedged) {
		t.Fatalf("drain after wedge = %v, want ErrWedged", err)
	}
	st := s.Stats()
	if st.Persist == nil || !st.Persist.Wedged || st.Persist.State != "wedged" {
		t.Fatalf("persist state = %+v, want wedged", st.Persist)
	}
	// Reads are served throughout: the published snapshot is intact.
	if st.Ingested == 0 || st.Vertices == 0 {
		t.Fatalf("stats stopped serving under the wedge: %+v", st)
	}

	if err := s.Checkpoint(); err != nil {
		t.Fatalf("repairing checkpoint: %v", err)
	}
	if got := s.Stats().Persist; got.Wedged || got.State != "healthy" {
		t.Fatalf("persist state after repair = %+v, want healthy", got)
	}
	// The wedge-refused batch was never applied (that is the point of the
	// refusal): the client retries it, then the rest of the stream.
	feedBatches(t, elems[half+10:], 97, s)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Abort()

	fault.Disable()
	re, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recover after wedge repair: %v", err)
	}
	defer re.Stop()
	// The failed batch and the refused batch (elems[half:half+20]) were
	// applied (first) and refused (second): the repair snapshot captured
	// the applied ones, so recovery must place every vertex except the
	// refused slice's new ones. Simplest robust check: everything the
	// crashed server served, the recovered one serves identically.
	for _, vtx := range g.Vertices() {
		wp, wok := s.Where(vtx)
		gp, gok := re.Where(vtx)
		if wp != gp || wok != gok {
			t.Fatalf("Where(%d) = %v,%v, want %v,%v", vtx, gp, gok, wp, wok)
		}
	}
}

// TestSelfHealingReanchor: with ReanchorPolicy enabled a wedged server
// repairs itself — wedged -> re-anchoring -> healthy — and resumes
// ingest without an operator Checkpoint. Reads work the whole time.
func TestSelfHealingReanchor(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 29)
	elems := elementsOf(t, g)
	ft := &fakeTimer{}
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	cfg.Reanchor = ReanchorPolicy{Enabled: true, Initial: time.Millisecond, Max: 8 * time.Millisecond, Timer: ft.timer}
	dir := t.TempDir()
	s, err := Open(cfg, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	half := len(elems) / 2
	feedBatches(t, elems[:half], 97, s)

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WALAppend, fault.ErrNoSpace))
	defer fault.Disable()
	if err := s.IngestSync(elems[half : half+10]); !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("batch under injected append failure = %v", err)
	}
	st := s.Stats()
	if st.Persist.State != "re-anchoring" {
		t.Fatalf("state = %q, want re-anchoring", st.Persist.State)
	}
	if st.Persist.NextRetryMS != 1 {
		t.Fatalf("NextRetryMS = %d, want 1", st.Persist.NextRetryMS)
	}
	if ft.armed() != 1 {
		t.Fatalf("retry timers armed = %d, want 1", ft.armed())
	}
	// Reads are served while wedged.
	if _, ok := s.Where(g.Vertices()[0]); !ok {
		t.Fatal("reads stopped while re-anchoring")
	}

	fault.Disable()
	ft.fire(0)
	waitUntil(t, "self-heal", func() bool { return !s.Stats().Persist.Wedged })
	st = s.Stats()
	if st.Persist.State != "healthy" || st.Persist.Reanchors != 1 || st.Persist.ReanchorAttempts != 1 {
		t.Fatalf("post-heal persist = %+v", st.Persist)
	}
	// Ingest resumed without operator action.
	feedBatches(t, elems[half+10:], 97, s)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestSelfHealingBackoffDoublesAndCaps: failed re-anchor attempts double
// the retry delay up to the cap, and the first success resets the cycle.
func TestSelfHealingBackoffDoublesAndCaps(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 31)
	elems := elementsOf(t, g)
	ft := &fakeTimer{}
	cfg := persistConfig(w, alphabet, g.NumVertices(), 2)
	cfg.Reanchor = ReanchorPolicy{Enabled: true, Initial: time.Millisecond, Max: 2 * time.Millisecond, Timer: ft.timer}
	s, err := Open(cfg, PersistOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	feedBatches(t, elems[:len(elems)/2], 97, s)

	// One append failure wedges; the next two re-anchor snapshots fail
	// too (ENOSPC persists for a while), the third lands.
	fault.Enable(fault.NewRegistry(1).
		FailOnce(fault.WALAppend, fault.ErrNoSpace).
		FailN(fault.SnapWrite, fault.ErrNoSpace, 2))
	defer fault.Disable()
	if err := s.IngestSync(elems[len(elems)/2 : len(elems)/2+10]); err == nil {
		t.Fatal("append failure not surfaced")
	}
	for i := 0; i < 3; i++ {
		waitUntil(t, "retry armed", func() bool { return ft.armed() == i+1 })
		ft.fire(i)
	}
	waitUntil(t, "self-heal", func() bool { return !s.Stats().Persist.Wedged })
	st := s.Stats()
	if st.Persist.ReanchorAttempts != 3 || st.Persist.Reanchors != 1 {
		t.Fatalf("attempts/healed = %d/%d, want 3/1", st.Persist.ReanchorAttempts, st.Persist.Reanchors)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond}
	got := ft.delays()
	if len(got) != len(want) {
		t.Fatalf("delays = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v (capped doubling)", i, got[i], want[i])
		}
	}
}

// TestSwapFailpointWedges: a restream swap whose durability anchor fails
// wedges the server (the swap itself stays adopted and served).
func TestSwapFailpointWedges(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 37)
	s, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	feedBatches(t, elementsOf(t, g), 97, s)

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.ServeSwap, fault.ErrNoSpace))
	defer fault.Disable()
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	st := s.Stats()
	if st.Restreams != 1 {
		t.Fatalf("restreams = %d, want the swap adopted", st.Restreams)
	}
	if st.Persist == nil || !st.Persist.Wedged {
		t.Fatal("failed swap anchor did not wedge")
	}
	fault.Disable()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Persist.Wedged {
		t.Fatal("wedge survived the repairing checkpoint")
	}
}

// TestBarrierFailpointRefusesCheckpoint: the barrier failpoint fails the
// checkpoint request before it drains or reseeds anything.
func TestBarrierFailpointRefusesCheckpoint(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 41)
	s, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	feedBatches(t, elementsOf(t, g), 97, s)
	before := s.Stats()

	fault.Enable(fault.NewRegistry(1).FailOnce(fault.ServeBarrier, nil))
	defer fault.Disable()
	if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under barrier fault = %v, want ErrInjected", err)
	}
	after := s.Stats()
	if after.PendingWindow != before.PendingWindow || after.Persist.Snapshots != before.Persist.Snapshots {
		t.Fatal("refused checkpoint still drained or wrote")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after fault drained: %v", err)
	}
}

// TestAcceptFailpointRefusesBeforeState: the accept failpoint refuses a
// batch on the caller's goroutine, before it touches any server state.
func TestAcceptFailpointRefusesBeforeState(t *testing.T) {
	s, err := New(persistConfig(nil, nil, 64, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	fault.Enable(fault.NewRegistry(1).FailOnce(fault.ServeAccept, nil))
	defer fault.Disable()
	batch := []stream.Element{{Kind: stream.VertexElement, V: 1, Label: "a"}}
	if err := s.IngestSync(batch); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("ingest under accept fault = %v, want ErrInjected", err)
	}
	if st := s.Stats(); st.Ingested != 0 || st.Rejected != 0 {
		t.Fatalf("refused batch leaked into counters: %+v", st)
	}
	if err := s.IngestSync(batch); err != nil {
		t.Fatalf("ingest after fault drained: %v", err)
	}
}

// TestAdmissionControl drives the token bucket on an injected clock:
// bursts within the bucket pass, excess is refused with a typed,
// errors.Is-able overload error carrying a retry delay, and refills
// re-admit.
func TestAdmissionControl(t *testing.T) {
	var clock atomic.Int64 // nanoseconds
	cfg := persistConfig(nil, nil, 64, 2)
	cfg.Admission = AdmissionConfig{
		Rate:  100, // elements/second
		Burst: 10,
		Now:   func() time.Duration { return time.Duration(clock.Load()) },
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	batch := make([]stream.Element, 10)
	for i := range batch {
		batch[i] = stream.Element{Kind: stream.VertexElement, V: graph.VertexID(i), Label: "a"}
	}
	if err := s.IngestSync(batch); err != nil {
		t.Fatalf("burst within bucket refused: %v", err)
	}
	one := []stream.Element{{Kind: stream.VertexElement, V: 100, Label: "a"}}
	err = s.IngestSync(one)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget ingest = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("overload error carries no retry delay: %v", err)
	}
	if st := s.Stats(); st.Admission == nil || st.Admission.Refused != 1 {
		t.Fatalf("admission stats = %+v, want 1 refused", st.Admission)
	}

	// Honour Retry-After on the injected clock: the element now fits.
	clock.Add(int64(oe.RetryAfter) + int64(time.Millisecond))
	if err := s.IngestSync(one); err != nil {
		t.Fatalf("ingest after refill refused: %v", err)
	}
}

// TestHealthEndToEnd covers the three health states reachable without a
// crash: healthy/ready, wedged/not-ready (reads still served), stopped.
func TestHealthEndToEnd(t *testing.T) {
	g, w, alphabet := testGraph(t, 300, 2, 43)
	s, err := Open(persistConfig(w, alphabet, g.NumVertices(), 2), PersistOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, elementsOf(t, g), 97, s)
	h := s.Health()
	if !h.Ready || h.State != "healthy" || h.MailboxCap == 0 {
		t.Fatalf("healthy server health = %+v", h)
	}

	// Force the wedge with a real injected append failure on a fresh
	// element.
	fault.Enable(fault.NewRegistry(1).FailOnce(fault.WALAppend, fault.ErrNoSpace))
	defer fault.Disable()
	_ = s.IngestSync([]stream.Element{{Kind: stream.VertexElement, V: 1 << 40, Label: "a"}})
	h = s.Health()
	if h.Ready || h.State != "wedged" {
		t.Fatalf("wedged server health = %+v", h)
	}
	if len(h.Reasons) == 0 || h.LastPersistErr == "" {
		t.Fatalf("wedged health carries no diagnosis: %+v", h)
	}
	// Reads still served.
	if _, ok := s.Where(g.Vertices()[0]); !ok {
		t.Fatal("reads stopped while wedged")
	}

	s.Stop()
	if h = s.Health(); h.Ready || h.State != "stopped" {
		t.Fatalf("stopped server health = %+v", h)
	}
}
