package serve

import (
	"sync"
	"sync/atomic"

	"loom/internal/graph"
	"loom/internal/partition"
)

// table is the placement lookup readers answer Where from. It is a
// single-writer publication structure: the writer stores placements
// atomically and any number of readers load slots lock-free. A slot
// transitions Unassigned -> p when a vertex is placed and p -> Unassigned
// (a tombstone) when it is deleted; both transitions are monotonic in
// stream order, so a reader holding an old table generation sees a
// consistent (if slightly stale) assignment in which removals, like
// placements, become visible as they happen. A restream swap replaces the
// whole table rather than re-pointing slots.
//
// Dense non-negative vertex IDs live in a flat []int32 indexed by ID (the
// common case: generators and streams emit 0..n-1). IDs outside the dense
// region — negative, or far beyond the live vertex count — fall back to a
// sync.Map shared by every growth generation of the table.
type table struct {
	// dense[v] is the placement of vertex v, or denseUnassigned. Slots are
	// written with atomic.StoreInt32 and read with atomic.LoadInt32.
	dense []int32
	// sparse maps out-of-range VertexIDs to partition.ID.
	sparse *sync.Map
	// hasSparse is set once the first sparse placement exists, so the hot
	// dense-miss path can skip the map probe entirely. Shared across growth
	// generations (same pointer).
	hasSparse *atomic.Bool
}

const denseUnassigned = int32(-1)

func newTable(capHint int) *table {
	t := &table{sparse: &sync.Map{}, hasSparse: &atomic.Bool{}}
	if capHint > 0 {
		t.dense = newDense(capHint)
	}
	return t
}

func newDense(n int) []int32 {
	d := make([]int32, n)
	for i := range d {
		d[i] = denseUnassigned
	}
	return d
}

// get returns v's placement. Safe for any goroutine.
func (t *table) get(v graph.VertexID) (partition.ID, bool) {
	if v >= 0 && int64(v) < int64(len(t.dense)) {
		if p := atomic.LoadInt32(&t.dense[v]); p != denseUnassigned {
			return partition.ID(p), true
		}
	}
	if t.hasSparse.Load() {
		if p, ok := t.sparse.Load(v); ok {
			return p.(partition.ID), true
		}
	}
	return partition.Unassigned, false
}

// denseEligible reports whether v should live in the dense region given the
// current vertex population: the region is allowed to overshoot the
// population by a constant factor so mostly-dense streams never touch the
// map, while a stray huge ID cannot balloon memory.
func denseEligible(v graph.VertexID, population int) bool {
	return v >= 0 && int64(v) < 8*(int64(population)+1024)
}

// grownDense returns the new dense length needed to cover index v.
func grownDense(cur int, v graph.VertexID) int {
	need := int(v) + 1
	n := cur
	if n < 1024 {
		n = 1024
	}
	for n < need {
		n *= 2
	}
	return n
}

// Snapshot is one published epoch of the serving state: the placement
// table plus the statistics frozen at publication time. Snapshots are
// immutable except for the table's write-once slots (placements made after
// publication become visible to readers of this snapshot, monotonically).
type Snapshot struct {
	tab   *table
	stats Stats
}

// Stats is the reader-visible state of a Server, frozen per published
// epoch. CutEdges/ObservedEdges count only edges whose endpoints are both
// assigned — the incremental drift estimate the restream trigger watches.
type Stats struct {
	Epoch    uint64 `json:"epoch"`
	K        int    `json:"k"`
	Ingested int64  `json:"ingested"` // elements accepted
	Rejected int64  `json:"rejected"` // elements rejected with an error
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Assigned int    `json:"assigned"`
	// PendingWindow counts ingested vertices not yet assigned (resident in
	// the LOOM window or awaiting the next sweep).
	PendingWindow int     `json:"pending_window"`
	ObservedEdges int     `json:"observed_edges"`
	CutEdges      int     `json:"cut_edges"`
	CutFraction   float64 `json:"cut_fraction"`
	// WindowCutFraction is the cut fraction over the last completed drift
	// window (DriftConfig.WindowEdges observed edges); meaningful only
	// while WindowCutValid is true — windowing configured and at least
	// one window completed since the last restream swap.
	WindowCutFraction float64 `json:"window_cut_fraction"`
	WindowCutValid    bool    `json:"window_cut_valid"`
	Imbalance         float64 `json:"imbalance"`
	Sizes             []int   `json:"sizes"`
	Restreams         int     `json:"restreams"`
	RestreamLive      bool    `json:"restream_live"`
	// LastRestream reports the most recent completed (or failed) restream;
	// nil before the first one. The pointed-to report is immutable.
	LastRestream *RestreamReport `json:"last_restream,omitempty"`
	// MailboxDepth is the number of batches queued behind the writer at the
	// moment Stats was called (live, not frozen at publication);
	// MailboxCap is the queue capacity.
	MailboxDepth int `json:"mailbox_depth"`
	MailboxCap   int `json:"mailbox_cap"`
	// Admission reports the ingest token bucket; nil when admission
	// control is off. Counters are live, not frozen at publication.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Persist reports the durability layer; nil on a server built without
	// a data directory. Counters are live (read at the Stats call), not
	// frozen at publication.
	Persist *PersistStats `json:"persist,omitempty"`
}

// Move records one vertex whose shard changed when a restreamed assignment
// was swapped in.
type Move struct {
	V    graph.VertexID `json:"v"`
	From partition.ID   `json:"from"`
	To   partition.ID   `json:"to"`
}

// RestreamReport describes one background restream: what triggered it, the
// per-pass statistics, and the migration plan the swap implies.
type RestreamReport struct {
	// Trigger is "cut", "imbalance", "manual", or "workload" (the query
	// engine's message-rate trigger).
	Trigger string `json:"trigger"`
	// Err is non-empty when the restream failed (the old assignment stays).
	Err string `json:"err,omitempty"`
	// WorkloadSource is "static" (Config.Workload) or "observed" (a live
	// source installed by SetWorkloadSource) — the workload the loom
	// heuristic scored against. Empty for ldg/fennel.
	WorkloadSource string `json:"workload_source,omitempty"`
	// BudgetRejected is true when the restream finished but its migration
	// plan exceeded Drift.MaxMigrationFraction and the swap was refused;
	// Err then carries the detail and the old assignment keeps serving.
	BudgetRejected bool `json:"budget_rejected,omitempty"`
	// ExpectedVertices is the capacity constraint after the swap's
	// adaptive re-plan (successful swaps only).
	ExpectedVertices int `json:"expected_vertices,omitempty"`
	// Passes holds the per-pass cut/balance/migration statistics.
	Passes []partition.PassStats `json:"passes,omitempty"`
	// Vertices is the size of the graph snapshot that was restreamed.
	Vertices int `json:"vertices"`
	// Migrated counts vertices whose published placement changed at the
	// swap (len(Moves) — vertices first assigned at the swap barrier cost
	// no data movement and are excluded); MigrationFraction is Migrated
	// over the post-swap assigned count.
	Migrated          int     `json:"migrated"`
	MigrationFraction float64 `json:"migration_fraction"`
	// Moves is the vertex -> old/new shard diff, ascending by vertex. Only
	// vertices that were assigned before the swap appear.
	Moves []Move `json:"-"`
	// DurationMS is the wall-clock time of the background pass (clone to
	// adoption).
	DurationMS int64 `json:"duration_ms"`
}
