package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the base error of every admission refusal: the server
// is shedding ingest load. errors.Is(err, ErrOverloaded) matches; the
// concrete *OverloadError carries the suggested retry delay.
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError is an admission refusal. It wraps ErrOverloaded and
// carries how long the caller should wait before retrying (the time the
// token bucket needs to refill for the refused batch).
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded: retry after %v", e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionConfig rate-limits ingest ahead of the mailbox. The mailbox
// already provides backpressure by blocking; admission control instead
// refuses work outright with a typed, retryable error, which is what an
// HTTP front end needs to shed load (429 + Retry-After) instead of
// holding connections open.
type AdmissionConfig struct {
	// Rate is the sustained budget in stream elements per second. Zero
	// disables admission control entirely.
	Rate float64
	// Burst is the bucket depth in elements — how far above the sustained
	// rate a quiet server lets a spike run. Zero defaults to max(Rate, 1).
	Burst float64
	// Now is the monotonic clock the bucket refills from, as an offset
	// from an arbitrary epoch. Nil defaults to the process clock; tests
	// and the chaos harness inject a fake.
	Now func() time.Duration
}

// AdmissionStats is the admission-control section of Stats.
type AdmissionStats struct {
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
	// Refused counts elements turned away with ErrOverloaded.
	Refused int64 `json:"refused"`
}

// tokenBucket is a standard leaky bucket over a caller-supplied monotonic
// clock. It has its own mutex (not the writer loop's) because admission
// runs on the caller's goroutine in send, before the mailbox.
type tokenBucket struct {
	mu      sync.Mutex
	rate    float64 // elements per second
	burst   float64 // bucket depth
	tokens  float64
	last    time.Duration
	now     func() time.Duration
	refused atomic.Int64
}

func newTokenBucket(cfg AdmissionConfig) *tokenBucket {
	b := &tokenBucket{rate: cfg.Rate, burst: cfg.Burst, now: cfg.Now}
	if b.burst <= 0 {
		b.burst = max(cfg.Rate, 1)
	}
	if b.now == nil {
		b.now = defaultAdmissionNow
	}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// admit takes n tokens. When the bucket cannot cover the batch it takes
// nothing and returns the refill time for the missing tokens.
func (b *tokenBucket) admit(n int) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	if dt := t - b.last; dt > 0 {
		b.tokens = min(b.burst, b.tokens+b.rate*dt.Seconds())
	}
	b.last = t
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return 0, true
	}
	missing := float64(n) - b.tokens
	return time.Duration(missing / b.rate * float64(time.Second)), false
}

// defaultAdmissionNow is the process monotonic clock, as an offset from
// the first call. The one-time anchor keeps the clock read inside this
// (lint-allowlisted) function rather than a package-level initializer.
var (
	admissionOnce  sync.Once
	admissionEpoch time.Time
)

func defaultAdmissionNow() time.Duration {
	admissionOnce.Do(func() { admissionEpoch = time.Now() })
	return time.Since(admissionEpoch)
}
