package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func uniform(seed int64, k int) *UniformLabeler {
	return &UniformLabeler{Alphabet: DefaultAlphabet(k), Rand: rand.New(rand.NewSource(seed))}
}

func TestDefaultAlphabet(t *testing.T) {
	a := DefaultAlphabet(3)
	if len(a) != 3 || a[0] != "a" || a[2] != "c" {
		t.Fatalf("alphabet = %v", a)
	}
	for _, bad := range []int{0, 27, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DefaultAlphabet(%d) should panic", bad)
				}
			}()
			DefaultAlphabet(bad)
		}()
	}
}

func TestErdosRenyiShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(50, 100, uniform(2, 3), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 || g.NumEdges() != 100 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := ErdosRenyi(4, 100, uniform(2, 3), r); err == nil {
		t.Fatal("overfull ER should error")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n, mPer := 300, 3
	g, err := BarabasiAlbert(n, mPer, uniform(4, 3), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), n)
	}
	// Seed clique (m+1 choose 2) + m edges per later vertex.
	seed := mPer + 1
	wantEdges := seed*(seed-1)/2 + (n-seed)*mPer
	if g.NumEdges() != wantEdges {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), wantEdges)
	}
	if _, err := BarabasiAlbert(5, 5, uniform(4, 3), r); err == nil {
		t.Fatal("mPer >= n should error")
	}
	if _, err := BarabasiAlbert(5, 0, uniform(4, 3), r); err == nil {
		t.Fatal("mPer < 1 should error")
	}
}

func TestBarabasiAlbertSkewedDegrees(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, err := BarabasiAlbert(2000, 2, uniform(8, 3), r)
	if err != nil {
		t.Fatal(err)
	}
	// Power-law-ish: max degree far above mean degree.
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("BA should be skewed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g, err := WattsStrogatz(100, 4, 0.1, uniform(6, 3), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// ~n*k/2 edges (rewiring may drop a few on collisions).
	if g.NumEdges() < 180 || g.NumEdges() > 200 {
		t.Fatalf("|E| = %d, want ~200", g.NumEdges())
	}
	for _, bad := range []struct {
		n, k int
		beta float64
	}{
		{10, 3, 0.1}, {10, 0, 0.1}, {4, 4, 0.1}, {10, 2, -0.1}, {10, 2, 1.5},
	} {
		if _, err := WattsStrogatz(bad.n, bad.k, bad.beta, uniform(1, 2), r); err == nil {
			t.Errorf("WattsStrogatz(%v) should error", bad)
		}
	}
}

func TestRMAT(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g, err := RMAT(8, 4, 0.57, 0.19, 0.19, 0.05, uniform(7, 3), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Fatalf("|V| = %d, want 256", g.NumVertices())
	}
	if g.NumEdges() != 1024 {
		t.Fatalf("|E| = %d, want 1024", g.NumEdges())
	}
	if _, err := RMAT(0, 4, 0.57, 0.19, 0.19, 0.05, uniform(7, 3), r); err == nil {
		t.Fatal("scale 0 should error")
	}
	if _, err := RMAT(4, 2, 0.5, 0.5, 0.5, 0.5, uniform(7, 3), r); err == nil {
		t.Fatal("bad quadrant sum should error")
	}
	if _, err := RMAT(2, 10, 0.57, 0.19, 0.19, 0.05, uniform(7, 3), r); err == nil {
		t.Fatal("overfull RMAT should error")
	}
}

func TestPlantedPartition(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g, err := PlantedPartition(120, 3, 0.3, 0.01, uniform(8, 2), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 120 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// Count intra- vs inter-community edges: intra should dominate.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if Community(e.U, 3) == Community(e.V, 3) {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter {
		t.Fatalf("intra=%d should dominate inter=%d", intra, inter)
	}
	if _, err := PlantedPartition(5, 9, 0.5, 0.1, uniform(8, 2), r); err == nil {
		t.Fatal("k > n should error")
	}
	if _, err := PlantedPartition(10, 2, 1.5, 0.1, uniform(8, 2), r); err == nil {
		t.Fatal("bad probability should error")
	}
}

func TestPlantedPartitionDegrees(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	n, k := 2000, 8
	g, err := PlantedPartitionDegrees(n, k, 12, 3, uniform(5, 2), r)
	if err != nil {
		t.Fatal(err)
	}
	// Expected degree ~15; allow generous slack for sampling noise.
	if avg := g.AvgDegree(); avg < 12 || avg > 18 {
		t.Fatalf("avg degree = %.1f, want ~15", avg)
	}
	// Intra:inter edge ratio should approximate dIn:dOut = 4:1.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if Community(e.U, k) == Community(e.V, k) {
			intra++
		} else {
			inter++
		}
	}
	ratio := float64(intra) / float64(inter)
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("intra/inter = %.2f, want ~4", ratio)
	}
	if _, err := PlantedPartitionDegrees(10, 9, 5, 1, uniform(5, 2), r); err == nil {
		t.Fatal("n < 2k should error")
	}
	// Degree targets above what the community can hold clamp to p=1.
	if _, err := PlantedPartitionDegrees(20, 10, 50, 50, uniform(5, 2), r); err != nil {
		t.Fatalf("clamped degrees should still generate: %v", err)
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, uniform(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("|E| = %d, want 17", g.NumEdges())
	}
	if _, err := Grid(0, 4, uniform(10, 2)); err == nil {
		t.Fatal("zero dims should error")
	}
}

func TestZipfLabelerSkew(t *testing.T) {
	alpha := DefaultAlphabet(4)
	z := NewZipfLabeler(alpha, 1.5, rand.New(rand.NewSource(11)))
	counts := map[graph.Label]int{}
	for i := 0; i < 4000; i++ {
		counts[z.LabelFor(0, 0)]++
	}
	if counts["a"] <= counts["d"] {
		t.Fatalf("zipf should favour early labels: %v", counts)
	}
	if counts["a"]+counts["b"]+counts["c"]+counts["d"] != 4000 {
		t.Fatalf("labels outside alphabet: %v", counts)
	}
}

func TestZipfLabelerZeroSkewIsUniform(t *testing.T) {
	alpha := DefaultAlphabet(3)
	z := NewZipfLabeler(alpha, 0, rand.New(rand.NewSource(12)))
	counts := map[graph.Label]int{}
	for i := 0; i < 3000; i++ {
		counts[z.LabelFor(0, 0)]++
	}
	for _, l := range alpha {
		if math.Abs(float64(counts[l])-1000) > 150 {
			t.Fatalf("s=0 should be uniform: %v", counts)
		}
	}
}

func TestRoundRobinLabeler(t *testing.T) {
	rr := &RoundRobinLabeler{Alphabet: DefaultAlphabet(3)}
	got := []graph.Label{rr.LabelFor(0, 0), rr.LabelFor(1, 0), rr.LabelFor(2, 0), rr.LabelFor(3, 0)}
	want := []graph.Label{"a", "b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin = %v, want %v", got, want)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1, err := BarabasiAlbert(100, 2, uniform(42, 3), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(100, 2, uniform(42, 3), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("same seed must reproduce the same graph")
	}
}

func TestPropertyGeneratorsSimpleGraphs(t *testing.T) {
	// No generator may produce self-loops or disconnected label tables;
	// handshake invariant must hold.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gs := make([]*graph.Graph, 0, 4)
		if g, err := ErdosRenyi(30, 60, uniform(seed, 3), r); err == nil {
			gs = append(gs, g)
		} else {
			return false
		}
		if g, err := BarabasiAlbert(30, 2, uniform(seed, 3), r); err == nil {
			gs = append(gs, g)
		} else {
			return false
		}
		if g, err := WattsStrogatz(30, 4, 0.2, uniform(seed, 3), r); err == nil {
			gs = append(gs, g)
		} else {
			return false
		}
		if g, err := PlantedPartition(30, 3, 0.4, 0.05, uniform(seed, 3), r); err == nil {
			gs = append(gs, g)
		} else {
			return false
		}
		for _, g := range gs {
			sum := 0
			for _, v := range g.Vertices() {
				if g.HasEdge(v, v) {
					return false
				}
				if _, ok := g.Label(v); !ok {
					return false
				}
				sum += g.Degree(v)
			}
			if sum != 2*g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
