// Package gen synthesises labelled graphs for experiments.
//
// The paper motivates LOOM with web, social and protein-interaction graphs
// but (being a workshop paper) evaluates nothing; the partitioning
// literature it builds on (Stanton & Kliot; Tsourakakis et al.) measures on
// skewed-degree graphs. This package provides the standard generator family
// for that regime — Erdős–Rényi, Barabási–Albert, Watts–Strogatz, R-MAT and
// planted-partition — plus label assigners so that pattern-matching
// workloads have meaningful selectivity.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"loom/internal/graph"
)

// Labeler assigns a label to a vertex as it is created. Implementations
// must be deterministic functions of their own captured RNG state.
type Labeler interface {
	// LabelFor returns the label for vertex v, which has current degree deg
	// at assignment time (degree is meaningful only for generators that
	// label after wiring; others pass 0).
	LabelFor(v graph.VertexID, deg int) graph.Label
}

// UniformLabeler draws labels uniformly from Alphabet.
type UniformLabeler struct {
	Alphabet []graph.Label
	Rand     *rand.Rand
}

// LabelFor implements Labeler.
func (u *UniformLabeler) LabelFor(graph.VertexID, int) graph.Label {
	return u.Alphabet[u.Rand.Intn(len(u.Alphabet))]
}

// ZipfLabeler draws labels from Alphabet with Zipfian frequencies: label i
// has weight proportional to 1/(i+1)^S. Skewed label frequencies are the
// common case in property graphs (a few hot types dominate).
type ZipfLabeler struct {
	Alphabet []graph.Label
	S        float64
	Rand     *rand.Rand
	cum      []float64
}

// NewZipfLabeler returns a ZipfLabeler with precomputed cumulative weights.
func NewZipfLabeler(alphabet []graph.Label, s float64, r *rand.Rand) *ZipfLabeler {
	z := &ZipfLabeler{Alphabet: alphabet, S: s, Rand: r}
	total := 0.0
	z.cum = make([]float64, len(alphabet))
	for i := range alphabet {
		total += 1.0 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// LabelFor implements Labeler.
func (z *ZipfLabeler) LabelFor(graph.VertexID, int) graph.Label {
	x := z.Rand.Float64()
	for i, c := range z.cum {
		if x <= c {
			return z.Alphabet[i]
		}
	}
	return z.Alphabet[len(z.Alphabet)-1]
}

// RoundRobinLabeler cycles deterministically through Alphabet; useful in
// tests that need exact label counts.
type RoundRobinLabeler struct {
	Alphabet []graph.Label
	next     int
}

// LabelFor implements Labeler.
func (rr *RoundRobinLabeler) LabelFor(graph.VertexID, int) graph.Label {
	l := rr.Alphabet[rr.next%len(rr.Alphabet)]
	rr.next++
	return l
}

// DefaultAlphabet returns the first k single-letter labels a, b, c, ...
// (k <= 26).
func DefaultAlphabet(k int) []graph.Label {
	if k < 1 || k > 26 {
		panic(fmt.Sprintf("gen: alphabet size %d out of range [1,26]", k))
	}
	out := make([]graph.Label, k)
	for i := 0; i < k; i++ {
		out[i] = graph.Label(string(rune('a' + i)))
	}
	return out
}

// ErdosRenyi returns G(n, m): n vertices and m distinct uniform random
// edges. It errors if m exceeds the number of possible edges.
func ErdosRenyi(n, m int, lab Labeler, r *rand.Rand) (*graph.Graph, error) {
	maxM := n * (n - 1) / 2
	if m > maxM {
		return nil, fmt.Errorf("gen: ErdosRenyi: m=%d exceeds max %d for n=%d", m, maxM, n)
	}
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(i)
		g.AddVertex(v, lab.LabelFor(v, 0))
	}
	for g.NumEdges() < m {
		u := graph.VertexID(r.Intn(n))
		v := graph.VertexID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// BarabasiAlbert returns a preferential-attachment graph: n vertices, each
// new vertex attaching to mPer existing vertices chosen proportionally to
// degree. The resulting degree distribution is the power law typical of
// social and web graphs. mPer must satisfy 1 <= mPer < n.
func BarabasiAlbert(n, mPer int, lab Labeler, r *rand.Rand) (*graph.Graph, error) {
	if mPer < 1 || mPer >= n {
		return nil, fmt.Errorf("gen: BarabasiAlbert: need 1 <= mPer < n, got mPer=%d n=%d", mPer, n)
	}
	g := graph.NewWithCapacity(n)
	// Seed clique of mPer+1 vertices so early targets exist.
	seed := mPer + 1
	for i := 0; i < seed; i++ {
		v := graph.VertexID(i)
		g.AddVertex(v, lab.LabelFor(v, 0))
	}
	// targets is the repeated-endpoint list used for preferential choice:
	// each vertex appears once per incident edge, so sampling uniformly
	// from it samples proportionally to degree.
	var targets []graph.VertexID
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
				return nil, err
			}
			targets = append(targets, graph.VertexID(i), graph.VertexID(j))
		}
	}
	for i := seed; i < n; i++ {
		v := graph.VertexID(i)
		g.AddVertex(v, lab.LabelFor(v, 0))
		chosen := make(map[graph.VertexID]struct{}, mPer)
		for len(chosen) < mPer {
			t := targets[r.Intn(len(targets))]
			if t == v {
				continue
			}
			chosen[t] = struct{}{}
		}
		// Iterate deterministically so the same seed reproduces the same
		// graph (map order would perturb later preferential choices).
		picks := make([]graph.VertexID, 0, mPer)
		for t := range chosen {
			picks = append(picks, t)
		}
		sort.Slice(picks, func(i, j int) bool { return picks[i] < picks[j] })
		for _, t := range picks {
			if err := g.AddEdge(v, t); err != nil {
				return nil, err
			}
			targets = append(targets, v, t)
		}
	}
	return g, nil
}

// WattsStrogatz returns a small-world graph: n vertices on a ring, each
// joined to its k nearest neighbours (k even), with each edge rewired to a
// uniform random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, lab Labeler, r *rand.Rand) (*graph.Graph, error) {
	if k%2 != 0 || k < 2 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz: need even 2 <= k < n, got k=%d n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz: beta=%v out of [0,1]", beta)
	}
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(i)
		g.AddVertex(v, lab.LabelFor(v, 0))
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			u := graph.VertexID(i)
			v := graph.VertexID((i + j) % n)
			if r.Float64() < beta {
				// Rewire: keep u, choose a fresh endpoint.
				for tries := 0; tries < 32; tries++ {
					w := graph.VertexID(r.Intn(n))
					if w != u && !g.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RMAT returns an R-MAT graph with 2^scale vertices and edgeFactor*2^scale
// edges, using the (a,b,c,d) quadrant probabilities. Duplicate and self-loop
// samples are retried, so the edge count is exact. The standard Graph500
// parameters are a=0.57, b=0.19, c=0.19, d=0.05.
func RMAT(scale, edgeFactor int, a, b, c, d float64, lab Labeler, r *rand.Rand) (*graph.Graph, error) {
	if scale < 1 || scale > 24 {
		return nil, fmt.Errorf("gen: RMAT: scale=%d out of [1,24]", scale)
	}
	if sum := a + b + c + d; sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("gen: RMAT: quadrant probabilities sum to %v, want 1", sum)
	}
	n := 1 << scale
	m := edgeFactor * n
	if m > n*(n-1)/2 {
		return nil, fmt.Errorf("gen: RMAT: edgeFactor %d too large for scale %d", edgeFactor, scale)
	}
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(i)
		g.AddVertex(v, lab.LabelFor(v, 0))
	}
	for g.NumEdges() < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := r.Float64()
			switch {
			case x < a:
				// top-left: neither bit set
			case x < a+b:
				v |= 1 << bit
			case x < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v || g.HasEdge(graph.VertexID(u), graph.VertexID(v)) {
			continue
		}
		if err := g.AddEdge(graph.VertexID(u), graph.VertexID(v)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// PlantedPartition returns a graph with k ground-truth communities of
// size n/k. Vertex pairs inside a community are joined with probability
// pIn; pairs across communities with probability pOut. With pIn >> pOut the
// optimal k-way cut is the community structure, making partitioner quality
// interpretable.
func PlantedPartition(n, k int, pIn, pOut float64, lab Labeler, r *rand.Rand) (*graph.Graph, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("gen: PlantedPartition: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("gen: PlantedPartition: probabilities out of range")
	}
	g := graph.NewWithCapacity(n)
	comm := make([]int, n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(i)
		g.AddVertex(v, lab.LabelFor(v, 0))
		comm[i] = i % k
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if comm[i] == comm[j] {
				p = pIn
			}
			if r.Float64() < p {
				if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Community returns the planted community of vertex v under the PlantedPartition
// layout (vertices are assigned round-robin).
func Community(v graph.VertexID, k int) int { return int(v) % k }

// PlantedPartitionDegrees is PlantedPartition parameterised by expected
// degrees instead of raw probabilities: each vertex gets ~dIn edges inside
// its community and ~dOut edges to other communities, independent of n and
// k. This keeps the planted structure's strength constant across sweep
// points (raw probabilities dilute as k grows: the inter-community pair
// count scales with n while the intra count scales with n/k).
func PlantedPartitionDegrees(n, k int, dIn, dOut float64, lab Labeler, r *rand.Rand) (*graph.Graph, error) {
	if k < 1 || n < 2*k {
		return nil, fmt.Errorf("gen: PlantedPartitionDegrees: need 1 <= k <= n/2, got k=%d n=%d", k, n)
	}
	commSize := float64(n) / float64(k)
	pIn := dIn / (commSize - 1)
	pOut := 0.0
	if n > int(commSize) {
		pOut = dOut / (float64(n) - commSize)
	}
	if pIn > 1 {
		pIn = 1
	}
	if pOut > 1 {
		pOut = 1
	}
	return PlantedPartition(n, k, pIn, pOut, lab, r)
}

// Grid returns an rows x cols grid graph; useful as a low-degree,
// high-diameter stress case for streaming heuristics.
func Grid(rows, cols int, lab Labeler) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: Grid: need positive dims, got %dx%d", rows, cols)
	}
	g := graph.NewWithCapacity(rows * cols)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			g.AddVertex(v, lab.LabelFor(v, 0))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
