package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"loom/internal/graph"
	"loom/internal/wire"
)

// Binary graph-stream wire codec.
//
// A binary element frame is one wire frame (u32 LE payload length |
// u32 LE CRC32(payload) | payload — see internal/wire) whose payload is
//
//	u8 version (1 or 2)
//	uvarint labelCount
//	labelCount × (uvarint byteLen | label bytes)   // batch-scoped dictionary
//	uvarint elemCount
//	elemCount × element
//
// and each element is
//
//	u8 kind 0 (vertex):        varint id      | uvarint dictionary index
//	u8 kind 1 (edge):          varint u       | varint v
//	u8 kind 2 (remove vertex): varint id                      // version ≥ 2
//	u8 kind 3 (remove edge):   varint u       | varint v      // version ≥ 2
//
// (varint = zigzag-encoded signed LEB128, uvarint = unsigned LEB128.)
//
// Version 2 adds the removal kinds; the encoder stamps a frame version 2
// only when the batch actually carries a removal, so insert-only streams
// stay readable by version-1 decoders. A removal kind inside a version-1
// payload is ErrFrameKind.
//
// The dictionary is strictly batch-scoped: a frame carries every label it
// references, so frames are decodable in isolation, connections can be
// split or re-ordered at frame granularity, and the decoder keeps no
// cross-frame state a lost connection could corrupt. The decoder rejects
// unknown versions and kinds, out-of-range dictionary indexes, labels the
// text codecs cannot replay (wire.SafeLabel), self-loop edges, and
// trailing bytes; intra-frame duplicate vertices and edges are dropped
// (counted in Batch.Deduped) so the single-writer loop only ever sees
// pre-deduplicated work. Duplicates are tracked per identity as "last
// operation wins once": an add followed by a removal of the same vertex
// (or edge), or vice versa, is NOT a duplicate — only the same operation
// repeated back-to-back within a frame is dropped — so a churny frame can
// legally carry add → remove → re-add of one identity in order.

// BinaryVersion is the base frame payload format version (insert-only
// element kinds).
const BinaryVersion = 1

// BinaryVersionRemovals is the frame payload version that adds the
// remove-vertex / remove-edge element kinds.
const BinaryVersionRemovals = 2

// BinaryContentType is the MIME type loom-serve routes to the binary
// codec on POST /ingest.
const BinaryContentType = "application/x-loom-frame"

const (
	frameKindVertex       = 0
	frameKindEdge         = 1
	frameKindRemoveVertex = 2
	frameKindRemoveEdge   = 3
)

// Typed decode errors: a frame failing any of these is poisoned — the
// serve layer refuses it wholesale (HTTP 400) without touching the
// writer or the WAL. Package variables so the hot decode path does not
// allocate error values.
var (
	ErrFrameCRC       = errors.New("stream: frame CRC mismatch")
	ErrFrameVersion   = errors.New("stream: unsupported frame version")
	ErrFrameTruncated = errors.New("stream: frame payload truncated")
	ErrFrameKind      = errors.New("stream: unknown element kind in frame")
	ErrFrameLabel     = errors.New("stream: frame label is not codec-safe")
	ErrFrameDictIndex = errors.New("stream: frame label index out of range")
	ErrFrameSelfLoop  = errors.New("stream: frame edge is a self-loop")
	ErrFrameTrailing  = errors.New("stream: trailing bytes after frame elements")
	ErrFrameDuplicate = errors.New("stream: frame carries intra-frame duplicates")
)

// Batch is one binary frame in flight through the decode stage. Payload
// holds the raw frame payload exactly as received (the shape the WAL can
// append as a record body without re-encoding); Elems is the decoded,
// validated, intra-frame-deduplicated element list. Buffers are reused
// across Reset cycles.
type Batch struct {
	Payload []byte
	CRC     uint32 // from the frame header; checked by FrameDecoder.Decode
	Elems   []Element
	Deduped int // intra-frame duplicate vertices/edges dropped by decode
}

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() {
	b.Payload = b.Payload[:0]
	b.Elems = b.Elems[:0]
	b.Deduped = 0
	b.CRC = 0
}

// FrameEncoder renders element batches as binary frames. The zero value
// is ready; scratch buffers are reused across calls. Not safe for
// concurrent use.
type FrameEncoder struct {
	index   map[graph.Label]uint64
	labels  []graph.Label
	payload []byte
}

// AppendFrame encodes elems as one complete frame (header + payload)
// appended to dst, returning the extended slice.
func (e *FrameEncoder) AppendFrame(dst []byte, elems []Element) ([]byte, error) {
	p, err := e.AppendPayload(e.payload[:0], elems)
	if err != nil {
		return dst, err
	}
	e.payload = p
	return wire.AppendFrame(dst, p), nil
}

// AppendPayload encodes elems as a bare frame payload (no header)
// appended to dst — the exact bytes a WAL binary-batch record carries as
// its body.
func (e *FrameEncoder) AppendPayload(dst []byte, elems []Element) ([]byte, error) {
	if e.index == nil {
		e.index = make(map[graph.Label]uint64)
	} else {
		clear(e.index)
	}
	e.labels = e.labels[:0]
	hasRemovals := false
	for i := range elems {
		el := &elems[i]
		switch el.Kind {
		case VertexElement:
			if !wire.SafeLabel(string(el.Label)) {
				return nil, fmt.Errorf("stream: vertex %d label %q is not codec-safe", el.V, el.Label)
			}
			if _, ok := e.index[el.Label]; !ok {
				e.index[el.Label] = uint64(len(e.labels))
				e.labels = append(e.labels, el.Label)
			}
		case EdgeElement, RemoveEdgeElement:
			if el.V == el.U {
				return nil, fmt.Errorf("stream: edge (%d,%d) is a self-loop", el.V, el.U)
			}
			if el.Kind == RemoveEdgeElement {
				hasRemovals = true
			}
		case RemoveVertexElement:
			hasRemovals = true
		default:
			return nil, fmt.Errorf("stream: unknown element kind %d", el.Kind)
		}
	}
	if hasRemovals {
		dst = append(dst, BinaryVersionRemovals)
	} else {
		dst = append(dst, BinaryVersion)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.labels)))
	for _, l := range e.labels {
		dst = binary.AppendUvarint(dst, uint64(len(l)))
		dst = append(dst, l...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(elems)))
	for i := range elems {
		el := &elems[i]
		switch el.Kind {
		case VertexElement:
			dst = append(dst, frameKindVertex)
			dst = binary.AppendVarint(dst, int64(el.V))
			dst = binary.AppendUvarint(dst, e.index[el.Label])
		case RemoveVertexElement:
			dst = append(dst, frameKindRemoveVertex)
			dst = binary.AppendVarint(dst, int64(el.V))
		case RemoveEdgeElement:
			dst = append(dst, frameKindRemoveEdge)
			dst = binary.AppendVarint(dst, int64(el.V))
			dst = binary.AppendVarint(dst, int64(el.U))
		default:
			dst = append(dst, frameKindEdge)
			dst = binary.AppendVarint(dst, int64(el.V))
			dst = binary.AppendVarint(dst, int64(el.U))
		}
	}
	return dst, nil
}

// FrameDecoder decodes binary frames. One decoder per goroutine; its
// label intern cache and generation-stamped dedup maps persist across
// frames so the steady-state decode path allocates nothing.
//
// The dedup maps store gen<<1|op (op 1 = add, 0 = remove): an element is
// a duplicate only when it repeats the last operation on that identity
// within the same frame, so add/remove alternation passes through. gen
// starts at 1, so the zero value of a missing map entry never aliases a
// mark.
type FrameDecoder struct {
	intern map[string]graph.Label
	dict   []graph.Label
	seenV  map[graph.VertexID]uint64
	seenE  map[graph.Edge]uint64
	gen    uint64
}

// Decode verifies b.CRC against b.Payload and parses the payload into
// b.Elems. On error the batch must be treated as poisoned: nothing in it
// may reach the writer.
//
//loom:hotpath
func (d *FrameDecoder) Decode(b *Batch) error {
	if !wire.Verify(b.Payload, b.CRC) {
		return ErrFrameCRC
	}
	return d.DecodePayload(b)
}

// DecodePayload parses b.Payload (CRC already established, e.g. by the
// WAL's own frame check) into b.Elems. Element Seq numbers restart at 0
// per frame, matching the text codec's per-record numbering.
//
//loom:hotpath
func (d *FrameDecoder) DecodePayload(b *Batch) error {
	if d.seenV == nil {
		d.seenV = make(map[graph.VertexID]uint64)
	}
	if d.seenE == nil {
		d.seenE = make(map[graph.Edge]uint64)
	}
	p := b.Payload
	b.Elems = b.Elems[:0]
	b.Deduped = 0
	if len(p) < 1 {
		return ErrFrameTruncated
	}
	if p[0] != BinaryVersion && p[0] != BinaryVersionRemovals {
		return ErrFrameVersion
	}
	removals := p[0] == BinaryVersionRemovals
	o := 1
	labelCount, o, ok := uvarintAt(p, o)
	if !ok {
		return ErrFrameTruncated
	}
	d.dict = d.dict[:0]
	for i := uint64(0); i < labelCount; i++ {
		n, next, ok := uvarintAt(p, o)
		if !ok || uint64(len(p)-next) < n {
			return ErrFrameTruncated
		}
		o = next
		l, ok := d.lookupLabel(p[o : o+int(n)])
		if !ok {
			l = d.internLabel(p[o : o+int(n)])
		}
		if l == "" {
			return ErrFrameLabel
		}
		d.dict = append(d.dict, l)
		o += int(n)
	}
	elemCount, o, ok := uvarintAt(p, o)
	if !ok {
		return ErrFrameTruncated
	}
	d.gen++
	gen := d.gen
	for i := uint64(0); i < elemCount; i++ {
		if o >= len(p) {
			return ErrFrameTruncated
		}
		kind := p[o]
		o++
		switch kind {
		case frameKindVertex:
			id, next, ok := varintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			li, next, ok := uvarintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			if li >= uint64(len(d.dict)) {
				return ErrFrameDictIndex
			}
			v := graph.VertexID(id)
			mark := gen<<1 | 1
			if d.seenV[v] == mark {
				b.Deduped++
				continue
			}
			d.seenV[v] = mark
			b.Elems = append(b.Elems, Element{
				Kind: VertexElement, V: v, Label: d.dict[li], Seq: len(b.Elems),
			})
		case frameKindEdge:
			u, next, ok := varintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			v, next, ok := varintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			if u == v {
				return ErrFrameSelfLoop
			}
			e := graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)}.Normalize()
			mark := gen<<1 | 1
			if d.seenE[e] == mark {
				b.Deduped++
				continue
			}
			d.seenE[e] = mark
			b.Elems = append(b.Elems, Element{
				Kind: EdgeElement, V: graph.VertexID(u), U: graph.VertexID(v), Seq: len(b.Elems),
			})
		case frameKindRemoveVertex:
			if !removals {
				return ErrFrameKind
			}
			id, next, ok := varintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			v := graph.VertexID(id)
			mark := gen << 1
			if d.seenV[v] == mark {
				b.Deduped++
				continue
			}
			d.seenV[v] = mark
			b.Elems = append(b.Elems, Element{
				Kind: RemoveVertexElement, V: v, Seq: len(b.Elems),
			})
		case frameKindRemoveEdge:
			if !removals {
				return ErrFrameKind
			}
			u, next, ok := varintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			v, next, ok := varintAt(p, o)
			if !ok {
				return ErrFrameTruncated
			}
			o = next
			if u == v {
				return ErrFrameSelfLoop
			}
			e := graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)}.Normalize()
			mark := gen << 1
			if d.seenE[e] == mark {
				b.Deduped++
				continue
			}
			d.seenE[e] = mark
			b.Elems = append(b.Elems, Element{
				Kind: RemoveEdgeElement, V: graph.VertexID(u), U: graph.VertexID(v), Seq: len(b.Elems),
			})
		default:
			return ErrFrameKind
		}
	}
	if o != len(p) {
		return ErrFrameTrailing
	}
	return nil
}

// lookupLabel is the alloc-free intern-cache hit path: a map index with a
// string([]byte) key does not allocate.
//
//loom:hotpath
func (d *FrameDecoder) lookupLabel(b []byte) (graph.Label, bool) {
	l, ok := d.intern[string(b)]
	return l, ok
}

// internLabel is the cold miss path: validate the label bytes and add the
// canonical string to the cache. Returns "" for labels the codecs cannot
// replay.
func (d *FrameDecoder) internLabel(b []byte) graph.Label {
	if !wire.SafeLabelBytes(b) {
		return ""
	}
	if d.intern == nil {
		d.intern = make(map[string]graph.Label)
	}
	l := graph.Label(b)
	d.intern[string(b)] = l
	return l
}

func uvarintAt(p []byte, o int) (uint64, int, bool) {
	v, n := binary.Uvarint(p[o:])
	if n <= 0 {
		return 0, o, false
	}
	return v, o + n, true
}

func varintAt(p []byte, o int) (int64, int, bool) {
	v, n := binary.Varint(p[o:])
	if n <= 0 {
		return 0, o, false
	}
	return v, o + n, true
}

// DecodeFramePayload decodes one frame payload with a throwaway decoder.
// It refuses payloads containing intra-frame duplicates: the serve layer
// only logs dedup-clean payloads, so a duplicate in a WAL body is
// corruption, not data. Used by WAL replay and the differential fuzzers.
func DecodeFramePayload(payload []byte) ([]Element, error) {
	var d FrameDecoder
	b := Batch{Payload: payload}
	if err := d.DecodePayload(&b); err != nil {
		return nil, err
	}
	if b.Deduped > 0 {
		return nil, ErrFrameDuplicate
	}
	return b.Elems, nil
}

// FrameReader reads length-prefixed binary frames off r. Next fills a
// Batch's Payload/CRC without decoding, so decode work can move to
// another goroutine.
type FrameReader struct {
	br     *bufio.Reader
	frames int
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Frames returns how many frames have been read so far.
func (fr *FrameReader) Frames() int { return fr.frames }

// Next reads one frame into b, reusing b's buffers. It returns io.EOF at
// a clean end of stream; a header or payload cut short mid-frame is an
// error (the frame boundary is the unit of delivery).
func (fr *FrameReader) Next(b *Batch) error {
	var hdr [wire.HeaderSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("stream: frame %d header cut short: %w", fr.frames, ErrFrameTruncated)
		}
		return err
	}
	n, crc := wire.ParseHeader(hdr[:])
	if n > wire.MaxPayload {
		return fmt.Errorf("stream: frame %d payload %d bytes exceeds cap %d", fr.frames, n, wire.MaxPayload)
	}
	if cap(b.Payload) < n {
		b.Payload = make([]byte, n)
	} else {
		b.Payload = b.Payload[:n]
	}
	if _, err := io.ReadFull(fr.br, b.Payload); err != nil {
		return fmt.Errorf("stream: frame %d payload cut short: %w", fr.frames, ErrFrameTruncated)
	}
	b.CRC = crc
	b.Elems = b.Elems[:0]
	b.Deduped = 0
	fr.frames++
	return nil
}

// FrameWriter renders element batches as binary frames onto w — the
// client half of the codec (benchmarks, tests, the chaos harness).
type FrameWriter struct {
	w   io.Writer
	enc FrameEncoder
	buf []byte
}

// NewFrameWriter returns a FrameWriter writing to w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteBatch encodes elems as one frame and writes it out.
func (fw *FrameWriter) WriteBatch(elems []Element) error {
	buf, err := fw.enc.AppendFrame(fw.buf[:0], elems)
	if err != nil {
		return err
	}
	fw.buf = buf
	_, err = fw.w.Write(buf)
	return err
}
