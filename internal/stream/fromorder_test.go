package stream

import (
	"testing"

	"loom/internal/graph"
)

// TestFromVertexOrderMatchesFromGraph replays the temporal order through
// FromVertexOrder and expects the exact element sequence FromGraph emits.
func TestFromVertexOrderMatchesFromGraph(t *testing.T) {
	g := graph.Path("a", "b", "c", "d")
	want, err := FromGraph(g, TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := FromVertexOrder(g, g.Vertices())
	if len(got) != len(want) {
		t.Fatalf("element counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("element %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestFromVertexOrderCustomOrder emits edges only once both endpoints have
// appeared, regardless of the order supplied.
func TestFromVertexOrderCustomOrder(t *testing.T) {
	g := graph.Path("a", "b", "c")
	elems := FromVertexOrder(g, []graph.VertexID{2, 0, 1})
	vertices, edges := 0, 0
	seen := map[graph.VertexID]bool{}
	for _, e := range elems {
		switch e.Kind {
		case VertexElement:
			vertices++
			seen[e.V] = true
		case EdgeElement:
			edges++
			if !seen[e.V] || !seen[e.U] {
				t.Fatalf("edge %v emitted before both endpoints", e)
			}
		}
	}
	if vertices != 3 || edges != 2 {
		t.Fatalf("got %d vertices, %d edges; want 3, 2", vertices, edges)
	}
}
