package stream

import (
	"strings"
	"testing"

	"loom/internal/graph"
)

func TestFromReaderDecodes(t *testing.T) {
	in := `# a comment

v 0 a
v 1 b
e 0 1
v 2 a
e 2 0
`
	src := FromReader(strings.NewReader(in))
	want := []Element{
		{Kind: VertexElement, V: 0, Label: "a", Seq: 0},
		{Kind: VertexElement, V: 1, Label: "b", Seq: 1},
		{Kind: EdgeElement, V: 0, U: 1, Seq: 2},
		{Kind: VertexElement, V: 2, Label: "a", Seq: 3},
		{Kind: EdgeElement, V: 2, U: 0, Seq: 4},
	}
	for i, w := range want {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("element %d: stream ended early (err=%v)", i, src.Err())
		}
		if got != w {
			t.Fatalf("element %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream yielded extra elements")
	}
	if err := src.Err(); err != nil {
		t.Fatalf("clean EOF produced error: %v", err)
	}
	if src.Elements() != len(want) {
		t.Fatalf("Elements() = %d, want %d", src.Elements(), len(want))
	}
}

func TestFromReaderMalformed(t *testing.T) {
	for _, in := range []string{
		"v 0\n",        // missing label
		"v x a\n",      // bad id
		"e 0\n",        // missing endpoint
		"e 0 y\n",      // bad endpoint
		"w 0 1\n",      // unknown record
		"v 0 a\nq 1\n", // fails midway
	} {
		src := FromReader(strings.NewReader(in))
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if src.Err() == nil {
			t.Errorf("input %q: expected a decode error", in)
		}
		// A failed source stays failed.
		if _, ok := src.Next(); ok {
			t.Errorf("input %q: Next after failure yielded an element", in)
		}
	}
}

// TestFromReaderMatchesCodec pins the incremental decoder to the batch
// codec: replaying a WriteStreamed file through FromReader rebuilds the
// graph exactly.
func TestFromReaderMatchesCodec(t *testing.T) {
	g := graph.Fig1Graph()
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	rebuilt := graph.New()
	src := FromReader(strings.NewReader(sb.String()))
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		switch el.Kind {
		case VertexElement:
			rebuilt.AddVertex(el.V, el.Label)
		case EdgeElement:
			if err := rebuilt.AddEdge(el.V, el.U); err != nil {
				t.Fatalf("edge {%d,%d}: %v", el.V, el.U, err)
			}
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !g.Equal(rebuilt) {
		t.Fatalf("rebuilt graph differs:\n got %v\nwant %v", rebuilt, g)
	}
}
