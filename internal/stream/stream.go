// Package stream turns a graph into a graph-stream and provides the sliding
// window buffer LOOM partitions from.
//
// A graph-stream (paper §3.1) is an ordering over the elements of a dynamic
// graph. Streaming partitioners are sensitive to this ordering, so the
// package implements the three categories the literature evaluates —
// random, adversarial and stochastic (here: BFS/DFS/temporal) — plus the
// window abstraction of §4.1: a buffered sliding window over the stream
// from which whole subgraphs can be assigned at once.
package stream

import (
	"fmt"
	"math/rand"
	"sort"

	"loom/internal/graph"
)

// ElementKind discriminates stream elements.
type ElementKind uint8

// Stream element kinds. A vertex element introduces a vertex and its label;
// an edge element connects two previously introduced vertices. The removal
// kinds make the stream dynamic: a remove-vertex element deletes a vertex
// and every edge incident to it, a remove-edge element deletes one edge.
const (
	VertexElement ElementKind = iota
	EdgeElement
	RemoveVertexElement
	RemoveEdgeElement
)

// Element is one item of a graph-stream.
type Element struct {
	Kind  ElementKind
	V     graph.VertexID // vertex (Vertex/RemoveVertex) or edge endpoint U (Edge/RemoveEdge)
	U     graph.VertexID // second endpoint for Edge/RemoveEdge
	Label graph.Label    // label for VertexElement
	Seq   int            // position in the stream, assigned by the streamer
}

// String implements fmt.Stringer.
func (e Element) String() string {
	switch e.Kind {
	case VertexElement:
		return fmt.Sprintf("v%d:%s@%d", e.V, e.Label, e.Seq)
	case RemoveVertexElement:
		return fmt.Sprintf("rv%d@%d", e.V, e.Seq)
	case RemoveEdgeElement:
		return fmt.Sprintf("re(%d,%d)@%d", e.V, e.U, e.Seq)
	}
	return fmt.Sprintf("e(%d,%d)@%d", e.V, e.U, e.Seq)
}

// Order names a vertex ordering strategy for converting a static graph into
// a stream.
type Order int

// Supported stream orderings (paper §3.1).
const (
	// RandomOrder shuffles vertices uniformly; the common evaluation default.
	RandomOrder Order = iota
	// BFSOrdering emits vertices in breadth-first order from a random
	// start, restarting per component: the "stochastic/crawl" ordering that
	// models graphs harvested by exploration.
	BFSOrdering
	// DFSOrdering is the depth-first analogue.
	DFSOrdering
	// AdversarialOrder emits vertices so that neighbourhood information is
	// maximally delayed: vertices sorted by degree ascending, which starves
	// greedy heuristics of placed neighbours (cf. §3.1's adversarial
	// example).
	AdversarialOrder
	// TemporalOrder emits vertices in ID order, modelling creation-time
	// ordering of a growing network (generators allocate IDs temporally).
	TemporalOrder
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case RandomOrder:
		return "random"
	case BFSOrdering:
		return "bfs"
	case DFSOrdering:
		return "dfs"
	case AdversarialOrder:
		return "adversarial"
	case TemporalOrder:
		return "temporal"
	}
	return fmt.Sprintf("order(%d)", int(o))
}

// VertexOrder returns g's vertices in the requested order. r is used only by
// the stochastic orderings and may be nil for TemporalOrder/AdversarialOrder.
func VertexOrder(g *graph.Graph, o Order, r *rand.Rand) ([]graph.VertexID, error) {
	vs := g.Vertices()
	switch o {
	case TemporalOrder:
		return vs, nil
	case RandomOrder:
		if r == nil {
			return nil, fmt.Errorf("stream: RandomOrder requires a rand source")
		}
		r.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		return vs, nil
	case AdversarialOrder:
		sort.SliceStable(vs, func(i, j int) bool {
			di, dj := g.Degree(vs[i]), g.Degree(vs[j])
			if di != dj {
				return di < dj
			}
			return vs[i] < vs[j]
		})
		return vs, nil
	case BFSOrdering, DFSOrdering:
		if r == nil {
			return nil, fmt.Errorf("stream: %v requires a rand source", o)
		}
		remaining := make(map[graph.VertexID]struct{}, len(vs))
		for _, v := range vs {
			remaining[v] = struct{}{}
		}
		out := make([]graph.VertexID, 0, len(vs))
		for len(remaining) > 0 {
			// Deterministic random start: pick among remaining, sorted.
			keys := make([]graph.VertexID, 0, len(remaining))
			for v := range remaining {
				keys = append(keys, v)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			start := keys[r.Intn(len(keys))]
			var comp []graph.VertexID
			if o == BFSOrdering {
				comp = g.BFSOrder(start)
			} else {
				comp = g.DFSOrder(start)
			}
			for _, v := range comp {
				if _, ok := remaining[v]; ok {
					out = append(out, v)
					delete(remaining, v)
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("stream: unknown order %v", o)
}

// FromGraph converts a static graph into a stream: each vertex element is
// followed immediately by the edge elements connecting it to previously
// emitted vertices (the standard streaming-partitioner input model, where a
// vertex arrives together with its known adjacency).
func FromGraph(g *graph.Graph, o Order, r *rand.Rand) ([]Element, error) {
	order, err := VertexOrder(g, o, r)
	if err != nil {
		return nil, err
	}
	return FromVertexOrder(g, order), nil
}

// FromVertexOrder converts a static graph into a stream following an
// explicit vertex order (restreaming passes replay priority-reordered
// streams through here). Edges to vertices outside the order are dropped,
// matching FromGraph's known-adjacency model.
func FromVertexOrder(g *graph.Graph, order []graph.VertexID) []Element {
	seen := make(map[graph.VertexID]struct{}, len(order))
	out := make([]Element, 0, g.NumVertices()+g.NumEdges())
	seq := 0
	for _, v := range order {
		l, _ := g.Label(v)
		out = append(out, Element{Kind: VertexElement, V: v, Label: l, Seq: seq})
		seq++
		seen[v] = struct{}{}
		for _, u := range g.Neighbors(v) {
			if _, ok := seen[u]; ok {
				out = append(out, Element{Kind: EdgeElement, V: v, U: u, Seq: seq})
				seq++
			}
		}
	}
	return out
}

// Source yields stream elements one at a time.
type Source interface {
	// Next returns the next element, or ok=false when the stream is
	// exhausted.
	Next() (Element, bool)
}

// SliceSource adapts a pre-materialised []Element to Source.
type SliceSource struct {
	elems []Element
	pos   int
}

// NewSliceSource returns a Source reading from elems in order.
func NewSliceSource(elems []Element) *SliceSource { return &SliceSource{elems: elems} }

// Next implements Source.
func (s *SliceSource) Next() (Element, bool) {
	if s.pos >= len(s.elems) {
		return Element{}, false
	}
	e := s.elems[s.pos]
	s.pos++
	return e, true
}

// Len returns the total number of elements in the underlying slice.
func (s *SliceSource) Len() int { return len(s.elems) }

// Remaining returns how many elements have not been consumed yet.
func (s *SliceSource) Remaining() int { return len(s.elems) - s.pos }
