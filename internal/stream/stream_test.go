package stream

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func TestVertexOrderTemporal(t *testing.T) {
	g := graph.Fig1Graph()
	order, err := VertexOrder(g, TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.VertexID{1, 2, 3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("temporal order = %v, want %v", order, want)
	}
}

func TestVertexOrderRandomIsPermutation(t *testing.T) {
	g := graph.Fig1Graph()
	order, err := VertexOrder(g, RandomOrder, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("len = %d", len(order))
	}
	seen := map[graph.VertexID]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate %d in order", v)
		}
		seen[v] = true
	}
}

func TestVertexOrderRandomNeedsRand(t *testing.T) {
	g := graph.Fig1Graph()
	if _, err := VertexOrder(g, RandomOrder, nil); err == nil {
		t.Fatal("RandomOrder without rand should error")
	}
	if _, err := VertexOrder(g, BFSOrdering, nil); err == nil {
		t.Fatal("BFSOrdering without rand should error")
	}
}

func TestVertexOrderAdversarial(t *testing.T) {
	g := graph.Star("h", "x", "y", "z")
	order, err := VertexOrder(g, AdversarialOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hub (degree 3) must come last.
	if order[len(order)-1] != 0 {
		t.Fatalf("adversarial order should delay the hub: %v", order)
	}
}

func TestVertexOrderBFSCoversComponents(t *testing.T) {
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddVertex(graph.VertexID(i), "x")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	// 4, 5 isolated.
	order, err := VertexOrder(g, BFSOrdering, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("BFS ordering must cover all components, got %d/6", len(order))
	}
}

func mustEdge(t *testing.T, g *graph.Graph, u, v graph.VertexID) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphEdgeAfterBothEndpoints(t *testing.T) {
	g := graph.Fig1Graph()
	elems, err := FromGraph(g, TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != g.NumVertices()+g.NumEdges() {
		t.Fatalf("elements = %d, want %d", len(elems), g.NumVertices()+g.NumEdges())
	}
	seen := map[graph.VertexID]bool{}
	edgeCount := 0
	for i, el := range elems {
		if el.Seq != i {
			t.Fatalf("Seq not consecutive at %d", i)
		}
		switch el.Kind {
		case VertexElement:
			seen[el.V] = true
		case EdgeElement:
			if !seen[el.V] || !seen[el.U] {
				t.Fatalf("edge %v before both endpoints", el)
			}
			edgeCount++
		}
	}
	if edgeCount != g.NumEdges() {
		t.Fatalf("edges streamed = %d, want %d", edgeCount, g.NumEdges())
	}
}

func TestSliceSource(t *testing.T) {
	elems := []Element{{Kind: VertexElement, V: 1}, {Kind: VertexElement, V: 2}}
	s := NewSliceSource(elems)
	if s.Len() != 2 || s.Remaining() != 2 {
		t.Fatal("initial lengths wrong")
	}
	e, ok := s.Next()
	if !ok || e.V != 1 {
		t.Fatal("first Next wrong")
	}
	if s.Remaining() != 1 {
		t.Fatal("Remaining after one Next wrong")
	}
	if _, ok := s.Next(); !ok {
		t.Fatal("second Next should succeed")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source should report !ok")
	}
}

func TestOrderString(t *testing.T) {
	names := map[Order]string{
		RandomOrder:      "random",
		BFSOrdering:      "bfs",
		DFSOrdering:      "dfs",
		AdversarialOrder: "adversarial",
		TemporalOrder:    "temporal",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestElementString(t *testing.T) {
	v := Element{Kind: VertexElement, V: 3, Label: "a", Seq: 7}
	if v.String() != "v3:a@7" {
		t.Fatalf("vertex element string = %q", v.String())
	}
	e := Element{Kind: EdgeElement, V: 3, U: 4, Seq: 8}
	if e.String() != "e(3,4)@8" {
		t.Fatalf("edge element string = %q", e.String())
	}
}

func TestPropertyStreamCoversGraph(t *testing.T) {
	// Replaying any ordering reconstructs the original graph.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 3 + r.Intn(15)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.VertexID(i), graph.Label([]string{"a", "b"}[r.Intn(2)]))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
						return false
					}
				}
			}
		}
		for _, o := range []Order{RandomOrder, BFSOrdering, DFSOrdering, AdversarialOrder, TemporalOrder} {
			elems, err := FromGraph(g, o, rand.New(rand.NewSource(seed)))
			if err != nil {
				return false
			}
			rebuilt := graph.New()
			for _, el := range elems {
				switch el.Kind {
				case VertexElement:
					rebuilt.AddVertex(el.V, el.Label)
				case EdgeElement:
					if err := rebuilt.AddEdge(el.V, el.U); err != nil {
						return false
					}
				}
			}
			if !g.Equal(rebuilt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
