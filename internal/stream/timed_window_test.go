package stream

import (
	"reflect"
	"testing"

	"loom/internal/graph"
)

func TestTimedWindowValidation(t *testing.T) {
	if _, err := NewTimedWindow(0); err == nil {
		t.Fatal("span 0 should be rejected")
	}
	w, err := NewTimedWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Span() != 10 || w.Len() != 0 || w.Now() != 0 {
		t.Fatal("fresh timed window state wrong")
	}
}

func TestTimedWindowEvictsBySpan(t *testing.T) {
	w, _ := NewTimedWindow(5)
	evs, err := w.AddVertex(1, "a", 0)
	if err != nil || len(evs) != 0 {
		t.Fatalf("t=0: evs=%v err=%v", evs, err)
	}
	evs, err = w.AddVertex(2, "b", 3)
	if err != nil || len(evs) != 0 {
		t.Fatalf("t=3: evs=%v err=%v", evs, err)
	}
	// t=6: vertex 1 (t=0) is 6 old > span 5 -> evicted; vertex 2 stays.
	evs, err = w.AddVertex(3, "c", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].V != 1 {
		t.Fatalf("t=6 evictions = %v, want [1]", evs)
	}
	if !w.Resident(2) || !w.Resident(3) || w.Resident(1) {
		t.Fatal("residency wrong after span eviction")
	}
}

func TestTimedWindowRejectsTimeRegression(t *testing.T) {
	w, _ := NewTimedWindow(5)
	if _, err := w.AddVertex(1, "a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddVertex(2, "b", 9); err == nil {
		t.Fatal("regressing timestamps should be rejected")
	}
}

func TestTimedWindowUnboundedWithinSpan(t *testing.T) {
	w, _ := NewTimedWindow(100)
	for i := 0; i < 50; i++ {
		evs, err := w.AddVertex(graph.VertexID(i), "x", int64(i))
		if err != nil || len(evs) != 0 {
			t.Fatalf("vertex %d: evs=%v err=%v", i, evs, err)
		}
	}
	if w.Len() != 50 {
		t.Fatalf("Len = %d, want 50 (no count cap)", w.Len())
	}
}

func TestTimedWindowEdgeSemantics(t *testing.T) {
	w, _ := NewTimedWindow(5)
	if _, err := w.AddVertex(1, "a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddVertex(2, "b", 1); err != nil {
		t.Fatal(err)
	}
	both, err := w.AddEdge(1, 2)
	if err != nil || !both {
		t.Fatalf("AddEdge = %v,%v", both, err)
	}
	if _, err := w.AddEdge(3, 3); err == nil {
		t.Fatal("self-loop should error")
	}
	// Evict 1 by time (t=6, span 5: only t<1 leaves); deferred edge lands
	// on 2's eventual eviction.
	if _, err := w.AddVertex(4, "d", 6); err != nil {
		t.Fatal(err)
	}
	if w.Resident(1) {
		t.Fatal("1 should be evicted at t=6")
	}
	if !w.Resident(2) {
		t.Fatal("2 (t=1) should survive at t=6")
	}
	both, err = w.AddEdge(2, 1)
	if err != nil || both {
		t.Fatalf("edge to evicted endpoint = %v,%v; want false,nil", both, err)
	}
	evs := w.Flush()
	var ev2 *Eviction
	for i := range evs {
		if evs[i].V == 2 {
			ev2 = &evs[i]
		}
	}
	if ev2 == nil {
		t.Fatal("2 not flushed")
	}
	// 2's assigned neighbours: 1 via window-eviction propagation AND the
	// explicitly deferred stream edge.
	if len(ev2.AssignedNeighbors) < 1 {
		t.Fatalf("AssignedNeighbors = %v, want to include 1", ev2.AssignedNeighbors)
	}
	found := false
	for _, n := range ev2.AssignedNeighbors {
		if n == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("AssignedNeighbors = %v missing 1", ev2.AssignedNeighbors)
	}
}

func TestTimedWindowFlushOrder(t *testing.T) {
	w, _ := NewTimedWindow(100)
	for i := 1; i <= 3; i++ {
		if _, err := w.AddVertex(graph.VertexID(i), "x", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	evs := w.Flush()
	got := []graph.VertexID{evs[0].V, evs[1].V, evs[2].V}
	if !reflect.DeepEqual(got, []graph.VertexID{1, 2, 3}) {
		t.Fatalf("flush order = %v", got)
	}
	if w.Len() != 0 {
		t.Fatal("window should be empty")
	}
}

func TestTimedWindowReAddResidentKeepsTimestamp(t *testing.T) {
	w, _ := NewTimedWindow(5)
	if _, err := w.AddVertex(1, "a", 0); err != nil {
		t.Fatal(err)
	}
	// Re-adding relabels but does not refresh the arrival time.
	if _, err := w.AddVertex(1, "b", 4); err != nil {
		t.Fatal(err)
	}
	if l, _ := w.Graph().Label(1); l != "b" {
		t.Fatal("relabel failed")
	}
	evs, err := w.AddVertex(2, "c", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].V != 1 {
		t.Fatalf("vertex 1 should evict by its original timestamp: %v", evs)
	}
}
