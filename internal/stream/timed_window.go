package stream

import (
	"fmt"

	"loom/internal/graph"
)

// TimedWindow is the time-based variant of the stream window (paper §4.1
// footnote 2: "Stream windows may be defined in terms of time, or element
// count"). Vertices carry logical timestamps supplied by the stream; a
// vertex is evicted once the newest observed timestamp exceeds its own by
// more than Span. Unlike the count-based Window, occupancy is unbounded —
// it tracks however many vertices arrive within one span — so it models
// deployments that think in "the last hour of the stream" rather than
// "the last N vertices".
//
// The bookkeeping contract matches Window: evictions report window and
// assigned neighbours, and edges to evicted endpoints are deferred onto
// their resident endpoint.
type TimedWindow struct {
	span     int64
	now      int64
	g        *graph.Graph
	arrival  []timedEntry
	resident map[graph.VertexID]struct{}
	deferred map[graph.VertexID][]pendingEdge
}

type timedEntry struct {
	v  graph.VertexID
	at int64
}

// pendingEdge records an edge whose other endpoint already left the window;
// it is surfaced to the caller at eviction time so the partitioner can
// still count it toward placement scores. (The count-based Window tracks
// the same information in a handle-indexed slice.)
type pendingEdge struct {
	other graph.VertexID
}

// NewTimedWindow returns a window spanning the given number of logical
// time units (span >= 1).
func NewTimedWindow(span int64) (*TimedWindow, error) {
	if span < 1 {
		return nil, fmt.Errorf("stream: timed window span %d < 1", span)
	}
	return &TimedWindow{
		span:     span,
		g:        graph.New(),
		resident: make(map[graph.VertexID]struct{}),
		deferred: make(map[graph.VertexID][]pendingEdge),
	}, nil
}

// Span returns the window's time span.
func (w *TimedWindow) Span() int64 { return w.span }

// Now returns the newest timestamp observed.
func (w *TimedWindow) Now() int64 { return w.now }

// Len returns the number of resident vertices.
func (w *TimedWindow) Len() int { return len(w.arrival) }

// Graph exposes the window-resident subgraph (read-only for callers).
func (w *TimedWindow) Graph() *graph.Graph { return w.g }

// Resident reports whether v is inside the window.
func (w *TimedWindow) Resident(v graph.VertexID) bool {
	_, ok := w.resident[v]
	return ok
}

// AddVertex inserts v at timestamp at (which must be non-decreasing across
// calls) and returns the evictions its arrival forces: every resident
// vertex whose timestamp now falls outside the span.
func (w *TimedWindow) AddVertex(v graph.VertexID, l graph.Label, at int64) ([]Eviction, error) {
	if at < w.now {
		return nil, fmt.Errorf("stream: timestamp %d regressed below %d", at, w.now)
	}
	w.now = at
	evs := w.advance()
	if !w.Resident(v) {
		w.resident[v] = struct{}{}
		w.arrival = append(w.arrival, timedEntry{v: v, at: at})
	}
	w.g.AddVertex(v, l)
	return evs, nil
}

// advance evicts every vertex older than now-span.
func (w *TimedWindow) advance() []Eviction {
	var evs []Eviction
	for len(w.arrival) > 0 && w.arrival[0].at < w.now-w.span {
		v := w.arrival[0].v
		w.arrival = w.arrival[1:]
		evs = append(evs, *w.remove(v))
	}
	return evs
}

// AddEdge records stream edge {u,v} with the same semantics as
// Window.AddEdge.
func (w *TimedWindow) AddEdge(u, v graph.VertexID) (bothResident bool, err error) {
	if u == v {
		return false, fmt.Errorf("stream: self-loop {%d,%d}", u, v)
	}
	ur, vr := w.Resident(u), w.Resident(v)
	switch {
	case ur && vr:
		if w.g.HasEdge(u, v) {
			return true, nil
		}
		if err := w.g.AddEdge(u, v); err != nil {
			return false, err
		}
		return true, nil
	case ur:
		w.deferred[u] = append(w.deferred[u], pendingEdge{other: v})
		return false, nil
	case vr:
		w.deferred[v] = append(w.deferred[v], pendingEdge{other: u})
		return false, nil
	default:
		return false, nil
	}
}

// Flush evicts every resident vertex in arrival order.
func (w *TimedWindow) Flush() []Eviction {
	out := make([]Eviction, 0, len(w.arrival))
	for len(w.arrival) > 0 {
		v := w.arrival[0].v
		w.arrival = w.arrival[1:]
		out = append(out, *w.remove(v))
	}
	return out
}

// remove mirrors Window.remove: deferred edges propagate to resident
// neighbours so their later evictions still see the assigned endpoint.
func (w *TimedWindow) remove(v graph.VertexID) *Eviction {
	l, _ := w.g.Label(v)
	ev := &Eviction{V: v, Label: l}
	ev.WindowNeighbors = w.g.Neighbors(v)
	for _, pe := range w.deferred[v] {
		ev.AssignedNeighbors = append(ev.AssignedNeighbors, pe.other)
	}
	for _, u := range ev.WindowNeighbors {
		w.deferred[u] = append(w.deferred[u], pendingEdge{other: v})
	}
	delete(w.deferred, v)
	delete(w.resident, v)
	w.g.RemoveVertex(v)
	return ev
}
