package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"loom/internal/graph"
)

// ReaderSource decodes the graph text codec ("v <id> <label>" /
// "e <u> <v>" lines, removals as "rv <id>" / "re <u> <v>", # comments)
// incrementally from an io.Reader, yielding
// one stream element per record without materialising the graph. It is the
// ingestion path of loom-serve and of `loom partition -order file`: memory
// stays O(1) in the input size, and the consumer starts partitioning
// before the producer has finished writing.
//
// The source stops at the first malformed line; Err reports what went
// wrong (nil at clean EOF). Note that edges referencing vertices the
// consumer has not seen are the consumer's concern — the codec only
// guarantees lexical shape.
type ReaderSource struct {
	sc   *bufio.Scanner
	seq  int
	line int
	err  error
	done bool
}

// FromReader returns a ReaderSource over r.
func FromReader(r io.Reader) *ReaderSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &ReaderSource{sc: sc}
}

// Next implements Source. After ok=false, check Err.
func (s *ReaderSource) Next() (Element, bool) {
	if s.done {
		return Element{}, false
	}
	for s.sc.Scan() {
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		el, err := s.parseLine(line)
		if err != nil {
			s.fail(err)
			return Element{}, false
		}
		el.Seq = s.seq
		s.seq++
		return el, true
	}
	s.fail(s.sc.Err())
	return Element{}, false
}

func (s *ReaderSource) fail(err error) {
	s.done = true
	s.err = err
}

// Err returns the decode error that terminated the stream, or nil after a
// clean EOF.
func (s *ReaderSource) Err() error { return s.err }

// Elements returns how many elements have been yielded so far.
func (s *ReaderSource) Elements() int { return s.seq }

func (s *ReaderSource) parseLine(line string) (Element, error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "v":
		if len(fields) != 3 {
			return Element{}, fmt.Errorf("stream: line %d: want 'v <id> <label>', got %q", s.line, line)
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Element{}, fmt.Errorf("stream: line %d: bad vertex id %q: %v", s.line, fields[1], err)
		}
		return Element{Kind: VertexElement, V: graph.VertexID(id), Label: graph.Label(fields[2])}, nil
	case "e":
		if len(fields) != 3 {
			return Element{}, fmt.Errorf("stream: line %d: want 'e <u> <v>', got %q", s.line, line)
		}
		u, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Element{}, fmt.Errorf("stream: line %d: bad endpoint %q: %v", s.line, fields[1], err)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return Element{}, fmt.Errorf("stream: line %d: bad endpoint %q: %v", s.line, fields[2], err)
		}
		return Element{Kind: EdgeElement, V: graph.VertexID(u), U: graph.VertexID(v)}, nil
	case "rv":
		if len(fields) != 2 {
			return Element{}, fmt.Errorf("stream: line %d: want 'rv <id>', got %q", s.line, line)
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Element{}, fmt.Errorf("stream: line %d: bad vertex id %q: %v", s.line, fields[1], err)
		}
		return Element{Kind: RemoveVertexElement, V: graph.VertexID(id)}, nil
	case "re":
		if len(fields) != 3 {
			return Element{}, fmt.Errorf("stream: line %d: want 're <u> <v>', got %q", s.line, line)
		}
		u, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Element{}, fmt.Errorf("stream: line %d: bad endpoint %q: %v", s.line, fields[1], err)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return Element{}, fmt.Errorf("stream: line %d: bad endpoint %q: %v", s.line, fields[2], err)
		}
		return Element{Kind: RemoveEdgeElement, V: graph.VertexID(u), U: graph.VertexID(v)}, nil
	}
	return Element{}, fmt.Errorf("stream: line %d: unknown record %q", s.line, fields[0])
}
