package stream

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("capacity 0 should be rejected")
	}
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Capacity() != 3 || w.Len() != 0 {
		t.Fatal("fresh window state wrong")
	}
}

func TestWindowAddAndEvictFIFO(t *testing.T) {
	w, _ := NewWindow(2)
	if ev := w.AddVertex(1, "a"); ev != nil {
		t.Fatal("no eviction expected")
	}
	if ev := w.AddVertex(2, "b"); ev != nil {
		t.Fatal("no eviction expected")
	}
	ev := w.AddVertex(3, "c")
	if ev == nil || ev.V != 1 || ev.Label != "a" {
		t.Fatalf("eviction = %+v, want vertex 1", ev)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	if oldest, ok := w.Oldest(); !ok || oldest != 2 {
		t.Fatalf("Oldest = %d,%v; want 2,true", oldest, ok)
	}
}

func TestWindowRelabelDoesNotEvict(t *testing.T) {
	w, _ := NewWindow(1)
	w.AddVertex(1, "a")
	if ev := w.AddVertex(1, "b"); ev != nil {
		t.Fatal("re-adding a resident vertex must not evict")
	}
	if l, _ := w.Graph().Label(1); l != "b" {
		t.Fatalf("label = %s, want b", l)
	}
}

func TestWindowEdges(t *testing.T) {
	w, _ := NewWindow(4)
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	both, err := w.AddEdge(1, 2)
	if err != nil || !both {
		t.Fatalf("AddEdge = %v,%v; want true,nil", both, err)
	}
	if !w.Graph().HasEdge(1, 2) {
		t.Fatal("edge should be in window graph")
	}
	// Duplicate edge is idempotent.
	if both, err := w.AddEdge(2, 1); err != nil || !both {
		t.Fatalf("dup AddEdge = %v,%v", both, err)
	}
	if w.Graph().NumEdges() != 1 {
		t.Fatal("duplicate edge should not double count")
	}
	if _, err := w.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop should error")
	}
}

func TestWindowDeferredEdges(t *testing.T) {
	w, _ := NewWindow(2)
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	ev := w.AddVertex(3, "c") // evicts 1
	if ev == nil || ev.V != 1 {
		t.Fatal("expected eviction of 1")
	}
	// Edge (3,1) arrives after 1 was assigned.
	both, err := w.AddEdge(3, 1)
	if err != nil || both {
		t.Fatalf("AddEdge = %v,%v; want false,nil", both, err)
	}
	// When 3 is evicted its AssignedNeighbors must include 1.
	_, _ = w.EvictOldest() // evicts 2
	ev3, ok := w.EvictOldest()
	if !ok || ev3.V != 3 {
		t.Fatalf("expected eviction of 3, got %+v", ev3)
	}
	if !reflect.DeepEqual(ev3.AssignedNeighbors, []graph.VertexID{1}) {
		t.Fatalf("AssignedNeighbors = %v, want [1]", ev3.AssignedNeighbors)
	}
}

func TestWindowEdgeSurvivesNeighborEviction(t *testing.T) {
	// Edge between residents; one endpoint evicted; the other's eventual
	// eviction must still report the assigned endpoint.
	w, _ := NewWindow(2)
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	if _, err := w.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ev := w.AddVertex(3, "c") // evicts 1; edge (1,2) leaves window graph
	if ev.V != 1 || len(ev.WindowNeighbors) != 1 || ev.WindowNeighbors[0] != 2 {
		t.Fatalf("eviction of 1 = %+v", ev)
	}
	_ = w.AddVertex(4, "d") // evicts 2
	ev2, _ := w.EvictOldest()
	if ev2.V != 3 {
		// vertex 2 was evicted by AddVertex(4); pull its eviction record
		t.Fatalf("unexpected eviction order: %+v", ev2)
	}
}

func TestWindowEvictionNeighborAccounting(t *testing.T) {
	w, _ := NewWindow(3)
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	w.AddVertex(3, "c")
	if _, err := w.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	ev, ok := w.EvictOldest()
	if !ok || ev.V != 1 {
		t.Fatal("expected eviction of 1")
	}
	if !reflect.DeepEqual(ev.WindowNeighbors, []graph.VertexID{2, 3}) {
		t.Fatalf("WindowNeighbors = %v, want [2 3]", ev.WindowNeighbors)
	}
	// 2's eviction must now list 1 as an assigned neighbour.
	ev2, _ := w.EvictOldest()
	if ev2.V != 2 || !reflect.DeepEqual(ev2.AssignedNeighbors, []graph.VertexID{1}) {
		t.Fatalf("eviction of 2 = %+v, want AssignedNeighbors [1]", ev2)
	}
}

func TestWindowEvictSpecific(t *testing.T) {
	w, _ := NewWindow(3)
	w.AddVertex(1, "a")
	w.AddVertex(2, "b")
	w.AddVertex(3, "c")
	ev, ok := w.Evict(2)
	if !ok || ev.V != 2 {
		t.Fatalf("Evict(2) = %+v,%v", ev, ok)
	}
	if w.Resident(2) {
		t.Fatal("2 should be gone")
	}
	if _, ok := w.Evict(2); ok {
		t.Fatal("second Evict(2) should fail")
	}
	// FIFO order preserved for the rest.
	ev1, _ := w.EvictOldest()
	if ev1.V != 1 {
		t.Fatalf("oldest = %d, want 1", ev1.V)
	}
}

func TestWindowFlush(t *testing.T) {
	w, _ := NewWindow(5)
	for i := 1; i <= 4; i++ {
		w.AddVertex(graph.VertexID(i), "x")
	}
	evs := w.Flush()
	if len(evs) != 4 {
		t.Fatalf("flushed %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.V != graph.VertexID(i+1) {
			t.Fatalf("flush order wrong: %v", evs)
		}
	}
	if w.Len() != 0 {
		t.Fatal("window should be empty after flush")
	}
	if _, ok := w.EvictOldest(); ok {
		t.Fatal("EvictOldest on empty window should fail")
	}
	if _, ok := w.Oldest(); ok {
		t.Fatal("Oldest on empty window should fail")
	}
}

func TestWindowEdgeBetweenUnknownVertices(t *testing.T) {
	w, _ := NewWindow(2)
	both, err := w.AddEdge(41, 42)
	if err != nil || both {
		t.Fatalf("edge between non-residents = %v,%v; want false,nil", both, err)
	}
}

func TestPropertyWindowInvariants(t *testing.T) {
	// Under random operations: Len <= capacity; the window graph contains
	// exactly the resident vertices; every vertex is evicted exactly once.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 1 + r.Intn(6)
		w, err := NewWindow(cap)
		if err != nil {
			return false
		}
		evicted := map[graph.VertexID]int{}
		added := 0
		for i := 0; i < 60; i++ {
			switch r.Intn(4) {
			case 0, 1: // add vertex
				v := graph.VertexID(added)
				added++
				if ev := w.AddVertex(v, "x"); ev != nil {
					evicted[ev.V]++
				}
			case 2: // add edge between random known vertices
				if added >= 2 {
					u := graph.VertexID(r.Intn(added))
					v := graph.VertexID(r.Intn(added))
					if u != v {
						if _, err := w.AddEdge(u, v); err != nil {
							return false
						}
					}
				}
			case 3: // force eviction
				if ev, ok := w.EvictOldest(); ok {
					evicted[ev.V]++
				}
			}
			if w.Len() > cap {
				return false
			}
			if w.Graph().NumVertices() != w.Len() {
				return false
			}
		}
		for _, ev := range w.Flush() {
			evicted[ev.V]++
		}
		if len(evicted) != added {
			return false
		}
		for _, n := range evicted {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
