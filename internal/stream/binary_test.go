package stream

import (
	"bytes"
	"io"
	"testing"

	"loom/internal/graph"
	"loom/internal/wire"
)

func frameElems() []Element {
	return []Element{
		{Kind: VertexElement, V: 1, Label: "a", Seq: 0},
		{Kind: VertexElement, V: 2, Label: "b", Seq: 1},
		{Kind: EdgeElement, V: 2, U: 1, Seq: 2},
		{Kind: VertexElement, V: -7, Label: "a", Seq: 3}, // negative id, reused label
		{Kind: EdgeElement, V: -7, U: 2, Seq: 4},
	}
}

func encodeFrame(t *testing.T, elems []Element) []byte {
	t.Helper()
	var enc FrameEncoder
	frame, err := enc.AppendFrame(nil, elems)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return frame
}

func decodeFrame(t *testing.T, d *FrameDecoder, frame []byte) *Batch {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(frame))
	var b Batch
	if err := fr.Next(&b); err != nil {
		t.Fatalf("read frame: %v", err)
	}
	if err := d.Decode(&b); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &b
}

func TestBinaryRoundTrip(t *testing.T) {
	elems := frameElems()
	var d FrameDecoder
	b := decodeFrame(t, &d, encodeFrame(t, elems))
	if b.Deduped != 0 {
		t.Fatalf("deduped %d, want 0", b.Deduped)
	}
	if len(b.Elems) != len(elems) {
		t.Fatalf("decoded %d elements, want %d", len(b.Elems), len(elems))
	}
	for i := range elems {
		if b.Elems[i] != elems[i] {
			t.Fatalf("element %d: got %v, want %v", i, b.Elems[i], elems[i])
		}
	}
}

func TestBinaryMultiFrameStream(t *testing.T) {
	elems := frameElems()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteBatch(elems[:2]); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteBatch(elems[2:]); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	var d FrameDecoder
	var got []Element
	var b Batch
	for {
		err := fr.Next(&b)
		if err != nil {
			break
		}
		if derr := d.Decode(&b); derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		got = append(got, b.Elems...)
	}
	if fr.Frames() != 2 {
		t.Fatalf("read %d frames, want 2", fr.Frames())
	}
	if len(got) != len(elems) {
		t.Fatalf("decoded %d elements, want %d", len(got), len(elems))
	}
	for i := range elems {
		if got[i].Kind != elems[i].Kind || got[i].V != elems[i].V || got[i].U != elems[i].U || got[i].Label != elems[i].Label {
			t.Fatalf("element %d: got %v, want %v", i, got[i], elems[i])
		}
	}
}

func TestBinaryDecodeDedup(t *testing.T) {
	elems := []Element{
		{Kind: VertexElement, V: 1, Label: "a"},
		{Kind: VertexElement, V: 2, Label: "b"},
		{Kind: VertexElement, V: 1, Label: "b"}, // dup vertex, different label
		{Kind: EdgeElement, V: 1, U: 2},
		{Kind: EdgeElement, V: 2, U: 1}, // dup edge, reversed
	}
	var d FrameDecoder
	b := decodeFrame(t, &d, encodeFrame(t, elems))
	if b.Deduped != 2 {
		t.Fatalf("deduped %d, want 2", b.Deduped)
	}
	if len(b.Elems) != 3 {
		t.Fatalf("kept %d elements, want 3", len(b.Elems))
	}
	// A second frame with the same ids must not be deduped against the
	// first: the dedup maps are generation-stamped, not cross-frame.
	b2 := decodeFrame(t, &d, encodeFrame(t, elems[:2]))
	if b2.Deduped != 0 || len(b2.Elems) != 2 {
		t.Fatalf("cross-frame dedup leaked: deduped=%d kept=%d", b2.Deduped, len(b2.Elems))
	}
}

func TestBinaryDecodeRejections(t *testing.T) {
	good := encodeFrame(t, frameElems())
	payload := append([]byte(nil), good[wire.HeaderSize:]...)

	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Helper()
		p := mutate(append([]byte(nil), payload...))
		var d FrameDecoder
		b := Batch{Payload: p}
		err := d.DecodePayload(&b)
		if err == nil {
			t.Fatalf("%s: decode accepted", name)
		}
		if want != nil && err != want {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}

	check("bad version", func(p []byte) []byte { p[0] = 99; return p }, ErrFrameVersion)
	check("truncated", func(p []byte) []byte { return p[:len(p)-1] }, ErrFrameTruncated)
	check("trailing", func(p []byte) []byte { return append(p, 0) }, ErrFrameTrailing)
	check("empty", func(p []byte) []byte { return nil }, ErrFrameTruncated)

	// CRC mismatch is caught by Decode (not DecodePayload).
	var d FrameDecoder
	b := Batch{Payload: payload, CRC: 0xdeadbeef}
	if err := d.Decode(&b); err != ErrFrameCRC {
		t.Fatalf("bad CRC: got %v, want %v", err, ErrFrameCRC)
	}

	// Self-loop and dictionary overflow need hand-built payloads: the
	// encoder refuses to emit either.
	self := []byte{BinaryVersion, 0 /* labels */, 1 /* elems */, frameKindEdge, 6 /* zigzag(3) */, 6}
	var d2 FrameDecoder
	if derr := d2.DecodePayload(&Batch{Payload: self}); derr != ErrFrameSelfLoop {
		t.Fatalf("self-loop: got %v, want %v", derr, ErrFrameSelfLoop)
	}

	var enc FrameEncoder
	dict, err := enc.AppendPayload(nil, []Element{{Kind: VertexElement, V: 1, Label: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	// Last byte is the label index 0; bump it past the dictionary.
	dict[len(dict)-1] = 5
	var d3 FrameDecoder
	if derr := d3.DecodePayload(&Batch{Payload: dict}); derr != ErrFrameDictIndex {
		t.Fatalf("dict overflow: got %v, want %v", derr, ErrFrameDictIndex)
	}
}

func TestBinaryEncoderRejectsUnsafe(t *testing.T) {
	var enc FrameEncoder
	if _, err := enc.AppendFrame(nil, []Element{{Kind: VertexElement, V: 1, Label: "a b"}}); err == nil {
		t.Fatal("encoder accepted a non-codec-safe label")
	}
	if _, err := enc.AppendFrame(nil, []Element{{Kind: EdgeElement, V: 4, U: 4}}); err == nil {
		t.Fatal("encoder accepted a self-loop")
	}
}

func TestDecodeFramePayloadRefusesDuplicates(t *testing.T) {
	elems := []Element{
		{Kind: VertexElement, V: 1, Label: "a"},
		{Kind: VertexElement, V: 1, Label: "a"},
	}
	var enc FrameEncoder
	p, err := enc.AppendPayload(nil, elems)
	if err != nil {
		t.Fatal(err)
	}
	if _, derr := DecodeFramePayload(p); derr != ErrFrameDuplicate {
		t.Fatalf("got %v, want %v", derr, ErrFrameDuplicate)
	}
}

func TestFrameReaderTruncation(t *testing.T) {
	frame := encodeFrame(t, frameElems())
	for _, cut := range []int{1, wire.HeaderSize - 1, wire.HeaderSize + 1, len(frame) - 1} {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]))
		var b Batch
		err := fr.Next(&b)
		// A cut frame must surface as an error, never as a clean EOF.
		if err == nil || err == io.EOF {
			t.Fatalf("cut at %d: expected a truncation error, got %v", cut, err)
		}
	}
	// A clean boundary is EOF, not an error.
	fr := NewFrameReader(bytes.NewReader(frame))
	var b Batch
	if err := fr.Next(&b); err != nil {
		t.Fatal(err)
	}
	if err := fr.Next(&b); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

// TestBinaryDecodeSteadyStateAllocs pins the hot decode path at zero
// allocations once the intern cache and dedup maps are warm.
func TestBinaryDecodeSteadyStateAllocs(t *testing.T) {
	elems := frameElems()
	frame := encodeFrame(t, elems)
	payload := frame[wire.HeaderSize:]
	_, crc := wire.ParseHeader(frame[:wire.HeaderSize])
	var d FrameDecoder
	b := &Batch{}
	decode := func() {
		b.Payload = append(b.Payload[:0], payload...)
		b.CRC = crc
		if err := d.Decode(b); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	decode() // warm the caches and grow the buffers
	avg := testing.AllocsPerRun(200, decode)
	if avg != 0 {
		t.Fatalf("steady-state decode allocates %.1f/op, want 0", avg)
	}
}

func TestInternCacheReusesLabels(t *testing.T) {
	var d FrameDecoder
	b1 := decodeFrame(t, &d, encodeFrame(t, []Element{{Kind: VertexElement, V: 1, Label: "shared"}}))
	l1 := b1.Elems[0].Label
	b2 := decodeFrame(t, &d, encodeFrame(t, []Element{{Kind: VertexElement, V: 2, Label: "shared"}}))
	if b2.Elems[0].Label != l1 {
		t.Fatal("label value changed across frames")
	}
	if got := d.intern[string("shared")]; got != graph.Label("shared") {
		t.Fatalf("intern cache holds %q", got)
	}
}
