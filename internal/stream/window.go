package stream

import (
	"fmt"

	"loom/internal/graph"
)

// Window is a count-based sliding window over a graph-stream (paper §4.1,
// footnote 2: windows may be defined in terms of time or element count; we
// use vertex count, which bounds memory independent of edge density).
//
// The window holds the most recent vertices and every stream edge whose
// endpoints are both resident. When capacity is exceeded the oldest vertex
// is evicted; the caller receives the evicted vertex and its
// window-resident incident edges so it can be assigned to a partition.
type Window struct {
	capacity int
	g        *graph.Graph     // window-resident subgraph
	arrival  []graph.VertexID // FIFO arrival order of resident vertices
	resident map[graph.VertexID]struct{}
	deferred map[graph.VertexID][]pendingEdge // edges waiting for an evicted endpoint
}

// pendingEdge records an edge whose other endpoint already left the window;
// it is surfaced to the caller at insertion time so the partitioner can
// still count it toward placement scores.
type pendingEdge struct {
	other graph.VertexID
}

// NewWindow returns a window holding at most capacity vertices
// (capacity >= 1).
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity %d < 1", capacity)
	}
	return &Window{
		capacity: capacity,
		g:        graph.New(),
		resident: make(map[graph.VertexID]struct{}),
		deferred: make(map[graph.VertexID][]pendingEdge),
	}, nil
}

// Len returns the number of resident vertices.
func (w *Window) Len() int { return len(w.arrival) }

// Capacity returns the window's vertex capacity.
func (w *Window) Capacity() int { return w.capacity }

// Graph exposes the window-resident subgraph. Callers must treat it as
// read-only; mutations would desynchronise eviction bookkeeping.
func (w *Window) Graph() *graph.Graph { return w.g }

// Resident reports whether v is currently inside the window.
func (w *Window) Resident(v graph.VertexID) bool {
	_, ok := w.resident[v]
	return ok
}

// Oldest returns the vertex that would be evicted next and whether the
// window is non-empty.
func (w *Window) Oldest() (graph.VertexID, bool) {
	if len(w.arrival) == 0 {
		return 0, false
	}
	return w.arrival[0], true
}

// Eviction describes a vertex leaving the window: the vertex, its label and
// the edges it had to other vertices (resident or already-assigned).
type Eviction struct {
	V     graph.VertexID
	Label graph.Label
	// WindowNeighbors are the still-resident neighbours of V at eviction.
	WindowNeighbors []graph.VertexID
	// AssignedNeighbors are neighbours of V that were evicted earlier
	// (edges to the already-partitioned portion of the graph).
	AssignedNeighbors []graph.VertexID
}

// AddVertex inserts a vertex into the window. If the window is full the
// oldest vertex is evicted first and returned (evicted != nil). Inserting a
// vertex that is already resident only relabels it.
func (w *Window) AddVertex(v graph.VertexID, l graph.Label) *Eviction {
	if w.Resident(v) {
		w.g.AddVertex(v, l)
		return nil
	}
	var ev *Eviction
	if len(w.arrival) >= w.capacity {
		ev = w.evictOldest()
	}
	w.g.AddVertex(v, l)
	w.resident[v] = struct{}{}
	w.arrival = append(w.arrival, v)
	return ev
}

// AddEdge records the stream edge {u,v}.
//
// If both endpoints are resident the edge joins the window subgraph and
// bothResident is true. If one endpoint has already been evicted (assigned),
// the edge is recorded against the resident endpoint so that its eventual
// Eviction lists it in AssignedNeighbors; bothResident is false. Edges whose
// endpoints are both gone are ignored (they were already surfaced).
func (w *Window) AddEdge(u, v graph.VertexID) (bothResident bool, err error) {
	if u == v {
		return false, fmt.Errorf("stream: self-loop {%d,%d}", u, v)
	}
	ur, vr := w.Resident(u), w.Resident(v)
	switch {
	case ur && vr:
		if w.g.HasEdge(u, v) {
			return true, nil
		}
		if err := w.g.AddEdge(u, v); err != nil {
			return false, err
		}
		return true, nil
	case ur:
		w.deferred[u] = append(w.deferred[u], pendingEdge{other: v})
		return false, nil
	case vr:
		w.deferred[v] = append(w.deferred[v], pendingEdge{other: u})
		return false, nil
	default:
		return false, nil
	}
}

// EvictOldest forces eviction of the oldest vertex; ok is false when the
// window is empty.
func (w *Window) EvictOldest() (Eviction, bool) {
	if len(w.arrival) == 0 {
		return Eviction{}, false
	}
	return *w.evictOldest(), true
}

// Evict removes a specific resident vertex (used when LOOM assigns a whole
// motif match at once). It reports false if v is not resident.
func (w *Window) Evict(v graph.VertexID) (Eviction, bool) {
	if !w.Resident(v) {
		return Eviction{}, false
	}
	for i, x := range w.arrival {
		if x == v {
			w.arrival = append(w.arrival[:i], w.arrival[i+1:]...)
			break
		}
	}
	return *w.remove(v), true
}

// Flush evicts every resident vertex in arrival order and returns the
// evictions; used at end-of-stream.
func (w *Window) Flush() []Eviction {
	out := make([]Eviction, 0, len(w.arrival))
	for len(w.arrival) > 0 {
		out = append(out, *w.evictOldest())
	}
	return out
}

func (w *Window) evictOldest() *Eviction {
	v := w.arrival[0]
	w.arrival = w.arrival[1:]
	return w.remove(v)
}

func (w *Window) remove(v graph.VertexID) *Eviction {
	l, _ := w.g.Label(v)
	ev := &Eviction{V: v, Label: l}
	ev.WindowNeighbors = w.g.Neighbors(v)
	for _, pe := range w.deferred[v] {
		ev.AssignedNeighbors = append(ev.AssignedNeighbors, pe.other)
	}
	// Edges from v to still-resident neighbours must outlive v in the
	// window: record them as deferred so each neighbour's own eviction
	// still reports the (by then assigned) endpoint v.
	for _, u := range ev.WindowNeighbors {
		w.deferred[u] = append(w.deferred[u], pendingEdge{other: v})
	}
	delete(w.deferred, v)
	delete(w.resident, v)
	w.g.RemoveVertex(v)
	return ev
}
