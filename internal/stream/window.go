package stream

import (
	"fmt"
	"slices"

	"loom/internal/graph"
	"loom/internal/ident"
)

// Window is a count-based sliding window over a graph-stream (paper §4.1,
// footnote 2: windows may be defined in terms of time or element count; we
// use vertex count, which bounds memory independent of edge density).
//
// The window holds the most recent vertices and every stream edge whose
// endpoints are both resident. When capacity is exceeded the oldest vertex
// is evicted; the caller receives the evicted vertex and its
// window-resident incident edges so it can be assigned to a partition.
//
// Residency is tracked by the window subgraph itself (a vertex is resident
// iff it is in the graph), deferred edges live in a handle-indexed slice,
// and the arrival queue is a ring buffer. Steady-state churn allocates
// nothing per vertex (handles and slot capacity are recycled); interning a
// stream ID far beyond the window's population does fall back to the
// interner's map path (see ident.Interner), costing one map insert per
// arrival and one delete per eviction.
type Window struct {
	capacity int
	g        *graph.Graph // window-resident subgraph
	// arrival[head:] is the FIFO arrival order of resident vertices.
	arrival []graph.VertexID
	head    int
	// deferred is indexed by the window graph's vertex handle: edges whose
	// other endpoint already left the window, waiting to be surfaced in the
	// resident endpoint's Eviction. Slots are cleared at eviction, so a
	// recycled handle always starts empty.
	deferred [][]graph.VertexID
	// ev is the reusable eviction record: its neighbour slices are scratch
	// buffers overwritten by every eviction, so steady-state churn stays
	// allocation-free. See the lifetime contract on Eviction.
	ev Eviction
}

// NewWindow returns a window holding at most capacity vertices
// (capacity >= 1).
func NewWindow(capacity int) (*Window, error) {
	return NewWindowWithLabels(capacity, ident.NewLabels())
}

// NewWindowWithLabels is NewWindow with a caller-supplied label interner for
// the window subgraph, so LabelIDs agree with other components (LOOM shares
// the signature factory's interner, letting the tracker probe factor tables
// by LabelID without hashing label strings).
func NewWindowWithLabels(capacity int, lab *ident.Labels) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity %d < 1", capacity)
	}
	return &Window{
		capacity: capacity,
		g:        graph.NewWithLabels(lab),
		arrival:  make([]graph.VertexID, 0, capacity+1),
	}, nil
}

// Len returns the number of resident vertices.
func (w *Window) Len() int { return len(w.arrival) - w.head }

// Capacity returns the window's vertex capacity.
func (w *Window) Capacity() int { return w.capacity }

// Graph exposes the window-resident subgraph. Callers must treat it as
// read-only; mutations would desynchronise eviction bookkeeping.
func (w *Window) Graph() *graph.Graph { return w.g }

// Resident reports whether v is currently inside the window.
func (w *Window) Resident(v graph.VertexID) bool {
	return w.g.HasVertex(v)
}

// Oldest returns the vertex that would be evicted next and whether the
// window is non-empty.
func (w *Window) Oldest() (graph.VertexID, bool) {
	if w.Len() == 0 {
		return 0, false
	}
	return w.arrival[w.head], true
}

// Eviction describes a vertex leaving the window: the vertex, its label and
// the edges it had to other vertices (resident or already-assigned).
//
// The neighbour slices returned by AddVertex, EvictOldest and Evict are
// window-owned scratch buffers, valid only until the next eviction; callers
// that retain them must copy. Flush returns independently owned copies.
type Eviction struct {
	V     graph.VertexID
	Label graph.Label
	// WindowNeighbors are the still-resident neighbours of V at eviction.
	WindowNeighbors []graph.VertexID
	// AssignedNeighbors are neighbours of V that were evicted earlier
	// (edges to the already-partitioned portion of the graph).
	AssignedNeighbors []graph.VertexID
}

// deferredSlot returns the deferred-edge slot of a resident vertex's handle,
// growing the table to cover it.
func (w *Window) deferredSlot(h ident.Handle) *[]graph.VertexID {
	for int(h) >= len(w.deferred) {
		w.deferred = append(w.deferred, nil)
	}
	return &w.deferred[h]
}

// pushArrival appends v to the FIFO, compacting the ring when the dead
// prefix dominates.
func (w *Window) pushArrival(v graph.VertexID) {
	if w.head > 0 && len(w.arrival) == cap(w.arrival) {
		n := copy(w.arrival, w.arrival[w.head:])
		w.arrival = w.arrival[:n]
		w.head = 0
	}
	w.arrival = append(w.arrival, v)
}

// AddVertex inserts a vertex into the window. If the window is full the
// oldest vertex is evicted first and returned (evicted != nil). Inserting a
// vertex that is already resident only relabels it.
func (w *Window) AddVertex(v graph.VertexID, l graph.Label) *Eviction {
	if w.Resident(v) {
		w.g.AddVertex(v, l)
		return nil
	}
	var ev *Eviction
	if w.Len() >= w.capacity {
		ev = w.evictOldest()
	}
	w.g.AddVertex(v, l)
	w.pushArrival(v)
	return ev
}

// AddEdge records the stream edge {u,v}.
//
// If both endpoints are resident the edge joins the window subgraph and
// bothResident is true. If one endpoint has already been evicted (assigned),
// the edge is recorded against the resident endpoint so that its eventual
// Eviction lists it in AssignedNeighbors; bothResident is false. Edges whose
// endpoints are both gone are ignored (they were already surfaced).
func (w *Window) AddEdge(u, v graph.VertexID) (bothResident bool, err error) {
	if u == v {
		return false, fmt.Errorf("stream: self-loop {%d,%d}", u, v)
	}
	hu, ur := w.g.HandleOf(u)
	hv, vr := w.g.HandleOf(v)
	switch {
	case ur && vr:
		if w.g.HasEdge(u, v) {
			return true, nil
		}
		if err := w.g.AddEdge(u, v); err != nil {
			return false, err
		}
		return true, nil
	case ur:
		slot := w.deferredSlot(hu)
		*slot = append(*slot, v)
		return false, nil
	case vr:
		slot := w.deferredSlot(hv)
		*slot = append(*slot, u)
		return false, nil
	default:
		return false, nil
	}
}

// EvictOldest forces eviction of the oldest vertex; ok is false when the
// window is empty. The Eviction's neighbour slices are reused by the next
// eviction (see Eviction).
func (w *Window) EvictOldest() (Eviction, bool) {
	if w.Len() == 0 {
		return Eviction{}, false
	}
	return *w.evictOldest(), true
}

// Evict removes a specific resident vertex (used when LOOM assigns a whole
// motif match at once). It reports false if v is not resident. The
// Eviction's neighbour slices are reused by the next eviction (see
// Eviction).
func (w *Window) Evict(v graph.VertexID) (Eviction, bool) {
	if !w.Resident(v) {
		return Eviction{}, false
	}
	for i := w.head; i < len(w.arrival); i++ {
		if w.arrival[i] == v {
			w.arrival = append(w.arrival[:i], w.arrival[i+1:]...)
			break
		}
	}
	return *w.remove(v), true
}

// Discard deletes a resident vertex outright: unlike Evict, none of its
// edges survive it — edges to still-resident neighbours are dropped (not
// deferred), its own deferred edges are cleared, and deferred references
// other residents hold to it are scrubbed so no later eviction surfaces a
// deleted vertex as an AssignedNeighbor. It reports false if v is not
// resident.
func (w *Window) Discard(v graph.VertexID) bool {
	if !w.Resident(v) {
		return false
	}
	for i := w.head; i < len(w.arrival); i++ {
		if w.arrival[i] == v {
			w.arrival = append(w.arrival[:i], w.arrival[i+1:]...)
			break
		}
	}
	h, _ := w.g.HandleOf(v)
	if int(h) < len(w.deferred) {
		w.deferred[h] = w.deferred[h][:0]
	}
	w.g.RemoveVertex(v)
	w.scrubDeferred(v)
	return true
}

// RemoveEdge deletes the stream edge {u,v} from the window's bookkeeping:
// a resident-resident edge leaves the subgraph, an edge deferred against
// one resident endpoint loses one deferred entry, and an edge between two
// already-evicted vertices is a no-op here (the caller unwinds it from
// the assigned portion). It reports whether anything was removed.
func (w *Window) RemoveEdge(u, v graph.VertexID) bool {
	hu, ur := w.g.HandleOf(u)
	hv, vr := w.g.HandleOf(v)
	switch {
	case ur && vr:
		return w.g.RemoveEdge(u, v)
	case ur:
		return w.dropDeferred(hu, v)
	case vr:
		return w.dropDeferred(hv, u)
	}
	return false
}

// dropDeferred removes one deferred entry for endpoint other from handle
// h's slot.
func (w *Window) dropDeferred(h ident.Handle, other graph.VertexID) bool {
	if int(h) >= len(w.deferred) {
		return false
	}
	slot := w.deferred[h]
	for i, x := range slot {
		if x == other {
			w.deferred[h] = append(slot[:i], slot[i+1:]...)
			return true
		}
	}
	return false
}

// ForgetAssigned scrubs every deferred reference residents hold to an
// already-evicted (assigned) vertex that is being deleted, so no later
// eviction surfaces it as an AssignedNeighbor. For resident vertices use
// Discard, which scrubs as part of deletion.
func (w *Window) ForgetAssigned(v graph.VertexID) {
	w.scrubDeferred(v)
}

// scrubDeferred deletes every deferred reference any resident holds to
// the (deleted, formerly assigned or resident) vertex v. Bounded by the
// total deferred volume, i.e. O(window).
func (w *Window) scrubDeferred(v graph.VertexID) {
	for h := range w.deferred {
		slot := w.deferred[h]
		kept := slot[:0]
		for _, x := range slot {
			if x != v {
				kept = append(kept, x)
			}
		}
		w.deferred[h] = kept
	}
}

// Flush evicts every resident vertex in arrival order and returns the
// evictions; used at end-of-stream. Unlike the per-vertex eviction entry
// points, the returned records own their neighbour slices (each one is
// deep-copied out of the scratch buffers before the next eviction reuses
// them).
func (w *Window) Flush() []Eviction {
	out := make([]Eviction, 0, w.Len())
	for w.Len() > 0 {
		ev := *w.evictOldest()
		ev.WindowNeighbors = slices.Clone(ev.WindowNeighbors)
		ev.AssignedNeighbors = slices.Clone(ev.AssignedNeighbors)
		out = append(out, ev)
	}
	return out
}

//loom:hotpath
func (w *Window) evictOldest() *Eviction {
	v := w.arrival[w.head]
	w.head++
	if w.head == len(w.arrival) {
		w.arrival = w.arrival[:0]
		w.head = 0
	}
	return w.remove(v)
}

//loom:hotpath
func (w *Window) remove(v graph.VertexID) *Eviction {
	h, _ := w.g.HandleOf(v)
	l, _ := w.g.Label(v)
	ev := &w.ev
	ev.V, ev.Label = v, l
	ev.WindowNeighbors = w.g.AppendNeighbors(ev.WindowNeighbors[:0], v)
	ev.AssignedNeighbors = ev.AssignedNeighbors[:0]
	if int(h) < len(w.deferred) {
		ev.AssignedNeighbors = append(ev.AssignedNeighbors, w.deferred[h]...)
		w.deferred[h] = w.deferred[h][:0]
	}
	// Edges from v to still-resident neighbours must outlive v in the
	// window: record them as deferred so each neighbour's own eviction
	// still reports the (by then assigned) endpoint v.
	for _, u := range ev.WindowNeighbors {
		uh, _ := w.g.HandleOf(u)
		slot := w.deferredSlot(uh)
		*slot = append(*slot, v)
	}
	w.g.RemoveVertex(v)
	return ev
}
