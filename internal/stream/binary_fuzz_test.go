package stream

import (
	"bytes"
	"fmt"
	"testing"

	"loom/internal/graph"
)

// elemsFromFuzzBytes deterministically derives a valid element batch from
// arbitrary fuzz input: each 4-byte chunk becomes one element. Vertices
// get labels from a small safe alphabet; edges avoid self-loops; removal
// kinds appear with the same weight as inserts so version-2 payloads and
// add/remove alternation get fuzzed. The mapping is total — every input
// produces some batch — so the fuzzer explores batch shapes (dup
// vertices, reversed dup edges, add→remove→re-add runs, label reuse,
// negative ids) rather than input validity.
func elemsFromFuzzBytes(data []byte) []Element {
	labels := []graph.Label{"a", "b", "röd", "x:1"}
	var out []Element
	for i := 0; i+4 <= len(data); i += 4 {
		sel, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
		id := graph.VertexID(int8(a))*64 + graph.VertexID(int8(b))
		u := graph.VertexID(int8(c))
		if u == id {
			u++
		}
		switch sel % 4 {
		case 0:
			out = append(out, Element{
				Kind: VertexElement, V: id,
				Label: labels[int(c)%len(labels)],
				Seq:   len(out),
			})
		case 1:
			out = append(out, Element{Kind: EdgeElement, V: id, U: u, Seq: len(out)})
		case 2:
			out = append(out, Element{Kind: RemoveVertexElement, V: id, Seq: len(out)})
		default:
			out = append(out, Element{Kind: RemoveEdgeElement, V: id, U: u, Seq: len(out)})
		}
	}
	return out
}

// renderText renders elems in the graph-stream text codec, the shape
// FromReader parses.
func renderText(elems []Element) []byte {
	var buf bytes.Buffer
	for i := range elems {
		el := &elems[i]
		switch el.Kind {
		case VertexElement:
			fmt.Fprintf(&buf, "v %d %s\n", el.V, el.Label)
		case EdgeElement:
			fmt.Fprintf(&buf, "e %d %d\n", el.V, el.U)
		case RemoveVertexElement:
			fmt.Fprintf(&buf, "rv %d\n", el.V)
		case RemoveEdgeElement:
			fmt.Fprintf(&buf, "re %d %d\n", el.V, el.U)
		}
	}
	return buf.Bytes()
}

// FuzzBinaryCodec cross-checks the binary codec against the text codec:
// for every derived batch, decode(encode(batch)) through the binary path
// must agree element-for-element with the text path on the deduplicated
// prefix semantics, and decoding the raw fuzz input directly must never
// panic.
func FuzzBinaryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0, 5, 5, 1}, 8))
	// Removal shapes: lone remove-vertex / remove-edge, add→remove→re-add
	// of one vertex (legal alternation), and a remove-remove repeat that
	// must dedup.
	f.Add([]byte{2, 1, 2, 3})
	f.Add([]byte{3, 1, 2, 3})
	f.Add([]byte{0, 1, 2, 3, 2, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{3, 1, 2, 3, 3, 1, 2, 3, 1, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Arbitrary bytes as a frame payload must never panic.
		var dRaw FrameDecoder
		_ = dRaw.DecodePayload(&Batch{Payload: data})

		// 2. Round-trip: decode(encode(batch)) over the binary codec.
		elems := elemsFromFuzzBytes(data)
		var enc FrameEncoder
		payload, err := enc.AppendPayload(nil, elems)
		if err != nil {
			t.Fatalf("encoder refused a generated batch: %v", err)
		}
		var d FrameDecoder
		b := Batch{Payload: payload}
		if derr := d.DecodePayload(&b); derr != nil {
			t.Fatalf("decode(encode(batch)) failed: %v", derr)
		}
		if len(b.Elems)+b.Deduped != len(elems) {
			t.Fatalf("decoded %d + deduped %d != encoded %d", len(b.Elems), b.Deduped, len(elems))
		}

		// 3. Differential against the text codec: parse the same batch
		// through FromReader and apply the binary decoder's dedup rule —
		// last operation per identity wins once, so only a repeat of the
		// SAME operation (add-add or remove-remove) on a vertex id or
		// normalized edge is dropped, while add/remove alternation passes
		// through — the two streams must then be identical, Seq included.
		src := FromReader(bytes.NewReader(renderText(elems)))
		const opRemove, opAdd = 1, 2 // 0 = identity unseen this frame
		seenV := make(map[graph.VertexID]int)
		seenE := make(map[graph.Edge]int)
		var want []Element
		for {
			el, ok := src.Next()
			if !ok {
				break
			}
			switch el.Kind {
			case VertexElement, RemoveVertexElement:
				op := opAdd
				if el.Kind == RemoveVertexElement {
					op = opRemove
				}
				if seenV[el.V] == op {
					continue
				}
				seenV[el.V] = op
			default:
				op := opAdd
				if el.Kind == RemoveEdgeElement {
					op = opRemove
				}
				e := graph.Edge{U: el.V, V: el.U}.Normalize()
				if seenE[e] == op {
					continue
				}
				seenE[e] = op
			}
			el.Seq = len(want)
			want = append(want, el)
		}
		if err := src.Err(); err != nil {
			t.Fatalf("text codec rejected a batch the binary codec accepts: %v", err)
		}
		if len(want) != len(b.Elems) {
			t.Fatalf("text path kept %d elements, binary path %d", len(want), len(b.Elems))
		}
		for i := range want {
			if want[i] != b.Elems[i] {
				t.Fatalf("element %d: text %v, binary %v", i, want[i], b.Elems[i])
			}
		}

		// 4. Re-encoding the decoded batch must produce a payload that
		// decodes to the same elements (stability).
		payload2, err := enc.AppendPayload(nil, b.Elems)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		elems2, err := DecodeFramePayload(payload2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(elems2) != len(b.Elems) {
			t.Fatalf("re-decode kept %d elements, want %d", len(elems2), len(b.Elems))
		}
		for i := range elems2 {
			if elems2[i] != b.Elems[i] {
				t.Fatalf("re-decode element %d: %v, want %v", i, elems2[i], b.Elems[i])
			}
		}
	})
}
