package stream

import (
	"testing"

	"loom/internal/graph"
)

func constLabeler(graph.VertexID) graph.Label { return "x" }

func TestNewLiveSourceValidation(t *testing.T) {
	if _, err := NewLiveSource(10, 0, constLabeler, 1); err == nil {
		t.Fatal("mPer 0 should be rejected")
	}
	if _, err := NewLiveSource(3, 3, constLabeler, 1); err == nil {
		t.Fatal("mPer >= total should be rejected")
	}
	if _, err := NewLiveSource(10, 2, nil, 1); err == nil {
		t.Fatal("nil labeler should be rejected")
	}
}

func TestLiveSourceShape(t *testing.T) {
	n, m := 200, 2
	src, err := NewLiveSource(n, m, constLabeler, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, elems, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), n)
	}
	// Same edge count as the batch BA generator: seed clique + m per
	// later vertex.
	seed := m + 1
	wantEdges := seed*(seed-1)/2 + (n-seed)*m
	if g.NumEdges() != wantEdges {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Stream validity: every edge follows both endpoints; Seq strictly
	// increasing.
	seen := map[graph.VertexID]bool{}
	for i, el := range elems {
		if el.Seq != i {
			t.Fatalf("Seq gap at %d", i)
		}
		switch el.Kind {
		case VertexElement:
			if seen[el.V] {
				t.Fatalf("vertex %d emitted twice", el.V)
			}
			seen[el.V] = true
		case EdgeElement:
			if !seen[el.V] || !seen[el.U] {
				t.Fatalf("edge %v before its endpoints", el)
			}
		}
	}
	if src.Emitted() != n {
		t.Fatalf("Emitted = %d, want %d", src.Emitted(), n)
	}
}

func TestLiveSourceDeterministic(t *testing.T) {
	mk := func() []Element {
		src, err := NewLiveSource(100, 2, constLabeler, 42)
		if err != nil {
			t.Fatal(err)
		}
		_, elems, err := Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		return elems
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLiveSourceSkewedDegrees(t *testing.T) {
	src, err := NewLiveSource(2000, 2, constLabeler, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("live BA should be skewed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestLiveSourceExhausted(t *testing.T) {
	src, err := NewLiveSource(3, 1, constLabeler, 1)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		count++
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source should stay exhausted")
	}
	// 3 vertices + edges (clique among first 2 = 1 edge, third attaches
	// to 1) = 3 + 2.
	if count != 5 {
		t.Fatalf("elements = %d, want 5", count)
	}
}
