package stream

import (
	"bytes"
	"fmt"
	"testing"

	"loom/internal/graph"
)

// BenchmarkWindowEvict measures steady-state window churn: each iteration
// adds one vertex and a chain edge to a full window, forcing one eviction.
func BenchmarkWindowEvict(b *testing.B) {
	w, err := NewWindow(256)
	if err != nil {
		b.Fatal(err)
	}
	labels := []graph.Label{"a", "b", "c", "d"}
	for i := 0; i < 256; i++ {
		w.AddVertex(graph.VertexID(i), labels[i%4])
		if i > 0 {
			if _, err := w.AddEdge(graph.VertexID(i-1), graph.VertexID(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 256; i < 256+b.N; i++ {
		if ev := w.AddVertex(graph.VertexID(i), labels[i%4]); ev == nil {
			b.Fatal("expected eviction from full window")
		}
		if _, err := w.AddEdge(graph.VertexID(i-1), graph.VertexID(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// codecElems builds the shared codec benchmark stream: a vertex chain
// with one edge per vertex after the first, the same element mix the
// ingest benchmarks use.
func codecElems() []Element {
	labels := []graph.Label{"a", "b", "c", "d"}
	elems := make([]Element, 0, 2*4096)
	for i := 0; i < 4096; i++ {
		elems = append(elems, Element{Kind: VertexElement, V: graph.VertexID(i), Label: labels[i%4]})
		if i > 0 {
			elems = append(elems, Element{Kind: EdgeElement, V: graph.VertexID(i - 1), U: graph.VertexID(i)})
		}
	}
	return elems
}

// BenchmarkDecodeText measures the text codec alone: scan + parse of the
// line protocol, no window or partitioner behind it. Pair with
// BenchmarkDecodeFrames for the wire-protocol speedup in isolation.
func BenchmarkDecodeText(b *testing.B) {
	elems := codecElems()
	var text bytes.Buffer
	for i := range elems {
		el := &elems[i]
		if el.Kind == VertexElement {
			fmt.Fprintf(&text, "v %d %s\n", el.V, el.Label)
		} else {
			fmt.Fprintf(&text, "e %d %d\n", el.V, el.U)
		}
	}
	b.SetBytes(int64(text.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := FromReader(bytes.NewReader(text.Bytes()))
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if err := src.Err(); err != nil {
			b.Fatal(err)
		}
		if n != len(elems) {
			b.Fatalf("decoded %d of %d elements", n, len(elems))
		}
	}
	b.ReportMetric(float64(len(elems)), "elems/op")
}

// BenchmarkDecodeFrames measures the binary codec alone: frame framing,
// CRC verification, varint parsing, label dictionary resolution and
// dedup, on a per-goroutine decoder with warm scratch.
func BenchmarkDecodeFrames(b *testing.B) {
	elems := codecElems()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for start := 0; start < len(elems); start += 512 {
		end := min(start+512, len(elems))
		if err := fw.WriteBatch(elems[start:end]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	var dec FrameDecoder
	var batch Batch
	for i := 0; i < b.N; i++ {
		fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
		n := 0
		for {
			err := fr.Next(&batch)
			if err != nil {
				break
			}
			if err := dec.Decode(&batch); err != nil {
				b.Fatal(err)
			}
			n += len(batch.Elems)
		}
		if n != len(elems) {
			b.Fatalf("decoded %d of %d elements", n, len(elems))
		}
	}
	b.ReportMetric(float64(len(elems)), "elems/op")
}
