package stream

import (
	"testing"

	"loom/internal/graph"
)

// BenchmarkWindowEvict measures steady-state window churn: each iteration
// adds one vertex and a chain edge to a full window, forcing one eviction.
func BenchmarkWindowEvict(b *testing.B) {
	w, err := NewWindow(256)
	if err != nil {
		b.Fatal(err)
	}
	labels := []graph.Label{"a", "b", "c", "d"}
	for i := 0; i < 256; i++ {
		w.AddVertex(graph.VertexID(i), labels[i%4])
		if i > 0 {
			if _, err := w.AddEdge(graph.VertexID(i-1), graph.VertexID(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 256; i < 256+b.N; i++ {
		if ev := w.AddVertex(graph.VertexID(i), labels[i%4]); ev == nil {
			b.Fatal("expected eviction from full window")
		}
		if _, err := w.AddEdge(graph.VertexID(i-1), graph.VertexID(i)); err != nil {
			b.Fatal(err)
		}
	}
}
