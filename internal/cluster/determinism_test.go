package cluster

import (
	"testing"

	"loom/internal/graph"
)

// The cluster executor sits downstream of the subgraph matcher (iso), whose
// candidate enumeration was audited for map-order sensitivity in the lint
// sweep: cluster itself ranges over no maps, and iso's adjacency-consistency
// predicate is a pure conjunction, so order cannot leak into verdicts. This
// replay pins that down end to end: executing the same patterns against the
// same placement must reproduce identical match and traversal counts.
func TestExecuteReplayIdentical(t *testing.T) {
	patterns := []*graph.Graph{
		graph.Cycle("a", "b", "a", "b"),
		graph.Path("a", "b", "a"),
		graph.Path("b", "a", "b", "a"),
	}
	type outcome struct {
		res        Result
		cut, total int
	}
	var first []outcome
	for run := 0; run < 5; run++ {
		g, a := fig1Split(t)
		c, err := New(g, a, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]outcome, 0, len(patterns))
		for _, p := range patterns {
			o := outcome{res: c.Execute(p)}
			o.cut, o.total = c.MatchCut(p)
			out = append(out, o)
		}
		if first == nil {
			first = out
			continue
		}
		for i := range out {
			if out[i] != first[i] {
				t.Fatalf("run %d pattern %d: %+v, first run %+v", run, i, out[i], first[i])
			}
		}
	}
}
