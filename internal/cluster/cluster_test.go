package cluster

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
)

// fig1Split places the Fig.1 graph with the q1 square {1,2,5,6} on
// partition 0 and the rest on partition 1.
func fig1Split(t *testing.T) (*graph.Graph, *partition.Assignment) {
	t.Helper()
	g := graph.Fig1Graph()
	a := partition.MustNewAssignment(2)
	for _, v := range []graph.VertexID{1, 2, 5, 6} {
		if err := a.Set(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.VertexID{3, 4, 7, 8} {
		if err := a.Set(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g, a
}

func TestNewRequiresFullAssignment(t *testing.T) {
	g := graph.Fig1Graph()
	a := partition.MustNewAssignment(2)
	if _, err := New(g, a, DefaultCostModel()); err == nil {
		t.Fatal("unassigned vertices should be rejected")
	}
}

func TestExecuteSquareStaysLocal(t *testing.T) {
	g, a := fig1Split(t)
	c, err := New(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	q1 := graph.Cycle("a", "b", "a", "b")
	res := c.Execute(q1)
	if res.Matches != 1 {
		t.Fatalf("matches = %d, want 1", res.Matches)
	}
	// The square lives wholly on partition 0: its match edges are never
	// cross-partition.
	cut, total := c.MatchCut(q1)
	if total != 4 || cut != 0 {
		t.Fatalf("match cut = %d/%d, want 0/4", cut, total)
	}
}

func TestExecutePathCrossesSplit(t *testing.T) {
	g, a := fig1Split(t)
	c, err := New(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// q2 = abc: matches 1-2-3 and 6-2-3; the 2-3 edge crosses partitions.
	q2 := graph.Path("a", "b", "c")
	cut, total := c.MatchCut(q2)
	if total != 4 {
		t.Fatalf("total match edges = %d, want 4", total)
	}
	if cut != 2 {
		t.Fatalf("cut match edges = %d, want 2 (the 2-3 edge of both matches)", cut)
	}
	res := c.Execute(q2)
	if res.Traversals == 0 || res.CrossTraversals == 0 {
		t.Fatalf("expected traversals and crossings: %+v", res)
	}
	if res.CrossTraversals > res.Traversals {
		t.Fatal("crossings cannot exceed traversals")
	}
	if res.Visits < res.Traversals {
		t.Fatal("visits cannot be fewer than traversals")
	}
	if p := res.TraversalProbability(); p <= 0 || p > 1 {
		t.Fatalf("probability %v out of (0,1]", p)
	}
}

func TestLatencyModel(t *testing.T) {
	g, a := fig1Split(t)
	costs := CostModel{IntraHop: 1, InterHop: 1000}
	c, err := New(g, a, costs)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Execute(graph.Path("a", "b", "c"))
	wantLat := int64(res.Traversals-res.CrossTraversals)*1 + int64(res.CrossTraversals)*1000
	if int64(res.Latency) != wantLat {
		t.Fatalf("latency = %d, want %d", res.Latency, wantLat)
	}
}

func TestTraversalProbabilityZeroOnNoTraversals(t *testing.T) {
	var r Result
	if r.TraversalProbability() != 0 {
		t.Fatal("zero traversals should give probability 0")
	}
}

func TestRunWorkloadAggregates(t *testing.T) {
	g, a := fig1Split(t)
	c, err := New(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	w := query.Fig1Workload()
	res := c.RunWorkload(w, 30, rand.New(rand.NewSource(31)))
	if res.Executions != 30 {
		t.Fatalf("executions = %d, want 30", res.Executions)
	}
	if len(res.PerQuery) == 0 {
		t.Fatal("per-query results missing")
	}
	if res.Aggregate.Matches == 0 {
		t.Fatal("expected matches")
	}
	if p := res.TraversalProbability(); p < 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
	if f := res.MatchCutFraction(); f < 0 || f > 1 {
		t.Fatalf("match cut fraction %v out of range", f)
	}
}

func TestRunWorkloadExhaustiveDeterministic(t *testing.T) {
	g, a := fig1Split(t)
	c, err := New(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	w := query.Fig1Workload()
	r1 := c.RunWorkloadExhaustive(w)
	r2 := c.RunWorkloadExhaustive(w)
	if r1.TraversalProbability() != r2.TraversalProbability() {
		t.Fatal("exhaustive run must be deterministic")
	}
	if r1.Executions != 3 {
		t.Fatalf("executions = %d, want 3", r1.Executions)
	}
	if len(r1.PerQuery) != 3 {
		t.Fatalf("per-query entries = %d, want 3", len(r1.PerQuery))
	}
}

func TestBetterPlacementLowersProbability(t *testing.T) {
	// Compare the motif-aware split against a deliberately bad split that
	// cuts the square: traversal probability must be lower for the former.
	g, good := fig1Split(t)
	bad := partition.MustNewAssignment(2)
	// Split the square down the middle.
	for _, v := range []graph.VertexID{1, 5, 3, 7} {
		if err := bad.Set(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.VertexID{2, 6, 4, 8} {
		if err := bad.Set(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	w := query.Fig1Workload()
	cg, err := New(g, good, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := New(g, bad, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	pg := cg.RunWorkloadExhaustive(w).TraversalProbability()
	pb := cb.RunWorkloadExhaustive(w).TraversalProbability()
	t.Logf("probability: good=%.3f bad=%.3f", pg, pb)
	if pg >= pb {
		t.Fatalf("good placement %.3f should beat bad %.3f", pg, pb)
	}
}
