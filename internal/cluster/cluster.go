// Package cluster simulates the distributed graph database a partitioning
// would be deployed into, so that the paper's target quantity — the
// probability that executing a query causes inter-partition traversals —
// can be measured exactly.
//
// The substitution (documented in DESIGN.md): instead of a networked GDBMS
// such as Titan, the cluster holds the whole graph plus the partition
// assignment and instruments the exact sub-graph isomorphism engine of
// package iso. Every accepted extension of a partial match from one data
// vertex to another is a traversal; a traversal whose endpoints live on
// different partitions is an inter-partition traversal, costing a network
// message. Candidate probes that are inspected and rejected are accounted
// separately as visits. Latency follows a simple per-hop cost model.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"loom/internal/graph"
	"loom/internal/iso"
	"loom/internal/partition"
	"loom/internal/query"
)

// CostModel assigns time costs to simulated operations.
type CostModel struct {
	// IntraHop is the cost of a traversal within a partition.
	IntraHop time.Duration
	// InterHop is the cost of a traversal crossing partitions (a network
	// round trip in a real deployment).
	InterHop time.Duration
}

// DefaultCostModel reflects the common two-orders-of-magnitude gap between
// in-memory pointer chasing and a datacenter round trip.
func DefaultCostModel() CostModel {
	return CostModel{IntraHop: 1 * time.Microsecond, InterHop: 100 * time.Microsecond}
}

// DefaultMappingLimit bounds the mappings enumerated per query execution.
// Highly symmetric patterns on dense graphs can have millions of matches;
// traversal probabilities converge long before that, so executions stop
// after this many mappings unless the caller raises the limit.
const DefaultMappingLimit = 100000

// Cluster is a simulated partitioned graph store.
type Cluster struct {
	g     *graph.Graph
	a     *partition.Assignment
	costs CostModel
	// MappingLimit caps mappings enumerated per Execute/MatchCut call;
	// <= 0 means unlimited. New initialises it to DefaultMappingLimit.
	MappingLimit int
}

// New returns a cluster over graph g partitioned by a. Every vertex of g
// must be assigned.
func New(g *graph.Graph, a *partition.Assignment, costs CostModel) (*Cluster, error) {
	for _, v := range g.Vertices() {
		if !a.Assigned(v) {
			return nil, fmt.Errorf("cluster: vertex %d unassigned", v)
		}
	}
	return &Cluster{g: g, a: a, costs: costs, MappingLimit: DefaultMappingLimit}, nil
}

// limit converts MappingLimit to an iso.Options limit.
func (c *Cluster) limit() int {
	if c.MappingLimit <= 0 {
		return 0
	}
	return c.MappingLimit
}

// Result accounts one query execution.
type Result struct {
	// Matches is the number of distinct sub-graphs returned.
	Matches int
	// Traversals counts accepted match extensions (graph hops).
	Traversals int
	// CrossTraversals counts hops whose endpoints are on different
	// partitions.
	CrossTraversals int
	// Visits counts candidate vertices inspected during search.
	Visits int
	// CrossVisits counts inspected candidates on a different partition
	// than the anchor.
	CrossVisits int
	// Latency is the modelled execution time.
	Latency time.Duration
}

// TraversalProbability returns CrossTraversals / Traversals (0 when no
// traversals occurred).
func (r Result) TraversalProbability() float64 {
	if r.Traversals == 0 {
		return 0
	}
	return float64(r.CrossTraversals) / float64(r.Traversals)
}

// add accumulates other into r.
func (r *Result) add(other Result) {
	r.Matches += other.Matches
	r.Traversals += other.Traversals
	r.CrossTraversals += other.CrossTraversals
	r.Visits += other.Visits
	r.CrossVisits += other.CrossVisits
	r.Latency += other.Latency
}

// Execute runs one pattern query against the cluster and accounts its
// traversals.
func (c *Cluster) Execute(pattern *graph.Graph) Result {
	var res Result
	opts := iso.Options{
		Limit: c.limit(),
		OnTraverse: func(from, to graph.VertexID) {
			res.Traversals++
			if c.a.Get(from) != c.a.Get(to) {
				res.CrossTraversals++
				res.Latency += c.costs.InterHop
			} else {
				res.Latency += c.costs.IntraHop
			}
		},
		OnVisit: func(from, to graph.VertexID) {
			res.Visits++
			if c.a.Get(from) != c.a.Get(to) {
				res.CrossVisits++
			}
		},
	}
	res.Matches = len(iso.DistinctMatches(pattern, c.g, opts))
	return res
}

// MatchCut accounts the partition quality of the result sub-graphs
// themselves: of all edges belonging to distinct matches of pattern, how
// many cross partitions. This is the static counterpart of Execute's
// dynamic traversal counts.
func (c *Cluster) MatchCut(pattern *graph.Graph) (cut, total int) {
	for _, m := range iso.DistinctMatches(pattern, c.g, iso.Options{Limit: c.limit()}) {
		for _, e := range m.Edges {
			total++
			if c.a.Get(e.U) != c.a.Get(e.V) {
				cut++
			}
		}
	}
	return cut, total
}

// WorkloadResult aggregates execution of a query workload.
type WorkloadResult struct {
	// Executions is the number of queries run.
	Executions int
	// Aggregate accumulates all per-query results.
	Aggregate Result
	// PerQuery maps query ID to its accumulated result.
	PerQuery map[string]*Result
	// MatchEdgeCut / MatchEdgeTotal aggregate MatchCut over the workload,
	// weighted by execution count.
	MatchEdgeCut   int
	MatchEdgeTotal int
}

// TraversalProbability returns the workload-level probability that a
// traversal crosses partitions.
func (w WorkloadResult) TraversalProbability() float64 {
	return w.Aggregate.TraversalProbability()
}

// MatchCutFraction returns the fraction of result-sub-graph edges that
// cross partitions.
func (w WorkloadResult) MatchCutFraction() float64 {
	if w.MatchEdgeTotal == 0 {
		return 0
	}
	return float64(w.MatchEdgeCut) / float64(w.MatchEdgeTotal)
}

// RunWorkload samples n query executions from the workload (by frequency)
// and accumulates results. Deterministic for a given rand source.
func (c *Cluster) RunWorkload(w *query.Workload, n int, r *rand.Rand) WorkloadResult {
	out := WorkloadResult{PerQuery: make(map[string]*Result)}
	queries := w.Queries()
	for i := 0; i < n; i++ {
		qi := w.Sample(r)
		if qi < 0 {
			break
		}
		q := queries[qi]
		res := c.Execute(q.Pattern)
		cut, total := c.MatchCut(q.Pattern)
		out.MatchEdgeCut += cut
		out.MatchEdgeTotal += total
		out.Executions++
		out.Aggregate.add(res)
		pq, ok := out.PerQuery[q.ID]
		if !ok {
			pq = &Result{}
			out.PerQuery[q.ID] = pq
		}
		pq.add(res)
	}
	return out
}

// RunWorkloadExhaustive executes every query exactly once, weighting the
// aggregate by each query's normalised frequency. Unlike RunWorkload it is
// sampling-noise free, at the cost of integer counts becoming weighted
// (rounded) sums; use it when comparing partitioners on identical terms.
func (c *Cluster) RunWorkloadExhaustive(w *query.Workload) WorkloadResult {
	out := WorkloadResult{PerQuery: make(map[string]*Result)}
	var wTrav, wCross, wCut, wTotal float64
	for i, q := range w.Queries() {
		f := w.Frequency(i)
		res := c.Execute(q.Pattern)
		cut, total := c.MatchCut(q.Pattern)
		out.Executions++
		pq := res
		out.PerQuery[q.ID] = &pq
		wTrav += f * float64(res.Traversals)
		wCross += f * float64(res.CrossTraversals)
		wCut += f * float64(cut)
		wTotal += f * float64(total)
		out.Aggregate.Matches += res.Matches
		out.Aggregate.Visits += res.Visits
		out.Aggregate.CrossVisits += res.CrossVisits
		out.Aggregate.Latency += res.Latency
	}
	// Store weighted traversal counts scaled to preserve the probability.
	const scale = 1 << 20
	out.Aggregate.Traversals = int(wTrav * scale)
	out.Aggregate.CrossTraversals = int(wCross * scale)
	out.MatchEdgeCut = int(wCut * scale)
	out.MatchEdgeTotal = int(wTotal * scale)
	return out
}
