// Package chaos is the randomized fault-schedule harness over the
// serving and durability layers. One Run is a whole adversarial life of
// a durable server, replayable from its seed: a generated graph stream
// is driven through ingest/drain/checkpoint/restream operations while a
// seeded failpoint registry injects ENOSPC, torn writes and fsync
// failures, the server is crash-stopped and recovered at random points,
// and the self-healing re-anchor timer is fired deterministically by the
// harness instead of a wall clock.
//
// The harness keeps a durability ledger: every applied operation is
// recorded with whether the server acknowledged it durable, and the
// durable prefix is re-derived at each crash (snapshot-covered history
// plus the acked WAL tail behind it). At the end the surviving
// operation history is replayed fault-free into a fresh control server,
// and the chaos survivor must serve identically — every placement and
// every replayable counter. That is the package's one theorem: no
// acknowledged operation is ever lost, and recovery converges to the
// never-faulted timeline.
//
// The fault registry is process-wide, so Runs must not execute
// concurrently with each other or with other registry users.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"loom/internal/core"
	"loom/internal/fault"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/serve"
	"loom/internal/stream"
)

// Options parameterises one chaos run.
type Options struct {
	// Scratch is the directory temp data directories are created under
	// (required; tests pass t.TempDir()).
	Scratch string
	// Vertices is the generated graph size (0 = 220).
	Vertices int
	// MaxIters caps driver iterations as a hang backstop (0 = 512).
	MaxIters int
}

// Report summarises what one run exercised.
type Report struct {
	Seed       int64
	K          int
	Elements   int
	Ops        int // applied operations in the final history
	Batches    int // applied batch ops
	Binary     int // batch ops driven through the binary wire path
	Removals   int // removal elements spliced into the schedule
	Readds     int // removed vertices re-added (ident-handle recycling)
	Refused    int // batches refused before application (wedge/accept)
	Unacked    int // ops applied but not acknowledged durable
	Crashes    int
	Reanchors  int // self-healing snapshot attempts fired by the harness
	Restreams  int
	Injections int // failpoint triggers across all sites
}

type opKind int

const (
	opBatch opKind = iota
	opDrain
	opBarrier // explicit checkpoint or a fired self-healing re-anchor
	opRestream
)

// op is one applied operation in the durability ledger.
type op struct {
	kind  opKind
	elems []stream.Element // opBatch only
	acked bool
}

// Sentinel errors armed on the request-refusing failpoints, so the
// driver can tell "refused before touching state" from "applied but the
// durability acknowledgement failed".
var (
	errAcceptRefused  = errors.New("chaos: accept failpoint refused the batch")
	errBarrierRefused = errors.New("chaos: barrier failpoint refused the checkpoint")
	errDecodeRefused  = errors.New("chaos: decode failpoint poisoned the frame")
)

// timerHook is the injected ReanchorPolicy.Timer: retries fire when the
// harness says so, never from a wall clock.
type timerHook struct {
	mu    sync.Mutex
	chs   []chan time.Time
	fired int
}

func (h *timerHook) timer(time.Duration) <-chan time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan time.Time, 1)
	h.chs = append(h.chs, ch)
	return ch
}

func (h *timerHook) unfired() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.chs) - h.fired
}

func (h *timerHook) fireNext() {
	h.mu.Lock()
	ch := h.chs[h.fired]
	h.fired++
	h.mu.Unlock()
	ch <- time.Time{}
}

// spinBudget bounds every wait: ~tens of millions of yields before the
// harness declares a hang instead of blocking forever.
const spinBudget = 1 << 26

func spinUntil(cond func() bool) bool {
	for i := 0; i < spinBudget; i++ {
		if cond() {
			return true
		}
		runtime.Gosched()
	}
	return cond()
}

// buildRegistry arms the randomized fault schedule. Probabilities are
// drawn from the registry's own seeded RNG at hit time, so the schedule
// is a pure function of the seed and the (deterministic) hit sequence.
func buildRegistry(seed int64) *fault.Registry {
	r := fault.NewRegistry(seed)
	r.FailProb(fault.WALAppend, fault.ErrNoSpace, 0.03)
	r.Add(fault.WALFrameWrite, fault.Rule{Prob: 0.02, Injection: fault.Injection{Err: fault.ErrNoSpace, ShortWrite: 5}})
	r.FailProb(fault.WALSync, fault.ErrNoSpace, 0.02)
	r.FailProb(fault.SnapWrite, fault.ErrNoSpace, 0.10)
	r.FailProb(fault.SnapSync, fault.ErrNoSpace, 0.05)
	r.FailProb(fault.SnapRename, fault.ErrNoSpace, 0.05)
	r.FailProb(fault.SegPrune, fault.ErrNoSpace, 0.15)
	r.FailProb(fault.ServeSwap, fault.ErrNoSpace, 0.20)
	r.FailProb(fault.ServeBarrier, errBarrierRefused, 0.08)
	r.FailProb(fault.ServeAccept, errAcceptRefused, 0.04)
	r.FailProb(fault.WireDecode, errDecodeRefused, 0.03)
	return r
}

// serveConfig is the (deterministic) serving configuration shared by the
// chaos server, every post-crash incarnation, and the control.
func serveConfig(w *query.Workload, alphabet []graph.Label, n, k int, hook *timerHook) serve.Config {
	return serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
		Reanchor: serve.ReanchorPolicy{
			Enabled: true,
			Initial: time.Millisecond,
			Max:     8 * time.Millisecond,
			Timer:   hook.timer,
		},
	}
}

// fingerprint is the replayable slice of Stats: everything excluded here
// is either wall-clock (restream durations), live plumbing (mailbox,
// admission, persistence counters) or documented as non-replayable
// (Epoch publication counts, Rejected — wedge refusals inflate it on the
// chaos side only).
type fingerprint struct {
	K             int
	Ingested      int64
	Vertices      int
	Edges         int
	Assigned      int
	PendingWindow int
	ObservedEdges int
	CutEdges      int
	Restreams     int
	Sizes         []int
}

func fingerprintOf(st serve.Stats) fingerprint {
	return fingerprint{
		K:             st.K,
		Ingested:      st.Ingested,
		Vertices:      st.Vertices,
		Edges:         st.Edges,
		Assigned:      st.Assigned,
		PendingWindow: st.PendingWindow,
		ObservedEdges: st.ObservedEdges,
		CutEdges:      st.CutEdges,
		Restreams:     st.Restreams,
		Sizes:         st.Sizes,
	}
}

func (a fingerprint) equal(b fingerprint) bool {
	if a.K != b.K || a.Ingested != b.Ingested || a.Vertices != b.Vertices ||
		a.Edges != b.Edges || a.Assigned != b.Assigned || a.PendingWindow != b.PendingWindow ||
		a.ObservedEdges != b.ObservedEdges || a.CutEdges != b.CutEdges || a.Restreams != b.Restreams ||
		len(a.Sizes) != len(b.Sizes) {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			return false
		}
	}
	return true
}

// injectChurn splices removal (and re-add) elements into an insert-only
// stream, so the chaos schedule drives the full deletion surface through
// its randomized op mix: removals of resident and assigned vertices, edge
// removals, and ident-handle recycling via remove→re-add of the same ID —
// across both ingest front doors, crashes, recoveries and restreams. Any
// rejections the removals provoke later in the stream (edges into a
// removed vertex) are part of the timeline and reproduce identically in
// the control replay.
func injectChurn(elems []stream.Element, rng *rand.Rand, rep *Report) []stream.Element {
	out := make([]stream.Element, 0, len(elems)+len(elems)/8)
	labels := make(map[graph.VertexID]graph.Label)
	var liveV []graph.VertexID
	var liveE [][2]graph.VertexID
	for _, el := range elems {
		out = append(out, el)
		switch el.Kind {
		case stream.VertexElement:
			labels[el.V] = el.Label
			liveV = append(liveV, el.V)
		case stream.EdgeElement:
			liveE = append(liveE, [2]graph.VertexID{el.V, el.U})
		}
		x := rng.Float64()
		switch {
		case x < 0.04 && len(liveV) > 0:
			i := rng.Intn(len(liveV))
			v := liveV[i]
			liveV[i] = liveV[len(liveV)-1]
			liveV = liveV[:len(liveV)-1]
			// The vertex takes its incident edges with it.
			kept := liveE[:0]
			for _, e := range liveE {
				if e[0] != v && e[1] != v {
					kept = append(kept, e)
				}
			}
			liveE = kept
			out = append(out, stream.Element{Kind: stream.RemoveVertexElement, V: v})
			rep.Removals++
			if rng.Float64() < 0.5 {
				// Re-add under the same ID: the serving stack must hand the
				// recycled handle a fresh, unplaced identity.
				out = append(out, stream.Element{Kind: stream.VertexElement, V: v, Label: labels[v]})
				liveV = append(liveV, v)
				rep.Readds++
			}
		case x < 0.08 && len(liveE) > 0:
			i := rng.Intn(len(liveE))
			e := liveE[i]
			liveE[i] = liveE[len(liveE)-1]
			liveE = liveE[:len(liveE)-1]
			out = append(out, stream.Element{Kind: stream.RemoveEdgeElement, V: e[0], U: e[1]})
			rep.Removals++
		}
	}
	return out
}

// Run executes one seeded chaos schedule and returns its report, or an
// error describing the first violated invariant.
func Run(seed int64, opts Options) (*Report, error) {
	if opts.Scratch == "" {
		return nil, errors.New("chaos: Options.Scratch is required")
	}
	n := opts.Vertices
	if n == 0 {
		n = 220
	}
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 512
	}
	rng := rand.New(rand.NewSource(seed))
	k := 2 + rng.Intn(3)

	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(n, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}, rng)
	if err != nil {
		return nil, fmt.Errorf("chaos: generate: %w", err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(8), alphabet, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, fmt.Errorf("chaos: workload: %w", err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: stream: %w", err)
	}
	rep := &Report{Seed: seed, K: k}
	elems = injectChurn(elems, rand.New(rand.NewSource(seed+2)), rep)
	rep.Elements = len(elems)

	dir, err := os.MkdirTemp(opts.Scratch, "chaos-run-")
	if err != nil {
		return nil, err
	}
	reg := buildRegistry(seed ^ 0x5eed)

	hook := &timerHook{}
	srv, err := serve.Open(serveConfig(w, alphabet, n, k, hook), serve.PersistOptions{Dir: dir})
	if err != nil {
		return nil, fmt.Errorf("chaos: open: %w", err)
	}
	stopped := false
	defer func() {
		fault.Disable()
		if !stopped {
			srv.Abort()
		}
	}()

	var history []op
	var frameEnc stream.FrameEncoder
	var frameBuf []byte
	lastDurable := 0
	snapsSeen := srv.Stats().Persist.Snapshots
	cursor := 0
	crashAt := 5 + rng.Intn(30)
	reanchorBase := int64(0) // attempts carried by previous incarnations

	// durablePrefix is what a crash right now must preserve: everything a
	// snapshot covered, plus the acked (fsynced WAL) ops behind it up to
	// the first unacknowledged one.
	durablePrefix := func() []op {
		out := history[:lastDurable]
		for _, o := range history[lastDurable:] {
			if !o.acked {
				break
			}
			out = append(out, o)
		}
		return out
	}
	// afterOp advances the snapshot-covered durability mark: a snapshot
	// landing on an unwedged server re-anchors the WHOLE applied history,
	// including previously unacknowledged operations.
	afterOp := func() {
		st := srv.Stats()
		if st.Persist.Snapshots > snapsSeen {
			snapsSeen = st.Persist.Snapshots
			if !st.Persist.Wedged {
				lastDurable = len(history)
			}
		}
	}
	attempts := func() int64 { return reanchorBase + srv.Stats().Persist.ReanchorAttempts }
	// fireReanchor fires one armed self-healing retry and waits for the
	// attempt to settle; the attempt is itself a history-visible barrier
	// (drain + engine reseed), acknowledged iff its snapshot landed.
	fireReanchor := func() error {
		if !spinUntil(func() bool { return hook.unfired() > 0 }) {
			return errors.New("chaos: wedged server never armed a re-anchor retry")
		}
		before := attempts()
		hook.fireNext()
		if !spinUntil(func() bool { return attempts() > before }) {
			return errors.New("chaos: fired re-anchor retry never ran")
		}
		rep.Reanchors++
		history = append(history, op{kind: opBarrier, acked: !srv.Stats().Persist.Wedged})
		afterOp()
		return nil
	}

	for iter := 0; cursor < len(elems) && iter < maxIters; iter++ {
		if srv.Stats().Persist.Wedged && hook.unfired() > 0 {
			if err := fireReanchor(); err != nil {
				return nil, err
			}
			continue
		}
		x := rng.Float64()
		crash := iter == crashAt || x >= 0.94
		switch {
		case crash:
			fault.Disable()
			srv.Abort()
			rep.Crashes++
			history = durablePrefix()
			for i := range history {
				history[i].acked = true
			}
			lastDurable = len(history)
			hook = &timerHook{}
			reanchorBase = 0
			srv, err = serve.Open(serveConfig(w, alphabet, n, k, hook), serve.PersistOptions{Dir: dir})
			if err != nil {
				return nil, fmt.Errorf("chaos: recovery after crash %d failed: %w", rep.Crashes, err)
			}
			snapsSeen = srv.Stats().Persist.Snapshots
			fault.Enable(reg)
		case x < 0.70: // ingest a batch
			size := 16 + rng.Intn(48)
			end := min(cursor+size, len(elems))
			chunk := elems[cursor:end]
			cursor = end
			// Roughly half the batches travel the binary wire path: encode
			// the chunk as one frame and push it through the parallel decode
			// stage, so the chaos schedule interleaves both ingest front
			// doors against the same fault registry. A binary batch is
			// equivalent to the IngestSync of the same chunk (the control
			// replays it that way), and its stream-fatal refusals and
			// unacked durability errors classify identically.
			binary := rng.Float64() < 0.5
			var err error
			if binary {
				frame, encErr := frameEnc.AppendFrame(frameBuf[:0], chunk)
				if encErr != nil {
					return nil, fmt.Errorf("chaos: frame encode: %w", encErr)
				}
				frameBuf = frame
				res, ferr := srv.IngestFrames(bytes.NewReader(frame))
				if ferr == nil {
					ferr = res.Err()
				}
				err = ferr
				rep.Binary++
			} else {
				err = srv.IngestSync(chunk)
			}
			switch {
			case errors.Is(err, errAcceptRefused), errors.Is(err, errDecodeRefused), errors.Is(err, serve.ErrWedged):
				// Refused before touching state — at the admission gate or
				// as a poisoned binary frame that never reached the writer:
				// the elements are simply gone from this timeline (later
				// edges referencing them will be rejected — identically in
				// the control).
				rep.Refused++
			case err != nil && errors.Is(err, fault.ErrInjected):
				// Applied in memory, durability acknowledgement failed.
				rep.Batches++
				rep.Unacked++
				history = append(history, op{kind: opBatch, elems: chunk})
			default:
				// nil, or ordinary element rejections joined into err:
				// applied and acknowledged.
				rep.Batches++
				history = append(history, op{kind: opBatch, elems: chunk, acked: true})
			}
		case x < 0.80: // drain barrier
			err := srv.Drain()
			switch {
			case errors.Is(err, serve.ErrWedged):
			case err == nil:
				history = append(history, op{kind: opDrain, acked: true})
			default:
				history = append(history, op{kind: opDrain})
			}
		case x < 0.88: // explicit checkpoint
			err := srv.Checkpoint()
			if errors.Is(err, errBarrierRefused) {
				break
			}
			acked := err == nil || !srv.Stats().Persist.Wedged
			history = append(history, op{kind: opBarrier, acked: acked})
		default: // manual restream
			if srv.Stats().Assigned == 0 {
				break
			}
			if err := srv.Restream(); err == nil {
				rep.Restreams++
				history = append(history, op{kind: opRestream, acked: !srv.Stats().Persist.Wedged})
			}
		}
		afterOp()
	}
	if cursor < len(elems) {
		return nil, fmt.Errorf("chaos: driver stalled with %d elements unconsumed", len(elems)-cursor)
	}

	// End of schedule: stop injecting, let the server heal itself, close
	// the history with a full drain, and take the survivor's fingerprint.
	fault.Disable()
	for srv.Stats().Persist.Wedged {
		if err := fireReanchor(); err != nil {
			return nil, err
		}
	}
	if err := srv.Drain(); err != nil {
		return nil, fmt.Errorf("chaos: final drain: %w", err)
	}
	history = append(history, op{kind: opDrain, acked: true})
	afterOp()
	if lastDurable != len(history) {
		// The healing snapshot plus the acked tail must cover everything.
		for _, o := range history[lastDurable:] {
			if !o.acked {
				return nil, errors.New("chaos: healed server left unacknowledged history")
			}
		}
	}
	rep.Ops = len(history)
	for _, p := range fault.Points() {
		rep.Injections += reg.Fired(p)
	}

	// Control: replay the surviving history, fault-free, into a fresh
	// server. The chaos survivor must be indistinguishable from it.
	ctrlDir, err := os.MkdirTemp(opts.Scratch, "chaos-control-")
	if err != nil {
		return nil, err
	}
	ctrl, err := serve.Open(serveConfig(w, alphabet, n, k, &timerHook{}), serve.PersistOptions{Dir: ctrlDir})
	if err != nil {
		return nil, fmt.Errorf("chaos: control open: %w", err)
	}
	defer ctrl.Stop()
	for i, o := range history {
		switch o.kind {
		case opBatch:
			// Element rejections (edges into refused-batch gaps) are part
			// of the timeline and must reproduce; any other error is not.
			if err := ctrl.IngestSync(o.elems); err != nil &&
				(errors.Is(err, serve.ErrWedged) || errors.Is(err, serve.ErrOverloaded) || errors.Is(err, serve.ErrStopped)) {
				return nil, fmt.Errorf("chaos: control refused batch op %d: %w", i, err)
			}
		case opDrain:
			if err := ctrl.Drain(); err != nil {
				return nil, fmt.Errorf("chaos: control drain op %d: %w", i, err)
			}
		case opBarrier:
			if err := ctrl.Checkpoint(); err != nil {
				return nil, fmt.Errorf("chaos: control checkpoint op %d: %w", i, err)
			}
		case opRestream:
			if err := ctrl.Restream(); err != nil {
				return nil, fmt.Errorf("chaos: control restream op %d: %w", i, err)
			}
		}
	}

	got, want := fingerprintOf(srv.Stats()), fingerprintOf(ctrl.Stats())
	if !got.equal(want) {
		return nil, fmt.Errorf("chaos: survivor diverged from control:\n got %+v\nwant %+v", got, want)
	}
	for _, v := range g.Vertices() {
		gp, gok := srv.Where(v)
		cp, cok := ctrl.Where(v)
		if gp != cp || gok != cok {
			return nil, fmt.Errorf("chaos: Where(%d) = %v,%v on survivor, %v,%v on control", v, gp, gok, cp, cok)
		}
	}
	srv.Stop()
	stopped = true
	return rep, nil
}
