// Package fault is a deterministic, seedable failpoint registry: named
// injection sites threaded through the durability and serving layers so
// the real I/O code paths can be exercised under adversarial failures
// (ENOSPC, short writes, fsync errors, injected latency) instead of
// hand-forced flags.
//
// The registry is process-wide and off by default. A disabled failpoint
// costs one atomic pointer load and a nil check — cheap enough to sit on
// //loom:hotpath functions (the WAL append consults one per record).
// Tests and chaos harnesses build a Registry from a seed, arm rules on
// the points they want to break, and Enable it; every trigger decision
// (probabilistic rules included) is drawn from the registry's seeded
// *rand.Rand, so a whole chaos run is replayable from its seed.
//
// Because the registry is process-wide, tests that Enable one must not
// run in parallel with other registry users in the same process; pair
// every Enable with a deferred Disable.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// A Point names one failpoint site. The constants below are the sites
// threaded through internal/checkpoint and internal/serve; the registry
// itself accepts any Point, so tests can invent private ones.
type Point string

const (
	// WALAppend fires at the top of a WAL record append, before any
	// bytes are written: the append fails cleanly with no torn frame.
	WALAppend Point = "wal/append"
	// WALFrameWrite fires at the frame write itself. With ShortWrite set
	// it leaves a deliberately torn frame prefix on disk before failing,
	// the exact shape a crash mid-write leaves.
	WALFrameWrite Point = "wal/frame-write"
	// WALSync fires at the per-record fsync (SyncAlways only).
	WALSync Point = "wal/sync"
	// WALReadCorrupt fires when a segment file is read back during
	// recovery: the last byte of the segment image is flipped, tearing
	// the tail the way on-disk corruption would.
	WALReadCorrupt Point = "wal/read-corrupt"
	// SnapWrite fires before the snapshot body is written to the temp
	// file (ENOSPC during the temp write).
	SnapWrite Point = "snap/write"
	// SnapSync fires before the snapshot temp file is fsynced.
	SnapSync Point = "snap/sync"
	// SnapRename fires before the temp file is renamed into place.
	SnapRename Point = "snap/rename"
	// SnapReadSkip fires per snapshot file considered during recovery:
	// the file is treated as damaged and passed over, exercising the
	// fall-back-to-previous-generation path.
	SnapReadSkip Point = "snap/read-skip"
	// SegPrune fires at snapshot/segment pruning: the prune pass is
	// skipped wholesale, as a failed unlink would leave it.
	SegPrune Point = "seg/prune"
	// ServeAccept fires in Server.send before a data batch is enqueued:
	// the batch is refused before touching any state.
	ServeAccept Point = "serve/accept"
	// ServeSwap fires at the restream swap's snapshot write: the swap
	// itself lands but its durability anchor fails, wedging the log.
	ServeSwap Point = "serve/swap"
	// ServeBarrier fires at the checkpoint barrier, failing the
	// checkpoint request before it drains or reseeds anything.
	ServeBarrier Point = "serve/barrier"
	// WireDecode fires in a binary-ingest decode worker before the frame
	// is parsed: the frame is treated as malformed (poisoned) and the
	// stream is refused with a typed error; nothing from the frame
	// reaches the writer or the WAL.
	WireDecode Point = "wire/decode"
	// ServeDecodeStall fires as a decode worker picks a frame up;
	// intended for latency-only injections that simulate a stalled
	// worker — the pipeline must stay ordered and correct, just slower.
	ServeDecodeStall Point = "serve/decode-stall"
)

// Points returns every named failpoint site, in declaration order.
func Points() []Point {
	return []Point{
		WALAppend, WALFrameWrite, WALSync, WALReadCorrupt,
		SnapWrite, SnapSync, SnapRename, SnapReadSkip, SegPrune,
		ServeAccept, ServeSwap, ServeBarrier,
		WireDecode, ServeDecodeStall,
	}
}

// ErrInjected is the base error every injected failure wraps, so callers
// can tell injected faults from organic ones with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// ErrNoSpace is an ENOSPC-shaped injected error (wraps ErrInjected).
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// Injection is what a triggered failpoint tells its site to do.
type Injection struct {
	// Err is the error to inject; nil means ErrInjected.
	Err error
	// ShortWrite asks a write-shaped site to emit only this many bytes
	// of its payload before failing (0 = no bytes). Only WALFrameWrite
	// honours it today.
	ShortWrite int
	// Latency is slept (via the registry's sleep function) before the
	// site proceeds. A latency-only injection (Err == nil, ShortWrite ==
	// 0 with Delay true) delays without failing.
	Latency time.Duration
	// DelayOnly marks a pure-latency injection: the site sleeps and then
	// continues normally instead of failing.
	DelayOnly bool
}

// Failure returns the error the site should surface.
func (i *Injection) Failure() error {
	if i.Err != nil {
		return i.Err
	}
	return ErrInjected
}

// Rule arms one behaviour on a point.
type Rule struct {
	// Skip ignores the first Skip hits before the rule arms.
	Skip int
	// Count caps how many times the rule triggers; 0 = unlimited.
	Count int
	// Prob triggers the rule on each armed hit with this probability,
	// drawn from the registry's seeded RNG. 0 (or >= 1) means always.
	Prob float64
	// Injection is delivered on each trigger.
	Injection Injection
}

type armedRule struct {
	rule  Rule
	skip  int
	fired int
}

// Registry holds the armed rules. Safe for concurrent use; trigger
// decisions are serialized under one mutex so a single-goroutine driver
// replays identically from the seed.
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Point][]*armedRule
	hits  map[Point]int
	fired map[Point]int
	sleep func(time.Duration)
}

// NewRegistry builds an empty registry whose probabilistic decisions are
// drawn from a *rand.Rand seeded with seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Point][]*armedRule),
		hits:  make(map[Point]int),
		fired: make(map[Point]int),
	}
}

// Add arms one rule on p. Rules are consulted in Add order; the first
// one that triggers wins the hit.
func (r *Registry) Add(p Point, rule Rule) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[p] = append(r.rules[p], &armedRule{rule: rule, skip: rule.Skip})
	return r
}

// Fail arms an always-trigger error on p.
func (r *Registry) Fail(p Point, err error) *Registry {
	return r.Add(p, Rule{Injection: Injection{Err: err}})
}

// FailOnce arms a single-shot error on p.
func (r *Registry) FailOnce(p Point, err error) *Registry {
	return r.Add(p, Rule{Count: 1, Injection: Injection{Err: err}})
}

// FailN arms an error that triggers on the next n hits of p.
func (r *Registry) FailN(p Point, err error, n int) *Registry {
	return r.Add(p, Rule{Count: n, Injection: Injection{Err: err}})
}

// FailProb arms an error that triggers each hit with probability prob.
func (r *Registry) FailProb(p Point, err error, prob float64) *Registry {
	return r.Add(p, Rule{Prob: prob, Injection: Injection{Err: err}})
}

// ShortWriteOnce arms a single torn write of n payload bytes on p.
func (r *Registry) ShortWriteOnce(p Point, n int) *Registry {
	return r.Add(p, Rule{Count: 1, Injection: Injection{Err: ErrNoSpace, ShortWrite: n}})
}

// SetSleep installs the function latency injections sleep with. The
// registry never reads the clock itself; without a sleep function,
// latency injections are no-ops. (Tests typically pass time.Sleep.)
func (r *Registry) SetSleep(f func(time.Duration)) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sleep = f
	return r
}

// Hits reports how many times p was consulted while this registry was
// enabled; Fired reports how many of those hits triggered a rule.
func (r *Registry) Hits(p Point) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[p]
}

// Fired reports how many hits on p triggered an injection.
func (r *Registry) Fired(p Point) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[p]
}

// hit records one consultation of p and returns the triggered injection,
// if any.
func (r *Registry) hit(p Point) *Injection {
	r.mu.Lock()
	r.hits[p]++
	var out *Injection
	for _, ar := range r.rules[p] {
		if ar.skip > 0 {
			ar.skip--
			continue
		}
		if ar.rule.Count > 0 && ar.fired >= ar.rule.Count {
			continue
		}
		if pr := ar.rule.Prob; pr > 0 && pr < 1 && r.rng.Float64() >= pr {
			continue
		}
		ar.fired++
		r.fired[p]++
		out = &ar.rule.Injection
		break
	}
	sleep := r.sleep
	r.mu.Unlock()
	if out != nil && out.Latency > 0 && sleep != nil {
		sleep(out.Latency)
	}
	if out != nil && out.DelayOnly {
		return nil
	}
	return out
}

// active is the enabled registry; nil means every failpoint is inert.
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide registry. Pair with Disable.
func Enable(r *Registry) { active.Store(r) }

// Disable removes the process-wide registry; every failpoint goes inert.
func Disable() { active.Store(nil) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Hit consults the failpoint p: nil when no registry is enabled or no
// rule triggered. The disabled path is one atomic load and a nil check.
//
//loom:hotpath
func Hit(p Point) *Injection {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.hit(p)
}

// Check is the error-only form of Hit: the injected error when p
// triggered, nil otherwise.
//
//loom:hotpath
func Check(p Point) error {
	inj := Hit(p)
	if inj == nil {
		return nil
	}
	return inj.Failure()
}
