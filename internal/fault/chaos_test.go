package fault_test

import (
	"flag"
	"testing"

	"loom/internal/fault/chaos"
)

// chaosSeeds is how many seeded fault schedules TestChaosDurability
// drives. The default keeps `go test ./...` quick; CI's smoke step runs
// 25 and the durability acceptance bar is 100
// (`go test ./internal/fault -run Chaos -chaos-seeds 100`).
var chaosSeeds = flag.Int("chaos-seeds", 12, "number of seeded chaos schedules to run")

// TestChaosDurability runs the full chaos harness across seeds: each
// schedule ingests a generated stream through randomized ENOSPC/torn
// write/fsync faults, crash-recovery cycles and self-healing re-anchors,
// then proves the survivor is bit-identical to a fault-free control
// replay of the acknowledged history. See internal/fault/chaos.
func TestChaosDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules are not -short friendly")
	}
	var totals chaos.Report
	for seed := int64(1); seed <= int64(*chaosSeeds); seed++ {
		rep, err := chaos.Run(seed, chaos.Options{Scratch: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totals.Ops += rep.Ops
		totals.Batches += rep.Batches
		totals.Binary += rep.Binary
		totals.Removals += rep.Removals
		totals.Readds += rep.Readds
		totals.Refused += rep.Refused
		totals.Unacked += rep.Unacked
		totals.Crashes += rep.Crashes
		totals.Reanchors += rep.Reanchors
		totals.Restreams += rep.Restreams
		totals.Injections += rep.Injections
	}
	t.Logf("%d seeds: ops=%d batches=%d binary=%d removals=%d readds=%d refused=%d unacked=%d crashes=%d reanchors=%d restreams=%d injections=%d",
		*chaosSeeds, totals.Ops, totals.Batches, totals.Binary, totals.Removals, totals.Readds,
		totals.Refused, totals.Unacked, totals.Crashes, totals.Reanchors, totals.Restreams, totals.Injections)
	// A schedule that never injects, never crashes, or never heals is not
	// exercising the machinery it exists to prove.
	if totals.Injections == 0 {
		t.Fatal("no failpoints fired across all seeds; registry wiring is broken")
	}
	if totals.Binary == 0 {
		t.Fatal("no batches travelled the binary wire path across all seeds")
	}
	if totals.Crashes == 0 {
		t.Fatal("no crash-recovery cycles across all seeds")
	}
	if totals.Reanchors == 0 {
		t.Fatal("no self-healing re-anchors fired across all seeds")
	}
	if totals.Removals == 0 || totals.Readds == 0 {
		t.Fatal("no deletion churn in the schedules; injectChurn wiring is broken")
	}
}
