package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledHitIsNil(t *testing.T) {
	Disable()
	if Hit(WALAppend) != nil {
		t.Fatal("disabled registry triggered an injection")
	}
	if err := Check(WALSync); err != nil {
		t.Fatalf("disabled Check = %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled() true with no registry")
	}
}

func TestFailOnceAndN(t *testing.T) {
	r := NewRegistry(1)
	r.FailOnce(WALAppend, ErrNoSpace)
	r.FailN(SnapWrite, ErrNoSpace, 3)
	Enable(r)
	defer Disable()

	if err := Check(WALAppend); !errors.Is(err, ErrNoSpace) || !errors.Is(err, ErrInjected) {
		t.Fatalf("first hit = %v, want ErrNoSpace wrapping ErrInjected", err)
	}
	if err := Check(WALAppend); err != nil {
		t.Fatalf("second hit = %v, want nil after FailOnce", err)
	}
	for i := 0; i < 3; i++ {
		if err := Check(SnapWrite); err == nil {
			t.Fatalf("FailN hit %d did not trigger", i)
		}
	}
	if err := Check(SnapWrite); err != nil {
		t.Fatalf("FailN hit 4 = %v, want nil", err)
	}
	if got := r.Hits(SnapWrite); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
	if got := r.Fired(SnapWrite); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestSkipDelaysArming(t *testing.T) {
	r := NewRegistry(1)
	r.Add(WALSync, Rule{Skip: 2, Count: 1, Injection: Injection{Err: ErrNoSpace}})
	Enable(r)
	defer Disable()
	for i := 0; i < 2; i++ {
		if err := Check(WALSync); err != nil {
			t.Fatalf("skipped hit %d triggered: %v", i, err)
		}
	}
	if err := Check(WALSync); err == nil {
		t.Fatal("armed hit did not trigger")
	}
}

// TestProbDeterministicAcrossReplays pins the replayability contract:
// the same seed yields the same trigger sequence, a different seed a
// (very likely) different one.
func TestProbDeterministicAcrossReplays(t *testing.T) {
	sequence := func(seed int64) []bool {
		r := NewRegistry(seed)
		r.FailProb(WALAppend, ErrNoSpace, 0.3)
		Enable(r)
		defer Disable()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check(WALAppend) != nil
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 rule fired %d/%d times; probabilistic gating broken", fired, len(a))
	}
}

func TestShortWriteInjection(t *testing.T) {
	r := NewRegistry(1)
	r.ShortWriteOnce(WALFrameWrite, 5)
	Enable(r)
	defer Disable()
	inj := Hit(WALFrameWrite)
	if inj == nil || inj.ShortWrite != 5 || !errors.Is(inj.Failure(), ErrNoSpace) {
		t.Fatalf("short-write injection = %+v", inj)
	}
	if Hit(WALFrameWrite) != nil {
		t.Fatal("ShortWriteOnce triggered twice")
	}
}

func TestLatencyInjection(t *testing.T) {
	r := NewRegistry(1)
	var slept time.Duration
	r.SetSleep(func(d time.Duration) { slept += d })
	r.Add(ServeAccept, Rule{Injection: Injection{Latency: 3 * time.Millisecond, DelayOnly: true}})
	Enable(r)
	defer Disable()
	if err := Check(ServeAccept); err != nil {
		t.Fatalf("delay-only injection failed the site: %v", err)
	}
	if slept != 3*time.Millisecond {
		t.Fatalf("slept %v, want 3ms", slept)
	}
}

func TestDefaultInjectedError(t *testing.T) {
	r := NewRegistry(1)
	r.Add(SegPrune, Rule{Count: 1})
	Enable(r)
	defer Disable()
	if err := Check(SegPrune); !errors.Is(err, ErrInjected) {
		t.Fatalf("default injection error = %v, want ErrInjected", err)
	}
}

func TestPointsEnumerates(t *testing.T) {
	seen := map[Point]bool{}
	for _, p := range Points() {
		if seen[p] {
			t.Fatalf("duplicate point %q", p)
		}
		seen[p] = true
	}
	if !seen[WALFrameWrite] || !seen[ServeSwap] {
		t.Fatal("Points() is missing named sites")
	}
}
