package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/motif"
	"loom/internal/signature"
)

func TestQueryValidate(t *testing.T) {
	good := Query{ID: "q", Pattern: graph.Path("a", "b"), Weight: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []Query{
		{ID: "", Pattern: graph.Path("a", "b"), Weight: 1},
		{ID: "q", Pattern: nil, Weight: 1},
		{ID: "q", Pattern: graph.New(), Weight: 1},
		{ID: "q", Pattern: graph.Path("a", "b"), Weight: 0},
		{ID: "q", Pattern: graph.Path("a", "b"), Weight: -2},
		{ID: "q", Pattern: graph.Path("a", "b"), Weight: math.NaN()},
		{ID: "q", Pattern: graph.Path("a", "b"), Weight: math.Inf(1)},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
	disc := graph.New()
	disc.AddVertex(1, "a")
	disc.AddVertex(2, "b")
	if err := (Query{ID: "q", Pattern: disc, Weight: 1}).Validate(); err == nil {
		t.Error("disconnected pattern accepted")
	}
}

func TestNewWorkload(t *testing.T) {
	w, err := NewWorkload(
		Query{ID: "a", Pattern: graph.Path("a", "b"), Weight: 3},
		Query{ID: "b", Pattern: graph.Path("b", "c"), Weight: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.TotalWeight() != 4 {
		t.Fatalf("len=%d total=%v", w.Len(), w.TotalWeight())
	}
	if f := w.Frequency(0); f != 0.75 {
		t.Fatalf("Frequency(0) = %v, want 0.75", f)
	}
	if _, err := NewWorkload(
		Query{ID: "a", Pattern: graph.Path("a", "b"), Weight: 1},
		Query{ID: "a", Pattern: graph.Path("b", "c"), Weight: 1},
	); err == nil {
		t.Fatal("duplicate IDs should be rejected")
	}
}

func TestSampleProportional(t *testing.T) {
	w := MustNewWorkload(
		Query{ID: "hot", Pattern: graph.Path("a", "b"), Weight: 9},
		Query{ID: "cold", Pattern: graph.Path("b", "c"), Weight: 1},
	)
	r := rand.New(rand.NewSource(13))
	counts := [2]int{}
	for i := 0; i < 5000; i++ {
		counts[w.Sample(r)]++
	}
	ratio := float64(counts[0]) / float64(counts[0]+counts[1])
	if math.Abs(ratio-0.9) > 0.03 {
		t.Fatalf("hot sampled %.3f of the time, want ~0.9", ratio)
	}
	empty := &Workload{}
	if empty.Sample(r) != -1 {
		t.Fatal("empty workload should sample -1")
	}
}

func TestFig1Workload(t *testing.T) {
	w := Fig1Workload()
	if w.Len() != 3 {
		t.Fatalf("len = %d, want 3", w.Len())
	}
	qs := w.Queries()
	if qs[0].ID != "q1" || qs[0].Pattern.NumEdges() != 4 {
		t.Fatalf("q1 = %+v", qs[0])
	}
	if qs[2].Pattern.NumVertices() != 4 {
		t.Fatalf("q3 should be the 4-path")
	}
}

func TestBuildTrie(t *testing.T) {
	w := Fig1Workload()
	tr := motif.New(signature.NewFactoryForAlphabet([]graph.Label{"a", "b", "c", "d"}), motif.Options{MaxMotifVertices: 4})
	if err := w.BuildTrie(tr); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 14 {
		t.Fatalf("trie nodes = %d, want 14 (Fig. 2)", tr.NumNodes())
	}
	if tr.TotalWeight() != 3 {
		t.Fatalf("trie weight = %v, want 3", tr.TotalWeight())
	}
}

func TestGenerateShapes(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	alpha := []graph.Label{"a", "b", "c"}
	for _, tc := range []struct {
		shape Shape
		size  int
		wantV int
		wantE int
	}{
		{PathShape, 4, 4, 3},
		{StarShape, 5, 5, 4},
		{CycleShape, 4, 4, 4},
		{TreeShape, 6, 6, 5},
	} {
		g, err := Generate(tc.shape, tc.size, alpha, r)
		if err != nil {
			t.Fatalf("%v: %v", tc.shape, err)
		}
		if g.NumVertices() != tc.wantV || g.NumEdges() != tc.wantE {
			t.Fatalf("%v: |V|=%d |E|=%d, want %d,%d", tc.shape, g.NumVertices(), g.NumEdges(), tc.wantV, tc.wantE)
		}
		if !g.IsConnected() {
			t.Fatalf("%v: disconnected", tc.shape)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	alpha := []graph.Label{"a"}
	cases := []struct {
		shape Shape
		size  int
	}{
		{PathShape, 1}, {StarShape, 1}, {CycleShape, 2}, {TreeShape, 1}, {Shape(99), 3},
	}
	for _, c := range cases {
		if _, err := Generate(c.shape, c.size, alpha, r); err == nil {
			t.Errorf("Generate(%v,%d) should error", c.shape, c.size)
		}
	}
	if _, err := Generate(PathShape, 3, nil, r); err == nil {
		t.Error("empty alphabet should error")
	}
}

func TestShapeString(t *testing.T) {
	for s, want := range map[Shape]string{
		PathShape: "path", StarShape: "star", CycleShape: "cycle", TreeShape: "tree",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestGenerateWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	alpha := []graph.Label{"a", "b", "c", "d"}
	w, err := GenerateWorkload(DefaultMix(20), alpha, r)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 20 {
		t.Fatalf("len = %d, want 20", w.Len())
	}
	for _, q := range w.Queries() {
		if err := q.Validate(); err != nil {
			t.Fatalf("generated query invalid: %v", err)
		}
		if q.Pattern.NumVertices() < 2 || q.Pattern.NumVertices() > 4 {
			t.Fatalf("query size %d out of [2,4]", q.Pattern.NumVertices())
		}
	}
}

func TestGenerateWorkloadZipf(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	mix := DefaultMix(10)
	mix.ZipfSkew = 1.0
	w, err := GenerateWorkload(mix, []graph.Label{"a", "b"}, r)
	if err != nil {
		t.Fatal(err)
	}
	qs := w.Queries()
	for i := 1; i < len(qs); i++ {
		if qs[i].Weight > qs[i-1].Weight {
			t.Fatal("zipf weights must be non-increasing")
		}
	}
	top := w.TopByWeight(3)
	if len(top) != 3 || top[0].Weight < top[2].Weight {
		t.Fatalf("TopByWeight wrong: %v", top)
	}
	if got := w.TopByWeight(99); len(got) != 10 {
		t.Fatalf("TopByWeight over-length = %d", len(got))
	}
}

func TestGenerateWorkloadErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	alpha := []graph.Label{"a"}
	bad := []Mix{
		{Count: 0, Shapes: []Shape{PathShape}, Proportions: []float64{1}, MinSize: 2, MaxSize: 3},
		{Count: 1, Shapes: nil, Proportions: nil, MinSize: 2, MaxSize: 3},
		{Count: 1, Shapes: []Shape{PathShape}, Proportions: []float64{1, 2}, MinSize: 2, MaxSize: 3},
		{Count: 1, Shapes: []Shape{PathShape}, Proportions: []float64{1}, MinSize: 1, MaxSize: 3},
		{Count: 1, Shapes: []Shape{PathShape}, Proportions: []float64{1}, MinSize: 3, MaxSize: 2},
		{Count: 1, Shapes: []Shape{PathShape}, Proportions: []float64{-1}, MinSize: 2, MaxSize: 3},
		{Count: 1, Shapes: []Shape{PathShape}, Proportions: []float64{0}, MinSize: 2, MaxSize: 3},
	}
	for i, m := range bad {
		if _, err := GenerateWorkload(m, alpha, r); err == nil {
			t.Errorf("bad mix %d accepted", i)
		}
	}
}

func TestPropertySampleInRange(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		qs := make([]Query, n)
		for i := range qs {
			qs[i] = Query{
				ID:      string(rune('a' + i)),
				Pattern: graph.Path("a", "b"),
				Weight:  r.Float64() + 0.01,
			}
		}
		// Unique IDs needed; construct accordingly.
		w, err := NewWorkload(qs...)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			got := w.Sample(r)
			if got < 0 || got >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
