package query

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"loom/internal/graph"
)

// The workload text format stores one query per line:
//
//	# comment
//	query <id> <weight> path <label> <label> ...
//	query <id> <weight> cycle <label> <label> <label> ...
//	query <id> <weight> star <center> <leaf> <leaf> ...
//	query <id> <weight> graph v<id>:<label> ... e<u>-<v> ...
//
// The shape forms cover the common GDBMS query topologies; the graph form
// expresses arbitrary patterns (branching, multiple cycles). It is the
// interchange format of `loom partition -workload-file`.

// WriteWorkload serialises w, one query per line, using the graph form
// (lossless for any pattern).
func WriteWorkload(out io.Writer, w *Workload) error {
	bw := bufio.NewWriter(out)
	for _, q := range w.Queries() {
		if _, err := fmt.Fprintf(bw, "query %s %g graph", q.ID, q.Weight); err != nil {
			return err
		}
		for _, v := range q.Pattern.Vertices() {
			l, _ := q.Pattern.Label(v)
			if _, err := fmt.Fprintf(bw, " v%d:%s", v, l); err != nil {
				return err
			}
		}
		for _, e := range q.Pattern.Edges() {
			if _, err := fmt.Fprintf(bw, " e%d-%d", e.U, e.V); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseWorkload reads the workload text format.
func ParseWorkload(in io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var queries []Query
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQueryLine(line)
		if err != nil {
			return nil, fmt.Errorf("query: line %d: %v", lineNo, err)
		}
		queries = append(queries, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewWorkload(queries...)
}

func parseQueryLine(line string) (Query, error) {
	fields := strings.Fields(line)
	if len(fields) < 5 || fields[0] != "query" {
		return Query{}, fmt.Errorf("want 'query <id> <weight> <form> ...', got %q", line)
	}
	id := fields[1]
	weight, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Query{}, fmt.Errorf("bad weight %q: %v", fields[2], err)
	}
	pattern, err := parsePatternForm(fields[3], fields[4:])
	if err != nil {
		return Query{}, err
	}
	return Query{ID: id, Pattern: pattern, Weight: weight}, nil
}

// ParsePatternSpec parses one pattern in the workload format's shape
// forms, without the "query <id> <weight>" prefix:
//
//	path <label> <label> ...
//	cycle <label> <label> <label> ...
//	star <center> <leaf> ...
//	graph v<id>:<label> ... e<u>-<v> ...
//
// It is the request syntax of the online /query endpoint.
func ParsePatternSpec(spec string) (*graph.Graph, error) {
	fields := strings.Fields(spec)
	if len(fields) < 2 {
		return nil, fmt.Errorf("query: want '<form> args...', got %q", spec)
	}
	return parsePatternForm(fields[0], fields[1:])
}

// FormatPatternSpec renders p in the graph form, which is lossless and
// canonical: two patterns with the same vertex IDs, labels and edges
// format to the same string (Vertices and Edges are sorted), so the
// result doubles as a dedup key for observed-workload tracking.
func FormatPatternSpec(p *graph.Graph) string {
	var sb strings.Builder
	sb.WriteString("graph")
	for _, v := range p.Vertices() {
		l, _ := p.Label(v)
		fmt.Fprintf(&sb, " v%d:%s", v, l)
	}
	for _, e := range p.Edges() {
		fmt.Fprintf(&sb, " e%d-%d", e.U, e.V)
	}
	return sb.String()
}

// parsePatternForm dispatches one shape form with its argument tokens.
func parsePatternForm(form string, rest []string) (*graph.Graph, error) {
	switch form {
	case "path":
		if len(rest) < 2 {
			return nil, fmt.Errorf("path needs >= 2 labels")
		}
		return graph.Path(toLabels(rest)...), nil
	case "cycle":
		if len(rest) < 3 {
			return nil, fmt.Errorf("cycle needs >= 3 labels")
		}
		return graph.Cycle(toLabels(rest)...), nil
	case "star":
		if len(rest) < 2 {
			return nil, fmt.Errorf("star needs a center and >= 1 leaf")
		}
		return graph.Star(graph.Label(rest[0]), toLabels(rest[1:])...), nil
	case "graph":
		return parseGraphForm(rest)
	}
	return nil, fmt.Errorf("unknown form %q", form)
}

func toLabels(ss []string) []graph.Label {
	out := make([]graph.Label, len(ss))
	for i, s := range ss {
		out[i] = graph.Label(s)
	}
	return out
}

// parseGraphForm parses tokens v<id>:<label> and e<u>-<v>.
func parseGraphForm(tokens []string) (*graph.Graph, error) {
	g := graph.New()
	for _, tok := range tokens {
		switch {
		case strings.HasPrefix(tok, "v"):
			body := strings.TrimPrefix(tok, "v")
			parts := strings.SplitN(body, ":", 2)
			if len(parts) != 2 || parts[1] == "" {
				return nil, fmt.Errorf("bad vertex token %q (want v<id>:<label>)", tok)
			}
			id, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad vertex id in %q: %v", tok, err)
			}
			if g.HasVertex(graph.VertexID(id)) {
				return nil, fmt.Errorf("duplicate vertex in %q", tok)
			}
			g.AddVertex(graph.VertexID(id), graph.Label(parts[1]))
		case strings.HasPrefix(tok, "e"):
			body := strings.TrimPrefix(tok, "e")
			parts := strings.SplitN(body, "-", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad edge token %q (want e<u>-<v>)", tok)
			}
			u, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad edge endpoint in %q: %v", tok, err)
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad edge endpoint in %q: %v", tok, err)
			}
			if err := g.AddEdge(graph.VertexID(u), graph.VertexID(v)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown token %q", tok)
		}
	}
	return g, nil
}

// ResolveWorkload implements the CLI convention shared by loom and
// loom-serve: a workload file (this package's text format) wins; otherwise
// synthN queries of the default mix are synthesised over alphabet,
// deterministic per seed; with neither, the workload is nil.
func ResolveWorkload(path string, synthN int, alphabet []graph.Label, seed int64) (*Workload, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ParseWorkload(bufio.NewReader(f))
	}
	if synthN > 0 {
		return GenerateWorkload(DefaultMix(synthN), alphabet, rand.New(rand.NewSource(seed)))
	}
	return nil, nil
}

// Describe renders a workload as a human-readable multi-line summary,
// heaviest queries first.
func Describe(w *Workload) string {
	qs := w.Queries()
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Weight > qs[j].Weight })
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: %d queries, total weight %g\n", w.Len(), w.TotalWeight())
	for _, q := range qs {
		fmt.Fprintf(&sb, "  %-12s w=%-8g |V|=%d |E|=%d\n", q.ID, q.Weight,
			q.Pattern.NumVertices(), q.Pattern.NumEdges())
	}
	return sb.String()
}
