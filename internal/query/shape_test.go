package query

import "testing"

func TestParsePatternSpecForms(t *testing.T) {
	cases := []struct {
		spec       string
		wantV      int
		wantE      int
		asPathKnot bool // path-shaped per PathLabels
	}{
		{"path a b c", 3, 2, true},
		{"cycle a b c", 3, 3, false},
		{"star c l1 l2 l3", 4, 3, false},
		{"graph v0:a v1:b v2:c e0-1 e1-2", 3, 2, true},
		{"graph v0:a", 1, 0, true},
	}
	for _, c := range cases {
		p, err := ParsePatternSpec(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if p.NumVertices() != c.wantV || p.NumEdges() != c.wantE {
			t.Errorf("%q: |V|=%d |E|=%d", c.spec, p.NumVertices(), p.NumEdges())
		}
		if _, ok := PathLabels(p); ok != c.asPathKnot {
			t.Errorf("%q: PathLabels ok=%v, want %v", c.spec, ok, c.asPathKnot)
		}
	}
	for _, bad := range []string{"", "path", "path a", "cycle a b", "star c", "frob a b", "graph v0:a vX", "graph e0-1"} {
		if _, err := ParsePatternSpec(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestFormatPatternSpecRoundTripAndCanonical(t *testing.T) {
	for _, spec := range []string{"path a b c", "cycle a b a b", "star c l1 l2", "graph v3:x v7:y e3-7"} {
		p, err := ParsePatternSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		s := FormatPatternSpec(p)
		back, err := ParsePatternSpec(s)
		if err != nil {
			t.Fatalf("re-parse %q: %v", s, err)
		}
		if !back.Equal(p) {
			t.Errorf("%q: round trip through %q changed the pattern", spec, s)
		}
		if s2 := FormatPatternSpec(back); s2 != s {
			t.Errorf("%q: formatting is not canonical: %q vs %q", spec, s, s2)
		}
	}
	// The path form and its explicit graph form format identically, so the
	// spec doubles as an observed-workload dedup key.
	a, _ := ParsePatternSpec("path a b c")
	b, _ := ParsePatternSpec("graph v0:a v1:b v2:c e0-1 e1-2")
	if FormatPatternSpec(a) != FormatPatternSpec(b) {
		t.Errorf("equivalent patterns format differently: %q vs %q",
			FormatPatternSpec(a), FormatPatternSpec(b))
	}
}
