package query

import "loom/internal/graph"

// PathLabels extracts the label sequence of a path-shaped pattern: n
// vertices, n-1 edges, max degree 2 (with max degree ≤ 2 and two
// endpoints that is necessarily a simple path). The walk starts from the
// lower-ID endpoint for determinism. ok is false for every other shape;
// those go through the general pattern matcher instead of the cheaper
// path traversal.
func PathLabels(p *graph.Graph) ([]graph.Label, bool) {
	n := p.NumVertices()
	if n == 0 || p.NumEdges() != n-1 {
		return nil, false
	}
	if n == 1 {
		v := p.Vertices()[0]
		l, _ := p.Label(v)
		return []graph.Label{l}, true
	}
	var ends []graph.VertexID
	for _, v := range p.Vertices() {
		switch d := p.Degree(v); {
		case d > 2:
			return nil, false
		case d == 1:
			ends = append(ends, v)
		}
	}
	if len(ends) != 2 {
		return nil, false
	}
	start := ends[0]
	if ends[1] < start {
		start = ends[1]
	}
	labels := make([]graph.Label, 0, n)
	cur, prev := start, start
	hasPrev := false
	for {
		l, _ := p.Label(cur)
		labels = append(labels, l)
		next := cur
		found := false
		p.EachNeighbor(cur, func(u graph.VertexID) bool {
			if hasPrev && u == prev {
				return true
			}
			next = u
			found = true
			return false
		})
		if !found {
			break
		}
		prev, cur, hasPrev = cur, next, true
	}
	if len(labels) != n {
		return nil, false
	}
	return labels, true
}
