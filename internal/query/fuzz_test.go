package query

import (
	"bytes"
	"testing"
)

// FuzzParseWorkload exercises the workload text parser on arbitrary input
// (it must never panic) and checks the codec round-trips: anything that
// parses must serialise and re-parse to an equivalent workload.
func FuzzParseWorkload(f *testing.F) {
	f.Add([]byte("query q1 1 path a b\n"))
	f.Add([]byte("query q2 2.5 star a b c\nquery q3 1 cycle a b c\n"))
	f.Add([]byte("query g 1 graph v0:a v1:b e0-1\n"))
	f.Add([]byte("# comment\n\nquery solo 0.25 graph v-7:x\n"))
	f.Add([]byte("query bad nan path a b\n"))
	f.Add([]byte("query t 3 path a b c d e f\nquery t2 1e-3 star z y\n"))
	// Stream-codec removal records leaking into a workload file must be
	// refused cleanly, not applied or panicked on.
	f.Add([]byte("query q1 1 path a b\nrv 3\n"))
	f.Add([]byte("re 1 2\nquery q1 1 path a b\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ParseWorkload(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, w); err != nil {
			t.Fatalf("write parsed workload: %v", err)
		}
		w2, err := ParseWorkload(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse serialised workload: %v\nserialised: %q", err, buf.String())
		}
		if w2.Len() != w.Len() {
			t.Fatalf("round trip changed query count: %d -> %d", w.Len(), w2.Len())
		}
		qs, qs2 := w.Queries(), w2.Queries()
		for i := range qs {
			if qs[i].ID != qs2[i].ID || qs[i].Weight != qs2[i].Weight {
				t.Fatalf("query %d changed: %q/%g -> %q/%g", i, qs[i].ID, qs[i].Weight, qs2[i].ID, qs2[i].Weight)
			}
			if !qs[i].Pattern.Equal(qs2[i].Pattern) {
				t.Fatalf("query %q pattern changed:\n%s\nvs\n%s", qs[i].ID, qs[i].Pattern, qs2[i].Pattern)
			}
		}
	})
}
