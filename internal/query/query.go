// Package query models sub-graph pattern matching workloads (paper §1, §2).
//
// A workload Q is a set of query graphs with relative frequencies. The
// package provides the workload container, generators for the query shapes
// that dominate GDBMS pattern workloads (paths, stars, cycles, trees), a
// frequency sampler, and the bridge that folds a workload into a TPSTry++.
package query

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"loom/internal/graph"
	"loom/internal/motif"
)

// Query is one pattern matching query with its relative workload frequency.
type Query struct {
	// ID names the query in reports and TPSTry++ provenance.
	ID string
	// Pattern is the labelled query graph.
	Pattern *graph.Graph
	// Weight is the query's relative frequency (> 0); weights need not sum
	// to one.
	Weight float64
}

// Validate checks the query's invariants.
func (q Query) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("query: empty ID")
	}
	if q.Pattern == nil || q.Pattern.NumVertices() == 0 {
		return fmt.Errorf("query %s: empty pattern", q.ID)
	}
	if !q.Pattern.IsConnected() {
		return fmt.Errorf("query %s: pattern is disconnected", q.ID)
	}
	if q.Weight <= 0 || math.IsNaN(q.Weight) || math.IsInf(q.Weight, 0) {
		return fmt.Errorf("query %s: weight %v not positive finite", q.ID, q.Weight)
	}
	return nil
}

// Workload is a weighted set of queries.
type Workload struct {
	queries []Query
	total   float64
}

// NewWorkload validates and collects the queries. IDs must be unique.
func NewWorkload(queries ...Query) (*Workload, error) {
	w := &Workload{}
	seen := make(map[string]struct{})
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if _, dup := seen[q.ID]; dup {
			return nil, fmt.Errorf("query: duplicate ID %q", q.ID)
		}
		seen[q.ID] = struct{}{}
		w.queries = append(w.queries, q)
		w.total += q.Weight
	}
	return w, nil
}

// MustNewWorkload is NewWorkload that panics on error.
func MustNewWorkload(queries ...Query) *Workload {
	w, err := NewWorkload(queries...)
	if err != nil {
		panic(err)
	}
	return w
}

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.queries) }

// Queries returns the queries in insertion order.
func (w *Workload) Queries() []Query { return append([]Query(nil), w.queries...) }

// TotalWeight returns the sum of weights.
func (w *Workload) TotalWeight() float64 { return w.total }

// Frequency returns the normalised frequency of query i.
func (w *Workload) Frequency(i int) float64 {
	if w.total == 0 {
		return 0
	}
	return w.queries[i].Weight / w.total
}

// Sample draws a query index proportionally to weight.
func (w *Workload) Sample(r *rand.Rand) int {
	if len(w.queries) == 0 {
		return -1
	}
	x := r.Float64() * w.total
	acc := 0.0
	for i, q := range w.queries {
		acc += q.Weight
		if x <= acc {
			return i
		}
	}
	return len(w.queries) - 1
}

// BuildTrie folds the whole workload into a fresh TPSTry++ using the given
// factory-backed trie options.
func (w *Workload) BuildTrie(t *motif.Trie) error {
	for _, q := range w.queries {
		if err := t.AddQuery(q.ID, q.Pattern, q.Weight); err != nil {
			return err
		}
	}
	return nil
}

// Fig1Workload returns the workload Q of Figure 1: q1 the a-b-a-b square,
// q2 the path a-b-c, q3 the path a-b-c-d, with equal weights.
func Fig1Workload() *Workload {
	return MustNewWorkload(
		Query{ID: "q1", Pattern: graph.Cycle("a", "b", "a", "b"), Weight: 1},
		Query{ID: "q2", Pattern: graph.Path("a", "b", "c"), Weight: 1},
		Query{ID: "q3", Pattern: graph.Path("a", "b", "c", "d"), Weight: 1},
	)
}

// Shape names a generated query topology.
type Shape int

// Supported query shapes.
const (
	PathShape Shape = iota
	StarShape
	CycleShape
	TreeShape
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case PathShape:
		return "path"
	case StarShape:
		return "star"
	case CycleShape:
		return "cycle"
	case TreeShape:
		return "tree"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Generate returns a random query graph of the given shape and size over
// the alphabet. Size is the vertex count (>= 2 for paths/stars/trees, >= 3
// for cycles).
func Generate(shape Shape, size int, alphabet []graph.Label, r *rand.Rand) (*graph.Graph, error) {
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("query: empty alphabet")
	}
	pick := func() graph.Label { return alphabet[r.Intn(len(alphabet))] }
	switch shape {
	case PathShape:
		if size < 2 {
			return nil, fmt.Errorf("query: path size %d < 2", size)
		}
		labels := make([]graph.Label, size)
		for i := range labels {
			labels[i] = pick()
		}
		return graph.Path(labels...), nil
	case StarShape:
		if size < 2 {
			return nil, fmt.Errorf("query: star size %d < 2", size)
		}
		leaves := make([]graph.Label, size-1)
		for i := range leaves {
			leaves[i] = pick()
		}
		return graph.Star(pick(), leaves...), nil
	case CycleShape:
		if size < 3 {
			return nil, fmt.Errorf("query: cycle size %d < 3", size)
		}
		labels := make([]graph.Label, size)
		for i := range labels {
			labels[i] = pick()
		}
		return graph.Cycle(labels...), nil
	case TreeShape:
		if size < 2 {
			return nil, fmt.Errorf("query: tree size %d < 2", size)
		}
		g := graph.New()
		g.AddVertex(0, pick())
		for i := 1; i < size; i++ {
			parent := graph.VertexID(r.Intn(i))
			g.AddVertex(graph.VertexID(i), pick())
			if err := g.AddEdge(parent, graph.VertexID(i)); err != nil {
				return nil, err
			}
		}
		return g, nil
	}
	return nil, fmt.Errorf("query: unknown shape %v", shape)
}

// Mix describes the composition of a generated workload.
type Mix struct {
	// Shapes and their relative proportions; both slices must align.
	Shapes      []Shape
	Proportions []float64
	// MinSize/MaxSize bound query vertex counts (inclusive).
	MinSize, MaxSize int
	// Count is the number of queries to generate.
	Count int
	// ZipfSkew shapes the query frequency distribution: weight of the i-th
	// generated query is 1/(i+1)^ZipfSkew. Zero yields uniform weights.
	ZipfSkew float64
}

// DefaultMix returns the path-leaning mix used by the C2 experiment:
// 50% paths, 20% stars, 20% cycles, 10% trees of 2–4 vertices.
func DefaultMix(count int) Mix {
	return Mix{
		Shapes:      []Shape{PathShape, StarShape, CycleShape, TreeShape},
		Proportions: []float64{0.5, 0.2, 0.2, 0.1},
		MinSize:     2,
		MaxSize:     4,
		Count:       count,
	}
}

// GenerateWorkload builds a workload per the mix over the alphabet.
// Duplicate patterns may occur; they model genuinely repeated queries and
// keep distinct IDs.
func GenerateWorkload(mix Mix, alphabet []graph.Label, r *rand.Rand) (*Workload, error) {
	if mix.Count < 1 {
		return nil, fmt.Errorf("query: mix count %d < 1", mix.Count)
	}
	if len(mix.Shapes) == 0 || len(mix.Shapes) != len(mix.Proportions) {
		return nil, fmt.Errorf("query: mix shapes/proportions mismatch")
	}
	if mix.MinSize < 2 || mix.MaxSize < mix.MinSize {
		return nil, fmt.Errorf("query: bad size range [%d,%d]", mix.MinSize, mix.MaxSize)
	}
	var totalProp float64
	for _, p := range mix.Proportions {
		if p < 0 {
			return nil, fmt.Errorf("query: negative proportion")
		}
		totalProp += p
	}
	if totalProp == 0 {
		return nil, fmt.Errorf("query: zero total proportion")
	}
	pickShape := func() Shape {
		x := r.Float64() * totalProp
		acc := 0.0
		for i, p := range mix.Proportions {
			acc += p
			if x <= acc {
				return mix.Shapes[i]
			}
		}
		return mix.Shapes[len(mix.Shapes)-1]
	}
	queries := make([]Query, 0, mix.Count)
	for i := 0; i < mix.Count; i++ {
		shape := pickShape()
		size := mix.MinSize + r.Intn(mix.MaxSize-mix.MinSize+1)
		if shape == CycleShape && size < 3 {
			size = 3
		}
		pat, err := Generate(shape, size, alphabet, r)
		if err != nil {
			return nil, err
		}
		weight := 1.0
		if mix.ZipfSkew > 0 {
			weight = 1.0 / math.Pow(float64(i+1), mix.ZipfSkew)
		}
		queries = append(queries, Query{
			ID:      fmt.Sprintf("%s-%d", shape, i),
			Pattern: pat,
			Weight:  weight,
		})
	}
	return NewWorkload(queries...)
}

// TopByWeight returns the n heaviest queries (all when n exceeds length).
func (w *Workload) TopByWeight(n int) []Query {
	qs := w.Queries()
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Weight > qs[j].Weight })
	if n > len(qs) {
		n = len(qs)
	}
	return qs[:n]
}
