package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/iso"
)

func TestParseWorkloadForms(t *testing.T) {
	in := `
# detection rules
query probe 2 path a b c
query ring 3.5 cycle a b c
query hub 1 star b a a c
query square 1 graph v0:a v1:b v2:a v3:b e0-1 e1-2 e2-3 e3-0
`
	w, err := ParseWorkload(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 {
		t.Fatalf("queries = %d, want 4", w.Len())
	}
	qs := w.Queries()
	if qs[0].ID != "probe" || qs[0].Weight != 2 || qs[0].Pattern.NumEdges() != 2 {
		t.Fatalf("probe = %+v", qs[0])
	}
	if qs[1].Pattern.NumEdges() != 3 {
		t.Fatalf("ring edges = %d", qs[1].Pattern.NumEdges())
	}
	if qs[2].Pattern.Degree(0) != 3 {
		t.Fatalf("hub degree = %d", qs[2].Pattern.Degree(0))
	}
	if !iso.Isomorphic(qs[3].Pattern, graph.Cycle("a", "b", "a", "b")) {
		t.Fatal("square graph form should parse to the abab cycle")
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []string{
		"query x 1 path a",                       // path too short
		"query x 1 cycle a b",                    // cycle too short
		"query x 1 star b",                       // star too short
		"query x 1 warp a b",                     // unknown form
		"query x z path a b",                     // bad weight
		"nonsense line",                          // not a query
		"query x 1 graph v0:a v0:b",              // duplicate vertex
		"query x 1 graph v0 e0-1",                // bad vertex token
		"query x 1 graph v0:a vx:b",              // bad vertex id
		"query x 1 graph v0:a v1:b e0_1",         // bad edge token
		"query x 1 graph v0:a v1:b ex-1",         // bad edge endpoint
		"query x 1 graph v0:a v1:b e0-z",         // bad edge endpoint
		"query x 1 graph v0:a v1:b e0-9",         // dangling edge
		"query x 1 graph v0:a v1:b q0",           // unknown token
		"query x 0 path a b",                     // zero weight (workload validation)
		"query x 1 path a b\nquery x 1 path a b", // duplicate IDs
	}
	for _, in := range cases {
		if _, err := ParseWorkload(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestWorkloadCodecRoundTrip(t *testing.T) {
	w := Fig1Workload()
	var sb strings.Builder
	if err := WriteWorkload(&sb, w); err != nil {
		t.Fatal(err)
	}
	back, err := ParseWorkload(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != w.Len() || back.TotalWeight() != w.TotalWeight() {
		t.Fatalf("round trip: len %d->%d weight %g->%g",
			w.Len(), back.Len(), w.TotalWeight(), back.TotalWeight())
	}
	for i, q := range w.Queries() {
		bq := back.Queries()[i]
		if bq.ID != q.ID || bq.Weight != q.Weight {
			t.Fatalf("query %d metadata mismatch", i)
		}
		if !iso.Isomorphic(bq.Pattern, q.Pattern) {
			t.Fatalf("query %s pattern changed", q.ID)
		}
	}
}

func TestPropertyWorkloadRoundTrip(t *testing.T) {
	alphabet := []graph.Label{"a", "b", "c"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, err := GenerateWorkload(DefaultMix(1+r.Intn(10)), alphabet, r)
		if err != nil {
			return false
		}
		var sb strings.Builder
		if err := WriteWorkload(&sb, w); err != nil {
			return false
		}
		back, err := ParseWorkload(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if back.Len() != w.Len() {
			return false
		}
		for i, q := range w.Queries() {
			if !iso.Isomorphic(back.Queries()[i].Pattern, q.Pattern) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	out := Describe(Fig1Workload())
	if !strings.Contains(out, "3 queries") || !strings.Contains(out, "q1") {
		t.Fatalf("Describe output:\n%s", out)
	}
}
