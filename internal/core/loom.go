// Package core implements LOOM, the workload-aware streaming graph
// partitioner that is the paper's primary contribution (§4).
//
// LOOM buffers a sliding window over the incoming graph-stream. Inside the
// window, a pattern.Tracker detects sub-graphs matching the frequent query
// motifs of a TPSTry++ built from the workload. When the oldest vertex of
// the window is due to be assigned, LOOM checks whether it participates in
// a motif match: if so, the whole matching sub-graph — together with any
// overlapping matches (§4.4) — is assigned to a single partition at once,
// using the sub-graph extension of the Linear Deterministic Greedy
// heuristic; isolated vertices and non-motif sub-graphs are assigned by
// plain LDG. The result is a partitioning in which the sub-graphs a random
// workload query traverses tend to live inside one partition.
package core

import (
	"fmt"

	"loom/internal/graph"
	"loom/internal/ident"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/stream"
)

// Config parameterises a LOOM partitioner.
type Config struct {
	// Partition carries the LDG parameters (k, expected vertices, slack,
	// seed).
	Partition partition.Config
	// WindowSize is the stream-window vertex capacity (paper §4.1). Zero
	// defaults to 256.
	WindowSize int
	// Threshold is the motif frequency threshold T (paper §4.2): TPSTry++
	// nodes at or above it are motifs worth keeping intact.
	Threshold float64
	// DisableMotifs turns off motif tracking entirely, reducing LOOM to a
	// windowed LDG (ablation E9).
	DisableMotifs bool
	// Verify makes the tracker confirm signature matches with exact
	// isomorphism before trusting them (ablation E10).
	Verify bool
	// SplitOverlaps disables the co-assignment of overlapping motif
	// matches: only the single largest match containing the evicted vertex
	// is kept together (ablation E11). Default false = paper behaviour.
	SplitOverlaps bool
	// MaxMatchesPerVertex bounds tracker memory; see pattern.Options.
	MaxMatchesPerVertex int
	// TraversalWeighting enables the paper's future-work extension: LDG
	// scores each neighbour edge by TraversalBias plus the TPSTry++
	// probability that the workload traverses an edge with those labels,
	// instead of counting every edge as 1 (experiment E12).
	TraversalWeighting bool
	// TraversalBias is the baseline weight added to every edge under
	// TraversalWeighting, so structurally useful but never-traversed edges
	// still attract placement. Zero defaults to 0.1.
	TraversalBias float64
	// MaxGroupSize caps motif-group assignments (the paper's future-work
	// local partitioning of large matched sub-graphs, experiment E13):
	// larger groups are split into connected blocks of at most this many
	// vertices, each placed as a unit. Zero = unlimited (paper behaviour).
	MaxGroupSize int
}

// DefaultWindowSize is used when Config.WindowSize is zero.
const DefaultWindowSize = 256

// Stats counts partitioner activity.
type Stats struct {
	VerticesAssigned  int
	EdgesObserved     int
	EdgesDeferred     int // edges arriving after one endpoint was assigned
	MotifGroups       int // group assignments performed
	GroupedVertices   int // vertices assigned as part of a motif group
	SingletonVertices int // vertices assigned individually
	LargestGroup      int
	GroupsSplit       int // oversized groups split by MaxGroupSize
	Tracker           pattern.Stats
}

// Partitioner is a LOOM instance. It consumes a graph-stream element by
// element and accumulates a partition assignment. Not safe for concurrent
// use.
type Partitioner struct {
	cfg     Config
	trie    *motif.Trie
	window  *stream.Window
	tracker *pattern.Tracker
	ldg     *partition.Greedy
	// verts/labelIDs remember every observed vertex's label so
	// traversal-weighted placement can score edges to already-assigned
	// neighbours: verts interns the stream's VertexIDs and labelIDs (indexed
	// by the interned handle) holds LabelIDs from the factory's shared label
	// interner. A real deployment would read labels from the store; the
	// simulator keeps them in memory (O(n) x 4 bytes).
	verts    *ident.Interner
	labelIDs []ident.LabelID
	labelSet *ident.Labels
	// adjacency, when set, supplies the full neighbour list of a vertex at
	// assignment time (restreaming passes, where the graph has been fully
	// observed before); nil keeps the streaming-only view of edges seen so
	// far.
	adjacency func(graph.VertexID) []graph.VertexID
	// nbrs is the singleton-placement neighbour scratch: assignSingle
	// concatenates window and assigned neighbours here instead of
	// allocating per eviction. Greedy scores the slice transiently and
	// never retains it.
	nbrs  []graph.VertexID
	stats Stats
}

// New returns a LOOM partitioner over the workload summarised by trie.
// The trie may be empty (or DisableMotifs set), in which case LOOM behaves
// as windowed LDG.
func New(cfg Config, trie *motif.Trie) (*Partitioner, error) {
	if trie == nil {
		return nil, fmt.Errorf("core: nil TPSTry++ (use an empty trie to run without a workload)")
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = DefaultWindowSize
	}
	if cfg.WindowSize < 1 {
		return nil, fmt.Errorf("core: window size %d < 1", cfg.WindowSize)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold %v out of [0,1]", cfg.Threshold)
	}
	// The window graph shares the signature factory's label interner, so
	// the tracker can probe factor tables by LabelID instead of hashing
	// label strings on every observed edge.
	w, err := stream.NewWindowWithLabels(cfg.WindowSize, trie.Factory().Labels())
	if err != nil {
		return nil, err
	}
	ldg, err := partition.NewLDG(cfg.Partition)
	if err != nil {
		return nil, err
	}
	if cfg.TraversalWeighting && cfg.TraversalBias == 0 {
		cfg.TraversalBias = 0.1
	}
	if cfg.MaxGroupSize < 0 {
		return nil, fmt.Errorf("core: MaxGroupSize %d < 0", cfg.MaxGroupSize)
	}
	return &Partitioner{
		cfg:    cfg,
		trie:   trie,
		window: w,
		tracker: pattern.NewTracker(trie, pattern.Options{
			Threshold:           cfg.Threshold,
			MaxMatchesPerVertex: cfg.MaxMatchesPerVertex,
			Verify:              cfg.Verify,
		}),
		ldg:      ldg,
		verts:    ident.NewInterner(),
		labelSet: trie.Factory().Labels(),
	}, nil
}

// noteLabel records v's label for traversal-weighted scoring.
func (p *Partitioner) noteLabel(v graph.VertexID, l graph.Label) {
	h := p.verts.Intern(int64(v))
	for int(h) >= len(p.labelIDs) {
		p.labelIDs = append(p.labelIDs, ident.NoLabel)
	}
	p.labelIDs[h] = p.labelSet.Intern(string(l))
}

// Assignment returns the accumulated placement.
func (p *Partitioner) Assignment() *partition.Assignment { return p.ldg.Assignment() }

// Stats returns a copy of the activity counters (tracker stats included).
func (p *Partitioner) Stats() Stats {
	s := p.stats
	s.Tracker = p.tracker.Stats()
	return s
}

// Window exposes the live window (read-only) for inspection tools.
func (p *Partitioner) Window() *stream.Window { return p.window }

// SetPrior seeds the base LDG with a previous pass's assignment for
// workload-aware restreaming (see partition.PriorAware): not-yet-replaced
// neighbours score with their prior placement and each vertex's own prior
// partition earns selfWeight, for singleton and motif-group placement
// alike. Call before consuming any element.
func (p *Partitioner) SetPrior(prev *partition.Assignment, selfWeight float64) {
	p.ldg.SetPrior(prev, selfWeight)
}

// SetAdjacencyOracle supplies full-graph adjacency for restreaming passes:
// evicted vertices score with their complete neighbour list instead of only
// the edges the stream has delivered so far, so the prior placements of
// later-arriving neighbours count too (the information advantage restreaming
// exists to exploit). Neighbours that are neither assigned nor covered by a
// prior still contribute nothing, which is why a cold-start pass behaves
// identically with or without the oracle.
func (p *Partitioner) SetAdjacencyOracle(fn func(graph.VertexID) []graph.VertexID) {
	p.adjacency = fn
}

// neighborsOf returns the scoring neighbour list for an evicted vertex.
// The result is freshly allocated (or oracle-owned), so group placement may
// retain it across further evictions; the singleton path uses
// neighborsScratch instead.
func (p *Partitioner) neighborsOf(ev stream.Eviction) []graph.VertexID {
	if p.adjacency != nil {
		return p.adjacency(ev.V)
	}
	return append(append([]graph.VertexID(nil), ev.WindowNeighbors...), ev.AssignedNeighbors...)
}

// neighborsScratch is neighborsOf into the reusable scratch buffer: valid
// only until the next call, for callers that score and drop the list.
//
//loom:hotpath
func (p *Partitioner) neighborsScratch(ev stream.Eviction) []graph.VertexID {
	if p.adjacency != nil {
		return p.adjacency(ev.V)
	}
	p.nbrs = append(p.nbrs[:0], ev.WindowNeighbors...)
	p.nbrs = append(p.nbrs, ev.AssignedNeighbors...)
	return p.nbrs
}

// Consume processes one stream element.
func (p *Partitioner) Consume(el stream.Element) error {
	switch el.Kind {
	case stream.VertexElement:
		return p.AddVertex(el.V, el.Label)
	case stream.EdgeElement:
		return p.AddEdge(el.V, el.U)
	case stream.RemoveVertexElement:
		return p.RemoveVertex(el.V)
	case stream.RemoveEdgeElement:
		return p.RemoveEdge(el.V, el.U)
	}
	return fmt.Errorf("core: unknown element kind %d", el.Kind)
}

// AddVertex feeds a vertex element. If the window overflows, the oldest
// vertex (and possibly its motif group) is assigned.
func (p *Partitioner) AddVertex(v graph.VertexID, l graph.Label) error {
	if p.Assignment().Assigned(v) {
		return fmt.Errorf("core: vertex %d already assigned", v)
	}
	p.noteLabel(v, l)
	if ev := p.window.AddVertex(v, l); ev != nil {
		p.assignEvicted(*ev)
	}
	return nil
}

// AddEdge feeds an edge element. Both endpoints must have been seen as
// vertex elements (resident or already assigned).
func (p *Partitioner) AddEdge(u, v graph.VertexID) error {
	knownU := p.window.Resident(u) || p.Assignment().Assigned(u)
	knownV := p.window.Resident(v) || p.Assignment().Assigned(v)
	if !knownU || !knownV {
		return fmt.Errorf("core: edge {%d,%d} references unseen vertex", u, v)
	}
	bothResident, err := p.window.AddEdge(u, v)
	if err != nil {
		return err
	}
	p.stats.EdgesObserved++
	if !bothResident {
		p.stats.EdgesDeferred++
		return nil
	}
	if p.cfg.DisableMotifs {
		return nil
	}
	return p.tracker.ObserveEdge(u, v, p.window.Graph())
}

// RemoveVertex deletes a previously seen vertex. A window-resident vertex
// is discarded without ever being assigned (its window edges and motif
// matches die with it); an assigned vertex loses its placement, freeing
// partition capacity. Unseen vertices are an error, mirroring AddEdge's
// validation.
func (p *Partitioner) RemoveVertex(v graph.VertexID) error {
	switch {
	case p.window.Resident(v):
		p.window.Discard(v)
		p.tracker.RemoveVertex(v)
	case p.Assignment().Assigned(v):
		p.Assignment().Remove(v)
		// Residents may hold deferred edges to the assigned vertex; a later
		// eviction must not surface a deleted endpoint.
		p.window.ForgetAssigned(v)
	default:
		return fmt.Errorf("core: remove of unseen vertex %d", v)
	}
	// Forget the label so traversal weighting stops scoring edges into the
	// deleted vertex above baseline; the handle is recycled on re-add.
	if h, ok := p.verts.Lookup(int64(v)); ok {
		if int(h) < len(p.labelIDs) {
			p.labelIDs[h] = ident.NoLabel
		}
		p.verts.Remove(int64(v))
	}
	return nil
}

// RemoveEdge deletes a previously delivered edge. Both endpoints must
// still be known (resident or assigned); the window's bookkeeping and any
// motif match built on the edge are unwound. Edges between two assigned
// vertices have already left the window entirely, so only the tracker
// check applies there (a no-op: matches never outlive eviction).
func (p *Partitioner) RemoveEdge(u, v graph.VertexID) error {
	knownU := p.window.Resident(u) || p.Assignment().Assigned(u)
	knownV := p.window.Resident(v) || p.Assignment().Assigned(v)
	if !knownU || !knownV {
		return fmt.Errorf("core: remove of edge {%d,%d} referencing unseen vertex", u, v)
	}
	p.window.RemoveEdge(u, v)
	if !p.cfg.DisableMotifs {
		p.tracker.RemoveEdge(u, v)
	}
	return nil
}

// Finish drains the window, assigning every remaining vertex, and returns
// the final assignment.
func (p *Partitioner) Finish() *partition.Assignment {
	for {
		ev, ok := p.window.EvictOldest()
		if !ok {
			break
		}
		p.assignEvicted(ev)
	}
	return p.Assignment()
}

// assignEvicted places an evicted vertex: wholly with its motif group when
// it participates in one, individually otherwise (§4.4).
func (p *Partitioner) assignEvicted(ev stream.Eviction) {
	if p.cfg.DisableMotifs {
		p.assignSingle(ev)
		return
	}
	group := p.groupFor(ev.V)
	if len(group) <= 1 {
		p.assignSingle(ev)
		p.tracker.RemoveVertex(ev.V)
		return
	}

	// Gather neighbour information per group member. ev.V has already left
	// the window; the others are force-evicted now.
	neighbors := make(map[graph.VertexID][]graph.VertexID, len(group))
	neighbors[ev.V] = p.neighborsOf(ev)
	for _, m := range group {
		if m == ev.V {
			continue
		}
		mev, ok := p.window.Evict(m)
		if !ok {
			// Group member not resident (should not happen: matches only
			// span resident vertices); fall back to no neighbour info.
			continue
		}
		neighbors[m] = p.neighborsOf(mev)
	}

	blocks := p.splitGroup(ev.V, group, neighbors)
	if len(blocks) > 1 {
		p.stats.GroupsSplit++
	}
	for _, block := range blocks {
		p.placeGroup(block, neighbors)
		p.stats.MotifGroups++
		p.stats.GroupedVertices += len(block)
		p.stats.VerticesAssigned += len(block)
		if len(block) > p.stats.LargestGroup {
			p.stats.LargestGroup = len(block)
		}
	}
	for _, m := range group {
		p.tracker.RemoveVertex(m)
	}
}

// placeGroup assigns one block atomically, with or without traversal
// weighting.
func (p *Partitioner) placeGroup(block []graph.VertexID, neighbors map[graph.VertexID][]graph.VertexID) {
	if p.cfg.TraversalWeighting {
		p.ldg.PlaceGroupWeighted(block, neighbors, p.edgeWeight)
		return
	}
	p.ldg.PlaceGroup(block, neighbors)
}

// edgeWeight implements the future-work LDG extension: an edge counts for
// the baseline bias plus the probability the workload traverses an edge
// with its endpoint labels. With interned labels and the trie's memoised
// edge-probability table this is a handful of slice reads, no hashing.
func (p *Partitioner) edgeWeight(v, n graph.VertexID) float64 {
	hv, okV := p.verts.Lookup(int64(v))
	hn, okN := p.verts.Lookup(int64(n))
	if !okV || !okN {
		return p.cfg.TraversalBias
	}
	return p.cfg.TraversalBias + p.trie.PEdgeByID(p.labelIDs[hv], p.labelIDs[hn])
}

// splitGroup applies MaxGroupSize: groups within the cap (or with the cap
// disabled) come back as one block; larger groups are chunked along a BFS
// order over the group's internal adjacency starting from the evicted
// vertex, so each block is a locally connected region of the matched
// sub-graph (the paper's future-work local partitioning).
func (p *Partitioner) splitGroup(start graph.VertexID, group []graph.VertexID, neighbors map[graph.VertexID][]graph.VertexID) [][]graph.VertexID {
	max := p.cfg.MaxGroupSize
	if max == 0 || len(group) <= max {
		return [][]graph.VertexID{group}
	}
	inGroup := make(map[graph.VertexID]struct{}, len(group))
	for _, v := range group {
		inGroup[v] = struct{}{}
	}
	// BFS over group-internal edges (derived from the captured neighbour
	// lists, which include both window and assigned neighbours).
	visited := map[graph.VertexID]struct{}{start: {}}
	order := []graph.VertexID{start}
	queue := []graph.VertexID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range neighbors[v] {
			if _, in := inGroup[u]; !in {
				continue
			}
			if _, seen := visited[u]; seen {
				continue
			}
			visited[u] = struct{}{}
			order = append(order, u)
			queue = append(queue, u)
		}
	}
	// Overlap closures are connected, but guard against unreachable
	// members (e.g. truncated neighbour info) by appending them.
	for _, v := range group {
		if _, seen := visited[v]; !seen {
			order = append(order, v)
		}
	}
	var blocks [][]graph.VertexID
	for i := 0; i < len(order); i += max {
		end := i + max
		if end > len(order) {
			end = len(order)
		}
		blocks = append(blocks, order[i:end])
	}
	return blocks
}

// groupFor returns the vertex set to assign together with v: the transitive
// overlap closure of its matches (paper behaviour) or just its largest
// match (SplitOverlaps ablation). The result includes v; a vertex with no
// matches yields {v}.
func (p *Partitioner) groupFor(v graph.VertexID) []graph.VertexID {
	if p.cfg.SplitOverlaps {
		ms := p.tracker.MatchesContaining(v)
		if len(ms) == 0 {
			return []graph.VertexID{v}
		}
		return ms[0].Vertices()
	}
	return p.tracker.GroupFor(v)
}

// assignSingle places one vertex by LDG (traversal-weighted when enabled).
//
//loom:hotpath
func (p *Partitioner) assignSingle(ev stream.Eviction) {
	neighbors := p.neighborsScratch(ev)
	if p.cfg.TraversalWeighting {
		p.ldg.PlaceWeighted(ev.V, neighbors, p.edgeWeight)
	} else {
		p.ldg.Place(ev.V, neighbors)
	}
	p.stats.SingletonVertices++
	p.stats.VerticesAssigned++
}

// Name identifies the partitioner in reports.
func (p *Partitioner) Name() string {
	if p.cfg.DisableMotifs {
		return "loom-nomotifs"
	}
	return "loom"
}

// Run consumes an entire stream source and finishes, returning the final
// assignment. It is the convenience entry point used by the CLI, examples
// and benchmarks.
func (p *Partitioner) Run(src stream.Source) (*partition.Assignment, error) {
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		if err := p.Consume(el); err != nil {
			return nil, err
		}
	}
	return p.Finish(), nil
}
