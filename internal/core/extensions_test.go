package core

import (
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/stream"
)

func TestTraversalWeightingRuns(t *testing.T) {
	g := graph.Fig1Graph()
	cfg := baseConfig(8, 2)
	cfg.TraversalWeighting = true
	p, err := New(cfg, fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.TraversalBias != 0.1 {
		t.Fatalf("default bias = %v, want 0.1", p.cfg.TraversalBias)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 8 {
		t.Fatalf("assigned %d, want 8", a.Len())
	}
	// The square must still be kept whole: weighting changes scores, not
	// group atomicity.
	p0 := a.Get(1)
	for _, v := range []graph.VertexID{2, 5, 6} {
		if a.Get(v) != p0 {
			t.Fatalf("square split under weighting: %d on %d vs %d", v, a.Get(v), p0)
		}
	}
}

func TestEdgeWeightFallsBackToBias(t *testing.T) {
	cfg := baseConfig(8, 2)
	cfg.TraversalWeighting = true
	cfg.TraversalBias = 0.25
	p, err := New(cfg, fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	// Unknown labels: bias only.
	if w := p.edgeWeight(100, 200); w != 0.25 {
		t.Fatalf("weight for unknown labels = %v, want bias 0.25", w)
	}
	// Known labels of a hot motif: bias + P(ab) = 0.25 + 1.0.
	p.noteLabel(1, "a")
	p.noteLabel(2, "b")
	if w := p.edgeWeight(1, 2); w != 1.25 {
		t.Fatalf("weight for ab = %v, want 1.25", w)
	}
	// Known labels never traversed together: bias only (P(dd)=0).
	p.noteLabel(3, "d")
	p.noteLabel(4, "d")
	if w := p.edgeWeight(3, 4); w != 0.25 {
		t.Fatalf("weight for dd = %v, want 0.25", w)
	}
}

func TestMaxGroupSizeValidation(t *testing.T) {
	cfg := baseConfig(8, 2)
	cfg.MaxGroupSize = -1
	if _, err := New(cfg, emptyTrie()); err == nil {
		t.Fatal("negative MaxGroupSize should be rejected")
	}
}

func TestMaxGroupSizeSplitsChain(t *testing.T) {
	// A 4-chain abcd is one motif group; with MaxGroupSize 2 it must be
	// split into two blocks of two, and the largest recorded group must
	// respect the cap.
	cfg := baseConfig(8, 2)
	cfg.MaxGroupSize = 2
	p, err := New(cfg, fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Path("a", "b", "c", "d")
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("assigned %d, want 4", a.Len())
	}
	st := p.Stats()
	if st.LargestGroup > 2 {
		t.Fatalf("largest group %d exceeds cap 2", st.LargestGroup)
	}
	if st.GroupsSplit == 0 {
		t.Fatal("the abcd group should have been split")
	}
	// BFS chunking from the evicted vertex keeps blocks contiguous: the
	// first block is {0,1}, the second {2,3}.
	if a.Get(0) != a.Get(1) {
		t.Error("block {0,1} split")
	}
	if a.Get(2) != a.Get(3) {
		t.Error("block {2,3} split")
	}
}

func TestSplitGroupUnlimitedPassthrough(t *testing.T) {
	p, err := New(baseConfig(8, 2), fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	group := []graph.VertexID{1, 2, 3}
	blocks := p.splitGroup(1, group, map[graph.VertexID][]graph.VertexID{})
	if len(blocks) != 1 || len(blocks[0]) != 3 {
		t.Fatalf("unlimited split = %v, want single block", blocks)
	}
}

func TestSplitGroupUnreachableMembersAppended(t *testing.T) {
	cfg := baseConfig(8, 2)
	cfg.MaxGroupSize = 2
	p, err := New(cfg, fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	// Neighbour info deliberately omits 9: BFS cannot reach it, but it
	// must still be placed in some block.
	group := []graph.VertexID{1, 2, 9}
	neighbors := map[graph.VertexID][]graph.VertexID{1: {2}, 2: {1}}
	blocks := p.splitGroup(1, group, neighbors)
	total := 0
	seen := map[graph.VertexID]bool{}
	for _, b := range blocks {
		if len(b) > 2 {
			t.Fatalf("block %v exceeds cap", b)
		}
		for _, v := range b {
			seen[v] = true
			total++
		}
	}
	if total != 3 || !seen[9] {
		t.Fatalf("blocks %v must cover the whole group", blocks)
	}
}

func TestWeightedPlacementPrefersHotEdges(t *testing.T) {
	// Direct check of the weighted LDG score: a vertex with one hot-motif
	// neighbour (ab, p=1.0) on partition 1 and two cold-pair neighbours
	// (dd, p=0) on partition 0 should follow the hot edge under
	// traversal weighting, but the cold pair under unit weights.
	trie := fig1Trie(t)
	mk := func(weighting bool) partition.ID {
		cfg := Config{
			Partition:          partition.Config{K: 2, ExpectedVertices: 100, Slack: 2, Seed: 3},
			WindowSize:         4,
			Threshold:          0.3,
			TraversalWeighting: weighting,
			TraversalBias:      0.01,
		}
		p, err := New(cfg, trie)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-place: hot neighbour 10 (label b) on partition 1; cold
		// neighbours 20, 21 (label d) on partition 0.
		p.noteLabel(10, "b")
		p.noteLabel(20, "d")
		p.noteLabel(21, "d")
		if err := p.ldg.Assignment().Set(10, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.ldg.Assignment().Set(20, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.ldg.Assignment().Set(21, 0); err != nil {
			t.Fatal(err)
		}
		p.noteLabel(1, "a")
		ev := stream.Eviction{V: 1, Label: "a", AssignedNeighbors: []graph.VertexID{10, 20, 21}}
		p.assignSingle(ev)
		return p.ldg.Assignment().Get(1)
	}
	if got := mk(false); got != 0 {
		t.Fatalf("unit weights: placed on %d, want 0 (two cold edges beat one hot)", got)
	}
	if got := mk(true); got != 1 {
		t.Fatalf("traversal weights: placed on %d, want 1 (hot ab edge dominates)", got)
	}
}
