package core

// Workload-aware restreaming: re-run the full LOOM partitioner — window,
// motif tracker and group placement included — over an already-partitioned
// stream, each pass seeded with the previous assignment. Motif matches keep
// being co-located, while the prior-aware LDG underneath stabilises
// placements and lowers the cut across passes, exactly as ReLDG does for
// the plain heuristic (see internal/partition/restream.go).

import (
	"loom/internal/graph"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/stream"
)

// Restream runs LOOM over g for rcfg.Passes passes. base is the cold-start
// vertex order (empty = g.Vertices()); prev is the assignment to improve
// (nil to start from scratch). Each pass streams the graph via
// stream.FromVertexOrder, so deferred-edge and window semantics match a
// single-pass run on the same order.
func Restream(g *graph.Graph, trie *motif.Trie, cfg Config, rcfg partition.RestreamConfig, base []graph.VertexID, prev *partition.Assignment) (*partition.RestreamResult, error) {
	return partition.Restream(g, base, prev, rcfg, func(pass int, order []graph.VertexID, prevA *partition.Assignment) (*partition.Assignment, error) {
		p, err := New(cfg, trie)
		if err != nil {
			return nil, err
		}
		if prevA != nil {
			p.SetPrior(prevA, rcfg.SelfWeight)
		}
		p.SetAdjacencyOracle(g.Neighbors)
		return p.Run(stream.NewSliceSource(stream.FromVertexOrder(g, order)))
	})
}
