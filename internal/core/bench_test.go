package core

import (
	"math/rand"
	"testing"

	"loom/internal/gen"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/stream"
)

// BenchmarkLoomRun measures a full LOOM pass (window + tracker + group LDG)
// over a 2000-vertex BA stream, reporting ns/vertex.
func BenchmarkLoomRun(b *testing.B) {
	const n = 2000
	r := rand.New(rand.NewSource(7))
	alphabet := gen.DefaultAlphabet(4)
	lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: r}
	g, err := gen.BarabasiAlbert(n, 2, lab, r)
	if err != nil {
		b.Fatal(err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(12), alphabet, r)
	if err != nil {
		b.Fatal(err)
	}
	trie := motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{})
	if err := w.BuildTrie(trie); err != nil {
		b.Fatal(err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Partition:  partition.Config{K: 8, ExpectedVertices: n, Slack: 1.2, Seed: 1},
		WindowSize: 256,
		Threshold:  0.05,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(cfg, trie)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(stream.NewSliceSource(elems)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/vertex")
}
