package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/stream"
)

func fig1Trie(t testing.TB) *motif.Trie {
	t.Helper()
	f := signature.NewFactoryForAlphabet([]graph.Label{"a", "b", "c", "d"})
	tr := motif.New(f, motif.Options{MaxMotifVertices: 4})
	if err := query.Fig1Workload().BuildTrie(tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

func emptyTrie() *motif.Trie {
	return motif.New(signature.NewFactory(), motif.Options{})
}

func baseConfig(n, k int) Config {
	return Config{
		Partition:  partition.Config{K: k, ExpectedVertices: n, Slack: 1.5, Seed: 1},
		WindowSize: 8,
		Threshold:  0.3,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(baseConfig(8, 2), nil); err == nil {
		t.Fatal("nil trie should be rejected")
	}
	bad := baseConfig(8, 2)
	bad.WindowSize = -1
	if _, err := New(bad, emptyTrie()); err == nil {
		t.Fatal("negative window should be rejected")
	}
	bad = baseConfig(8, 2)
	bad.Threshold = 1.5
	if _, err := New(bad, emptyTrie()); err == nil {
		t.Fatal("threshold > 1 should be rejected")
	}
	bad = baseConfig(8, 0)
	if _, err := New(bad, emptyTrie()); err == nil {
		t.Fatal("k=0 should be rejected")
	}
}

func TestDefaultWindowApplied(t *testing.T) {
	cfg := baseConfig(8, 2)
	cfg.WindowSize = 0
	p, err := New(cfg, emptyTrie())
	if err != nil {
		t.Fatal(err)
	}
	if p.Window().Capacity() != DefaultWindowSize {
		t.Fatalf("window capacity = %d, want %d", p.Window().Capacity(), DefaultWindowSize)
	}
}

func TestRunAssignsEveryVertex(t *testing.T) {
	g := graph.Fig1Graph()
	p, err := New(baseConfig(8, 2), fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 8 {
		t.Fatalf("assigned %d, want 8", a.Len())
	}
	st := p.Stats()
	if st.VerticesAssigned != 8 {
		t.Fatalf("stats vertices = %d, want 8", st.VerticesAssigned)
	}
	if st.EdgesObserved != g.NumEdges() {
		t.Fatalf("stats edges = %d, want %d", st.EdgesObserved, g.NumEdges())
	}
}

func TestSquareKeptWhole(t *testing.T) {
	g := graph.Fig1Graph()
	p, err := New(baseConfig(8, 2), fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatal(err)
	}
	square := []graph.VertexID{1, 2, 5, 6}
	p0 := a.Get(square[0])
	for _, v := range square {
		if a.Get(v) != p0 {
			t.Fatalf("square vertex %d on %d, want %d", v, a.Get(v), p0)
		}
	}
	if p.Stats().MotifGroups == 0 {
		t.Fatal("at least one motif group should have been assigned")
	}
}

func TestDisableMotifsNeverGroups(t *testing.T) {
	g := graph.Fig1Graph()
	cfg := baseConfig(8, 2)
	cfg.DisableMotifs = true
	p, err := New(cfg, fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	elems, _ := stream.FromGraph(g, stream.TemporalOrder, nil)
	if _, err := p.Run(stream.NewSliceSource(elems)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.MotifGroups != 0 || st.GroupedVertices != 0 {
		t.Fatalf("motif grouping should be disabled: %+v", st)
	}
	if st.SingletonVertices != 8 {
		t.Fatalf("all vertices should be singletons: %+v", st)
	}
	if p.Name() != "loom-nomotifs" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestAddVertexTwiceRejected(t *testing.T) {
	p, err := New(baseConfig(4, 2), emptyTrie())
	if err != nil {
		t.Fatal(err)
	}
	// Window size 8 > 4 vertices: nothing evicted until Finish.
	if err := p.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	p.Finish()
	if err := p.AddVertex(1, "a"); err == nil {
		t.Fatal("re-adding an assigned vertex should error")
	}
}

func TestAddEdgeUnknownEndpoint(t *testing.T) {
	p, err := New(baseConfig(4, 2), emptyTrie())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(1, 99); err == nil {
		t.Fatal("edge to unseen vertex should error")
	}
}

func TestDeferredEdgeCounted(t *testing.T) {
	cfg := baseConfig(6, 2)
	cfg.WindowSize = 2
	p, err := New(cfg, emptyTrie())
	if err != nil {
		t.Fatal(err)
	}
	// Fill window, force eviction of 1, then send edge (1,3).
	mustAdd(t, p, 1, "a")
	mustAdd(t, p, 2, "a")
	mustAdd(t, p, 3, "a") // evicts 1
	if err := p.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if p.Stats().EdgesDeferred != 1 {
		t.Fatalf("deferred = %d, want 1", p.Stats().EdgesDeferred)
	}
	p.Finish()
}

func mustAdd(t *testing.T, p *Partitioner, v graph.VertexID, l graph.Label) {
	t.Helper()
	if err := p.AddVertex(v, l); err != nil {
		t.Fatal(err)
	}
}

func TestConsumeDispatch(t *testing.T) {
	p, err := New(baseConfig(4, 2), emptyTrie())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Consume(stream.Element{Kind: stream.VertexElement, V: 1, Label: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Consume(stream.Element{Kind: stream.VertexElement, V: 2, Label: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Consume(stream.Element{Kind: stream.EdgeElement, V: 1, U: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Consume(stream.Element{Kind: 99}); err == nil {
		t.Fatal("unknown element kind should error")
	}
}

func TestSplitOverlapsUsesLargestMatchOnly(t *testing.T) {
	// A chain a-b-c-d (q3's motif) in a window; with SplitOverlaps the
	// assignment group for the evicted vertex is its largest single match,
	// not the transitive closure. Build two overlapping abc/bcd motifs
	// via a 5-chain a-b-c-d + extra c (chain abcdc is not one motif).
	cfg := baseConfig(8, 2)
	cfg.SplitOverlaps = true
	p, err := New(cfg, fig1Trie(t))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Path("a", "b", "c", "d")
	elems, _ := stream.FromGraph(g, stream.TemporalOrder, nil)
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("assigned %d, want 4", a.Len())
	}
	// The whole abcd chain is itself a q3 motif, so even the largest
	// single match spans all 4: they must be co-located.
	p0 := a.Get(0)
	for v := graph.VertexID(1); v < 4; v++ {
		if a.Get(v) != p0 {
			t.Fatalf("chain vertex %d on %d, want %d", v, a.Get(v), p0)
		}
	}
}

func TestBalanceRespectedUnderGrouping(t *testing.T) {
	// Many disjoint ab edges: groups of 2; partitions should stay balanced
	// because LDG's capacity weight penalises overfull targets.
	tr := fig1Trie(t)
	n := 40
	cfg := Config{
		Partition:  partition.Config{K: 4, ExpectedVertices: n, Slack: 1.2, Seed: 9},
		WindowSize: 4,
		Threshold:  0.3,
	}
	p, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	for i := 0; i < n; i += 2 {
		g.AddVertex(graph.VertexID(i), "a")
		g.AddVertex(graph.VertexID(i+1), "b")
		if err := g.AddEdge(graph.VertexID(i), graph.VertexID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	elems, _ := stream.FromGraph(g, stream.TemporalOrder, nil)
	a, err := p.Run(stream.NewSliceSource(elems))
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		if s := a.Size(partition.ID(pid)); s > 14 {
			t.Fatalf("partition %d holds %d of %d vertices", pid, s, n)
		}
	}
	// Every ab pair must be co-located (each is a frequent motif).
	for i := 0; i < n; i += 2 {
		if a.Get(graph.VertexID(i)) != a.Get(graph.VertexID(i+1)) {
			t.Fatalf("pair (%d,%d) split", i, i+1)
		}
	}
}

func TestPropertyLoomAssignsAllUnderAnyOrder(t *testing.T) {
	tr := fig1Trie(t)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random graph over the workload alphabet.
		n := 10 + r.Intn(40)
		g := graph.New()
		alphabet := []graph.Label{"a", "b", "c", "d"}
		for i := 0; i < n; i++ {
			g.AddVertex(graph.VertexID(i), alphabet[r.Intn(4)])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.1 {
					if err := g.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
						return false
					}
				}
			}
		}
		orders := []stream.Order{stream.RandomOrder, stream.BFSOrdering, stream.AdversarialOrder, stream.TemporalOrder}
		o := orders[r.Intn(len(orders))]
		elems, err := stream.FromGraph(g, o, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		cfg := Config{
			Partition:  partition.Config{K: 2 + r.Intn(3), ExpectedVertices: n, Slack: 1.3, Seed: seed},
			WindowSize: 1 + r.Intn(16),
			Threshold:  0.25,
		}
		p, err := New(cfg, tr)
		if err != nil {
			return false
		}
		a, err := p.Run(stream.NewSliceSource(elems))
		if err != nil {
			return false
		}
		if a.Len() != n {
			return false
		}
		// Load accounting is consistent.
		sum := 0
		for _, s := range a.Sizes() {
			sum += s
		}
		return sum == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
