package core

import (
	"math/rand"
	"testing"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/stream"
)

// restreamInstance builds a community graph plus a workload trie.
func restreamInstance(t *testing.T, n, k int, seed int64) (*graph.Graph, *motif.Trie) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	alphabet := gen.DefaultAlphabet(4)
	lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: r}
	g, err := gen.PlantedPartitionDegrees(n, k, 12, 3, lab, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(8), alphabet, r)
	if err != nil {
		t.Fatal(err)
	}
	trie := motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{MaxMotifVertices: 4})
	if err := w.BuildTrie(trie); err != nil {
		t.Fatal(err)
	}
	return g, trie
}

// TestRestreamLOOMImproves re-runs the full LOOM partitioner (motif
// tracker included) for three passes and expects the cut to drop while the
// placement stays complete and migration stays reported.
func TestRestreamLOOMImproves(t *testing.T) {
	const n, k, seed = 600, 4, 7
	g, trie := restreamInstance(t, n, k, seed)
	cfg := Config{
		Partition:  partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: seed},
		WindowSize: 64,
		Threshold:  0.05,
	}
	base, err := stream.VertexOrder(g, stream.RandomOrder, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Restream(g, trie, cfg, partition.RestreamConfig{Passes: 3}, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != n {
		t.Fatalf("final assignment covers %d of %d vertices", res.Final.Len(), n)
	}
	if len(res.Passes) != 3 {
		t.Fatalf("got %d pass stats, want 3", len(res.Passes))
	}
	if res.Passes[2].CutFraction > res.Passes[0].CutFraction {
		t.Errorf("workload-aware restream worsened cut: %.4f -> %.4f",
			res.Passes[0].CutFraction, res.Passes[2].CutFraction)
	}
	if res.Passes[1].Migrated == 0 {
		t.Error("pass 2 reported no migration")
	}
}

// TestRestreamLOOMSeedsFromPrior starts from a hash placement and expects
// the workload-aware restream to beat it.
func TestRestreamLOOMSeedsFromPrior(t *testing.T) {
	const n, k, seed = 400, 4, 3
	g, trie := restreamInstance(t, n, k, seed)
	pcfg := partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: seed}
	h, err := partition.NewHash(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := partition.PartitionStream(g, g.Vertices(), h)
	priorCut := prior.CutEdges(g)

	cfg := Config{Partition: pcfg, WindowSize: 64, Threshold: 0.05}
	res, err := Restream(g, trie, cfg, partition.RestreamConfig{Passes: 2, Priority: partition.PriorityDegree}, nil, prior)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final.CutEdges(g); got >= priorCut {
		t.Fatalf("restreamed cut %d not below hash prior %d", got, priorCut)
	}
	if res.Passes[0].Migrated == 0 {
		t.Error("restream from hash prior migrated nothing on pass 1")
	}
}
