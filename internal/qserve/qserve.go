// Package qserve is the online query subsystem: it executes path and
// pattern traversals from internal/query against a sharded store
// (internal/store) built from the serving runtime's copy-on-write views,
// counting real cross-shard messages per query under the LOOM cost model.
//
// Serving a query feeds three loops back into the partitioner:
//
//   - Observed workload: every served pattern lands in a windowed,
//     decayed frequency table (Observed) that replaces the static
//     workload the next loom restream scores against, via
//     serve.Server.SetWorkloadSource.
//   - Drift: a per-window cross-shard message rate is compared against
//     DriftConfig.MaxMessagesPerQuery; crossing it fires a background
//     TriggerRestream("workload"), so workload shift alone — without any
//     ingest — can re-partition the graph.
//   - Replication: remote fetches accumulate a heat map that seeds a
//     store.Advisor on every view refresh, replicating vertices on hot
//     query paths within a budget (Yang et al. hotspot replication).
//
// Queries read lock-free off a store built from an immutable View: the
// writer goroutine is involved only when a view is (re)built, never per
// query.
package qserve

import (
	"sort"
	"sync"
	"sync/atomic"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/serve"
	"loom/internal/store"
)

// Defaults applied by New for zero-valued options.
const (
	// DefaultMatchLimit caps matches per query unless the engine or the
	// request says otherwise.
	DefaultMatchLimit = 200
	// DefaultQueryWindow is the message-rate window in served queries
	// when neither Options nor the server's DriftConfig set one.
	DefaultQueryWindow = 64
)

// Options parameterises a query Engine.
type Options struct {
	// MatchLimit caps the match count per query (requests can tighten it
	// further). Zero defaults to DefaultMatchLimit; negative means
	// unlimited.
	MatchLimit int
	// ReplicaBudget is the number of hotspot replicas placed per view
	// refresh (0 = replication off).
	ReplicaBudget int
	// Observed configures the observed-workload tracker.
	Observed ObservedOptions
	// MaxMessagesPerQuery overrides the server's
	// DriftConfig.MaxMessagesPerQuery trigger threshold (0 = inherit).
	MaxMessagesPerQuery float64
	// QueryWindow overrides DriftConfig.QueryWindow (0 = inherit, then
	// DefaultQueryWindow).
	QueryWindow int
	// CooldownQueries is the minimum number of served queries between
	// workload-triggered restreams. Zero defaults to 4*QueryWindow.
	CooldownQueries int
	// RefreshQueries rebuilds the serving view every N served queries,
	// picking up placements that changed since the last refresh (0 =
	// refresh only on demand and after workload restreams).
	RefreshQueries int
	// StaticWorkload keeps the server's static workload: the engine does
	// not install the observed tracker as the live workload source. The
	// tracker still records (for stats); only the feedback is off.
	StaticWorkload bool
}

// view is one generation of the serving store, immutable once published.
type view struct {
	st         *store.Store
	epoch      uint64
	generation uint64
	vertices   int
	edges      int
	replicas   int
}

type heatKey struct {
	v    graph.VertexID
	from partition.ID
}

// Engine serves queries over a Server's exported views. All methods are
// safe for concurrent use.
type Engine struct {
	srv  *serve.Server
	opts Options
	obs  *Observed

	// Resolved trigger parameters (Options over DriftConfig over
	// defaults), fixed at New.
	matchLimit int
	maxMsgs    float64
	window     int
	cooldown   int

	// cur is the published view; queries load it lock-free. refreshMu
	// serialises rebuilds.
	cur        atomic.Pointer[view]
	refreshMu  sync.Mutex
	generation atomic.Uint64

	// mu guards the feedback state below.
	mu          sync.Mutex
	heat        map[heatKey]int
	queries     int64
	winQueries  int
	winMessages int
	lastRate    float64
	rateValid   bool
	sinceTrig   int
	everTrig    bool
	triggers    int64

	// restreamBusy/refreshBusy collapse concurrent background triggers
	// into one in-flight restream/refresh each.
	restreamBusy atomic.Bool
	refreshBusy  atomic.Bool
}

// New builds an Engine over srv and, unless opts.StaticWorkload is set,
// installs its observed-workload tracker as the server's live workload
// source — from then on every loom restream scores against what was
// actually served.
func New(srv *serve.Server, opts Options) *Engine {
	d := srv.DriftConfig()
	e := &Engine{
		srv:  srv,
		opts: opts,
		obs:  NewObserved(opts.Observed),
		heat: make(map[heatKey]int),
	}
	e.matchLimit = opts.MatchLimit
	if e.matchLimit == 0 {
		e.matchLimit = DefaultMatchLimit
	}
	if e.matchLimit < 0 {
		e.matchLimit = 0 // unlimited
	}
	e.maxMsgs = opts.MaxMessagesPerQuery
	if e.maxMsgs == 0 {
		e.maxMsgs = d.MaxMessagesPerQuery
	}
	e.window = opts.QueryWindow
	if e.window == 0 {
		e.window = d.QueryWindow
	}
	if e.window <= 0 {
		e.window = DefaultQueryWindow
	}
	e.cooldown = opts.CooldownQueries
	if e.cooldown <= 0 {
		e.cooldown = 4 * e.window
	}
	if !opts.StaticWorkload {
		srv.SetWorkloadSource(e.obs.Workload)
	}
	return e
}

// Observed returns the engine's workload tracker.
func (e *Engine) Observed() *Observed { return e.obs }

// Refresh rebuilds the serving view from the server's current state:
// export, shard, then replay the accumulated remote-fetch heat into a
// replication advisor (budget permitting). Concurrent refreshes
// serialise; queries keep answering from the old view until the new one
// is published.
func (e *Engine) Refresh() error {
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	v, err := e.srv.ExportView()
	if err != nil {
		return err
	}
	st, err := store.Build(v.Graph, v.Assignment)
	if err != nil {
		return err
	}
	replicas := 0
	if e.opts.ReplicaBudget > 0 {
		adv := store.NewAdvisor(st)
		type heatEntry struct {
			k heatKey
			h int
		}
		e.mu.Lock()
		entries := make([]heatEntry, 0, len(e.heat))
		for k, h := range e.heat {
			entries = append(entries, heatEntry{k: k, h: h})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].k.v != entries[j].k.v {
				return entries[i].k.v < entries[j].k.v
			}
			return entries[i].k.from < entries[j].k.from
		})
		// Seed the advisor with the full accumulated heat, then halve it:
		// hotspots persist across view generations but age out once the
		// workload stops touching them.
		for _, en := range entries {
			adv.Add(en.k.v, en.k.from, en.h)
			if en.h/2 == 0 {
				delete(e.heat, en.k)
			} else {
				e.heat[en.k] = en.h / 2
			}
		}
		e.mu.Unlock()
		replicas = adv.Apply(e.opts.ReplicaBudget)
	}
	nv := &view{
		st:         st,
		epoch:      v.Epoch,
		generation: e.generation.Add(1),
		vertices:   v.Graph.NumVertices(),
		edges:      v.Graph.NumEdges(),
		replicas:   replicas,
	}
	e.cur.Store(nv)
	return nil
}

// Query executes one request against the current view and feeds the
// outcome into the workload, drift, and replication loops. The first
// query (or any query before a view exists) refreshes implicitly.
func (e *Engine) Query(req Request) (Response, error) {
	p, err := req.Pattern()
	if err != nil {
		return Response{}, err
	}
	v := e.cur.Load()
	if v == nil {
		if err := e.Refresh(); err != nil {
			return Response{}, err
		}
		v = e.cur.Load()
	}
	limit := e.matchLimit
	if req.Limit > 0 && (limit == 0 || req.Limit < limit) {
		limit = req.Limit
	}

	eng := store.NewEngine(v.st)
	var fetches []heatKey
	eng.SetObserver(func(fv graph.VertexID, from partition.ID) {
		fetches = append(fetches, heatKey{v: fv, from: from})
	})
	var matches int
	if labels, ok := query.PathLabels(p); ok {
		matches, err = eng.MatchPath(labels, limit)
	} else {
		matches, err = eng.MatchPattern(p, limit)
	}
	if err != nil {
		return Response{}, err
	}
	stats := eng.Stats()

	e.obs.Record(query.FormatPatternSpec(p), p)
	trigger := e.noteServed(fetches, stats.Messages)
	if trigger {
		e.fireWorkloadRestream()
	}
	if n := e.opts.RefreshQueries; n > 0 && !trigger {
		e.mu.Lock()
		due := e.queries%int64(n) == 0
		e.mu.Unlock()
		if due {
			e.backgroundRefresh()
		}
	}

	return Response{
		ID:             req.ID,
		Matches:        matches,
		Limit:          limit,
		Messages:       stats.Messages,
		LocalReads:     stats.LocalReads,
		RemoteReads:    stats.RemoteReads,
		ReplicaReads:   stats.ReplicaReads,
		Epoch:          v.epoch,
		ViewGeneration: v.generation,
	}, nil
}

// noteServed folds one served query into the heat map and the windowed
// message-rate estimator, returning true when the window just closed
// above the trigger threshold (outside its cooldown).
func (e *Engine) noteServed(fetches []heatKey, messages int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries++
	for _, f := range fetches {
		e.heat[f]++
	}
	e.winQueries++
	e.winMessages += messages
	e.sinceTrig++
	if e.winQueries < e.window {
		return false
	}
	rate := float64(e.winMessages) / float64(e.winQueries)
	e.lastRate, e.rateValid = rate, true
	e.winQueries, e.winMessages = 0, 0
	if e.maxMsgs <= 0 || rate <= e.maxMsgs {
		return false
	}
	if e.everTrig && e.sinceTrig < e.cooldown {
		return false
	}
	e.everTrig = true
	e.sinceTrig = 0
	e.triggers++
	return true
}

// fireWorkloadRestream asks the server for an observed-workload restream
// in the background, refreshing the view once the swap is adopted. A
// restream already in flight (ours or anyone's) collapses the request.
func (e *Engine) fireWorkloadRestream() {
	if !e.restreamBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.restreamBusy.Store(false)
		if err := e.srv.TriggerRestream("workload"); err == nil {
			_ = e.Refresh()
		}
	}()
}

// backgroundRefresh rebuilds the view without blocking the query path.
func (e *Engine) backgroundRefresh() {
	if !e.refreshBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.refreshBusy.Store(false)
		_ = e.Refresh()
	}()
}

// EngineStats is the reader-visible state of the query engine.
type EngineStats struct {
	// Queries counts served queries; WorkloadTriggers counts restreams
	// the message-rate trigger fired.
	Queries          int64 `json:"queries"`
	WorkloadTriggers int64 `json:"workload_triggers"`
	// MsgsPerQuery is the cross-shard message rate of the last completed
	// window; meaningful only while RateValid.
	MsgsPerQuery float64 `json:"msgs_per_query"`
	RateValid    bool    `json:"rate_valid"`
	// View describes the published serving view (zero before the first
	// refresh).
	ViewEpoch      uint64 `json:"view_epoch"`
	ViewGeneration uint64 `json:"view_generation"`
	ViewVertices   int    `json:"view_vertices"`
	ViewEdges      int    `json:"view_edges"`
	ViewReplicas   int    `json:"view_replicas"`
	// ObservedPatterns/ObservedServed summarise the workload tracker;
	// TopPatterns lists its hottest entries.
	ObservedPatterns int           `json:"observed_patterns"`
	ObservedServed   int64         `json:"observed_served"`
	TopPatterns      []PatternStat `json:"top_patterns,omitempty"`
}

// Stats snapshots the engine's counters. Safe for any goroutine.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		ObservedPatterns: e.obs.Patterns(),
		ObservedServed:   e.obs.Served(),
		TopPatterns:      e.obs.Top(8),
	}
	e.mu.Lock()
	st.Queries = e.queries
	st.WorkloadTriggers = e.triggers
	st.MsgsPerQuery = e.lastRate
	st.RateValid = e.rateValid
	e.mu.Unlock()
	if v := e.cur.Load(); v != nil {
		st.ViewEpoch = v.epoch
		st.ViewGeneration = v.generation
		st.ViewVertices = v.vertices
		st.ViewEdges = v.edges
		st.ViewReplicas = v.replicas
	}
	return st
}
