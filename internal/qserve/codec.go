package qserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"loom/internal/graph"
	"loom/internal/query"
)

// ErrBadQuery is the base error of every request-parse failure: the
// caller sent something the codec or the pattern grammar rejects.
// errors.Is(err, ErrBadQuery) matches; HTTP handlers map it to 400.
var ErrBadQuery = errors.New("qserve: bad query")

// Request is one query call. The Spec uses the internal/query pattern
// grammar: "path a b c", "cycle a b c", "star c l1 l2", or
// "graph v0:a v1:b e0-1".
type Request struct {
	// ID is echoed into the response; optional.
	ID string `json:"id,omitempty"`
	// Spec is the pattern in query-grammar form.
	Spec string `json:"query"`
	// Limit caps the match count for this request; it can only tighten
	// the engine's configured limit, never lift it. Zero means "engine
	// default".
	Limit int `json:"limit,omitempty"`
}

// ParseRequest decodes one request body. JSON content types carry a
// Request object; anything else is treated as plain text whose whole
// (trimmed) body is the Spec. Parse failures wrap ErrBadQuery.
func ParseRequest(contentType string, body []byte) (Request, error) {
	if isJSON(contentType) {
		var r Request
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil {
			return Request{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		if r.Limit < 0 {
			return Request{}, fmt.Errorf("%w: negative limit %d", ErrBadQuery, r.Limit)
		}
		return r, nil
	}
	spec := strings.TrimSpace(string(body))
	if spec == "" {
		return Request{}, fmt.Errorf("%w: empty body", ErrBadQuery)
	}
	return Request{Spec: spec}, nil
}

// isJSON reports whether the content type's media type is JSON,
// tolerating parameters ("application/json; charset=utf-8").
func isJSON(contentType string) bool {
	mt := contentType
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = mt[:i]
	}
	return strings.TrimSpace(strings.ToLower(mt)) == "application/json"
}

// EncodeRequest renders r as its canonical JSON body.
func EncodeRequest(r Request) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Unreachable: Request has only marshalable fields.
		panic(err)
	}
	return b
}

// Pattern parses and validates the request's spec into a pattern graph.
// Failures wrap ErrBadQuery.
func (r Request) Pattern() (*graph.Graph, error) {
	if strings.TrimSpace(r.Spec) == "" {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	p, err := query.ParsePatternSpec(r.Spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if !p.IsConnected() {
		return nil, fmt.Errorf("%w: pattern is disconnected", ErrBadQuery)
	}
	return p, nil
}

// Response is the answer to one served query.
type Response struct {
	// ID echoes the request's ID.
	ID string `json:"id,omitempty"`
	// Matches is the embedding count, capped by Limit.
	Matches int `json:"matches"`
	// Limit is the effective cap this query ran under (0 = unlimited).
	Limit int `json:"limit"`
	// Messages is the cross-shard message count the traversal charged —
	// the LOOM cost model's figure of merit for this query.
	Messages int `json:"messages"`
	// LocalReads/RemoteReads/ReplicaReads break down the vertex fetches.
	LocalReads   int `json:"local_reads"`
	RemoteReads  int `json:"remote_reads"`
	ReplicaReads int `json:"replica_reads"`
	// Epoch is the server epoch the serving view was cut at;
	// ViewGeneration counts view refreshes.
	Epoch          uint64 `json:"epoch"`
	ViewGeneration uint64 `json:"view_generation"`
}
